#include "data/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace deepsecure::data {
namespace {

using nn::VecF;

// Per-class basis of `rank` smooth random directions; samples are random
// non-negative combinations + noise, then squashed to [0, 1].
nn::Dataset subspace_dataset(size_t features, size_t classes, size_t samples,
                             size_t rank, double noise, double sep,
                             uint64_t seed) {
  Rng rng(seed);
  // Class bases. Smoothness (local correlation) comes from low-pass
  // filtering white noise, which also makes the union-of-subspaces
  // structure visible to Algorithm 1's projection residuals.
  std::vector<std::vector<VecF>> basis(classes);
  for (size_t c = 0; c < classes; ++c) {
    basis[c].resize(rank);
    for (size_t r = 0; r < rank; ++r) {
      VecF v(features);
      for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
      // Two smoothing passes (moving average, window 5).
      for (int pass = 0; pass < 2; ++pass) {
        VecF s(features, 0.0f);
        for (size_t i = 0; i < features; ++i) {
          float acc = 0.0f;
          int cnt = 0;
          for (int d = -2; d <= 2; ++d) {
            const long j = static_cast<long>(i) + d;
            if (j < 0 || j >= static_cast<long>(features)) continue;
            acc += v[static_cast<size_t>(j)];
            ++cnt;
          }
          s[i] = acc / static_cast<float>(cnt);
        }
        v = std::move(s);
      }
      // Class-specific offset direction separates the subspaces.
      const size_t anchor = (c * features) / classes;
      for (size_t i = 0; i < features; ++i) {
        const double dist = static_cast<double>(i > anchor ? i - anchor
                                                           : anchor - i);
        v[i] += static_cast<float>(
            sep * std::exp(-dist * dist /
                           (2.0 * std::pow(features / (4.0 * classes), 2))));
      }
      basis[c][r] = v;
    }
  }

  nn::Dataset ds;
  ds.num_classes = classes;
  for (size_t s = 0; s < samples; ++s) {
    const size_t c = s % classes;
    VecF x(features, 0.0f);
    for (size_t r = 0; r < rank; ++r) {
      const float coef = static_cast<float>(rng.next_uniform(0.2, 1.0));
      for (size_t i = 0; i < features; ++i) x[i] += coef * basis[c][r][i];
    }
    for (auto& v : x)
      v += static_cast<float>(rng.next_gaussian(0.0, noise));
    // Squash into [0, 1] with a fixed affine map (same for all samples,
    // so the subspace structure survives).
    for (auto& v : x) v = std::clamp(0.5f + 0.15f * v, 0.0f, 1.0f);
    ds.x.push_back(std::move(x));
    ds.y.push_back(c);
  }
  return ds;
}

}  // namespace

nn::Dataset make_subspace_dataset(const SyntheticConfig& cfg) {
  return subspace_dataset(cfg.features, cfg.classes, cfg.samples,
                          cfg.subspace_rank, cfg.noise, cfg.class_sep,
                          cfg.seed);
}

nn::Dataset make_mnist_like(size_t samples, uint64_t seed) {
  // 28x28 blobs: each class is a distinct 2-D Gaussian constellation with
  // per-sample jitter — local 2-D structure for the conv benchmark.
  constexpr size_t kSide = 28;
  constexpr size_t kClasses = 10;
  Rng rng(seed);

  // Three blob centers per class.
  std::vector<std::array<std::pair<double, double>, 3>> centers(kClasses);
  for (size_t c = 0; c < kClasses; ++c)
    for (auto& ctr : centers[c])
      ctr = {rng.next_uniform(6, 22), rng.next_uniform(6, 22)};

  nn::Dataset ds;
  ds.num_classes = kClasses;
  for (size_t s = 0; s < samples; ++s) {
    const size_t c = s % kClasses;
    VecF img(kSide * kSide, 0.0f);
    for (const auto& ctr : centers[c]) {
      const double cy = ctr.first + rng.next_gaussian(0.0, 0.8);
      const double cx = ctr.second + rng.next_gaussian(0.0, 0.8);
      const double amp = rng.next_uniform(0.7, 1.0);
      for (size_t y = 0; y < kSide; ++y)
        for (size_t x = 0; x < kSide; ++x) {
          const double d2 = std::pow(static_cast<double>(y) - cy, 2) +
                            std::pow(static_cast<double>(x) - cx, 2);
          img[y * kSide + x] +=
              static_cast<float>(amp * std::exp(-d2 / (2.0 * 4.5)));
        }
    }
    for (auto& v : img) {
      v += static_cast<float>(rng.next_gaussian(0.0, 0.02));
      v = std::clamp(v, 0.0f, 1.0f);
    }
    ds.x.push_back(std::move(img));
    ds.y.push_back(c);
  }
  return ds;
}

nn::Dataset make_isolet_like(size_t samples, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.features = 617;
  cfg.classes = 26;
  cfg.samples = samples;
  cfg.subspace_rank = 8;
  cfg.noise = 0.03;
  cfg.class_sep = 1.2;
  cfg.seed = seed;
  return make_subspace_dataset(cfg);
}

nn::Dataset make_har_like(size_t samples, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.features = 5625;
  cfg.classes = 19;
  cfg.samples = samples;
  cfg.subspace_rank = 10;
  cfg.noise = 0.03;
  cfg.class_sep = 1.2;
  cfg.seed = seed;
  return make_subspace_dataset(cfg);
}

}  // namespace deepsecure::data
