// Reference-counted, recycling slab pool — the allocation substrate of
// the zero-copy table data plane. A garbled batch window is staged
// directly inside a pool slab (gc/batch_walk.h GarbleWindowLine), so
// the window's table rows are born in wire-shippable memory: the
// garbler hands the channel a borrowed slice plus a BufferRef instead
// of copying the rows into a frame buffer, and the slab flows back to
// the pool when the LAST reference drops — which for an asynchronous
// transport (net/ring_channel.h) is after the kernel send completed,
// not when the frame was enqueued.
//
// Ownership model:
//   * BufferPool::acquire() returns a BufferRef with refcount 1 on a
//     64-byte-aligned slab of the pool's fixed slab size (freelist pop,
//     or a fresh aligned_alloc when the freelist is dry).
//   * BufferRef copies bump a per-slab atomic refcount; the last
//     release recycles the slab onto the pool freelist.
//   * The pool object may die with references still in flight (server
//     teardown racing an in-flight send): refs keep the shared pool
//     core alive, late releases recycle into the (now orphaned)
//     freelist, and the core's destructor frees every slab once the
//     last reference is gone — no use-after-free, no leak. Asserted in
//     tests/test_buffer_pool.cpp under TSan.
//   * BufferRef::adopt() wraps a caller-owned byte vector in the same
//     refcounted envelope (no pool, freed on last release) so
//     long-lived payloads like offline material tables ride the
//     borrowed-slice send path without belonging to any pool.
//
// Thread safety: acquire/release/copy are safe from any threads (the
// freelist takes a mutex — slab churn is once per ~170 KiB window, far
// off the hot path; refcounts are lock-free).
//
// Instruments (Registry::global()): pool.slab_acquire counts every
// acquire, pool.slab_recycle every slab returned to a freelist — their
// difference is the steady-state slab working set.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace deepsecure {

namespace detail {

// Every refcounted payload starts with this header. For pool slabs it
// occupies the first cache line of the allocation (data follows at
// +kSlabHeaderBytes, still 64-byte aligned); for adopted vectors it
// heads the heap-allocated holder.
struct alignas(64) SlabHeader {
  std::atomic<uint64_t> refs{0};
};
inline constexpr size_t kSlabHeaderBytes = 64;
static_assert(sizeof(SlabHeader) == kSlabHeaderBytes);

struct AdoptedHolder {
  SlabHeader hdr;  // must stay the first member (release casts back)
  std::vector<uint8_t> bytes;
};

// Shared pool state. BufferRefs hold a shared_ptr so a release after
// the BufferPool object died still has a live freelist to recycle
// into; the destructor (last pool handle OR last in-flight ref, whoever
// is later) frees every slab parked on the freelist.
struct PoolCore {
  std::mutex mu;
  std::vector<void*> freelist;  // slab base pointers (header included)
  size_t slab_bytes = 0;        // data bytes per slab
  ~PoolCore() {
    for (void* p : freelist) std::free(p);
  }
};

inline obs::Counter& pool_slab_acquire() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.slab_acquire");
  return c;
}
inline obs::Counter& pool_slab_recycle() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.slab_recycle");
  return c;
}

}  // namespace detail

/// Shared handle to one refcounted byte buffer (pool slab or adopted
/// vector). Copy = refcount bump; destruction of the last handle
/// recycles (pool slab) or frees (adopted). An empty ref is falsy and
/// has data() == nullptr.
class BufferRef {
 public:
  BufferRef() = default;
  BufferRef(const BufferRef& o)
      : hdr_(o.hdr_), data_(o.data_), size_(o.size_), core_(o.core_) {
    if (hdr_ != nullptr) hdr_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  BufferRef(BufferRef&& o) noexcept
      : hdr_(o.hdr_), data_(o.data_), size_(o.size_),
        core_(std::move(o.core_)) {
    o.hdr_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  BufferRef& operator=(const BufferRef& o) {
    if (this != &o) {
      BufferRef tmp(o);
      swap(tmp);
    }
    return *this;
  }
  BufferRef& operator=(BufferRef&& o) noexcept {
    if (this != &o) {
      release();
      hdr_ = std::exchange(o.hdr_, nullptr);
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, size_t{0});
      core_ = std::move(o.core_);
    }
    return *this;
  }
  ~BufferRef() { release(); }

  /// Take ownership of a byte vector: the bytes move into a refcounted
  /// holder freed on last release. The no-pool way to ship a long-lived
  /// payload (offline material tables) as a borrowed slice.
  static BufferRef adopt(std::vector<uint8_t>&& bytes) {
    auto* holder = new detail::AdoptedHolder{{}, std::move(bytes)};
    holder->hdr.refs.store(1, std::memory_order_relaxed);
    BufferRef r;
    r.hdr_ = &holder->hdr;
    r.data_ = holder->bytes.data();
    r.size_ = holder->bytes.size();
    return r;
  }

  explicit operator bool() const { return hdr_ != nullptr; }
  uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// Current reference count (tests/diagnostics; racy under sharing).
  uint64_t use_count() const {
    return hdr_ == nullptr ? 0 : hdr_->refs.load(std::memory_order_relaxed);
  }

  void reset() { release(); }

  void swap(BufferRef& o) noexcept {
    std::swap(hdr_, o.hdr_);
    std::swap(data_, o.data_);
    std::swap(size_, o.size_);
    std::swap(core_, o.core_);
  }

 private:
  friend class BufferPool;

  void release() {
    if (hdr_ == nullptr) return;
    if (hdr_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (core_ != nullptr) {
        // Pool slab: back onto the freelist (alive even if the pool
        // object is gone — core_ keeps it so).
        detail::pool_slab_recycle().add();
        std::lock_guard<std::mutex> lock(core_->mu);
        core_->freelist.push_back(static_cast<void*>(hdr_));
      } else {
        delete reinterpret_cast<detail::AdoptedHolder*>(hdr_);
      }
    }
    hdr_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    core_.reset();
  }

  detail::SlabHeader* hdr_ = nullptr;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<detail::PoolCore> core_;  // null for adopted refs
};

/// Fixed-slab-size recycling pool (see file header for the ownership
/// and teardown contract).
class BufferPool {
 public:
  /// All slabs carry `slab_bytes` of data (rounded up to a multiple of
  /// 64 so the payload region is cache-line granular).
  explicit BufferPool(size_t slab_bytes)
      : core_(std::make_shared<detail::PoolCore>()) {
    core_->slab_bytes = (slab_bytes + 63) & ~size_t{63};
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t slab_bytes() const { return core_->slab_bytes; }

  /// One slab with refcount 1: freelist pop, or a fresh 64-byte-aligned
  /// allocation when the freelist is dry.
  BufferRef acquire() {
    detail::pool_slab_acquire().add();
    void* base = nullptr;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      if (!core_->freelist.empty()) {
        base = core_->freelist.back();
        core_->freelist.pop_back();
      }
    }
    if (base == nullptr) {
      base = std::aligned_alloc(
          64, detail::kSlabHeaderBytes + core_->slab_bytes);
      if (base == nullptr) throw std::bad_alloc();
      new (base) detail::SlabHeader();
    }
    auto* hdr = static_cast<detail::SlabHeader*>(base);
    hdr->refs.store(1, std::memory_order_relaxed);
    BufferRef r;
    r.hdr_ = hdr;
    r.data_ = static_cast<uint8_t*>(base) + detail::kSlabHeaderBytes;
    r.size_ = core_->slab_bytes;
    r.core_ = core_;
    return r;
  }

  /// Slabs parked on the freelist right now (tests).
  size_t free_slabs() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->freelist.size();
  }

 private:
  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace deepsecure
