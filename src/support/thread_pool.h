// Small fixed-size worker pool that shards garbling batch windows
// across cores (GcOptions::pool, gc/garbler.cpp; owned per-endpoint by
// runtime::StreamingGarbler). Deliberately minimal — a mutex-protected
// task queue, no work stealing — because shard counts are tiny
// (≤ cores) and tasks are coarse (thousands of AES calls each).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepsecure {

class ThreadPool {
 public:
  /// `threads` worker threads (0 is allowed: every parallel_shards call
  /// then runs inline on the caller).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Partition [0, n_items) into contiguous shards of at least
  /// `min_per_shard` items, run `fn(begin, end)` on each shard — workers
  /// plus the calling thread — and wait for all shards to finish. The
  /// first exception thrown by any shard is rethrown on the caller.
  /// Shards are independent: `fn` must not touch another shard's range.
  void parallel_shards(size_t n_items, size_t min_per_shard,
                       const std::function<void(size_t, size_t)>& fn);

  /// Fire-and-forget task submission (the MaterialPool producer rides
  /// on this). The destructor drains the queue — every submitted task
  /// still runs before join — so tasks must stay valid until the pool
  /// is gone and should check a stop flag if their work can be moot.
  /// Tasks must not throw: an escaping exception would terminate the
  /// worker thread (parallel_shards wraps its own).
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace deepsecure
