// Text netlist serialization.
//
// The paper's toolchain emits synthesized netlists that the GC engine
// consumes. We mirror that hand-off with a simple line-oriented format so
// netlists can be inspected, diffed, archived, and re-loaded without
// rebuilding the generator:
//
//   netlist <name>
//   wires <num_wires>
//   in G <wire...>        # garbler inputs
//   in E <wire...>        # evaluator inputs
//   in S <wire...>        # state inputs
//   gate XOR <a> <b> <out>
//   gate AND <a> <b> <out>
//   next <wire...>        # state_next
//   out <wire...>
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"

namespace deepsecure {

void write_netlist(std::ostream& os, const Circuit& c);
std::string netlist_to_string(const Circuit& c);

/// Parses the format above; throws std::runtime_error on malformed input.
Circuit read_netlist(std::istream& is);
Circuit netlist_from_string(const std::string& text);

}  // namespace deepsecure
