// Client driver for the streaming inference server: the data owner
// (Alice, garbler). Connects over TCP, performs the session handshake
// (chain fingerprint + wire-format negotiation), and then runs any
// number of secure inferences over one session — the base-OT setup and
// the OT-extension state amortize across requests.
//
// Two request paths:
//   * on-demand: each infer garbles on the request path, framed so the
//     server evaluates while the client is still garbling (PR 2).
//   * pooled (offline/online split): a MaterialPool garbles whole
//     instances in the background; prefetch() pushes them to the server
//     ahead of requests (tables, decode bits, and the precomputed-OT
//     label resolution all travel offline), and an infer against
//     prefetched material sends only the active data labels and waits
//     for the result — no garbling, no OT on the request path. A
//     drained pool falls back to on-demand transparently.
//
// Cross-request pipelining: begin_infer_bits/finish_infer expose the
// send and receive halves of a pooled inference, so a client can queue
// several kInfer frames back-to-back and the server works through them
// while later requests are already in flight.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "fixed/fixed_point.h"
#include "net/tcp_channel.h"
#include "runtime/material_pool.h"
#include "runtime/streaming.h"
#include "synth/layer_circuits.h"

namespace deepsecure::runtime {

struct ClientConfig {
  StreamConfig stream;
  /// Label-PRG seed; zero draws from OS entropy (per-session seeds).
  Block seed{};
  /// Offline pool: number of garbled instances to keep ready; 0
  /// disables pooling entirely (every infer is on-demand).
  size_t pool_target = 0;
  /// Background producer threads for the pool.
  size_t pool_producers = 1;
  /// Re-prefetch opportunistically after each inference completes, so a
  /// steady request stream keeps hitting warm material. The push is
  /// synchronous on this session, so its cost (table upload + OT
  /// precompute) lands inside the tail of the request that triggered
  /// it — latency-sensitive callers should disable this and call
  /// top_up() at their own boundaries instead. Also disable for
  /// deterministic drain behavior (tests, bounded-memory clients).
  bool auto_top_up = true;
};

class InferenceClient {
 public:
  /// `spec` is the public model architecture — the client compiles the
  /// same chain the server compiled and the handshake cross-checks the
  /// fingerprints.
  InferenceClient(const std::string& host, uint16_t port,
                  const synth::ModelSpec& spec, ClientConfig cfg = {});
  ~InferenceClient();

  InferenceClient(const InferenceClient&) = delete;
  InferenceClient& operator=(const InferenceClient&) = delete;

  /// One secure inference: encodes `sample` in the chain's fixed-point
  /// format and returns the predicted label index. Uses prefetched
  /// material when available, on-demand garbling otherwise.
  size_t infer(const std::vector<float>& sample);

  /// Raw-bit variant (caller did the encoding).
  BitVec infer_bits(const BitVec& data_bits);

  /// Push up to `n` pool artifacts to the server ahead of requests
  /// (blocks on pool production), clamped to the server's advertised
  /// per-session prefetch quota. Returns how many are now prefetched.
  /// Requires pooling enabled and no inference in flight.
  size_t prefetch(size_t n);

  /// Pipelined pooled inference, send half: consumes one prefetched
  /// artifact and ships the request without waiting for the result.
  /// Throws if nothing is prefetched — callers race ahead only against
  /// warm material. Pair FIFO with finish_infer.
  void begin_infer_bits(const BitVec& data_bits);

  /// Pipelined pooled inference, receive half: result of the oldest
  /// in-flight request.
  BitVec finish_infer();

  /// Push ready pool artifacts until prefetched() reaches
  /// min(pool_target, server quota) — without blocking on production.
  /// Runs automatically after each inference under auto_top_up; call it
  /// manually (outside the latency-measured path) when auto_top_up is
  /// off. No-op while inferences are in flight or pooling is disabled.
  void top_up();

  /// Artifacts pushed to the server and not yet consumed.
  size_t prefetched() const { return prefetched_.size(); }
  /// Artifacts garbled and waiting in the local pool (0 when pooling is
  /// off). Lets a latency-sensitive caller wait for background refill
  /// garbling to quiesce before a measured window.
  size_t pool_ready() const { return pool_ ? pool_->ready() : 0; }
  /// begin_infer_bits calls not yet finished.
  size_t in_flight() const { return in_flight_; }
  uint64_t pooled_inferences() const { return pooled_inferences_; }
  uint64_t ondemand_inferences() const { return ondemand_inferences_; }

  /// Phase timings accumulated across all inferences on this session.
  const SessionTrace& trace() const { return garbler_->trace(); }

  /// Orderly goodbye; further infer calls are invalid. Drains any
  /// in-flight pipelined inferences first. Also run by the destructor
  /// if still open.
  void close();

  size_t input_bits() const;

 private:
  // Client-side remainder of a pushed artifact: just enough to encode
  // active data labels online (the rest lives on the server now).
  struct PrefetchedMaterial {
    uint64_t id = 0;
    Block delta{};
    Labels data_zeros;
  };

  void push_material(GarbledMaterial&& mat);

  std::vector<Circuit> chain_;
  FixedFormat fmt_;
  ClientConfig cfg_;
  TcpChannel transport_;
  std::unique_ptr<StreamingGarbler> garbler_;
  std::unique_ptr<MaterialPool> pool_;
  std::deque<PrefetchedMaterial> prefetched_;
  uint64_t next_material_id_ = 1;
  uint64_t server_prefetch_quota_ = 0;  // advertised in the hello ack
  size_t in_flight_ = 0;
  uint64_t pooled_inferences_ = 0;
  uint64_t ondemand_inferences_ = 0;
  bool open_ = false;
  bool closing_ = false;  // suppresses top_up while close() drains
};

}  // namespace deepsecure::runtime
