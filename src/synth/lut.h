// Look-up-table circuit: a MUX tree over constant leaves.
//
// Combined with the builder's constant folding + structural hashing this
// reproduces what a synthesis tool does to a truth table: muxes whose
// leaves agree collapse, constant leaves reduce muxes to AND/OR/NOT/wire,
// and shared subtrees across output bits are emitted once.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/int_blocks.h"

namespace deepsecure::synth {

/// index: k-bit unsigned bus. table: 2^k entries (missing entries are
/// treated as the last provided entry). Each entry is emitted as an
/// out_bits-wide two's-complement constant.
Bus lut(Builder& b, const Bus& index, const std::vector<int64_t>& table,
        size_t out_bits);

/// Tabulate f over the index domain [0, 2^index_bits) where the index is
/// interpreted as an unsigned fixed-point value with `frac` fractional
/// bits; outputs are rounded to `fmt`.
std::vector<int64_t> tabulate(double (*f)(double), size_t index_bits,
                              size_t frac, FixedFormat fmt);

}  // namespace deepsecure::synth
