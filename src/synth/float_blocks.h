// Floating-point GC blocks — the paper's Section 3.6 notes the library
// "also provides support for Floating-point accuracy"; this module
// realizes that claim with a compact IEEE-754-style format.
//
// Format (parameterizable; default is bfloat16-shaped: 1+8+7):
//   [ sign | biased exponent (e bits) | mantissa (m bits, implicit 1) ]
// Simplifications typical for secure-computation datapaths, documented
// and mirrored exactly by the software reference model:
//   * no subnormals: exponent 0 means the value 0 (mantissa ignored)
//   * no NaN/Inf: overflow saturates to the largest finite value
//   * round-toward-zero (truncation) after every operation
//
// Because magnitude comparison of this encoding is monotonic on the
// packed (exponent|mantissa) integer, the adder's operand swap and the
// comparator are plain unsigned comparisons — cheap in GC.
#pragma once

#include "synth/int_blocks.h"

namespace deepsecure::synth {

struct FloatFormat {
  size_t exp_bits = 8;
  size_t man_bits = 7;

  size_t total_bits() const { return 1 + exp_bits + man_bits; }
  int64_t bias() const { return (int64_t{1} << (exp_bits - 1)) - 1; }
  uint64_t max_exp() const { return (uint64_t{1} << exp_bits) - 1; }
};

inline constexpr FloatFormat kBFloat16{8, 7};

/// Software reference with identical semantics (truncation, flush to
/// zero, saturation) — the oracle for the circuit tests.
struct SoftFloat {
  uint64_t bits = 0;  // packed little-endian: [man | exp | sign]
  FloatFormat fmt;

  static SoftFloat from_double(double x, FloatFormat fmt = kBFloat16);
  double to_double() const;

  static SoftFloat add(SoftFloat a, SoftFloat b);
  static SoftFloat mul(SoftFloat a, SoftFloat b);
  static bool less_than(SoftFloat a, SoftFloat b);  // total order, -0 == +0
};

/// Circuit blocks. Buses are fmt.total_bits wide, packed as
/// bit 0..m-1 = mantissa, m..m+e-1 = exponent, top bit = sign.
Bus float_add(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt);
Bus float_sub(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt);
Bus float_mul(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt);
Wire float_lt(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt);
Bus float_relu(Builder& b, const Bus& x, FloatFormat fmt);
Bus float_neg(Builder& b, const Bus& x, FloatFormat fmt);

/// Floating-point dot product (the FC building block at float accuracy).
Bus float_dot(Builder& b, const std::vector<Bus>& x,
              const std::vector<Bus>& w, FloatFormat fmt);

}  // namespace deepsecure::synth
