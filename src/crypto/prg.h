// Cryptographic pseudo-random generator: AES-128 in counter mode.
// Used for wire-label sampling and OT-extension column expansion.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/block.h"

namespace deepsecure {

class Prg {
 public:
  /// Seeded PRG; distinct seeds give computationally independent streams.
  explicit Prg(Block seed);

  /// Fresh random seed from the OS entropy source.
  static Prg from_os_entropy();

  Block next_block();
  void next_blocks(Block* out, size_t n);
  void fill_bytes(void* dst, size_t n);
  uint64_t next_u64() { return next_block().lo; }

  /// Expand a seed into `n` pseudo-random bits (for IKNP columns).
  std::vector<uint8_t> expand_bits(size_t n);

 private:
  Aes128Key key_;
  uint64_t counter_ = 0;
};

/// Process-global PRG for label generation (thread-local instances).
Prg& thread_prg();

}  // namespace deepsecure
