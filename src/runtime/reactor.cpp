#include "runtime/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/trace.h"
#include "runtime/frame.h"

namespace deepsecure::runtime {
namespace {

// epoll_event.data tags for the non-connection fds. Conn pointers are
// heap-aligned, so they can never collide with these small sentinels.
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kListenerTag = 2;
constexpr uint64_t kLaneListenerTag = 3;

}  // namespace

EventCore::EventCore(InferenceServer& srv)
    : srv_(srv),
      c_rearms_(srv.metrics_.counter("reactor.rearms")),
      c_timer_evictions_(srv.metrics_.counter("reactor.timer_evictions")),
      c_listener_gated_(srv.metrics_.counter("reactor.listener_gated")),
      c_listener_gated_ns_(srv.metrics_.counter("reactor.listener_gated_ns")),
      g_queue_depth_(srv.metrics_.gauge("reactor.queue_depth")),
      h_dispatch_(srv.metrics_.histogram("phase.dispatch")),
      h_parked_(srv.metrics_.histogram("phase.parked")) {}

EventCore::~EventCore() { stop(); }

void EventCore::start() {
  ep_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep_ < 0) throw std::runtime_error("reactor: epoll_create1 failed");
  wakefd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakefd_ < 0) {
    ::close(ep_);
    ep_ = -1;
    throw std::runtime_error("reactor: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  (void)::epoll_ctl(ep_, EPOLL_CTL_ADD, wakefd_, &ev);

  srv_.listener_.set_nonblocking(true);
  srv_.lane_listener_.set_nonblocking(true);
  arm_listener(/*lane=*/false, /*on=*/true);
  arm_listener(/*lane=*/true, /*on=*/true);

  const uint64_t idle_ms = srv_.cfg_.idle_timeout_ms;
  const uint64_t phase_ms = srv_.cfg_.phase_timeout_ms;
  if (idle_ms > 0 || phase_ms > 0) {
    // Wheel resolution: ≤ ~1/64 of the shortest enabled timeout (an
    // eviction lands at timeout..timeout+2 ticks, never early),
    // minimum 1 ms. Idle and phase entries share one wheel.
    const uint64_t base = (idle_ms > 0 && phase_ms > 0)
                              ? std::min(idle_ms, phase_ms)
                              : std::max(idle_ms, phase_ms);
    tick_ms_ = std::max<uint64_t>(1, base / 64);
    if (idle_ms > 0)
      timeout_ticks_ = (idle_ms + tick_ms_ - 1) / tick_ms_ + 1;
    if (phase_ms > 0) phase_ticks_ = (phase_ms + tick_ms_ - 1) / tick_ms_ + 1;
    wheel_.assign(std::max(timeout_ticks_, phase_ticks_) + 2, {});
  }
  epoch_ = std::chrono::steady_clock::now();

  size_t n = srv_.cfg_.workers;
  if (n == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    n = std::max<size_t>(2, 2 * static_cast<size_t>(hc == 0 ? 1 : hc));
  }
  started_ = true;
  stopping_ = false;
  workers_stop_ = false;
  loop_thread_ = std::thread([this] { loop(); });
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void EventCore::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  // Stop accepting, then force every live connection through the normal
  // worker teardown path: the loop shuts parked transports down on each
  // pass (sticky — a later re-park sees immediate readiness) and exits
  // once the connection table is empty.
  srv_.listener_.close();
  srv_.lane_listener_.close();
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    workers_stop_ = true;
  }
  ready_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  if (wakefd_ >= 0) ::close(wakefd_);
  if (ep_ >= 0) ::close(ep_);
  wakefd_ = -1;
  ep_ = -1;
  started_ = false;
}

void EventCore::wake() {
  if (wakefd_ < 0) return;
  const uint64_t one = 1;
  ssize_t r;
  do {
    r = ::write(wakefd_, &one, sizeof(one));
  } while (r < 0 && errno == EINTR);
}

uint64_t EventCore::elapsed_ms() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

// ---------------------------------------------------------------------
// Loop side.

void EventCore::arm_listener(bool lane, bool on) {
  TcpListener& l = lane ? srv_.lane_listener_ : srv_.listener_;
  bool& armed = lane ? lane_listener_armed_ : listener_armed_;
  if (armed == on || l.fd() < 0) return;
  if (on) {
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered: fires while backlog nonempty
    ev.data.u64 = lane ? kLaneListenerTag : kListenerTag;
    if (::epoll_ctl(ep_, EPOLL_CTL_ADD, l.fd(), &ev) == 0) armed = true;
  } else {
    (void)::epoll_ctl(ep_, EPOLL_CTL_DEL, l.fd(), nullptr);
    armed = false;
  }
}

void EventCore::accept_drain(bool lane) {
  TcpListener& l = lane ? srv_.lane_listener_ : srv_.listener_;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
    }
    if (!lane &&
        srv_.sessions_active_.load() >= srv_.cfg_.max_sessions) {
      if (srv_.cfg_.shed_on_overload) {
        // Shed: accept the connection just long enough to say kBusy
        // (with a retry-after hint) so the client backs off and
        // retries, instead of queueing silently in the backlog.
        try {
          std::optional<TcpChannel> t = l.try_accept();
          if (!t.has_value()) return;  // backlog drained
          srv_.c_sessions_shed_.add();
          try {
            send_busy(*t, srv_.cfg_.busy_retry_after_ms);
          } catch (...) {
          }
        } catch (...) {
          arm_listener(lane, /*on=*/false);
          return;
        }
        continue;
      }
      // Full: gate the listener instead of accepting past the cap.
      // Excess clients wait in the listen backlog (the thread core's
      // slot-wait semantics); a session teardown wakes the loop to
      // re-arm below.
      arm_listener(/*lane=*/false, /*on=*/false);
      if (listener_gated_since_ == 0) {
        listener_gated_since_ = obs::now_ns();
        c_listener_gated_.add();
      }
      return;
    }
    std::unique_ptr<TcpChannel> transport;
    try {
      std::optional<TcpChannel> t = l.try_accept();
      if (!t.has_value()) return;  // backlog drained
      transport = std::make_unique<TcpChannel>(std::move(*t));
    } catch (...) {
      arm_listener(lane, /*on=*/false);  // listener closed or broken
      return;
    }

    auto c = std::make_unique<Conn>();
    c->is_lane = lane;
    c->stage = lane ? Stage::kLaneAttach : Stage::kHandshake;
    c->transport = std::move(transport);
    c->transport->set_nonblocking(true);
    if (srv_.cfg_.io == IoBackend::kUring) c->transport->enable_io_uring();
    // Bound mid-exchange stalls with the same deadline the timer wheel
    // applies to parked conns (poll deadline in nonblocking mode).
    if (srv_.cfg_.idle_timeout_ms > 0)
      c->transport->set_recv_timeout_ms(srv_.cfg_.idle_timeout_ms);
    if (srv_.cfg_.chaos.enabled())
      c->fault = std::make_unique<FaultChannel>(
          *c->transport, srv_.cfg_.chaos, srv_.chaos_index_.fetch_add(1),
          [t = c->transport.get()] { t->shutdown(); });
    Channel& wire = c->fault != nullptr ? static_cast<Channel&>(*c->fault)
                                        : static_cast<Channel&>(*c->transport);
    c->ch = std::make_unique<BufferedChannel>(wire,
                                              srv_.cfg_.stream.channel_buffer);
    c->accept_ns = obs::now_ns();
    if (!lane) {
      srv_.c_sessions_accepted_.add();
      srv_.sessions_active_.fetch_add(1);
    }
    Conn* raw = c.get();
    {
      std::lock_guard<std::mutex> lk(mu_);
      raw->id = next_conn_id_++;
      conns_.emplace(raw->id, std::move(c));
    }
    // Park immediately: the client speaks first on both connection
    // kinds (kHello / kAttachLane), so the first readiness event starts
    // the state machine.
    if (!park(raw)) teardown(raw);
  }
}

void EventCore::advance_timers() {
  if (tick_ms_ == 0) return;
  const uint64_t now_tick = elapsed_ms() / tick_ms_;
  std::lock_guard<std::mutex> lk(mu_);
  while (current_tick_ < now_tick) {
    ++current_tick_;
    auto& bucket = wheel_[current_tick_ % wheel_.size()];
    for (const WheelEntry& e : bucket) {
      --timers_live_;
      const auto it = conns_.find(e.id);
      if (it == conns_.end()) continue;           // conn already gone
      Conn* c = it->second.get();
      if (e.phase) {
        // Phase deadline, armed at dispatch: fires only if the worker
        // STILL owns the conn at that generation (a park bumped the
        // gen, cancelling it). Shutdown breaks the in-flight recv/send
        // so the owning worker's teardown path runs — nothing is
        // destroyed from this thread.
        if (c->parked || c->park_gen != e.gen) continue;
        srv_.c_phase_timeouts_.add();
        c->transport->shutdown();
        continue;
      }
      if (!c->parked || c->park_gen != e.gen) continue;  // was resumed
      // Evict: shutdown makes the parked fd readable, and the worker
      // that picks up the event runs the one true teardown path —
      // budget settlement included, nothing destroyed cross-thread.
      c_timer_evictions_.add();
      c->transport->shutdown();
    }
    bucket.clear();
  }
}

int EventCore::epoll_timeout_ms() {
  if (tick_ms_ == 0) return -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (timers_live_ == 0) return -1;
  }
  const uint64_t next = (current_tick_ + 1) * tick_ms_;
  const uint64_t now = elapsed_ms();
  return next > now ? static_cast<int>(std::min<uint64_t>(next - now, 1000))
                    : 0;
}

void EventCore::loop() {
  epoll_event evs[64];
  for (;;) {
    const int n = ::epoll_wait(ep_, evs, 64, epoll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd dead: nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = evs[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t v;
        while (::read(wakefd_, &v, sizeof(v)) == sizeof(v)) {
        }
      } else if (tag == kListenerTag) {
        accept_drain(/*lane=*/false);
      } else if (tag == kLaneListenerTag) {
        accept_drain(/*lane=*/true);
      } else {
        // EPOLLONESHOT delivered: ownership of the conn moves from the
        // epoll set to the worker pool.
        Conn* c = reinterpret_cast<Conn*>(tag);
        std::lock_guard<std::mutex> lk(mu_);
        c->parked = false;
        ++c->park_gen;  // cancel the pending idle timer
        if (phase_ticks_ > 0) {
          // Per-phase deadline: the worker about to serve this burst
          // must finish (and park, bumping the gen) before it fires.
          wheel_[(current_tick_ + phase_ticks_) % wheel_.size()].push_back(
              WheelEntry{c->id, c->park_gen, /*phase=*/true});
          ++timers_live_;
        }
        c->ready_ns = obs::now_ns();
        g_queue_depth_.add(1);
        ready_.push_back(c);
        ready_cv_.notify_one();
      }
    }
    advance_timers();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        // Force-drain: break every remaining conn (idempotent) and let
        // workers tear them down; the table emptying is the exit
        // condition, so no session can be dropped without settlement.
        for (auto& [id, c] : conns_) c->transport->shutdown();
        if (conns_.empty()) return;
      } else if (!listener_armed_ &&
                 srv_.sessions_active_.load() < srv_.cfg_.max_sessions) {
        arm_listener(/*lane=*/false, /*on=*/true);
        if (listener_gated_since_ != 0) {
          c_listener_gated_ns_.add(obs::now_ns() - listener_gated_since_);
          listener_gated_since_ = 0;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Worker side.

void EventCore::worker_loop() {
  for (;;) {
    Conn* c = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      ready_cv_.wait(lk, [this] { return workers_stop_ || !ready_.empty(); });
      if (ready_.empty()) return;  // workers_stop_ and nothing left
      c = ready_.front();
      ready_.pop_front();
      g_queue_depth_.sub(1);
    }
    process(c);
  }
}

bool EventCore::park(Conn* c) {
  bool first_timer = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    c->parked = true;
    const uint64_t gen = ++c->park_gen;  // also cancels the phase timer
    if (timeout_ticks_ > 0) {
      wheel_[(current_tick_ + timeout_ticks_) % wheel_.size()].push_back(
          WheelEntry{c->id, gen});
      first_timer = (timers_live_++ == 0);
    }
  }
  c->parked_at_ns = obs::now_ns();
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
  ev.data.u64 = reinterpret_cast<uint64_t>(c);
  const int op = c->registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (c->registered) c_rearms_.add();
  c->registered = true;
  if (::epoll_ctl(ep_, op, c->transport->fd(), &ev) != 0) return false;
  // The loop may be sleeping with an infinite epoll timeout; the first
  // live timer needs it to start ticking.
  if (first_timer) wake();
  return true;
}

void EventCore::teardown(Conn* c) {
  // Protocol settlement first (identical to the thread core's): token
  // out of the map so no new lane resolves this session, then the whole
  // remaining budget reservation returned in one settlement.
  if (!c->is_lane) {
    if (c->token_registered) srv_.unregister_lane_token(c->lane_token);
    if (c->state != nullptr) srv_.settle_session_state(*c->state);
  } else if (c->state != nullptr) {
    // Lane teardown: allow a reconnect (see thread core).
    std::lock_guard<std::mutex> lk(c->state->mu);
    c->state->lane_attached = false;
  }
  const bool was_session = !c->is_lane;
  if (c->accept_ns != 0) {
    obs::Histogram& wall =
        was_session ? srv_.h_session_wall_ : srv_.h_lane_wall_;
    wall.observe(obs::now_ns() - c->accept_ns);
  }
  if (was_session) {
    srv_.h_session_bytes_in_.observe(c->transport->bytes_received());
    srv_.h_session_bytes_out_.observe(c->transport->bytes_sent());
  }
  srv_.c_bytes_in_.add(c->transport->bytes_received());
  srv_.c_bytes_out_.add(c->transport->bytes_sent());
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns_.erase(c->id);  // destroys the conn, closes the fd
  }
  if (was_session) srv_.sessions_active_.fetch_sub(1);
  // A freed slot may re-arm the gated listener; during stop the loop is
  // waiting for the table to empty.
  wake();
}

void EventCore::process(Conn* c) {
  // Account the gap since the last park: park → readiness is the
  // connection's idle (client-side) time, readiness → here is scheduler
  // dispatch latency. Together with the serve phases below they cover
  // the conn's whole parked lifetime, which is what lets stats_json()
  // explain a session's wall time under the event core.
  const uint64_t t_pick = obs::now_ns();
  if (c->parked_at_ns != 0 && c->ready_ns >= c->parked_at_ns) {
    h_parked_.observe(c->ready_ns - c->parked_at_ns);
    obs::trace_interval("reactor.parked", c->parked_at_ns,
                        c->ready_ns - c->parked_at_ns);
    c->parked_at_ns = 0;
  }
  if (c->ready_ns != 0 && t_pick >= c->ready_ns) {
    h_dispatch_.observe(t_pick - c->ready_ns);
    obs::trace_interval("reactor.dispatch", c->ready_ns, t_pick - c->ready_ns);
  }
  bool open = true;
  bool more = false;
  try {
    switch (c->stage) {
      case Stage::kHandshake:
        open = do_handshake(*c);
        break;
      case Stage::kLaneAttach:
        open = do_lane_attach(*c);
        break;
      default:
        more = true;  // readiness fired on an open conn: a frame awaits
        break;
    }
    if (open) more = more || c->ch->recv_buffered() > 0;
    // Serve until the user-space read-ahead is dry. Epoll cannot see
    // bytes BufferedChannel already pulled out of the kernel, so
    // re-parking with buffered frames would stall them until the next
    // wire byte; kernel-buffered bytes are covered by the level-
    // triggered re-arm (EPOLL_CTL_MOD redelivers while readable).
    while (open && more) {
      open = c->stage == Stage::kOpen ? serve_session_frame(*c)
                                      : serve_lane_frame(*c);
      more = c->ch->recv_buffered() > 0;
    }
  } catch (const std::exception& e) {
    // Garbage frames, a phase deadline mid-exchange, or a vanished
    // peer: tell the client WHY (best effort — the transport may
    // already be dead) instead of a raw disconnect, then drop the
    // connection and keep serving.
    try {
      send_error(*c->ch, ErrorCode::kMalformed, e.what());
      c->ch->flush();
    } catch (...) {
    }
    open = false;
  } catch (...) {
    open = false;
  }
  if (!open || !park(c)) teardown(c);
}

bool EventCore::do_handshake(Conn& c) {
  // Unlike the thread core, the wait for the hello is NOT in here — the
  // conn was parked until the hello's bytes arrived (phase.parked), so
  // this phase is pure handshake work.
  const uint64_t t0 = obs::now_ns();
  obs::Span span("server.handshake");
  const Hello hello = parse_hello(recv_frame(*c.ch));
  const char* reject = srv_.validate_hello(hello);
  if (reject != nullptr) {
    srv_.c_sessions_rejected_.add();
    send_error(*c.ch, ErrorCode::kHandshake, reject);
    c.ch->flush();
    srv_.h_handshake_.observe(obs::now_ns() - t0);
    return false;
  }
  c.state = std::make_shared<InferenceServer::SessionState>();
  // Token registered before the ack ships so a racing kAttachLane can
  // never observe an unregistered token.
  c.lane_token = srv_.register_lane_token(c.state);
  c.token_registered = true;
  HelloAck ack;
  ack.fingerprint = srv_.fingerprint_;
  ack.prefetch_quota = srv_.cfg_.max_prefetch;
  ack.lane_token = c.lane_token;
  ack.lane_port = srv_.lane_listener_.port();
  send_hello_ack(*c.ch, ack);
  c.ch->flush();
  if (srv_.cfg_.stream.eval_threads > 0)
    c.eval_pool = std::make_unique<ThreadPool>(srv_.cfg_.stream.eval_threads);
  c.session = std::make_unique<EvaluatorSession>(
      *c.ch, srv_.cfg_.stream.gc_options(c.eval_pool.get()));
  c.stage = Stage::kOpen;
  srv_.h_handshake_.observe(obs::now_ns() - t0);
  return true;
}

bool EventCore::do_lane_attach(Conn& c) {
  const Frame attach = recv_frame(*c.ch);
  uint64_t token = 0;
  const char* reject = nullptr;
  ErrorCode code = ErrorCode::kLane;
  if (attach.type != FrameType::kAttachLane) {
    reject = "expected lane attach";
    code = ErrorCode::kMalformed;
  } else {
    token = parse_id(attach);
    c.state = srv_.attach_lane(token, &reject);
  }
  if (reject != nullptr) {
    srv_.c_lanes_rejected_.add();
    c.state = nullptr;  // nothing to detach at teardown
    send_error(*c.ch, code, reject);
    c.ch->flush();
    return false;
  }
  srv_.c_lanes_attached_.add();
  send_id_frame(*c.ch, FrameType::kAttachLaneAck, token);
  c.ch->flush();
  // The lane never evaluates, so no eval shard pool here.
  c.session = std::make_unique<EvaluatorSession>(
      *c.ch, srv_.cfg_.stream.gc_options(nullptr));
  c.stage = Stage::kLaneOpen;
  return true;
}

bool EventCore::serve_session_frame(Conn& c) {
  // Usually satisfied from read-ahead; a partially-arrived frame waits
  // here (same phase name as the thread core's idle wait).
  const uint64_t t_wait = obs::now_ns();
  obs::Span wait_span("server.recv_wait");
  const Frame f = recv_frame(*c.ch);
  wait_span.end();
  srv_.h_recv_wait_.observe(obs::now_ns() - t_wait);
  switch (f.type) {
    case FrameType::kInfer:
      return srv_.handle_infer_frame(f, *c.ch, *c.session, *c.state);
    case FrameType::kPrefetch:
      return srv_.handle_prefetch_push(f, *c.ch, *c.session, *c.state);
    case FrameType::kStats: {
      const std::string stats = srv_.stats_json();
      send_frame(*c.ch, FrameType::kStatsReply, stats.data(), stats.size());
      c.ch->flush();
      return true;
    }
    case FrameType::kBye:
      return false;
    default:
      send_error(*c.ch, ErrorCode::kMalformed, "unexpected frame in session loop");
      c.ch->flush();
      return false;
  }
}

bool EventCore::serve_lane_frame(Conn& c) {
  const uint64_t t_wait = obs::now_ns();
  obs::Span wait_span("server.recv_wait");
  const Frame f = recv_frame(*c.ch);
  wait_span.end();
  srv_.h_recv_wait_.observe(obs::now_ns() - t_wait);
  if (f.type == FrameType::kBye) return false;
  if (f.type == FrameType::kPrefetch)
    return srv_.handle_prefetch_push(f, *c.ch, *c.session, *c.state);
  send_error(*c.ch, ErrorCode::kMalformed, "unexpected frame on prefetch lane");
  c.ch->flush();
  return false;
}

}  // namespace deepsecure::runtime
