// AES-128 with expanded-key encryption only — everything the garbling
// engine needs. Batch encryption is a runtime-dispatched backend
// (crypto/hash_backend.h): scalar S-box reference, bitsliced constant-
// time software, 8-wide AES-NI, 16-wide VAES/AVX-512 — all compiled
// when the toolchain allows, selected via CPUID (+ env/option
// overrides), all producing identical bytes.
// The fixed-key garbling hash (Bellare et al., S&P'13) lives here too:
//   H(X, T) = pi(K) ^ K  with  K = 2X ^ T, pi = AES-128 under a fixed key.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block.h"

namespace deepsecure {

/// Expanded AES-128 key schedule (11 round keys).
struct Aes128Key {
  std::array<Block, 11> rounds{};
};

/// Expand a 128-bit cipher key.
Aes128Key aes128_expand(Block key);

/// Encrypt one block (backend chosen at runtime).
Block aes128_encrypt(const Aes128Key& key, Block pt);

/// Encrypt `n` blocks in place through the active hash backend
/// (hash_backend() in crypto/hash_backend.h) — wide-SIMD pipelined when
/// the host supports it, bitsliced software otherwise.
void aes128_encrypt_batch(const Aes128Key& key, Block* blocks, size_t n);

/// True when the AES-NI backend is compiled in and the CPU supports it.
bool aes128_ni_available();

/// Restrict to software backends (for tests that cross-check hardware
/// vs software paths). Also re-runs the hash-backend selection so
/// AES-NI/VAES backends become unavailable while forced.
void aes128_force_software(bool force);

/// The process-wide fixed garbling key (Bellare-Hoang-Keelveedhi-Rogaway
/// style fixed-key cipher). Deterministic across runs by design: security
/// rests on the random wire labels, not on this key being secret.
const Aes128Key& fixed_garbling_key();

/// Tweakable circular-correlation-robust hash used by half-gates:
///   H(X, tweak) = AES_fixed(2X ^ T) ^ (2X ^ T),  T = tweak (as block)
Block gc_hash(Block x, uint64_t tweak);

/// Two-input variant used by the evaluator-side half gate.
Block gc_hash2(Block x, Block y, uint64_t tweak);

/// Batched fixed-key hash: out[i] = H(inputs[i], tweaks[i]). Routed
/// through aes128_encrypt_batch so the AES-NI pipeline (and the software
/// fallback) apply; `inputs` may alias `out`.
void gc_hash_batch(const Block* inputs, const uint64_t* tweaks, Block* out,
                   size_t n);

/// Garbler-side batch helper for half-gates AND windows. For gate i with
/// input zero-labels a0[i], b0[i] and tweaks tweaks[2i] (generator half),
/// tweaks[2i+1] (evaluator half), writes the four hashes the half-gates
/// construction consumes:
///   out[4i+0] = H(a0[i],         tweaks[2i])
///   out[4i+1] = H(a0[i] ^ delta, tweaks[2i])
///   out[4i+2] = H(b0[i],         tweaks[2i+1])
///   out[4i+3] = H(b0[i] ^ delta, tweaks[2i+1])
/// The ^delta halves reuse 2(X^delta) = 2X ^ 2delta, so only 2n doublings
/// are computed for the 4n hash inputs.
void gc_hash_and_quads(const Block* a0, const Block* b0, Block delta,
                       const uint64_t* tweaks, Block* out, size_t n);

namespace detail {
// Backend entry points (exposed for cross-checking in tests; production
// code goes through the dispatch in crypto/hash_backend.h).
Block aes128_encrypt_soft(const Aes128Key& key, Block pt);
void aes128_encrypt_batch_soft(const Aes128Key& key, Block* blocks, size_t n);
// Bitsliced constant-time software AES (aes128_bitsliced.cpp): always
// compiled, no ISA requirement.
void aes128_encrypt_batch_bitsliced(const Aes128Key& key, Block* blocks,
                                    size_t n);
// True while aes128_force_software(true) is in effect.
bool aes128_software_forced();
#if defined(DEEPSECURE_AESNI_COMPILED)
Block aes128_encrypt_ni(const Aes128Key& key, Block pt);
void aes128_encrypt_batch_ni(const Aes128Key& key, Block* blocks, size_t n);
#endif
#if defined(DEEPSECURE_VAES_COMPILED)
void aes128_encrypt_batch_vaes(const Aes128Key& key, Block* blocks, size_t n);
#endif
}  // namespace detail

}  // namespace deepsecure
