#include "crypto/fe25519.h"

#include <cstring>

namespace deepsecure {
namespace {

using u128 = unsigned __int128;
constexpr uint64_t kMask = (1ull << 51) - 1;

// One weak-reduction pass: after this, limbs fit in 52 bits provided the
// inputs fit in 63 bits.
void carry_pass(std::array<uint64_t, 5>& v) {
  for (int i = 0; i < 4; ++i) {
    v[i + 1] += v[i] >> 51;
    v[i] &= kMask;
  }
  v[0] += 19 * (v[4] >> 51);
  v[4] &= kMask;
}

void carry_u128(std::array<u128, 5>& c, std::array<uint64_t, 5>& out) {
  u128 carry = 0;
  for (int i = 0; i < 5; ++i) {
    c[i] += carry;
    out[i] = static_cast<uint64_t>(c[i]) & kMask;
    carry = c[i] >> 51;
  }
  // Wrap the final carry (multiples of 2^255 == multiples of 19).
  uint64_t wrapped = static_cast<uint64_t>(carry) * 19;
  out[0] += wrapped;
  carry_pass(out);
}

}  // namespace

Fe25519 Fe25519::from_u64(uint64_t x) {
  Fe25519 r;
  r.v[0] = x & kMask;
  r.v[1] = x >> 51;
  return r;
}

Fe25519 Fe25519::add(const Fe25519& a, const Fe25519& b) {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  carry_pass(r.v);
  return r;
}

Fe25519 Fe25519::sub(const Fe25519& a, const Fe25519& b) {
  // Add 8p (limb-wise) so the per-limb subtraction cannot underflow for
  // weakly-reduced inputs (< 2^52 per limb).
  Fe25519 r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAull * 4 - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEull * 4 - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEull * 4 - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEull * 4 - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEull * 4 - b.v[4];
  carry_pass(r.v);
  carry_pass(r.v);
  return r;
}

Fe25519 Fe25519::neg(const Fe25519& a) { return sub(zero(), a); }

Fe25519 Fe25519::mul(const Fe25519& a, const Fe25519& b) {
  const auto& x = a.v;
  const auto& y = b.v;
  std::array<u128, 5> c{};
  c[0] = u128(x[0]) * y[0] +
         u128(19) * (u128(x[1]) * y[4] + u128(x[2]) * y[3] +
                     u128(x[3]) * y[2] + u128(x[4]) * y[1]);
  c[1] = u128(x[0]) * y[1] + u128(x[1]) * y[0] +
         u128(19) * (u128(x[2]) * y[4] + u128(x[3]) * y[3] + u128(x[4]) * y[2]);
  c[2] = u128(x[0]) * y[2] + u128(x[1]) * y[1] + u128(x[2]) * y[0] +
         u128(19) * (u128(x[3]) * y[4] + u128(x[4]) * y[3]);
  c[3] = u128(x[0]) * y[3] + u128(x[1]) * y[2] + u128(x[2]) * y[1] +
         u128(x[3]) * y[0] + u128(19) * (u128(x[4]) * y[4]);
  c[4] = u128(x[0]) * y[4] + u128(x[1]) * y[3] + u128(x[2]) * y[2] +
         u128(x[3]) * y[1] + u128(x[4]) * y[0];
  Fe25519 r;
  carry_u128(c, r.v);
  return r;
}

Fe25519 Fe25519::square(const Fe25519& a) { return mul(a, a); }

Fe25519 Fe25519::invert(const Fe25519& a) {
  // p - 2 = 2^255 - 21: square-and-multiply over the fixed exponent.
  // Exponent bits: all ones except bits 1 and 3 are zero.
  //   p-2 = ...11111111111101011 (low bits: 0b...01011)
  // Simpler: iterate bits of p-2 from MSB using its closed form.
  Fe25519 result = one();
  Fe25519 base = a;
  // Bits of p-2, little-endian: bit i of (2^255 - 21).
  // 2^255 - 21 = 2^255 - 16 - 4 - 1 -> low 5 bits are 01011 (11 = 0b01011).
  for (int i = 254; i >= 0; --i) {
    result = square(result);
    int bit;
    if (i >= 5) {
      bit = 1;
    } else {
      // Low 5 bits of (2^255 - 21): 2^5 - 21 = 11 = 0b01011.
      bit = (11 >> i) & 1;
    }
    if (bit) result = mul(result, base);
  }
  return result;
}

Fe25519 Fe25519::pow_p38(const Fe25519& a) {
  // (p+3)/8 = 2^252 - 2: binary is 251 ones followed by a zero.
  Fe25519 result = one();
  for (int i = 251; i >= 0; --i) {
    result = square(result);
    const int bit = (i >= 1) ? 1 : 0;
    if (bit) result = mul(result, a);
  }
  return result;
}

void Fe25519::cswap(Fe25519& a, Fe25519& b, uint64_t bit) {
  const uint64_t mask = 0 - (bit & 1);
  for (int i = 0; i < 5; ++i) {
    const uint64_t t = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= t;
    b.v[i] ^= t;
  }
}

void Fe25519::to_bytes(uint8_t out[32]) const {
  std::array<uint64_t, 5> t = v;
  carry_pass(t);
  carry_pass(t);
  // Canonicalize: compute t + 19, use bit 255 as the "t >= p" flag.
  std::array<uint64_t, 5> u = t;
  u[0] += 19;
  for (int i = 0; i < 4; ++i) {
    u[i + 1] += u[i] >> 51;
    u[i] &= kMask;
  }
  const uint64_t ge_p = u[4] >> 51;  // 1 iff t >= p
  // If t >= p, result = t - p = u - 2^255 (i.e. keep u with top bit cleared).
  const uint64_t mask = 0 - ge_p;
  u[4] &= kMask;
  for (int i = 0; i < 5; ++i) t[i] = (t[i] & ~mask) | (u[i] & mask);

  // Pack 5x51 bits into 32 bytes little-endian.
  uint64_t w0 = t[0] | (t[1] << 51);
  uint64_t w1 = (t[1] >> 13) | (t[2] << 38);
  uint64_t w2 = (t[2] >> 26) | (t[3] << 25);
  uint64_t w3 = (t[3] >> 39) | (t[4] << 12);
  std::memcpy(out, &w0, 8);
  std::memcpy(out + 8, &w1, 8);
  std::memcpy(out + 16, &w2, 8);
  std::memcpy(out + 24, &w3, 8);
}

Fe25519 Fe25519::from_bytes(const uint8_t in[32]) {
  uint64_t w0, w1, w2, w3;
  std::memcpy(&w0, in, 8);
  std::memcpy(&w1, in + 8, 8);
  std::memcpy(&w2, in + 16, 8);
  std::memcpy(&w3, in + 24, 8);
  Fe25519 r;
  r.v[0] = w0 & kMask;
  r.v[1] = ((w0 >> 51) | (w1 << 13)) & kMask;
  r.v[2] = ((w1 >> 38) | (w2 << 26)) & kMask;
  r.v[3] = ((w2 >> 25) | (w3 << 39)) & kMask;
  r.v[4] = (w3 >> 12) & kMask;
  return r;
}

bool Fe25519::is_zero() const {
  uint8_t bytes[32];
  to_bytes(bytes);
  uint8_t acc = 0;
  for (int i = 0; i < 32; ++i) acc |= bytes[i];
  return acc == 0;
}

bool Fe25519::eq(const Fe25519& a, const Fe25519& b) {
  return sub(a, b).is_zero();
}

}  // namespace deepsecure
