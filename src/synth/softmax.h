// Softmax output layer realized as argmax (Section 4.2): Softmax is
// monotone, so the inference label is the index of the maximum logit.
// A linear chain of CMP+MUX blocks tracks the running maximum and its
// index — the paper's (n-1) * (CMP + MUX) construction.
#pragma once

#include "synth/int_blocks.h"

namespace deepsecure::synth {

/// Binary index (clog2(n) bits) of the maximum of `values` (signed
/// buses of equal width). Ties resolve to the lower index.
Bus argmax(Builder& b, const std::vector<Bus>& values);

/// One-hot variant (n wires); costs one extra comparator pass.
Bus argmax_onehot(Builder& b, const std::vector<Bus>& values);

}  // namespace deepsecure::synth
