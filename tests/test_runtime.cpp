// Streaming runtime regressions: the framed garbled-table stream must
// reassemble to the exact monolithic byte stream, thread-pool-sharded
// garbling must be byte-identical to single-threaded garbling (the
// tweak/table-order invariant), and the streaming sessions must agree
// with plaintext evaluation end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "circuit/bench_circuits.h"
#include "circuit/builder.h"
#include "crypto/hash_backend.h"
#include "gc/batch_walk.h"
#include "gc/garble.h"
#include "gc/material.h"
#include "net/mem_channel.h"
#include "support/buffer_pool.h"
#include "runtime/frame.h"
#include "runtime/material_pool.h"
#include "runtime/streaming.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace deepsecure {
namespace {

// Sink channel recording every byte (garbling only sends).
class RecordChannel : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void recv_bytes(void*, size_t) override {
    throw std::logic_error("RecordChannel: recv not supported");
  }
  uint64_t bytes_sent() const override { return bytes.size(); }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override { bytes.clear(); }

  std::vector<uint8_t> bytes;
};

std::vector<uint8_t> garble_stream(const Circuit& c, Block seed,
                                   const GcOptions& opt) {
  RecordChannel ch;
  Garbler g(ch, seed, opt);
  const Labels gz = g.fresh_zeros(c.garbler_inputs.size());
  const Labels ez = g.fresh_zeros(c.evaluator_inputs.size());
  g.garble(c, gz, ez, {});
  return ch.bytes;
}

// Strip the [u32 len] frame headers from a framed garbling stream. The
// first 32 bytes are the constant labels (sent raw ahead of the table
// stream); everything after is length-prefixed frames.
std::vector<uint8_t> deframe(const std::vector<uint8_t>& stream) {
  constexpr size_t kConsts = 32;
  if (stream.size() < kConsts) throw std::runtime_error("stream too short");
  std::vector<uint8_t> out(stream.begin(), stream.begin() + kConsts);
  size_t at = kConsts;
  while (at < stream.size()) {
    if (at + 4 > stream.size()) throw std::runtime_error("truncated header");
    uint32_t len = 0;
    std::memcpy(&len, stream.data() + at, 4);
    at += 4;
    if (len == 0 || len % 16 != 0 || at + len > stream.size())
      throw std::runtime_error("malformed frame");
    out.insert(out.end(), stream.begin() + static_cast<ptrdiff_t>(at),
               stream.begin() + static_cast<ptrdiff_t>(at + len));
    at += len;
  }
  return out;
}

Circuit random_mixed_circuit(Rng& rng, int n_gates) {
  Builder b;
  std::vector<Wire> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kGarbler));
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kEvaluator));
  for (int g = 0; g < n_gates; ++g) {
    const Wire a = pool[rng.next_below(pool.size())];
    const Wire y = pool[rng.next_below(pool.size())];
    switch (rng.next_below(4)) {
      case 0: pool.push_back(b.xor_(a, y)); break;
      case 1: pool.push_back(b.and_(a, y)); break;
      case 2: pool.push_back(b.or_(a, y)); break;
      default: pool.push_back(b.not_(a)); break;
    }
  }
  for (int o = 0; o < 10; ++o)
    b.output(pool[pool.size() - 1 - static_cast<size_t>(o)]);
  return b.build();
}

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ShardsCoverRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_shards(1000, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SmallRangesRunInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_shards(10, 128, [&](size_t lo, size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, PropagatesShardExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_shards(100, 1,
                                    [&](size_t lo, size_t) {
                                      if (lo == 0)
                                        throw std::runtime_error("boom");
                                    }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int sum = 0;
  pool.parallel_shards(7, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 21);
}

// ---------------------------------------------------------------------
// Framed table stream

TEST(RuntimeStream, FramesReassembleByteIdenticalSingleThread) {
  GcOptions mono;  // defaults: batched, monolithic
  GcOptions framed;
  framed.framed_tables = true;
  for (const Circuit& c :
       {bench_circuits::wide_and(3 * kGcMaxBatchWindow + 17),
        bench_circuits::and_chain(64)}) {
    const auto plain = garble_stream(c, Block{7, 8}, mono);
    const auto stream = garble_stream(c, Block{7, 8}, framed);
    EXPECT_EQ(deframe(stream), plain) << c.name;
    EXPECT_GT(stream.size(), plain.size());  // headers really exist
  }
}

// Schedule-aware frame sizing: a capacity drain mid-level no longer
// cuts a frame, so one wide AND level whose hash windows drain several
// times ships as ONE length-prefixed frame — with the exact same
// concatenated payload.
TEST(RuntimeStream, WideLevelShipsAsOneFrame) {
  // One dependency level of ANDs spanning four capacity windows.
  const Circuit c = bench_circuits::wide_and(3 * kGcMaxBatchWindow + 17);
  GcOptions framed;
  framed.framed_tables = true;
  const auto stream = garble_stream(c, Block{3, 9}, framed);

  size_t frames = 0;
  size_t at = 32;  // constant labels travel raw ahead of the frames
  while (at < stream.size()) {
    ASSERT_LE(at + 4, stream.size());
    uint32_t len = 0;
    std::memcpy(&len, stream.data() + at, 4);
    at += 4 + len;
    ++frames;
  }
  ASSERT_EQ(at, stream.size());
  EXPECT_EQ(frames, 1u);  // four windows, one level, one frame
  EXPECT_EQ(deframe(stream), garble_stream(c, Block{3, 9}, GcOptions{}));
}

// Regression: a level whose AND count is an EXACT multiple of the
// window capacity drains entirely via capacity flushes, so its level
// boundary arrives on an empty hash window — it must still cut the
// frame, or the level's tables silently merge into the next level's.
TEST(RuntimeStream, ExactMultipleLevelStillCutsFrameAtBoundary) {
  // Level 1: exactly 2*kGcMaxBatchWindow independent ANDs. Level 2: 64
  // ANDs reading level-1 outputs (the dependency boundary).
  Builder b;
  std::vector<Wire> in;
  for (int i = 0; i < 16; ++i) in.push_back(b.input(Party::kGarbler));
  for (int i = 0; i < 16; ++i) in.push_back(b.input(Party::kEvaluator));
  std::vector<Wire> chain{in[0]};
  const size_t n1 = 2 * kGcMaxBatchWindow;
  for (size_t i = 1; i <= n1; ++i)
    chain.push_back(b.xor_(chain.back(), in[i % in.size()]));
  std::vector<Wire> l1;
  for (size_t g = 0; g < n1; ++g)
    l1.push_back(b.and_(chain[g], chain[g + 1]));
  std::vector<Wire> l2;
  for (size_t i = 0; i + 1 < 65; ++i)
    l2.push_back(b.and_(l1[i], l1[i + 1]));
  for (size_t i = 0; i < 8; ++i) b.output(l2[i]);
  const Circuit c = b.build();

  GcOptions framed;
  framed.framed_tables = true;
  const auto stream = garble_stream(c, Block{6, 6}, framed);
  size_t frames = 0;
  size_t at = 32;
  while (at < stream.size()) {
    ASSERT_LE(at + 4, stream.size());
    uint32_t len = 0;
    std::memcpy(&len, stream.data() + at, 4);
    at += 4 + len;
    ++frames;
  }
  ASSERT_EQ(at, stream.size());
  // One frame for level 1 (cut at its boundary), one for level 2's
  // small remainder (shipped by the end-of-circuit flush).
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(deframe(stream), garble_stream(c, Block{6, 6}, GcOptions{}));
}

TEST(RuntimeStream, FramesReassembleByteIdenticalMultiThread) {
  ThreadPool pool(3);
  GcOptions mono;
  GcOptions framed_mt;
  framed_mt.framed_tables = true;
  framed_mt.pool = &pool;
  framed_mt.min_shard_gates = 8;  // force real sharding on small windows
  Rng rng(515);
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = random_mixed_circuit(rng, 600);
    const Block seed{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(deframe(garble_stream(c, seed, framed_mt)),
              garble_stream(c, seed, mono))
        << "trial " << trial;
  }
}

TEST(RuntimeStream, ThreadPoolGarblingByteIdenticalToSequential) {
  // The retained sequential path vs 1-worker and 3-worker pools, on a
  // circuit wide enough for multiple capacity windows.
  const Circuit c = bench_circuits::wide_and(2 * kGcMaxBatchWindow + 311);
  GcOptions seq;
  const auto reference = garble_stream(c, Block{21, 42}, seq);
  for (const size_t workers : {1u, 3u}) {
    ThreadPool pool(workers);
    GcOptions mt;
    mt.pool = &pool;
    mt.min_shard_gates = 16;
    EXPECT_EQ(garble_stream(c, Block{21, 42}, mt), reference)
        << workers << " workers";
  }
}

// Zero-copy data plane: pool-slab-backed garbling shipping borrowed
// iovec slices must put the EXACT bytes of the copy path on the wire —
// same frame cuts, same payload — in both schedule modes and across
// hash backends (the recording channel funnels send_iov through the
// copy fallback, so the comparison covers the full slice assembly).
TEST(RuntimeStream, ZeroCopyStreamByteIdenticalToCopyPath) {
  const std::string orig_backend = hash_backend().name;
  const Circuit circuits[] = {bench_circuits::wide_and(3 * kGcMaxBatchWindow + 17),
                              bench_circuits::and_chain(64),
                              bench_circuits::wide_chain_layer(1024)};
  size_t backends_covered = 0;
  for (const char* backend : {"vaes16", "aesni8", "bitsliced8", "scalar"}) {
    if (backends_covered == 2) break;  // two backends is the contract
    if (!set_hash_backend(backend)) continue;  // not on this host
    ++backends_covered;
    for (const bool schedule : {false, true}) {
      for (const Circuit& c : circuits) {
        GcOptions copy;
        copy.framed_tables = true;
        copy.schedule = schedule;
        const auto reference = garble_stream(c, Block{33, 44}, copy);
        BufferPool slab_pool(GarbleWindowLine::bytes_for(kGcMaxBatchWindow));
        GcOptions zc = copy;
        zc.table_pool = &slab_pool;
        EXPECT_EQ(garble_stream(c, Block{33, 44}, zc), reference)
            << c.name << " backend=" << backend << " schedule=" << schedule;
        // Every slab came back: the recording channel consumes borrowed
        // slices synchronously, so nothing may stay checked out.
        BufferRef probe = slab_pool.acquire();
        EXPECT_EQ(probe.use_count(), 1u) << c.name;
      }
    }
  }
  EXPECT_GE(backends_covered, 1u);
  set_hash_backend(orig_backend);
}

TEST(RuntimeStream, XorOnlyCircuitProducesNoFrames) {
  // Free-XOR-only netlist: no tables, so the framed stream must contain
  // zero frames (just the constant labels) and still evaluate.
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kGarbler);
  b.output(b.xor_(x, y));
  const Circuit c = b.build();

  GcOptions framed;
  framed.framed_tables = true;
  EXPECT_EQ(garble_stream(c, Block{1, 2}, framed).size(), 32u);

  ChannelPair pair = make_channel_pair();
  BitVec decoded;
  std::thread g([&] {
    Garbler gb(*pair.a, Block{1, 2}, framed);
    const Labels gz = gb.fresh_zeros(2);
    gb.send_active(BitVec{1, 1}, gz);
    decoded = gb.decode_outputs(gb.garble(c, gz, {}, {}));
  });
  Evaluator ev(*pair.b, framed);
  const Labels gl = ev.recv_active(2);
  ev.send_outputs(ev.evaluate(c, gl, {}, {}));
  g.join();
  EXPECT_EQ(decoded, BitVec{0});
}

// ---------------------------------------------------------------------
// Streaming sessions end to end (framed + sharded vs plaintext)

TEST(RuntimeStream, StreamingSessionsMatchPlaintextChain) {
  std::vector<Circuit> chain;
  for (int l = 0; l < 3; ++l)
    chain.push_back(bench_circuits::wide_chain_layer(512));

  Rng rng(808);
  BitVec data(chain.front().garbler_inputs.size());
  for (auto& b : data) b = rng.next_bool();
  BitVec weights;
  for (const Circuit& c : chain)
    for (size_t i = 0; i < c.evaluator_inputs.size(); ++i)
      weights.push_back(rng.next_bool() ? 1 : 0);

  BitVec expect = data;
  size_t consumed = 0;
  for (const Circuit& c : chain) {
    const size_t n = c.evaluator_inputs.size();
    const BitVec w(weights.begin() + static_cast<ptrdiff_t>(consumed),
                   weights.begin() + static_cast<ptrdiff_t>(consumed + n));
    consumed += n;
    expect = c.eval(expect, w);
  }

  runtime::StreamConfig cfg;
  cfg.garble_threads = 2;

  ChannelPair pair = make_channel_pair();
  BitVec got_g, got_e;
  std::thread server([&] {
    runtime::StreamingEvaluator eval(*pair.b, cfg);
    got_e = eval.run_chain(chain, weights);
  });
  {
    runtime::StreamingGarbler garbler(*pair.a, Block{31, 62}, cfg);
    got_g = garbler.run_chain(chain, data);
  }
  server.join();
  EXPECT_EQ(got_g, expect);
  EXPECT_EQ(got_e, expect);
}

// ---------------------------------------------------------------------
// Offline artifacts + MaterialPool

TEST(Material, TablesByteIdenticalToOnDemandStream) {
  // For a single-circuit chain the offline artifact's table stream must
  // be byte-identical to the monolithic on-demand stream from the same
  // seed — the offline split changes *when* garbling runs, not what the
  // evaluator consumes.
  const Circuit c = bench_circuits::wide_and(2 * kGcMaxBatchWindow + 5);
  const Block seed{404, 808};
  const GarbledMaterial mat = garble_offline({c}, seed);
  EXPECT_EQ(mat.tables, garble_stream(c, seed, GcOptions{}));
  EXPECT_EQ(mat.data_zeros.size(), c.garbler_inputs.size());
  EXPECT_EQ(mat.eval_zeros.size(), c.evaluator_inputs.size());
  EXPECT_EQ(mat.decode_bits.size(), c.outputs.size());
  EXPECT_EQ(mat.fingerprint, chain_fingerprint({c}, GcOptions{}.schedule));
}

TEST(Material, EvaluateMaterialMatchesPlaintextChain) {
  // Local offline/online round trip with hand-resolved labels (no OT):
  // pick active labels from the artifact's zero labels + delta exactly
  // as the derandomized OT would, evaluate, compare with plaintext.
  std::vector<Circuit> chain;
  for (int l = 0; l < 3; ++l)
    chain.push_back(bench_circuits::wide_chain_layer(384));

  Rng rng(909);
  BitVec data(chain.front().garbler_inputs.size());
  for (auto& b : data) b = rng.next_bool();
  BitVec weights;
  for (const Circuit& c : chain)
    for (size_t i = 0; i < c.evaluator_inputs.size(); ++i)
      weights.push_back(rng.next_bool() ? 1 : 0);

  BitVec expect = data;
  size_t consumed = 0;
  for (const Circuit& c : chain) {
    const size_t n = c.evaluator_inputs.size();
    const BitVec w(weights.begin() + static_cast<ptrdiff_t>(consumed),
                   weights.begin() + static_cast<ptrdiff_t>(consumed + n));
    consumed += n;
    expect = c.eval(expect, w);
  }

  const GarbledMaterial mat = garble_offline(chain, Block{17, 34});
  EvalMaterial em;
  em.decode_bits = mat.decode_bits;
  em.tables = mat.tables;
  em.eval_labels.resize(mat.eval_zeros.size());
  for (size_t i = 0; i < mat.eval_zeros.size(); ++i)
    em.eval_labels[i] =
        weights[i] ? (mat.eval_zeros[i] ^ mat.delta) : mat.eval_zeros[i];
  Labels g_labels(mat.data_zeros.size());
  for (size_t i = 0; i < mat.data_zeros.size(); ++i)
    g_labels[i] = data[i] ? (mat.data_zeros[i] ^ mat.delta) : mat.data_zeros[i];

  EXPECT_EQ(evaluate_material(chain, em, g_labels), expect);
}

TEST(MaterialPool, KeepsTargetInstancesReadyAndRefills) {
  std::vector<Circuit> chain{bench_circuits::wide_chain_layer(256)};
  runtime::MaterialPool pool(chain, GcOptions{}, /*target=*/2,
                             /*producer_threads=*/2, Block{7, 7});

  const GarbledMaterial a = pool.acquire();
  const GarbledMaterial b = pool.acquire();
  EXPECT_EQ(a.fingerprint, chain_fingerprint(chain, GcOptions{}.schedule));
  // Distinct artifacts: labels must never repeat across instances.
  EXPECT_FALSE(a.delta == b.delta);
  EXPECT_EQ(pool.acquired(), 2u);

  // The pool refills toward its target in the background.
  Stopwatch sw;
  while (pool.ready() < 2 && sw.seconds() < 10.0)
    std::this_thread::yield();
  EXPECT_GE(pool.ready(), 2u);
  EXPECT_GE(pool.produced(), 4u);
}

TEST(MaterialPool, ConcurrentAcquiresAtZeroTarget) {
  // target 0 plans no inventory; every blocked acquire must still get
  // its own ad-hoc production (two waiters once deadlocked on one).
  std::vector<Circuit> chain{bench_circuits::wide_chain_layer(128)};
  runtime::MaterialPool pool(chain, GcOptions{}, /*target=*/0,
                             /*producer_threads=*/2, Block{9, 9});
  GarbledMaterial a, b;
  std::thread t1([&] { a = pool.acquire(); });
  std::thread t2([&] { b = pool.acquire(); });
  t1.join();
  t2.join();
  EXPECT_FALSE(a.delta == b.delta);
  EXPECT_EQ(pool.acquired(), 2u);
}

TEST(MaterialPool, TryAcquireReportsDrain) {
  std::vector<Circuit> chain{bench_circuits::wide_chain_layer(4096)};
  runtime::MaterialPool pool(chain, GcOptions{}, /*target=*/1,
                             /*producer_threads=*/1, Block{8, 8});
  // Drain it, then keep asking: misses are counted, production catches
  // up eventually.
  (void)pool.acquire();
  std::optional<GarbledMaterial> got;
  Stopwatch sw;
  while (!(got = pool.try_acquire()) && sw.seconds() < 10.0)
    std::this_thread::yield();
  EXPECT_TRUE(got.has_value());
  EXPECT_GE(pool.misses() + pool.acquired(), 2u);
}

// ---------------------------------------------------------------------
// Session frames + fingerprint

TEST(RuntimeFrame, RoundTripAndErrorPropagation) {
  ChannelPair pair = make_channel_pair();
  runtime::Hello h;
  h.fingerprint = 0xdeadbeefcafef00dull;
  runtime::send_hello(*pair.a, h);
  const runtime::Hello back = runtime::parse_hello(runtime::recv_frame(*pair.b));
  EXPECT_EQ(back.magic, runtime::kProtocolMagic);
  EXPECT_EQ(back.fingerprint, h.fingerprint);
  EXPECT_TRUE(back.flags.framed_tables);

  runtime::send_error(*pair.b, "nope");
  EXPECT_THROW(runtime::recv_frame(*pair.a), std::runtime_error);
}

TEST(RuntimeFrame, FingerprintSeparatesChains) {
  const std::vector<Circuit> a{bench_circuits::wide_and(100)};
  const std::vector<Circuit> b{bench_circuits::wide_and(101)};
  const std::vector<Circuit> a2{bench_circuits::wide_and(100)};
  EXPECT_EQ(runtime::chain_fingerprint(a), runtime::chain_fingerprint(a2));
  EXPECT_NE(runtime::chain_fingerprint(a), runtime::chain_fingerprint(b));
}

}  // namespace
}  // namespace deepsecure
