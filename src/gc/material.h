// Offline-phase garbling artifacts (the DeepSecure offline/online split,
// Section 2.2 / the paper's "constant + input-dependent" cost model):
// everything about a garbled execution that does not depend on either
// party's inputs is computed ahead of time and captured in a
// self-contained GarbledMaterial. The online phase then consumes one
// artifact per inference and is reduced to label transfer + evaluation:
//
//   offline (garbler, local):   garble the chain -> tables, input-label
//                               pairs, output-decode bits, fingerprint
//   offline (both, interactive):random-OT precompute + derandomized
//                               label transfer for the evaluator's
//                               static inputs; ship tables/decode bits
//   online  (garbler):          send active data labels  (n0 blocks)
//   online  (evaluator):        evaluate from local material, decode,
//                               return the result
//
// Each artifact burns one fresh delta / label set and must be used for
// exactly one evaluation (reuse would leak wire values), which is why
// the runtime pools whole instances rather than caching one.
#pragma once

#include <cstdint>
#include <vector>

#include "gc/garble.h"

namespace deepsecure {

/// FNV-1a over the full gate list and interface of every circuit in the
/// chain: two endpoints that compiled different netlists (or different
/// layer orders) disagree with overwhelming probability. Stamped into
/// every offline artifact and cross-checked by the runtime handshake
/// (runtime::chain_fingerprint is an alias of this).
///
/// `scheduled` selects which gate order is hashed: the protocol's table
/// stream and tweak sequence follow the *walked* order, so the
/// fingerprint must cover the order the endpoints actually execute —
/// pass GcOptions::schedule / StreamConfig::schedule. Two endpoints
/// whose walked orders coincide (e.g. scheduling is the identity on
/// this chain) agree either way.
uint64_t chain_fingerprint(const std::vector<Circuit>& chain, bool scheduled);
uint64_t chain_fingerprint(const std::vector<Circuit>& chain);

/// Garbler-side offline artifact for one inference over a circuit
/// chain. `tables` is the monolithic constant-label + garbled-table
/// stream exactly as Evaluator::evaluate consumes it, circuit by
/// circuit in chain order (always unframed: the artifact ships as one
/// opaque bulk payload, so window framing would only add headers).
struct GarbledMaterial {
  uint64_t fingerprint = 0;  // chain_fingerprint of the garbled chain
  Block delta{};
  Labels data_zeros;   // circuit-0 garbler-input zero labels
  Labels eval_zeros;   // evaluator-input zero labels, chain order
  BitVec decode_bits;  // lsb permute bits of the final outputs
  std::vector<uint8_t> tables;

  /// Number of oblivious transfers the online phase needs — one per
  /// evaluator input bit across the whole chain.
  size_t ot_count() const { return eval_zeros.size(); }
};

/// Offline stage: garble `chain` into a self-contained artifact. Pure
/// local computation — no channel, no peer. `opt.pipeline` and
/// `opt.pool` apply as in streaming garbling; `opt.framed_tables` is
/// ignored (see GarbledMaterial::tables).
///
/// Intra-artifact sharding: with `opt.pool` set, ONE artifact's batch
/// windows fan out across the pool's workers exactly like streaming
/// garbling does — tweaks are assigned and table rows placed at enqueue
/// time on the walking thread, so the artifact (table stream, labels,
/// decode bits, fingerprint) is byte-identical to the sequential path
/// at any thread count. This is what cuts the time-to-first-warm-
/// artifact after a model (re)load: the first artifact completes in
/// ~1/shards of a single-threaded garble instead of having to wait for
/// one core to finish it (runtime::MaterialPool::shard_threads).
GarbledMaterial garble_offline(const std::vector<Circuit>& chain, Block seed,
                               const GcOptions& opt = {});

/// Evaluator-side half of one pooled inference: everything that arrived
/// ahead of the request. `eval_labels` are the *active* evaluator-input
/// labels (the precomputed OTs already resolved them).
struct EvalMaterial {
  Labels eval_labels;
  BitVec decode_bits;
  std::vector<uint8_t> tables;
};

/// Online stage, evaluator side: evaluate `chain` against local
/// material. `garbler_labels` are the active circuit-0 garbler-input
/// labels — the only per-request transfer. Returns the decoded output
/// bits (decode happens locally via the artifact's decode bits).
BitVec evaluate_material(const std::vector<Circuit>& chain,
                         const EvalMaterial& mat, const Labels& garbler_labels,
                         const GcOptions& opt = {});

/// Ship the input-independent bytes of an artifact (decode bits +
/// tables) to the peer. The evaluator-input labels travel separately
/// through the precomputed-OT derandomization.
void send_material(Channel& ch, const GarbledMaterial& mat);

/// Donating overload: consumes `mat.tables` and ships it as one
/// borrowed refcounted slice (support/buffer_pool.h), so an
/// asynchronous channel forwards the multi-MB table stream without
/// copying it — the client prefetch lane's push path. Byte-identical
/// wire stream to the const overload.
void send_material(Channel& ch, GarbledMaterial&& mat);

/// Counterpart of send_material: returns an EvalMaterial with
/// `eval_labels` still empty (the caller fills it after the OT step).
/// The limits bound the allocations a peer's length headers can demand
/// (both the decode-bit count and the table stream are read from the
/// wire) — a server that knows the chain passes the exact expected
/// sizes.
EvalMaterial recv_material(Channel& ch,
                           uint64_t max_table_bytes = uint64_t{1} << 30,
                           uint64_t max_decode_bits = uint64_t{1} << 24);

}  // namespace deepsecure
