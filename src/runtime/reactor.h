// Event-driven server core (ServerCore::kEventLoop): an epoll reactor
// plus a small worker pool, replacing thread-per-session scaling with
// readiness-driven scheduling. Total thread count is workers + 1 (the
// loop), independent of how many sessions are connected.
//
// Structure:
//
//   loop thread                         worker pool (≤ 2 × cores)
//   ───────────                         ─────────────────────────
//   epoll_wait ──┬─ listener readable → accept-drain, register conn
//                ├─ conn readable ────→ ready queue ─→ resume state
//                │                       machine: handshake / lane
//                │                       attach / serve frames; then
//                │                       re-park (EPOLLONESHOT re-arm)
//                ├─ eventfd ──────────→ re-check listener gating / stop
//                └─ timer wheel tick ─→ evict idle parked conns
//
// Per-connection state machine: kHandshake → kOpen (sessions) and
// kLaneAttach → kLaneOpen (prefetch lanes). Connections are
// EPOLLONESHOT — an event hands exclusive ownership of the connection
// to one worker, which serves frames with *blocking semantics over the
// nonblocking fd* (TcpChannel resumes short reads/writes via poll; see
// net/tcp_channel.h) and re-arms the fd when the frame burst is done.
// Before re-parking, the worker drains BufferedChannel user-space
// read-ahead (recv_buffered) — epoll cannot see bytes already pulled
// out of the kernel, so pipelined back-to-back frames would otherwise
// stall until the next wire byte.
//
// Idle timeout: a hashed timer wheel in the loop, replacing
// SO_RCVTIMEO (which nonblocking sockets ignore). Eviction shuts the
// transport down and lets the resulting readiness event run the normal
// worker teardown path — the timer never destroys state cross-thread.
// Mid-exchange stalls are bounded separately by TcpChannel's poll
// deadline.
//
// Session gating: when sessions_active reaches max_sessions, the
// primary listener is removed from the epoll set — excess clients wait
// in the listen backlog (same semantics as the thread core's slot
// wait) — and re-added when a session ends.
//
// All protocol logic (handshake validation, infer/prefetch handling,
// budget settlement, lane tokens) is shared with the thread core via
// InferenceServer's private helpers: both cores serve byte-identical
// v4 wire exchanges.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/server.h"

namespace deepsecure::runtime {

class EventCore {
 public:
  explicit EventCore(InferenceServer& srv);
  ~EventCore();

  EventCore(const EventCore&) = delete;
  EventCore& operator=(const EventCore&) = delete;

  /// Arm listeners, spawn the loop thread and the worker pool.
  void start();

  /// Drain every live connection through the normal teardown path
  /// (budget settled exactly once per session), then join all threads.
  /// Idempotent.
  void stop();

 private:
  enum class Stage { kHandshake, kOpen, kLaneAttach, kLaneOpen };

  // One connection's state machine. Ownership alternates between the
  // epoll set (parked) and exactly one worker (resumed) — never both,
  // enforced by EPOLLONESHOT. `parked`/`park_gen` are guarded by mu_;
  // everything else is touched only by the current owner.
  struct Conn {
    uint64_t id = 0;
    bool is_lane = false;
    Stage stage = Stage::kHandshake;
    std::unique_ptr<TcpChannel> transport;
    // Chaos decorator between transport and ch when cfg.chaos is
    // enabled (declared between them: ch drops its reference first,
    // then the fault layer, then the transport it wraps).
    std::unique_ptr<FaultChannel> fault;
    std::unique_ptr<BufferedChannel> ch;
    std::shared_ptr<InferenceServer::SessionState> state;
    uint64_t lane_token = 0;
    bool token_registered = false;
    std::unique_ptr<ThreadPool> eval_pool;
    std::unique_ptr<EvaluatorSession> session;  // references *ch
    bool registered = false;  // fd has been EPOLL_CTL_ADDed
    bool parked = false;      // armed in the epoll set
    uint64_t park_gen = 0;    // invalidates stale timer entries
    // Observability stamps (obs::now_ns): accept time for the session
    // wall, park time and readiness time for the parked/dispatch phases.
    uint64_t accept_ns = 0;
    uint64_t parked_at_ns = 0;
    uint64_t ready_ns = 0;
  };

  struct WheelEntry {
    uint64_t id = 0;
    uint64_t gen = 0;
    // Phase-deadline entry (armed at dispatch): fires while the conn is
    // still OWNED BY A WORKER at the same generation — the inverse of
    // an idle entry, which fires while the conn is still parked.
    bool phase = false;
  };

  // --- loop side ------------------------------------------------------
  void loop();
  void accept_drain(bool lane);
  void arm_listener(bool lane, bool on);
  void advance_timers();
  int epoll_timeout_ms();
  void wake();
  uint64_t elapsed_ms() const;

  // --- worker side ----------------------------------------------------
  void worker_loop();
  void process(Conn* c);
  bool do_handshake(Conn& c);
  bool do_lane_attach(Conn& c);
  bool serve_session_frame(Conn& c);
  bool serve_lane_frame(Conn& c);
  /// Re-arm the fd (EPOLLONESHOT) and schedule the idle timer.
  bool park(Conn* c);
  /// Settle protocol state, free the session slot, destroy the conn.
  void teardown(Conn* c);

  InferenceServer& srv_;

  // --- observability: handles into srv_.metrics_ (resolved once in the
  // constructor; hot paths never do name lookups) ----------------------
  obs::Counter& c_rearms_;           // EPOLLONESHOT re-arms (MOD only)
  obs::Counter& c_timer_evictions_;  // idle conns shut down by the wheel
  obs::Counter& c_listener_gated_;   // times the listener was gated
  obs::Counter& c_listener_gated_ns_;  // total gated duration
  obs::Gauge& g_queue_depth_;        // ready_ occupancy (loop → workers)
  obs::Histogram& h_dispatch_;       // readiness → worker pickup (ns)
  obs::Histogram& h_parked_;         // park → readiness (ns)
  // Loop-thread only: when != 0, the primary listener is currently
  // gated at max_sessions and this is the gating start time.
  uint64_t listener_gated_since_ = 0;

  int ep_ = -1;
  int wakefd_ = -1;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<Conn*> ready_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;
  bool started_ = false;
  bool stopping_ = false;
  bool workers_stop_ = false;
  bool listener_armed_ = false;
  bool lane_listener_armed_ = false;

  // Hashed timer wheel (idle_timeout_ms or phase_timeout_ms > 0):
  // buckets of lazily cancelled {conn, generation} entries, one bucket
  // per tick. Idle entries (armed at park) and phase entries (armed at
  // dispatch) share the wheel; each kind is invalidated by the park_gen
  // bump of the opposite transition.
  uint64_t tick_ms_ = 0;  // 0 = timers disabled
  uint64_t timeout_ticks_ = 0;  // idle deadline, in ticks (0 = off)
  uint64_t phase_ticks_ = 0;    // per-phase deadline, in ticks (0 = off)
  uint64_t current_tick_ = 0;
  size_t timers_live_ = 0;
  std::vector<std::vector<WheelEntry>> wheel_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace deepsecure::runtime
