#include "net/mem_channel.h"

#include <cstring>

namespace deepsecure {

ChannelPair make_channel_pair() {
  auto q_ab = std::make_shared<MemChannel::Queue>();
  auto q_ba = std::make_shared<MemChannel::Queue>();
  ChannelPair pair;
  pair.a = std::unique_ptr<MemChannel>(new MemChannel);
  pair.b = std::unique_ptr<MemChannel>(new MemChannel);
  pair.a->out_ = q_ab;
  pair.a->in_ = q_ba;
  pair.b->out_ = q_ba;
  pair.b->in_ = q_ab;
  return pair;
}

void MemChannel::send_bytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t pushed = 0;
  while (pushed < n) {
    std::unique_lock<std::mutex> lock(out_->mu);
    out_->cv_space.wait(lock, [&] {
      return out_->data.size() - out_->head < out_->max_bytes || out_->closed;
    });
    if (out_->closed) throw ChannelClosed{};
    const size_t space = out_->max_bytes - (out_->data.size() - out_->head);
    const size_t take = std::min(space, n - pushed);
    out_->data.insert(out_->data.end(), p + pushed, p + pushed + take);
    pushed += take;
    lock.unlock();
    out_->cv.notify_one();
  }
  sent_ += n;
}

void MemChannel::close() {
  for (auto& q : {out_, in_}) {
    {
      std::lock_guard<std::mutex> lock(q->mu);
      q->closed = true;
    }
    q->cv.notify_all();
    q->cv_space.notify_all();
  }
}

size_t MemChannel::recv_some(void* data, size_t min_n, size_t max_n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  std::unique_lock<std::mutex> lock(in_->mu);
  // Block only until min_n is satisfied; then take whatever extra is
  // already queued (up to max_n) without waiting.
  while (got < min_n) {
    in_->cv.wait(lock,
                 [&] { return in_->data.size() > in_->head || in_->closed; });
    if (in_->data.size() == in_->head) throw ChannelClosed{};
    const size_t avail = in_->data.size() - in_->head;
    const size_t take = std::min(avail, max_n - got);
    std::memcpy(p + got, in_->data.data() + in_->head, take);
    in_->head += take;
    got += take;
    if (in_->head == in_->data.size()) {
      in_->data.clear();
      in_->head = 0;
    }
    in_->cv_space.notify_one();
  }
  received_ += got;
  return got;
}

void MemChannel::recv_bytes(void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  std::unique_lock<std::mutex> lock(in_->mu);
  while (got < n) {
    in_->cv.wait(lock,
                 [&] { return in_->data.size() > in_->head || in_->closed; });
    if (in_->data.size() == in_->head) throw ChannelClosed{};
    const size_t avail = in_->data.size() - in_->head;
    const size_t take = std::min(avail, n - got);
    std::memcpy(p + got, in_->data.data() + in_->head, take);
    in_->head += take;
    got += take;
    if (in_->head == in_->data.size()) {
      in_->data.clear();
      in_->head = 0;
    }
    in_->cv_space.notify_one();
  }
  received_ += n;
}

}  // namespace deepsecure
