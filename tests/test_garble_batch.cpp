// Regression tests for the batched fixed-key hashing pipeline: the
// batched garbler/evaluator must be byte- and label-identical to the
// retained scalar reference path for the same seed, including circuits
// with AND->AND chains that force mid-window flushes and circuits wide
// enough to overflow the batch window.
#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/bench_circuits.h"
#include "circuit/builder.h"
#include "gc/garble.h"
#include "net/party.h"
#include "support/rng.h"

namespace deepsecure {
namespace {

// Sink channel that records every byte the garbler sends. The garbling
// pass itself never receives, so recv is a hard error.
class RecordChannel : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void recv_bytes(void*, size_t) override {
    throw std::logic_error("RecordChannel: recv not supported");
  }
  uint64_t bytes_sent() const override { return bytes.size(); }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override { bytes.clear(); }

  std::vector<uint8_t> bytes;
};

struct GarbleTrace {
  std::vector<uint8_t> stream;  // constants + garbled tables, in order
  Labels outputs;
  Labels state_next;
};

GarbleTrace garble_trace(const Circuit& c, Block seed, GcPipeline pipeline) {
  RecordChannel ch;
  Garbler g(ch, seed, pipeline);
  GarbleTrace t;
  const Labels gz = g.fresh_zeros(c.garbler_inputs.size());
  const Labels ez = g.fresh_zeros(c.evaluator_inputs.size());
  const Labels sz = g.fresh_zeros(c.state_inputs.size());
  t.outputs = g.garble(c, gz, ez, sz, &t.state_next);
  t.stream = std::move(ch.bytes);
  return t;
}

void expect_pipelines_identical(const Circuit& c, Block seed) {
  const GarbleTrace scalar = garble_trace(c, seed, GcPipeline::kScalar);
  const GarbleTrace batched = garble_trace(c, seed, GcPipeline::kBatched);
  EXPECT_EQ(scalar.stream, batched.stream) << "table byte stream diverged";
  EXPECT_EQ(scalar.outputs, batched.outputs) << "output labels diverged";
  EXPECT_EQ(scalar.state_next, batched.state_next);
}

Circuit random_mixed_circuit(Rng& rng, int n_gates) {
  Builder b;
  std::vector<Wire> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kGarbler));
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kEvaluator));
  for (int g = 0; g < n_gates; ++g) {
    const Wire a = pool[rng.next_below(pool.size())];
    const Wire y = pool[rng.next_below(pool.size())];
    switch (rng.next_below(4)) {
      case 0: pool.push_back(b.xor_(a, y)); break;
      case 1: pool.push_back(b.and_(a, y)); break;
      case 2: pool.push_back(b.or_(a, y)); break;
      default: pool.push_back(b.not_(a)); break;
    }
  }
  for (int o = 0; o < 10; ++o)
    b.output(pool[pool.size() - 1 - static_cast<size_t>(o)]);
  return b.build();
}

TEST(GarbleBatch, AndChainForcesFlushEveryGate) {
  const Circuit c = bench_circuits::and_chain(64);
  // Every AND after the first reads a pending AND output (via the XOR),
  // so the schedule must contain a flush point per chained gate.
  EXPECT_GE(c.gc_flush_points()->size(), 63u);
  expect_pipelines_identical(c, Block{11, 22});
}

TEST(GarbleBatch, WideCircuitHasNoDependencyFlushes) {
  const Circuit c = bench_circuits::wide_and(3 * kGcMaxBatchWindow + 17);
  EXPECT_TRUE(c.gc_flush_points()->empty());
  // Exercises capacity flushes (> 3 windows) and the non-multiple tail.
  expect_pipelines_identical(c, Block{33, 44});
}

TEST(GarbleBatch, RandomMixedCircuitsByteIdentical) {
  Rng rng(2026);
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = random_mixed_circuit(rng, 400);
    expect_pipelines_identical(c, Block{rng.next_u64(), rng.next_u64()});
  }
}

TEST(GarbleBatch, SequentialStateCircuitByteIdentical) {
  // Ripple accumulator: carries make AND outputs feed the next gates.
  Builder b;
  std::vector<Wire> in(4);
  for (auto& w : in) w = b.input(Party::kGarbler);
  std::vector<Wire> acc = b.state_inputs(8);
  std::vector<Wire> next(8);
  Wire carry = b.const_bit(false);
  for (int i = 0; i < 8; ++i) {
    const Wire ai = i < 4 ? in[i] : b.const_bit(false);
    const Wire axc = b.xor_(acc[i], carry);
    const Wire bxc = b.xor_(ai, carry);
    next[i] = b.xor_(axc, ai);
    carry = b.xor_(carry, b.and_(axc, bxc));
  }
  b.set_state_next(next);
  b.outputs(next);
  expect_pipelines_identical(b.build(), Block{55, 66});
}

// Byte-identity means the pipelines interoperate: run every combination
// of {scalar,batched} garbler x evaluator end-to-end and decode.
TEST(GarbleBatch, CrossPipelineTwoPartyAgreesWithPlaintext) {
  Rng rng(31337);
  const Circuit c = random_mixed_circuit(rng, 300);
  BitVec g_bits(8), e_bits(8);
  for (auto& v : g_bits) v = rng.next_bool();
  for (auto& v : e_bits) v = rng.next_bool();
  const BitVec expect = c.eval(g_bits, e_bits);

  for (const GcPipeline gp : {GcPipeline::kScalar, GcPipeline::kBatched}) {
    for (const GcPipeline ep : {GcPipeline::kScalar, GcPipeline::kBatched}) {
      BitVec decoded;
      run_two_party(
          [&](Channel& ch) {
            Garbler g(ch, Block{42, 42}, gp);
            const Labels gz = g.fresh_zeros(g_bits.size());
            const Labels ez = g.fresh_zeros(e_bits.size());
            g.send_active(g_bits, gz);
            std::vector<Block> active(e_bits.size());
            for (size_t i = 0; i < e_bits.size(); ++i)
              active[i] = e_bits[i] ? (ez[i] ^ g.delta()) : ez[i];
            ch.send_bytes(active.data(), active.size() * sizeof(Block));
            const Labels out = g.garble(c, gz, ez, {});
            decoded = g.decode_outputs(out);
          },
          [&](Channel& ch) {
            Evaluator e(ch, ep);
            const Labels gl = e.recv_active(g_bits.size());
            const Labels el = e.recv_active(e_bits.size());
            const Labels out = e.evaluate(c, gl, el, {});
            e.send_outputs(out);
          });
      EXPECT_EQ(decoded, expect)
          << "garbler=" << int(gp) << " evaluator=" << int(ep);
    }
  }
}

TEST(GarbleBatch, FlushScheduleIsCachedAcrossCalls) {
  const Circuit c = bench_circuits::and_chain(8);
  const auto first = c.gc_flush_points();
  const auto second = c.gc_flush_points();
  EXPECT_EQ(first.get(), second.get());  // same cached vector
}

}  // namespace
}  // namespace deepsecure
