#include <gtest/gtest.h>

#include <algorithm>

#include "synth/int_blocks.h"
#include "test_util.h"

namespace deepsecure::synth {
namespace {

using test::pack_fixed;
using test::random_fixed;
using test::unpack_fixed;

// Build a two-operand block circuit and evaluate it on raw values.
template <typename Fn>
int64_t eval_binary(Fn&& fn, int64_t a, int64_t b, FixedFormat fmt) {
  Builder bld;
  const Bus x = input_fixed(bld, Party::kGarbler, fmt);
  const Bus y = input_fixed(bld, Party::kEvaluator, fmt);
  bld.outputs(fn(bld, x, y));
  const Circuit c = bld.build();
  const BitVec out = c.eval(Fixed::from_raw(a, fmt).to_bits(),
                            Fixed::from_raw(b, fmt).to_bits());
  return Fixed::from_bits(out, fmt).raw();
}

template <typename Fn>
int eval_predicate(Fn&& fn, int64_t a, int64_t b, FixedFormat fmt) {
  Builder bld;
  const Bus x = input_fixed(bld, Party::kGarbler, fmt);
  const Bus y = input_fixed(bld, Party::kEvaluator, fmt);
  bld.output(fn(bld, x, y));
  const Circuit c = bld.build();
  const BitVec out = c.eval(Fixed::from_raw(a, fmt).to_bits(),
                            Fixed::from_raw(b, fmt).to_bits());
  return out[0];
}

class IntBlocksSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(IntBlocksSweep, AddSubNegateRandomized) {
  const size_t width = GetParam();
  const FixedFormat fmt{width, width / 2};
  Rng rng(width);
  for (int i = 0; i < 50; ++i) {
    const int64_t a = Fixed::from_raw(static_cast<int64_t>(rng.next_u64()), fmt).raw();
    const int64_t b = Fixed::from_raw(static_cast<int64_t>(rng.next_u64()), fmt).raw();
    EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus& y) {
                return add(bl, x, y);
              }, a, b, fmt),
              (Fixed::from_raw(a, fmt) + Fixed::from_raw(b, fmt)).raw());
    EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus& y) {
                return sub(bl, x, y);
              }, a, b, fmt),
              (Fixed::from_raw(a, fmt) - Fixed::from_raw(b, fmt)).raw());
    EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus&) {
                return negate(bl, x);
              }, a, b, fmt),
              Fixed::from_raw(-a, fmt).raw());
  }
}

TEST_P(IntBlocksSweep, ComparatorsRandomized) {
  const size_t width = GetParam();
  const FixedFormat fmt{width, width / 2};
  Rng rng(width + 100);
  for (int i = 0; i < 50; ++i) {
    const int64_t a = Fixed::from_raw(static_cast<int64_t>(rng.next_u64()), fmt).raw();
    const int64_t b = i % 7 == 0
                          ? a  // hit the equality path regularly
                          : Fixed::from_raw(static_cast<int64_t>(rng.next_u64()), fmt).raw();
    EXPECT_EQ(eval_predicate([](Builder& bl, const Bus& x, const Bus& y) {
                return lt_signed(bl, x, y);
              }, a, b, fmt),
              a < b ? 1 : 0);
    EXPECT_EQ(eval_predicate([](Builder& bl, const Bus& x, const Bus& y) {
                return eq(bl, x, y);
              }, a, b, fmt),
              a == b ? 1 : 0);
    const uint64_t ua = mask_bits(static_cast<uint64_t>(a), width);
    const uint64_t ub = mask_bits(static_cast<uint64_t>(b), width);
    EXPECT_EQ(eval_predicate([](Builder& bl, const Bus& x, const Bus& y) {
                return lt_unsigned(bl, x, y);
              }, a, b, fmt),
              ua < ub ? 1 : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IntBlocksSweep,
                         ::testing::Values(4, 8, 16, 24, 32));

TEST(IntBlocks, ExhaustiveAdd4Bit) {
  const FixedFormat fmt{4, 0};
  for (int a = -8; a < 8; ++a)
    for (int b = -8; b < 8; ++b)
      EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus& y) {
                  return add(bl, x, y);
                }, a, b, fmt),
                Fixed::from_raw(a + b, fmt).raw())
          << a << "+" << b;
}

TEST(IntBlocks, MuxAbsMaxRelu) {
  const FixedFormat fmt = kDefaultFormat;
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const int64_t a = random_fixed(rng, fmt).raw();
    const int64_t b = random_fixed(rng, fmt).raw();
    EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus& y) {
                return max_signed(bl, x, y);
              }, a, b, fmt),
              std::max(a, b));
    EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus&) {
                return relu(bl, x);
              }, a, b, fmt),
              a > 0 ? a : 0);
    EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus&) {
                return abs_signed(bl, x);
              }, a, b, fmt),
              std::abs(a));
  }
}

TEST(IntBlocks, AbsClampedHandlesIntMin) {
  const FixedFormat fmt = kDefaultFormat;
  EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus&) {
              return abs_clamped(bl, x);
            }, -32768, 0, fmt),
            32767);
  EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus&) {
              return abs_clamped(bl, x);
            }, -5, 0, fmt),
            5);
}

TEST(IntBlocks, ClampConst) {
  const FixedFormat fmt = kDefaultFormat;
  for (int64_t v : {-30000ll, -100ll, 0ll, 100ll, 30000ll}) {
    EXPECT_EQ(eval_binary([](Builder& bl, const Bus& x, const Bus&) {
                return clamp_const(bl, x, -100, 100);
              }, v, 0, fmt),
              std::clamp<int64_t>(v, -100, 100));
  }
}

TEST(IntBlocks, ShiftsAreFree) {
  Builder bld;
  const Bus x = input_fixed(bld, Party::kGarbler, kDefaultFormat);
  bld.outputs(sar_const(shl_const(bld, x, 3), 3));
  const Circuit c = bld.build();
  EXPECT_EQ(c.stats().num_and, 0u);
  // shl then sar truncates the top 3 bits and sign-extends.
  const BitVec out = c.eval(Fixed::from_raw(0x0123).to_bits(), {});
  EXPECT_EQ(Fixed::from_bits(out).raw(), 0x0123);
}

TEST(IntBlocks, GateBudgets) {
  // The GC-optimized budgets the library is designed around: an n-bit
  // adder is n-1 ANDs, ReLU is n-1 ANDs, a MUX bus is n ANDs, a signed
  // comparator is n ANDs.
  const FixedFormat fmt = kDefaultFormat;
  {
    Builder bld;
    const Bus x = input_fixed(bld, Party::kGarbler, fmt);
    const Bus y = input_fixed(bld, Party::kEvaluator, fmt);
    bld.outputs(add(bld, x, y));
    EXPECT_EQ(bld.and_count(), 15u);
  }
  {
    Builder bld;
    const Bus x = input_fixed(bld, Party::kGarbler, fmt);
    bld.outputs(relu(bld, x));
    EXPECT_EQ(bld.and_count(), 15u);  // paper Table 3: ReLu = 15 non-XOR
  }
  {
    Builder bld;
    const Bus x = input_fixed(bld, Party::kGarbler, fmt);
    const Bus y = input_fixed(bld, Party::kEvaluator, fmt);
    bld.output(lt_signed(bld, x, y));
    EXPECT_EQ(bld.and_count(), 16u);
  }
}

}  // namespace
}  // namespace deepsecure::synth
