#include "core/benchmark_zoo.h"

#include "preprocess/pruning.h"

namespace deepsecure::core {
namespace {

using synth::ActKind;
using synth::ActLayer;
using synth::ArgmaxLayer;
using synth::ConvLayer;
using synth::FcLayer;
using synth::ModelSpec;
using synth::PoolKind;
using synth::Shape3;

FcLayer fc(size_t in, size_t out, double keep, uint64_t seed) {
  FcLayer l;
  l.out = out;
  l.has_bias = true;
  if (keep < 1.0) l.mask = preprocess::random_mask(out, in, keep, seed);
  return l;
}

// Benchmark 1: 28x28-5C2-ReLu-100FC-ReLu-10FC-Softmax (CryptoNets
// topology). The input is zero-padded to 29x29 so the stride-2 5x5
// convolution yields 5x13x13 maps as in the paper.
ZooEntry make_b1(FixedFormat fmt) {
  ZooEntry z;
  z.name = "Benchmark 1";
  z.architecture = "28x28-5C2-ReLu-100FC-ReLu-10FC-Softmax";

  ModelSpec m;
  m.name = "b1";
  m.fmt = fmt;
  m.input = Shape3{29, 29, 1};
  m.layers.push_back(ConvLayer{5, 2, 5, true});
  m.layers.push_back(ActLayer{ActKind::kReLU});
  m.layers.push_back(fc(5 * 13 * 13, 100, 1.0, 0));
  m.layers.push_back(ActLayer{ActKind::kReLU});
  m.layers.push_back(fc(100, 10, 1.0, 0));
  m.layers.push_back(ArgmaxLayer{});
  z.base = m;

  // 9-fold compaction: spatial projection 29x29 -> 15x15 (image-domain
  // dictionary, ~3.7x) + FC pruning to ~40% kept.
  ModelSpec c;
  c.name = "b1_pp";
  c.fmt = fmt;
  c.input = Shape3{15, 15, 1};
  c.layers.push_back(ConvLayer{5, 2, 5, true});
  c.layers.push_back(ActLayer{ActKind::kReLU});
  c.layers.push_back(fc(5 * 6 * 6, 100, 0.40, 101));
  c.layers.push_back(ActLayer{ActKind::kReLU});
  c.layers.push_back(fc(100, 10, 0.40, 102));
  c.layers.push_back(ArgmaxLayer{});
  z.compact = c;
  z.compaction = "9-fold";

  z.paper_base = PaperRow{4.31e7, 2.47e7, 791.0, 1.98, 9.67};
  z.paper_compact = PaperRow{4.81e6, 2.76e6, 88.2, 0.22, 1.08};
  z.paper_improvement = 8.95;
  return z;
}

// Benchmark 2: LeNet-300-100 with Sigmoid non-linearities.
ZooEntry make_b2(FixedFormat fmt) {
  ZooEntry z;
  z.name = "Benchmark 2";
  z.architecture = "28x28-300FC-Sigmoid-100FC-Sigmoid-10FC-Softmax";

  ModelSpec m;
  m.name = "b2";
  m.fmt = fmt;
  m.input = Shape3{1, 1, 784};
  m.layers.push_back(fc(784, 300, 1.0, 0));
  m.layers.push_back(ActLayer{ActKind::kSigmoidCORDIC});
  m.layers.push_back(fc(300, 100, 1.0, 0));
  m.layers.push_back(ActLayer{ActKind::kSigmoidCORDIC});
  m.layers.push_back(fc(100, 10, 1.0, 0));
  m.layers.push_back(ArgmaxLayer{});
  z.base = m;

  // 12-fold: projection 784 -> 196 (4x) + pruning to ~32% kept (1/3).
  ModelSpec c;
  c.name = "b2_pp";
  c.fmt = fmt;
  c.input = Shape3{1, 1, 196};
  c.layers.push_back(fc(196, 300, 0.32, 201));
  c.layers.push_back(ActLayer{ActKind::kSigmoidCORDIC});
  c.layers.push_back(fc(300, 100, 0.32, 202));
  c.layers.push_back(ActLayer{ActKind::kSigmoidCORDIC});
  c.layers.push_back(fc(100, 10, 0.32, 203));
  c.layers.push_back(ArgmaxLayer{});
  z.compact = c;
  z.compaction = "12-fold";

  z.paper_base = PaperRow{1.09e8, 6.23e7, 1.99e3, 4.99, 24.37};
  z.paper_compact = PaperRow{1.21e7, 6.57e6, 210.0, 0.54, 2.57};
  z.paper_improvement = 9.48;
  return z;
}

// Benchmark 3: ISOLET audio DNN, 617-50FC-Tanh-26FC-Softmax.
ZooEntry make_b3(FixedFormat fmt) {
  ZooEntry z;
  z.name = "Benchmark 3";
  z.architecture = "617-50FC-Tanh-26FC-Softmax";

  ModelSpec m;
  m.name = "b3";
  m.fmt = fmt;
  m.input = Shape3{1, 1, 617};
  m.layers.push_back(fc(617, 50, 1.0, 0));
  m.layers.push_back(ActLayer{ActKind::kTanhCORDIC});
  m.layers.push_back(fc(50, 26, 1.0, 0));
  m.layers.push_back(ArgmaxLayer{});
  z.base = m;

  // 6-fold: projection 617 -> 308 (2x) + pruning to ~33% kept.
  ModelSpec c;
  c.name = "b3_pp";
  c.fmt = fmt;
  c.input = Shape3{1, 1, 308};
  c.layers.push_back(fc(308, 50, 0.33, 301));
  c.layers.push_back(ActLayer{ActKind::kTanhCORDIC});
  c.layers.push_back(fc(50, 26, 0.33, 302));
  c.layers.push_back(ArgmaxLayer{});
  z.compact = c;
  z.compaction = "6-fold";

  z.paper_base = PaperRow{1.32e7, 7.54e6, 241.0, 0.60, 2.95};
  z.paper_compact = PaperRow{2.51e6, 1.40e6, 44.7, 0.11, 0.56};
  z.paper_improvement = 5.27;
  return z;
}

// Benchmark 4: smart-sensing DNN, 5625-2000FC-Tanh-500FC-Tanh-19FC.
ZooEntry make_b4(FixedFormat fmt) {
  ZooEntry z;
  z.name = "Benchmark 4";
  z.architecture = "5625-2000FC-Tanh-500FC-Tanh-19FC-Softmax";

  ModelSpec m;
  m.name = "b4";
  m.fmt = fmt;
  m.input = Shape3{1, 1, 5625};
  m.layers.push_back(fc(5625, 2000, 1.0, 0));
  m.layers.push_back(ActLayer{ActKind::kTanhCORDIC});
  m.layers.push_back(fc(2000, 500, 1.0, 0));
  m.layers.push_back(ActLayer{ActKind::kTanhCORDIC});
  m.layers.push_back(fc(500, 19, 1.0, 0));
  m.layers.push_back(ArgmaxLayer{});
  z.base = m;

  // 120-fold: projection 5625 -> 375 (15x) + pruning to 12.5% kept in
  // the first layer and 6.25% in the deeper layers.
  ModelSpec c;
  c.name = "b4_pp";
  c.fmt = fmt;
  c.input = Shape3{1, 1, 375};
  c.layers.push_back(fc(375, 2000, 0.125, 401));
  c.layers.push_back(ActLayer{ActKind::kTanhCORDIC});
  c.layers.push_back(fc(2000, 500, 0.0625, 402));
  c.layers.push_back(ActLayer{ActKind::kTanhCORDIC});
  c.layers.push_back(fc(500, 19, 0.0625, 403));
  c.layers.push_back(ArgmaxLayer{});
  z.compact = c;
  z.compaction = "120-fold";

  z.paper_base = PaperRow{4.89e9, 2.81e9, 8.98e4, 224.50, 1098.3};
  z.paper_compact = PaperRow{6.28e7, 3.39e7, 1.08e3, 2.78, 13.26};
  z.paper_improvement = 82.83;
  return z;
}

}  // namespace

std::vector<ZooEntry> paper_zoo(FixedFormat fmt) {
  return {make_b1(fmt), make_b2(fmt), make_b3(fmt), make_b4(fmt)};
}

ZooEntry benchmark1(FixedFormat fmt) { return make_b1(fmt); }

}  // namespace deepsecure::core
