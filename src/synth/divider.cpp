#include "synth/divider.h"

#include <stdexcept>

namespace deepsecure::synth {

Bus div_unsigned(Builder& b, const Bus& a, const Bus& y) {
  if (a.size() != y.size()) throw std::invalid_argument("div width mismatch");
  const size_t n = a.size();

  // Restoring division, remainder held at width n+1 so the trial
  // subtraction's borrow is the quotient-bit predicate.
  Bus rem = constant_bus(b, 0, n + 1);
  Bus yw = y;
  yw.push_back(b.const_bit(false));
  Bus q(n);
  for (size_t step = 0; step < n; ++step) {
    const size_t bit = n - 1 - step;
    // rem = (rem << 1) | a[bit]
    Bus shifted(n + 1);
    shifted[0] = a[bit];
    for (size_t i = 1; i <= n; ++i) shifted[i] = rem[i - 1];
    const Bus trial = sub(b, shifted, yw);
    const Wire borrow = sign_bit(trial);  // 1 iff shifted < y
    q[bit] = b.not_(borrow);
    rem = mux_bus(b, borrow, shifted, trial);
  }
  return q;
}

Bus div_signed(Builder& b, const Bus& a, const Bus& y) {
  const Bus ua = abs_signed(b, a);
  const Bus uy = abs_signed(b, y);
  const Bus uq = div_unsigned(b, ua, uy);
  const Wire neg = b.xor_(sign_bit(a), sign_bit(y));
  return mux_bus(b, neg, negate(b, uq), uq);
}

Bus div_fixed(Builder& b, const Bus& a, const Bus& y, size_t frac) {
  const size_t n = a.size();
  const size_t w = n + frac;
  // (a << frac) / y at width n+frac, then truncate back to n bits.
  Bus aw = sign_extend(a, w);
  aw = shl_const(b, aw, frac);
  const Bus yw = sign_extend(y, w);
  const Bus q = div_signed(b, aw, yw);
  return truncate(q, n);
}

}  // namespace deepsecure::synth
