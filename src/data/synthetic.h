// Synthetic dataset generators — the offline substitute for MNIST /
// ISOLET / DSA (DESIGN.md substitution #2).
//
// Samples are drawn from a union of per-class low-rank subspaces plus
// bounded noise: exactly the structure Section 3.2.1 of the paper
// assumes ("complex modern data matrices ... can be modeled by a
// composition of multiple lower-rank subspaces"), so the data projection
// pipeline (Algorithm 1) is exercised on-distribution. Feature counts
// and class counts match the paper's benchmarks.
#pragma once

#include "nn/trainer.h"

namespace deepsecure::data {

struct SyntheticConfig {
  size_t features = 64;
  size_t classes = 4;
  size_t samples = 400;
  size_t subspace_rank = 6;   // rank of each class subspace
  double noise = 0.02;        // additive Gaussian noise sigma
  double class_sep = 1.0;     // separation of class basis vectors
  uint64_t seed = 1;
};

/// Generic union-of-subspaces generator; features scaled into [0, 1].
nn::Dataset make_subspace_dataset(const SyntheticConfig& cfg);

/// MNIST-like: 28x28 "images" (784 features), 10 classes. The images
/// are smooth blobs per class with deformations, so conv layers have
/// local structure to exploit.
nn::Dataset make_mnist_like(size_t samples, uint64_t seed = 11);

/// ISOLET-like audio features: 617 features, 26 classes (benchmark 3).
nn::Dataset make_isolet_like(size_t samples, uint64_t seed = 13);

/// Daily-and-sports-activities-like smart sensing: 5625 features,
/// 19 classes (benchmark 4).
nn::Dataset make_har_like(size_t samples, uint64_t seed = 17);

}  // namespace deepsecure::data
