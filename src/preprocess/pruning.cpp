#include "preprocess/pruning.h"

#include <algorithm>
#include <cmath>

namespace deepsecure::preprocess {

PruneReport prune_and_retrain(nn::Network& net, const nn::Dataset& data,
                              const PruneConfig& cfg) {
  PruneReport report;
  report.accuracy_before = nn::accuracy(net, data);

  const auto dense = net.dense_layers();
  // Geometric schedule: after `rounds` rounds the keep fraction is
  // (1 - prune_fraction).
  const double final_keep = 1.0 - cfg.prune_fraction;
  for (size_t round = 1; round <= cfg.rounds; ++round) {
    const double keep = std::pow(
        final_keep, static_cast<double>(round) / static_cast<double>(cfg.rounds));
    for (nn::DenseLayer* layer : dense) {
      auto& w = layer->weights();
      // Threshold at the keep-quantile of |w|.
      std::vector<float> mags(w.size());
      for (size_t i = 0; i < w.size(); ++i) mags[i] = std::fabs(w[i]);
      std::vector<float> sorted = mags;
      const size_t kth = static_cast<size_t>(
          std::min<double>(static_cast<double>(w.size()) - 1,
                           (1.0 - keep) * static_cast<double>(w.size())));
      std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(kth),
                       sorted.end());
      const float threshold = sorted[kth];

      layer->mask.assign(w.size(), 0);
      for (size_t i = 0; i < w.size(); ++i)
        layer->mask[i] = mags[i] >= threshold ? 1 : 0;
      layer->apply_mask();
    }
    // Recover accuracy with masked retraining (gradients of pruned
    // weights are wiped by apply_mask inside step()).
    nn::TrainConfig tc;
    tc.epochs = cfg.retrain_epochs;
    tc.lr = cfg.lr;
    tc.momentum = cfg.momentum;
    tc.shuffle_seed = 1000 + round;
    nn::train(net, data, tc);
  }

  size_t total = 0, kept = 0;
  for (nn::DenseLayer* layer : dense) {
    size_t lk = 0;
    for (uint8_t m : layer->mask) lk += m;
    report.layer_sparsity.push_back(
        1.0 - static_cast<double>(lk) /
                  static_cast<double>(layer->mask.size()));
    total += layer->mask.size();
    kept += lk;
  }
  report.overall_sparsity =
      total > 0 ? 1.0 - static_cast<double>(kept) / static_cast<double>(total)
                : 0.0;
  report.accuracy_after = nn::accuracy(net, data);
  return report;
}

std::vector<uint8_t> random_mask(size_t rows, size_t cols, double keep,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> mask(rows * cols, 0);
  const auto want = static_cast<size_t>(
      keep * static_cast<double>(mask.size()));
  // Keep exactly `want` positions (sampled without replacement) so the
  // analytic gate counts are deterministic.
  const auto perm = rng.permutation(mask.size());
  for (size_t i = 0; i < want && i < mask.size(); ++i) mask[perm[i]] = 1;
  return mask;
}

}  // namespace deepsecure::preprocess
