// Data pre-processing (Section 3.2.1, Algorithms 1 and 2): streaming
// dictionary learning over the server's training data, retraining on the
// projected embedding, and the public projection released to clients.
//
// Security note (Proposition 3.1): the paper releases W = D(D^T D)^-1 D^T
// = U U^T, which reveals exactly the column subspace of D. We factor the
// same projector as U (U^T x) and release the l x m analysis map U^T:
// this reveals the identical information (U^T determines U U^T and
// nothing more about D) while shrinking the client's sample to l
// dimensions — which is where the GC gate savings come from. The m x m
// projector W itself is also available for parity with the paper.
#pragma once

#include "nn/trainer.h"
#include "preprocess/linalg.h"

namespace deepsecure::preprocess {

struct ProjectionConfig {
  double gamma = 0.25;       // residual threshold for dictionary growth
  size_t max_dict = 256;     // upper bound on l (communication budget)
  size_t batch = 32;         // UpdateDL cadence (Algorithm 1 line 32)
  size_t patience = 1 << 30; // early-stopping window (samples)
};

struct ProjectionResult {
  Matrix dictionary;      // D (m x l): normalized selected samples
  Matrix basis;           // U (m x l): orthonormal column space of D
  size_t input_dim = 0;   // m
  size_t embed_dim = 0;   // l
  double mean_residual = 0.0;  // ||DC - A||_F / ||A||_F proxy
  /// Public output scale applied by project(): keeps the embedding
  /// inside the fixed-point range Q(16,12) ([-8, 8)). Part of the
  /// released map (reveals only a magnitude, not data).
  double embed_scale = 1.0;

  /// Client-side Algorithm 2: y = U^T x (the released public map).
  nn::VecF project(const nn::VecF& x) const;
  /// Paper-form m-dimensional projection W x = U (U^T x).
  nn::VecF project_full(const nn::VecF& x) const;

  /// Embedded dataset (U^T applied to every sample).
  nn::Dataset embed(const nn::Dataset& data) const;
};

/// Algorithm 1 without the interleaved UpdateDL (dictionary learning
/// only); retraining is orchestrated by the caller on the embedding,
/// which is equivalent for inference accuracy and keeps the trainer
/// decoupled.
ProjectionResult learn_projection(const nn::Dataset& data,
                                  const ProjectionConfig& cfg);

}  // namespace deepsecure::preprocess
