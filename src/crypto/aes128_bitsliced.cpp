// Bitsliced constant-time software AES-128 (encrypt only) — the
// portable batch backend. Four blocks at a time are orthogonalized into
// eight 64-bit bitplanes; SubBytes becomes the Boyar–Peralta S-box
// circuit evaluated once over all 64 byte lanes, ShiftRows a masked
// in-word rotation, MixColumns a handful of word rotations and XORs.
// There are no table lookups and no secret-dependent branches anywhere,
// so the backend is constant-time — and, unlike the scalar S-box loop,
// it amortizes every gate of the S-box over four blocks, which is what
// lets non-AES-NI hosts profit from the scheduler's wide batch windows.
//
// Lane layout (fixed by the ShiftRows/MixColumns masks below): plane
// q[i] holds bit i of every state byte; within a plane, bit position
//   lane = 16*row + 4*col + block        (row, col, block in 0..3)
// so a row is a contiguous 16-bit group (ShiftRows = rotate the group
// by 4*row bits) and the next row is 16 bits up (MixColumns combines a
// byte with its column neighbours via 16/32/48-bit word rotations).
//
// The outer batch loop runs two independent 4-block lines per
// iteration (backend width 8): the second line's circuit fills the
// pipeline bubbles the first line's 16-deep S-box dependency chain
// leaves open.
#include "crypto/aes128.h"

#include <cstring>

namespace deepsecure::detail {
namespace {

// ---------------------------------------------------------------------
// Packing: 4 blocks <-> 8 bitplanes.
// ---------------------------------------------------------------------

// Spread the 4 bytes of a 32-bit word to the even byte positions of a
// 64-bit word (b0 _ b1 _ b2 _ b3 _).
inline uint64_t spread_bytes(uint32_t w) {
  uint64_t x = w;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  return x;
}

// Inverse of spread_bytes: gather the even bytes back into 32 bits.
inline uint32_t gather_bytes(uint64_t x) {
  x &= 0x00FF00FF00FF00FFull;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFull;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<uint32_t>(x);
}

// Interleave one block (state bytes s0..s15, column-major) into the two
// pre-transpose words: qlo bytes = s0 s8 s1 s9 s2 s10 s3 s11 (columns
// 0/2), qhi = s4 s12 s5 s13 s6 s14 s7 s15 (columns 1/3). Together with
// the transpose below this realizes the lane layout in the file header.
inline void interleave_in(uint64_t* qlo, uint64_t* qhi, const Block& b) {
  const auto w0 = static_cast<uint32_t>(b.lo);
  const auto w1 = static_cast<uint32_t>(b.lo >> 32);
  const auto w2 = static_cast<uint32_t>(b.hi);
  const auto w3 = static_cast<uint32_t>(b.hi >> 32);
  *qlo = spread_bytes(w0) | (spread_bytes(w2) << 8);
  *qhi = spread_bytes(w1) | (spread_bytes(w3) << 8);
}

inline Block interleave_out(uint64_t qlo, uint64_t qhi) {
  const uint64_t w0 = gather_bytes(qlo);
  const uint64_t w2 = gather_bytes(qlo >> 8);
  const uint64_t w1 = gather_bytes(qhi);
  const uint64_t w3 = gather_bytes(qhi >> 8);
  return Block{w0 | (w1 << 32), w2 | (w3 << 32)};
}

// 8x8 bit-matrix transpose across the eight words (per byte column):
// moves each byte's bits onto their planes. Involution — packing and
// unpacking call the same function.
inline void ortho(uint64_t q[8]) {
  const auto swapn = [&](uint64_t cl, int s, int x, int y) {
    const uint64_t a = q[x], b = q[y];
    q[x] = (a & cl) | ((b & cl) << s);
    q[y] = ((a & ~cl) >> s) | (b & ~cl);
  };
  swapn(0x5555555555555555ull, 1, 0, 1);
  swapn(0x5555555555555555ull, 1, 2, 3);
  swapn(0x5555555555555555ull, 1, 4, 5);
  swapn(0x5555555555555555ull, 1, 6, 7);
  swapn(0x3333333333333333ull, 2, 0, 2);
  swapn(0x3333333333333333ull, 2, 1, 3);
  swapn(0x3333333333333333ull, 2, 4, 6);
  swapn(0x3333333333333333ull, 2, 5, 7);
  swapn(0x0F0F0F0F0F0F0F0Full, 4, 0, 4);
  swapn(0x0F0F0F0F0F0F0F0Full, 4, 1, 5);
  swapn(0x0F0F0F0F0F0F0F0Full, 4, 2, 6);
  swapn(0x0F0F0F0F0F0F0F0Full, 4, 3, 7);
}

// ---------------------------------------------------------------------
// Round functions on the bitplane representation.
// ---------------------------------------------------------------------

// Boyar–Peralta combinational S-box (the depth-16, 113-gate circuit),
// evaluated over all 64 lanes at once. x0 is the MSB plane (q[7]).
inline void sub_bytes(uint64_t q[8]) {
  const uint64_t x0 = q[7], x1 = q[6], x2 = q[5], x3 = q[4];
  const uint64_t x4 = q[3], x5 = q[2], x6 = q[1], x7 = q[0];

  // Top linear transform.
  const uint64_t y14 = x3 ^ x5;
  const uint64_t y13 = x0 ^ x6;
  const uint64_t y9 = x0 ^ x3;
  const uint64_t y8 = x0 ^ x5;
  const uint64_t t0 = x1 ^ x2;
  const uint64_t y1 = t0 ^ x7;
  const uint64_t y4 = y1 ^ x3;
  const uint64_t y12 = y13 ^ y14;
  const uint64_t y2 = y1 ^ x0;
  const uint64_t y5 = y1 ^ x6;
  const uint64_t y3 = y5 ^ y8;
  const uint64_t t1 = x4 ^ y12;
  const uint64_t y15 = t1 ^ x5;
  const uint64_t y20 = t1 ^ x1;
  const uint64_t y6 = y15 ^ x7;
  const uint64_t y10 = y15 ^ t0;
  const uint64_t y11 = y20 ^ y9;
  const uint64_t y7 = x7 ^ y11;
  const uint64_t y17 = y10 ^ y11;
  const uint64_t y19 = y10 ^ y8;
  const uint64_t y16 = t0 ^ y11;
  const uint64_t y21 = y13 ^ y16;
  const uint64_t y18 = x0 ^ y16;

  // Shared nonlinear middle (GF(2^4) inversion tower).
  const uint64_t t2 = y12 & y15;
  const uint64_t t3 = y3 & y6;
  const uint64_t t4 = t3 ^ t2;
  const uint64_t t5 = y4 & x7;
  const uint64_t t6 = t5 ^ t2;
  const uint64_t t7 = y13 & y16;
  const uint64_t t8 = y5 & y1;
  const uint64_t t9 = t8 ^ t7;
  const uint64_t t10 = y2 & y7;
  const uint64_t t11 = t10 ^ t7;
  const uint64_t t12 = y9 & y11;
  const uint64_t t13 = y14 & y17;
  const uint64_t t14 = t13 ^ t12;
  const uint64_t t15 = y8 & y10;
  const uint64_t t16 = t15 ^ t12;
  const uint64_t t17 = t4 ^ t14;
  const uint64_t t18 = t6 ^ t16;
  const uint64_t t19 = t9 ^ t14;
  const uint64_t t20 = t11 ^ t16;
  const uint64_t t21 = t17 ^ y20;
  const uint64_t t22 = t18 ^ y19;
  const uint64_t t23 = t19 ^ y21;
  const uint64_t t24 = t20 ^ y18;
  const uint64_t t25 = t21 ^ t22;
  const uint64_t t26 = t21 & t23;
  const uint64_t t27 = t24 ^ t26;
  const uint64_t t28 = t25 & t27;
  const uint64_t t29 = t28 ^ t22;
  const uint64_t t30 = t23 ^ t24;
  const uint64_t t31 = t22 ^ t26;
  const uint64_t t32 = t31 & t30;
  const uint64_t t33 = t32 ^ t24;
  const uint64_t t34 = t23 ^ t33;
  const uint64_t t35 = t27 ^ t33;
  const uint64_t t36 = t24 & t35;
  const uint64_t t37 = t36 ^ t34;
  const uint64_t t38 = t27 ^ t36;
  const uint64_t t39 = t29 & t38;
  const uint64_t t40 = t25 ^ t39;
  const uint64_t t41 = t40 ^ t37;
  const uint64_t t42 = t29 ^ t33;
  const uint64_t t43 = t29 ^ t40;
  const uint64_t t44 = t33 ^ t37;
  const uint64_t t45 = t42 ^ t41;
  const uint64_t z0 = t44 & y15;
  const uint64_t z1 = t37 & y6;
  const uint64_t z2 = t33 & x7;
  const uint64_t z3 = t43 & y16;
  const uint64_t z4 = t40 & y1;
  const uint64_t z5 = t29 & y7;
  const uint64_t z6 = t42 & y11;
  const uint64_t z7 = t45 & y17;
  const uint64_t z8 = t41 & y10;
  const uint64_t z9 = t44 & y12;
  const uint64_t z10 = t37 & y3;
  const uint64_t z11 = t33 & y4;
  const uint64_t z12 = t43 & y13;
  const uint64_t z13 = t40 & y5;
  const uint64_t z14 = t29 & y2;
  const uint64_t z15 = t42 & y9;
  const uint64_t z16 = t45 & y14;
  const uint64_t z17 = t41 & y8;

  // Bottom linear transform (four outputs inverted, per the affine map).
  const uint64_t tc1 = z15 ^ z16;
  const uint64_t tc2 = z10 ^ tc1;
  const uint64_t tc3 = z9 ^ tc2;
  const uint64_t tc4 = z0 ^ z2;
  const uint64_t tc5 = z1 ^ z0;
  const uint64_t tc6 = z3 ^ z4;
  const uint64_t tc7 = z12 ^ tc4;
  const uint64_t tc8 = z7 ^ tc6;
  const uint64_t tc9 = z8 ^ tc7;
  const uint64_t tc10 = tc8 ^ tc9;
  const uint64_t tc11 = tc6 ^ tc5;
  const uint64_t tc12 = z3 ^ z5;
  const uint64_t tc13 = z13 ^ tc1;
  const uint64_t tc14 = tc4 ^ tc12;
  const uint64_t s3 = tc3 ^ tc11;
  const uint64_t tc16 = z6 ^ tc8;
  const uint64_t tc17 = z14 ^ tc10;
  const uint64_t tc18 = tc13 ^ tc14;
  const uint64_t s7 = ~(z12 ^ tc18);
  const uint64_t tc20 = z15 ^ tc16;
  const uint64_t tc21 = tc2 ^ z11;
  const uint64_t s0 = tc3 ^ tc16;
  const uint64_t s6 = ~(tc10 ^ tc18);
  const uint64_t s4 = tc14 ^ s3;
  const uint64_t s1 = ~(s3 ^ tc16);
  const uint64_t tc26 = tc17 ^ tc20;
  const uint64_t s2 = ~(tc26 ^ z17);
  const uint64_t s5 = tc21 ^ tc17;

  q[7] = s0;
  q[6] = s1;
  q[5] = s2;
  q[4] = s3;
  q[3] = s4;
  q[2] = s5;
  q[1] = s6;
  q[0] = s7;
}

// Row r (bits 16r..16r+15 of every plane) rotates right by 4r bits:
// column c takes column c+r.
inline void shift_rows(uint64_t q[8]) {
  for (int i = 0; i < 8; ++i) {
    const uint64_t x = q[i];
    q[i] = (x & 0x000000000000FFFFull) |
           ((x >> 4) & 0x000000000FFF0000ull) |
           ((x << 12) & 0x00000000F0000000ull) |
           ((x >> 8) & 0x000000FF00000000ull) |
           ((x << 8) & 0x0000FF0000000000ull) |
           ((x >> 12) & 0x000F000000000000ull) |
           ((x << 4) & 0xFFF0000000000000ull);
  }
}

// Pull each lane's value from the row below (row r reads row r+1).
inline uint64_t rot_row(uint64_t x) { return (x >> 16) | (x << 48); }
inline uint64_t rot_row2(uint64_t x) { return (x >> 32) | (x << 32); }

// new_i = d_i ^ rot(d_i) ^ rot(a_i) ^ rot2(a_i) ^ rot3(a_i), where d is
// the xtime'd state expressed on planes (d0=a7, d1=a0^a7, d2=a1,
// d3=a2^a7, d4=a3^a7, d5=a4, d6=a5, d7=a6 — the 0x1B feedback taps).
inline void mix_columns(uint64_t q[8]) {
  uint64_t r[8], s[8];
  for (int i = 0; i < 8; ++i) r[i] = rot_row(q[i]);
  for (int i = 0; i < 8; ++i) s[i] = rot_row2(q[i] ^ r[i]);
  const uint64_t hi = q[7] ^ r[7];
  const uint64_t n0 = hi ^ r[0] ^ s[0];
  const uint64_t n1 = q[0] ^ r[0] ^ hi ^ r[1] ^ s[1];
  const uint64_t n2 = q[1] ^ r[1] ^ r[2] ^ s[2];
  const uint64_t n3 = q[2] ^ r[2] ^ hi ^ r[3] ^ s[3];
  const uint64_t n4 = q[3] ^ r[3] ^ hi ^ r[4] ^ s[4];
  const uint64_t n5 = q[4] ^ r[4] ^ r[5] ^ s[5];
  const uint64_t n6 = q[5] ^ r[5] ^ r[6] ^ s[6];
  const uint64_t n7 = q[6] ^ r[6] ^ r[7] ^ s[7];
  q[0] = n0;
  q[1] = n1;
  q[2] = n2;
  q[3] = n3;
  q[4] = n4;
  q[5] = n5;
  q[6] = n6;
  q[7] = n7;
}

// ---------------------------------------------------------------------
// Key schedule on planes + the 4-block line primitive.
// ---------------------------------------------------------------------

// Round keys orthogonalized once per key: each 16-byte round key is
// replicated across the 4 block lanes and packed like state.
struct BitslicedKey {
  uint64_t rk[11][8];
};

void expand_bitsliced(const Aes128Key& key, BitslicedKey* out) {
  for (int r = 0; r <= 10; ++r) {
    uint64_t q[8];
    uint64_t lo, hi;
    interleave_in(&lo, &hi, key.rounds[r]);
    for (int b = 0; b < 4; ++b) {
      q[b] = lo;
      q[b + 4] = hi;
    }
    ortho(q);
    std::memcpy(out->rk[r], q, sizeof(out->rk[r]));
  }
}

// The (11 interleaves + orthos) of key expansion are cheap but not free;
// Prg re-enters with the same key every 128-block chunk, so memoize the
// last schedule per thread. Keys are compared by value: the expansion
// is a pure function of the round-key bytes.
const BitslicedKey& cached_key(const Aes128Key& key) {
  thread_local Aes128Key last{};
  thread_local BitslicedKey expanded{};
  thread_local bool valid = false;
  if (!valid || std::memcmp(&last, &key, sizeof(key)) != 0) {
    expand_bitsliced(key, &expanded);
    last = key;
    valid = true;
  }
  return expanded;
}

inline void add_round_key(uint64_t q[8], const uint64_t rk[8]) {
  for (int i = 0; i < 8; ++i) q[i] ^= rk[i];
}

inline void load4(uint64_t q[8], const Block* blocks) {
  for (int b = 0; b < 4; ++b) interleave_in(&q[b], &q[b + 4], blocks[b]);
  ortho(q);
}

inline void store4(uint64_t q[8], Block* blocks) {
  ortho(q);
  for (int b = 0; b < 4; ++b) blocks[b] = interleave_out(q[b], q[b + 4]);
}

inline void round_fn(uint64_t q[8], const uint64_t rk[8]) {
  sub_bytes(q);
  shift_rows(q);
  mix_columns(q);
  add_round_key(q, rk);
}

inline void last_round_fn(uint64_t q[8], const uint64_t rk[8]) {
  sub_bytes(q);
  shift_rows(q);
  add_round_key(q, rk);
}

inline void encrypt4(const BitslicedKey& key, Block* blocks) {
  uint64_t q[8];
  load4(q, blocks);
  add_round_key(q, key.rk[0]);
  for (int r = 1; r < 10; ++r) round_fn(q, key.rk[r]);
  last_round_fn(q, key.rk[10]);
  store4(q, blocks);
}

// Two independent lines per iteration: each round touches line A then
// line B, so B's gates fill the issue slots A's depth-16 S-box chain
// cannot.
inline void encrypt8(const BitslicedKey& key, Block* blocks) {
  uint64_t qa[8], qb[8];
  load4(qa, blocks);
  load4(qb, blocks + 4);
  add_round_key(qa, key.rk[0]);
  add_round_key(qb, key.rk[0]);
  for (int r = 1; r < 10; ++r) {
    round_fn(qa, key.rk[r]);
    round_fn(qb, key.rk[r]);
  }
  last_round_fn(qa, key.rk[10]);
  last_round_fn(qb, key.rk[10]);
  store4(qa, blocks);
  store4(qb, blocks + 4);
}

}  // namespace

void aes128_encrypt_batch_bitsliced(const Aes128Key& key, Block* blocks,
                                    size_t n) {
  const BitslicedKey& bk = cached_key(key);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) encrypt8(bk, blocks + i);
  for (; i + 4 <= n; i += 4) encrypt4(bk, blocks + i);
  if (i < n) {
    Block tail[4] = {};
    std::memcpy(tail, blocks + i, (n - i) * sizeof(Block));
    encrypt4(bk, tail);
    std::memcpy(blocks + i, tail, (n - i) * sizeof(Block));
  }
}

}  // namespace deepsecure::detail
