#include "core/deepsecure.h"

#include <stdexcept>

#include "net/party.h"

namespace deepsecure {
namespace {

synth::ActKind map_act(nn::Act kind, const SecureInferenceOptions& opt) {
  switch (kind) {
    case nn::Act::kReLU: return synth::ActKind::kReLU;
    case nn::Act::kTanh: return opt.tanh_variant;
    case nn::Act::kSigmoid: return opt.sigmoid_variant;
    case nn::Act::kIdentity: return synth::ActKind::kIdentity;
    case nn::Act::kSquare:
      throw std::invalid_argument(
          "square activation is the HE baseline; no GC realization");
  }
  throw std::invalid_argument("unknown activation");
}

Block effective_seed(const SecureInferenceOptions& opt) {
  if (opt.seed == Block{}) return Prg::from_os_entropy().next_block();
  return opt.seed;
}

}  // namespace

synth::ModelSpec model_spec_from_network(const nn::Network& net,
                                         const SecureInferenceOptions& opt,
                                         const std::string& name) {
  synth::ModelSpec spec;
  spec.name = name;
  spec.fmt = opt.fmt;
  const nn::Shape in = net.input_shape();
  spec.input = synth::Shape3{in.h, in.w, in.c};

  for (const auto& layer : net.layers()) {
    if (const auto* d = dynamic_cast<const nn::DenseLayer*>(layer.get())) {
      synth::FcLayer fc;
      fc.out = d->out_dim();
      fc.has_bias = true;
      fc.mask = d->mask;
      spec.layers.push_back(fc);
    } else if (const auto* c =
                   dynamic_cast<const nn::Conv2DLayer*>(layer.get())) {
      synth::ConvLayer conv;
      conv.k = c->kernel();
      conv.stride = c->stride();
      conv.out_ch = c->out_channels();
      conv.has_bias = true;
      spec.layers.push_back(conv);
    } else if (const auto* p =
                   dynamic_cast<const nn::PoolLayer*>(layer.get())) {
      synth::PoolLayer pool;
      pool.kind = p->kind() == nn::Pool::kMax ? synth::PoolKind::kMax
                                              : synth::PoolKind::kMean;
      pool.k = p->window();
      pool.stride = p->stride();
      spec.layers.push_back(pool);
    } else if (const auto* a =
                   dynamic_cast<const nn::ActivationLayer*>(layer.get())) {
      spec.layers.push_back(synth::ActLayer{map_act(a->kind(), opt)});
    } else {
      throw std::logic_error("model_spec_from_network: unsupported layer");
    }
  }
  // Softmax output stage -> argmax (inference label).
  spec.layers.push_back(synth::ArgmaxLayer{});
  return spec;
}

BitVec sample_bits(const nn::VecF& sample, FixedFormat fmt) {
  BitVec bits;
  bits.reserve(sample.size() * fmt.total_bits);
  for (float v : sample) {
    const BitVec b = Fixed::from_double(static_cast<double>(v), fmt).to_bits();
    bits.insert(bits.end(), b.begin(), b.end());
  }
  return bits;
}

BitVec weight_bits(const nn::Network& net, FixedFormat fmt) {
  const std::vector<Fixed> q = nn::quantize_weights(net, fmt);
  BitVec bits;
  bits.reserve(q.size() * fmt.total_bits);
  for (const Fixed& v : q) {
    const BitVec b = v.to_bits();
    bits.insert(bits.end(), b.begin(), b.end());
  }
  return bits;
}

namespace {

SecureInferenceResult run_protocol(const std::vector<Circuit>& chain,
                                   const BitVec& data,
                                   const BitVec& weights, Block seed) {
  SecureInferenceResult res;
  for (const Circuit& c : chain) {
    const auto s = c.stats();
    res.gates += synth::GateCount{s.num_xor, s.num_and};
  }

  BitVec client_out, server_out;
  SessionTrace g_trace, e_trace;
  const auto stats = run_two_party(
      [&](Channel& ch) {
        GarblerSession session(ch, seed);
        client_out = session.run_chain(chain, data);
        g_trace = session.trace();
      },
      [&](Channel& ch) {
        EvaluatorSession session(ch);
        server_out = session.run_chain(chain, weights);
        e_trace = session.trace();
      });
  if (client_out != server_out)
    throw std::logic_error("secure_infer: party outputs diverged");

  res.label = from_bits(client_out);
  res.client_to_server_bytes = stats.a_to_b_bytes;
  res.server_to_client_bytes = stats.b_to_a_bytes;
  res.wall_seconds = stats.wall_seconds;
  res.garbler_trace = std::move(g_trace);
  res.evaluator_trace = std::move(e_trace);
  return res;
}

}  // namespace

SecureInferenceResult secure_infer(const nn::Network& model,
                                   const nn::VecF& sample,
                                   const SecureInferenceOptions& opt) {
  const synth::ModelSpec spec = model_spec_from_network(model, opt);
  const std::vector<Circuit> chain =
      opt.per_layer ? synth::compile_model_layers(spec)
                    : std::vector<Circuit>{synth::compile_model(spec)};
  return run_protocol(chain, sample_bits(sample, opt.fmt),
                      weight_bits(model, opt.fmt), effective_seed(opt));
}

SecureInferenceResult secure_infer_outsourced(
    const nn::Network& model, const nn::VecF& sample,
    const SecureInferenceOptions& opt) {
  const synth::ModelSpec spec = model_spec_from_network(model, opt);
  // Outsourcing wraps the whole model in one netlist with the XOR-share
  // reconstruction layer in front.
  const Circuit c = add_xor_sharing_layer(synth::compile_model(spec));

  // The (constrained) client only pads its input — Algorithm "client
  // side" of Figure 4.
  Prg pad = Prg::from_os_entropy();
  const XorShares shares = xor_share(sample_bits(sample, opt.fmt), pad);

  BitVec eval_in = shares.share_b;
  const BitVec wb = weight_bits(model, opt.fmt);
  eval_in.insert(eval_in.end(), wb.begin(), wb.end());

  return run_protocol({c}, shares.share_a, eval_in, effective_seed(opt));
}

PreprocessOutcome preprocess_pipeline(const nn::Dataset& train,
                                      const nn::Dataset& test,
                                      nn::Act activation,
                                      const PreprocessConfig& cfg,
                                      const SecureInferenceOptions& opt) {
  PreprocessOutcome out;
  const size_t features = train.x.empty() ? 1 : train.x[0].size();
  const size_t classes = train.num_classes;

  // Baseline model on raw features.
  Rng rng(424242);
  nn::Network base(nn::Shape{1, 1, features});
  base.dense(cfg.hidden, rng).act(activation).dense(classes, rng);
  nn::train(base, train, cfg.retrain);
  out.baseline_accuracy = nn::accuracy(base, test);
  out.cost_before = cost::cost_of_model(model_spec_from_network(base, opt));

  // (i) Data projection: learn the dictionary, retrain on the embedding.
  nn::Dataset train2 = train;
  nn::Dataset test2 = test;
  if (cfg.enable_projection) {
    out.projection = preprocess::learn_projection(train, cfg.projection);
    train2 = out.projection.embed(train);
    test2 = out.projection.embed(test);
  }

  Rng rng2(434343);
  nn::Network condensed(
      nn::Shape{1, 1, train2.x.empty() ? 1 : train2.x[0].size()});
  condensed.dense(cfg.hidden, rng2).act(activation).dense(classes, rng2);
  nn::train(condensed, train2, cfg.retrain);

  // (ii) DL network pre-processing: prune + retrain.
  if (cfg.enable_pruning)
    out.prune = preprocess::prune_and_retrain(condensed, train2, cfg.prune);

  // Deployment step: rescale so the GC fixed-point datapath cannot wrap.
  nn::scale_for_fixed(condensed, train2.x, opt.fmt);

  out.condensed_accuracy = nn::accuracy(condensed, test2);
  out.cost_after =
      cost::cost_of_model(model_spec_from_network(condensed, opt));
  out.model = std::move(condensed);
  return out;
}

}  // namespace deepsecure
