// Minimal raw-syscall io_uring submission queue for batched socket
// sends. liburing is deliberately not a dependency — this wraps
// io_uring_setup/io_uring_enter plus the mmap'd SQ/CQ rings directly
// (see uring.cpp), probing the kernel at runtime so a host (or seccomp
// policy) that refuses io_uring falls back cleanly to the
// writev/sendmsg path.
//
// Why it exists: a RingChannel writer draining N queued table frames
// can hand them to one UringQueue::send_batch as N linked
// IORING_OP_SENDMSG SQEs and pay ONE io_uring_enter syscall, instead
// of one sendmsg per frame. Each SQE carries MSG_WAITALL: the socket
// layer ignores it for sends, but io_uring's link semantics honor it —
// a SHORT completion (nonblocking fd under send-buffer pressure,
// EINTR) marks the op failed, so linked successors cancel instead of
// running against a half-written predecessor, and send_batch resubmits
// the remainder from the exact byte offset until everything ships.
// A hard error (EPIPE/ECONNRESET) fails the op and cancels the rest of
// the chain, surfacing as the same "peer closed" the send path already
// throws.
//
// One UringQueue per channel, used from one thread at a time (the
// channel's existing single-sender contract) — no internal locking.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <memory>

namespace deepsecure::net {

/// One io_uring_setup probe per process (cached): false when the
/// kernel refuses (ENOSYS/EPERM — old kernel, seccomp, container
/// policy) or the DEEPSECURE_NO_URING environment variable is set.
bool uring_supported();

class UringQueue {
 public:
  /// nullptr when uring_supported() is false or ring setup fails —
  /// callers fall back to the plain sendmsg path.
  static std::unique_ptr<UringQueue> create();
  ~UringQueue();

  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Ship `iov[0..n)` on `fd`, in order, as a chain of linked
  /// MSG_WAITALL sendmsg SQEs (split at the kernel's per-op iovec
  /// limit), submitting each chain with a single io_uring_enter,
  /// waiting for every completion, and resubmitting remainders after
  /// short completions (see file header). The iovec array is MUTATED
  /// in place when a resume trims it — callers pass throwaway arrays.
  /// Returns the number of io_uring_enter calls made (the caller's
  /// net.syscalls_send accounting). Throws with the send path's error
  /// mapping ("peer closed connection" on EPIPE/ECONNRESET,
  /// std::runtime_error otherwise).
  size_t send_batch(int fd, iovec* iov, size_t n);

 private:
  UringQueue() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace deepsecure::net
