// Ablations of the design choices DESIGN.md calls out:
//   A1. synthesis optimizations (constant folding + CSE) on/off
//   A2. activation realization sweep on benchmark 3's full cost
//   A3. projection-only vs pruning-only vs both (benchmark 2 compaction)
//   A4. sequential folding memory footprint (Section 3.5)
//   A5. half-gates vs 4-row / 3-row garbled-table sizing (communication)
#include <cstdio>

#include "core/benchmark_zoo.h"
#include "core/deepsecure.h"
#include "support/table.h"
#include "synth/float_blocks.h"
#include "synth/matvec.h"
#include "synth/mult.h"

using namespace deepsecure;
using namespace deepsecure::synth;

int main() {
  const FixedFormat fmt = kDefaultFormat;

  std::printf("A1. Netlist synthesis optimizations (16-bit MULT block)\n");
  {
    Builder opt("mult_opt", /*enable_cse=*/true);
    const Bus x = input_fixed(opt, Party::kGarbler, fmt);
    const Bus y = input_fixed(opt, Party::kEvaluator, fmt);
    opt.outputs(mult_fixed(opt, x, y, fmt.frac_bits));
    Builder raw("mult_raw", /*enable_cse=*/false);
    const Bus x2 = input_fixed(raw, Party::kGarbler, fmt);
    const Bus y2 = input_fixed(raw, Party::kEvaluator, fmt);
    raw.outputs(mult_fixed(raw, x2, y2, fmt.frac_bits));
    std::printf("  with folding+CSE   : %llu non-XOR\n",
                static_cast<unsigned long long>(opt.and_count()));
    std::printf("  without CSE        : %llu non-XOR\n",
                static_cast<unsigned long long>(raw.and_count()));
  }
  {
    Builder opt("lut_opt", true);
    const Bus x = input_fixed(opt, Party::kGarbler, fmt);
    opt.outputs(activation(opt, x, ActKind::kTanhLUT, fmt));
    Builder raw("lut_raw", false);
    const Bus x2 = input_fixed(raw, Party::kGarbler, fmt);
    raw.outputs(activation(raw, x2, ActKind::kTanhLUT, fmt));
    std::printf("  TanhLUT with CSE   : %llu non-XOR\n",
                static_cast<unsigned long long>(opt.and_count()));
    std::printf("  TanhLUT without    : %llu non-XOR (paper: 149745)\n",
                static_cast<unsigned long long>(raw.and_count()));
  }

  std::printf("\nA2. Activation realization sweep, benchmark 3 totals\n");
  {
    TablePrinter t({"Tanh variant", "#non-XOR", "Comm(MB)", "Exec(s)"});
    for (ActKind k : {ActKind::kTanhLUT, ActKind::kTanhSeg, ActKind::kTanhPL,
                      ActKind::kTanhCORDIC}) {
      ModelSpec m = core::paper_zoo()[2].base;
      for (auto& layer : m.layers)
        if (auto* a = std::get_if<ActLayer>(&layer)) a->kind = k;
      const auto c = cost::cost_of_model(m);
      t.add_row({act_kind_name(k),
                 TablePrinter::sci(static_cast<double>(c.num_non_xor)),
                 TablePrinter::num(c.comm_bytes / 1e6, 1),
                 TablePrinter::num(c.exec_seconds, 2)});
    }
    std::fputs(t.to_string().c_str(), stdout);
  }

  std::printf("\nA3. Pre-processing decomposition (benchmark 2)\n");
  {
    const auto zoo = core::paper_zoo();
    const ModelSpec base = zoo[1].base;
    const ModelSpec both = zoo[1].compact;

    // Projection-only: reduced input, dense layers.
    ModelSpec proj = base;
    proj.input = Shape3{1, 1, 196};
    std::get<FcLayer>(proj.layers[0]) = FcLayer{300, {}, true};
    // Pruning-only: original input, masked layers (same keep as compact).
    ModelSpec prune = both;
    prune.input = base.input;
    auto& fc0 = std::get<FcLayer>(prune.layers[0]);
    fc0.mask = preprocess::random_mask(300, 784, 0.32, 999);

    TablePrinter t({"Variant", "#non-XOR", "Exec(s)", "vs base"});
    const auto cb = cost::cost_of_model(base);
    for (const auto& [name, spec] :
         std::vector<std::pair<std::string, const ModelSpec*>>{
             {"base", &base},
             {"projection only", &proj},
             {"pruning only", &prune},
             {"both (Table 5)", &both}}) {
      const auto c = cost::cost_of_model(*spec);
      t.add_row({name, TablePrinter::sci(static_cast<double>(c.num_non_xor)),
                 TablePrinter::num(c.exec_seconds, 2),
                 TablePrinter::num(cb.exec_seconds / c.exec_seconds, 2) + "x"});
    }
    std::fputs(t.to_string().c_str(), stdout);
  }

  std::printf("\nA4. Sequential folding memory footprint (Section 3.5)\n");
  {
    // 256-term dot product: monolithic vs folded (1 MAC + register).
    const size_t terms = 256;
    Builder mono("dot_mono");
    std::vector<Bus> xs(terms), ws(terms);
    for (auto& bus : xs) bus = input_fixed(mono, Party::kGarbler, fmt);
    for (auto& bus : ws) bus = input_fixed(mono, Party::kEvaluator, fmt);
    mono.outputs(dot(mono, xs, ws, fmt.frac_bits));
    const Circuit mc = mono.build();
    const Circuit step = make_mac_step_circuit(fmt);
    std::printf("  monolithic: %u wires live at once\n", mc.num_wires);
    std::printf("  folded:     %u wires/cycle x %zu cycles (%.1fx smaller"
                " footprint)\n",
                step.num_wires, terms,
                static_cast<double>(mc.num_wires) / step.num_wires);
    std::printf("  total gate work identical within %0.1f%%\n",
                100.0 * std::abs(1.0 - static_cast<double>(
                    step.stats().num_and * terms) / mc.stats().num_and));
  }

  std::printf("\nA5. Fixed-point vs floating-point datapath (Section 3.6)\n");
  {
    const FloatFormat ff = kBFloat16;
    Builder fa;
    const Bus x1 = input_bus(fa, Party::kGarbler, ff.total_bits());
    const Bus y1 = input_bus(fa, Party::kEvaluator, ff.total_bits());
    fa.outputs(float_add(fa, x1, y1, ff));
    Builder fm;
    const Bus x2 = input_bus(fm, Party::kGarbler, ff.total_bits());
    const Bus y2 = input_bus(fm, Party::kEvaluator, ff.total_bits());
    fm.outputs(float_mul(fm, x2, y2, ff));
    const BlockCosts& fx = block_costs(fmt);
    std::printf("  ADD : %llu non-XOR fixed Q(16,12)  vs %llu float bf16"
                " (%.1fx)\n",
                static_cast<unsigned long long>(fx.add.num_non_xor),
                static_cast<unsigned long long>(fa.and_count()),
                static_cast<double>(fa.and_count()) / fx.add.num_non_xor);
    std::printf("  MULT: %llu non-XOR fixed Q(16,12)  vs %llu float bf16"
                " (%.2fx)\n",
                static_cast<unsigned long long>(fx.mult.num_non_xor),
                static_cast<unsigned long long>(fm.and_count()),
                static_cast<double>(fm.and_count()) / fx.mult.num_non_xor);
    std::printf("  -> per-MAC costs end up comparable, but Q(16,12) carries\n"
                "     12 fraction bits vs bf16's 7; floats buy dynamic range\n"
                "     (no wrap-around), not precision, in this regime.\n");
  }

  std::printf("\nA6. Garbled-table sizing per AND gate (communication)\n");
  {
    const auto g = count_model(core::paper_zoo()[2].base);
    const double classic = static_cast<double>(g.num_non_xor) * 4 * 16;
    const double row_red = static_cast<double>(g.num_non_xor) * 3 * 16;
    const double half = static_cast<double>(g.num_non_xor) * 2 * 16;
    std::printf("  classic 4-row   : %.1f MB\n", classic / 1e6);
    std::printf("  row-reduction   : %.1f MB (-25%%)\n", row_red / 1e6);
    std::printf("  half-gates      : %.1f MB (-25%% more; what we ship)\n",
                half / 1e6);
  }
  return 0;
}
