#include "synth/float_blocks.h"

#include <cmath>
#include <stdexcept>

#include "synth/mult.h"

namespace deepsecure::synth {
namespace {

struct Unpacked {
  Bus man;   // m bits
  Bus exp;   // e bits
  Wire sign;
  Bus mag;   // exponent|mantissa packed (m+e bits) — magnitude order
};

Unpacked unpack(const Bus& x, FloatFormat fmt) {
  Unpacked u;
  u.man = Bus(x.begin(), x.begin() + static_cast<ptrdiff_t>(fmt.man_bits));
  u.exp = Bus(x.begin() + static_cast<ptrdiff_t>(fmt.man_bits),
              x.begin() + static_cast<ptrdiff_t>(fmt.man_bits + fmt.exp_bits));
  u.sign = x.back();
  u.mag = Bus(x.begin(), x.end() - 1);
  return u;
}

Bus pack(Builder& b, const Bus& man, const Bus& exp, Wire sign,
         FloatFormat fmt) {
  (void)b;
  Bus out;
  out.reserve(fmt.total_bits());
  out.insert(out.end(), man.begin(), man.end());
  out.insert(out.end(), exp.begin(), exp.end());
  out.push_back(sign);
  return out;
}

/// Zero the whole word when `is_zero` fires (canonical zero encoding).
Bus zero_if(Builder& b, const Bus& x, Wire is_zero) {
  Bus out(x.size());
  const Wire keep = b.not_(is_zero);
  for (size_t i = 0; i < x.size(); ++i) out[i] = b.and_(keep, x[i]);
  return out;
}

}  // namespace

// ----------------------------------------------------------------------
// Software reference (semantics mirrored by the circuits).

SoftFloat SoftFloat::from_double(double x, FloatFormat fmt) {
  SoftFloat f;
  f.fmt = fmt;
  if (x == 0.0 || !std::isfinite(x)) {
    f.bits = 0;
    return f;
  }
  const uint64_t sign = x < 0 ? 1 : 0;
  const double ax = std::fabs(x);
  int k = 0;
  const double frac = std::frexp(ax, &k);  // ax = frac * 2^k, frac in [0.5,1)
  int64_t exp_field = static_cast<int64_t>(k) - 1 + fmt.bias();
  uint64_t man = static_cast<uint64_t>(
      (2.0 * frac - 1.0) * static_cast<double>(1ull << fmt.man_bits));
  if (man >= (1ull << fmt.man_bits)) man = (1ull << fmt.man_bits) - 1;
  if (exp_field <= 0) {
    f.bits = 0;  // flush to zero
    return f;
  }
  if (exp_field > static_cast<int64_t>(fmt.max_exp())) {
    exp_field = static_cast<int64_t>(fmt.max_exp());
    man = (1ull << fmt.man_bits) - 1;  // saturate
  }
  f.bits = man | (static_cast<uint64_t>(exp_field) << fmt.man_bits) |
           (sign << (fmt.man_bits + fmt.exp_bits));
  return f;
}

double SoftFloat::to_double() const {
  const uint64_t man = bits & ((1ull << fmt.man_bits) - 1);
  const uint64_t exp = (bits >> fmt.man_bits) & ((1ull << fmt.exp_bits) - 1);
  const uint64_t sign = bits >> (fmt.man_bits + fmt.exp_bits);
  if (exp == 0) return 0.0;
  const double m =
      1.0 + static_cast<double>(man) / static_cast<double>(1ull << fmt.man_bits);
  const double v =
      m * std::pow(2.0, static_cast<double>(static_cast<int64_t>(exp) -
                                            fmt.bias()));
  return sign ? -v : v;
}

SoftFloat SoftFloat::mul(SoftFloat a, SoftFloat b) {
  const FloatFormat fmt = a.fmt;
  const size_t m = fmt.man_bits;
  const uint64_t ea = (a.bits >> m) & ((1ull << fmt.exp_bits) - 1);
  const uint64_t eb = (b.bits >> m) & ((1ull << fmt.exp_bits) - 1);
  SoftFloat out;
  out.fmt = fmt;
  if (ea == 0 || eb == 0) return out;  // zero

  const uint64_t sa = a.bits >> (m + fmt.exp_bits);
  const uint64_t sb = b.bits >> (m + fmt.exp_bits);
  const uint64_t ma = (a.bits & ((1ull << m) - 1)) | (1ull << m);
  const uint64_t mb = (b.bits & ((1ull << m) - 1)) | (1ull << m);
  const uint64_t p = ma * mb;  // in [2^2m, 2^(2m+2))
  const bool top = (p >> (2 * m + 1)) & 1;
  uint64_t man = top ? (p >> (m + 1)) : (p >> m);
  man &= (1ull << m) - 1;
  int64_t e = static_cast<int64_t>(ea) + static_cast<int64_t>(eb) -
              fmt.bias() + (top ? 1 : 0);
  if (e <= 0) return out;  // underflow -> zero
  if (e > static_cast<int64_t>(fmt.max_exp())) {
    e = static_cast<int64_t>(fmt.max_exp());
    man = (1ull << m) - 1;
  }
  out.bits = man | (static_cast<uint64_t>(e) << m) |
             ((sa ^ sb) << (m + fmt.exp_bits));
  return out;
}

SoftFloat SoftFloat::add(SoftFloat a, SoftFloat b) {
  const FloatFormat fmt = a.fmt;
  const size_t m = fmt.man_bits;
  const uint64_t mag_mask = (1ull << (m + fmt.exp_bits)) - 1;
  uint64_t mag_a = a.bits & mag_mask;
  uint64_t mag_b = b.bits & mag_mask;
  uint64_t sa = a.bits >> (m + fmt.exp_bits);
  uint64_t sb = b.bits >> (m + fmt.exp_bits);
  if (mag_a < mag_b) {
    std::swap(mag_a, mag_b);
    std::swap(sa, sb);
  }
  const uint64_t ea = mag_a >> m;
  const uint64_t eb = mag_b >> m;
  SoftFloat out;
  out.fmt = fmt;
  if (ea == 0) return out;  // both zero (zero has the smallest magnitude)

  const uint64_t big = (mag_a & ((1ull << m) - 1)) | (1ull << m);
  uint64_t small = 0;
  if (eb != 0) {
    const uint64_t d = ea - eb;
    small = d > m + 2 ? 0
                      : (((mag_b & ((1ull << m) - 1)) | (1ull << m)) >> d);
  }

  const bool same_sign = sa == sb;
  const uint64_t mval = same_sign ? big + small : big - small;
  if (mval == 0) return out;  // exact cancellation

  // Normalize: leading one to position m+1 within an (m+2)-bit window.
  int h = 63;
  while (((mval >> h) & 1) == 0) --h;
  const int shift_left = static_cast<int>(m) + 1 - h;
  uint64_t man;
  if (shift_left <= 0)
    man = mval >> (-shift_left);
  else
    man = mval << shift_left;
  man &= (1ull << (m + 1)) - 1;  // drop the leading 1 at position m+1...
  man >>= 1;                     // ...and align to m bits
  int64_t e = static_cast<int64_t>(ea) + 1 -
              (static_cast<int64_t>(m) + 2 - 1 - h);
  // Equivalent: e = ea + (h - (m)) ... keep the direct form below.
  e = static_cast<int64_t>(ea) + (h - static_cast<int64_t>(m));
  if (e <= 0) return out;  // flush to zero
  uint64_t man_final = man;
  if (e > static_cast<int64_t>(fmt.max_exp())) {
    e = static_cast<int64_t>(fmt.max_exp());
    man_final = (1ull << m) - 1;
  }
  out.bits = man_final | (static_cast<uint64_t>(e) << m) |
             (sa << (m + fmt.exp_bits));
  return out;
}

bool SoftFloat::less_than(SoftFloat a, SoftFloat b) {
  const FloatFormat fmt = a.fmt;
  const size_t m = fmt.man_bits;
  const uint64_t mag_mask = (1ull << (m + fmt.exp_bits)) - 1;
  const uint64_t sa = a.bits >> (m + fmt.exp_bits);
  const uint64_t sb = b.bits >> (m + fmt.exp_bits);
  const uint64_t mag_a = a.bits & mag_mask;
  const uint64_t mag_b = b.bits & mag_mask;
  if (sa != sb) return sa == 1;  // negative < positive (note: -0 < +0)
  return sa ? mag_b < mag_a : mag_a < mag_b;
}

// ----------------------------------------------------------------------
// Circuits.

Bus float_mul(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt) {
  const size_t m = fmt.man_bits;
  const size_t e = fmt.exp_bits;
  const Unpacked a = unpack(x, fmt);
  const Unpacked c = unpack(y, fmt);

  const Wire sign = b.xor_(a.sign, c.sign);
  const Wire a_zero = is_zero(b, a.exp);
  const Wire c_zero = is_zero(b, c.exp);
  const Wire any_zero = b.or_(a_zero, c_zero);

  // (1.ma) * (1.mc) at width 2m+2.
  Bus ma = a.man;
  ma.push_back(b.const_bit(true));
  Bus mc = c.man;
  mc.push_back(b.const_bit(true));
  const size_t pw = 2 * m + 2;
  const Bus p =
      mult_fixed(b, zero_extend(b, ma, pw), zero_extend(b, mc, pw), 0);
  const Wire top = p[2 * m + 1];

  Bus man(m);
  for (size_t i = 0; i < m; ++i)
    man[i] = b.mux(top, p[m + 1 + i], p[m + i]);

  // Exponent at width e+2 (signed headroom): ea + ec - bias + top.
  const size_t ew = e + 2;
  Bus exp_sum = add(b, zero_extend(b, a.exp, ew), zero_extend(b, c.exp, ew));
  exp_sum = sub(b, exp_sum,
                constant_bus(b, static_cast<uint64_t>(fmt.bias()), ew));
  Bus top_bus = constant_bus(b, 0, ew);
  top_bus[0] = top;
  exp_sum = add(b, exp_sum, top_bus);

  // Underflow (e <= 0) or operand zero -> canonical zero; overflow -> max.
  const Wire neg_or_zero =
      b.or_(sign_bit(exp_sum), is_zero(b, exp_sum));
  const Wire overflow = lt_signed(
      b, constant_bus(b, fmt.max_exp(), ew), exp_sum);
  Bus exp_out = mux_bus(b, overflow, constant_bus(b, fmt.max_exp(), ew),
                        exp_sum);
  man = mux_bus(b, overflow, constant_bus(b, (1ull << m) - 1, m), man);

  Bus out = pack(b, man, truncate(exp_out, e), sign, fmt);
  return zero_if(b, out, b.or_(any_zero, neg_or_zero));
}

Bus float_add(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt) {
  const size_t m = fmt.man_bits;
  const size_t e = fmt.exp_bits;
  Unpacked a = unpack(x, fmt);
  Unpacked c = unpack(y, fmt);

  // Operand swap so |a| >= |b| (monotone packed magnitude).
  const Wire swap = lt_unsigned(b, a.mag, c.mag);
  const Bus mag_hi = mux_bus(b, swap, c.mag, a.mag);
  const Bus mag_lo = mux_bus(b, swap, a.mag, c.mag);
  const Wire s_hi = b.mux(swap, c.sign, a.sign);
  const Wire s_lo = b.mux(swap, a.sign, c.sign);

  const Bus man_hi(mag_hi.begin(), mag_hi.begin() + static_cast<ptrdiff_t>(m));
  const Bus exp_hi(mag_hi.begin() + static_cast<ptrdiff_t>(m), mag_hi.end());
  const Bus man_lo(mag_lo.begin(), mag_lo.begin() + static_cast<ptrdiff_t>(m));
  const Bus exp_lo(mag_lo.begin() + static_cast<ptrdiff_t>(m), mag_lo.end());

  const Wire hi_zero = is_zero(b, exp_hi);
  const Wire lo_zero = is_zero(b, exp_lo);

  // Align the smaller mantissa: shift right by d = exp_hi - exp_lo.
  const Bus d = sub(b, exp_hi, exp_lo);  // non-negative by the swap
  const size_t dbits = clog2(m + 3);
  Bus d_low(dbits);
  for (size_t i = 0; i < dbits; ++i) d_low[i] = d[i];
  // d >= m+2 (high bits set or low field saturated) -> contributes 0.
  Wire d_big = b.const_bit(false);
  for (size_t i = dbits; i < e; ++i) d_big = b.or_(d_big, d[i]);
  {
    const Bus lim = constant_bus(b, m + 2, dbits);
    d_big = b.or_(d_big, b.not_(lt_unsigned(b, d_low, lim)));
  }

  const size_t wm = m + 2;  // implicit-1 + carry headroom
  Bus big = man_hi;
  big.push_back(b.const_bit(true));
  big = zero_extend(b, big, wm);
  Bus small = man_lo;
  small.push_back(b.const_bit(true));
  small = zero_extend(b, small, wm);
  small = shr_variable(b, small, d_low);
  const Wire small_live = b.not_(b.or_(d_big, lo_zero));
  for (auto& wbit : small) wbit = b.and_(wbit, small_live);

  const Wire same_sign = b.xnor_(s_hi, s_lo);
  const Bus msum = add(b, big, small);
  const Bus mdiff = sub(b, big, small);
  const Bus mval = mux_bus(b, same_sign, msum, mdiff);
  const Wire m_zero = is_zero(b, mval);

  // Normalize: put the leading one at position m+1.
  const Bus lzc = leading_zero_count(b, mval);
  const Bus norm = shl_variable(b, mval, lzc);
  Bus man_out(m);
  for (size_t i = 0; i < m; ++i) man_out[i] = norm[i + 1];

  // exp = exp_hi + 1 - lzc, evaluated at width e+2 signed.
  const size_t ew = e + 2;
  Bus exp_out = zero_extend(b, exp_hi, ew);
  exp_out = add(b, exp_out, constant_bus(b, 1, ew));
  exp_out = sub(b, exp_out, zero_extend(b, lzc, ew));

  const Wire underflow = b.or_(sign_bit(exp_out), is_zero(b, exp_out));
  const Wire overflow =
      lt_signed(b, constant_bus(b, fmt.max_exp(), ew), exp_out);
  exp_out = mux_bus(b, overflow, constant_bus(b, fmt.max_exp(), ew), exp_out);
  man_out =
      mux_bus(b, overflow, constant_bus(b, (1ull << m) - 1, m), man_out);

  Bus out = pack(b, man_out, truncate(exp_out, e), s_hi, fmt);
  const Wire is_nothing = b.or_(b.or_(hi_zero, m_zero), underflow);
  return zero_if(b, out, is_nothing);
}

Bus float_neg(Builder& b, const Bus& x, FloatFormat fmt) {
  (void)fmt;
  Bus out = x;
  out.back() = b.not_(x.back());
  return out;
}

Bus float_sub(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt) {
  return float_add(b, x, float_neg(b, y, fmt), fmt);
}

Wire float_lt(Builder& b, const Bus& x, const Bus& y, FloatFormat fmt) {
  const Unpacked a = unpack(x, fmt);
  const Unpacked c = unpack(y, fmt);
  const Wire lt_mag = lt_unsigned(b, a.mag, c.mag);
  const Wire gt_mag = lt_unsigned(b, c.mag, a.mag);
  const Wire differ = b.xor_(a.sign, c.sign);
  const Wire same_sign_lt = b.mux(a.sign, gt_mag, lt_mag);
  return b.mux(differ, a.sign, same_sign_lt);
}

Bus float_relu(Builder& b, const Bus& x, FloatFormat fmt) {
  (void)fmt;
  return zero_if(b, x, x.back());
}

Bus float_dot(Builder& b, const std::vector<Bus>& x,
              const std::vector<Bus>& w, FloatFormat fmt) {
  if (x.size() != w.size() || x.empty())
    throw std::invalid_argument("float_dot size mismatch");
  std::vector<Bus> terms(x.size());
  for (size_t i = 0; i < x.size(); ++i)
    terms[i] = float_mul(b, x[i], w[i], fmt);
  // Balanced adder tree (better error behaviour than a linear chain).
  while (terms.size() > 1) {
    std::vector<Bus> next;
    for (size_t i = 0; i + 1 < terms.size(); i += 2)
      next.push_back(float_add(b, terms[i], terms[i + 1], fmt));
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

}  // namespace deepsecure::synth
