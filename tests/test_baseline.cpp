#include <gtest/gtest.h>

#include "baseline/cryptonets.h"
#include "data/synthetic.h"

namespace deepsecure::baseline {
namespace {

TEST(CryptoNets, BatchedDelayModel) {
  EXPECT_DOUBLE_EQ(cryptonets_delay_s(0), 0.0);
  EXPECT_DOUBLE_EQ(cryptonets_delay_s(1), 570.11);
  EXPECT_DOUBLE_EQ(cryptonets_delay_s(8192), 570.11);
  EXPECT_DOUBLE_EQ(cryptonets_delay_s(8193), 2 * 570.11);
  EXPECT_DOUBLE_EQ(cryptonets_delay_s(3 * 8192), 3 * 570.11);
}

TEST(CryptoNets, PaperCrossovers) {
  // Figure 6: DeepSecure w/o pre-processing crosses at ~288 samples
  // (570.11 / 1.98) and with pre-processing at ~2590 (570.11 / 0.22).
  EXPECT_EQ(crossover_samples(1.98), 287u);
  EXPECT_EQ(crossover_samples(0.22), 2591u);
}

TEST(CryptoNets, DeepSecureWinsBelowCrossover) {
  const double per_sample = 1.98;
  const size_t cross = crossover_samples(per_sample);
  EXPECT_LT(deepsecure_delay_s(cross - 1, per_sample),
            cryptonets_delay_s(cross - 1));
  EXPECT_GT(deepsecure_delay_s(cross + 2, per_sample),
            cryptonets_delay_s(cross + 2));
}

TEST(CryptoNets, SquareActivationLosesAccuracy) {
  // The privacy/utility trade-off argument: on data needing a saturating
  // non-linearity, the polynomial (square) network underperforms.
  data::SyntheticConfig cfg;
  cfg.features = 24;
  cfg.classes = 4;
  cfg.samples = 320;
  cfg.subspace_rank = 5;
  cfg.noise = 0.08;
  cfg.class_sep = 0.55;
  cfg.seed = 77;
  const nn::Dataset all = data::make_subspace_dataset(cfg);
  const nn::Split split = nn::split_dataset(all, 0.75);

  nn::TrainConfig tc;
  tc.epochs = 14;
  const UtilityComparison cmp =
      compare_utility(split.train, split.test, 12, nn::Act::kTanh, tc);

  EXPECT_GT(cmp.accuracy_true_act, 0.7f);
  // GC evaluates the true activation, so DeepSecure keeps the higher
  // accuracy; the HE-constrained square network must not exceed it
  // meaningfully.
  EXPECT_GE(cmp.accuracy_true_act + 0.02f, cmp.accuracy_square_act);
}

}  // namespace
}  // namespace deepsecure::baseline
