#include <gtest/gtest.h>

#include <thread>

#include "net/mem_channel.h"
#include "net/party.h"
#include "support/bits.h"

namespace deepsecure {
namespace {

TEST(MemChannel, RoundTripAndCounters) {
  auto pair = make_channel_pair();
  const std::string msg = "hello garbled world";
  std::thread t([&] { pair.a->send_bytes(msg.data(), msg.size()); });
  std::string got(msg.size(), '\0');
  pair.b->recv_bytes(got.data(), got.size());
  t.join();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(pair.a->bytes_sent(), msg.size());
  EXPECT_EQ(pair.b->bytes_received(), msg.size());
  EXPECT_EQ(pair.b->bytes_sent(), 0u);
}

TEST(MemChannel, TypedHelpers) {
  auto pair = make_channel_pair();
  std::thread t([&] {
    pair.a->send_u64(0xDEADBEEFCAFEull);
    pair.a->send_block(Block{1, 2});
    pair.a->send_bits({1, 0, 1, 1, 0, 0, 0, 1, 1});
  });
  EXPECT_EQ(pair.b->recv_u64(), 0xDEADBEEFCAFEull);
  EXPECT_EQ(pair.b->recv_block(), (Block{1, 2}));
  const BitVec bits = pair.b->recv_bits();
  t.join();
  EXPECT_EQ(bits, (BitVec{1, 0, 1, 1, 0, 0, 0, 1, 1}));
}

TEST(MemChannel, BackpressureDoesNotDeadlock) {
  auto pair = make_channel_pair();
  // Push well past the queue cap while the peer drains slowly.
  const size_t total = 200ull << 20;  // 200 MB
  std::thread producer([&] {
    std::vector<uint8_t> chunk(1 << 20, 0xAB);
    for (size_t sent = 0; sent < total; sent += chunk.size())
      pair.a->send_bytes(chunk.data(), chunk.size());
  });
  std::vector<uint8_t> sink(4 << 20);
  size_t got = 0;
  while (got < total) {
    const size_t take = std::min(sink.size(), total - got);
    pair.b->recv_bytes(sink.data(), take);
    got += take;
  }
  producer.join();
  EXPECT_EQ(pair.a->bytes_sent(), total);
}

TEST(RunTwoParty, CollectsStatsAndOutput) {
  int a_saw = 0, b_saw = 0;
  const auto stats = run_two_party(
      [&](Channel& ch) {
        ch.send_u64(7);
        a_saw = static_cast<int>(ch.recv_u64());
      },
      [&](Channel& ch) {
        b_saw = static_cast<int>(ch.recv_u64());
        ch.send_u64(9);
      });
  EXPECT_EQ(a_saw, 9);
  EXPECT_EQ(b_saw, 7);
  EXPECT_EQ(stats.a_to_b_bytes, 8u);
  EXPECT_EQ(stats.b_to_a_bytes, 8u);
}

TEST(RunTwoParty, PeerErrorPropagatesInsteadOfDeadlocking) {
  EXPECT_THROW(
      run_two_party(
          [&](Channel&) { throw std::runtime_error("alice failed"); },
          [&](Channel& ch) {
            uint8_t b;
            ch.recv_bytes(&b, 1);  // would block forever without close()
          }),
      std::runtime_error);
}

}  // namespace
}  // namespace deepsecure
