// Observability substrate (src/obs): lock-free sharded counters /
// gauges / log-bucketed histograms, snapshot semantics under concurrent
// writers, and the span tracer's never-block overrun contract. The
// concurrency tests double as TSan targets (CI runs this binary under
// -DDEEPSECURE_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace deepsecure::obs {
namespace {

// Minimal structural JSON check: balanced {}/[] outside string
// literals, with escape handling. Not a validator — enough to catch
// the serializer emitting torn or unbalanced output.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc) esc = false;
      else if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

TEST(ObsMetrics, CounterExactUnderConcurrentIncrements) {
  Registry reg;
  Counter& c = reg.counter("test.hits");
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> ts;
  for (size_t i = 0; i < kThreads; ++i)
    ts.emplace_back([&c] {
      for (uint64_t n = 0; n < kPerThread; ++n) c.add();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, GaugeBalancesAcrossThreads) {
  Registry reg;
  Gauge& g = reg.gauge("test.depth");
  std::vector<std::thread> ts;
  for (size_t i = 0; i < 4; ++i)
    ts.emplace_back([&g] {
      for (int n = 0; n < 10000; ++n) {
        g.add(3);
        g.sub(3);
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.value(), 0);
  g.add(7);
  EXPECT_EQ(g.value(), 7);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(1023), 10u);
  EXPECT_EQ(histogram_bucket(1024), 11u);
  EXPECT_EQ(histogram_bucket(UINT64_MAX), 64u);
  EXPECT_EQ(histogram_bucket_lo(0), 0u);
  EXPECT_EQ(histogram_bucket_lo(1), 1u);
  EXPECT_EQ(histogram_bucket_lo(11), 1024u);
}

TEST(ObsMetrics, HistogramCountSumQuantileAndMergeUnderConcurrency) {
  Registry reg;
  Histogram& h = reg.histogram("test.lat");
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> ts;
  for (size_t i = 0; i < kThreads; ++i)
    ts.emplace_back([&h, i] {
      for (uint64_t n = 0; n < kPerThread; ++n) h.observe(100 + i);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  uint64_t want_sum = 0;
  for (size_t i = 0; i < kThreads; ++i) want_sum += (100 + i) * kPerThread;
  EXPECT_EQ(h.sum(), want_sum);
  // All observations in [100, 107] → bucket 7 ([64, 128)); quantiles
  // interpolate inside that bin.
  const Snapshot s = reg.snapshot();
  const Snapshot::Hist* sh = s.find_hist("test.lat");
  ASSERT_NE(sh, nullptr);
  EXPECT_EQ(sh->buckets[7], kThreads * kPerThread);
  EXPECT_GE(sh->quantile(0.5), 64.0);
  EXPECT_LE(sh->quantile(0.5), 128.0);
  EXPECT_GE(sh->quantile(0.99), sh->quantile(0.01));
}

TEST(ObsMetrics, SnapshotWhileWritingStaysMonotonic) {
  Registry reg;
  Counter& c = reg.counter("test.mono");
  Histogram& h = reg.histogram("test.mono_hist");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      c.add();
      h.observe(42);
    }
  });
  // Counters and histogram counts must never go backwards between
  // snapshots taken while the writer keeps writing.
  uint64_t last_c = 0, last_h = 0;
  for (int i = 0; i < 2000; ++i) {
    const Snapshot s = reg.snapshot();
    const uint64_t now_c = s.counter_value("test.mono");
    const Snapshot::Hist* sh = s.find_hist("test.mono_hist");
    ASSERT_NE(sh, nullptr);
    EXPECT_GE(now_c, last_c);
    EXPECT_GE(sh->count, last_h);
    last_c = now_c;
    last_h = sh->count;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(reg.snapshot().counter_value("test.mono"), c.value());
}

TEST(ObsMetrics, SnapshotDeltaSubtractsBaseline) {
  Registry reg;
  Counter& c = reg.counter("test.win");
  Histogram& h = reg.histogram("test.win_hist");
  c.add(10);
  h.observe(5);
  const Snapshot base = reg.snapshot();
  c.add(7);
  h.observe(5);
  h.observe(9);
  const Snapshot d = reg.snapshot().delta(base);
  EXPECT_EQ(d.counter_value("test.win"), 7u);
  const Snapshot::Hist* dh = d.find_hist("test.win_hist");
  ASSERT_NE(dh, nullptr);
  EXPECT_EQ(dh->count, 2u);
  EXPECT_EQ(dh->sum, 14u);
}

TEST(ObsMetrics, RegistryHandlesAreStableAndToJsonBalanced) {
  Registry reg;
  Counter& a = reg.counter("dup");
  Counter& b = reg.counter("dup");
  EXPECT_EQ(&a, &b);
  reg.gauge("g").add(3);
  reg.histogram("h").observe(1000);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"hists\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsTrace, DisabledSpansCollectNothing) {
  set_trace_enabled(false);
  trace_reset();
  { Span s("never"); }
  trace_drain();
  EXPECT_EQ(trace_collected(), 0u);
}

TEST(ObsTrace, EnabledSpansExportChromeJson) {
  set_trace_enabled(false);
  trace_reset();
  set_trace_enabled(true);
  {
    Span s("unit_test_span");
    Span early("unit_test_early");
    early.end();
  }
  trace_interval("unit_test_interval", now_ns(), 123);
  set_trace_enabled(false);
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("unit_test_span"), std::string::npos);
  EXPECT_NE(json.find("unit_test_early"), std::string::npos);
  EXPECT_NE(json.find("unit_test_interval"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  trace_reset();
}

TEST(ObsTrace, RingOverrunDropsAreCountedAndNeverBlock) {
  set_trace_enabled(false);
  trace_reset();
  set_trace_ring_capacity(8);  // new thread rings only
  set_trace_enabled(true);
  const uint64_t dropped_before = trace_dropped();
  // A fresh thread gets an 8-slot ring; 200 undrained emits must
  // complete (never block) and count their overruns.
  std::thread producer([] {
    for (int i = 0; i < 200; ++i) Span s("overrun_span");
  });
  producer.join();
  set_trace_enabled(false);
  EXPECT_GE(trace_dropped() - dropped_before, 100u);
  trace_drain();
  EXPECT_GT(trace_collected(), 0u);   // the ring's tail still exported
  EXPECT_LE(trace_collected(), 16u);  // ... but no more than it held
  set_trace_ring_capacity(4096);
  trace_reset();
}

TEST(ObsTrace, ConcurrentEmittersKeepThreadIdsDistinct) {
  set_trace_enabled(false);
  trace_reset();
  set_trace_enabled(true);
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([] {
      for (int n = 0; n < 50; ++n) Span s("mt_span");
    });
  for (auto& t : ts) t.join();
  set_trace_enabled(false);
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_EQ(trace_collected(), 200u);
  trace_reset();
}

TEST(ObsMetrics, NowNsIsMonotonic) {
  const uint64_t a = now_ns();
  const uint64_t b = now_ns();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace deepsecure::obs
