// Plain-text table printer used by the benchmark harness so that every
// regenerated paper table prints with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace deepsecure {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, column padding, and `title` on top.
  std::string to_string(const std::string& title = "") const;

  /// Format helpers for table cells.
  static std::string num(double v, int precision = 2);
  static std::string sci(double v, int precision = 2);
  static std::string count(uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepsecure
