// Figure 6 reproduction: expected processing delay vs number of client
// samples for DeepSecure (with/without pre-processing) and CryptoNets.
//
// The paper's crossover markers follow from computation-dominated
// per-sample delay: 570.11/1.98 ~ 288 and 570.11/0.22 ~ 2590; CryptoNets
// steps at multiples of 8192 samples. We regenerate the same series from
// (a) the paper's per-sample constants and (b) our own cost model for
// benchmark 1, and print both.
#include <cmath>
#include <cstdio>

#include "baseline/cryptonets.h"
#include "core/benchmark_zoo.h"
#include "cost/cost_model.h"
#include "support/table.h"

using namespace deepsecure;

int main() {
  std::printf("Figure 6: expected processing delay vs batch size\n\n");

  const auto z = core::benchmark1();
  const auto ours_base = cost::cost_from_gates(synth::count_model(z.base));
  const auto ours_pp = cost::cost_from_gates(synth::count_model(z.compact));

  const double paper_wo = 1.98, paper_w = 0.22;  // paper comp s/sample
  const baseline::CryptoNetsParams cn;

  TablePrinter t({"N", "DS w/o (paper)", "DS w/ (paper)", "CryptoNets",
                  "DS w/o (ours)", "DS w/ (ours)"});
  const size_t ns[] = {1,    2,    5,    10,   20,    50,   100,  288,
                       500,  1000, 2000, 2590, 4000,  6000, 8192, 8193,
                       10000};
  for (size_t n : ns) {
    t.add_row({std::to_string(n),
               TablePrinter::num(baseline::deepsecure_delay_s(n, paper_wo), 1),
               TablePrinter::num(baseline::deepsecure_delay_s(n, paper_w), 1),
               TablePrinter::num(baseline::cryptonets_delay_s(n, cn), 1),
               TablePrinter::num(
                   baseline::deepsecure_delay_s(n, ours_base.comp_seconds), 1),
               TablePrinter::num(
                   baseline::deepsecure_delay_s(n, ours_pp.comp_seconds), 1)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\ncrossover points (largest N where DeepSecure wins):\n");
  std::printf("  w/o pre-processing : N = %zu (paper marker: 288)\n",
              baseline::crossover_samples(paper_wo, cn));
  std::printf("  w/  pre-processing : N = %zu (paper marker: 2590)\n",
              baseline::crossover_samples(paper_w, cn));
  std::printf("  ours w/o           : N = %zu\n",
              baseline::crossover_samples(ours_base.comp_seconds, cn));
  std::printf("  ours w/            : N = %zu\n",
              baseline::crossover_samples(ours_pp.comp_seconds, cn));

  // ASCII rendering of the log-log figure.
  std::printf("\nlog-log sketch (rows = delay decade, x = samples):\n");
  const int kCols = 60;
  auto col_of = [&](double n) {
    return static_cast<int>(std::log10(n) / std::log10(10000.0) * (kCols - 1));
  };
  for (int decade = 5; decade >= 0; --decade) {
    std::string line(kCols, ' ');
    auto mark = [&](double per_sample, char glyph) {
      for (int c = 0; c < kCols; ++c) {
        const double n = std::pow(10.0, static_cast<double>(c) /
                                             (kCols - 1) * 4.0);
        const double d = baseline::deepsecure_delay_s(
            static_cast<size_t>(std::max(1.0, n)), per_sample);
        if (static_cast<int>(std::floor(std::log10(std::max(d, 1e-9)))) ==
            decade)
          line[static_cast<size_t>(c)] = glyph;
      }
    };
    auto mark_cn = [&](char glyph) {
      for (int c = 0; c < kCols; ++c) {
        const double n = std::pow(10.0, static_cast<double>(c) /
                                             (kCols - 1) * 4.0);
        const double d =
            baseline::cryptonets_delay_s(static_cast<size_t>(std::max(1.0, n)), cn);
        if (static_cast<int>(std::floor(std::log10(d))) == decade)
          line[static_cast<size_t>(c)] = glyph;
      }
    };
    mark_cn('C');
    mark(paper_wo, 'o');
    mark(paper_w, '+');
    std::printf("  1e%d |%s|\n", decade, line.c_str());
  }
  std::printf("       1        10       100      1000     10000  samples\n");
  std::printf("  o = DeepSecure w/o pre-p, + = w/ pre-p, C = CryptoNets\n");
  (void)col_of;
  return 0;
}
