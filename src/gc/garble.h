// Garbling engine: free-XOR (Kolesnikov-Schneider), half-gates
// (Zahur-Rosulek-Evans, 2 ciphertexts per AND), point-and-permute, and
// fixed-key AES hashing (Bellare et al.) — the optimization stack from
// Section 2.3 of the paper. Row-reduction is subsumed by half-gates.
//
// Labels are 128-bit blocks; the wire's "zero" label W0 encodes FALSE,
// W1 = W0 ^ delta encodes TRUE, lsb(delta) = 1 (permute bit).
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "crypto/prg.h"
#include "net/channel.h"

namespace deepsecure {

class BlockWriter;
class BlockReader;
class BufferPool;
class ThreadPool;
struct HashBackend;

/// Wire labels, indexed like the corresponding input/output vectors.
using Labels = std::vector<Block>;

/// Hashing pipeline selection. kBatched accumulates AND gates into a
/// window and hashes it through the pipelined AES batch kernel; kScalar
/// is the retained per-gate reference path. Tweaks are assigned at
/// enqueue time and tables are emitted in gate order, so both pipelines
/// produce byte-identical garbled tables for the same seed.
enum class GcPipeline : uint8_t { kBatched, kScalar };

/// Max AND gates per batch window. Bounds scratch memory (the garbler
/// hashes 4 blocks per gate) while amortizing the AES pipeline fill.
inline constexpr size_t kGcMaxBatchWindow = 1024;

/// Default for GcOptions::schedule / StreamConfig::schedule: true
/// unless the DEEPSECURE_NO_SCHEDULE environment variable is set to a
/// non-empty value other than "0" — the escape hatch CI uses to run the
/// whole suite on the unscheduled oracle path. Read once per process.
bool gc_schedule_default();

/// Execution options for one GC endpoint. Both parties must agree on
/// `framed_tables` and `schedule` (they change the wire format/stream
/// order); `pipeline` and `pool` are local choices that never affect
/// the byte stream.
struct GcOptions {
  GcPipeline pipeline = GcPipeline::kBatched;
  /// Walk the width-scheduled gate order (circuit/schedule.h, cached on
  /// the Circuit) instead of construction order. Reorders the garbled
  /// tables and tweak sequence identically on both sides, so the peer
  /// must agree; the runtime handshake's chain fingerprint covers the
  /// scheduled netlist, catching any mismatch at session setup. Off =
  /// the retained construction-order correctness oracle.
  bool schedule = gc_schedule_default();
  /// Length-prefixed table frames aligned to batch windows (see
  /// block_io.h) — the streaming runtime's wire format. The framed
  /// payload is byte-identical to the monolithic stream.
  bool framed_tables = false;
  /// Shard pool for either endpoint: each batch window is split into
  /// contiguous per-thread shards (independent sub-windows), hashed
  /// concurrently, and emitted/consumed in gate order. Tweaks are
  /// assigned and table rows moved at enqueue time on the walking
  /// thread, so sharding is byte-identical to single-threaded execution
  /// on both sides. nullptr = single-threaded. Not owned.
  ThreadPool* pool = nullptr;
  /// Windows smaller than this are not worth sharding (pool dispatch
  /// overhead exceeds the hash work).
  size_t min_shard_gates = 128;
  /// Zero-copy table plane (garbler + batched pipeline only): stage
  /// each batch window in a slab from this pool (slab size >=
  /// GarbleWindowLine::bytes_for(kGcMaxBatchWindow)) and hand the table
  /// rows to the channel as borrowed refcounted slices instead of
  /// copying them into the frame buffer. A local throughput knob like
  /// `pipeline` — the wire stream is byte-identical either way
  /// (asserted in tests/test_runtime.cpp). Not owned; must outlive the
  /// last in-flight send. nullptr = copy path.
  BufferPool* table_pool = nullptr;
  /// Batch AES kernel for this endpoint's window sweeps. nullptr = the
  /// process-wide selection (crypto/hash_backend.h: env override, then
  /// CPUID auto-dispatch). Every backend produces byte-identical
  /// tables, so this is a local throughput knob like `pipeline`. Not
  /// owned; must outlive the endpoint (registry entries are static).
  const HashBackend* hash_backend = nullptr;
};

class Garbler {
 public:
  /// `seed` drives all label sampling (pass entropy for real use,
  /// a constant for reproducible tests).
  Garbler(Channel& ch, Block seed, GcPipeline pipeline = GcPipeline::kBatched);
  Garbler(Channel& ch, Block seed, const GcOptions& opt);

  Block delta() const { return delta_; }

  /// Fresh zero-labels for `n` wires.
  Labels fresh_zeros(size_t n);

  /// Garble `c`, streaming constant labels and garbled tables to the
  /// channel. Zero-labels for every input class must be supplied
  /// (fresh_zeros for new inputs, carried values for chained layers).
  /// Returns output zero-labels; `state_next` (if non-null) receives the
  /// zero-labels of the state_next wires for the next cycle.
  Labels garble(const Circuit& c, const Labels& garbler_zeros,
                const Labels& evaluator_zeros, const Labels& state_zeros,
                Labels* state_next = nullptr);

  /// Transfer the active labels for the garbler's own input bits.
  void send_active(const BitVec& bits, const Labels& zeros);

  /// Receive output labels from the evaluator and decode (paper step 4:
  /// "merging results" on the client).
  BitVec decode_outputs(const Labels& output_zeros);

  /// Alternative decode direction: send lsb decode bits so the evaluator
  /// can open the outputs itself.
  void send_decode_info(const Labels& output_zeros);

  uint64_t gates_garbled() const { return tweak_ / 2; }

 private:
  void garble_gates_scalar(const Circuit& c, Labels& w, BlockWriter& tables);
  void garble_gates_batched(const Circuit& c, Labels& w, BlockWriter& tables);

  Channel& ch_;
  Prg prg_;
  Block delta_;
  GcOptions opt_;
  uint64_t tweak_ = 0;
};

class Evaluator {
 public:
  explicit Evaluator(Channel& ch, GcPipeline pipeline = GcPipeline::kBatched)
      : ch_(ch), opt_{.pipeline = pipeline} {}
  Evaluator(Channel& ch, const GcOptions& opt) : ch_(ch), opt_(opt) {}

  /// Evaluate `c` with active labels for all inputs, consuming the
  /// garbled tables from the channel. Returns active output labels.
  Labels evaluate(const Circuit& c, const Labels& garbler_labels,
                  const Labels& evaluator_labels, const Labels& state_labels,
                  Labels* state_next = nullptr);

  /// Receive the garbler's active input labels.
  Labels recv_active(size_t n);

  /// Send output labels back for decoding (paper flow).
  void send_outputs(const Labels& labels);

  /// Decode outputs locally from garbler-provided decode bits.
  BitVec decode_with_info(const Labels& labels);

 private:
  void evaluate_gates_scalar(const Circuit& c, Labels& w, BlockReader& tables);
  void evaluate_gates_batched(const Circuit& c, Labels& w, BlockReader& tables);

  Channel& ch_;
  GcOptions opt_;
  uint64_t tweak_ = 0;
};

}  // namespace deepsecure
