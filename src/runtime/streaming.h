// Streaming pipelined execution engine — one endpoint of the garble →
// transfer → eval pipeline.
//
// Composition (per endpoint):
//
//   transport Channel (TcpChannel / MemChannel)
//     └─ BufferedChannel        small control messages coalesce
//          └─ GarblerSession / EvaluatorSession
//               with GcOptions{framed_tables, pool}
//                 ├─ framed table stream: the garbler ships each
//                 │  completed batch window as a length-prefixed frame
//                 │  the moment it drains, and the evaluator consumes
//                 │  frame by frame — garbling, transfer, and
//                 │  evaluation of one circuit overlap in time
//                 └─ ThreadPool: batch windows are sharded across
//                    cores on the garbler side (byte-identical)
//
// This header is the composition layer the multi-session server, the
// client driver, and the load-generator all build on.
#pragma once

#include <memory>
#include <string>

#include "crypto/hash_backend.h"
#include "gc/protocol.h"
#include "net/buffered_channel.h"
#include "support/buffer_pool.h"
#include "support/thread_pool.h"

namespace deepsecure::runtime {

/// TCP submission path for a runtime endpoint's sends. kUring routes
/// vectored sends through a per-connection io_uring queue (net/uring.h:
/// linked SQEs, one io_uring_enter per batch); it is runtime-probed and
/// falls back to the plain sendmsg/epoll path cleanly when the kernel
/// refuses io_uring — effective mode is reported in stats_json().
enum class IoBackend : uint8_t { kEpoll, kUring };

inline const char* io_backend_name(IoBackend io) {
  return io == IoBackend::kUring ? "uring" : "epoll";
}

/// Default for StreamConfig::zero_copy_tables: on unless the
/// DEEPSECURE_NO_ZERO_COPY environment variable is set to a non-empty
/// value other than "0" — CI's escape hatch to exercise the copy
/// fallback across the whole suite. Read once per process.
bool zero_copy_tables_default();

struct StreamConfig {
  GcPipeline pipeline = GcPipeline::kBatched;
  /// Frame the garbled-table stream at batch-window granularity. Must
  /// match the peer (negotiated in the session hello).
  bool framed_tables = true;
  /// Width-scheduled gate order (circuit/schedule.h). Changes the table
  /// stream order, so it must match the peer — negotiated in the hello
  /// flags, and the chain fingerprint covers the scheduled netlist.
  bool schedule = gc_schedule_default();
  /// Worker threads for garbler-side window sharding; 0 = garble on the
  /// session thread only.
  size_t garble_threads = 0;
  /// Worker threads for evaluator-side window sharding (the same
  /// per-shard tweak/table-order invariant as the garbler's pool); 0 =
  /// evaluate on the session thread only.
  size_t eval_threads = 0;
  /// BufferedChannel staging size for small protocol messages.
  size_t channel_buffer = 1 << 16;
  /// Batch AES kernel by name ("vaes16", "aesni8", "bitsliced8",
  /// "scalar"). Purely local — every backend produces byte-identical
  /// tables, so this is never negotiated with the peer. Empty, unknown,
  /// or unavailable on this host = the process-wide selection
  /// (DEEPSECURE_HASH_BACKEND env, then CPUID auto-dispatch).
  std::string hash_backend;
  /// Garbler-side zero-copy table plane: stage batch windows in pooled
  /// refcounted slabs and ship the table rows as borrowed iovec slices
  /// (GcOptions::table_pool). Purely local — the wire stream is
  /// byte-identical to the copy path — so never negotiated.
  bool zero_copy_tables = zero_copy_tables_default();

  GcOptions gc_options(ThreadPool* pool,
                       BufferPool* table_pool = nullptr) const {
    GcOptions o;
    o.pipeline = pipeline;
    o.framed_tables = framed_tables;
    o.schedule = schedule;
    o.pool = pool;
    if (zero_copy_tables) o.table_pool = table_pool;
    if (!hash_backend.empty()) {
      const HashBackend* be = find_hash_backend(hash_backend);
      if (be != nullptr && be->available()) o.hash_backend = be;
    }
    return o;
  }
};

/// Client-side engine: owns the shard pool and the buffered channel, and
/// drives a GarblerSession over them. The underlying transport must
/// outlive this object.
class StreamingGarbler {
 public:
  StreamingGarbler(Channel& transport, Block seed, const StreamConfig& cfg);

  BitVec run_chain(const std::vector<Circuit>& chain, const BitVec& data_bits);
  BitVec run_sequential(const Circuit& step, size_t cycles,
                        const BitVec& data_bits);

  const SessionTrace& trace() const { return session_->trace(); }
  BufferedChannel& channel() { return ch_; }
  /// Direct session access for the offline/online split (precomputed
  /// OTs, material push, begin/finish_online) — see gc/protocol.h.
  GarblerSession& session() { return *session_; }

 private:
  std::unique_ptr<ThreadPool> pool_;  // may be null (0 threads)
  // Slab pool backing the zero-copy table plane (null when
  // zero_copy_tables is off). May die with sends still in flight — the
  // refcounted core outlives it (support/buffer_pool.h teardown
  // contract), so destruction order vs. an async transport is a
  // non-issue.
  std::unique_ptr<BufferPool> table_pool_;
  BufferedChannel ch_;
  std::unique_ptr<GarblerSession> session_;
};

/// Server-side engine: evaluator role (the model owner in the paper).
class StreamingEvaluator {
 public:
  StreamingEvaluator(Channel& transport, const StreamConfig& cfg);

  BitVec run_chain(const std::vector<Circuit>& chain,
                   const BitVec& weight_bits);
  BitVec run_sequential(const Circuit& step, size_t cycles,
                        const BitVec& weight_bits);

  const SessionTrace& trace() const { return session_->trace(); }
  BufferedChannel& channel() { return ch_; }

 private:
  std::unique_ptr<ThreadPool> pool_;  // may be null (0 eval threads)
  BufferedChannel ch_;
  std::unique_ptr<EvaluatorSession> session_;
};

}  // namespace deepsecure::runtime
