// Model compiler: turns a DL architecture description (the public
// knowledge in the protocol — layer types and sizes, plus the public
// sparsity map from pruning) into GC netlists.
//
// The client's data sample enters as garbler inputs; the server's weights
// and biases enter as evaluator inputs in a deterministic traversal order
// (see weight_count / flatten order below) that the core glue uses when
// quantizing trained models.
//
// Layout convention: feature maps are flattened channel-major,
// index = (ch * H + y) * W + x.
//
// Weight order per layer:
//   FC:   for o in [0,out): for i in [0,in): if mask[o*in+i] -> w[o][i]
//         then for o: bias[o]
//   Conv: for oc: for ic: for ky: for kx: w[oc][ic][ky][kx]; then bias[oc]
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "synth/activation.h"
#include "synth/matvec.h"
#include "synth/softmax.h"

namespace deepsecure::synth {

struct Shape3 {
  size_t h = 1, w = 1, c = 1;
  size_t flat() const { return h * w * c; }
};

struct FcLayer {
  size_t out = 0;
  /// Public sparsity map, row-major [out][in]; empty = dense.
  std::vector<uint8_t> mask;
  bool has_bias = true;
};

struct ConvLayer {
  size_t k = 5;
  size_t stride = 1;
  size_t out_ch = 1;
  bool has_bias = true;
};

enum class PoolKind { kMax, kMean };

struct PoolLayer {
  PoolKind kind = PoolKind::kMax;
  size_t k = 2;
  size_t stride = 2;
};

struct ActLayer {
  ActKind kind = ActKind::kReLU;
};

/// Softmax output stage, realized as argmax (inference label index).
struct ArgmaxLayer {};

using LayerSpec =
    std::variant<FcLayer, ConvLayer, PoolLayer, ActLayer, ArgmaxLayer>;

struct ModelSpec {
  std::string name;
  Shape3 input;
  std::vector<LayerSpec> layers;
  FixedFormat fmt = kDefaultFormat;
};

/// Output shape after applying `layer` to `in` (validates dimensions).
Shape3 layer_output_shape(const Shape3& in, const LayerSpec& layer);
Shape3 model_output_shape(const ModelSpec& spec);

/// Number of private weight scalars the evaluator feeds, in order.
size_t layer_weight_count(const Shape3& in, const LayerSpec& layer);
size_t model_weight_count(const ModelSpec& spec);

/// Compile the whole model into one combinational netlist.
Circuit compile_model(const ModelSpec& spec);

/// Compile one netlist per layer for chained (layer-pipelined) GC
/// execution; layer i's garbler inputs are bound to layer i-1's output
/// labels by the protocol driver.
std::vector<Circuit> compile_model_layers(const ModelSpec& spec);

}  // namespace deepsecure::synth
