#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "preprocess/projection.h"

namespace deepsecure::preprocess {
namespace {

TEST(Linalg, MatrixBasics) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  const Matrix at = a.transpose();
  EXPECT_EQ(at.at(0, 1), 3);
  const Matrix p = a * Matrix::identity(2);
  EXPECT_EQ(p.at(1, 0), 3);
  EXPECT_NEAR(a.frobenius(), std::sqrt(30.0), 1e-12);
}

TEST(Linalg, LeastSquaresRecoversCoefficients) {
  Rng rng(1);
  Matrix a(20, 3);
  for (size_t c = 0; c < 3; ++c)
    for (size_t r = 0; r < 20; ++r) a.at(r, c) = rng.next_gaussian();
  const std::vector<double> want{1.5, -2.0, 0.25};
  std::vector<double> b(20, 0.0);
  for (size_t r = 0; r < 20; ++r)
    for (size_t c = 0; c < 3; ++c) b[r] += a.at(r, c) * want[c];
  const auto got = least_squares(a, b);
  ASSERT_EQ(got.size(), 3u);
  for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(got[c], want[c], 1e-6);
  EXPECT_NEAR(projection_residual(a, b), 0.0, 1e-6);
}

TEST(Linalg, OrthonormalBasisProperties) {
  Rng rng(2);
  Matrix a(10, 4);
  for (size_t c = 0; c < 4; ++c)
    for (size_t r = 0; r < 10; ++r) a.at(r, c) = rng.next_gaussian();
  // Append a dependent column: col0 + col1.
  std::vector<double> dep(10);
  for (size_t r = 0; r < 10; ++r) dep[r] = a.at(r, 0) + a.at(r, 1);
  a.append_col(dep);

  const Matrix u = orthonormal_basis(a);
  EXPECT_EQ(u.cols(), 4u);  // dependent column dropped
  for (size_t i = 0; i < u.cols(); ++i)
    for (size_t j = 0; j < u.cols(); ++j) {
      const double d = dot(u.col(i), u.col(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-9);
    }
}

TEST(Linalg, ProjectorIsIdempotentAndSymmetric) {
  // Proposition 3.1: W = D(D^T D)^-1 D^T = U U^T.
  Rng rng(3);
  Matrix d(12, 3);
  for (size_t c = 0; c < 3; ++c)
    for (size_t r = 0; r < 12; ++r) d.at(r, c) = rng.next_gaussian();
  const Matrix w = projector(d);
  // Symmetric.
  for (size_t i = 0; i < 12; ++i)
    for (size_t j = 0; j < 12; ++j)
      EXPECT_NEAR(w.at(i, j), w.at(j, i), 1e-9);
  // Idempotent: W^2 = W.
  const Matrix w2 = w * w;
  EXPECT_NEAR((w2 - w).frobenius(), 0.0, 1e-8);
  // Fixes vectors in span(D).
  const std::vector<double> v = d.col(1);
  Matrix vm(12, 1);
  vm.set_col(0, v);
  const Matrix pv = w * vm;
  for (size_t i = 0; i < 12; ++i) EXPECT_NEAR(pv.at(i, 0), v[i], 1e-9);
}

TEST(Projection, LearnsCompactDictionaryOnSubspaceData) {
  data::SyntheticConfig cfg;
  cfg.features = 60;
  cfg.classes = 4;
  cfg.samples = 200;
  cfg.subspace_rank = 4;
  cfg.noise = 0.01;
  cfg.seed = 21;
  const nn::Dataset ds = data::make_subspace_dataset(cfg);

  ProjectionConfig pc;
  pc.gamma = 0.15;
  const ProjectionResult res = learn_projection(ds, pc);

  EXPECT_EQ(res.input_dim, 60u);
  EXPECT_GT(res.embed_dim, 0u);
  // Union of 4 rank-4 subspaces (+offsets) => dictionary far below m.
  EXPECT_LT(res.embed_dim, 35u);

  // Residuals of fresh samples against the learned subspace are small.
  data::SyntheticConfig fresh = cfg;
  fresh.seed = 21;  // same distribution
  const nn::Dataset ds2 = data::make_subspace_dataset(fresh);
  for (size_t i = 0; i < 10; ++i) {
    const nn::VecF full = res.project_full(ds2.x[i]);
    double num = 0, den = 0;
    for (size_t r = 0; r < full.size(); ++r) {
      num += std::pow(static_cast<double>(full[r] - ds2.x[i][r]), 2);
      den += std::pow(static_cast<double>(ds2.x[i][r]), 2);
    }
    EXPECT_LT(std::sqrt(num / den), pc.gamma + 0.05);
  }
}

TEST(Projection, EmbedPreservesSeparability) {
  data::SyntheticConfig cfg;
  cfg.features = 50;
  cfg.classes = 3;
  cfg.samples = 240;
  cfg.seed = 22;
  const nn::Dataset ds = data::make_subspace_dataset(cfg);
  ProjectionConfig pc;
  pc.gamma = 0.2;
  const ProjectionResult res = learn_projection(ds, pc);
  const nn::Dataset emb = res.embed(ds);
  ASSERT_EQ(emb.size(), ds.size());
  EXPECT_EQ(emb.x[0].size(), res.embed_dim);

  // Train a small classifier on the embedding; separability must survive.
  Rng rng(5);
  nn::Network net(nn::Shape{1, 1, res.embed_dim});
  net.dense(12, rng).act(nn::Act::kReLU).dense(3, rng);
  nn::TrainConfig tc;
  tc.epochs = 12;
  nn::train(net, emb, tc);
  EXPECT_GT(nn::accuracy(net, emb), 0.85f);
}

TEST(Projection, GammaControlsDictionarySize) {
  data::SyntheticConfig cfg;
  cfg.features = 40;
  cfg.samples = 150;
  cfg.seed = 23;
  const nn::Dataset ds = make_subspace_dataset(cfg);
  ProjectionConfig loose, tight;
  loose.gamma = 0.5;
  tight.gamma = 0.05;
  const auto rl = learn_projection(ds, loose);
  const auto rt = learn_projection(ds, tight);
  EXPECT_LE(rl.embed_dim, rt.embed_dim);
}

TEST(Projection, MaxDictCapRespected) {
  data::SyntheticConfig cfg;
  cfg.features = 40;
  cfg.samples = 200;
  cfg.subspace_rank = 30;  // high-rank data wants a big dictionary
  cfg.noise = 0.2;
  cfg.seed = 24;
  const nn::Dataset ds = make_subspace_dataset(cfg);
  ProjectionConfig pc;
  pc.gamma = 0.01;
  pc.max_dict = 10;
  const auto res = learn_projection(ds, pc);
  EXPECT_LE(res.embed_dim, 10u);
}

}  // namespace
}  // namespace deepsecure::preprocess
