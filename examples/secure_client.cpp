// Secure inference client: connects to example_secure_server and runs
// private inferences on locally-owned samples. The server never sees the
// sample; the client never sees the weights.
//
//   ./example_secure_client [host] [port] [n_requests] [garble_threads]
//                           [prefetch] [shard_threads] [async] [--stats]
//
// --stats asks the server for its runtime counters (protocol v5 kStats
// round trip) after the requests finish and prints the JSON document —
// pool slab traffic, vectored sends, copied bytes, io backend.
//
// With prefetch > 0 the client garbles instances in the background and
// pushes them to the server ahead of requests (the offline/online
// split): each request then ships only the active input labels, so the
// per-request latency drops to transfer + evaluation. shard_threads > 0
// fans each background garbling's batch windows across that many extra
// workers (faster first warm artifact); async = 1 refills the server
// through the dedicated v4 prefetch lane concurrently with requests.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "demo_model.h"
#include "runtime/client.h"
#include "support/stopwatch.h"

int main(int argc, char** argv) {
  using namespace deepsecure;

  // Flags may appear anywhere; strip them before positional parsing.
  bool want_stats = false;
  int argn = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--stats")
      want_stats = true;
    else
      argv[argn++] = argv[i];
  }
  argc = argn;

  const std::string host = argc > 1 ? argv[1] : "127.0.0.1";
  const uint16_t port =
      argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 31337;
  const size_t n = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;

  runtime::ClientConfig cfg;
  if (argc > 4) cfg.stream.garble_threads = static_cast<size_t>(std::atoi(argv[4]));
  const size_t prefetch = argc > 5 ? static_cast<size_t>(std::atoi(argv[5])) : 0;
  cfg.pool_target = prefetch;
  if (argc > 6)
    cfg.pool_shard_threads = static_cast<size_t>(std::atoi(argv[6]));
  cfg.async_prefetch = argc > 7 && std::atoi(argv[7]) != 0;
  // Refill between requests via an explicit top_up() call below (a
  // no-op nudge under the async lane), so the printed per-request
  // latency is the online phase alone (synchronous auto_top_up would
  // fold the next artifact's push into the request tail).
  cfg.auto_top_up = false;

  runtime::InferenceClient client(host, port, demo::demo_spec(), cfg);
  std::printf("secure_client: connected to %s:%u (chain ok, %zu input bits)\n",
              host.c_str(), port, client.input_bits());
  if (prefetch > 0) {
    Stopwatch sw;
    const size_t warmed = client.prefetch(prefetch);
    std::printf("secure_client: %zu garbled instances prefetched in %.1f ms "
                "(offline phase)\n",
                warmed, sw.seconds() * 1e3);
  }

  for (size_t k = 0; k < n; ++k) {
    const uint64_t pooled_before = client.pooled_inferences();
    Stopwatch sw;
    const size_t label = client.infer(demo::demo_sample(k));
    std::printf("  sample %zu -> label %zu  (%.1f ms, %s)\n", k, label,
                sw.seconds() * 1e3,
                client.pooled_inferences() > pooled_before
                    ? "pooled online phase"
                    : "on-demand");
    if (prefetch > 0) client.top_up();  // refill outside the timed window
  }
  const SessionTrace& t = client.trace();
  std::printf("secure_client: done. setup %.1f ms, garble %.1f ms, "
              "transfer %.1f ms over %zu layer runs\n",
              t.setup_s * 1e3, t.sum_garble() * 1e3,
              [&] {
                double ot = 0;
                for (const auto& p : t.phases) ot += p.ot_s;
                return ot * 1e3;
              }(),
              t.phases.size());
  if (want_stats)
    std::printf("secure_client: server stats\n%s\n",
                client.server_stats().c_str());
  client.close();
  return 0;
}
