// Load generator + overlap probe for the streaming inference runtime.
// Standalone binary (no google-benchmark): emits machine-readable JSON
// so the perf trajectory can accumulate as BENCH_*.json files.
//
//   ./loadgen_inference [--sessions N] [--requests M] [--threads T]
//                       [--layers L] [--gates G] [--out FILE]
//
// Two measurements:
//   1. overlap: one streaming session over TCP loopback garbling a
//      chain of wide layers. Reports wall-clock vs the sum of the
//      garble / transfer / eval phase times — streaming pipelining makes
//      wall < phase_sum (the phases overlap in time across the two
//      endpoints).
//   2. load: an InferenceServer serving N concurrent TCP sessions of M
//      inferences each; reports sessions/sec, requests/sec and p50/p95
//      per-inference latency.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuit/bench_circuits.h"
#include "fixed/fixed_point.h"
#include "net/tcp_channel.h"
#include "runtime/client.h"
#include "runtime/server.h"
#include "runtime/streaming.h"
#include "support/rng.h"
#include "support/stopwatch.h"

using namespace deepsecure;

namespace {

struct Args {
  size_t sessions = 4;
  size_t requests = 2;
  size_t threads = 2;
  size_t layers = 3;
  size_t gates = 4096;
  std::string out;
  // Fail (exit 1) when wall >= phase sum. Off by default: on an
  // oversubscribed CI runner the tiny workload's timing is noisy, and a
  // perf property should not train anyone to ignore a red smoke job.
  // The acceptance run uses --strict-overlap locally.
  bool strict_overlap = false;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + k);
      return argv[++i];
    };
    if (k == "--sessions") a.sessions = std::stoul(next());
    else if (k == "--requests") a.requests = std::stoul(next());
    else if (k == "--threads") a.threads = std::stoul(next());
    else if (k == "--layers") a.layers = std::stoul(next());
    else if (k == "--gates") a.gates = std::stoul(next());
    else if (k == "--out") a.out = next();
    else if (k == "--strict-overlap") a.strict_overlap = true;
    else throw std::runtime_error("unknown flag " + k);
  }
  return a;
}

struct OverlapResult {
  size_t layers = 0, gates = 0, threads = 0;
  double wall_s = 0, garble_s = 0, transfer_s = 0, eval_s = 0, setup_s = 0;
  double phase_sum() const { return garble_s + transfer_s + eval_s; }
};

// One streaming session over TCP loopback on a chain of wide layers;
// verifies the protocol output against plaintext evaluation.
OverlapResult measure_overlap(const Args& args) {
  std::vector<Circuit> chain;
  for (size_t l = 0; l < args.layers; ++l)
    chain.push_back(bench_circuits::wide_chain_layer(args.gates));

  Rng rng(4242);
  BitVec data(chain.front().garbler_inputs.size());
  for (auto& b : data) b = rng.next_bool();
  BitVec weights;
  for (const Circuit& c : chain)
    for (size_t i = 0; i < c.evaluator_inputs.size(); ++i)
      weights.push_back(rng.next_bool() ? 1 : 0);

  // Plaintext reference.
  BitVec expect = data;
  size_t consumed = 0;
  for (const Circuit& c : chain) {
    const BitVec w(weights.begin() + static_cast<ptrdiff_t>(consumed),
                   weights.begin() +
                       static_cast<ptrdiff_t>(consumed + c.evaluator_inputs.size()));
    consumed += c.evaluator_inputs.size();
    expect = c.eval(expect, w);
  }

  runtime::StreamConfig cfg;
  cfg.garble_threads = args.threads;

  TcpListener listener(0);
  SessionTrace g_trace, e_trace;
  BitVec got;
  double wall = 0;
  double warm_eval = 0;

  auto sum_ot = [](const SessionTrace& t) {
    double s = 0;
    for (const auto& p : t.phases) s += p.ot_s;
    return s;
  };

  // Two inferences on one session: the first pays base-OT setup and
  // warms caches, the second is the steady-state streaming measurement
  // (the paper's many-samples-per-session premise). Exceptions on either
  // thread are captured and rethrown after the join — an escape from the
  // server lambda, or a client throw skipping the join, would terminate.
  std::exception_ptr server_err, client_err;
  std::thread server_thread([&] {
    try {
      TcpChannel ch = listener.accept();
      runtime::StreamingEvaluator eval(ch, cfg);
      eval.run_chain(chain, weights);
      warm_eval = eval.trace().sum_eval();
      eval.run_chain(chain, weights);
      e_trace = eval.trace();
    } catch (...) {
      server_err = std::current_exception();
    }
  });
  double warm_garble = 0, warm_ot = 0;
  try {
    TcpChannel ch = TcpChannel::connect("127.0.0.1", listener.port());
    runtime::StreamingGarbler garbler(ch, Block{2026, 727}, cfg);
    garbler.run_chain(chain, data);  // warmup (includes OT setup)
    warm_garble = garbler.trace().sum_garble();
    warm_ot = sum_ot(garbler.trace());
    Stopwatch sw;
    got = garbler.run_chain(chain, data);
    wall = sw.seconds();
    g_trace = garbler.trace();
  } catch (...) {
    client_err = std::current_exception();
    listener.close();  // unblock a server still waiting in accept
  }
  server_thread.join();
  if (client_err) std::rethrow_exception(client_err);
  if (server_err) std::rethrow_exception(server_err);
  if (got != expect)
    throw std::runtime_error("overlap probe: protocol output != plaintext");

  OverlapResult r;
  r.layers = args.layers;
  r.gates = args.gates;
  r.threads = args.threads;
  r.wall_s = wall;
  r.garble_s = g_trace.sum_garble() - warm_garble;   // second run only
  r.eval_s = e_trace.sum_eval() - warm_eval;
  r.setup_s = g_trace.setup_s;
  r.transfer_s = sum_ot(g_trace) - warm_ot;
  return r;
}

struct LoadResult {
  size_t sessions = 0, requests = 0;
  double wall_s = 0;
  double p50_ms = 0, p95_ms = 0;
  uint64_t served = 0;
  double requests_per_s() const { return wall_s > 0 ? double(served) / wall_s : 0; }
  double sessions_per_s() const {
    return wall_s > 0 ? double(sessions) / wall_s : 0;
  }
};

synth::ModelSpec load_spec() {
  synth::ModelSpec spec;
  spec.name = "loadgen_mlp";
  spec.input = synth::Shape3{1, 1, 8};
  spec.layers.push_back(synth::FcLayer{6, {}, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{3, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  return spec;
}

LoadResult measure_load(const Args& args) {
  const synth::ModelSpec spec = load_spec();
  Rng rng(99);
  BitVec weights;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i) {
    const double v = (double(rng.next_below(2001)) - 1000.0) / 5000.0;
    const BitVec b = Fixed::from_double(v, spec.fmt).to_bits();
    weights.insert(weights.end(), b.begin(), b.end());
  }

  runtime::ServerConfig scfg;
  scfg.max_sessions = std::max<size_t>(args.sessions, 1);
  runtime::InferenceServer server(spec, weights, scfg);
  server.start();

  std::vector<std::vector<double>> latencies(args.sessions);
  std::vector<std::thread> clients;
  Stopwatch wall;
  for (size_t s = 0; s < args.sessions; ++s) {
    clients.emplace_back([&, s] {
      runtime::ClientConfig ccfg;
      ccfg.seed = Block{1000 + s, 2000 + s};  // per-session PRG seed
      runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
      Rng srng(31 * s + 7);
      for (size_t r = 0; r < args.requests; ++r) {
        std::vector<float> x(8);
        for (auto& v : x)
          v = (float(srng.next_below(2001)) - 1000.0f) / 2500.0f;
        Stopwatch sw;
        (void)client.infer(x);
        latencies[s].push_back(sw.seconds() * 1e3);
      }
      client.close();
    });
  }
  for (auto& t : clients) t.join();
  LoadResult r;
  r.wall_s = wall.seconds();
  server.stop();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  r.sessions = args.sessions;
  r.requests = args.requests;
  r.served = server.inferences_served();
  if (!all.empty()) {
    r.p50_ms = all[all.size() / 2];
    r.p95_ms = all[std::min(all.size() - 1, (all.size() * 95) / 100)];
  }
  if (r.served != uint64_t(args.sessions * args.requests))
    throw std::runtime_error("loadgen: server served fewer inferences than sent");
  return r;
}

void emit_json(std::FILE* f, const OverlapResult& o, const LoadResult& l) {
  std::fprintf(f, "{\n  \"bench\": \"loadgen_inference\",\n");
  std::fprintf(f,
               "  \"overlap\": {\"layers\": %zu, \"gates_per_layer\": %zu, "
               "\"garble_threads\": %zu, \"wall_s\": %.6f, \"garble_s\": %.6f, "
               "\"transfer_s\": %.6f, \"eval_s\": %.6f, \"phase_sum_s\": %.6f, "
               "\"setup_s\": %.6f, \"overlap_ratio\": %.4f},\n",
               o.layers, o.gates, o.threads, o.wall_s, o.garble_s,
               o.transfer_s, o.eval_s, o.phase_sum(), o.setup_s,
               o.phase_sum() > 0 ? o.wall_s / o.phase_sum() : 0.0);
  std::fprintf(f,
               "  \"load\": {\"sessions\": %zu, \"requests_per_session\": %zu, "
               "\"inferences\": %llu, \"wall_s\": %.6f, \"sessions_per_s\": "
               "%.3f, \"requests_per_s\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": "
               "%.3f}\n}\n",
               l.sessions, l.requests,
               static_cast<unsigned long long>(l.served), l.wall_s,
               l.sessions_per_s(), l.requests_per_s(), l.p50_ms, l.p95_ms);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    const OverlapResult overlap = measure_overlap(args);
    const LoadResult load = measure_load(args);
    emit_json(stdout, overlap, load);
    if (!args.out.empty()) {
      std::FILE* f = std::fopen(args.out.c_str(), "w");
      if (f == nullptr) throw std::runtime_error("cannot open " + args.out);
      emit_json(f, overlap, load);
      std::fclose(f);
    }
    if (overlap.wall_s >= overlap.phase_sum()) {
      std::fprintf(stderr,
                   "loadgen: WARNING: no measurable overlap (wall %.3fs >= "
                   "phase sum %.3fs)\n",
                   overlap.wall_s, overlap.phase_sum());
      if (args.strict_overlap) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen_inference: %s\n", e.what());
    return 2;
  }
}
