// Fault-injection harness + self-healing session layer, end to end:
// deterministic chaos plans (net/fault_channel.h), client reconnect
// with backoff and material poisoning (runtime/client.h), server load
// shedding (kBusy) and frame-parser hardening, and the io_uring
// partial-send resubmit path. Every server-facing test runs on both
// cores via the ServerCoreTest parameterization — resilience behavior,
// like the wire protocol, must be core-independent.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/deepsecure.h"
#include "net/fault_channel.h"
#include "net/tcp_channel.h"
#include "net/uring.h"
#include "nn/network.h"
#include "runtime/client.h"
#include "runtime/frame.h"
#include "runtime/server.h"
#include "support/rng.h"
#include "test_util.h"

namespace deepsecure {
namespace {

using test::pack_fixed;
using test::random_fixed;

synth::ModelSpec small_spec() {
  synth::ModelSpec spec;
  spec.name = "resilience_test_mlp";
  spec.input = synth::Shape3{1, 1, 5};
  spec.layers.push_back(synth::FcLayer{4, {}, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{3, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  return spec;
}

BitVec random_weights(const synth::ModelSpec& spec, Rng& rng) {
  std::vector<Fixed> w;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  return pack_fixed(w);
}

size_t plaintext_label(const synth::ModelSpec& spec, const BitVec& weights,
                       const BitVec& data) {
  const Circuit mono = synth::compile_model(spec);
  return from_bits(mono.eval(data, weights));
}

BitVec random_sample(Rng& rng) {
  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  return pack_fixed(x);
}

// ---------------------------------------------------------------------
// Fault-plan determinism: no sockets, no timing — the plan is a pure
// function of (seed, plan_index).
// ---------------------------------------------------------------------

// Inner channel that absorbs everything: any fault the decorator
// injects is observable purely through injected() and thrown resets.
class NullChannel final : public Channel {
 public:
  void send_bytes(const void*, size_t) override {}
  void recv_bytes(void* data, size_t n) override { std::memset(data, 0, n); }
  size_t recv_some(void* data, size_t, size_t max_n) override {
    std::memset(data, 0, max_n);
    return max_n;
  }
  uint64_t bytes_sent() const override { return 0; }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override {}
};

// Drives a fixed operation schedule through a FaultChannel and records,
// per op, the cumulative injected-fault count and whether the op threw
// (a reset). Two equal traces ⇒ byte-identical fault plans.
std::vector<std::pair<uint64_t, bool>> fault_trace(uint64_t seed, double rate,
                                                   uint64_t plan_index) {
  NullChannel inner;
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.rate = rate;
  FaultChannel ch(inner, cfg, plan_index);
  std::vector<std::pair<uint64_t, bool>> trace;
  uint8_t buf[96];
  std::memset(buf, 0x5a, sizeof(buf));
  for (size_t op = 0; op < 300; ++op) {
    bool threw = false;
    try {
      switch (op % 3) {
        case 0:
          ch.send_bytes(buf, sizeof(buf));
          break;
        case 1:
          ch.recv_bytes(buf, sizeof(buf));
          break;
        default:
          (void)ch.recv_some(buf, 1, sizeof(buf));
      }
    } catch (const std::exception&) {
      threw = true;  // injected reset; channel stays drivable
    }
    trace.emplace_back(ch.injected(), threw);
  }
  return trace;
}

TEST(FaultPlan, IdenticalSeedYieldsIdenticalFaultSchedule) {
  const auto a = fault_trace(0x1badb002, 0.2, 7);
  const auto b = fault_trace(0x1badb002, 0.2, 7);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.back().first, 0u) << "rate 0.2 over 300 ops must inject";
}

TEST(FaultPlan, SeedAndPlanIndexEachSelectDistinctSchedules) {
  const auto base = fault_trace(0x1badb002, 0.2, 7);
  EXPECT_NE(base, fault_trace(0x2badb002, 0.2, 7)) << "seed must matter";
  EXPECT_NE(base, fault_trace(0x1badb002, 0.2, 8))
      << "plan_index must derive an independent stream";
}

TEST(FaultPlan, RateZeroNeverInjects) {
  const auto t = fault_trace(0x1badb002, 0.0, 7);
  EXPECT_EQ(t.back().first, 0u);
  for (const auto& [injected, threw] : t) EXPECT_FALSE(threw);
}

// Split faults (short writes, vectored straddles) must preserve the
// byte stream exactly — chaos reorders operations, never payloads.
class CaptureChannel final : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    got.insert(got.end(), p, p + n);
  }
  void recv_bytes(void* data, size_t n) override { std::memset(data, 0, n); }
  uint64_t bytes_sent() const override { return got.size(); }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override {}
  std::vector<uint8_t> got;
};

TEST(FaultPlan, ShortWriteSplitsPreserveByteStream) {
  CaptureChannel inner;
  FaultConfig cfg;
  cfg.seed = 0xfeedface;
  cfg.rate = 0.6;  // dense faults: exercise the split paths hard
  FaultChannel ch(inner, cfg, 0);

  std::vector<uint8_t> expected;
  Rng rng(31337);
  for (size_t op = 0; op < 120; ++op) {
    // Three buffers sent as one vectored call on odd ops, a flat
    // send on even ops; straddle splits copy BufferRefs, so back the
    // slices with stable storage for the duration of the call.
    std::vector<uint8_t> a(17 + op % 64), b(5), c(41);
    for (auto* v : {&a, &b, &c})
      for (auto& byte : *v) byte = static_cast<uint8_t>(rng.next_u64());
    try {
      if (op % 2 == 0) {
        ch.send_bytes(a.data(), a.size());
        expected.insert(expected.end(), a.begin(), a.end());
      } else {
        IoSlice sl[3] = {{a.data(), a.size(), {}},
                         {b.data(), b.size(), {}},
                         {c.data(), c.size(), {}}};
        ch.send_iov(sl, 3);
        for (auto* v : {&a, &b, &c})
          expected.insert(expected.end(), v->begin(), v->end());
      }
    } catch (const std::exception&) {
      // Injected reset: thrown BEFORE any inner write, so the capture
      // must not contain a torn prefix of this op's payload.
    }
  }
  EXPECT_EQ(inner.got, expected);
}

// ---------------------------------------------------------------------
// Server-facing resilience, on both cores.
// ---------------------------------------------------------------------

class ServerCoreTest : public ::testing::TestWithParam<runtime::ServerCore> {
 protected:
  runtime::ServerConfig base_cfg() const {
    runtime::ServerConfig cfg;
    cfg.core = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Cores, ServerCoreTest,
    ::testing::Values(runtime::ServerCore::kThreadPerSession,
                      runtime::ServerCore::kEventLoop),
    [](const ::testing::TestParamInfo<runtime::ServerCore>& info) {
      return info.param == runtime::ServerCore::kThreadPerSession
                 ? "ThreadPerSession"
                 : "EventLoop";
    });

// Chaos soak in miniature: both endpoints wrapped in seeded fault
// channels, a generous retry budget, and every answer checked against
// the plaintext reference. Whatever the dice injected, completion must
// be 100% byte-correct and the prefetch budget must settle to zero.
TEST_P(ServerCoreTest, ChaosRunCompletesByteCorrectWithZeroBudgetLeak) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(61);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg = base_cfg();
  cfg.chaos.seed = 0xc4a05eed;
  cfg.chaos.rate = 0.01;
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  const uint64_t injected_before = faultstat::injected().value();

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{4242, 99};
  ccfg.stream.garble_threads = 2;
  ccfg.pool_target = 2;
  ccfg.chaos.seed = 0xc4a05eed ^ 0xc11e47ull;
  ccfg.chaos.rate = 0.01;
  ccfg.max_retries = 30;
  ccfg.backoff_base_ms = 1;
  ccfg.backoff_cap_ms = 30;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);

  for (size_t r = 0; r < 6; ++r) {
    const BitVec data = random_sample(rng);
    EXPECT_EQ(from_bits(client.infer_bits(data)),
              plaintext_label(spec, weights, data))
        << "request " << r << " after " << client.retries() << " retries";
  }
  const uint64_t retries = client.retries();
  const uint64_t recovered = client.sessions_recovered();
  const uint64_t poisoned = client.poisoned();
  try {
    client.close();
  } catch (const std::exception&) {
    // a chaos fault on the goodbye path is fine — work already checked
  }
  server.stop();

  EXPECT_GT(faultstat::injected().value(), injected_before)
      << "rate 0.01 across a full chaos run must inject at least once";
  // Recovery bookkeeping is internally consistent whatever fired.
  EXPECT_GE(retries, recovered);
  if (recovered == 0) {
    EXPECT_EQ(poisoned, 0u);
  }
  // The tentpole invariant: however many sessions died mid-push, every
  // prefetch reservation was settled exactly once.
  EXPECT_EQ(server.prefetch_bytes(), 0u);

  const std::string js = server.stats_json();
  for (const char* key : {"\"resilience\"", "\"fault.injected\"",
                          "\"client.retries\"", "\"pool.poisoned\""})
    EXPECT_NE(js.find(key), std::string::npos) << key << " missing:\n" << js;
}

// Saturated server + shed_on_overload: the second client is told kBusy
// with a retry hint instead of waiting in the backlog, backs off, and
// completes once the slot frees.
TEST_P(ServerCoreTest, ShedsWithBusyAndClientBacksOffUntilSlotFrees) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(67);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg = base_cfg();
  cfg.max_sessions = 1;
  cfg.shed_on_overload = true;
  cfg.busy_retry_after_ms = 5;
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  runtime::ClientConfig holder_cfg;
  holder_cfg.seed = Block{7001, 1};
  runtime::InferenceClient holder("127.0.0.1", server.port(), spec,
                                  holder_cfg);  // occupies the only slot

  const BitVec data = random_sample(rng);
  const size_t want = plaintext_label(spec, weights, data);

  std::atomic<uint64_t> shed_retries{0};
  std::atomic<size_t> got{~size_t{0}};
  std::string error;
  std::thread second([&] {
    try {
      runtime::ClientConfig c2;
      c2.seed = Block{7002, 2};
      c2.max_retries = 400;  // outlasts the holder under sanitizers
      c2.backoff_base_ms = 1;
      c2.backoff_cap_ms = 10;
      runtime::InferenceClient client("127.0.0.1", server.port(), spec, c2);
      shed_retries = client.retries();
      got = from_bits(client.infer_bits(data));
      client.close();
    } catch (const std::exception& e) {
      error = e.what();
    }
  });

  // Vacate the slot only once the server has demonstrably shed the
  // second client at least once (a fixed sleep would race sanitizer
  // slowdowns: the second client might not even connect before the
  // holder leaves).
  const auto shed_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.sessions_shed() == 0 &&
         std::chrono::steady_clock::now() < shed_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  holder.close();
  second.join();

  EXPECT_EQ(error, "");
  EXPECT_EQ(got.load(), want);
  EXPECT_GE(server.sessions_shed(), 1u)
      << "the saturated admission must have shed at least one attempt";
  EXPECT_GE(shed_retries.load(), 1u)
      << "the client must have consumed kBusy via its backoff loop";
  server.stop();
  EXPECT_EQ(server.prefetch_bytes(), 0u);
}

// Sends raw bytes at the primary port and expects the server to refuse
// the conversation: either a coded kError frame (surfaced by
// recv_frame as "peer error") or a straight close. Never a hang, and
// never a valid reply frame.
void poke_raw(uint16_t port, const std::vector<uint8_t>& bytes,
              bool read_reply) {
  TcpChannel ch = TcpChannel::connect("127.0.0.1", port);
  ch.set_recv_timeout_ms(3000);
  try {
    ch.send_bytes(bytes.data(), bytes.size());
  } catch (const std::exception&) {
    // server may already have reset us mid-send; that is a rejection
  }
  if (read_reply) {
    try {
      const runtime::Frame f = runtime::recv_frame(ch);
      ADD_FAILURE() << "server answered garbage with a valid frame of type "
                    << static_cast<int>(f.type);
    } catch (const std::exception&) {
      // kError (thrown as "peer error"), reset, or close — all fine
    }
  }
}

std::vector<uint8_t> frame_header(uint8_t type, uint32_t len) {
  std::vector<uint8_t> b(5);
  b[0] = type;
  std::memcpy(b.data() + 1, &len, 4);
  return b;
}

// Frame-parser hardening: truncated headers, oversized lengths,
// unknown types, mid-payload EOF and raw garbage must each unwind one
// connection without wedging the server or leaking prefetch budget.
TEST_P(ServerCoreTest, FrameParserSurvivesGarbageTruncationAndOversize) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(71);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg = base_cfg();
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  // Unknown frame type, well-formed length.
  {
    auto b = frame_header(0xEE, 4);
    b.insert(b.end(), {1, 2, 3, 4});
    poke_raw(server.port(), b, /*read_reply=*/true);
  }
  // Oversized length field (beyond the control-frame cap).
  poke_raw(server.port(), frame_header(1 /*kHello*/, 0x7fffffff),
           /*read_reply=*/true);
  // Truncated header: one lonely type byte, then close.
  poke_raw(server.port(), {1}, /*read_reply=*/false);
  // Mid-payload EOF: hello header promising 21 bytes, delivering 3.
  {
    auto b = frame_header(1 /*kHello*/, 21);
    b.insert(b.end(), {9, 9, 9});
    poke_raw(server.port(), b, /*read_reply=*/false);
  }
  // Unstructured garbage.
  poke_raw(server.port(), std::vector<uint8_t>(64, 0xA5),
           /*read_reply=*/true);

  // The server must still be fully serviceable afterwards.
  const BitVec data = random_sample(rng);
  runtime::ClientConfig ccfg;
  ccfg.seed = Block{8088, 3};
  ccfg.stream.garble_threads = 2;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  EXPECT_EQ(from_bits(client.infer_bits(data)),
            plaintext_label(spec, weights, data));
  client.close();
  server.stop();

  EXPECT_EQ(server.prefetch_bytes(), 0u)
      << "malformed sessions must not strand budget reservations";
  EXPECT_EQ(server.inferences_served(), 1u);
}

// Kill the server mid-session with warm material parked client-side,
// restart it on the same port, and let the client self-heal: reconnect
// with backoff, poison every one-shot artifact tied to the dead
// session, and answer byte-correct with fresh material.
TEST_P(ServerCoreTest, ClientRecoversAcrossServerRestartWithFreshMaterial) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(73);
  const BitVec weights = random_weights(spec, rng);

  auto server1 = std::make_unique<runtime::InferenceServer>(
      spec, weights, base_cfg());
  server1->start();
  const uint16_t port = server1->port();

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{9099, 4};
  ccfg.stream.garble_threads = 2;
  ccfg.pool_target = 2;
  ccfg.max_retries = 40;
  ccfg.backoff_base_ms = 1;
  ccfg.backoff_cap_ms = 50;
  runtime::InferenceClient client("127.0.0.1", port, spec, ccfg);

  const BitVec d1 = random_sample(rng);
  EXPECT_EQ(from_bits(client.infer_bits(d1)),
            plaintext_label(spec, weights, d1));

  // Park at least one warm artifact on the doomed session so recovery
  // has something to poison (one-shot invariant: never replayed).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (client.prefetched() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    client.top_up();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(client.prefetched(), 1u) << "pool never produced an artifact";

  server1->stop();
  server1.reset();

  // Rebind the same port (SO_REUSEADDR); give the kernel a beat if the
  // old listener is still draining.
  std::unique_ptr<runtime::InferenceServer> server2;
  runtime::ServerConfig cfg2 = base_cfg();
  cfg2.port = port;
  for (int attempt = 0; server2 == nullptr; ++attempt) {
    try {
      server2 = std::make_unique<runtime::InferenceServer>(spec, weights,
                                                           cfg2);
    } catch (const std::exception&) {
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  server2->start();

  const BitVec d2 = random_sample(rng);
  EXPECT_EQ(from_bits(client.infer_bits(d2)),
            plaintext_label(spec, weights, d2));

  EXPECT_GE(client.sessions_recovered(), 1u);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(client.poisoned(), 1u)
      << "warm artifacts bound to the dead session must be poisoned";

  client.close();
  server2->stop();
  EXPECT_EQ(server2->prefetch_bytes(), 0u);
  EXPECT_GE(server2->inferences_served(), 1u);
}

// ---------------------------------------------------------------------
// io_uring partial-send regression: a tiny SO_SNDBUF against a slow
// reader forces short SENDMSG completions, so the linked-chain resubmit
// path (net/uring.cpp) must splice remainders gap-free.
// ---------------------------------------------------------------------

TEST(UringPartialSend, ResubmitDeliversExactByteStreamThroughTinySndbuf) {
  if (!net::uring_supported()) GTEST_SKIP() << "io_uring unavailable here";

  TcpListener listener(0);
  std::optional<TcpChannel> reader_side;
  std::thread acceptor([&] { reader_side.emplace(listener.accept()); });
  TcpChannel sender = TcpChannel::connect("127.0.0.1", listener.port());
  acceptor.join();
  ASSERT_TRUE(reader_side.has_value());

  int sndbuf = 4096;  // kernel doubles this; still far below the payload
  ASSERT_EQ(setsockopt(sender.fd(), SOL_SOCKET, SO_SNDBUF, &sndbuf,
                       sizeof(sndbuf)),
            0);
  sender.set_nonblocking(true);
  if (!sender.enable_io_uring()) GTEST_SKIP() << "kernel refused io_uring";

  // ~1 MiB in deliberately ragged slice sizes so short completions land
  // mid-slice, mid-chain, and on slice boundaries.
  std::vector<std::vector<uint8_t>> bufs;
  std::vector<uint8_t> expected;
  Rng rng(90210);
  size_t total = 0;
  while (total < (1u << 20)) {
    std::vector<uint8_t> b(1 + rng.next_u64() % 65536);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.next_u64());
    total += b.size();
    expected.insert(expected.end(), b.begin(), b.end());
    bufs.push_back(std::move(b));
  }

  std::vector<uint8_t> received(total);
  std::thread reader([&] {
    size_t off = 0;
    while (off < total) {
      const size_t n = std::min<size_t>(8192, total - off);
      reader_side->recv_bytes(received.data() + off, n);
      off += n;
      // Stay slower than the sender so the socket buffer backs up.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (size_t i = 0; i < bufs.size();) {
    std::vector<IoSlice> batch;
    for (size_t k = 0; k < 24 && i < bufs.size(); ++k, ++i)
      batch.push_back(IoSlice{bufs[i].data(), bufs[i].size(), {}});
    sender.send_iov(batch.data(), batch.size());
  }
  reader.join();

  EXPECT_EQ(received, expected)
      << "short SENDMSG completions must resume at the exact byte offset";
  EXPECT_EQ(sender.bytes_sent(), total);
}

}  // namespace
}  // namespace deepsecure
