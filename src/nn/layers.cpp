#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace deepsecure::nn {
namespace {

float he_init(Rng& rng, size_t fan_in) {
  return static_cast<float>(
      rng.next_gaussian(0.0, std::sqrt(2.0 / static_cast<double>(fan_in))));
}

// Per-layer gradient-norm clipping: per-sample SGD on wide inputs
// produces occasional huge gradients that destabilize training.
constexpr float kGradClip = 4.0f;
void clip_gradients(VecF& dw, VecF& db) {
  double n2 = 0.0;
  for (float v : dw) n2 += static_cast<double>(v) * v;
  for (float v : db) n2 += static_cast<double>(v) * v;
  const double n = std::sqrt(n2);
  if (n <= kGradClip) return;
  const float scale = static_cast<float>(kGradClip / n);
  for (auto& v : dw) v *= scale;
  for (auto& v : db) v *= scale;
}

}  // namespace

// ---------------------------------------------------------------- Dense

DenseLayer::DenseLayer(size_t in, size_t out, Rng& rng)
    : in_(in), out_(out), w_(in * out), b_(out, 0.0f), dw_(in * out, 0.0f),
      db_(out, 0.0f), vw_(in * out, 0.0f), vb_(out, 0.0f) {
  for (auto& v : w_) v = he_init(rng, in);
}

VecF DenseLayer::forward(const VecF& x) {
  if (x.size() != in_) throw std::invalid_argument("dense: input size");
  x_ = x;
  VecF y(out_);
  for (size_t o = 0; o < out_; ++o) {
    float acc = b_[o];
    const float* row = w_.data() + o * in_;
    for (size_t i = 0; i < in_; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
  return y;
}

VecF DenseLayer::backward(const VecF& dy) {
  VecF dx(in_, 0.0f);
  for (size_t o = 0; o < out_; ++o) {
    const float g = dy[o];
    db_[o] += g;
    const float* row = w_.data() + o * in_;
    float* drow = dw_.data() + o * in_;
    for (size_t i = 0; i < in_; ++i) {
      drow[i] += g * x_[i];
      dx[i] += g * row[i];
    }
  }
  return dx;
}

void DenseLayer::step(float lr, float momentum) {
  clip_gradients(dw_, db_);
  for (size_t i = 0; i < w_.size(); ++i) {
    vw_[i] = momentum * vw_[i] - lr * dw_[i];
    w_[i] += vw_[i];
    dw_[i] = 0.0f;
  }
  for (size_t i = 0; i < b_.size(); ++i) {
    vb_[i] = momentum * vb_[i] - lr * db_[i];
    b_[i] += vb_[i];
    db_[i] = 0.0f;
  }
  apply_mask();
}

void DenseLayer::apply_mask() {
  if (mask.empty()) return;
  if (mask.size() != w_.size())
    throw std::invalid_argument("dense: mask size mismatch");
  for (size_t i = 0; i < w_.size(); ++i)
    if (!mask[i]) w_[i] = 0.0f;
}

// ---------------------------------------------------------------- Conv2D

Conv2DLayer::Conv2DLayer(Shape in, size_t k, size_t stride, size_t out_ch,
                         Rng& rng)
    : in_(in), k_(k), stride_(stride) {
  if (in.h < k || in.w < k)
    throw std::invalid_argument("conv: kernel larger than input");
  out_shape_ = Shape{(in.h - k) / stride + 1, (in.w - k) / stride + 1, out_ch};
  const size_t nw = out_ch * in.c * k * k;
  w_.resize(nw);
  b_.assign(out_ch, 0.0f);
  dw_.assign(nw, 0.0f);
  db_.assign(out_ch, 0.0f);
  vw_.assign(nw, 0.0f);
  vb_.assign(out_ch, 0.0f);
  for (auto& v : w_) v = he_init(rng, in.c * k * k);
}

VecF Conv2DLayer::forward(const VecF& x) {
  if (x.size() != in_.flat()) throw std::invalid_argument("conv: input size");
  x_ = x;
  const Shape& os = out_shape_;
  VecF y(os.flat(), 0.0f);
  for (size_t oc = 0; oc < os.c; ++oc)
    for (size_t oy = 0; oy < os.h; ++oy)
      for (size_t ox = 0; ox < os.w; ++ox) {
        float acc = b_[oc];
        for (size_t ic = 0; ic < in_.c; ++ic)
          for (size_t ky = 0; ky < k_; ++ky)
            for (size_t kx = 0; kx < k_; ++kx) {
              const size_t iy = oy * stride_ + ky;
              const size_t ix = ox * stride_ + kx;
              acc += x[(ic * in_.h + iy) * in_.w + ix] *
                     w_[((oc * in_.c + ic) * k_ + ky) * k_ + kx];
            }
        y[(oc * os.h + oy) * os.w + ox] = acc;
      }
  return y;
}

VecF Conv2DLayer::backward(const VecF& dy) {
  const Shape& os = out_shape_;
  VecF dx(in_.flat(), 0.0f);
  for (size_t oc = 0; oc < os.c; ++oc)
    for (size_t oy = 0; oy < os.h; ++oy)
      for (size_t ox = 0; ox < os.w; ++ox) {
        const float g = dy[(oc * os.h + oy) * os.w + ox];
        db_[oc] += g;
        for (size_t ic = 0; ic < in_.c; ++ic)
          for (size_t ky = 0; ky < k_; ++ky)
            for (size_t kx = 0; kx < k_; ++kx) {
              const size_t iy = oy * stride_ + ky;
              const size_t ix = ox * stride_ + kx;
              const size_t wi = ((oc * in_.c + ic) * k_ + ky) * k_ + kx;
              dw_[wi] += g * x_[(ic * in_.h + iy) * in_.w + ix];
              dx[(ic * in_.h + iy) * in_.w + ix] += g * w_[wi];
            }
      }
  return dx;
}

void Conv2DLayer::step(float lr, float momentum) {
  clip_gradients(dw_, db_);
  for (size_t i = 0; i < w_.size(); ++i) {
    vw_[i] = momentum * vw_[i] - lr * dw_[i];
    w_[i] += vw_[i];
    dw_[i] = 0.0f;
  }
  for (size_t i = 0; i < b_.size(); ++i) {
    vb_[i] = momentum * vb_[i] - lr * db_[i];
    b_[i] += vb_[i];
    db_[i] = 0.0f;
  }
}

// ---------------------------------------------------------------- Pool

PoolLayer::PoolLayer(Shape in, Pool kind, size_t k, size_t stride)
    : in_(in), kind_(kind), k_(k), stride_(stride) {
  if (in.h < k || in.w < k)
    throw std::invalid_argument("pool: window larger than input");
  out_shape_ = Shape{(in.h - k) / stride + 1, (in.w - k) / stride + 1, in.c};
}

VecF PoolLayer::forward(const VecF& x) {
  in_size_ = x.size();
  const Shape& os = out_shape_;
  VecF y(os.flat(), 0.0f);
  argmax_.assign(os.flat(), 0);
  for (size_t c = 0; c < in_.c; ++c)
    for (size_t oy = 0; oy < os.h; ++oy)
      for (size_t ox = 0; ox < os.w; ++ox) {
        const size_t oi = (c * os.h + oy) * os.w + ox;
        if (kind_ == Pool::kMax) {
          float best = -1e30f;
          size_t best_i = 0;
          for (size_t ky = 0; ky < k_; ++ky)
            for (size_t kx = 0; kx < k_; ++kx) {
              const size_t ii = (c * in_.h + oy * stride_ + ky) * in_.w +
                                ox * stride_ + kx;
              if (x[ii] > best) {
                best = x[ii];
                best_i = ii;
              }
            }
          y[oi] = best;
          argmax_[oi] = best_i;
        } else {
          float sum = 0.0f;
          for (size_t ky = 0; ky < k_; ++ky)
            for (size_t kx = 0; kx < k_; ++kx)
              sum += x[(c * in_.h + oy * stride_ + ky) * in_.w +
                       ox * stride_ + kx];
          y[oi] = sum / static_cast<float>(k_ * k_);
        }
      }
  return y;
}

VecF PoolLayer::backward(const VecF& dy) {
  const Shape& os = out_shape_;
  VecF dx(in_size_, 0.0f);
  for (size_t oi = 0; oi < os.flat(); ++oi) {
    if (kind_ == Pool::kMax) {
      dx[argmax_[oi]] += dy[oi];
    } else {
      const size_t c = oi / (os.h * os.w);
      const size_t oy = (oi / os.w) % os.h;
      const size_t ox = oi % os.w;
      const float g = dy[oi] / static_cast<float>(k_ * k_);
      for (size_t ky = 0; ky < k_; ++ky)
        for (size_t kx = 0; kx < k_; ++kx)
          dx[(c * in_.h + oy * stride_ + ky) * in_.w + ox * stride_ + kx] += g;
    }
  }
  return dx;
}

// ---------------------------------------------------------------- Act

VecF ActivationLayer::forward(const VecF& x) {
  x_ = x;
  y_.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    switch (kind_) {
      case Act::kReLU: y_[i] = x[i] > 0 ? x[i] : 0.0f; break;
      case Act::kTanh: y_[i] = std::tanh(x[i]); break;
      case Act::kSigmoid: y_[i] = 1.0f / (1.0f + std::exp(-x[i])); break;
      case Act::kSquare: y_[i] = x[i] * x[i]; break;
      case Act::kIdentity: y_[i] = x[i]; break;
    }
  }
  return y_;
}

VecF ActivationLayer::backward(const VecF& dy) {
  VecF dx(dy.size());
  for (size_t i = 0; i < dy.size(); ++i) {
    float d = 1.0f;
    switch (kind_) {
      case Act::kReLU: d = x_[i] > 0 ? 1.0f : 0.0f; break;
      case Act::kTanh: d = 1.0f - y_[i] * y_[i]; break;
      case Act::kSigmoid: d = y_[i] * (1.0f - y_[i]); break;
      case Act::kSquare: d = 2.0f * x_[i]; break;
      case Act::kIdentity: d = 1.0f; break;
    }
    dx[i] = dy[i] * d;
  }
  return dx;
}

}  // namespace deepsecure::nn
