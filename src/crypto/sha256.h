// SHA-256 — used as the key-derivation hash in the OT protocols.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>

#include "crypto/block.h"

namespace deepsecure {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  void update(const void* data, size_t len);
  Sha256Digest finish();

 private:
  void process_block(const uint8_t block[64]);

  uint32_t h_[8];
  uint8_t buf_[64];
  size_t buf_len_ = 0;
  uint64_t total_len_ = 0;
};

Sha256Digest sha256(const void* data, size_t len);
Sha256Digest sha256(const std::string& s);

/// KDF convenience: hash (domain tag, index, point bytes) into a Block.
Block kdf_block(const char* tag, uint64_t index, const uint8_t* data,
                size_t len);

}  // namespace deepsecure
