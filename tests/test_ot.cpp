#include <gtest/gtest.h>

#include "gc/ot.h"
#include "net/party.h"
#include "support/rng.h"

namespace deepsecure {
namespace {

TEST(BaseOt, TransfersChosenMessage) {
  Rng rng(1);
  const size_t n = 8;
  std::vector<std::pair<Block, Block>> msgs(n);
  BitVec choices(n);
  for (size_t i = 0; i < n; ++i) {
    msgs[i] = {Block{rng.next_u64(), rng.next_u64()},
               Block{rng.next_u64(), rng.next_u64()}};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{11, 0});
        base_ot_send(ch, msgs, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{22, 0});
        received = base_ot_recv(ch, choices, prg);
      });

  ASSERT_EQ(received.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const Block want = choices[i] ? msgs[i].second : msgs[i].first;
    EXPECT_EQ(received[i], want) << "i=" << i;
    // And the unchosen message must differ (sanity that we didn't get both).
    const Block other = choices[i] ? msgs[i].first : msgs[i].second;
    EXPECT_NE(received[i], other);
  }
}

TEST(OtExtension, LargeBatch) {
  Rng rng(2);
  const size_t m = 1000;
  std::vector<std::pair<Block, Block>> msgs(m);
  BitVec choices(m);
  for (size_t i = 0; i < m; ++i) {
    msgs[i] = {Block{rng.next_u64(), i}, Block{rng.next_u64(), ~i}};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{33, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        sender.send(msgs);
      },
      [&](Channel& ch) {
        Prg prg(Block{44, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        received = receiver.recv(choices);
      });

  ASSERT_EQ(received.size(), m);
  for (size_t i = 0; i < m; ++i)
    EXPECT_EQ(received[i], choices[i] ? msgs[i].second : msgs[i].first);
}

TEST(OtExtension, MultipleBatchesReuseSetup) {
  Rng rng(3);
  std::vector<std::vector<std::pair<Block, Block>>> batches;
  std::vector<BitVec> choices;
  for (size_t b = 0; b < 3; ++b) {
    const size_t m = 50 + 37 * b;
    batches.emplace_back(m);
    choices.emplace_back(m);
    for (size_t i = 0; i < m; ++i) {
      batches[b][i] = {Block{rng.next_u64(), 0}, Block{rng.next_u64(), 1}};
      choices[b][i] = rng.next_bool();
    }
  }

  std::vector<std::vector<Block>> received(3);
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{55, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        for (const auto& batch : batches) sender.send(batch);
      },
      [&](Channel& ch) {
        Prg prg(Block{66, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        for (const auto& ch_bits : choices)
          received[&ch_bits - choices.data()] = receiver.recv(ch_bits);
      });

  for (size_t b = 0; b < 3; ++b)
    for (size_t i = 0; i < choices[b].size(); ++i)
      EXPECT_EQ(received[b][i],
                choices[b][i] ? batches[b][i].second : batches[b][i].first);
}

TEST(OtExtension, CorrelatedVariantDeliversLabels) {
  Rng rng(4);
  const size_t m = 200;
  Block delta{rng.next_u64(), rng.next_u64()};
  delta.lo |= 1;
  std::vector<Block> zeros(m);
  BitVec choices(m);
  for (size_t i = 0; i < m; ++i) {
    zeros[i] = Block{rng.next_u64(), rng.next_u64()};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{77, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        sender.send_correlated(zeros, delta);
      },
      [&](Channel& ch) {
        Prg prg(Block{88, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        received = receiver.recv(choices);
      });

  for (size_t i = 0; i < m; ++i)
    EXPECT_EQ(received[i], choices[i] ? (zeros[i] ^ delta) : zeros[i]);
}

TEST(OtExtension, UnreadySendThrows) {
  auto pair = make_channel_pair();
  OtExtSender sender(*pair.a);
  EXPECT_THROW(sender.send({{kZeroBlock, kZeroBlock}}), std::logic_error);
  OtExtReceiver receiver(*pair.b);
  EXPECT_THROW(receiver.recv({1}), std::logic_error);
}

}  // namespace
}  // namespace deepsecure
