#include "runtime/client.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "crypto/prg.h"
#include "runtime/frame.h"
#include "support/bits.h"

namespace deepsecure::runtime {

InferenceClient::InferenceClient(const std::string& host, uint16_t port,
                                 const synth::ModelSpec& spec,
                                 ClientConfig cfg)
    : chain_(synth::compile_model_layers(spec)),
      fmt_(spec.fmt),
      cfg_(cfg),
      transport_(TcpChannel::connect(host, port)) {
  const Block seed = cfg.seed == Block{}
                         ? Prg::from_os_entropy().next_block()
                         : cfg.seed;
  garbler_ = std::make_unique<StreamingGarbler>(transport_, seed, cfg.stream);

  Hello hello;
  // Fingerprint over the gate order this session will walk (the
  // scheduled netlist by default) — the server computes the same and a
  // compile or scheduling divergence fails the handshake, not an OT.
  hello.fingerprint = chain_fingerprint(chain_, cfg.stream.schedule);
  hello.flags = SessionFlags{cfg.stream.framed_tables, cfg.stream.schedule};
  Channel& ch = garbler_->channel();
  send_hello(ch, hello);
  garbler_->channel().flush();
  const Frame ack = recv_frame(ch);  // kError from the server throws here
  if (ack.type != FrameType::kHelloAck || ack.payload.size() != 16)
    throw std::runtime_error("client: bad handshake ack");
  uint64_t echoed = 0;
  std::memcpy(&echoed, ack.payload.data(), 8);
  if (echoed != hello.fingerprint)
    throw std::runtime_error("client: server echoed a different model chain");
  std::memcpy(&server_prefetch_quota_, ack.payload.data() + 8, 8);
  open_ = true;

  if (cfg_.pool_target > 0) {
    // Pool seeds derive from the session seed but never collide with
    // the on-demand garbler's label PRG (distinct derivation tweak).
    pool_ = std::make_unique<MaterialPool>(
        chain_, cfg.stream.gc_options(nullptr), cfg_.pool_target,
        cfg_.pool_producers,
        cfg.seed == Block{} ? Block{} : (cfg.seed ^ Block{0, 0x9e3779b9}));
  }
}

InferenceClient::~InferenceClient() {
  try {
    close();
  } catch (...) {
    // Destructor during unwind: the transport may already be dead.
  }
}

size_t InferenceClient::input_bits() const {
  return chain_.empty() ? 0 : chain_.front().garbler_inputs.size();
}

size_t InferenceClient::infer(const std::vector<float>& sample) {
  BitVec bits;
  bits.reserve(sample.size() * fmt_.total_bits);
  for (float v : sample) {
    const BitVec b = Fixed::from_double(static_cast<double>(v), fmt_).to_bits();
    bits.insert(bits.end(), b.begin(), b.end());
  }
  return from_bits(infer_bits(bits));
}

// Offline push of one artifact: id frame, decode bits + tables, then
// the precomputed-OT + derandomization exchange that resolves the
// server's evaluator labels. Everything here is input-independent.
//
// The client-side quota guard (prefetch/top_up) must mirror the
// server's exactly: once the kPrefetch frame is sent this side commits
// to the OT exchange, so a server-side rejection lands its kError
// bytes mid-extension where they cannot be parsed — the session is
// unrecoverable and the reason is lost.
void InferenceClient::push_material(GarbledMaterial&& mat) {
  if (in_flight_ > 0)
    throw std::logic_error(
        "client: cannot prefetch with inferences in flight");
  Channel& ch = garbler_->channel();
  const uint64_t id = next_material_id_++;
  send_id_frame(ch, FrameType::kPrefetch, id);
  send_material(ch, mat);
  GarblerSession& session = garbler_->session();
  const OtPrecompSender pre = session.precompute_ot(mat.ot_count());
  session.send_labels_derandomized(pre, mat.eval_zeros, mat.delta);
  garbler_->channel().flush();
  const Frame ack = recv_frame(ch);
  if (ack.type != FrameType::kPrefetchAck || parse_id(ack) != id)
    throw std::runtime_error("client: bad prefetch ack");
  prefetched_.push_back(
      PrefetchedMaterial{id, mat.delta, std::move(mat.data_zeros)});
}

size_t InferenceClient::prefetch(size_t n) {
  if (!open_) throw std::logic_error("client: session closed");
  if (pool_ == nullptr)
    throw std::logic_error("client: pooling disabled (pool_target = 0)");
  // Check before touching the pool: acquire() may block for a whole
  // garbling whose artifact push_material would then refuse and drop.
  if (in_flight_ > 0)
    throw std::logic_error(
        "client: cannot prefetch with inferences in flight");
  // Clamp to the quota the hello ack advertised: exceeding it on the
  // wire would be answered with a session-killing kError, and "push up
  // to n" is the contract — the return value reports what's warm.
  for (size_t i = 0;
       i < n && prefetched_.size() < server_prefetch_quota_; ++i)
    push_material(pool_->acquire());
  return prefetched_.size();
}

void InferenceClient::top_up() {
  if (pool_ == nullptr || !open_ || in_flight_ > 0 || closing_) return;
  while (prefetched_.size() <
         std::min<uint64_t>(cfg_.pool_target, server_prefetch_quota_)) {
    auto mat = pool_->try_acquire();
    if (!mat) break;  // producer still garbling: don't block the caller
    push_material(std::move(*mat));
  }
}

void InferenceClient::begin_infer_bits(const BitVec& data_bits) {
  if (!open_) throw std::logic_error("client: session closed");
  if (prefetched_.empty())
    throw std::logic_error("client: no prefetched material to pipeline on");
  // Validate before consuming anything: after the id frame is on the
  // wire the artifact is burned and the server is committed to reading
  // labels, so a size error must fire while the call is still a no-op.
  if (data_bits.size() != prefetched_.front().data_zeros.size())
    throw std::invalid_argument("client: data bit count mismatch");
  PrefetchedMaterial mat = std::move(prefetched_.front());
  prefetched_.pop_front();
  Channel& ch = garbler_->channel();
  send_id_frame(ch, FrameType::kInfer, mat.id);
  garbler_->session().begin_online(mat.delta, mat.data_zeros, data_bits);
  garbler_->channel().flush();
  ++in_flight_;
}

BitVec InferenceClient::finish_infer() {
  if (in_flight_ == 0)
    throw std::logic_error("client: no inference in flight");
  BitVec out = garbler_->session().finish_online();
  --in_flight_;
  ++pooled_inferences_;
  if (in_flight_ == 0 && cfg_.auto_top_up) top_up();
  return out;
}

BitVec InferenceClient::infer_bits(const BitVec& data_bits) {
  if (!open_) throw std::logic_error("client: session closed");
  if (in_flight_ > 0)
    throw std::logic_error(
        "client: finish in-flight inferences before a synchronous infer");
  if (!prefetched_.empty()) {
    // Online phase only: active data labels out, result bits back.
    begin_infer_bits(data_bits);
    return finish_infer();
  }
  // Pool drained (or pooling off): garble on the request path.
  Channel& ch = garbler_->channel();
  send_frame(ch, FrameType::kInfer);
  const BitVec out = garbler_->run_chain(chain_, data_bits);
  ++ondemand_inferences_;
  if (cfg_.auto_top_up) top_up();
  return out;
}

void InferenceClient::close() {
  if (!open_) return;
  closing_ = true;  // don't upload fresh artifacts just to discard them
  while (in_flight_ > 0) (void)finish_infer();
  open_ = false;
  Channel& ch = garbler_->channel();
  send_frame(ch, FrameType::kBye);
  garbler_->channel().flush();
}

}  // namespace deepsecure::runtime
