// Table 3 reproduction: XOR / non-XOR gate counts and approximation
// error for every GC-optimized circuit component, printed next to the
// paper's published numbers.
//
// Error convention follows the paper: the representational error of b
// fractional bits (<= 2^-13 at Q(16,12)) is present everywhere; the
// table's "Error" column reports the *approximation* error of each
// variant on top of that, measured here as the mean |circuit - ideal|
// over a dense input sweep (max error is also shown).
#include <cmath>
#include <cstdio>

#include "support/table.h"
#include "synth/activation.h"
#include "synth/divider.h"
#include "synth/matvec.h"
#include "synth/mult.h"
#include "synth/softmax.h"

using namespace deepsecure;
using namespace deepsecure::synth;

namespace {

constexpr FixedFormat kFmt = kDefaultFormat;

struct ErrorStats {
  double mean = 0.0;
  double max = 0.0;
};

ErrorStats activation_error(const Circuit& c, ActKind kind) {
  ErrorStats e;
  size_t n = 0;
  for (double x = -7.95; x <= 7.95; x += 0.0103) {
    const BitVec out = c.eval(Fixed::from_double(x, kFmt).to_bits(), {});
    const double got = Fixed::from_bits(out, kFmt).to_double();
    const double want = activation_ideal(x, kind);
    const double err = std::abs(got - want);
    e.mean += err;
    e.max = std::max(e.max, err);
    ++n;
  }
  e.mean /= static_cast<double>(n);
  return e;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f%%", 100.0 * v);
  return buf;
}

}  // namespace

int main() {
  std::printf("Table 3: GC-optimized circuit components (Q(16,12))\n");
  std::printf("Paper columns are from DAC'18 Table 3; our counts come from\n");
  std::printf("the netlist generator + constant-folding/CSE synthesis.\n\n");

  TablePrinter t({"Name", "#XOR", "#non-XOR", "mean err", "max err",
                  "paper XOR", "paper nXOR", "paper err"});

  struct PaperRow {
    ActKind kind;
    const char* paper_name;
    uint64_t pxor, pnon;
    const char* perr;
  };
  const PaperRow acts[] = {
      {ActKind::kTanhLUT, "TanhLUT", 692, 149745, "0"},
      {ActKind::kTanhSeg, "Tanh2.10.12*", 3040, 1746, "0.01%"},
      {ActKind::kTanhPL, "TanhPL", 5, 206, "0.22%"},
      {ActKind::kTanhCORDIC, "TanhCORDIC", 8415, 3900, "0"},
      {ActKind::kSigmoidLUT, "SigmoidLUT", 553, 142523, "0"},
      {ActKind::kSigmoidSeg, "Sigmoid3.10.12*", 3629, 2107, "0.04%"},
      {ActKind::kSigmoidPLAN, "SigmoidPLAN", 1, 73, "0.59%"},
      {ActKind::kSigmoidCORDIC, "SigmoidCORDIC", 8447, 3932, "0"},
  };
  for (const auto& row : acts) {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, kFmt);
    b.outputs(activation(b, x, row.kind, kFmt));
    const Circuit c = b.build();
    const auto s = c.stats();
    const ErrorStats e = activation_error(c, row.kind);
    t.add_row({act_kind_name(row.kind), std::to_string(s.num_xor),
               std::to_string(s.num_and), pct(e.mean), pct(e.max),
               std::to_string(row.pxor), std::to_string(row.pnon),
               row.perr});
  }

  // Arithmetic blocks: exact (error 0 beyond representation).
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, kFmt);
    const Bus y = input_fixed(b, Party::kEvaluator, kFmt);
    b.outputs(add(b, x, y));
    const auto s = b.build().stats();
    t.add_row({"ADD", std::to_string(s.num_xor), std::to_string(s.num_and),
               "0", "0", "16", "16", "0"});
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, kFmt);
    const Bus y = input_fixed(b, Party::kEvaluator, kFmt);
    b.outputs(mult_fixed(b, x, y, kFmt.frac_bits));
    const auto s = b.build().stats();
    t.add_row({"MULT", std::to_string(s.num_xor), std::to_string(s.num_and),
               "0", "0", "381", "212", "0"});
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, kFmt);
    const Bus y = input_fixed(b, Party::kEvaluator, kFmt);
    b.outputs(div_signed(b, x, y));  // integer DIV block, as in the paper
    const auto s = b.build().stats();
    t.add_row({"DIV", std::to_string(s.num_xor), std::to_string(s.num_and),
               "0", "0", "545", "361", "0"});
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, kFmt);
    b.outputs(relu(b, x));
    const auto s = b.build().stats();
    t.add_row({"ReLu", std::to_string(s.num_xor), std::to_string(s.num_and),
               "0", "0", "30", "15", "0"});
  }
  {
    // Softmax (argmax) at n = 10: paper (n-1)*48 XOR, (n-1)*32 non-XOR.
    Builder b;
    std::vector<Bus> vals(10);
    for (auto& bus : vals) bus = input_fixed(b, Party::kGarbler, kFmt);
    b.outputs(argmax(b, vals));
    const auto s = b.build().stats();
    t.add_row({"Softmax10", std::to_string(s.num_xor),
               std::to_string(s.num_and), "0", "0",
               std::to_string(9 * 48), std::to_string(9 * 32), "0"});
  }
  {
    // A(1x16) x B(16x4): paper 397mn-16n XOR / 228mn-16n non-XOR.
    const Circuit c = make_matvec_circuit(16, 4, kFmt);
    const auto s = c.stats();
    t.add_row({"A1x16.B16x4", std::to_string(s.num_xor),
               std::to_string(s.num_and), "0", "0",
               std::to_string(397 * 16 * 4 - 16 * 4),
               std::to_string(228 * 16 * 4 - 16 * 4), "0"});
  }

  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\n* Tanh2.10.12 / Sigmoid3.10.12 are realized as 256/128-segment\n"
      "  interpolated tables with the same error budget (DESIGN.md\n"
      "  substitution #1). TanhLUT/SigmoidLUT counts are lower than the\n"
      "  paper's because our structural hashing shares subtrees across\n"
      "  the smooth table. Our MULT covers the signed fixed-point window\n"
      "  [frac, frac+16), which costs more non-XOR than the paper's\n"
      "  integer multiplier; the per-MAC ratio carries into Table 4.\n");
  return 0;
}
