// Small dense linear algebra for the data-projection stage: column-major
// matrices, Cholesky solves, Gram-Schmidt orthonormalization and the
// projector algebra of Proposition 3.1 (W = D(D^T D)^-1 D^T = U U^T).
#pragma once

#include <cstddef>
#include <vector>

namespace deepsecure::preprocess {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     v_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(size_t r, size_t c) { return v_[c * rows_ + r]; }
  double at(size_t r, size_t c) const { return v_[c * rows_ + r]; }

  /// Column view helpers.
  std::vector<double> col(size_t c) const;
  void set_col(size_t c, const std::vector<double>& x);
  void append_col(const std::vector<double>& x);

  static Matrix identity(size_t n);

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  Matrix transpose() const;

  double frobenius() const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> v_;
};

/// Solve (A^T A) x = A^T b via Cholesky (A tall, full column rank);
/// i.e. the least-squares coefficients of b against A's columns.
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b);

/// Residual ||A x* - b|| / ||b|| of the least-squares fit (the
/// projection error V_p of Algorithm 1).
double projection_residual(const Matrix& a, const std::vector<double>& b);

/// Orthonormal basis of A's column space (modified Gram-Schmidt,
/// rank-revealing: near-dependent columns are dropped).
Matrix orthonormal_basis(const Matrix& a, double tol = 1e-9);

/// Projector onto A's column space: W = U U^T (m x m).
Matrix projector(const Matrix& a);

double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm(const std::vector<double>& a);

}  // namespace deepsecure::preprocess
