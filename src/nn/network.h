// A sequential network of layers plus the softmax/cross-entropy head.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace deepsecure::nn {

class Network {
 public:
  explicit Network(Shape input) : input_(input) {}

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  // --- construction helpers (return *this for chaining) ---------------
  Network& dense(size_t out, Rng& rng);
  Network& conv(size_t k, size_t stride, size_t out_ch, Rng& rng);
  Network& pool(Pool kind, size_t k, size_t stride);
  Network& act(Act kind);

  VecF forward(const VecF& x) const;  // inference only (const_cast-free)
  size_t predict(const VecF& x) const { return argmax(forward(x)); }

  /// One SGD sample step: forward, softmax-CE backward, parameter update.
  float train_step(const VecF& x, size_t label, float lr, float momentum);

  Shape input_shape() const { return input_; }
  Shape output_shape() const;
  size_t param_count() const;

  std::vector<std::unique_ptr<Layer>>& layers() { return layers_; }
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  /// Dense layers in order (for pruning / quantization passes).
  std::vector<DenseLayer*> dense_layers();

 private:
  Shape input_;
  Shape current_;
  std::vector<std::unique_ptr<Layer>> layers_;
  bool current_init_ = false;

  Shape tip() const { return layers_.empty() ? input_ : current_; }
};

}  // namespace deepsecure::nn
