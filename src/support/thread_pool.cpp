#include "support/thread_pool.h"

#include <algorithm>
#include <exception>

namespace deepsecure {

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_shards(size_t n_items, size_t min_per_shard,
                                 const std::function<void(size_t, size_t)>& fn) {
  if (n_items == 0) return;
  min_per_shard = std::max<size_t>(1, min_per_shard);
  const size_t max_shards = size() + 1;  // workers + calling thread
  const size_t n_shards =
      std::min(max_shards, (n_items + min_per_shard - 1) / min_per_shard);
  if (n_shards <= 1) {
    fn(0, n_items);
    return;
  }

  // Even split; the first `rem` shards carry one extra item.
  const size_t base = n_items / n_shards;
  const size_t rem = n_items % n_shards;

  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
    std::exception_ptr error;
  } join{.mu = {}, .cv = {}, .pending = n_shards - 1, .error = nullptr};

  size_t begin = 0;
  std::vector<std::pair<size_t, size_t>> ranges(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    const size_t len = base + (s < rem ? 1 : 0);
    ranges[s] = {begin, begin + len};
    begin += len;
  }

  for (size_t s = 1; s < n_shards; ++s) {
    submit([&, s] {
      std::exception_ptr err;
      try {
        fn(ranges[s].first, ranges[s].second);
      } catch (...) {
        err = std::current_exception();
      }
      // Notify while holding the mutex: the caller may destroy `join`
      // the moment it observes pending == 0, so the signal must complete
      // before this worker releases the lock.
      std::lock_guard<std::mutex> lock(join.mu);
      if (err && !join.error) join.error = err;
      --join.pending;
      join.cv.notify_one();
    });
  }

  std::exception_ptr local_error;
  try {
    fn(ranges[0].first, ranges[0].second);
  } catch (...) {
    local_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(join.mu);
  join.cv.wait(lock, [&] { return join.pending == 0; });
  if (local_error) std::rethrow_exception(local_error);
  if (join.error) std::rethrow_exception(join.error);
}

}  // namespace deepsecure
