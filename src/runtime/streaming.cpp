#include "runtime/streaming.h"

#include <cstdlib>

#include "gc/batch_walk.h"

namespace deepsecure::runtime {

bool zero_copy_tables_default() {
  static const bool enabled = [] {
    const char* v = std::getenv("DEEPSECURE_NO_ZERO_COPY");
    return v == nullptr || v[0] == '\0' || (v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

StreamingGarbler::StreamingGarbler(Channel& transport, Block seed,
                                   const StreamConfig& cfg)
    : pool_(cfg.garble_threads > 0
                ? std::make_unique<ThreadPool>(cfg.garble_threads)
                : nullptr),
      table_pool_(cfg.zero_copy_tables
                      ? std::make_unique<BufferPool>(
                            GarbleWindowLine::bytes_for(kGcMaxBatchWindow))
                      : nullptr),
      ch_(transport, cfg.channel_buffer),
      session_(std::make_unique<GarblerSession>(
          ch_, seed, cfg.gc_options(pool_.get(), table_pool_.get()))) {}

BitVec StreamingGarbler::run_chain(const std::vector<Circuit>& chain,
                                   const BitVec& data_bits) {
  const BitVec out = session_->run_chain(chain, data_bits);
  ch_.flush();
  return out;
}

BitVec StreamingGarbler::run_sequential(const Circuit& step, size_t cycles,
                                        const BitVec& data_bits) {
  const BitVec out = session_->run_sequential(step, cycles, data_bits);
  ch_.flush();
  return out;
}

StreamingEvaluator::StreamingEvaluator(Channel& transport,
                                       const StreamConfig& cfg)
    : pool_(cfg.eval_threads > 0
                ? std::make_unique<ThreadPool>(cfg.eval_threads)
                : nullptr),
      ch_(transport, cfg.channel_buffer),
      session_(std::make_unique<EvaluatorSession>(
          ch_, cfg.gc_options(pool_.get()))) {}

BitVec StreamingEvaluator::run_chain(const std::vector<Circuit>& chain,
                                     const BitVec& weight_bits) {
  const BitVec out = session_->run_chain(chain, weight_bits);
  ch_.flush();
  return out;
}

BitVec StreamingEvaluator::run_sequential(const Circuit& step, size_t cycles,
                                          const BitVec& weight_bits) {
  const BitVec out = session_->run_sequential(step, cycles, weight_bits);
  ch_.flush();
  return out;
}

}  // namespace deepsecure::runtime
