// Section 3.3 scenario: a wearable device with no budget for garbling
// delegates the GC protocol to a proxy. The device only (a) samples its
// sensors and (b) XOR-pads the reading — everything else happens between
// the two non-colluding servers.
#include <cstdio>

#include "core/deepsecure.h"
#include "data/synthetic.h"

using namespace deepsecure;

int main() {
  std::printf("DeepSecure secure outsourcing (wearable scenario)\n");
  std::printf("=================================================\n\n");

  // Smart-sensing data (activity recognition), scaled-down benchmark 4.
  data::SyntheticConfig cfg;
  cfg.features = 96;
  cfg.classes = 8;  // activities
  cfg.samples = 480;
  cfg.seed = 13;
  const nn::Dataset ds = data::make_subspace_dataset(cfg);
  const nn::Split split = nn::split_dataset(ds, 0.85);

  Rng rng(17);
  nn::Network model(nn::Shape{1, 1, 96});
  model.dense(20, rng).act(nn::Act::kTanh).dense(8, rng);
  nn::TrainConfig tc;
  tc.epochs = 12;
  nn::train(model, split.train, tc);
  std::printf("activity model test accuracy: %.1f%%\n",
              100.0 * nn::accuracy(model, split.test));
  nn::scale_for_fixed(model, split.train.x);

  SecureInferenceOptions opt;
  opt.seed = Block{77, 78};

  const nn::VecF& reading = split.test.x[0];

  // Direct mode (device garbles itself) vs outsourced mode.
  const auto direct = secure_infer(model, reading, opt);
  const auto outsourced = secure_infer_outsourced(model, reading, opt);

  std::printf("\ndirect mode:     label %zu, device sends %.2f MB\n",
              direct.label,
              static_cast<double>(direct.client_to_server_bytes) / 1e6);
  std::printf("outsourced mode: label %zu\n", outsourced.label);
  std::printf("  device work: generate %zu random bits + XOR (free)\n",
              reading.size() * opt.fmt.total_bits);
  std::printf("  extra circuit cost: +%zu XOR gates, +0 non-XOR (free-XOR)\n",
              reading.size() * opt.fmt.total_bits);
  std::printf("  proxy<->server traffic: %.2f MB\n",
              static_cast<double>(outsourced.client_to_server_bytes +
                                  outsourced.server_to_client_bytes) /
                  1e6);
  std::printf("\nmodes agree: %s\n",
              direct.label == outsourced.label ? "yes" : "NO (bug!)");
  return direct.label == outsourced.label ? 0 : 1;
}
