#include "gc/outsourcing.h"

namespace deepsecure {

XorShares xor_share(const BitVec& bits, Prg& prg) {
  XorShares sh;
  sh.share_a.resize(bits.size());
  sh.share_b.resize(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    sh.share_a[i] = static_cast<uint8_t>(prg.next_u64() & 1u);
    sh.share_b[i] = sh.share_a[i] ^ (bits[i] & 1u);
  }
  return sh;
}

Circuit add_xor_sharing_layer(const Circuit& c) {
  Circuit out = c;
  const size_t n = c.garbler_inputs.size();

  // Fresh wires for the two shares.
  std::vector<Wire> share_a(n), share_b(n);
  for (size_t i = 0; i < n; ++i) share_a[i] = out.num_wires++;
  for (size_t i = 0; i < n; ++i) share_b[i] = out.num_wires++;

  // The reconstruction XOR layer must precede every original gate; the
  // old garbler-input wires become its outputs.
  std::vector<Gate> gates;
  gates.reserve(out.gates.size() + n);
  for (size_t i = 0; i < n; ++i)
    gates.push_back(Gate{share_a[i], share_b[i], c.garbler_inputs[i],
                         GateOp::kXor});
  gates.insert(gates.end(), out.gates.begin(), out.gates.end());
  out.gates = std::move(gates);
  if (!out.gate_lanes.empty()) {
    // Keep lane tags aligned: the reconstruction layer is lane 0.
    out.gate_lanes.insert(out.gate_lanes.begin(), n, 0u);
  }

  out.garbler_inputs = share_a;
  std::vector<Wire> eval_in = share_b;
  eval_in.insert(eval_in.end(), c.evaluator_inputs.begin(),
                 c.evaluator_inputs.end());
  out.evaluator_inputs = std::move(eval_in);
  out.name = c.name.empty() ? "outsourced" : c.name + ".outsourced";
  out.validate();
  return out;
}

}  // namespace deepsecure
