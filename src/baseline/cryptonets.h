// CryptoNets baseline (Gilad-Bachrach et al., ICML'16) — the comparator
// of Table 6 and Figure 6.
//
// Two parts:
//  * a cost model pinned to the published numbers the paper compares
//    against (570.11 s per batch of up to 8192 samples on a Xeon E5-1620,
//    74 KB communication per sample, constant latency regardless of
//    batch occupancy);
//  * a utility baseline: CryptoNets must replace non-polynomial
//    activations with low-degree polynomials (square). We train the same
//    topology with square vs. true activations to quantify the
//    privacy/utility trade-off the paper argues GC avoids.
#pragma once

#include "nn/trainer.h"

namespace deepsecure::baseline {

struct CryptoNetsParams {
  double batch_latency_s = 570.11;
  size_t max_batch = 8192;
  double comm_bytes_per_sample = 74.0 * 1024;
};

/// Client-visible delay for processing `n` samples (batched).
double cryptonets_delay_s(size_t n, const CryptoNetsParams& p = {});

/// DeepSecure client-visible delay for `n` samples at `per_sample_s`
/// (linear — the streaming advantage of Figure 6).
inline double deepsecure_delay_s(size_t n, double per_sample_s) {
  return static_cast<double>(n) * per_sample_s;
}

/// Largest n for which DeepSecure (at per_sample_s) beats CryptoNets —
/// the crossover markers of Figure 6 (288 and 2590 in the paper).
size_t crossover_samples(double per_sample_s, const CryptoNetsParams& p = {});

struct UtilityComparison {
  float accuracy_true_act = 0.0f;   // ReLU/Tanh network
  float accuracy_square_act = 0.0f; // polynomial (HE-compatible) network
};

/// Train twin networks (identical topology, different activation) and
/// report test accuracies.
UtilityComparison compare_utility(const nn::Dataset& train,
                                  const nn::Dataset& test,
                                  size_t hidden, nn::Act true_act,
                                  const nn::TrainConfig& cfg);

}  // namespace deepsecure::baseline
