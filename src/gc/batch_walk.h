// Shared driver for the batched hashing pipeline's gate walk. Garbler
// and Evaluator defer exactly the same AND gates, so the flush schedule
// and capacity policy must stay in lock-step between them — this template
// is the single place that logic lives.
//
// Under GcOptions::schedule both endpoints pass the circuit's
// width-scheduled view (Circuit::gc_scheduled) here instead of the
// construction order; the walked circuit defines the table/tweak
// order, so the caller must hand both parties the identical view — the
// runtime handshake's fingerprint over the scheduled netlist enforces
// that across machines.
#pragma once

#include "circuit/circuit.h"
#include "gc/garble.h"

namespace deepsecure {

/// Walk `c.gates` in order. XOR gates invoke `on_xor(g)` immediately
/// (free-XOR). AND gates invoke `on_and(g)` to enqueue into the pending
/// window; `flush(bool level_boundary)` drains it — called at the
/// circuit's precomputed dependency flush points and after the last
/// gate (level_boundary = true: a real barrier in the gate order, under
/// the width scheduler an AND-level boundary), and at
/// `kGcMaxBatchWindow` pending gates (level_boundary = false: a
/// capacity drain mid-level). The distinction only matters to consumers
/// that align a downstream unit to levels — table frame sizing — and
/// never changes which gates drain when, so both endpoints stay in
/// lock-step regardless of how they use it. `flush(...)` must be a
/// no-op on an empty window.
template <typename XorFn, typename AndFn, typename FlushFn>
void gc_batched_walk(const Circuit& c, XorFn&& on_xor, AndFn&& on_and,
                     FlushFn&& flush) {
  const auto flush_points = c.gc_flush_points();
  const uint32_t* fp = flush_points->data();
  const uint32_t* fp_end = fp + flush_points->size();

  size_t window = 0;
  for (uint32_t i = 0; i < static_cast<uint32_t>(c.gates.size()); ++i) {
    if (fp != fp_end && *fp == i) {
      flush(/*level_boundary=*/true);
      window = 0;
      ++fp;
    }
    const Gate& g = c.gates[i];
    if (g.op == GateOp::kXor) {
      on_xor(g);
      continue;
    }
    on_and(g);
    if (++window == kGcMaxBatchWindow) {
      flush(/*level_boundary=*/false);
      window = 0;
    }
  }
  flush(/*level_boundary=*/true);
}

}  // namespace deepsecure
