#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

namespace deepsecure::obs {

namespace detail {

size_t shard_index() {
  // Round-robin assignment on first use: adjacent-started threads land
  // on different cache lines. The modulo keeps collisions correct.
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

}  // namespace detail

size_t histogram_bucket(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));
}

uint64_t histogram_bucket_lo(size_t b) {
  if (b == 0) return 0;
  return uint64_t{1} << (b - 1);
}

std::array<uint64_t, kBuckets> Histogram::merged_buckets() const {
  std::array<uint64_t, kBuckets> out{};
  for (const auto& s : shards_)
    for (size_t b = 0; b < kBuckets; ++b)
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
  return out;
}

double Snapshot::Hist::quantile(double q) const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the bins.
  const double rank = q * static_cast<double>(total);
  double seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double next = seen + static_cast<double>(buckets[b]);
    if (next >= rank) {
      const double lo = static_cast<double>(histogram_bucket_lo(b));
      const double hi = b == 0 ? 1.0 : lo * 2.0;
      const double frac =
          buckets[b] > 0
              ? std::clamp((rank - seen) / static_cast<double>(buckets[b]),
                           0.0, 1.0)
              : 0.0;
      return lo + (hi - lo) * frac;
    }
    seen = next;
  }
  return static_cast<double>(histogram_bucket_lo(kBuckets - 1));
}

Snapshot Snapshot::delta(const Snapshot& baseline) const {
  auto base_counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : baseline.counters)
      if (n == name) return v;
    return 0;
  };
  Snapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [n, v] : counters) {
    const uint64_t b = base_counter(n);
    out.counters.emplace_back(n, v >= b ? v - b : 0);
  }
  out.gauges = gauges;  // levels carry through
  out.hists.reserve(hists.size());
  for (const Hist& h : hists) {
    const Hist* b = baseline.find_hist(h.name);
    Hist d = h;
    if (b != nullptr) {
      d.count = h.count >= b->count ? h.count - b->count : 0;
      d.sum = h.sum >= b->sum ? h.sum - b->sum : 0;
      for (size_t i = 0; i < kBuckets; ++i)
        d.buckets[i] =
            h.buckets[i] >= b->buckets[i] ? h.buckets[i] - b->buckets[i] : 0;
    }
    out.hists.push_back(std::move(d));
  }
  return out;
}

const Snapshot::Hist* Snapshot::find_hist(std::string_view name) const {
  for (const Hist& h : hists)
    if (h.name == name) return &h;
  return nullptr;
}

uint64_t Snapshot::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  char buf[256];
  bool first = true;
  for (const auto& [n, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                  n.c_str(), static_cast<unsigned long long>(v));
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [n, v] : gauges) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld", first ? "" : ",",
                  n.c_str(), static_cast<long long>(v));
    out += buf;
    first = false;
  }
  out += "},\"hists\":{";
  first = true;
  for (const Hist& h : hists) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"p50\":%.1f,"
                  "\"p95\":%.1f,\"p99\":%.1f,\"buckets\":[",
                  first ? "" : ",", h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum), h.quantile(0.50),
                  h.quantile(0.95), h.quantile(0.99));
    out += buf;
    // Merged log-bucket bins as [lower_bound, count] pairs, zero bins
    // elided — enough for a scraper to rebuild the distribution and
    // compute any quantile, not just the three pre-baked ones.
    bool bfirst = true;
    for (size_t b = 0; b < kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s[%llu,%llu]", bfirst ? "" : ",",
                    static_cast<unsigned long long>(histogram_bucket_lo(b)),
                    static_cast<unsigned long long>(h.buckets[b]));
      out += buf;
      bfirst = false;
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [n, c] : counters_) s.counters.emplace_back(n, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [n, g] : gauges_) s.gauges.emplace_back(n, g->value());
  s.hists.reserve(hists_.size());
  for (const auto& [n, h] : hists_) {
    Snapshot::Hist sh;
    sh.name = n;
    sh.count = h->count();
    sh.sum = h->sum();
    sh.buckets = h->merged_buckets();
    s.hists.push_back(std::move(sh));
  }
  return s;
}

uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

}  // namespace deepsecure::obs
