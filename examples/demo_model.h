// Shared demo model for the secure_server / secure_client example pair.
// The architecture (this spec) is public knowledge in the protocol; the
// weights are the *server's* private inputs and the sample is the
// *client's* — here both are derived from fixed seeds so the two
// binaries can run standalone and still agree on the handshake
// fingerprint and produce checkable results.
#pragma once

#include <vector>

#include "fixed/fixed_point.h"
#include "support/bits.h"
#include "support/rng.h"
#include "synth/layer_circuits.h"

namespace demo {

using namespace deepsecure;

/// A small MLP: 16 features -> FC 12 -> ReLU -> FC 4 -> argmax.
inline synth::ModelSpec demo_spec() {
  synth::ModelSpec spec;
  spec.name = "demo_mlp";
  spec.input = synth::Shape3{1, 1, 16};
  spec.layers.push_back(synth::FcLayer{12, {}, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{4, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  return spec;
}

inline Fixed random_weight(Rng& rng, FixedFormat fmt) {
  // Small magnitudes keep the fixed-point datapath from saturating.
  const double v = (static_cast<double>(rng.next_below(2001)) - 1000.0) / 5000.0;
  return Fixed::from_double(v, fmt);
}

/// Server-side private weights (seeded, so the demo is reproducible).
inline BitVec demo_weight_bits() {
  const synth::ModelSpec spec = demo_spec();
  Rng rng(20180624);  // DAC'18
  BitVec bits;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i) {
    const BitVec b = random_weight(rng, spec.fmt).to_bits();
    bits.insert(bits.end(), b.begin(), b.end());
  }
  return bits;
}

/// Client-side sample #k as raw floats.
inline std::vector<float> demo_sample(size_t k) {
  Rng rng(777 + k);
  std::vector<float> x(16);
  for (auto& v : x)
    v = (static_cast<float>(rng.next_below(2001)) - 1000.0f) / 2500.0f;
  return x;
}

}  // namespace demo
