// Minimal wall-clock stopwatch for the benchmark harness and the GC
// session phase measurements (Figure 5 reproduction).
#pragma once

#include <chrono>

namespace deepsecure {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepsecure
