// Two-party communication channel abstraction. The GC protocol, OT, and
// the outsourcing mode all talk through this interface, and the byte
// counters are the source of the paper's "Comm. (MB)" columns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "crypto/block.h"
#include "obs/metrics.h"
#include "support/buffer_pool.h"

namespace deepsecure {

namespace netstat {
// Process-wide data-plane instruments (Registry::global()), shared by
// every channel implementation. Resolved once per process.
//   net.bytes_copied   — payload bytes memcpy'd somewhere in the send
//                        path instead of shipped as a borrowed slice
//                        (the copy-elimination headline metric).
//   net.sends_vectored — send_iov calls that reached a true
//                        scatter-gather transport (writev/sendmsg/
//                        io_uring) instead of the copy fallback.
//   net.syscalls_send  — kernel send submissions (send/sendmsg calls,
//                        io_uring_enter calls).
inline obs::Counter& bytes_copied() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.bytes_copied");
  return c;
}
inline obs::Counter& sends_vectored() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.sends_vectored");
  return c;
}
inline obs::Counter& syscalls_send() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.syscalls_send");
  return c;
}
}  // namespace netstat

/// One element of a vectored send: a borrowed byte range, optionally
/// pinned by a BufferRef.
///
/// Lifetime contract (the iovec divergence documented in
/// src/net/README.md): a slice WITHOUT a ref is only guaranteed valid
/// during the send_iov call — transports that ship asynchronously must
/// copy it before returning. A slice WITH a ref may be shipped after
/// send_iov returns: the transport takes (moves) the ref and holds it
/// until the kernel send of those bytes has completed, which is what
/// lets a pool slab recycle exactly when its payload is on the wire.
struct IoSlice {
  const void* data = nullptr;
  size_t len = 0;
  BufferRef ref;
};

class Channel {
 public:
  virtual ~Channel() = default;

  virtual void send_bytes(const void* data, size_t n) = 0;
  virtual void recv_bytes(void* data, size_t n) = 0;

  /// Vectored send: ship the slices back-to-back, exactly as if each
  /// had gone through send_bytes in order. The default is that copy
  /// fallback (one send_bytes per slice, every byte counted in
  /// net.bytes_copied); scatter-gather transports override it. The
  /// slice array is consumed — an implementation may move refs out of
  /// it (see IoSlice), so callers must treat it as spent on return.
  virtual void send_iov(IoSlice* slices, size_t n) {
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      if (slices[i].len == 0) continue;
      send_bytes(slices[i].data, slices[i].len);
      total += slices[i].len;
      slices[i].ref.reset();
    }
    if (total > 0) netstat::bytes_copied().add(total);
  }

  /// Receive at least `min_n` and at most `max_n` bytes, returning how
  /// many arrived. Transports that can see "what is already available"
  /// (TCP, the in-memory queue) override this so buffering wrappers can
  /// read ahead without ever blocking for bytes the peer has not sent.
  /// The default is the exact-read behavior.
  virtual size_t recv_some(void* data, size_t min_n, size_t max_n) {
    (void)max_n;
    recv_bytes(data, min_n);
    return min_n;
  }

  // --- typed helpers -------------------------------------------------
  void send_block(Block b) {
    uint8_t buf[16];
    b.to_bytes(buf);
    send_bytes(buf, sizeof(buf));
  }
  Block recv_block() {
    uint8_t buf[16];
    recv_bytes(buf, sizeof(buf));
    return Block::from_bytes(buf);
  }
  // Bulk label transfer: one send/recv per staging chunk instead of one
  // 16-byte channel call per block (which over TcpChannel is a syscall
  // per block). Small runs serialize through a stack buffer; large runs
  // pay one heap allocation for a single bulk transfer.
  void send_blocks(const Block* b, size_t n) {
    constexpr size_t kStackBlocks = 256;  // 4 KiB on the stack
    if (n <= kStackBlocks) {
      uint8_t stage[kStackBlocks * 16];
      for (size_t i = 0; i < n; ++i) b[i].to_bytes(stage + 16 * i);
      if (n > 0) send_bytes(stage, n * 16);
      return;
    }
    std::vector<uint8_t> stage(n * 16);
    for (size_t i = 0; i < n; ++i) b[i].to_bytes(stage.data() + 16 * i);
    send_bytes(stage.data(), stage.size());
  }
  void recv_blocks(Block* b, size_t n) {
    constexpr size_t kStackBlocks = 256;
    if (n <= kStackBlocks) {
      uint8_t stage[kStackBlocks * 16];
      if (n > 0) recv_bytes(stage, n * 16);
      for (size_t i = 0; i < n; ++i) b[i] = Block::from_bytes(stage + 16 * i);
      return;
    }
    std::vector<uint8_t> stage(n * 16);
    recv_bytes(stage.data(), stage.size());
    for (size_t i = 0; i < n; ++i) b[i] = Block::from_bytes(stage.data() + 16 * i);
  }
  void send_u64(uint64_t v) { send_bytes(&v, sizeof(v)); }
  uint64_t recv_u64() {
    uint64_t v = 0;
    recv_bytes(&v, sizeof(v));
    return v;
  }
  void send_bit(uint8_t b) { send_bytes(&b, 1); }
  uint8_t recv_bit() {
    uint8_t b = 0;
    recv_bytes(&b, 1);
    return b;
  }
  void send_bits(const std::vector<uint8_t>& bits) {
    send_u64(bits.size());
    // Packed transfer, 8 bits per byte.
    std::vector<uint8_t> packed((bits.size() + 7) / 8, 0);
    for (size_t i = 0; i < bits.size(); ++i)
      packed[i / 8] |= static_cast<uint8_t>((bits[i] & 1u) << (i % 8));
    if (!packed.empty()) send_bytes(packed.data(), packed.size());
  }
  std::vector<uint8_t> recv_bits() {
    return recv_bits_bounded(~uint64_t{0});
  }
  // Bounded variant for lengths the peer controls: the count is
  // validated before anything is allocated from it, so a corrupted or
  // hostile length header yields a protocol error instead of a
  // multi-gigabyte allocation.
  std::vector<uint8_t> recv_bits_bounded(uint64_t max_bits) {
    const uint64_t n = recv_u64();
    if (n > max_bits)
      throw std::runtime_error("channel: oversized bit vector");
    std::vector<uint8_t> packed((n + 7) / 8);
    if (!packed.empty()) recv_bytes(packed.data(), packed.size());
    std::vector<uint8_t> bits(n);
    for (size_t i = 0; i < n; ++i)
      bits[i] = (packed[i / 8] >> (i % 8)) & 1u;
    return bits;
  }

  /// Total bytes pushed through send_bytes on this endpoint.
  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t bytes_received() const = 0;
  virtual void reset_counters() = 0;
};

}  // namespace deepsecure
