// Circuit builder — the "logic synthesis" front end.
//
// The paper feeds Verilog through Synopsys Design Compiler with a custom
// library whose XOR area is 0 and non-XOR area is 1, so the synthesizer
// minimizes non-XOR gates. This builder plays the same role for our C++
// block generators: it lowers the {XOR, AND, NOT, OR, XNOR, MUX} basis to
// {XOR, AND}, constant-folds, and structurally hashes (CSE) so shared
// logic is emitted once — the same objective, implemented as a compiler
// instead of a commercial tool (see DESIGN.md substitution #1).
#pragma once

#include <unordered_map>

#include "circuit/circuit.h"

namespace deepsecure {

enum class Party : uint8_t { kGarbler, kEvaluator };

class Builder {
 public:
  explicit Builder(std::string name = "", bool enable_cse = true);

  // --- inputs ---------------------------------------------------------
  Wire input(Party p);
  std::vector<Wire> inputs(Party p, size_t n);
  /// Sequential state element: returns the cycle-(t-1) value wire; the
  /// wire driving cycle t is registered later via set_state_next.
  Wire state_input();
  std::vector<Wire> state_inputs(size_t n);
  void set_state_next(const std::vector<Wire>& next);

  // --- scheduling hints -------------------------------------------------
  /// Tag gates emitted from here on with a lane id — one independent
  /// unit of parallel work (a matvec column, an FC output neuron, a
  /// conv output pixel). The scheduling pass (circuit/schedule.h)
  /// interleaves same-level AND gates round-robin across lanes. Gates
  /// emitted before the first set_lane call carry lane 0; CSE-shared
  /// gates keep the lane of their first emission.
  void set_lane(uint32_t lane);

  // --- logic ------------------------------------------------------------
  Wire const_bit(bool v) { return v ? kConst1 : kConst0; }
  Wire xor_(Wire a, Wire b);
  Wire and_(Wire a, Wire b);
  Wire not_(Wire a) { return xor_(a, kConst1); }
  Wire xnor_(Wire a, Wire b) { return not_(xor_(a, b)); }
  Wire or_(Wire a, Wire b);   // lowered: a^b^(a&b)
  Wire nand_(Wire a, Wire b) { return not_(and_(a, b)); }
  Wire nor_(Wire a, Wire b) { return not_(or_(a, b)); }
  /// 2:1 multiplexer, one AND gate: sel ? t : f.
  Wire mux(Wire sel, Wire t, Wire f);

  // --- outputs ----------------------------------------------------------
  void output(Wire w);
  void outputs(const std::vector<Wire>& ws);

  /// Finalize. The builder must not be reused afterwards.
  Circuit build();

  /// Gate tallies so far (useful while composing large blocks).
  uint64_t and_count() const { return and_count_; }
  uint64_t xor_count() const { return xor_count_; }

 private:
  Wire new_wire();
  Wire emit(GateOp op, Wire a, Wire b);

  Circuit c_;
  bool cse_;
  uint32_t lane_ = 0;
  bool lanes_used_ = false;
  uint64_t and_count_ = 0;
  uint64_t xor_count_ = 0;
  std::unordered_map<uint64_t, Wire> cse_map_;
};

}  // namespace deepsecure
