// Field arithmetic modulo p = 2^255 - 19, with 5 x 51-bit limbs.
// Substrate for the Edwards25519 group used by the Chou-Orlandi base OT.
// Arithmetic (add/sub/mul/invert) is branch-free; full reduction happens
// only in to_bytes / canonicalization.
#pragma once

#include <array>
#include <cstdint>

namespace deepsecure {

struct Fe25519 {
  // Limbs in radix 2^51; after weak reduction each limb < 2^52.
  std::array<uint64_t, 5> v{};

  static Fe25519 zero() { return Fe25519{}; }
  static Fe25519 one() {
    Fe25519 r;
    r.v[0] = 1;
    return r;
  }
  /// Small non-negative integer constant.
  static Fe25519 from_u64(uint64_t x);

  static Fe25519 add(const Fe25519& a, const Fe25519& b);
  static Fe25519 sub(const Fe25519& a, const Fe25519& b);
  static Fe25519 mul(const Fe25519& a, const Fe25519& b);
  static Fe25519 square(const Fe25519& a);
  static Fe25519 neg(const Fe25519& a);
  /// a^(p-2) — multiplicative inverse (0 maps to 0).
  static Fe25519 invert(const Fe25519& a);
  /// a^((p+3)/8); candidate square root used in point checks.
  static Fe25519 pow_p38(const Fe25519& a);

  /// Branch-free conditional swap (swap iff bit == 1).
  static void cswap(Fe25519& a, Fe25519& b, uint64_t bit);

  /// Serialize canonical little-endian 32 bytes.
  void to_bytes(uint8_t out[32]) const;
  /// Parse 32 little-endian bytes (top bit ignored, per convention).
  static Fe25519 from_bytes(const uint8_t in[32]);

  bool is_zero() const;
  static bool eq(const Fe25519& a, const Fe25519& b);
};

}  // namespace deepsecure
