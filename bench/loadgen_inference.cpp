// Load generator + overlap probe for the streaming inference runtime.
// Standalone binary (no google-benchmark): emits machine-readable JSON
// so the perf trajectory can accumulate as BENCH_*.json files.
//
//   ./loadgen_inference [--sessions N] [--requests M] [--threads T]
//                       [--eval-threads E] [--layers L] [--gates G]
//                       [--out FILE] [--precomputed]
//                       [--strict-precomputed] [--no-schedule]
//                       [--shard-threads S] [--async-prefetch]
//                       [--server-core thread|event] [--scaling]
//                       [--trace FILE] [--io epoll|uring]
//                       [--chaos SEED:RATE]
//
// Measurements:
//   1. overlap: one streaming session over TCP loopback garbling a
//      chain of wide layers. Reports wall-clock vs the sum of the
//      garble / transfer / eval phase times — streaming pipelining makes
//      wall < phase_sum (the phases overlap in time across the two
//      endpoints).
//   2. offline: time-to-first-warm-artifact on the same wide chain —
//      one garble_offline sequentially vs with its batch windows
//      sharded across `--shard-threads` workers (default probe: 4).
//      The sharded artifact is verified byte-identical before the
//      numbers are reported.
//   3. load: an InferenceServer serving N concurrent TCP sessions of M
//      inferences each; reports sessions/sec, requests/sec and p50/p95
//      per-inference latency.
//   4. with --precomputed, the same load again from a warm MaterialPool
//      (the offline/online split): artifacts are garbled and pushed
//      ahead of the timed window, so each request is label transfer +
//      evaluation only. Emits pooled vs on-demand p50/p95 side by side
//      plus time_to_first_warm_s (slowest session's first warm
//      artifact) and pool_hit_rate; --shard-threads shards each pool
//      garbling, --async-prefetch refills through the v4 prefetch lane
//      concurrently with inference traffic. --strict-precomputed fails
//      the run when warm-pool p50 is not below the on-demand p50
//      (local acceptance gate — CI runs non-strict because shared
//      runners make timing flaky).
//   4b. data_plane: the on-demand load again with the zero-copy table
//      path disabled (copy fallback), so every BENCH file records
//      bytes_copied_per_table_byte for both data planes side by side —
//      the pooled-slab path must copy at least 2x less per shipped
//      table byte. --io uring additionally routes sends through the
//      io_uring submission path where the kernel supports it (the
//      effective backend is recorded; unsupported hosts fall back to
//      sendmsg and the JSON says so).
//   5. with --scaling, a concurrency sweep (16/64/256/1024 sessions,
//      one request each) against BOTH server cores — the event-core
//      headline: sessions/sec and p95 as concurrency grows, with the
//      serving thread count per point (thread core: one per session;
//      event core: fixed worker pool).
//   6. with --chaos SEED:RATE, a deterministic fault-injection soak:
//      both endpoints' transports are wrapped in a seeded FaultChannel
//      (net/fault_channel.h) injecting short I/O, delays, stalls, and
//      connection resets, while clients run with a self-healing retry
//      budget. The run HARD-FAILS unless every inference completes
//      byte-correct against the plaintext reference — the acceptance
//      gate that recovery never replays partially consumed garbled
//      material. The same seed reproduces the same fault plan.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "circuit/bench_circuits.h"
#include "crypto/hash_backend.h"
#include "fixed/fixed_point.h"
#include "gc/material.h"
#include "net/tcp_channel.h"
#include "net/uring.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/client.h"
#include "runtime/server.h"
#include "runtime/streaming.h"
#include "support/bits.h"
#include "support/rng.h"
#include "support/stopwatch.h"

using namespace deepsecure;

namespace {

struct Args {
  size_t sessions = 4;
  size_t requests = 2;
  size_t threads = 2;
  size_t eval_threads = 0;  // evaluator-side window sharding
  size_t layers = 3;
  size_t gates = 4096;
  std::string out;
  // Fail (exit 1) when wall >= phase sum. Off by default: on an
  // oversubscribed CI runner the tiny workload's timing is noisy, and a
  // perf property should not train anyone to ignore a red smoke job.
  // The acceptance run uses --strict-overlap locally.
  bool strict_overlap = false;
  // Also measure the warm-MaterialPool (offline/online split) load.
  bool precomputed = false;
  // Fail (exit 1) when warm-pool p50 >= on-demand p50.
  bool strict_precomputed = false;
  // Width-scheduled gate order on both endpoints (--no-schedule turns
  // it off so BENCH JSON can capture scheduled vs unscheduled runs).
  bool schedule = gc_schedule_default();
  // Window-shard threads inside each offline garbling (MaterialPool
  // producers and the offline probe). 0 = single-threaded artifacts
  // (the probe still reports a 4-way sharded reference).
  size_t shard_threads = 0;
  // Refill server-side stores through the dedicated v4 prefetch lane
  // (a second connection per session) instead of synchronous pushes.
  bool async_prefetch = false;
  // Which serving core the load runs target (the scaling sweep always
  // measures both).
  runtime::ServerCore server_core = runtime::ServerCore::kEventLoop;
  // Concurrency sweep across both cores (measurement 5 above).
  bool scaling = false;
  // Enable the span tracer for the whole run and write the collected
  // events as chrome://tracing JSON to this file (src/obs/trace.h).
  std::string trace;
  // Force the process-wide batch AES kernel by name (vaes16 / aesni8 /
  // bitsliced8 / scalar). Empty = env + CPUID auto-dispatch. The
  // selected backend is recorded in the JSON either way.
  std::string hash_backend;
  // Send-submission path on both endpoints; kUring is runtime-probed
  // and falls back to sendmsg (the JSON records the effective mode).
  runtime::IoBackend io = runtime::IoBackend::kEpoll;
  // Deterministic chaos soak (measurement 6): fault-plan seed and
  // per-I/O injection probability. rate 0 = off.
  uint64_t chaos_seed = 0;
  double chaos_rate = 0.0;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + k);
      return argv[++i];
    };
    if (k == "--sessions") a.sessions = std::stoul(next());
    else if (k == "--requests") a.requests = std::stoul(next());
    else if (k == "--threads") a.threads = std::stoul(next());
    else if (k == "--eval-threads") a.eval_threads = std::stoul(next());
    else if (k == "--layers") a.layers = std::stoul(next());
    else if (k == "--gates") a.gates = std::stoul(next());
    else if (k == "--out") a.out = next();
    else if (k == "--strict-overlap") a.strict_overlap = true;
    else if (k == "--precomputed") a.precomputed = true;
    else if (k == "--strict-precomputed") {
      a.precomputed = true;
      a.strict_precomputed = true;
    }
    else if (k == "--no-schedule") a.schedule = false;
    else if (k == "--shard-threads") a.shard_threads = std::stoul(next());
    else if (k == "--async-prefetch") a.async_prefetch = true;
    else if (k == "--server-core") {
      const std::string v = next();
      if (v == "thread") a.server_core = runtime::ServerCore::kThreadPerSession;
      else if (v == "event") a.server_core = runtime::ServerCore::kEventLoop;
      else throw std::runtime_error("--server-core expects thread|event");
    }
    else if (k == "--scaling") a.scaling = true;
    else if (k == "--trace") a.trace = next();
    else if (k == "--hash-backend") a.hash_backend = next();
    else if (k == "--io") {
      const std::string v = next();
      if (v == "epoll") a.io = runtime::IoBackend::kEpoll;
      else if (v == "uring") a.io = runtime::IoBackend::kUring;
      else throw std::runtime_error("--io expects epoll|uring");
    }
    else if (k == "--chaos") {
      const std::string v = next();
      const size_t colon = v.find(':');
      if (colon == std::string::npos)
        throw std::runtime_error("--chaos expects SEED:RATE");
      a.chaos_seed = std::stoull(v.substr(0, colon));
      a.chaos_rate = std::stod(v.substr(colon + 1));
      if (a.chaos_rate <= 0.0 || a.chaos_rate >= 1.0)
        throw std::runtime_error("--chaos rate must be in (0, 1)");
    }
    else throw std::runtime_error("unknown flag " + k);
  }
  return a;
}

struct OverlapResult {
  size_t layers = 0, gates = 0, threads = 0;
  double wall_s = 0, garble_s = 0, transfer_s = 0, eval_s = 0, setup_s = 0;
  double phase_sum() const { return garble_s + transfer_s + eval_s; }
};

// One streaming session over TCP loopback on a chain of wide layers;
// verifies the protocol output against plaintext evaluation.
OverlapResult measure_overlap(const Args& args) {
  std::vector<Circuit> chain;
  for (size_t l = 0; l < args.layers; ++l)
    chain.push_back(bench_circuits::wide_chain_layer(args.gates));

  Rng rng(4242);
  BitVec data(chain.front().garbler_inputs.size());
  for (auto& b : data) b = rng.next_bool();
  BitVec weights;
  for (const Circuit& c : chain)
    for (size_t i = 0; i < c.evaluator_inputs.size(); ++i)
      weights.push_back(rng.next_bool() ? 1 : 0);

  // Plaintext reference.
  BitVec expect = data;
  size_t consumed = 0;
  for (const Circuit& c : chain) {
    const BitVec w(weights.begin() + static_cast<ptrdiff_t>(consumed),
                   weights.begin() +
                       static_cast<ptrdiff_t>(consumed + c.evaluator_inputs.size()));
    consumed += c.evaluator_inputs.size();
    expect = c.eval(expect, w);
  }

  runtime::StreamConfig cfg;
  cfg.garble_threads = args.threads;
  cfg.eval_threads = args.eval_threads;
  cfg.schedule = args.schedule;

  TcpListener listener(0);
  SessionTrace g_trace, e_trace;
  BitVec got;
  double wall = 0;
  double warm_eval = 0;

  auto sum_ot = [](const SessionTrace& t) {
    double s = 0;
    for (const auto& p : t.phases) s += p.ot_s;
    return s;
  };

  // Two inferences on one session: the first pays base-OT setup and
  // warms caches, the second is the steady-state streaming measurement
  // (the paper's many-samples-per-session premise). Exceptions on either
  // thread are captured and rethrown after the join — an escape from the
  // server lambda, or a client throw skipping the join, would terminate.
  std::exception_ptr server_err, client_err;
  std::thread server_thread([&] {
    try {
      TcpChannel ch = listener.accept();
      runtime::StreamingEvaluator eval(ch, cfg);
      eval.run_chain(chain, weights);
      warm_eval = eval.trace().sum_eval();
      eval.run_chain(chain, weights);
      e_trace = eval.trace();
    } catch (...) {
      server_err = std::current_exception();
    }
  });
  double warm_garble = 0, warm_ot = 0;
  try {
    TcpChannel ch = TcpChannel::connect("127.0.0.1", listener.port());
    runtime::StreamingGarbler garbler(ch, Block{2026, 727}, cfg);
    garbler.run_chain(chain, data);  // warmup (includes OT setup)
    warm_garble = garbler.trace().sum_garble();
    warm_ot = sum_ot(garbler.trace());
    Stopwatch sw;
    got = garbler.run_chain(chain, data);
    wall = sw.seconds();
    g_trace = garbler.trace();
  } catch (...) {
    client_err = std::current_exception();
    listener.close();  // unblock a server still waiting in accept
  }
  server_thread.join();
  if (client_err) std::rethrow_exception(client_err);
  if (server_err) std::rethrow_exception(server_err);
  if (got != expect)
    throw std::runtime_error("overlap probe: protocol output != plaintext");

  OverlapResult r;
  r.layers = args.layers;
  r.gates = args.gates;
  r.threads = args.threads;
  r.wall_s = wall;
  r.garble_s = g_trace.sum_garble() - warm_garble;   // second run only
  r.eval_s = e_trace.sum_eval() - warm_eval;
  r.setup_s = g_trace.setup_s;
  r.transfer_s = sum_ot(g_trace) - warm_ot;
  return r;
}

// Time-to-first-warm-artifact probe: the offline-phase scaling headline.
// One garble_offline over the (big) overlap chain, sequential vs window-
// sharded across a ThreadPool — the cold-start/model-reload latency a
// MaterialPool with shard_threads pays for its FIRST artifact.
struct OfflineResult {
  size_t layers = 0, gates = 0, shard_threads = 0;
  double ttfw_sequential_s = 0;  // single-threaded garble_offline
  double ttfw_sharded_s = 0;     // windows sharded across the pool
  double speedup() const {
    return ttfw_sharded_s > 0 ? ttfw_sequential_s / ttfw_sharded_s : 0;
  }
};

OfflineResult measure_offline(const Args& args) {
  std::vector<Circuit> chain;
  for (size_t l = 0; l < args.layers; ++l)
    chain.push_back(bench_circuits::wide_chain_layer(args.gates));

  GcOptions opt;
  opt.schedule = args.schedule;
  // Warm the schedule/flush-point caches and code paths outside the
  // timed region (a cold MaterialPool shares them the same way: the
  // server warms the schedule cache computing its fingerprint).
  (void)garble_offline(chain, Block{11, 13}, opt);

  Stopwatch sw;
  const GarbledMaterial seq = garble_offline(chain, Block{21, 42}, opt);
  const double seq_s = sw.seconds();

  const size_t shards = args.shard_threads > 0 ? args.shard_threads : 4;
  ThreadPool pool(shards);
  GcOptions sopt = opt;
  sopt.pool = &pool;
  sw.restart();
  const GarbledMaterial shd = garble_offline(chain, Block{21, 42}, sopt);
  const double shd_s = sw.seconds();

  // The speedup only counts if the artifact is the same artifact.
  if (shd.tables != seq.tables || !(shd.delta == seq.delta) ||
      shd.data_zeros != seq.data_zeros || shd.eval_zeros != seq.eval_zeros ||
      shd.decode_bits != seq.decode_bits ||
      shd.fingerprint != seq.fingerprint)
    throw std::runtime_error(
        "offline probe: sharded artifact is not byte-identical");

  OfflineResult r;
  r.layers = args.layers;
  r.gates = args.gates;
  r.shard_threads = shards;
  r.ttfw_sequential_s = seq_s;
  r.ttfw_sharded_s = shd_s;
  return r;
}

// Percentiles of a SORTED sample (nearest-rank, matching the p50/p95
// convention the earlier BENCH files established).
double pct(const std::vector<double>& sorted, size_t p) {
  if (sorted.empty()) return 0.0;
  return sorted[std::min(sorted.size() - 1, (sorted.size() * p) / 100)];
}

// Snapshot of the process-wide data-plane counters (net/channel.h,
// support/buffer_pool.h, net/ring_channel.h). Deltas bracket each load
// run — the runs are sequential, so a delta is that run's traffic.
struct NetCounters {
  uint64_t bytes_copied = 0, sends_vectored = 0, syscalls_send = 0;
  uint64_t slab_acquire = 0, slab_recycle = 0, chunk_reuse = 0;
  // Resilience counters (fault injection + self-healing), so every
  // BENCH row records whether its numbers were taken under chaos and
  // how much recovery happened inside the run.
  uint64_t fault_injected = 0, fault_reset = 0, retries = 0, recovered = 0,
           poisoned = 0;
  static NetCounters snap() {
    auto& r = obs::Registry::global();
    NetCounters c;
    c.bytes_copied = r.counter("net.bytes_copied").value();
    c.sends_vectored = r.counter("net.sends_vectored").value();
    c.syscalls_send = r.counter("net.syscalls_send").value();
    c.slab_acquire = r.counter("pool.slab_acquire").value();
    c.slab_recycle = r.counter("pool.slab_recycle").value();
    c.chunk_reuse = r.counter("net.ring.chunk_reuse").value();
    c.fault_injected = r.counter("fault.injected").value();
    c.fault_reset = r.counter("fault.reset").value();
    c.retries = r.counter("client.retries").value();
    c.recovered = r.counter("client.sessions_recovered").value();
    c.poisoned = r.counter("pool.poisoned").value();
    return c;
  }
  NetCounters operator-(const NetCounters& b) const {
    return NetCounters{bytes_copied - b.bytes_copied,
                       sends_vectored - b.sends_vectored,
                       syscalls_send - b.syscalls_send,
                       slab_acquire - b.slab_acquire,
                       slab_recycle - b.slab_recycle,
                       chunk_reuse - b.chunk_reuse,
                       fault_injected - b.fault_injected,
                       fault_reset - b.fault_reset,
                       retries - b.retries,
                       recovered - b.recovered,
                       poisoned - b.poisoned};
  }
};

struct LoadResult {
  size_t sessions = 0, requests = 0;
  double wall_s = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  // Accept-to-first-byte queueing delay: how long a session waited from
  // connect() to a served handshake ack. Under the gated listener this
  // is where backlog time shows up — the client-side complement of the
  // server's phase accounting.
  double connect_p50_ms = 0, connect_p95_ms = 0, connect_p99_ms = 0;
  double offline_s = 0;  // pooled mode: prefetch (offline phase) time
  double ttfw_s = 0;     // pooled mode: slowest session's first warm artifact
  size_t serving_threads = 0;  // thread core: N sessions; event: loop+workers
  uint64_t served = 0;
  uint64_t pooled = 0;
  std::string server_stats;  // InferenceServer::stats_json() post-run
  // Data-plane accounting for this run (process-wide counter deltas).
  NetCounters net;
  bool zero_copy = true;      // pooled-slab table path vs copy fallback
  uint64_t table_bytes = 0;   // garbled-table payload shipped (expected)
  double bytes_copied_per_table_byte() const {
    return table_bytes > 0 ? double(net.bytes_copied) / double(table_bytes)
                           : 0.0;
  }
  double requests_per_s() const { return wall_s > 0 ? double(served) / wall_s : 0; }
  double sessions_per_s() const {
    return wall_s > 0 ? double(sessions) / wall_s : 0;
  }
  double pool_hit_rate() const {
    return served > 0 ? double(pooled) / double(served) : 0;
  }
};

synth::ModelSpec load_spec() {
  synth::ModelSpec spec;
  spec.name = "loadgen_mlp";
  spec.input = synth::Shape3{1, 1, 8};
  spec.layers.push_back(synth::FcLayer{6, {}, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{3, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  return spec;
}

// One load sweep. `pooled` switches the clients to the offline/online
// split: each session garbles its artifacts in the background, pushes
// them to the server *before* the timed window (offline phase, recorded
// separately), and the timed requests run the online phase only.
LoadResult measure_load(const Args& args, bool pooled,
                        bool zero_copy = true) {
  const synth::ModelSpec spec = load_spec();
  Rng rng(99);
  BitVec weights;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i) {
    const double v = (double(rng.next_below(2001)) - 1000.0) / 5000.0;
    const BitVec b = Fixed::from_double(v, spec.fmt).to_bits();
    weights.insert(weights.end(), b.begin(), b.end());
  }

  runtime::ServerConfig scfg;
  scfg.core = args.server_core;
  scfg.io = args.io;
  scfg.stream.zero_copy_tables = zero_copy;
  scfg.max_sessions = std::max<size_t>(args.sessions, 1);
  scfg.max_prefetch = std::max<size_t>(args.requests, 1);
  scfg.stream.eval_threads = args.eval_threads;
  scfg.stream.schedule = args.schedule;
  // A 1024-client thundering connect overruns the default backlog; the
  // kernel clamps to somaxconn.
  scfg.backlog = static_cast<int>(
      std::min<size_t>(std::max<size_t>(args.sessions, 64), 4096));
  runtime::InferenceServer server(spec, weights, scfg);
  server.start();

  std::vector<std::vector<double>> latencies(args.sessions);
  std::vector<double> connect_ms(args.sessions, 0.0);
  std::vector<double> offline(args.sessions, 0.0);
  std::vector<double> ttfw(args.sessions, 0.0);
  std::vector<std::exception_ptr> errors(args.sessions);
  std::vector<std::thread> clients;
  // In pooled mode every session finishes its offline prefetch before
  // the timed window opens, so wall_s / requests_per_s measure the
  // online phase only (offline cost is reported as offline_prefetch_s).
  std::atomic<size_t> warmed{0};
  std::atomic<bool> go{!pooled};
  const NetCounters net_before = NetCounters::snap();
  Stopwatch wall;
  for (size_t s = 0; s < args.sessions; ++s) {
    clients.emplace_back([&, s] {
      try {
      runtime::ClientConfig ccfg;
      ccfg.seed = Block{1000 + s, 2000 + s};  // per-session PRG seed
      ccfg.stream.schedule = args.schedule;
      ccfg.stream.zero_copy_tables = zero_copy;
      ccfg.io = args.io;
      if (pooled) {
        ccfg.pool_target = args.requests;
        ccfg.pool_producers = 2;
        ccfg.pool_shard_threads = args.shard_threads;
        ccfg.async_prefetch = args.async_prefetch;
        ccfg.auto_top_up = false;  // every timed request hits warm material
      }
      // Connect-to-ready: construction blocks through connect + hello +
      // ack, so this stopwatch captures the accept-to-first-byte
      // queueing delay (listen-backlog wait included) per session.
      Stopwatch connect_sw;
      runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
      connect_ms[s] = connect_sw.seconds() * 1e3;
      if (pooled) {
        Stopwatch osw;
        // Time-to-first-warm-artifact: pool production starts at client
        // construction; the first artifact may land in the local pool
        // or (async lane) already on the server.
        while (client.pool_ready() == 0 && client.prefetched() == 0) {
          if (osw.seconds() > 120.0)
            throw std::runtime_error("loadgen: first warm artifact stalled");
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        ttfw[s] = osw.seconds();
        client.prefetch(args.requests);
        offline[s] = osw.seconds();  // the actual offline push cost
        // Separately, let the pool's background refill (triggered by
        // the acquires above) finish, so no garbling competes for CPU
        // inside the timed online window; this wait is bench hygiene,
        // not offline-phase cost. Sleep-poll: spinning would steal
        // cycles from the very producers being waited on. Deadlined: a
        // parked producer failure is only rethrown on acquire, which
        // this loop never calls — without a bound it would hang CI.
        Stopwatch refill;
        while (client.pool_ready() < args.requests) {
          if (refill.seconds() > 120.0)
            throw std::runtime_error("loadgen: pool refill stalled");
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        warmed.fetch_add(1);
        while (!go.load())
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      Rng srng(31 * s + 7);
      for (size_t r = 0; r < args.requests; ++r) {
        std::vector<float> x(8);
        for (auto& v : x)
          v = (float(srng.next_below(2001)) - 1000.0f) / 2500.0f;
        Stopwatch sw;
        (void)client.infer(x);
        latencies[s].push_back(sw.seconds() * 1e3);
      }
      client.close();
      } catch (...) {
        // A throw escaping the thread would terminate the process;
        // park it (main rethrows after join) and, in pooled mode,
        // unblock the warm barrier so the other sessions can finish.
        errors[s] = std::current_exception();
        warmed.fetch_add(1);
      }
    });
  }
  if (pooled) {
    while (warmed.load() < args.sessions)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    wall.restart();  // timed window starts with every pool warm
    go.store(true);
  }
  for (auto& t : clients) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
  LoadResult r;
  r.wall_s = wall.seconds();
  // stop() drains every session through teardown, so the snapshot below
  // has complete session_wall observations for the accounting block.
  server.stop();
  r.server_stats = server.stats_json();
  r.net = NetCounters::snap() - net_before;
  r.zero_copy = zero_copy;
  // Garbled-table payload per inference, mirroring the server's
  // expected_table_bytes_ accounting (decode-bits frame + tables).
  uint64_t per_infer = 0;
  for (const Circuit& c : synth::compile_model_layers(spec))
    per_infer += 2 * sizeof(Block) + c.stats().table_bytes();
  r.table_bytes = per_infer * server.inferences_served();

  if (args.server_core == runtime::ServerCore::kEventLoop) {
    const size_t hc = std::thread::hardware_concurrency();
    const size_t workers =
        scfg.workers > 0 ? scfg.workers : std::max<size_t>(2, 2 * hc);
    r.serving_threads = workers + 1;  // + the reactor loop
  } else {
    r.serving_threads = args.sessions;  // one handler thread per session
  }

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  r.sessions = args.sessions;
  r.requests = args.requests;
  r.served = server.inferences_served();
  r.pooled = server.inferences_pooled();
  // Sessions prefetch concurrently: the offline phase's wall cost is
  // the slowest session's, not the sum (same for the first-warm time).
  for (double o : offline) r.offline_s = std::max(r.offline_s, o);
  for (double t : ttfw) r.ttfw_s = std::max(r.ttfw_s, t);
  if (!all.empty()) {
    r.p50_ms = all[all.size() / 2];
    r.p95_ms = pct(all, 95);
    r.p99_ms = pct(all, 99);
  }
  std::sort(connect_ms.begin(), connect_ms.end());
  r.connect_p50_ms = pct(connect_ms, 50);
  r.connect_p95_ms = pct(connect_ms, 95);
  r.connect_p99_ms = pct(connect_ms, 99);
  if (r.served != uint64_t(args.sessions * args.requests))
    throw std::runtime_error("loadgen: server served fewer inferences than sent");
  if (pooled && r.pooled != r.served)
    throw std::runtime_error("loadgen: pooled run fell back to on-demand");
  return r;
}

struct ScalingRow {
  const char* core = "";
  LoadResult load;
};

// Concurrency sweep: both cores, one request per session (session churn
// — handshake + a single on-demand inference — is what stresses the
// serving core, not per-request crypto volume). The sweep reuses
// measure_load, so every row is also correctness-checked end to end.
std::vector<ScalingRow> measure_scaling(const Args& base) {
  std::vector<ScalingRow> rows;
  const std::pair<runtime::ServerCore, const char*> cores[] = {
      {runtime::ServerCore::kThreadPerSession, "thread"},
      {runtime::ServerCore::kEventLoop, "event"},
  };
  for (const auto& [core, name] : cores) {
    for (size_t n : {size_t{16}, size_t{64}, size_t{256}, size_t{1024}}) {
      Args a = base;
      a.sessions = n;
      a.requests = 1;
      a.server_core = core;
      std::fprintf(stderr, "loadgen: scaling %s core, %zu sessions...\n",
                   name, n);
      ScalingRow row;
      row.core = name;
      row.load = measure_load(a, /*pooled=*/false);
      rows.push_back(row);
    }
  }
  return rows;
}

// Deterministic chaos soak (measurement 6): every transport on both
// endpoints is wrapped in a seeded FaultChannel and the clients run
// with a self-healing retry budget. Hard-fails unless every inference
// completes AND matches the plaintext reference: a recovered session
// must draw fresh garbled material (the material_poisoned counter in
// the JSON is the audit trail), and a replay of partially consumed
// labels would surface as a wrong result here.
struct ChaosResult {
  size_t sessions = 0, requests = 0;
  uint64_t completed = 0;
  double wall_s = 0;
  NetCounters net;
  uint64_t server_shed = 0;
  std::string server_stats;
};

ChaosResult measure_chaos(const Args& args) {
  const synth::ModelSpec spec = load_spec();
  Rng rng(99);
  BitVec weights;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i) {
    const double v = (double(rng.next_below(2001)) - 1000.0) / 5000.0;
    const BitVec b = Fixed::from_double(v, spec.fmt).to_bits();
    weights.insert(weights.end(), b.begin(), b.end());
  }
  const std::vector<Circuit> chain = synth::compile_model_layers(spec);
  // Plaintext reference label (same encoding as client.infer).
  auto plain_label = [&](const std::vector<float>& x) {
    BitVec bits;
    for (float v : x) {
      const BitVec b =
          Fixed::from_double(static_cast<double>(v), spec.fmt).to_bits();
      bits.insert(bits.end(), b.begin(), b.end());
    }
    size_t consumed = 0;
    for (const Circuit& c : chain) {
      const BitVec w(
          weights.begin() + static_cast<ptrdiff_t>(consumed),
          weights.begin() +
              static_cast<ptrdiff_t>(consumed + c.evaluator_inputs.size()));
      consumed += c.evaluator_inputs.size();
      bits = c.eval(bits, w);
    }
    return static_cast<size_t>(from_bits(bits));
  };

  runtime::ServerConfig scfg;
  scfg.core = args.server_core;
  scfg.io = args.io;
  scfg.max_sessions = std::max<size_t>(args.sessions, 1);
  scfg.max_prefetch = std::max<size_t>(args.requests, 1);
  scfg.stream.eval_threads = args.eval_threads;
  scfg.stream.schedule = args.schedule;
  scfg.chaos.seed = args.chaos_seed;
  scfg.chaos.rate = args.chaos_rate;
  runtime::InferenceServer server(spec, weights, scfg);
  server.start();

  std::vector<std::exception_ptr> errors(args.sessions);
  std::atomic<uint64_t> completed{0};
  const NetCounters before = NetCounters::snap();
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (size_t s = 0; s < args.sessions; ++s) {
    clients.emplace_back([&, s] {
      try {
        runtime::ClientConfig ccfg;
        ccfg.seed = Block{7000 + s, 9000 + s};
        ccfg.stream.schedule = args.schedule;
        ccfg.io = args.io;
        ccfg.pool_target = 2;  // exercise the poisoning path on recovery
        ccfg.async_prefetch = args.async_prefetch;
        // Distinct plan seeds per endpoint: the server's and client's
        // fault sequences stay decorrelated but both reproducible.
        ccfg.chaos.seed = args.chaos_seed ^ 0xc11e47ull;
        ccfg.chaos.rate = args.chaos_rate;
        ccfg.max_retries = 16;
        ccfg.backoff_base_ms = 1;
        ccfg.backoff_cap_ms = 50;
        runtime::InferenceClient client("127.0.0.1", server.port(), spec,
                                        ccfg);
        Rng srng(53 * s + 11);
        for (size_t r = 0; r < args.requests; ++r) {
          std::vector<float> x(8);
          for (auto& v : x)
            v = (float(srng.next_below(2001)) - 1000.0f) / 2500.0f;
          const size_t got = client.infer(x);
          if (got != plain_label(x))
            throw std::runtime_error(
                "chaos: inference result != plaintext reference");
          completed.fetch_add(1);
        }
        // A lane the chaos layer killed makes close() rethrow the
        // parked failure; the inferences above all completed, which is
        // what the soak asserts — a dead lane is a degraded, not
        // broken, session.
        try {
          client.close();
        } catch (...) {
        }
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);

  ChaosResult r;
  r.sessions = args.sessions;
  r.requests = args.requests;
  r.completed = completed.load();
  r.wall_s = wall.seconds();
  server.stop();
  r.server_stats = server.stats_json();
  r.server_shed = server.sessions_shed();
  r.net = NetCounters::snap() - before;
  if (r.completed != uint64_t(args.sessions * args.requests))
    throw std::runtime_error("chaos: not every inference completed");
  return r;
}

// The effective send path: --io uring only takes hold where the kernel
// probe passes (net/uring.h); everywhere else sends fall back to
// sendmsg, and the JSON must say which one actually ran.
const char* effective_io(const Args& args) {
  return args.io == runtime::IoBackend::kUring && net::uring_supported()
             ? "uring"
             : "epoll";
}

// Data-plane counter fragment shared by every load row: which send
// path ran, what it copied, and how the pool slabs circulated.
std::string net_json(const Args& args, const LoadResult& l) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "\"io\": \"%s\", \"zero_copy\": %s, \"bytes_copied\": %llu, "
      "\"table_bytes\": %llu, \"bytes_copied_per_table_byte\": %.6f, "
      "\"sends_vectored\": %llu, \"syscalls_send\": %llu, "
      "\"slab_acquire\": %llu, \"slab_recycle\": %llu, "
      "\"ring_chunk_reuse\": %llu, "
      "\"fault_injected\": %llu, \"fault_reset\": %llu, "
      "\"client_retries\": %llu, \"sessions_recovered\": %llu, "
      "\"material_poisoned\": %llu",
      effective_io(args), l.zero_copy ? "true" : "false",
      static_cast<unsigned long long>(l.net.bytes_copied),
      static_cast<unsigned long long>(l.table_bytes),
      l.bytes_copied_per_table_byte(),
      static_cast<unsigned long long>(l.net.sends_vectored),
      static_cast<unsigned long long>(l.net.syscalls_send),
      static_cast<unsigned long long>(l.net.slab_acquire),
      static_cast<unsigned long long>(l.net.slab_recycle),
      static_cast<unsigned long long>(l.net.chunk_reuse),
      static_cast<unsigned long long>(l.net.fault_injected),
      static_cast<unsigned long long>(l.net.fault_reset),
      static_cast<unsigned long long>(l.net.retries),
      static_cast<unsigned long long>(l.net.recovered),
      static_cast<unsigned long long>(l.net.poisoned));
  return buf;
}

void emit_json(std::FILE* f, const Args& args, const OverlapResult& o,
               const OfflineResult& off, const LoadResult& l,
               const LoadResult& lcopy, const LoadResult* pre,
               const std::vector<ScalingRow>* scaling,
               const ChaosResult* chaos) {
  std::fprintf(f, "{\n  \"bench\": \"loadgen_inference\",\n");
  std::fprintf(f, "  \"scheduled\": %s,\n", args.schedule ? "true" : "false");
  // Which AES kernel produced every rate below — without this a vaes16
  // row and a bitsliced8 row are indistinguishable in dashboards.
  std::fprintf(f, "  \"hash_backend\": \"%s\",\n  \"cpu_features\": \"%s\",\n",
               hash_backend().name, hash_backend_cpu_features().c_str());
  // cores / core_bound: a shard_speedup below 1.0 on a machine with
  // fewer cores than shard threads is the runner being core-bound, not
  // a sharding regression — record the context with the number.
  const size_t cores = std::thread::hardware_concurrency();
  std::fprintf(f,
               "  \"offline\": {\"layers\": %zu, \"gates_per_layer\": %zu, "
               "\"shard_threads\": %zu, \"cores\": %zu, "
               "\"shard_speedup_core_bound\": %s, "
               "\"time_to_first_warm_s\": %.6f, "
               "\"time_to_first_warm_sequential_s\": %.6f, "
               "\"shard_speedup\": %.3f},\n",
               off.layers, off.gates, off.shard_threads, cores,
               cores < off.shard_threads ? "true" : "false",
               off.ttfw_sharded_s, off.ttfw_sequential_s, off.speedup());
  std::fprintf(f,
               "  \"overlap\": {\"layers\": %zu, \"gates_per_layer\": %zu, "
               "\"garble_threads\": %zu, \"wall_s\": %.6f, \"garble_s\": %.6f, "
               "\"transfer_s\": %.6f, \"eval_s\": %.6f, \"phase_sum_s\": %.6f, "
               "\"setup_s\": %.6f, \"overlap_ratio\": %.4f},\n",
               o.layers, o.gates, o.threads, o.wall_s, o.garble_s,
               o.transfer_s, o.eval_s, o.phase_sum(), o.setup_s,
               o.phase_sum() > 0 ? o.wall_s / o.phase_sum() : 0.0);
  // The zero-copy vs copy-fallback headline: same on-demand load twice,
  // identical wire bytes, different data plane. The pooled-slab path
  // must memcpy at least 2x less per shipped table byte.
  std::fprintf(
      f,
      "  \"data_plane\": {\"io_requested\": \"%s\", \"io\": \"%s\", "
      "\"uring_supported\": %s, "
      "\"zero_copy\": {%s, \"p50_ms\": %.3f}, "
      "\"copy_fallback\": {%s, \"p50_ms\": %.3f}, "
      "\"copy_reduction\": %.2f},\n",
      args.io == runtime::IoBackend::kUring ? "uring" : "epoll",
      effective_io(args), net::uring_supported() ? "true" : "false",
      net_json(args, l).c_str(), l.p50_ms,
      net_json(args, lcopy).c_str(), lcopy.p50_ms,
      // 1-byte floor: the zero-copy path routinely copies NOTHING, and
      // a 0-denominator ratio would report the win as 0.
      double(lcopy.net.bytes_copied) /
          double(std::max<uint64_t>(l.net.bytes_copied, 1)));
  if (chaos != nullptr) {
    // Self-healing soak: measure_chaos already hard-failed unless every
    // inference completed byte-correct, so this section existing at all
    // means recovery worked; the counters say how much it was needed.
    std::fprintf(
        f,
        "  \"chaos\": {\"seed\": %llu, \"rate\": %.4f, \"sessions\": %zu, "
        "\"requests_per_session\": %zu, \"completed\": %llu, "
        "\"wall_s\": %.6f, \"faults_injected\": %llu, "
        "\"fault_resets\": %llu, \"client_retries\": %llu, "
        "\"sessions_recovered\": %llu, \"material_poisoned\": %llu, "
        "\"server_shed\": %llu, \"byte_correct\": true, "
        "\"server_stats\": %s},\n",
        static_cast<unsigned long long>(args.chaos_seed), args.chaos_rate,
        chaos->sessions, chaos->requests,
        static_cast<unsigned long long>(chaos->completed), chaos->wall_s,
        static_cast<unsigned long long>(chaos->net.fault_injected),
        static_cast<unsigned long long>(chaos->net.fault_reset),
        static_cast<unsigned long long>(chaos->net.retries),
        static_cast<unsigned long long>(chaos->net.recovered),
        static_cast<unsigned long long>(chaos->net.poisoned),
        static_cast<unsigned long long>(chaos->server_shed),
        chaos->server_stats.empty() ? "{}" : chaos->server_stats.c_str());
  }
  const bool more_after_load = pre != nullptr || scaling != nullptr;
  std::fprintf(f,
               "  \"load\": {\"sessions\": %zu, \"requests_per_session\": %zu, "
               "\"server_core\": \"%s\", \"serving_threads\": %zu, "
               "\"inferences\": %llu, \"wall_s\": %.6f, \"sessions_per_s\": "
               "%.3f, \"requests_per_s\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": "
               "%.3f, \"p99_ms\": %.3f, \"connect_p50_ms\": %.3f, "
               "\"connect_p95_ms\": %.3f, \"connect_p99_ms\": %.3f, "
               "%s, \"server_stats\": %s}%s\n",
               l.sessions, l.requests,
               args.server_core == runtime::ServerCore::kEventLoop ? "event"
                                                                   : "thread",
               l.serving_threads,
               static_cast<unsigned long long>(l.served), l.wall_s,
               l.sessions_per_s(), l.requests_per_s(), l.p50_ms, l.p95_ms,
               l.p99_ms, l.connect_p50_ms, l.connect_p95_ms, l.connect_p99_ms,
               net_json(args, l).c_str(),
               l.server_stats.empty() ? "{}" : l.server_stats.c_str(),
               more_after_load ? "," : "");
  if (pre != nullptr) {
    // Warm-pool run: p50/p95 cover the online phase only; the offline
    // garbling + prefetch cost is reported beside it, not hidden.
    std::fprintf(
        f,
        "  \"load_precomputed\": {\"sessions\": %zu, "
        "\"requests_per_session\": %zu, \"inferences\": %llu, "
        "\"pooled\": %llu, \"pool_hit_rate\": %.4f, "
        "\"shard_threads\": %zu, \"async_prefetch\": %s, "
        "\"time_to_first_warm_s\": %.6f, "
        "\"offline_prefetch_s\": %.6f, \"wall_s\": %.6f, "
        "\"requests_per_s\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"connect_p50_ms\": %.3f, "
        "\"connect_p95_ms\": %.3f, \"connect_p99_ms\": %.3f, "
        "\"p50_speedup_vs_ondemand\": %.3f, %s, \"server_stats\": %s}\n",
        pre->sessions, pre->requests,
        static_cast<unsigned long long>(pre->served),
        static_cast<unsigned long long>(pre->pooled), pre->pool_hit_rate(),
        args.shard_threads, args.async_prefetch ? "true" : "false",
        pre->ttfw_s, pre->offline_s, pre->wall_s, pre->requests_per_s(),
        pre->p50_ms, pre->p95_ms, pre->p99_ms, pre->connect_p50_ms,
        pre->connect_p95_ms, pre->connect_p99_ms,
        pre->p50_ms > 0 ? l.p50_ms / pre->p50_ms : 0.0,
        net_json(args, *pre).c_str(),
        pre->server_stats.empty() ? "{}" : pre->server_stats.c_str());
    if (scaling != nullptr) std::fprintf(f, ",");
  }
  if (scaling != nullptr) {
    std::fprintf(f, "  \"load_scaling\": [\n");
    for (size_t i = 0; i < scaling->size(); ++i) {
      const ScalingRow& row = (*scaling)[i];
      std::fprintf(f,
                   "    {\"server_core\": \"%s\", \"sessions\": %zu, "
                   "\"serving_threads\": %zu, \"wall_s\": %.6f, "
                   "\"sessions_per_s\": %.3f, \"p50_ms\": %.3f, "
                   "\"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                   "\"connect_p50_ms\": %.3f, \"connect_p95_ms\": %.3f, "
                   "\"connect_p99_ms\": %.3f, %s, \"server_stats\": %s}%s\n",
                   row.core, row.load.sessions, row.load.serving_threads,
                   row.load.wall_s, row.load.sessions_per_s(),
                   row.load.p50_ms, row.load.p95_ms, row.load.p99_ms,
                   row.load.connect_p50_ms, row.load.connect_p95_ms,
                   row.load.connect_p99_ms, net_json(args, row.load).c_str(),
                   row.load.server_stats.empty()
                       ? "{}"
                       : row.load.server_stats.c_str(),
                   i + 1 < scaling->size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
  }
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  // The 1024-session scaling point holds ~2 fds per session in this one
  // process (server + client end of every loopback socket, plus lanes):
  // lift the soft fd limit to the hard cap up front.
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &rl);
  }
  try {
    const Args args = parse_args(argc, argv);
    if (!args.hash_backend.empty() && !set_hash_backend(args.hash_backend))
      throw std::runtime_error("--hash-backend " + args.hash_backend +
                               ": unknown or unavailable on this host");
    if (!args.trace.empty()) obs::set_trace_enabled(true);
    const OverlapResult overlap = measure_overlap(args);
    const OfflineResult offline = measure_offline(args);
    const LoadResult load = measure_load(args, /*pooled=*/false);
    // Same load with the zero-copy table path disabled: the copy
    // fallback reference for the data_plane comparison.
    const LoadResult load_copy =
        measure_load(args, /*pooled=*/false, /*zero_copy=*/false);
    LoadResult pre;
    if (args.precomputed) pre = measure_load(args, /*pooled=*/true);
    const LoadResult* pre_p = args.precomputed ? &pre : nullptr;
    std::vector<ScalingRow> scaling;
    if (args.scaling) scaling = measure_scaling(args);
    const std::vector<ScalingRow>* scl_p = args.scaling ? &scaling : nullptr;
    ChaosResult chaos;
    if (args.chaos_rate > 0) chaos = measure_chaos(args);
    const ChaosResult* chaos_p = args.chaos_rate > 0 ? &chaos : nullptr;
    if (!args.trace.empty()) {
      obs::write_chrome_trace(args.trace);
      std::fprintf(stderr, "loadgen: wrote %zu trace events (%llu dropped) to %s\n",
                   obs::trace_collected(),
                   static_cast<unsigned long long>(obs::trace_dropped()),
                   args.trace.c_str());
    }
    emit_json(stdout, args, overlap, offline, load, load_copy, pre_p, scl_p, chaos_p);
    if (!args.out.empty()) {
      std::FILE* f = std::fopen(args.out.c_str(), "w");
      if (f == nullptr) throw std::runtime_error("cannot open " + args.out);
      emit_json(f, args, overlap, offline, load, load_copy, pre_p, scl_p, chaos_p);
      std::fclose(f);
    }
    if (overlap.wall_s >= overlap.phase_sum()) {
      std::fprintf(stderr,
                   "loadgen: WARNING: no measurable overlap (wall %.3fs >= "
                   "phase sum %.3fs)\n",
                   overlap.wall_s, overlap.phase_sum());
      if (args.strict_overlap) return 1;
    }
    if (args.precomputed && pre.p50_ms >= load.p50_ms) {
      std::fprintf(stderr,
                   "loadgen: WARNING: warm pool not faster (pooled p50 "
                   "%.3fms >= on-demand p50 %.3fms)\n",
                   pre.p50_ms, load.p50_ms);
      if (args.strict_precomputed) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen_inference: %s\n", e.what());
    return 2;
  }
}
