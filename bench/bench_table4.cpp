// Table 4 reproduction: per-benchmark gate counts, communication,
// computation and execution time WITHOUT pre-processing, using the
// Table 2 cost model at the paper's constants (62/164 clks per gate,
// 3.4 GHz, 81.8 MB/s effective bandwidth).
//
// Additionally executes benchmark 3 (the smallest) through the REAL
// two-party GC protocol end-to-end — garbling, OT-extension weight
// transfer, evaluation, decoding — and reports measured bytes/time so
// the analytic rows can be sanity-checked against a live run.
// (Set DEEPSECURE_SKIP_LIVE=1 to skip the live run.)
#include <cstdio>
#include <cstdlib>

#include "core/benchmark_zoo.h"
#include "core/deepsecure.h"
#include "cost/calibration.h"
#include "data/synthetic.h"
#include "support/table.h"

using namespace deepsecure;

int main() {
  std::printf("Table 4: benchmarks without data/network pre-processing\n\n");

  TablePrinter t({"Name", "#XOR", "#non-XOR", "Comm(MB)", "Comp(s)",
                  "Exec(s)", "paper nXOR", "paper Comm", "paper Exec"});
  for (const auto& z : core::paper_zoo()) {
    const auto g = synth::count_model(z.base);
    const auto c = cost::cost_from_gates(g);
    t.add_row({z.name, TablePrinter::sci(static_cast<double>(g.num_xor)),
               TablePrinter::sci(static_cast<double>(g.num_non_xor)),
               TablePrinter::num(c.comm_bytes / 1e6, 1),
               TablePrinter::num(c.comp_seconds, 2),
               TablePrinter::num(c.exec_seconds, 2),
               TablePrinter::sci(z.paper_base.num_non_xor),
               TablePrinter::num(z.paper_base.comm_mb, 0),
               TablePrinter::num(z.paper_base.exec_s, 2)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::printf(
      "\nGate totals exceed the paper's by the MULT ratio documented in\n"
      "bench_table3 (signed windowed multiplier vs. synthesized integer\n"
      "multiplier); relative ordering and the comm-bound execution shape\n"
      "match.\n");

  // Host calibration (Section 3.1.1 subroutines).
  std::printf("\nHost calibration (this machine):\n");
  const auto cal = cost::calibrate(100000);
  std::printf("  non-XOR throughput : %.2fM gates/s (paper: 2.56M)\n",
              cal.non_xor_gates_per_s / 1e6);
  std::printf("  XOR throughput     : %.2fM gates/s (paper: 5.11M)\n",
              cal.xor_gates_per_s / 1e6);
  std::printf("  OT extension       : %.0fK transfers/s\n", cal.ot_per_s / 1e3);

  if (std::getenv("DEEPSECURE_SKIP_LIVE") != nullptr) {
    std::printf("\n[live benchmark-3 run skipped]\n");
    return 0;
  }

  // Live end-to-end run of benchmark 3 (617-50FC-Tanh-26FC) with a
  // trained model on ISOLET-like data.
  std::printf("\nLive GC execution of benchmark 3 (617-50-26, TanhCORDIC):\n");
  const nn::Dataset ds = data::make_isolet_like(390, 5);
  Rng rng(3);
  nn::Network model(nn::Shape{1, 1, 617});
  model.dense(50, rng).act(nn::Act::kTanh).dense(26, rng);
  nn::TrainConfig tc;
  tc.epochs = 12;
  tc.lr = 0.005f;  // wide inputs need a smaller step
  nn::train(model, ds, tc);
  nn::scale_for_fixed(model, ds.x);

  SecureInferenceOptions opt;
  opt.seed = Block{2018, 6};
  const auto res = secure_infer(model, ds.x[0], opt);
  std::printf("  label %zu (fixed-point model: %zu, float model: %zu, true: %zu)\n",
              res.label, nn::fixed_predict(model, ds.x[0], opt.fmt),
              model.predict(ds.x[0]), ds.y[0]);
  std::printf("  non-XOR gates       : %.3e\n",
              static_cast<double>(res.gates.num_non_xor));
  std::printf("  client->server      : %.1f MB (tables+labels)\n",
              static_cast<double>(res.client_to_server_bytes) / 1e6);
  std::printf("  server->client      : %.2f MB (OT columns)\n",
              static_cast<double>(res.server_to_client_bytes) / 1e6);
  std::printf("  wall time (local)   : %.2f s\n", res.wall_seconds);
  std::printf("  garble time         : %.2f s\n",
              res.garbler_trace.sum_garble());
  std::printf("  eval time           : %.2f s\n",
              res.evaluator_trace.sum_eval());
  const double exec_at_paper_bw =
      static_cast<double>(res.client_to_server_bytes) / 81.8e6;
  std::printf("  exec @ 81.8 MB/s    : %.2f s (paper benchmark 3: 2.95 s)\n",
              exec_at_paper_bw);
  return 0;
}
