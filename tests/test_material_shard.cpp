// Offline-phase scaling: intra-artifact window sharding. The headline
// invariant is byte-identity — garble_offline with its batch windows
// sharded across a ThreadPool must produce EXACTLY the artifact the
// sequential path produces (table stream, labels, decode bits, delta,
// fingerprint), at every thread count, so sharding can never change
// what the evaluator consumes.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "circuit/bench_circuits.h"
#include "gc/material.h"
#include "runtime/material_pool.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace deepsecure {
namespace {

std::vector<Circuit> wide_chain(size_t gates, size_t layers) {
  std::vector<Circuit> chain;
  for (size_t l = 0; l < layers; ++l)
    chain.push_back(bench_circuits::wide_chain_layer(gates));
  return chain;
}

void expect_identical(const GarbledMaterial& a, const GarbledMaterial& b,
                      const char* what) {
  EXPECT_EQ(a.fingerprint, b.fingerprint) << what;
  EXPECT_TRUE(a.delta == b.delta) << what;
  EXPECT_EQ(a.data_zeros, b.data_zeros) << what;
  EXPECT_EQ(a.eval_zeros, b.eval_zeros) << what;
  EXPECT_EQ(a.decode_bits, b.decode_bits) << what;
  // Full-stream equality, not just a hash: the table stream is the
  // artifact (EXPECT, not ASSERT, so every shard count reports).
  EXPECT_EQ(a.tables, b.tables) << what;
}

TEST(MaterialShard, ShardedGarbleOfflineByteIdenticalAcrossThreadCounts) {
  // Windows wide enough to actually shard (> min_shard_gates per slice)
  // plus a capacity-spilling layer so mid-level drains are exercised.
  const std::vector<Circuit> chain = wide_chain(3 * kGcMaxBatchWindow + 77, 2);
  const Block seed{2026, 727};

  const GarbledMaterial sequential = garble_offline(chain, seed);
  for (size_t threads = 1; threads <= 4; ++threads) {
    ThreadPool pool(threads);
    GcOptions opt;
    opt.pool = &pool;
    const GarbledMaterial sharded = garble_offline(chain, seed, opt);
    expect_identical(sequential, sharded,
                     threads == 1   ? "1 shard thread"
                     : threads == 2 ? "2 shard threads"
                     : threads == 3 ? "3 shard threads"
                                    : "4 shard threads");
  }
}

TEST(MaterialShard, ScalarPipelineAgreesWithShardedBatched) {
  // The scalar reference path never shards; the sharded batched path
  // must still land on its exact byte stream.
  const std::vector<Circuit> chain = wide_chain(kGcMaxBatchWindow + 33, 1);
  const Block seed{11, 22};

  GcOptions scalar;
  scalar.pipeline = GcPipeline::kScalar;
  const GarbledMaterial reference = garble_offline(chain, seed, scalar);

  ThreadPool pool(3);
  GcOptions sharded;
  sharded.pool = &pool;
  expect_identical(reference, garble_offline(chain, seed, sharded),
                   "scalar vs sharded batched");
}

TEST(MaterialShard, PoolShardThreadsProduceIdenticalArtifactSequence) {
  // A MaterialPool with shard_threads must hand out the same artifact
  // sequence as an unsharded pool from the same seed: sharding changes
  // only where the hashing runs. One producer keeps the seed->artifact
  // order deterministic on both sides.
  const std::vector<Circuit> chain = wide_chain(kGcMaxBatchWindow, 1);

  runtime::MaterialPoolConfig base;
  base.target = 2;
  base.producer_threads = 1;
  base.seed = Block{7, 77};
  runtime::MaterialPoolConfig sharded = base;
  sharded.shard_threads = 3;

  runtime::MaterialPool plain(chain, GcOptions{}, base);
  runtime::MaterialPool fast(chain, GcOptions{}, sharded);
  for (int i = 0; i < 2; ++i) {
    const GarbledMaterial a = plain.acquire();
    const GarbledMaterial b = fast.acquire();
    expect_identical(a, b, i == 0 ? "artifact 0" : "artifact 1");
  }
}

TEST(MaterialShard, ShardedPoolRefillsAfterDrain) {
  // Drain-and-refill still behaves with intra-artifact sharding on:
  // the shared shard pool serves successive producer tasks.
  const std::vector<Circuit> chain = wide_chain(2 * kGcMaxBatchWindow, 1);
  runtime::MaterialPoolConfig cfg;
  cfg.target = 2;
  cfg.producer_threads = 2;
  cfg.shard_threads = 2;
  cfg.seed = Block{5, 55};
  runtime::MaterialPool pool(chain, GcOptions{}, cfg);

  const GarbledMaterial a = pool.acquire();
  const GarbledMaterial b = pool.acquire();
  EXPECT_FALSE(a.delta == b.delta);  // distinct artifacts
  Stopwatch sw;
  while (pool.ready() < 2 && sw.seconds() < 30.0) std::this_thread::yield();
  EXPECT_GE(pool.ready(), 2u);
}

}  // namespace
}  // namespace deepsecure
