#include <gtest/gtest.h>

#include "synth/divider.h"
#include "synth/mult.h"
#include "test_util.h"

namespace deepsecure::synth {
namespace {

using test::random_fixed;

int64_t run_mult(int64_t a, int64_t b, FixedFormat fmt) {
  Builder bld;
  const Bus x = input_fixed(bld, Party::kGarbler, fmt);
  const Bus y = input_fixed(bld, Party::kEvaluator, fmt);
  bld.outputs(mult_fixed(bld, x, y, fmt.frac_bits));
  const Circuit c = bld.build();
  const BitVec out = c.eval(Fixed::from_raw(a, fmt).to_bits(),
                            Fixed::from_raw(b, fmt).to_bits());
  return Fixed::from_bits(out, fmt).raw();
}

class MultSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MultSweep, MatchesFixedReference) {
  const size_t width = GetParam();
  const FixedFormat fmt{width, width - 4};
  Rng rng(width * 31);
  for (int i = 0; i < 60; ++i) {
    const Fixed a = random_fixed(rng, fmt);
    const Fixed b = random_fixed(rng, fmt);
    EXPECT_EQ(run_mult(a.raw(), b.raw(), fmt), (a * b).raw())
        << "w=" << width << " a=" << a.raw() << " b=" << b.raw();
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultSweep, ::testing::Values(8, 12, 16, 20));

TEST(Mult, ExhaustiveSmallSigned) {
  const FixedFormat fmt{5, 2};
  for (int a = -16; a < 16; ++a)
    for (int b = -16; b < 16; ++b)
      EXPECT_EQ(run_mult(a, b, fmt),
                (Fixed::from_raw(a, fmt) * Fixed::from_raw(b, fmt)).raw())
          << a << "*" << b;
}

TEST(Mult, IntegerLowBits) {
  const FixedFormat fmt{16, 0};
  Builder bld;
  const Bus x = input_fixed(bld, Party::kGarbler, fmt);
  const Bus y = input_fixed(bld, Party::kEvaluator, fmt);
  bld.outputs(mult_low(bld, x, y));
  const Circuit c = bld.build();
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const int64_t a = deepsecure::sign_extend(rng.next_u64(), 16);
    const int64_t b = deepsecure::sign_extend(rng.next_u64(), 16);
    const BitVec out = c.eval(Fixed::from_raw(a, fmt).to_bits(),
                              Fixed::from_raw(b, fmt).to_bits());
    EXPECT_EQ(Fixed::from_bits(out, fmt).raw(),
              deepsecure::sign_extend(static_cast<uint64_t>(a * b), 16));
  }
}

TEST(Mult, ConstantMultFoldsGates) {
  const FixedFormat fmt = kDefaultFormat;
  Builder b1;
  const Bus x1 = input_fixed(b1, Party::kGarbler, fmt);
  b1.outputs(mult_const_fixed(b1, x1, 0.25, fmt));  // power of two
  Builder b2;
  const Bus x2 = input_fixed(b2, Party::kGarbler, fmt);
  const Bus y2 = input_fixed(b2, Party::kEvaluator, fmt);
  b2.outputs(mult_fixed(b2, x2, y2, fmt.frac_bits));
  // A power-of-two constant multiply must be far cheaper than generic.
  EXPECT_LT(b1.and_count() * 5, b2.and_count());

  // And it must still be correct.
  Builder b3;
  const Bus x3 = input_fixed(b3, Party::kGarbler, fmt);
  b3.outputs(mult_const_fixed(b3, x3, 0.3125, fmt));
  const Circuit c = b3.build();
  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    const Fixed a = random_fixed(rng, fmt);
    const BitVec out = c.eval(a.to_bits(), {});
    EXPECT_EQ(Fixed::from_bits(out, fmt).raw(),
              (a * Fixed::from_double(0.3125, fmt)).raw());
  }
}

int64_t run_div(int64_t a, int64_t b, FixedFormat fmt, bool fixed_point) {
  Builder bld;
  const Bus x = input_fixed(bld, Party::kGarbler, fmt);
  const Bus y = input_fixed(bld, Party::kEvaluator, fmt);
  bld.outputs(fixed_point ? div_fixed(bld, x, y, fmt.frac_bits)
                          : div_signed(bld, x, y));
  const Circuit c = bld.build();
  const BitVec out = c.eval(Fixed::from_raw(a, fmt).to_bits(),
                            Fixed::from_raw(b, fmt).to_bits());
  return Fixed::from_bits(out, fmt).raw();
}

TEST(Div, SignedIntegerQuotient) {
  const FixedFormat fmt{16, 0};
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    int64_t a = deepsecure::sign_extend(rng.next_u64(), 15);
    int64_t b = deepsecure::sign_extend(rng.next_u64(), 12);
    if (b == 0) b = 3;
    EXPECT_EQ(run_div(a, b, fmt, false), a / b) << a << "/" << b;
  }
}

TEST(Div, ExhaustiveSmall) {
  const FixedFormat fmt{6, 0};
  for (int a = -32; a < 32; ++a)
    for (int b = -32; b < 32; ++b) {
      if (b == 0) continue;
      // Compare under the format's wrap-around semantics (-32/-1 wraps).
      EXPECT_EQ(run_div(a, b, fmt, false), Fixed::from_raw(a / b, fmt).raw())
          << a << "/" << b;
    }
}

TEST(Div, FixedPointQuotient) {
  const FixedFormat fmt = kDefaultFormat;
  Rng rng(29);
  for (int i = 0; i < 40; ++i) {
    const double a = rng.next_uniform(-3, 3);
    double b = rng.next_uniform(0.5, 4.0) * (rng.next_bool() ? 1 : -1);
    const Fixed fa = Fixed::from_double(a, fmt);
    const Fixed fb = Fixed::from_double(b, fmt);
    const int64_t q = run_div(fa.raw(), fb.raw(), fmt, true);
    const double expect = fa.to_double() / fb.to_double();
    EXPECT_NEAR(static_cast<double>(q) / 4096.0, expect, 2.0 / 4096.0)
        << a << "/" << b;
  }
}

TEST(Div, UnsignedCore) {
  const FixedFormat fmt{8, 0};
  Builder bld;
  const Bus x = input_bus(bld, Party::kGarbler, 8);
  const Bus y = input_bus(bld, Party::kEvaluator, 8);
  bld.outputs(div_unsigned(bld, x, y));
  const Circuit c = bld.build();
  for (uint64_t a : {0ull, 1ull, 17ull, 128ull, 255ull}) {
    for (uint64_t b : {1ull, 2ull, 3ull, 100ull, 255ull}) {
      const BitVec out = c.eval(to_bits(a, 8), to_bits(b, 8));
      EXPECT_EQ(from_bits(out), a / b) << a << "/" << b;
    }
  }
}

}  // namespace
}  // namespace deepsecure::synth
