// The paper's four evaluation benchmarks (Section 4.5) as circuit model
// specs, together with the published Table 4/5 numbers they are compared
// against, and the pre-processing ("compaction") variants.
//
// Compaction knobs: the paper reports per-benchmark compaction folds
// (9/12/6/120) and the resulting gate-count improvements, but not the
// exact per-layer projection dimensions / pruning rates. We pick
// (projection factor, keep fractions) that realize the reported folds;
// EXPERIMENTS.md records the resulting improvement factors next to the
// paper's.
#pragma once

#include "cost/cost_model.h"
#include "synth/layer_circuits.h"

namespace deepsecure::core {

struct PaperRow {
  double num_xor = 0;
  double num_non_xor = 0;
  double comm_mb = 0;
  double comp_s = 0;
  double exec_s = 0;
};

struct ZooEntry {
  std::string name;
  std::string architecture;   // human-readable topology string
  synth::ModelSpec base;      // Table 4 variant
  synth::ModelSpec compact;   // Table 5 variant (projection + pruning)
  std::string compaction;     // e.g. "12-fold"
  PaperRow paper_base;        // published Table 4 row
  PaperRow paper_compact;     // published Table 5 row
  double paper_improvement = 0.0;
};

/// All four benchmarks. `fmt` defaults to the paper's 16-bit format.
std::vector<ZooEntry> paper_zoo(FixedFormat fmt = kDefaultFormat);

/// Benchmark 1 only (the CryptoNets comparison target of Table 6).
ZooEntry benchmark1(FixedFormat fmt = kDefaultFormat);

}  // namespace deepsecure::core
