#include <gtest/gtest.h>

#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/prg.h"

namespace deepsecure {
namespace {

using F = Fe25519;
using P = Ed25519Point;

F rand_fe(Prg& prg) {
  uint8_t bytes[32];
  prg.fill_bytes(bytes, sizeof(bytes));
  bytes[31] &= 0x7F;
  return F::from_bytes(bytes);
}

Ed25519Scalar rand_scalar(Prg& prg) {
  Ed25519Scalar s{};
  prg.fill_bytes(s.data(), s.size());
  s[31] &= 0x7F;
  return s;
}

TEST(Fe25519, FieldAxioms) {
  Prg prg(Block{1, 1});
  for (int i = 0; i < 20; ++i) {
    const F a = rand_fe(prg), b = rand_fe(prg), c = rand_fe(prg);
    EXPECT_TRUE(F::eq(F::add(a, b), F::add(b, a)));
    EXPECT_TRUE(F::eq(F::mul(a, b), F::mul(b, a)));
    EXPECT_TRUE(F::eq(F::mul(a, F::add(b, c)),
                      F::add(F::mul(a, b), F::mul(a, c))));
    EXPECT_TRUE(F::eq(F::add(a, F::neg(a)), F::zero()));
    EXPECT_TRUE(F::eq(F::sub(a, b), F::add(a, F::neg(b))));
  }
}

TEST(Fe25519, InverseIsInverse) {
  Prg prg(Block{2, 2});
  for (int i = 0; i < 10; ++i) {
    const F a = rand_fe(prg);
    if (a.is_zero()) continue;
    EXPECT_TRUE(F::eq(F::mul(a, F::invert(a)), F::one()));
  }
}

TEST(Fe25519, BytesRoundTrip) {
  Prg prg(Block{3, 3});
  for (int i = 0; i < 20; ++i) {
    const F a = rand_fe(prg);
    uint8_t bytes[32];
    a.to_bytes(bytes);
    const F b = F::from_bytes(bytes);
    EXPECT_TRUE(F::eq(a, b));
  }
}

TEST(Fe25519, CanonicalReductionOfP) {
  // p itself must serialize to zero.
  uint8_t p_bytes[32] = {0xED, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                         0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                         0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                         0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_TRUE(F::from_bytes(p_bytes).is_zero());
}

TEST(Fe25519, CswapWorks) {
  Prg prg(Block{4, 4});
  F a = rand_fe(prg), b = rand_fe(prg);
  const F a0 = a, b0 = b;
  F::cswap(a, b, 0);
  EXPECT_TRUE(F::eq(a, a0));
  F::cswap(a, b, 1);
  EXPECT_TRUE(F::eq(a, b0));
  EXPECT_TRUE(F::eq(b, a0));
}

TEST(Ed25519, BasePointOnCurve) {
  EXPECT_TRUE(P::base().on_curve());
  EXPECT_TRUE(P::identity().on_curve());
}

TEST(Ed25519, GroupLaws) {
  const P b = P::base();
  const P b2a = P::dbl(b);
  const P b2b = P::add(b, b);
  EXPECT_TRUE(P::eq(b2a, b2b));
  EXPECT_TRUE(b2a.on_curve());

  // Associativity spot-check: (B+2B)+2B == B+(2B+2B).
  const P lhs = P::add(P::add(b, b2a), b2a);
  const P rhs = P::add(b, P::add(b2a, b2a));
  EXPECT_TRUE(P::eq(lhs, rhs));

  // Identity and inverse.
  EXPECT_TRUE(P::eq(P::add(b, P::identity()), b));
  EXPECT_TRUE(P::add(b, P::neg(b)).is_identity());
}

TEST(Ed25519, OrderAnnihilatesBase) {
  const P lb = P::base_mul(ed25519_order());
  EXPECT_TRUE(lb.is_identity());
}

TEST(Ed25519, ScalarMulMatchesRepeatedAdd) {
  Ed25519Scalar five{};
  five[0] = 5;
  const P p5 = P::base_mul(five);
  P acc = P::identity();
  for (int i = 0; i < 5; ++i) acc = P::add(acc, P::base());
  EXPECT_TRUE(P::eq(p5, acc));
}

TEST(Ed25519, DiffieHellmanAgreement) {
  // The property the base OT relies on: a(bG) == b(aG).
  Prg prg(Block{5, 5});
  for (int i = 0; i < 4; ++i) {
    const auto a = rand_scalar(prg);
    const auto b = rand_scalar(prg);
    const P ab = P::mul(P::base_mul(b), a);
    const P ba = P::mul(P::base_mul(a), b);
    EXPECT_TRUE(P::eq(ab, ba));
  }
}

TEST(Ed25519, EncodeDecodeRoundTrip) {
  Prg prg(Block{6, 6});
  const P p = P::mul(P::base(), rand_scalar(prg));
  const auto enc = p.encode();
  const auto q = P::decode(enc.data());
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(P::eq(p, *q));
}

TEST(Ed25519, DecodeRejectsOffCurve) {
  std::array<uint8_t, 64> junk{};
  junk[0] = 2;  // x = 2, y = 0 is not on the curve
  EXPECT_FALSE(P::decode(junk.data()).has_value());
}

}  // namespace
}  // namespace deepsecure
