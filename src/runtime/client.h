// Client driver for the streaming inference server: the data owner
// (Alice, garbler). Connects over TCP, performs the session handshake
// (chain fingerprint + wire-format negotiation), and then runs any
// number of secure inferences over one session — the base-OT setup and
// the OT-extension state amortize across requests.
//
// Two request paths:
//   * on-demand: each infer garbles on the request path, framed so the
//     server evaluates while the client is still garbling (PR 2).
//   * pooled (offline/online split): a MaterialPool garbles whole
//     instances in the background; prefetch() pushes them to the server
//     ahead of requests (tables, decode bits, and the precomputed-OT
//     label resolution all travel offline), and an infer against
//     prefetched material sends only the active data labels and waits
//     for the result — no garbling, no OT on the request path. A
//     drained pool falls back to on-demand transparently.
//
// Cross-request pipelining: begin_infer_bits/finish_infer expose the
// send and receive halves of a pooled inference, so a client can queue
// several kInfer frames back-to-back and the server works through them
// while later requests are already in flight.
//
// Async prefetch lane (protocol v4): with ClientConfig::async_prefetch
// the client opens a SECOND connection to the server's lane listener
// (port + single-use token from the hello ack) and a background lane
// thread refills the server-side store through it — pool artifacts are
// pushed concurrently with in-flight kInfer traffic on the primary
// connection, so a drain-heavy burst no longer stalls its inference
// pipeline to re-prefetch. The lane thread is the only writer of the
// lane connection; the primary connection stays single-threaded.
//
// Hot handoffs ride lock-free SPSC rings (support/spsc_ring.h):
//   * credits_ — the per-session prefetch quota as explicit ring slots.
//     The ring is seeded with `quota` tokens; the lane (or a sync push)
//     pops one per artifact shipped, and finish_infer pushes it back
//     once the server has provably consumed the artifact. The server
//     never sends credit frames — the pooled-inference RESULT is the
//     credit return — so an empty ring is exactly "store + pending
//     occupancy at quota" and the lane parks instead of tripping a
//     session-killing kError mid-OT.
//   * prefetched_ — client-side remainders of pushed artifacts, lane
//     thread → caller.
//   * the lane's wire bytes go through a RingChannel (net/
//     ring_channel.h), so artifact serialization and the OT rounds
//     overlap the kernel sends instead of serializing with them.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "fixed/fixed_point.h"
#include "net/fault_channel.h"
#include "net/ring_channel.h"
#include "net/tcp_channel.h"
#include "runtime/frame.h"
#include "runtime/material_pool.h"
#include "runtime/streaming.h"
#include "support/spsc_ring.h"
#include "synth/layer_circuits.h"

namespace deepsecure::runtime {

struct ClientConfig {
  StreamConfig stream;
  /// Label-PRG seed; zero draws from OS entropy (per-session seeds).
  Block seed{};
  /// Offline pool: number of garbled instances to keep ready; 0
  /// disables pooling entirely (every infer is on-demand).
  size_t pool_target = 0;
  /// Background producer threads for the pool.
  size_t pool_producers = 1;
  /// Window-shard threads per pool garbling: one artifact's batch
  /// windows fan out across this many extra workers (byte-identical
  /// artifact), cutting the time-to-first-warm-artifact after a cold
  /// start or model reload. 0 = each artifact garbles single-threaded.
  size_t pool_shard_threads = 0;
  /// Refill the server-side store through a dedicated second connection
  /// (the v4 prefetch lane) driven by a background thread, instead of
  /// synchronous pushes on the session. Pushes then overlap in-flight
  /// kInfer traffic, so auto_top_up no longer lands the push cost in
  /// any request's tail. Requires pooling (pool_target > 0).
  bool async_prefetch = false;
  /// Re-prefetch opportunistically after each inference completes, so a
  /// steady request stream keeps hitting warm material. Without the
  /// async lane the push is synchronous on this session, so its cost
  /// (table upload + OT precompute) lands inside the tail of the
  /// request that triggered it — latency-sensitive callers should
  /// enable async_prefetch, or disable this and call top_up() at their
  /// own boundaries. Also disable for deterministic drain behavior
  /// (tests, bounded-memory clients).
  bool auto_top_up = true;
  /// Send-submission path for the primary and lane connections. kUring
  /// is runtime-probed per connection and silently falls back to the
  /// sendmsg path when unavailable (see ServerConfig::io).
  IoBackend io = IoBackend::kEpoll;
  /// Deterministic fault injection on the client side of the wire
  /// (net/fault_channel.h): wraps the primary and lane transports.
  /// Tests and loadgen --chaos; off (rate 0) in production.
  FaultConfig chaos;
  /// Self-healing budget: how many times a failed session may be
  /// rebuilt (reconnect + full re-handshake + lane re-attach) before
  /// infer() surfaces the error. 0 = fail fast (legacy behavior).
  /// Material whose transfer or OT was in flight at the failure is
  /// POISONED — dropped, never replayed — so a retried inference draws
  /// fresh pool material or falls back to on-demand garbling.
  size_t max_retries = 0;
  /// Reconnect backoff: base delay, doubled per consecutive attempt
  /// with deterministic jitter, capped at backoff_cap_ms. A kBusy
  /// retry-after hint from the server overrides the computed delay
  /// when larger.
  uint64_t backoff_base_ms = 10;
  uint64_t backoff_cap_ms = 1000;
};

class InferenceClient {
 public:
  /// `spec` is the public model architecture — the client compiles the
  /// same chain the server compiled and the handshake cross-checks the
  /// fingerprints.
  InferenceClient(const std::string& host, uint16_t port,
                  const synth::ModelSpec& spec, ClientConfig cfg = {});
  ~InferenceClient();

  InferenceClient(const InferenceClient&) = delete;
  InferenceClient& operator=(const InferenceClient&) = delete;

  /// One secure inference: encodes `sample` in the chain's fixed-point
  /// format and returns the predicted label index. Uses prefetched
  /// material when available, on-demand garbling otherwise.
  size_t infer(const std::vector<float>& sample);

  /// Raw-bit variant (caller did the encoding).
  BitVec infer_bits(const BitVec& data_bits);

  /// Warm the server-side store with up to `n` pool artifacts ahead of
  /// requests, clamped to the server's advertised per-session prefetch
  /// quota (and, on the async lane, to pool_target — the lane's refill
  /// ceiling). Synchronous mode pushes here (blocking on pool
  /// production); async mode wakes the lane and waits for it to catch
  /// up. Returns how many are now prefetched. Requires pooling enabled
  /// and no inference in flight (in async mode an in-flight inference
  /// pins a slot credit only finish_infer can return — waiting here
  /// would deadlock).
  size_t prefetch(size_t n);

  /// Pipelined pooled inference, send half: consumes one prefetched
  /// artifact and ships the request without waiting for the result.
  /// Throws if nothing is prefetched — callers race ahead only against
  /// warm material. Pair FIFO with finish_infer.
  void begin_infer_bits(const BitVec& data_bits);

  /// Pipelined pooled inference, receive half: result of the oldest
  /// in-flight request.
  BitVec finish_infer();

  /// Push ready pool artifacts until prefetched() reaches
  /// min(pool_target, server quota). Synchronous mode pushes inline
  /// without blocking on production (no-op while inferences are in
  /// flight); async mode just nudges the lane thread and returns
  /// immediately. Runs automatically after each inference under
  /// auto_top_up. No-op when pooling is disabled.
  void top_up();

  /// Artifacts pushed to the server and not yet consumed. Lock-free
  /// (ring cursor read); at most one handoff stale under a racing lane.
  size_t prefetched() const {
    return prefetched_ ? prefetched_->size() : 0;
  }
  /// Artifacts garbled and waiting in the local pool (0 when pooling is
  /// off). Lets a latency-sensitive caller wait for background refill
  /// garbling to quiesce before a measured window.
  size_t pool_ready() const { return pool_ ? pool_->ready() : 0; }
  /// begin_infer_bits calls not yet finished.
  size_t in_flight() const { return in_flight_; }
  uint64_t pooled_inferences() const { return pooled_inferences_; }
  uint64_t ondemand_inferences() const { return ondemand_inferences_; }
  /// Self-healing audit trail (this client; the process-wide aggregates
  /// live in Registry::global() as client.retries /
  /// client.sessions_recovered / pool.poisoned).
  uint64_t retries() const { return retries_; }
  uint64_t sessions_recovered() const { return recovered_; }
  /// Artifacts discarded by recovery because their transfer or OT was
  /// in flight at a session failure (the one-shot invariant: partially
  /// consumed garbled material is never replayed).
  uint64_t poisoned() const { return poisoned_; }
  /// Whether the async prefetch lane is up (attached and not failed).
  bool lane_active() const;

  /// Ask the server for its runtime counters (protocol v5 kStats): one
  /// round trip on the primary connection returning the server's
  /// stats_json() document verbatim. Requires an open session with no
  /// inference in flight (the reply would interleave with result
  /// frames).
  std::string server_stats();

  /// Phase timings accumulated across all inferences on this session.
  const SessionTrace& trace() const { return garbler_->trace(); }

  /// Orderly goodbye; further infer calls are invalid. Drains any
  /// in-flight pipelined inferences, stops the lane thread (rethrowing
  /// a parked lane failure), and says kBye on both connections. Also
  /// run by the destructor if still open (which swallows the rethrow).
  void close();

  size_t input_bits() const;

 private:
  // Client-side remainder of a pushed artifact: just enough to encode
  // active data labels online (the rest lives on the server now).
  struct PrefetchedMaterial {
    uint64_t id = 0;
    Block delta{};
    Labels data_zeros;
  };

  void push_material(GarbledMaterial&& mat);
  /// The push protocol over one connection (primary or lane): id frame,
  /// artifact bytes, precomputed-OT + derandomization, ack.
  PrefetchedMaterial push_material_over(StreamingGarbler& g,
                                        GarbledMaterial&& mat, uint64_t id);
  void start_lane(uint16_t lane_port, uint64_t lane_token);
  void lane_loop(uint64_t lane_token);
  size_t lane_target() const;  // min(pool_target, server quota)
  /// Connect + handshake the primary session (kBusy answered with a
  /// backoff-and-retry loop bounded by max_retries). Fills transport_/
  /// garbler_, the quota, and the lane attach info; reseeds credits_.
  void connect_and_handshake();
  /// Rebuild a failed session: stop the lane, poison in-flight and
  /// server-parked material, reconnect + re-handshake, re-attach the
  /// lane. The local pool survives (its artifacts never hit the wire).
  void recover_session();
  /// Non-retryable body of infer_bits (one attempt).
  BitVec infer_bits_once(const BitVec& data_bits);
  /// Exponential backoff with deterministic jitter; sleeps at least
  /// `floor_ms` (a server-provided retry-after hint).
  void backoff_sleep(size_t attempt, uint64_t floor_ms = 0);

  std::vector<Circuit> chain_;
  FixedFormat fmt_;
  ClientConfig cfg_;
  std::string host_;
  uint16_t port_ = 0;
  // Primary connection stack, rebuilt whole on recovery. The optional
  // chaos decorator sits between the transport and the garbler's
  // buffered channel (declaration order = teardown order).
  std::unique_ptr<TcpChannel> transport_;
  std::unique_ptr<FaultChannel> fault_;
  std::unique_ptr<StreamingGarbler> garbler_;
  std::unique_ptr<MaterialPool> pool_;

  // Shared between the caller thread and the lane thread. The mutex
  // guards only the flags and the CV predicates; the artifact and
  // credit handoffs themselves are the lock-free rings below. Ring ops
  // pair with an empty mu_ critical section before each notify so a
  // predicate evaluated under the lock can never miss a push.
  mutable std::mutex mu_;
  std::condition_variable lane_cv_;    // wakes the lane: refill wanted
  std::condition_variable caught_up_;  // wakes prefetch(): lane pushed
  /// Lane → caller: remainders of pushed artifacts (see file header).
  /// In sync mode the caller plays both ring roles. Sized to the quota.
  std::unique_ptr<SpscRing<PrefetchedMaterial>> prefetched_;
  /// The prefetch quota as explicit credit slots (see file header):
  /// seeded with `quota` tokens; pop-to-push an artifact, finish_infer
  /// returns the token. Producer = the caller (finish_infer), consumer
  /// = whichever side ships artifacts (the lane in async mode, the
  /// caller in sync mode) — exactly one each way. Total tokens in
  /// circulation never exceeds the quota, so the ring cannot overflow.
  std::unique_ptr<SpscRing<uint64_t>> credits_;
  uint64_t next_material_id_ = 1;
  bool lane_stop_ = false;
  bool lane_up_ = false;  // attached and serving
  std::exception_ptr lane_error_;

  // Lane connection: owned here, written only by lane_thread_. The
  // RingChannel decouples the lane's frame production from the kernel
  // sends; declaration order = teardown order (garbler flushes through
  // the ring, the ring drains into the transport, then the socket
  // closes).
  std::unique_ptr<TcpChannel> lane_transport_;
  std::unique_ptr<FaultChannel> lane_fault_;
  std::unique_ptr<RingChannel> lane_ring_;
  std::unique_ptr<StreamingGarbler> lane_garbler_;
  std::thread lane_thread_;

  uint64_t server_prefetch_quota_ = 0;  // advertised in the hello ack
  uint16_t lane_port_ = 0;    // lane attach info from the latest ack
  uint64_t lane_token_ = 0;   // (single-use: refreshed per handshake)
  size_t in_flight_ = 0;
  uint64_t pooled_inferences_ = 0;
  uint64_t ondemand_inferences_ = 0;
  // Self-healing state: the epoch salts the garbler seed so a rebuilt
  // session can never replay the labels of a dead one (one-shot
  // invariant), the connection index keeps chaos fault plans distinct
  // per connection, and the rng drives backoff jitter deterministically.
  uint64_t session_epoch_ = 0;
  uint64_t chaos_conn_index_ = 0;
  uint64_t backoff_rng_ = 0x9e3779b97f4a7c15ull;
  uint64_t retries_ = 0;
  uint64_t recovered_ = 0;
  uint64_t poisoned_ = 0;
  bool open_ = false;
  bool closing_ = false;  // suppresses top_up while close() drains
};

}  // namespace deepsecure::runtime
