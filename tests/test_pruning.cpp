#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "preprocess/pruning.h"

namespace deepsecure::preprocess {
namespace {

nn::Dataset small_data(uint64_t seed) {
  data::SyntheticConfig cfg;
  cfg.features = 24;
  cfg.classes = 3;
  cfg.samples = 210;
  cfg.seed = seed;
  return data::make_subspace_dataset(cfg);
}

TEST(Pruning, ReachesTargetSparsityAndKeepsAccuracy) {
  const nn::Dataset ds = small_data(31);
  Rng rng(1);
  nn::Network net(nn::Shape{1, 1, 24});
  net.dense(20, rng).act(nn::Act::kReLU).dense(3, rng);
  nn::TrainConfig tc;
  tc.epochs = 10;
  nn::train(net, ds, tc);
  const float acc0 = nn::accuracy(net, ds);
  ASSERT_GT(acc0, 0.85f);

  PruneConfig pc;
  pc.prune_fraction = 0.7;
  pc.rounds = 2;
  pc.retrain_epochs = 6;
  const PruneReport report = prune_and_retrain(net, ds, pc);

  EXPECT_NEAR(report.overall_sparsity, 0.7, 0.05);
  EXPECT_GE(report.accuracy_after, acc0 - 0.08f);
  // Masks installed on every dense layer.
  for (auto* d : net.dense_layers()) {
    ASSERT_FALSE(d->mask.empty());
    for (size_t i = 0; i < d->mask.size(); ++i)
      if (!d->mask[i]) EXPECT_EQ(d->weights()[i], 0.0f);
  }
}

TEST(Pruning, MaskSurvivesFurtherTraining) {
  const nn::Dataset ds = small_data(32);
  Rng rng(2);
  nn::Network net(nn::Shape{1, 1, 24});
  net.dense(10, rng).act(nn::Act::kTanh).dense(3, rng);
  nn::TrainConfig tc;
  tc.epochs = 4;
  nn::train(net, ds, tc);

  PruneConfig pc;
  pc.prune_fraction = 0.5;
  pc.rounds = 1;
  pc.retrain_epochs = 2;
  prune_and_retrain(net, ds, pc);

  nn::train(net, ds, tc);  // extra training must not resurrect weights
  for (auto* d : net.dense_layers())
    for (size_t i = 0; i < d->mask.size(); ++i)
      if (!d->mask[i]) EXPECT_EQ(d->weights()[i], 0.0f);
}

TEST(Pruning, RandomMaskPopulationExact) {
  const auto mask = random_mask(30, 40, 0.25, 7);
  size_t kept = 0;
  for (uint8_t m : mask) kept += m;
  EXPECT_EQ(kept, static_cast<size_t>(0.25 * 30 * 40));
  // Determinism.
  EXPECT_EQ(mask, random_mask(30, 40, 0.25, 7));
  EXPECT_NE(mask, random_mask(30, 40, 0.25, 8));
}

}  // namespace
}  // namespace deepsecure::preprocess
