// Plain SGD training loop with shuffling and accuracy evaluation.
#pragma once

#include "nn/network.h"

namespace deepsecure::nn {

struct Dataset {
  std::vector<VecF> x;
  std::vector<size_t> y;
  size_t num_classes = 0;

  size_t size() const { return x.size(); }
};

struct TrainConfig {
  size_t epochs = 5;
  float lr = 0.01f;
  float momentum = 0.9f;
  float lr_decay = 0.85f;  // per epoch
  uint64_t shuffle_seed = 1;
};

struct TrainReport {
  std::vector<float> epoch_loss;
  float final_train_accuracy = 0.0f;
};

TrainReport train(Network& net, const Dataset& data, const TrainConfig& cfg);

float accuracy(const Network& net, const Dataset& data);

/// Deterministic train/test split (no shuffling of the underlying data;
/// callers shuffle via the generator seed).
struct Split {
  Dataset train;
  Dataset test;
};
Split split_dataset(const Dataset& data, double train_fraction,
                    uint64_t seed = 7);

}  // namespace deepsecure::nn
