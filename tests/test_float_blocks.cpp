#include <gtest/gtest.h>

#include <cmath>

#include "synth/float_blocks.h"
#include "test_util.h"

namespace deepsecure::synth {
namespace {

constexpr FloatFormat kFmt = kBFloat16;

BitVec to_bits(const SoftFloat& f) {
  return deepsecure::to_bits(f.bits, f.fmt.total_bits());
}

SoftFloat from_bits(const BitVec& bits, FloatFormat fmt) {
  SoftFloat f;
  f.fmt = fmt;
  f.bits = deepsecure::from_bits(bits);
  return f;
}

double rel_err(double got, double want) {
  if (want == 0.0) return std::abs(got);
  return std::abs(got - want) / std::abs(want);
}

TEST(SoftFloat, RoundTripAndPrecision) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_uniform(-100, 100);
    const SoftFloat f = SoftFloat::from_double(x, kFmt);
    // bfloat16-ish: 7 mantissa bits -> <1% relative error.
    EXPECT_LT(rel_err(f.to_double(), x), 1.0 / 128.0) << x;
  }
  EXPECT_EQ(SoftFloat::from_double(0.0, kFmt).bits, 0u);
  EXPECT_EQ(SoftFloat::from_double(0.0, kFmt).to_double(), 0.0);
}

TEST(SoftFloat, ArithmeticTracksDouble) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_uniform(-50, 50);
    const double y = rng.next_uniform(-50, 50);
    const SoftFloat fx = SoftFloat::from_double(x, kFmt);
    const SoftFloat fy = SoftFloat::from_double(y, kFmt);
    const double sum = SoftFloat::add(fx, fy).to_double();
    const double prod = SoftFloat::mul(fx, fy).to_double();
    // Compare against exact arithmetic on the *rounded* operands (the
    // conversion error itself is the caller's, and cancellation can
    // amplify it arbitrarily). Alignment + normalization truncation
    // lose at most ~1 ulp of each operand and of the result.
    const double xs = fx.to_double(), ys = fy.to_double();
    const double ulp_budget =
        (std::abs(xs) + std::abs(ys) + std::abs(xs + ys)) / 128.0 + 1e-30;
    EXPECT_LT(std::abs(sum - (xs + ys)), 2.0 * ulp_budget) << x << "+" << y;
    EXPECT_LT(rel_err(prod, xs * ys), 0.02) << x << "*" << y;
    EXPECT_EQ(SoftFloat::less_than(fx, fy),
              fx.to_double() < fy.to_double());
  }
}

TEST(SoftFloat, EdgeCases) {
  const SoftFloat zero = SoftFloat::from_double(0.0, kFmt);
  const SoftFloat one = SoftFloat::from_double(1.0, kFmt);
  EXPECT_EQ(SoftFloat::add(zero, one).to_double(), 1.0);
  EXPECT_EQ(SoftFloat::add(one, zero).to_double(), 1.0);
  EXPECT_EQ(SoftFloat::mul(zero, one).to_double(), 0.0);
  // Exact cancellation.
  const SoftFloat neg_one = SoftFloat::from_double(-1.0, kFmt);
  EXPECT_EQ(SoftFloat::add(one, neg_one).to_double(), 0.0);
  // Underflow flushes to zero.
  const SoftFloat tiny = SoftFloat::from_double(1e-45, kFmt);
  EXPECT_EQ(tiny.to_double(), 0.0);
  // Overflow saturates (stays finite).
  const SoftFloat huge = SoftFloat::from_double(1e40, kFmt);
  const SoftFloat sq = SoftFloat::mul(huge, huge);
  EXPECT_TRUE(std::isfinite(sq.to_double()));
  EXPECT_GT(sq.to_double(), 1e38);
}

// ---- circuit vs software reference (bit-exact) ------------------------

struct FloatCircuits {
  Circuit add, mul, lt, relu;
};

const FloatCircuits& circuits() {
  static const FloatCircuits c = [] {
    FloatCircuits f;
    {
      Builder b;
      const Bus x = input_bus(b, Party::kGarbler, kFmt.total_bits());
      const Bus y = input_bus(b, Party::kEvaluator, kFmt.total_bits());
      b.outputs(float_add(b, x, y, kFmt));
      f.add = b.build();
    }
    {
      Builder b;
      const Bus x = input_bus(b, Party::kGarbler, kFmt.total_bits());
      const Bus y = input_bus(b, Party::kEvaluator, kFmt.total_bits());
      b.outputs(float_mul(b, x, y, kFmt));
      f.mul = b.build();
    }
    {
      Builder b;
      const Bus x = input_bus(b, Party::kGarbler, kFmt.total_bits());
      const Bus y = input_bus(b, Party::kEvaluator, kFmt.total_bits());
      b.output(float_lt(b, x, y, kFmt));
      f.lt = b.build();
    }
    {
      Builder b;
      const Bus x = input_bus(b, Party::kGarbler, kFmt.total_bits());
      b.outputs(float_relu(b, x, kFmt));
      f.relu = b.build();
    }
    return f;
  }();
  return c;
}

SoftFloat rand_float(Rng& rng) {
  // Mix of magnitudes, signs and exact zeros.
  const int pick = static_cast<int>(rng.next_below(10));
  double v;
  if (pick == 0)
    v = 0.0;
  else if (pick < 4)
    v = rng.next_uniform(-2, 2);
  else if (pick < 7)
    v = rng.next_uniform(-1000, 1000);
  else
    v = rng.next_uniform(-0.01, 0.01);
  return SoftFloat::from_double(v, kFmt);
}

TEST(FloatCircuit, AddMatchesReferenceBitExact) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const SoftFloat a = rand_float(rng);
    const SoftFloat b = rand_float(rng);
    const BitVec out = circuits().add.eval(to_bits(a), to_bits(b));
    const SoftFloat want = SoftFloat::add(a, b);
    EXPECT_EQ(from_bits(out, kFmt).bits, want.bits)
        << a.to_double() << " + " << b.to_double() << " -> "
        << from_bits(out, kFmt).to_double() << " vs " << want.to_double();
  }
}

TEST(FloatCircuit, MulMatchesReferenceBitExact) {
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const SoftFloat a = rand_float(rng);
    const SoftFloat b = rand_float(rng);
    const BitVec out = circuits().mul.eval(to_bits(a), to_bits(b));
    const SoftFloat want = SoftFloat::mul(a, b);
    EXPECT_EQ(from_bits(out, kFmt).bits, want.bits)
        << a.to_double() << " * " << b.to_double();
  }
}

TEST(FloatCircuit, CompareAndRelu) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const SoftFloat a = rand_float(rng);
    const SoftFloat b = rand_float(rng);
    const BitVec lt = circuits().lt.eval(to_bits(a), to_bits(b));
    EXPECT_EQ(lt[0] != 0, SoftFloat::less_than(a, b))
        << a.to_double() << " < " << b.to_double();

    const BitVec r = circuits().relu.eval(to_bits(a), {});
    const double want = a.to_double() > 0 ? a.to_double() : 0.0;
    EXPECT_EQ(from_bits(r, kFmt).to_double(), want);
  }
}

TEST(FloatCircuit, DotProductTracksDouble) {
  const size_t n = 8;
  Builder b;
  std::vector<Bus> xs(n), ws(n);
  for (auto& bus : xs) bus = input_bus(b, Party::kGarbler, kFmt.total_bits());
  for (auto& bus : ws) bus = input_bus(b, Party::kEvaluator, kFmt.total_bits());
  b.outputs(float_dot(b, xs, ws, kFmt));
  const Circuit c = b.build();

  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec xbits, wbits;
    double want = 0;
    for (size_t i = 0; i < n; ++i) {
      const SoftFloat x = SoftFloat::from_double(rng.next_uniform(-1, 1), kFmt);
      const SoftFloat w = SoftFloat::from_double(rng.next_uniform(-1, 1), kFmt);
      want += x.to_double() * w.to_double();
      const BitVec xb = to_bits(x), wb = to_bits(w);
      xbits.insert(xbits.end(), xb.begin(), xb.end());
      wbits.insert(wbits.end(), wb.begin(), wb.end());
    }
    const double got = from_bits(c.eval(xbits, wbits), kFmt).to_double();
    EXPECT_NEAR(got, want, 0.1) << "trial " << trial;
  }
}

TEST(FloatCircuit, GateBudgetsReported) {
  // Float ops are several times costlier than fixed point — the reason
  // the paper (and we) default to Q(16,12).
  const auto add_cost = circuits().add.stats();
  const auto mul_cost = circuits().mul.stats();
  EXPECT_GT(add_cost.num_and, 100u);
  EXPECT_LT(add_cost.num_and, 2000u);
  EXPECT_GT(mul_cost.num_and, 100u);
  EXPECT_LT(mul_cost.num_and, 2000u);
}

}  // namespace
}  // namespace deepsecure::synth
