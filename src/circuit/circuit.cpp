#include "circuit/circuit.h"

#include <mutex>
#include <stdexcept>

namespace deepsecure {
namespace {

// Dependency scan behind Circuit::gc_flush_points(). Simulates the
// batched garbling walk with an unbounded window: a gate that reads the
// output of a still-pending AND forces a drain right before it runs.
// Runtime capacity flushes only shrink the pending set, so this schedule
// stays sufficient (extra flushes are harmless no-ops for correctness and
// never change the table byte stream, which is emitted in gate order).
std::vector<uint32_t> compute_flush_points(const Circuit& c) {
  std::vector<uint32_t> points;
  std::vector<uint8_t> pending(c.num_wires, 0);
  std::vector<Wire> marked;  // wires set since the last flush point
  for (uint32_t i = 0; i < c.gates.size(); ++i) {
    const Gate& g = c.gates[i];
    if (!marked.empty() && (pending[g.a] || pending[g.b])) {
      points.push_back(i);
      for (Wire w : marked) pending[w] = 0;
      marked.clear();
    }
    if (g.op == GateOp::kAnd) {
      pending[g.out] = 1;
      marked.push_back(g.out);
    }
  }
  return points;
}

}  // namespace

std::shared_ptr<const std::vector<uint32_t>> Circuit::gc_flush_points() const {
  // The mutex is process-wide (Circuit must stay copyable) but is never
  // held across the O(gates) scan, so unrelated circuits initializing
  // concurrently only contend for pointer reads/writes. Concurrent first
  // calls may both compute; one result wins, both are correct.
  static std::mutex mu;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (gc_flush_cache_ && gc_flush_cache_gates_ == gates.size())
      return gc_flush_cache_;
  }
  auto computed =
      std::make_shared<const std::vector<uint32_t>>(compute_flush_points(*this));
  std::lock_guard<std::mutex> lock(mu);
  if (!gc_flush_cache_ || gc_flush_cache_gates_ != gates.size()) {
    gc_flush_cache_ = std::move(computed);
    gc_flush_cache_gates_ = gates.size();
  }
  return gc_flush_cache_;
}

Circuit& Circuit::operator=(const Circuit& o) {
  if (this == &o) return *this;
  name = o.name;
  gates = o.gates;
  gate_lanes = o.gate_lanes;
  garbler_inputs = o.garbler_inputs;
  evaluator_inputs = o.evaluator_inputs;
  state_inputs = o.state_inputs;
  state_next = o.state_next;
  outputs = o.outputs;
  num_wires = o.num_wires;
  gc_flush_cache_.reset();  // recomputed lazily; see header
  gc_flush_cache_gates_ = 0;
  gc_sched_cache_.reset();
  gc_sched_cache_gates_ = 0;
  return *this;
}

CircuitStats Circuit::stats() const {
  CircuitStats s;
  for (const Gate& g : gates) {
    if (g.op == GateOp::kXor)
      ++s.num_xor;
    else
      ++s.num_and;
  }
  s.num_wires = num_wires;
  s.num_inputs = garbler_inputs.size() + evaluator_inputs.size() +
                 state_inputs.size();
  s.num_outputs = outputs.size();
  return s;
}

BitVec Circuit::eval(const BitVec& garbler_bits, const BitVec& evaluator_bits,
                     BitVec* state) const {
  if (garbler_bits.size() != garbler_inputs.size())
    throw std::invalid_argument("garbler input size mismatch");
  if (evaluator_bits.size() != evaluator_inputs.size())
    throw std::invalid_argument("evaluator input size mismatch");
  if (state != nullptr && !state->empty() &&
      state->size() != state_inputs.size())
    throw std::invalid_argument("state size mismatch");

  BitVec w(num_wires, 0);
  w[kConst1] = 1;
  for (size_t i = 0; i < garbler_inputs.size(); ++i)
    w[garbler_inputs[i]] = garbler_bits[i] & 1u;
  for (size_t i = 0; i < evaluator_inputs.size(); ++i)
    w[evaluator_inputs[i]] = evaluator_bits[i] & 1u;
  if (state != nullptr && !state->empty())
    for (size_t i = 0; i < state_inputs.size(); ++i)
      w[state_inputs[i]] = (*state)[i] & 1u;

  for (const Gate& g : gates) {
    const uint8_t a = w[g.a];
    const uint8_t b = w[g.b];
    w[g.out] = (g.op == GateOp::kXor) ? (a ^ b) : (a & b);
  }

  if (state != nullptr) {
    state->resize(state_next.size());
    for (size_t i = 0; i < state_next.size(); ++i)
      (*state)[i] = w[state_next[i]];
  }

  BitVec out(outputs.size());
  for (size_t i = 0; i < outputs.size(); ++i) out[i] = w[outputs[i]];
  return out;
}

void Circuit::validate() const {
  if (state_inputs.size() != state_next.size())
    throw std::logic_error("state_inputs/state_next size mismatch");
  if (!gate_lanes.empty() && gate_lanes.size() != gates.size())
    throw std::logic_error("gate_lanes/gates size mismatch");
  std::vector<uint8_t> defined(num_wires, 0);
  defined[kConst0] = defined[kConst1] = 1;
  auto mark_input = [&](Wire wid) {
    if (wid >= num_wires) throw std::logic_error("input wire out of range");
    if (defined[wid]) throw std::logic_error("input wire aliased");
    defined[wid] = 1;
  };
  for (Wire wid : garbler_inputs) mark_input(wid);
  for (Wire wid : evaluator_inputs) mark_input(wid);
  for (Wire wid : state_inputs) mark_input(wid);

  for (const Gate& g : gates) {
    if (g.a >= num_wires || g.b >= num_wires || g.out >= num_wires)
      throw std::logic_error("gate wire out of range");
    if (!defined[g.a] || !defined[g.b])
      throw std::logic_error("gate input not yet defined (not topological)");
    if (defined[g.out]) throw std::logic_error("gate output redefined");
    defined[g.out] = 1;
  }
  for (Wire wid : outputs)
    if (wid >= num_wires || !defined[wid])
      throw std::logic_error("undefined output wire");
  for (Wire wid : state_next)
    if (wid >= num_wires || !defined[wid])
      throw std::logic_error("undefined state_next wire");
}

BitVec eval_sequential(const Circuit& step, size_t cycles,
                       const BitVec& garbler_bits,
                       const BitVec& evaluator_bits) {
  const size_t g_per = step.garbler_inputs.size();
  const size_t e_per = step.evaluator_inputs.size();
  if (garbler_bits.size() != g_per * cycles)
    throw std::invalid_argument("sequential garbler input size mismatch");
  if (evaluator_bits.size() != e_per * cycles)
    throw std::invalid_argument("sequential evaluator input size mismatch");

  BitVec state(step.state_inputs.size(), 0);
  BitVec out;
  for (size_t t = 0; t < cycles; ++t) {
    const BitVec g_slice(garbler_bits.begin() + t * g_per,
                         garbler_bits.begin() + (t + 1) * g_per);
    const BitVec e_slice(evaluator_bits.begin() + t * e_per,
                         evaluator_bits.begin() + (t + 1) * e_per);
    out = step.eval(g_slice, e_slice, &state);
  }
  return out;
}

}  // namespace deepsecure
