// Matrix-vector product circuits (the FC/convolution workhorse, and the
// A(1xm) x B(mxn) row of Table 3), including the sparse variant that
// skips pruned connections (DL network pre-processing, Section 3.2.2:
// the sparsity map is public, the weight values stay private).
#pragma once

#include <optional>

#include "synth/int_blocks.h"

namespace deepsecure::synth {

/// Fixed-point dot product of equal-length bus vectors.
Bus dot(Builder& b, const std::vector<Bus>& x, const std::vector<Bus>& w,
        size_t frac);

/// Dot product with a public sparsity mask: terms with mask[i] == false
/// are not instantiated at all (no MULT, no ADD — the paper's gate-count
/// saving from pruning).
Bus dot_masked(Builder& b, const std::vector<Bus>& x,
               const std::vector<Bus>& w, const std::vector<uint8_t>& mask,
               size_t frac);

/// Standalone A(1xm) x B(mxn) benchmark circuit: the garbler supplies the
/// m-vector, the evaluator supplies the m x n matrix (column-major input
/// order), outputs n fixed-point words.
Circuit make_matvec_circuit(size_t m, size_t n, FixedFormat fmt);

/// One-MAC sequential (folded) matvec step circuit (Section 3.5): per
/// cycle the garbler feeds one x element, the evaluator one weight; the
/// accumulator lives in state registers. Run for m cycles per output.
Circuit make_mac_step_circuit(FixedFormat fmt);

}  // namespace deepsecure::synth
