#include "runtime/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "crypto/hash_backend.h"
#include "obs/trace.h"
#include "runtime/frame.h"
#include "runtime/reactor.h"

namespace deepsecure::runtime {

namespace {

// OT/label-transfer seconds accumulated in a session's trace — the gc
// layer already samples per-phase times; the server lifts the deltas
// into its histograms instead of re-timing inside the protocol.
double trace_ot_seconds(const SessionTrace& t) {
  double s = 0;
  for (const auto& p : t.phases) s += p.ot_s;
  return s;
}

uint64_t seconds_to_ns(double s) {
  return s <= 0 ? 0 : static_cast<uint64_t>(s * 1e9);
}

// Thread-core phase deadline: swap SO_RCVTIMEO to the per-phase bound
// while one frame is being served, restore the idle timeout for the
// next inter-frame wait. The event core arms a wheel entry instead.
class PhaseDeadlineGuard {
 public:
  PhaseDeadlineGuard(TcpChannel& t, uint64_t phase_ms, uint64_t idle_ms)
      : t_(t), idle_ms_(idle_ms), active_(phase_ms > 0) {
    if (active_) t_.set_recv_timeout_ms(phase_ms);
  }
  ~PhaseDeadlineGuard() {
    if (!active_) return;
    try {
      t_.set_recv_timeout_ms(idle_ms_);  // 0 restores "unbounded"
    } catch (...) {
    }
  }

 private:
  TcpChannel& t_;
  uint64_t idle_ms_;
  bool active_;
};

}  // namespace

InferenceServer::InferenceServer(const synth::ModelSpec& spec, BitVec weights,
                                 ServerConfig cfg)
    : chain_(synth::compile_model_layers(spec)),
      weights_(std::move(weights)),
      cfg_(cfg),
      // Fingerprint over the gate order sessions will walk — computing
      // it here also warms the per-circuit schedule cache once, before
      // the first session arrives.
      fingerprint_(chain_fingerprint(chain_, cfg.stream.schedule)),
      listener_(cfg.port, cfg.backlog),
      // The lane listener is always ephemeral: its port travels in the
      // hello ack, so clients never configure it and it cannot collide
      // with a pinned primary port.
      lane_listener_(0, cfg.backlog) {
  size_t want = 0;
  for (const Circuit& c : chain_) {
    want += c.evaluator_inputs.size();
    expected_table_bytes_ += 2 * sizeof(Block) + c.stats().table_bytes();
  }
  if (weights_.size() != want)
    throw std::invalid_argument("InferenceServer: weight bit count mismatch");
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  if (cfg_.core == ServerCore::kEventLoop) {
    event_core_ = std::make_unique<EventCore>(*this);
    event_core_->start();
    return;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  lane_accept_thread_ = std::thread([this] { lane_accept_loop(); });
}

void InferenceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;  // claim the shutdown; start() is one-shot
    stopping_ = true;
  }
  if (event_core_ != nullptr) {
    // The reactor owns its connections and listeners end to end; every
    // live session runs the normal teardown path (budget settlement
    // included) before stop() returns.
    event_core_->stop();
    event_core_.reset();
    return;
  }
  listener_.close();       // unblocks a pending accept()
  lane_listener_.close();  // same for the prefetch lane
  slot_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (lane_accept_thread_.joinable()) lane_accept_thread_.join();
  std::vector<SessionHandle> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Wake handlers blocked in recv on idle sessions/lanes so join()
    // below cannot hang on a client that never says goodbye.
    // Registration happens under mu_ *before* the handler thread
    // spawns, so every live connection is visible here.
    for (TcpChannel* t : active_transports_) t->shutdown();
    handlers.swap(handlers_);
  }
  for (auto& h : handlers)
    if (h.thread.joinable()) h.thread.join();
}

// ---------------------------------------------------------------------
// Protocol steps shared by both cores.

const char* InferenceServer::validate_hello(const Hello& hello) const {
  if (hello.magic != kProtocolMagic || hello.version != kProtocolVersion)
    return "protocol magic/version mismatch";
  if (hello.flags.schedule != cfg_.stream.schedule)
    return "netlist scheduling mismatch";
  if (hello.fingerprint != fingerprint_)
    return "model chain fingerprint mismatch";
  if (hello.flags.framed_tables != cfg_.stream.framed_tables)
    return "table framing mismatch";
  return nullptr;
}

// One kInfer (on-demand byte stream, or the online phase against a
// prefetched artifact). The pooled path consumes its artifact and
// returns the budget reservation BEFORE evaluating — one artifact, one
// evaluation.
bool InferenceServer::handle_infer_frame(const Frame& f, BufferedChannel& ch,
                                         EvaluatorSession& session,
                                         SessionState& state) {
  const uint64_t t0 = obs::now_ns();
  const double eval0 = session.trace().sum_eval();
  const double ot0 = trace_ot_seconds(session.trace());
  if (f.payload.empty()) {
    // On-demand: the client garbles on the request path.
    obs::Span span("server.infer_ondemand");
    session.run_chain(chain_, weights_);
    h_infer_ondemand_.observe(obs::now_ns() - t0);
  } else {
    const uint64_t id = parse_id(f);
    EvalMaterial mat;
    bool found = false;
    {
      std::lock_guard<std::mutex> lk(state.mu);
      const auto it = state.store.find(id);
      if (it != state.store.end()) {
        mat = std::move(it->second);
        state.store.erase(it);
        state.reserved_bytes -= expected_table_bytes_;
        prefetch_bytes_.fetch_sub(expected_table_bytes_);
        found = true;
      }
    }
    if (!found) {
      send_error(ch, ErrorCode::kMaterial, "unknown prefetched material id");
      ch.flush();
      return false;
    }
    obs::Span span("server.infer_online");
    session.run_online(chain_, mat);
    h_infer_online_.observe(obs::now_ns() - t0);
    c_inferences_pooled_.add();
  }
  h_eval_.observe(seconds_to_ns(session.trace().sum_eval() - eval0));
  h_ot_online_.observe(seconds_to_ns(trace_ot_seconds(session.trace()) - ot0));
  ch.flush();
  c_inferences_served_.add();
  return true;
}

uint64_t InferenceServer::register_lane_token(
    const std::shared_ptr<SessionState>& state) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t token;
  do {
    token = token_prg_.next_u64();
  } while (token == 0 || lane_tokens_.count(token) != 0);
  lane_tokens_.emplace(token, state);
  return token;
}

void InferenceServer::unregister_lane_token(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_tokens_.erase(token);
}

std::shared_ptr<InferenceServer::SessionState> InferenceServer::attach_lane(
    uint64_t token, const char** reject) {
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = lane_tokens_.find(token);
    if (it != lane_tokens_.end()) state = it->second;
  }
  if (state == nullptr) {
    *reject = "unknown lane token";
    return nullptr;
  }
  std::lock_guard<std::mutex> lk(state->mu);
  if (state->closed) {
    *reject = "session closed";
    return nullptr;
  }
  if (state->lane_attached) {
    *reject = "lane already attached";
    return nullptr;
  }
  state->lane_attached = true;
  return state;
}

void InferenceServer::settle_session_state(SessionState& state) {
  std::lock_guard<std::mutex> lk(state.mu);
  state.closed = true;
  if (state.reserved_bytes > 0) {
    prefetch_bytes_.fetch_sub(state.reserved_bytes);
    state.reserved_bytes = 0;
  }
  state.store.clear();
}

// One prefetch push (primary connection or lane). See server.h.
bool InferenceServer::handle_prefetch_push(const Frame& f, BufferedChannel& ch,
                                           EvaluatorSession& session,
                                           SessionState& state) {
  const uint64_t t0 = obs::now_ns();
  obs::Span span("server.prefetch_push");
  const uint64_t id = parse_id(f);
  {
    const char* reject = nullptr;
    ErrorCode code = ErrorCode::kUnspecified;
    std::unique_lock<std::mutex> lk(state.mu);
    if (state.closed) {
      reject = "session closed";
      code = ErrorCode::kInternal;
    } else if (state.store.count(id) != 0) {
      reject = "duplicate prefetched material id";
      code = ErrorCode::kMaterial;
    } else if (state.store.size() + state.pending_pushes >=
               cfg_.max_prefetch) {
      reject = "prefetch quota exceeded";
      code = ErrorCode::kQuota;
    }
    if (reject == nullptr) {
      // Global budget: reserve before reading the artifact (its size is
      // fixed by the compiled chain). fetch_add-then-check keeps the
      // reservation race-free across sessions; an overshoot is rolled
      // back before anyone else can starve on it. Always accounted
      // (prefetch_bytes() is a metric), only enforced when a budget is
      // configured.
      const uint64_t now = prefetch_bytes_.fetch_add(expected_table_bytes_) +
                           expected_table_bytes_;
      if (cfg_.max_prefetch_bytes > 0 && now > cfg_.max_prefetch_bytes) {
        prefetch_bytes_.fetch_sub(expected_table_bytes_);
        c_prefetches_rejected_.add();
        reject = "global prefetch byte budget exhausted";
        code = ErrorCode::kQuota;
      } else {
        state.reserved_bytes += expected_table_bytes_;
        ++state.pending_pushes;
      }
    }
    lk.unlock();  // never write to the wire while holding shared state
    if (reject != nullptr) {
      send_error(ch, code, reject);
      ch.flush();
      return false;
    }
  }

  // Settle this push's reservation and quota slot. A failed push
  // releases its bytes HERE, immediately — holding them until session
  // teardown would let one malformed push starve every other session's
  // prefetching for this session's remaining lifetime. If the session
  // closed while the material was in flight, teardown already released
  // the whole reservation (ours included): release nothing twice.
  auto settle = [&](bool keep_reservation) {
    std::lock_guard<std::mutex> lk(state.mu);
    --state.pending_pushes;
    if (state.closed) return false;
    if (!keep_reservation) {
      state.reserved_bytes -= expected_table_bytes_;
      prefetch_bytes_.fetch_sub(expected_table_bytes_);
    }
    return true;
  };

  EvalMaterial mat;
  const char* reject = nullptr;
  try {
    mat = recv_material(ch, expected_table_bytes_,
                        chain_.back().outputs.size());
    // Both sizes are exactly determined by the chain this server
    // compiled; a disagreeing artifact could never evaluate, so reject
    // it now instead of storing garbage and failing the kInfer that
    // draws it.
    if (mat.tables.size() != expected_table_bytes_ ||
        mat.decode_bits.size() != chain_.back().outputs.size()) {
      reject = "prefetched material does not match model chain";
    } else {
      // Offline OT: precompute + derandomize against the static weight
      // bits — after this the request path has no OT left.
      obs::Span ot_span("server.ot_offline");
      const uint64_t ot0 = obs::now_ns();
      const OtPrecompReceiver pre = session.precompute_ot(weights_.size());
      mat.eval_labels = session.recv_labels_derandomized(pre, weights_);
      h_ot_offline_.observe(obs::now_ns() - ot0);
    }
  } catch (...) {
    settle(/*keep_reservation=*/false);
    throw;  // transport-level failure: the connection is already dead
  }
  if (reject != nullptr) {
    settle(/*keep_reservation=*/false);
    send_error(ch, ErrorCode::kMaterial, reject);
    ch.flush();
    return false;
  }
  bool stored = false;
  {
    // Settle + store in ONE critical section: a teardown racing in
    // between could otherwise release the budget and clear the store
    // just before a stale artifact is parked in it.
    std::lock_guard<std::mutex> lk(state.mu);
    --state.pending_pushes;
    if (!state.closed) {
      state.store.emplace(id, std::move(mat));
      stored = true;
    }
    // else: torn down mid-push — teardown already settled the budget
    // (our reservation included), and the artifact has no session to
    // serve. Error sent below, outside the lock.
  }
  if (!stored) {
    send_error(ch, ErrorCode::kInternal, "session closed");
    ch.flush();
    return false;
  }
  send_id_frame(ch, FrameType::kPrefetchAck, id);
  ch.flush();
  c_materials_prefetched_.add();
  h_prefetch_push_.observe(obs::now_ns() - t0);
  return true;
}

std::string InferenceServer::stats_json() const {
  const obs::Snapshot s = metrics_.snapshot();
  // The phases that partition a session's lifetime. Thread core: a
  // handler is always in exactly one of handshake / recv_wait / serving
  // a frame. Event core: parked + dispatch replace most of recv_wait
  // (the connection sits in epoll between frames). Sub-phases
  // (subphase.*) nest inside these and are deliberately not summed.
  static constexpr const char* kAccountedPhases[] = {
      "phase.handshake",     "phase.recv_wait", "phase.infer_ondemand",
      "phase.infer_online",  "phase.prefetch_push",
      "phase.parked",        "phase.dispatch",
  };
  double phase_total_s = 0;
  for (const char* name : kAccountedPhases) {
    const obs::Snapshot::Hist* h = s.find_hist(name);
    if (h != nullptr) phase_total_s += static_cast<double>(h->sum) / 1e9;
  }
  // Denominator: connection lifetimes — sessions plus prefetch lanes
  // (lanes contribute parked/recv_wait/prefetch time to the numerator,
  // so they must contribute their wall time here too).
  double wall_s = 0;
  for (const char* name : {"phase.session_wall", "phase.lane_wall"}) {
    const obs::Snapshot::Hist* h = s.find_hist(name);
    if (h != nullptr) wall_s += static_cast<double>(h->sum) / 1e9;
  }
  const double accounted =
      wall_s > 0 ? std::min(phase_total_s / wall_s, 1.0) : 0.0;
  // Effective submission path, not the configured one: a kUring config
  // on a kernel that refuses io_uring serves on the sendmsg path.
  const char* io = cfg_.io == IoBackend::kUring && net::uring_supported()
                       ? "uring"
                       : "epoll";
  // Resilience block: the chaos/self-healing counters live in the
  // PROCESS-WIDE registry (fault injection and client recovery are
  // infrastructure, like net.*), so this per-instance snapshot cannot
  // see them — surface them explicitly, next to the per-server shed
  // and phase-timeout counts.
  const obs::Snapshot g = obs::Registry::global().snapshot();
  const auto ull = [](uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  char resil[512];
  std::snprintf(
      resil, sizeof(resil),
      "\"resilience\":{\"fault.injected\":%llu,\"fault.short_read\":%llu,"
      "\"fault.short_write\":%llu,\"fault.delay\":%llu,\"fault.stall\":%llu,"
      "\"fault.reset\":%llu,\"fault.corrupt\":%llu,"
      "\"client.retries\":%llu,\"client.sessions_recovered\":%llu,"
      "\"pool.poisoned\":%llu,\"server.shed\":%llu,"
      "\"server.phase_timeouts\":%llu},",
      ull(g.counter_value("fault.injected")),
      ull(g.counter_value("fault.short_read")),
      ull(g.counter_value("fault.short_write")),
      ull(g.counter_value("fault.delay")),
      ull(g.counter_value("fault.stall")),
      ull(g.counter_value("fault.reset")),
      ull(g.counter_value("fault.corrupt")),
      ull(g.counter_value("client.retries")),
      ull(g.counter_value("client.sessions_recovered")),
      ull(g.counter_value("pool.poisoned")), ull(c_sessions_shed_.value()),
      ull(c_phase_timeouts_.value()));
  char head[384];
  std::snprintf(head, sizeof(head),
                "{\"core\":\"%s\",\"io\":\"%s\",\"sessions_active\":%llu,"
                "\"prefetch_bytes\":%llu,"
                "\"hash_backend\":\"%s\",\"cpu_features\":\"%s\","
                "\"accounting\":{\"phase_total_s\":%.6f,"
                "\"session_wall_s\":%.6f,\"accounted_fraction\":%.4f},",
                cfg_.core == ServerCore::kEventLoop ? "event" : "thread", io,
                static_cast<unsigned long long>(sessions_active_.load()),
                static_cast<unsigned long long>(prefetch_bytes_.load()),
                hash_backend().name, hash_backend_cpu_features().c_str(),
                phase_total_s, wall_s, accounted);
  std::string out = head;
  out += resil;
  out += "\"metrics\":";
  out += s.to_json();
  out += "}";
  return out;
}

// ---------------------------------------------------------------------
// Thread-per-session core.

// Join handler threads whose sessions already finished. Caller holds
// mu_; joins are near-instant because `done` is set in the handler's
// final critical section.
void InferenceServer::reap_finished_locked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->done->load() && it->thread.joinable()) {
      it->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void InferenceServer::accept_loop() {
  for (;;) {
    {
      // Hold accepting until a session slot frees; pending clients wait
      // in the listen backlog rather than being turned away. Under
      // shed_on_overload we accept regardless and answer kBusy below —
      // an overloaded server should say so, not go silent.
      std::unique_lock<std::mutex> lock(mu_);
      slot_cv_.wait(lock, [this] {
        return stopping_ || cfg_.shed_on_overload ||
               sessions_active_.load() < cfg_.max_sessions;
      });
      if (stopping_) return;
      reap_finished_locked();
    }
    std::unique_ptr<TcpChannel> transport;
    try {
      transport = std::make_unique<TcpChannel>(listener_.accept());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
      }
      // Transient accept failure (fd-limit spike): back off briefly —
      // outside mu_, so session completions and stop() are not stalled —
      // and keep serving instead of silently killing the accept loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (cfg_.shed_on_overload &&
        sessions_active_.load() >= cfg_.max_sessions) {
      // Graceful shed (v6): tell the client when to come back, close.
      // No session slot was ever claimed, so nothing to settle.
      c_sessions_shed_.add();
      try {
        send_busy(*transport, cfg_.busy_retry_after_ms);
      } catch (...) {
      }
      continue;
    }
    c_sessions_accepted_.add();
    sessions_active_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {  // raced with stop(): drop the connection
        sessions_active_.fetch_sub(1);
        return;
      }
      // Register the transport before the thread exists so stop()'s
      // forced-shutdown pass can never miss a live session.
      active_transports_.push_back(transport.get());
      auto done = std::make_shared<std::atomic<bool>>(false);
      SessionHandle h;
      h.done = done;
      h.thread = std::thread([this, t = std::move(transport), done]() mutable {
        handle_session(std::move(t), done);
      });
      handlers_.push_back(std::move(h));
    }
  }
}

// Accept loop for the dedicated prefetch-lane listener. Lanes do not
// consume max_sessions slots — a full server would otherwise deadlock
// every client opening its lane — and need no slot gate of their own:
// a lane is only useful with a valid single-use token, so the connection
// count is bounded by live sessions (token-less connections are
// rejected after one control frame).
void InferenceServer::lane_accept_loop() {
  for (;;) {
    std::unique_ptr<TcpChannel> transport;
    try {
      transport = std::make_unique<TcpChannel>(lane_listener_.accept());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    reap_finished_locked();
    active_transports_.push_back(transport.get());
    auto done = std::make_shared<std::atomic<bool>>(false);
    SessionHandle h;
    h.done = done;
    h.thread = std::thread([this, t = std::move(transport), done]() mutable {
      handle_lane(std::move(t), done);
    });
    handlers_.push_back(std::move(h));
  }
}

void InferenceServer::handle_session(std::unique_ptr<TcpChannel> transport,
                                     std::shared_ptr<std::atomic<bool>> done) {
  // Shared with this session's prefetch lane (if one attaches); all
  // budget accounting lives inside, settled exactly once per artifact.
  auto state = std::make_shared<SessionState>();
  uint64_t lane_token = 0;
  bool token_registered = false;
  const uint64_t t_accept = obs::now_ns();
  bool mid_phase = false;  // a frame was being served when we failed
  try {
    // Idle sessions may not pin a slot: every recv on this session is
    // bounded, and a timeout tears the session down like any peer error.
    if (cfg_.idle_timeout_ms > 0)
      transport->set_recv_timeout_ms(cfg_.idle_timeout_ms);
    if (cfg_.io == IoBackend::kUring) transport->enable_io_uring();
    // Chaos plane: wrap the transport so every protocol byte crosses
    // the fault plan; an injected reset also shuts the socket down so
    // the peer observes the failure.
    std::unique_ptr<FaultChannel> fault;
    Channel* wire = transport.get();
    if (cfg_.chaos.enabled()) {
      fault = std::make_unique<FaultChannel>(
          *transport, cfg_.chaos, chaos_index_.fetch_add(1),
          [t = transport.get()] { t->shutdown(); });
      wire = fault.get();
    }
    BufferedChannel ch(*wire, cfg_.stream.channel_buffer);
    try {

    // --- handshake (includes the wait for the client's hello) --------
    obs::Span hs_span("server.handshake");
    const Hello hello = parse_hello(recv_frame(ch));
    const char* reject = validate_hello(hello);
    if (reject != nullptr) {
      c_sessions_rejected_.add();
      send_error(ch, ErrorCode::kHandshake, reject);
      ch.flush();
      hs_span.end();
      h_handshake_.observe(obs::now_ns() - t_accept);
    } else {
      // Issue the lane token before the ack ships so a racing
      // kAttachLane can never observe an unregistered token.
      lane_token = register_lane_token(state);
      token_registered = true;
      HelloAck ack;
      ack.fingerprint = fingerprint_;
      ack.prefetch_quota = cfg_.max_prefetch;
      ack.lane_token = lane_token;
      ack.lane_port = lane_listener_.port();
      send_hello_ack(ch, ack);
      ch.flush();
      hs_span.end();
      h_handshake_.observe(obs::now_ns() - t_accept);

      // --- session loop: one EvaluatorSession (one OT setup), many
      // inferences — the streaming amortization the paper's Figure 6
      // assumes. kPrefetch parks offline artifacts (tables + resolved
      // evaluator labels) in the shared SessionState — pushed here or
      // through the async lane; a pooled kInfer then runs only the
      // online phase against one of them.
      std::unique_ptr<ThreadPool> eval_pool;
      if (cfg_.stream.eval_threads > 0)
        eval_pool = std::make_unique<ThreadPool>(cfg_.stream.eval_threads);
      EvaluatorSession session(ch, cfg_.stream.gc_options(eval_pool.get()));
      for (bool open = true; open;) {
        // The wait for the next frame is the thread core's idle phase:
        // everything between serving bursts lands here, which is what
        // lets stats_json() account a session's whole wall time.
        const uint64_t t_wait = obs::now_ns();
        obs::Span wait_span("server.recv_wait");
        const Frame f = recv_frame(ch);
        wait_span.end();
        h_recv_wait_.observe(obs::now_ns() - t_wait);
        // Protocol work is bounded by the phase deadline (a stalled
        // peer cannot pin this slot mid-exchange); the inter-frame
        // wait above stays on the idle timeout.
        PhaseDeadlineGuard phase(*transport, cfg_.phase_timeout_ms,
                                 cfg_.idle_timeout_ms);
        mid_phase = cfg_.phase_timeout_ms > 0;
        switch (f.type) {
          case FrameType::kInfer:
            open = handle_infer_frame(f, ch, session, *state);
            break;
          case FrameType::kPrefetch:
            open = handle_prefetch_push(f, ch, session, *state);
            break;
          case FrameType::kStats: {
            // v5 introspection: the reply payload is the same
            // self-describing JSON stats_json() serves locally.
            const std::string stats = stats_json();
            send_frame(ch, FrameType::kStatsReply, stats.data(),
                       stats.size());
            ch.flush();
            break;
          }
          case FrameType::kBye:
            open = false;
            break;
          default:
            send_error(ch, ErrorCode::kMalformed,
                       "unexpected frame in session loop");
            ch.flush();
            open = false;
            break;
        }
        mid_phase = false;
      }
    }
    } catch (const std::exception& e) {
      if (mid_phase && std::strstr(e.what(), "timed out") != nullptr)
        c_phase_timeouts_.add();
      // v6: malformed input or a local failure earns a coded kError
      // before teardown instead of a raw disconnect. Best-effort — the
      // transport may already be dead.
      try {
        send_error(ch, ErrorCode::kMalformed, e.what());
        ch.flush();
      } catch (...) {
      }
      throw;
    }
  } catch (...) {
    // Peer vanished or sent garbage: drop the session, keep serving.
  }
  // Teardown, in dependency order: unregister the token (no new lane
  // can resolve this session), then close the shared state — artifacts
  // die with their session, and the WHOLE remaining reservation
  // (stored artifacts + pushes still in flight on a lane) is returned
  // in one settlement. A lane mid-push observes `closed` afterwards and
  // knows not to settle again.
  if (token_registered) unregister_lane_token(lane_token);
  settle_session_state(*state);
  h_session_wall_.observe(obs::now_ns() - t_accept);
  h_session_bytes_in_.observe(transport->bytes_received());
  h_session_bytes_out_.observe(transport->bytes_sent());
  c_bytes_in_.add(transport->bytes_received());
  c_bytes_out_.add(transport->bytes_sent());
  {
    // Final critical section: unregister, free the slot, flag
    // completion, and notify — all under mu_ so the accept loop's
    // condition-variable wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = active_transports_.begin(); it != active_transports_.end();
         ++it) {
      if (*it == transport.get()) {
        active_transports_.erase(it);
        break;
      }
    }
    sessions_active_.fetch_sub(1);
    done->store(true);
    slot_cv_.notify_all();
  }
}

// Handler for one async-prefetch-lane connection: resolve the session
// by token, then serve kPrefetch pushes into its shared store until the
// client says kBye or either side fails. The lane runs its own
// EvaluatorSession (OT-extension state is per-connection), so its
// precomputed-OT exchanges proceed concurrently with evaluation on the
// primary connection.
void InferenceServer::handle_lane(std::unique_ptr<TcpChannel> transport,
                                  std::shared_ptr<std::atomic<bool>> done) {
  std::shared_ptr<SessionState> state;
  const uint64_t t_accept = obs::now_ns();
  bool mid_phase = false;
  try {
    if (cfg_.idle_timeout_ms > 0)
      transport->set_recv_timeout_ms(cfg_.idle_timeout_ms);
    if (cfg_.io == IoBackend::kUring) transport->enable_io_uring();
    std::unique_ptr<FaultChannel> fault;
    Channel* wire = transport.get();
    if (cfg_.chaos.enabled()) {
      fault = std::make_unique<FaultChannel>(
          *transport, cfg_.chaos, chaos_index_.fetch_add(1),
          [t = transport.get()] { t->shutdown(); });
      wire = fault.get();
    }
    BufferedChannel ch(*wire, cfg_.stream.channel_buffer);
    try {

    const uint64_t t_attach = obs::now_ns();
    obs::Span wait_span("server.recv_wait");
    const Frame attach = recv_frame(ch);
    wait_span.end();
    h_recv_wait_.observe(obs::now_ns() - t_attach);
    uint64_t token = 0;
    const char* reject = nullptr;
    if (attach.type != FrameType::kAttachLane) {
      reject = "expected lane attach";
    } else {
      token = parse_id(attach);
      state = attach_lane(token, &reject);
    }
    if (reject != nullptr) {
      c_lanes_rejected_.add();
      state = nullptr;  // nothing to detach below
      send_error(ch, ErrorCode::kLane, reject);
      ch.flush();
    } else {
      c_lanes_attached_.add();
      send_id_frame(ch, FrameType::kAttachLaneAck, token);
      ch.flush();
      // The lane never evaluates, so no eval shard pool here.
      EvaluatorSession session(ch, cfg_.stream.gc_options(nullptr));
      for (bool open = true; open;) {
        const uint64_t t_wait = obs::now_ns();
        obs::Span lane_wait("server.recv_wait");
        const Frame f = recv_frame(ch);
        lane_wait.end();
        h_recv_wait_.observe(obs::now_ns() - t_wait);
        PhaseDeadlineGuard phase(*transport, cfg_.phase_timeout_ms,
                                 cfg_.idle_timeout_ms);
        mid_phase = cfg_.phase_timeout_ms > 0;
        if (f.type == FrameType::kBye) {
          open = false;
        } else if (f.type == FrameType::kPrefetch) {
          open = handle_prefetch_push(f, ch, session, *state);
        } else {
          send_error(ch, ErrorCode::kMalformed,
                     "unexpected frame on prefetch lane");
          ch.flush();
          open = false;
        }
        mid_phase = false;
      }
    }
    } catch (const std::exception& e) {
      if (mid_phase && std::strstr(e.what(), "timed out") != nullptr)
        c_phase_timeouts_.add();
      try {
        send_error(ch, ErrorCode::kMalformed, e.what());
        ch.flush();
      } catch (...) {
      }
      throw;
    }
  } catch (...) {
    // Lane died; the primary session is unaffected (its artifacts and
    // reservations live in the shared state, settled by the session).
  }
  if (state != nullptr) {
    // Allow a reconnect: a dropped lane (idle timeout, transient
    // network failure) should not permanently demote the session to
    // synchronous prefetching.
    std::lock_guard<std::mutex> lk(state->mu);
    state->lane_attached = false;
  }
  h_lane_wall_.observe(obs::now_ns() - t_accept);
  c_bytes_in_.add(transport->bytes_received());
  c_bytes_out_.add(transport->bytes_sent());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = active_transports_.begin(); it != active_transports_.end();
         ++it) {
      if (*it == transport.get()) {
        active_transports_.erase(it);
        break;
      }
    }
    done->store(true);
    slot_cv_.notify_all();
  }
}

}  // namespace deepsecure::runtime
