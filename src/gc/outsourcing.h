// Secure outsourcing for constrained clients (Section 3.3):
// the client XOR-shares its input x into (s, x ^ s); a proxy server
// garbles with share s as its input, the main server evaluates with
// share x ^ s as an extra private input (via OT), and one layer of free
// XOR gates reconstructs x inside the circuit. Neither server learns x
// unless they collude (Proposition 3.2).
#pragma once

#include "circuit/circuit.h"
#include "crypto/prg.h"

namespace deepsecure {

/// XOR-share `bits` with fresh randomness from `prg`.
struct XorShares {
  BitVec share_a;  // the random pad s          -> proxy (garbler) input
  BitVec share_b;  // x ^ s                     -> main server input
};
XorShares xor_share(const BitVec& bits, Prg& prg);

/// Transform a circuit for outsourced execution: the original garbler
/// inputs become internal wires driven by an XOR layer whose operands
/// are a fresh garbler input vector (share s) and a fresh evaluator
/// input vector (share x^s, prepended before the original evaluator
/// inputs). Gate cost: +n XOR, +0 non-XOR (free).
Circuit add_xor_sharing_layer(const Circuit& c);

}  // namespace deepsecure
