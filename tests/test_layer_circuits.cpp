#include <gtest/gtest.h>

#include "synth/gate_count.h"
#include "synth/layer_circuits.h"
#include "test_util.h"

namespace deepsecure::synth {
namespace {

using test::pack_fixed;
using test::random_fixed;

constexpr FixedFormat kFmt = kDefaultFormat;

// Plaintext fixed-point forward pass mirroring the compiler's layout.
std::vector<Fixed> ref_forward(const ModelSpec& spec,
                               const std::vector<Fixed>& data,
                               const std::vector<Fixed>& weights) {
  std::vector<Fixed> x = data;
  Shape3 shape = spec.input;
  size_t wpos = 0;
  auto next_w = [&]() { return weights.at(wpos++); };

  for (const auto& layer : spec.layers) {
    if (const auto* fc = std::get_if<FcLayer>(&layer)) {
      const size_t in = shape.flat();
      std::vector<std::vector<Fixed>> w(fc->out);
      std::vector<std::vector<uint8_t>> mask(fc->out);
      for (size_t o = 0; o < fc->out; ++o) {
        mask[o].assign(in, 1);
        w[o].assign(in, Fixed::from_raw(0, kFmt));
        for (size_t i = 0; i < in; ++i) {
          if (!fc->mask.empty() && !fc->mask[o * in + i]) {
            mask[o][i] = 0;
            continue;
          }
          w[o][i] = next_w();
        }
      }
      std::vector<Fixed> bias(fc->out, Fixed::from_raw(0, kFmt));
      if (fc->has_bias)
        for (size_t o = 0; o < fc->out; ++o) bias[o] = next_w();
      std::vector<Fixed> y(fc->out, Fixed::from_raw(0, kFmt));
      for (size_t o = 0; o < fc->out; ++o) {
        Fixed acc = Fixed::from_raw(0, kFmt);
        for (size_t i = 0; i < in; ++i)
          if (mask[o][i]) acc = acc + x[i] * w[o][i];
        y[o] = acc + bias[o];
      }
      x = y;
    } else if (const auto* act = std::get_if<ActLayer>(&layer)) {
      for (auto& v : x) {
        if (act->kind == ActKind::kReLU)
          v = v.raw() > 0 ? v : Fixed::from_raw(0, kFmt);
        else
          throw std::logic_error("ref_forward: unsupported act");
      }
    } else if (const auto* pool = std::get_if<PoolLayer>(&layer)) {
      const Shape3 os = layer_output_shape(shape, layer);
      std::vector<Fixed> y(os.flat(), Fixed::from_raw(0, kFmt));
      for (size_t c = 0; c < shape.c; ++c)
        for (size_t oy = 0; oy < os.h; ++oy)
          for (size_t ox = 0; ox < os.w; ++ox) {
            int64_t best = INT64_MIN;
            for (size_t ky = 0; ky < pool->k; ++ky)
              for (size_t kx = 0; kx < pool->k; ++kx) {
                const size_t iy = oy * pool->stride + ky;
                const size_t ix = ox * pool->stride + kx;
                best = std::max(
                    best, x[(c * shape.h + iy) * shape.w + ix].raw());
              }
            y[(c * os.h + oy) * os.w + ox] = Fixed::from_raw(best, kFmt);
          }
      x = y;
    } else if (const auto* conv = std::get_if<ConvLayer>(&layer)) {
      const Shape3 os = layer_output_shape(shape, layer);
      std::vector<Fixed> w(conv->out_ch * shape.c * conv->k * conv->k,
                           Fixed::from_raw(0, kFmt));
      for (auto& v : w) v = next_w();
      std::vector<Fixed> bias(conv->out_ch, Fixed::from_raw(0, kFmt));
      if (conv->has_bias)
        for (auto& v : bias) v = next_w();
      std::vector<Fixed> y(os.flat(), Fixed::from_raw(0, kFmt));
      for (size_t oc = 0; oc < conv->out_ch; ++oc)
        for (size_t oy = 0; oy < os.h; ++oy)
          for (size_t ox = 0; ox < os.w; ++ox) {
            Fixed acc = Fixed::from_raw(0, kFmt);
            for (size_t ic = 0; ic < shape.c; ++ic)
              for (size_t ky = 0; ky < conv->k; ++ky)
                for (size_t kx = 0; kx < conv->k; ++kx) {
                  const size_t iy = oy * conv->stride + ky;
                  const size_t ix = ox * conv->stride + kx;
                  acc = acc + x[(ic * shape.h + iy) * shape.w + ix] *
                                  w[((oc * shape.c + ic) * conv->k + ky) *
                                        conv->k + kx];
                }
            y[(oc * os.h + oy) * os.w + ox] = acc + bias[oc];
          }
      x = y;
    } else if (std::holds_alternative<ArgmaxLayer>(layer)) {
      size_t best = 0;
      for (size_t i = 1; i < x.size(); ++i)
        if (x[i].raw() > x[best].raw()) best = i;
      return {Fixed::from_raw(static_cast<int64_t>(best), kFmt)};
    }
    shape = layer_output_shape(shape, layer);
  }
  return x;
}

ModelSpec tiny_cnn() {
  ModelSpec spec;
  spec.name = "tiny_cnn";
  spec.input = Shape3{6, 6, 1};
  spec.layers.push_back(ConvLayer{3, 1, 2, true});
  spec.layers.push_back(ActLayer{ActKind::kReLU});
  spec.layers.push_back(PoolLayer{PoolKind::kMax, 2, 2});
  spec.layers.push_back(FcLayer{3, {}, true});
  spec.layers.push_back(ArgmaxLayer{});
  return spec;
}

TEST(LayerCircuits, ShapesAndWeightCounts) {
  const ModelSpec spec = tiny_cnn();
  Shape3 s = spec.input;
  s = layer_output_shape(s, spec.layers[0]);
  EXPECT_EQ(s.h, 4u);
  EXPECT_EQ(s.w, 4u);
  EXPECT_EQ(s.c, 2u);
  s = layer_output_shape(s, spec.layers[2]);
  EXPECT_EQ(s.h, 2u);
  EXPECT_EQ(s.flat(), 8u);
  // conv: 2*1*3*3 + 2 bias = 20; fc: 8*3 + 3 = 27.
  EXPECT_EQ(model_weight_count(spec), 47u);
}

TEST(LayerCircuits, CnnForwardMatchesReference) {
  const ModelSpec spec = tiny_cnn();
  const Circuit c = compile_model(spec);
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Fixed> data, weights;
    for (size_t i = 0; i < spec.input.flat(); ++i)
      data.push_back(random_fixed(rng, kFmt, 0.1));
    for (size_t i = 0; i < model_weight_count(spec); ++i)
      weights.push_back(random_fixed(rng, kFmt, 0.1));
    const BitVec out = c.eval(pack_fixed(data), pack_fixed(weights));
    const auto expect = ref_forward(spec, data, weights);
    EXPECT_EQ(from_bits(out), static_cast<uint64_t>(expect[0].raw()));
  }
}

TEST(LayerCircuits, SparseFcMatchesReference) {
  ModelSpec spec;
  spec.name = "sparse_fc";
  spec.input = Shape3{1, 1, 6};
  FcLayer fc{4, {}, true};
  fc.mask.assign(24, 0);
  Rng mask_rng(7);
  for (auto& m : fc.mask) m = mask_rng.next_bool() ? 1 : 0;
  spec.layers.push_back(fc);
  spec.layers.push_back(ArgmaxLayer{});

  const Circuit c = compile_model(spec);
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Fixed> data, weights;
    for (size_t i = 0; i < 6; ++i) data.push_back(random_fixed(rng, kFmt, 0.2));
    for (size_t i = 0; i < model_weight_count(spec); ++i)
      weights.push_back(random_fixed(rng, kFmt, 0.2));
    const BitVec out = c.eval(pack_fixed(data), pack_fixed(weights));
    const auto expect = ref_forward(spec, data, weights);
    EXPECT_EQ(from_bits(out), static_cast<uint64_t>(expect[0].raw()));
  }
}

TEST(LayerCircuits, LayeredCompileMatchesMonolithic) {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input = Shape3{1, 1, 5};
  spec.layers.push_back(FcLayer{4, {}, true});
  spec.layers.push_back(ActLayer{ActKind::kReLU});
  spec.layers.push_back(FcLayer{3, {}, true});
  spec.layers.push_back(ArgmaxLayer{});

  const Circuit mono = compile_model(spec);
  const auto layers = compile_model_layers(spec);
  ASSERT_EQ(layers.size(), 4u);

  Rng rng(17);
  std::vector<Fixed> data, weights;
  for (size_t i = 0; i < 5; ++i) data.push_back(random_fixed(rng, kFmt, 0.2));
  for (size_t i = 0; i < model_weight_count(spec); ++i)
    weights.push_back(random_fixed(rng, kFmt, 0.2));

  const BitVec mono_out = mono.eval(pack_fixed(data), pack_fixed(weights));

  // Chain the per-layer circuits manually.
  BitVec x = pack_fixed(data);
  const BitVec wbits = pack_fixed(weights);
  size_t wpos = 0;
  for (const Circuit& lc : layers) {
    const size_t nw = lc.evaluator_inputs.size();
    const BitVec wslice(wbits.begin() + static_cast<ptrdiff_t>(wpos),
                        wbits.begin() + static_cast<ptrdiff_t>(wpos + nw));
    wpos += nw;
    x = lc.eval(x, wslice);
  }
  EXPECT_EQ(x, mono_out);
}

TEST(GateCount, RollUpTracksCompiledCircuit) {
  // For an FC-only model the analytic count must match the compiled
  // netlist closely (constant folding differences stay tiny).
  ModelSpec spec;
  spec.input = Shape3{1, 1, 8};
  spec.layers.push_back(FcLayer{6, {}, true});
  spec.layers.push_back(ActLayer{ActKind::kReLU});
  spec.layers.push_back(FcLayer{4, {}, true});

  const GateCount analytic = count_model(spec);
  const GateCount compiled = count_circuit(compile_model(spec));
  const double ratio = static_cast<double>(analytic.num_non_xor) /
                       static_cast<double>(compiled.num_non_xor);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(GateCount, SparsityReducesCounts) {
  ModelSpec dense;
  dense.input = Shape3{1, 1, 100};
  dense.layers.push_back(FcLayer{50, {}, true});

  ModelSpec sparse = dense;
  auto& fc = std::get<FcLayer>(sparse.layers[0]);
  fc.mask.assign(100 * 50, 0);
  for (size_t i = 0; i < fc.mask.size(); i += 10) fc.mask[i] = 1;  // keep 10%

  const GateCount gd = count_model(dense);
  const GateCount gs = count_model(sparse);
  EXPECT_LT(gs.num_non_xor * 5, gd.num_non_xor);
}

TEST(GateCount, BlockCostsSanity) {
  const BlockCosts& c = block_costs(kFmt);
  EXPECT_EQ(c.add.num_non_xor, 15u);
  EXPECT_EQ(c.relu.num_non_xor, 15u);
  EXPECT_GT(c.mult.num_non_xor, 100u);
  EXPECT_GT(c.div.num_non_xor, c.add.num_non_xor);
  EXPECT_GT(c.act[static_cast<int>(ActKind::kTanhLUT)].num_non_xor,
            c.act[static_cast<int>(ActKind::kTanhPL)].num_non_xor);
}

}  // namespace
}  // namespace deepsecure::synth
