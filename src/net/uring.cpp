#include "net/uring.h"

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace deepsecure::net {
namespace {

// Raw syscall stubs — the two entry points the whole interface needs.
int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}
int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

[[noreturn]] void die(const std::string& what, int err) {
  throw std::runtime_error("uring: " + what + ": " + std::strerror(err));
}

bool peer_gone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

constexpr unsigned kSqEntries = 64;   // linked frames per enter, max
constexpr size_t kIovPerSqe = 1024;   // kernel UIO_MAXIOV per sendmsg op

// The mmap'd ring indices are plain u32s the kernel updates; access
// them through atomics for the required acquire/release ordering.
std::atomic<unsigned>* ring_atomic(void* base, unsigned off) {
  return reinterpret_cast<std::atomic<unsigned>*>(
      static_cast<uint8_t*>(base) + off);
}

}  // namespace

bool uring_supported() {
  static const bool ok = [] {
    const char* off = std::getenv("DEEPSECURE_NO_URING");
    if (off != nullptr && off[0] != '\0' && !(off[0] == '0' && off[1] == '\0'))
      return false;
    io_uring_params p{};
    const int fd = sys_io_uring_setup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return ok;
}

struct UringQueue::Impl {
  int ring_fd = -1;
  unsigned sq_entries = 0;

  void* sq_ring = MAP_FAILED;
  size_t sq_ring_bytes = 0;
  void* cq_ring = MAP_FAILED;  // == sq_ring under IORING_FEAT_SINGLE_MMAP
  size_t cq_ring_bytes = 0;
  io_uring_sqe* sqes = static_cast<io_uring_sqe*>(MAP_FAILED);
  size_t sqes_bytes = 0;
  bool single_mmap = false;

  std::atomic<unsigned>* sq_head = nullptr;
  std::atomic<unsigned>* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  std::atomic<unsigned>* cq_head = nullptr;
  std::atomic<unsigned>* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  ~Impl() {
    if (sqes != MAP_FAILED) ::munmap(sqes, sqes_bytes);
    if (cq_ring != MAP_FAILED && !single_mmap)
      ::munmap(cq_ring, cq_ring_bytes);
    if (sq_ring != MAP_FAILED) ::munmap(sq_ring, sq_ring_bytes);
    if (ring_fd >= 0) ::close(ring_fd);
  }

  bool setup() {
    io_uring_params p{};
    ring_fd = sys_io_uring_setup(kSqEntries, &p);
    if (ring_fd < 0) return false;
    sq_entries = p.sq_entries;
    single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;

    sq_ring_bytes = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_bytes = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    if (single_mmap && cq_ring_bytes > sq_ring_bytes)
      sq_ring_bytes = cq_ring_bytes;

    sq_ring = ::mmap(nullptr, sq_ring_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) return false;
    if (single_mmap) {
      cq_ring = sq_ring;
      cq_ring_bytes = sq_ring_bytes;
    } else {
      cq_ring = ::mmap(nullptr, cq_ring_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd,
                       IORING_OFF_CQ_RING);
      if (cq_ring == MAP_FAILED) return false;
    }
    sqes_bytes = p.sq_entries * sizeof(io_uring_sqe);
    sqes = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_bytes, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES));
    if (sqes == MAP_FAILED) return false;

    sq_head = ring_atomic(sq_ring, p.sq_off.head);
    sq_tail = ring_atomic(sq_ring, p.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(
        static_cast<uint8_t*>(sq_ring) + p.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(
        static_cast<uint8_t*>(sq_ring) + p.sq_off.array);
    cq_head = ring_atomic(cq_ring, p.cq_off.head);
    cq_tail = ring_atomic(cq_ring, p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(
        static_cast<uint8_t*>(cq_ring) + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(
        static_cast<uint8_t*>(cq_ring) + p.cq_off.cqes);
    return true;
  }

  /// Ship msgs[0..count) in order as a linked SENDMSG chain,
  /// RESUBMITTING the remainder whenever a completion is short. On a
  /// nonblocking socket (the event core) MSG_WAITALL does not make the
  /// socket layer wait — sendmsg ships what fits in the send buffer —
  /// but io_uring's link semantics still honor it: a short completion
  /// marks the op failed, so every linked successor lands as
  /// -ECANCELED and the byte stream can have NO gap. Each round here
  /// trims the first pending msg's iovec view past the bytes already
  /// on the wire (the arrays are caller-throwaway — see send_batch)
  /// and resubmits it plus all canceled successors; a zero-progress
  /// -EAGAIN round poll()s for POLLOUT instead of hot-spinning.
  /// Returns the number of io_uring_enter calls made.
  size_t submit_chain(int fd, msghdr* msgs, const size_t* expected,
                      unsigned count) {
    size_t enters = 0;
    std::vector<size_t> done(count, 0);      // bytes on the wire per msg
    std::vector<size_t> advanced(count, 0);  // bytes trimmed off iovecs
    unsigned first = 0;  // first msg not yet fully shipped
    while (first < count) {
      // Resume point: advance the partially-sent msg's iovec array past
      // what the previous round already shipped.
      if (done[first] > advanced[first]) {
        size_t skip = done[first] - advanced[first];
        msghdr& m = msgs[first];
        while (skip > 0 && m.msg_iovlen > 0) {
          if (m.msg_iov->iov_len <= skip) {
            skip -= m.msg_iov->iov_len;
            ++m.msg_iov;
            --m.msg_iovlen;
          } else {
            m.msg_iov->iov_base =
                static_cast<uint8_t*>(m.msg_iov->iov_base) + skip;
            m.msg_iov->iov_len -= skip;
            skip = 0;
          }
        }
        advanced[first] = done[first];
      }

      unsigned tail = sq_tail->load(std::memory_order_relaxed);
      for (unsigned i = first; i < count; ++i) {
        const unsigned idx = tail & sq_mask;
        io_uring_sqe& sqe = sqes[idx];
        std::memset(&sqe, 0, sizeof(sqe));
        sqe.opcode = IORING_OP_SENDMSG;
        sqe.fd = fd;
        sqe.addr = reinterpret_cast<uint64_t>(&msgs[i]);
        sqe.msg_flags = MSG_WAITALL | MSG_NOSIGNAL;
        sqe.user_data = i;
        if (i + 1 < count) sqe.flags = IOSQE_IO_LINK;
        sq_array[idx] = idx;
        ++tail;
      }
      sq_tail->store(tail, std::memory_order_release);

      const unsigned round = count - first;
      unsigned completed = 0;
      int first_err = 0;
      bool retryable = false;
      unsigned to_submit = round;
      while (completed < round) {
        const int rc = sys_io_uring_enter(ring_fd, to_submit,
                                          round - completed,
                                          IORING_ENTER_GETEVENTS);
        if (rc < 0) {
          if (errno == EINTR) continue;
          die("io_uring_enter", errno);
        }
        ++enters;
        to_submit = 0;  // submitted on the first successful enter
        unsigned head = cq_head->load(std::memory_order_relaxed);
        const unsigned cq_seen = cq_tail->load(std::memory_order_acquire);
        while (head != cq_seen) {
          const io_uring_cqe& cqe = cqes[head & cq_mask];
          const unsigned i = static_cast<unsigned>(cqe.user_data);
          if (cqe.res >= 0) {
            // Full OR short: both count real bytes. A short completion
            // breaks the link (MSG_WAITALL), so successors cancel and
            // the next round resumes from the gap-free remainder.
            done[i] += static_cast<size_t>(cqe.res);
          } else if (cqe.res == -EAGAIN || cqe.res == -EINTR) {
            retryable = true;  // transient: resubmit, no progress made
          } else if (cqe.res != -ECANCELED) {
            // A failed op cancels the rest of its link chain (-ECANCELED
            // completions follow); remember the root cause only.
            if (first_err == 0) first_err = -cqe.res;
          }
          ++completed;
          ++head;
        }
        cq_head->store(head, std::memory_order_release);
      }
      if (first_err != 0) {
        if (peer_gone(first_err))
          throw std::runtime_error("tcp: peer closed connection");
        die("sendmsg", first_err);
      }
      while (first < count && done[first] >= expected[first]) ++first;
      if (first < count && retryable && done[first] == advanced[first]) {
        // Zero-progress -EAGAIN round: the socket buffer is full. Wait
        // for writability instead of burning io_uring_enter calls.
        pollfd pfd{fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 1000);
      }
    }
    return enters;
  }
};

std::unique_ptr<UringQueue> UringQueue::create() {
  if (!uring_supported()) return nullptr;
  auto q = std::unique_ptr<UringQueue>(new UringQueue());
  q->impl_ = std::make_unique<Impl>();
  if (!q->impl_->setup()) return nullptr;
  return q;
}

UringQueue::~UringQueue() = default;

size_t UringQueue::send_batch(int fd, iovec* iov, size_t n) {
  size_t enters = 0;
  size_t at = 0;
  while (at < n) {
    // One chain: up to sq_entries SQEs, each covering <= kIovPerSqe
    // iovecs of the caller's array.
    msghdr msgs[kSqEntries];
    size_t expected[kSqEntries];
    const unsigned chain_max = std::min(impl_->sq_entries, kSqEntries);
    unsigned count = 0;
    while (at < n && count < chain_max) {
      const size_t take = std::min(n - at, kIovPerSqe);
      msghdr& m = msgs[count];
      std::memset(&m, 0, sizeof(m));
      m.msg_iov = iov + at;
      m.msg_iovlen = take;
      size_t bytes = 0;
      for (size_t i = 0; i < take; ++i) bytes += iov[at + i].iov_len;
      expected[count] = bytes;
      at += take;
      ++count;
    }
    enters += impl_->submit_chain(fd, msgs, expected, count);
  }
  return enters;
}

}  // namespace deepsecure::net
