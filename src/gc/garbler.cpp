#include "gc/garble.h"

#include <cstdlib>
#include <stdexcept>

#include "crypto/aes128.h"
#include "crypto/hash_backend.h"
#include "gc/batch_walk.h"
#include "gc/block_io.h"
#include "support/thread_pool.h"

namespace deepsecure {

bool gc_schedule_default() {
  static const bool enabled = [] {
    const char* v = std::getenv("DEEPSECURE_NO_SCHEDULE");
    return v == nullptr || v[0] == '\0' ||
           (v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

Garbler::Garbler(Channel& ch, Block seed, GcPipeline pipeline)
    : Garbler(ch, seed, GcOptions{.pipeline = pipeline}) {}

Garbler::Garbler(Channel& ch, Block seed, const GcOptions& opt)
    : ch_(ch), prg_(seed), opt_(opt) {
  delta_ = prg_.next_block();
  delta_.lo |= 1;  // point-and-permute: lsb(delta) = 1
}

Labels Garbler::fresh_zeros(size_t n) {
  Labels zeros(n);
  prg_.next_blocks(zeros.data(), n);
  return zeros;
}

Labels Garbler::garble(const Circuit& c, const Labels& garbler_zeros,
                       const Labels& evaluator_zeros, const Labels& state_zeros,
                       Labels* state_next) {
  if (garbler_zeros.size() != c.garbler_inputs.size() ||
      evaluator_zeros.size() != c.evaluator_inputs.size() ||
      state_zeros.size() != c.state_inputs.size())
    throw std::invalid_argument("garble: input label count mismatch");

  Labels w(c.num_wires);
  // Constants: fresh labels each garbling; the evaluator receives the
  // *active* labels (value 0 for kConst0, value 1 for kConst1). Delta
  // never leaves this side.
  w[kConst0] = prg_.next_block();
  w[kConst1] = prg_.next_block();
  ch_.send_block(w[kConst0]);
  ch_.send_block(w[kConst1] ^ delta_);

  for (size_t i = 0; i < garbler_zeros.size(); ++i)
    w[c.garbler_inputs[i]] = garbler_zeros[i];
  for (size_t i = 0; i < evaluator_zeros.size(); ++i)
    w[c.evaluator_inputs[i]] = evaluator_zeros[i];
  for (size_t i = 0; i < state_zeros.size(); ++i)
    w[c.state_inputs[i]] = state_zeros[i];

  // The scheduled view permutes only the gate list — wire ids, inputs
  // and outputs are untouched — so `w` and the epilogue below work on
  // either order. Both pipelines honor it so scalar stays byte-identical
  // to batched under the same options.
  std::shared_ptr<const Circuit> sched;
  const Circuit& walk = opt_.schedule ? *(sched = c.gc_scheduled()) : c;

  BlockWriter tables(ch_, 1 << 15, opt_.framed_tables);
  if (opt_.pipeline == GcPipeline::kScalar)
    garble_gates_scalar(walk, w, tables);
  else
    garble_gates_batched(walk, w, tables);
  tables.flush();

  if (state_next != nullptr) {
    state_next->resize(c.state_next.size());
    for (size_t i = 0; i < c.state_next.size(); ++i)
      (*state_next)[i] = w[c.state_next[i]];
  }
  Labels out(c.outputs.size());
  for (size_t i = 0; i < c.outputs.size(); ++i) out[i] = w[c.outputs[i]];
  return out;
}

// Retained scalar reference path: one gc_hash call per hash. Kept for
// cross-checking the batched pipeline (byte-identical tables) and as the
// baseline in the garble-throughput benchmarks.
void Garbler::garble_gates_scalar(const Circuit& c, Labels& w,
                                  BlockWriter& tables) {
  for (const Gate& g : c.gates) {
    if (g.op == GateOp::kXor) {
      w[g.out] = w[g.a] ^ w[g.b];  // free-XOR
      continue;
    }
    // Half-gates AND.
    const Block a0 = w[g.a];
    const Block b0 = w[g.b];
    const bool pa = a0.lsb();
    const bool pb = b0.lsb();
    const uint64_t j0 = tweak_++;
    const uint64_t j1 = tweak_++;

    const Block ha0 = gc_hash(a0, j0);
    const Block ha1 = gc_hash(a0 ^ delta_, j0);
    const Block hb0 = gc_hash(b0, j1);
    const Block hb1 = gc_hash(b0 ^ delta_, j1);

    Block tg = ha0 ^ ha1;
    if (pb) tg ^= delta_;
    Block wg = ha0;
    if (pa) wg ^= tg;

    const Block te = hb0 ^ hb1 ^ a0;
    Block we = hb0;
    if (pb) we ^= te ^ a0;

    tables.put(tg);
    tables.put(te);
    w[g.out] = wg ^ we;
  }
}

// Batched pipeline: AND gates are enqueued into a window whose hash
// inputs {a0, a0^delta, b0, b0^delta} are expanded and hashed by
// gc_hash_and_quads in one pipelined AES sweep. The window drains at the
// circuit's precomputed flush points (a gate reading a still-pending AND
// output), at capacity, and at the end of the gate list. Tweaks are
// assigned at enqueue time and tables are emitted in enqueue (= gate)
// order, so the byte stream is identical to the scalar schedule.
//
// With a ThreadPool, a draining window is split into contiguous
// per-thread shards — independent sub-windows of the same flush
// schedule, since every gate in the window reads only non-pending wires.
// Each shard runs its own gc_hash_and_quads sweep over its slice of the
// enqueue-ordered arrays into disjoint slices of the scratch buffers;
// table rows still stream out serially in enqueue order afterwards, so
// the transcript stays byte-identical to single-threaded garbling.
void Garbler::garble_gates_batched(const Circuit& c, Labels& w,
                                   BlockWriter& tables) {
  const HashBackend& be =
      opt_.hash_backend != nullptr ? *opt_.hash_backend : hash_backend();
  // Zero-copy plane: the staging line lives in a refcounted pool slab,
  // so a drained window's table rows ship as borrowed slices and the
  // line is replaced by a fresh slab instead of being reused — the old
  // slab stays pinned by the transport until its bytes are on the wire,
  // then recycles through the pool.
  const bool zero_copy = opt_.table_pool != nullptr;
  GarbleWindowLine line =
      zero_copy ? GarbleWindowLine(kGcMaxBatchWindow, *opt_.table_pool)
                : GarbleWindowLine(kGcMaxBatchWindow);

  auto flush = [&](bool level_boundary) {
    const size_t n = line.size;
    if (n == 0) {
      // A level whose AND count is an exact multiple of the window
      // capacity drains entirely via capacity flushes; its boundary
      // then arrives on an empty window and must still cut the frame,
      // or the level's tables would silently merge into the next
      // level's frame.
      if (level_boundary) tables.mark_window(true);
      return;
    }
    auto shard = [&](size_t lo, size_t hi) {
      gc_hash_and_quads(be, line.a0 + lo, line.b0 + lo, delta_,
                        line.tweaks + 2 * lo, line.hashes + 4 * lo, hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        const Block a0 = line.a0[i];
        const Block ha0 = line.hashes[4 * i + 0];
        const Block ha1 = line.hashes[4 * i + 1];
        const Block hb0 = line.hashes[4 * i + 2];
        const Block hb1 = line.hashes[4 * i + 3];

        Block tg = ha0 ^ ha1;
        if (line.b0[i].lsb()) tg ^= delta_;
        Block wg = ha0;
        if (a0.lsb()) wg ^= tg;

        const Block te = hb0 ^ hb1 ^ a0;
        Block we = hb0;
        if (line.b0[i].lsb()) we ^= te ^ a0;

        line.tabs[2 * i] = tg;
        line.tabs[2 * i + 1] = te;
        w[line.outs[i]] = wg ^ we;  // disjoint wires across shards
      }
    };
    if (opt_.pool != nullptr)
      opt_.pool->parallel_shards(n, opt_.min_shard_gates, shard);
    else
      shard(0, n);
    if (zero_copy) {
      tables.put_borrowed(line.tabs, 2 * n, line.slab());
      line = GarbleWindowLine(kGcMaxBatchWindow, *opt_.table_pool);
    } else {
      for (size_t i = 0; i < 2 * n; ++i) tables.put(line.tabs[i]);
    }
    // Frames cut only at level boundaries: a capacity drain mid-level
    // keeps buffering so wide scheduled levels ship as one frame.
    tables.mark_window(level_boundary);
    line.size = 0;
  };

  gc_batched_walk(
      c,
      [&](const Gate& g) { w[g.out] = w[g.a] ^ w[g.b]; },  // free-XOR
      [&](const Gate& g) {
        const size_t i = line.size++;
        line.a0[i] = w[g.a];
        line.b0[i] = w[g.b];
        line.tweaks[2 * i] = tweak_++;
        line.tweaks[2 * i + 1] = tweak_++;
        line.outs[i] = g.out;
      },
      flush);
}

void Garbler::send_active(const BitVec& bits, const Labels& zeros) {
  if (bits.size() != zeros.size())
    throw std::invalid_argument("send_active size mismatch");
  std::vector<Block> active(bits.size());
  for (size_t i = 0; i < bits.size(); ++i)
    active[i] = bits[i] ? (zeros[i] ^ delta_) : zeros[i];
  if (!active.empty())
    ch_.send_bytes(active.data(), active.size() * sizeof(Block));
}

BitVec Garbler::decode_outputs(const Labels& output_zeros) {
  std::vector<Block> received(output_zeros.size());
  if (!received.empty())
    ch_.recv_bytes(received.data(), received.size() * sizeof(Block));
  BitVec bits(output_zeros.size());
  for (size_t i = 0; i < output_zeros.size(); ++i) {
    if (received[i] == output_zeros[i]) {
      bits[i] = 0;
    } else if (received[i] == (output_zeros[i] ^ delta_)) {
      bits[i] = 1;
    } else {
      throw std::runtime_error("decode_outputs: label not in wire range");
    }
  }
  return bits;
}

void Garbler::send_decode_info(const Labels& output_zeros) {
  BitVec perm(output_zeros.size());
  for (size_t i = 0; i < output_zeros.size(); ++i)
    perm[i] = output_zeros[i].lsb() ? 1 : 0;
  ch_.send_bits(perm);
}

}  // namespace deepsecure
