// Per-phase span tracer: RAII spans written to per-thread lock-free
// event rings (support/spsc_ring.h), drained by an exporter into
// chrome://tracing-compatible JSON (load the file at chrome://tracing
// or https://ui.perfetto.dev).
//
// Cost model — the reason this can stay compiled into the serving path:
//
//   * disabled (default): Span's constructor is ONE relaxed atomic
//     load; no clock read, no ring, no allocation. The destructor sees
//     a null name and does nothing.
//   * enabled: two steady_clock reads plus one SpscRing push into a
//     thread-local ring. No locks, no blocking — a full ring DROPS the
//     event and counts it (dropped()); tracing degrades, the serving
//     path never stalls on its own telemetry.
//
// Threading: each producing thread owns a private ring (it is the
// single producer); the exporter is the single consumer of every ring,
// serialized by the tracer's mutex. Rings are kept alive by the global
// tracer after their thread exits, so late drains still see the tail
// of a finished session thread.
//
// Span names must be string literals (or otherwise outlive the
// tracer): events store the pointer, not a copy.
//
// Typical wiring (see bench/loadgen_inference.cpp --trace):
//
//   obs::set_trace_enabled(true);
//   ... run the workload; hot paths construct obs::Span("phase") ...
//   obs::write_chrome_trace("trace.json");   // drains + serializes
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace deepsecure::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
void trace_emit(const char* name, uint64_t start_ns, uint64_t dur_ns);
}  // namespace detail

/// The single relaxed load every potential span pays when disabled.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Flip tracing on/off. Spans already open complete normally (their
/// constructor's decision stands).
void set_trace_enabled(bool on);

/// Events a NEW thread ring can hold before overrunning (existing rings
/// keep their size). Power of two, default 4096. Call before enabling.
void set_trace_ring_capacity(size_t events);

/// RAII span: measures construction → destruction and emits one
/// complete ("ph":"X") event. `name` must outlive the tracer (use a
/// string literal).
class Span {
 public:
  explicit Span(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      start_ns_ = now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr)
      detail::trace_emit(name_, start_ns_, now_ns() - start_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// End the span early (emits now; the destructor becomes a no-op).
  void end() {
    if (name_ != nullptr) {
      detail::trace_emit(name_, start_ns_, now_ns() - start_ns_);
      name_ = nullptr;
    }
  }

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

/// Record an already-measured interval as a span (for phases whose
/// start/end do not nest lexically, e.g. park → readiness dispatch).
inline void trace_interval(const char* name, uint64_t start_ns,
                           uint64_t dur_ns) {
  if (trace_enabled()) detail::trace_emit(name, start_ns, dur_ns);
}

/// Move every ring's pending events into the exporter buffer. Called
/// automatically by write_chrome_trace; call it mid-run to bound ring
/// occupancy during long workloads.
void trace_drain();

/// Events dropped on full rings (or a full exporter buffer) since
/// process start. Monotonic, never reset.
uint64_t trace_dropped();

/// Events currently held in the exporter buffer (post-drain).
size_t trace_collected();

/// Drop all collected events and start a fresh trace window.
void trace_reset();

/// Drain, then serialize every collected event as chrome://tracing
/// JSON: {"traceEvents":[{"name","ph":"X","pid","tid","ts","dur"},...]}
/// with ts/dur in microseconds.
std::string chrome_trace_json();

/// chrome_trace_json() to a file. Throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path);

}  // namespace deepsecure::obs
