#include <gtest/gtest.h>

#include "gc/ot.h"
#include "net/party.h"
#include "support/rng.h"

namespace deepsecure {
namespace {

TEST(BaseOt, TransfersChosenMessage) {
  Rng rng(1);
  const size_t n = 8;
  std::vector<std::pair<Block, Block>> msgs(n);
  BitVec choices(n);
  for (size_t i = 0; i < n; ++i) {
    msgs[i] = {Block{rng.next_u64(), rng.next_u64()},
               Block{rng.next_u64(), rng.next_u64()}};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{11, 0});
        base_ot_send(ch, msgs, prg);
      },
      [&](Channel& ch) {
        Prg prg(Block{22, 0});
        received = base_ot_recv(ch, choices, prg);
      });

  ASSERT_EQ(received.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const Block want = choices[i] ? msgs[i].second : msgs[i].first;
    EXPECT_EQ(received[i], want) << "i=" << i;
    // And the unchosen message must differ (sanity that we didn't get both).
    const Block other = choices[i] ? msgs[i].first : msgs[i].second;
    EXPECT_NE(received[i], other);
  }
}

TEST(OtExtension, LargeBatch) {
  Rng rng(2);
  const size_t m = 1000;
  std::vector<std::pair<Block, Block>> msgs(m);
  BitVec choices(m);
  for (size_t i = 0; i < m; ++i) {
    msgs[i] = {Block{rng.next_u64(), i}, Block{rng.next_u64(), ~i}};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{33, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        sender.send(msgs);
      },
      [&](Channel& ch) {
        Prg prg(Block{44, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        received = receiver.recv(choices);
      });

  ASSERT_EQ(received.size(), m);
  for (size_t i = 0; i < m; ++i)
    EXPECT_EQ(received[i], choices[i] ? msgs[i].second : msgs[i].first);
}

TEST(OtExtension, MultipleBatchesReuseSetup) {
  Rng rng(3);
  std::vector<std::vector<std::pair<Block, Block>>> batches;
  std::vector<BitVec> choices;
  for (size_t b = 0; b < 3; ++b) {
    const size_t m = 50 + 37 * b;
    batches.emplace_back(m);
    choices.emplace_back(m);
    for (size_t i = 0; i < m; ++i) {
      batches[b][i] = {Block{rng.next_u64(), 0}, Block{rng.next_u64(), 1}};
      choices[b][i] = rng.next_bool();
    }
  }

  std::vector<std::vector<Block>> received(3);
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{55, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        for (const auto& batch : batches) sender.send(batch);
      },
      [&](Channel& ch) {
        Prg prg(Block{66, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        for (const auto& ch_bits : choices)
          received[&ch_bits - choices.data()] = receiver.recv(ch_bits);
      });

  for (size_t b = 0; b < 3; ++b)
    for (size_t i = 0; i < choices[b].size(); ++i)
      EXPECT_EQ(received[b][i],
                choices[b][i] ? batches[b][i].second : batches[b][i].first);
}

TEST(OtExtension, CorrelatedVariantDeliversLabels) {
  Rng rng(4);
  const size_t m = 200;
  Block delta{rng.next_u64(), rng.next_u64()};
  delta.lo |= 1;
  std::vector<Block> zeros(m);
  BitVec choices(m);
  for (size_t i = 0; i < m; ++i) {
    zeros[i] = Block{rng.next_u64(), rng.next_u64()};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{77, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        sender.send_correlated(zeros, delta);
      },
      [&](Channel& ch) {
        Prg prg(Block{88, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        received = receiver.recv(choices);
      });

  for (size_t i = 0; i < m; ++i)
    EXPECT_EQ(received[i], choices[i] ? (zeros[i] ^ delta) : zeros[i]);
}

TEST(OtExtension, UnreadySendThrows) {
  auto pair = make_channel_pair();
  OtExtSender sender(*pair.a);
  EXPECT_THROW(sender.send({{kZeroBlock, kZeroBlock}}), std::logic_error);
  OtExtReceiver receiver(*pair.b);
  EXPECT_THROW(receiver.recv({1}), std::logic_error);
}

// ---------------------------------------------------------------------
// Precomputed random OTs + Beaver derandomization (the offline/online
// split: the extension rounds run ahead of time, the online phase is
// one correction message plus the masked payload).

TEST(OtPrecompute, DerandomizedMatchesDirectOt) {
  Rng rng(5);
  const size_t m = 333;
  std::vector<std::pair<Block, Block>> msgs(m);
  BitVec choices(m);
  for (size_t i = 0; i < m; ++i) {
    msgs[i] = {Block{rng.next_u64(), rng.next_u64()},
               Block{rng.next_u64(), rng.next_u64()}};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{99, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        const OtPrecompSender pre = sender.precompute(m);  // offline
        sender.send_derandomized(pre, msgs);               // online
      },
      [&](Channel& ch) {
        Prg prg(Block{111, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        OtPrecompReceiver pre = receiver.precompute(m, prg);  // offline
        received = receiver.recv_derandomized(pre, choices);  // online
      });

  // The derandomized path must deliver exactly what a direct OT with
  // the same choices would have.
  ASSERT_EQ(received.size(), m);
  for (size_t i = 0; i < m; ++i)
    EXPECT_EQ(received[i], choices[i] ? msgs[i].second : msgs[i].first)
        << "i=" << i;
}

TEST(OtPrecompute, CorrelatedDerandomizedDeliversLabels) {
  Rng rng(6);
  const size_t m = 150;
  Block delta{rng.next_u64(), rng.next_u64()};
  delta.lo |= 1;
  std::vector<Block> zeros(m);
  BitVec choices(m);
  for (size_t i = 0; i < m; ++i) {
    zeros[i] = Block{rng.next_u64(), rng.next_u64()};
    choices[i] = rng.next_bool();
  }

  std::vector<Block> received;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{123, 0});
        OtExtSender sender(ch);
        sender.setup(prg);
        const OtPrecompSender pre = sender.precompute(m);
        sender.send_correlated_derandomized(pre, zeros, delta);
      },
      [&](Channel& ch) {
        Prg prg(Block{321, 0});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        OtPrecompReceiver pre = receiver.precompute(m, prg);
        received = receiver.recv_derandomized(pre, choices);
      });

  for (size_t i = 0; i < m; ++i)
    EXPECT_EQ(received[i], choices[i] ? (zeros[i] ^ delta) : zeros[i]);
}

TEST(OtPrecompute, PrecomputeInterleavesWithDirectBatches) {
  // The precomputed path shares hash-index and column-PRG state with
  // regular extension batches; interleaving the two on one session must
  // keep both correct (the runtime mixes pooled and on-demand infers).
  Rng rng(7);
  const size_t m = 64;
  std::vector<std::pair<Block, Block>> direct(m);
  BitVec direct_choices(m), pre_choices(m);
  for (size_t i = 0; i < m; ++i) {
    direct[i] = {Block{rng.next_u64(), 3 * i}, Block{rng.next_u64(), 7 * i}};
    direct_choices[i] = rng.next_bool();
    pre_choices[i] = rng.next_bool();
  }
  std::vector<Block> zeros(m);
  Block delta{rng.next_u64(), rng.next_u64()};
  delta.lo |= 1;
  for (auto& z : zeros) z = Block{rng.next_u64(), rng.next_u64()};

  std::vector<Block> got_direct, got_pre;
  run_two_party(
      [&](Channel& ch) {
        Prg prg(Block{42, 1});
        OtExtSender sender(ch);
        sender.setup(prg);
        const OtPrecompSender pre = sender.precompute(m);  // offline
        sender.send(direct);                               // direct batch
        sender.send_correlated_derandomized(pre, zeros, delta);
      },
      [&](Channel& ch) {
        Prg prg(Block{42, 2});
        OtExtReceiver receiver(ch);
        receiver.setup(prg);
        OtPrecompReceiver pre = receiver.precompute(m, prg);
        got_direct = receiver.recv(direct_choices);
        got_pre = receiver.recv_derandomized(pre, pre_choices);
      });

  for (size_t i = 0; i < m; ++i) {
    EXPECT_EQ(got_direct[i],
              direct_choices[i] ? direct[i].second : direct[i].first);
    EXPECT_EQ(got_pre[i], pre_choices[i] ? (zeros[i] ^ delta) : zeros[i]);
  }
}

TEST(OtPrecompute, MismatchedChoiceCountRejected) {
  // A precomputed batch covers a fixed number of OTs; derandomizing
  // with a different-size choice vector (or message list) must be
  // rejected before anything touches the wire.
  auto pair = make_channel_pair();
  OtPrecompReceiver pre;
  pre.choices = BitVec(8, 0);
  pre.blocks.assign(8, kZeroBlock);
  OtExtReceiver receiver(*pair.b);
  EXPECT_THROW(receiver.recv_derandomized(pre, BitVec(5, 0)),
               std::invalid_argument);
  EXPECT_THROW(receiver.recv_derandomized(pre, BitVec(9, 0)),
               std::invalid_argument);

  OtPrecompSender spre;
  spre.r0.assign(8, kZeroBlock);
  spre.r1.assign(8, kZeroBlock);
  OtExtSender sender(*pair.a);
  EXPECT_THROW(
      sender.send_derandomized(spre, std::vector<std::pair<Block, Block>>(3)),
      std::invalid_argument);
  EXPECT_THROW(
      sender.send_correlated_derandomized(spre, std::vector<Block>(4),
                                          kZeroBlock),
      std::invalid_argument);
}

TEST(OtPrecompute, CorruptedCorrectionVectorRejected) {
  // Sender side of the online exchange: a correction message whose
  // length disagrees with the precomputed batch aborts the transfer.
  auto pair = make_channel_pair();
  OtPrecompSender pre;
  pre.r0.assign(6, kZeroBlock);
  pre.r1.assign(6, kZeroBlock);
  pair.b->send_bits(BitVec(4, 1));  // wrong length correction
  OtExtSender sender(*pair.a);
  EXPECT_THROW(
      sender.send_correlated_derandomized(pre, std::vector<Block>(6),
                                          kZeroBlock),
      std::runtime_error);
}

}  // namespace
}  // namespace deepsecure
