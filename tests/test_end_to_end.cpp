// Integration tests across the whole stack: trained models through the
// real two-party protocol, including a scaled-down version of each paper
// benchmark family (CNN, Sigmoid-DNN, Tanh-DNN) and the full
// pre-processing-then-secure-inference pipeline.
#include <gtest/gtest.h>

#include "core/benchmark_zoo.h"
#include "core/deepsecure.h"
#include "net/party.h"
#include "data/synthetic.h"

namespace deepsecure {
namespace {

TEST(EndToEnd, ScaledCnnBenchmark1Family) {
  // 12x12 input, conv 3x3 stride 2, ReLU, FC, ReLU, FC — benchmark 1's
  // shape at test scale.
  data::SyntheticConfig cfg;
  cfg.features = 144;
  cfg.classes = 4;
  cfg.samples = 240;
  cfg.seed = 61;
  nn::Dataset ds = data::make_subspace_dataset(cfg);

  Rng rng(1);
  nn::Network net(nn::Shape{12, 12, 1});
  net.conv(3, 2, 3, rng)
      .act(nn::Act::kReLU)
      .dense(20, rng)
      .act(nn::Act::kReLU)
      .dense(4, rng);
  nn::TrainConfig tc;
  tc.epochs = 8;
  nn::train(net, ds, tc);

  SecureInferenceOptions opt;
  opt.seed = Block{21, 22};
  for (int i = 0; i < 3; ++i) {
    const auto res = secure_infer(net, ds.x[i], opt);
    EXPECT_EQ(res.label, nn::fixed_predict(net, ds.x[i], opt.fmt)) << i;
  }
}

TEST(EndToEnd, SigmoidDnnBenchmark2Family) {
  data::SyntheticConfig cfg;
  cfg.features = 40;
  cfg.classes = 5;
  cfg.samples = 250;
  cfg.seed = 62;
  nn::Dataset ds = data::make_subspace_dataset(cfg);

  Rng rng(2);
  nn::Network net(nn::Shape{1, 1, 40});
  net.dense(16, rng)
      .act(nn::Act::kSigmoid)
      .dense(8, rng)
      .act(nn::Act::kSigmoid)
      .dense(5, rng);
  nn::TrainConfig tc;
  tc.epochs = 12;
  nn::train(net, ds, tc);

  SecureInferenceOptions opt;
  opt.seed = Block{23, 24};
  int agree = 0;
  for (int i = 0; i < 5; ++i) {
    const auto res = secure_infer(net, ds.x[i], opt);
    agree += res.label == net.predict(ds.x[i]) ? 1 : 0;
  }
  EXPECT_GE(agree, 4);  // CORDIC sigmoid ~1 LSB from float
}

TEST(EndToEnd, TanhDnnBenchmark3FamilyWithSegVariant) {
  data::SyntheticConfig cfg;
  cfg.features = 60;
  cfg.classes = 6;
  cfg.samples = 300;
  cfg.seed = 63;
  nn::Dataset ds = data::make_subspace_dataset(cfg);

  Rng rng(3);
  nn::Network net(nn::Shape{1, 1, 60});
  net.dense(12, rng).act(nn::Act::kTanh).dense(6, rng);
  nn::TrainConfig tc;
  tc.epochs = 12;
  nn::train(net, ds, tc);

  SecureInferenceOptions opt;
  opt.seed = Block{25, 26};
  opt.tanh_variant = synth::ActKind::kTanhSeg;
  int agree = 0;
  for (int i = 0; i < 5; ++i) {
    const auto res = secure_infer(net, ds.x[i], opt);
    agree += res.label == net.predict(ds.x[i]) ? 1 : 0;
  }
  EXPECT_GE(agree, 4);
}

TEST(EndToEnd, FullPipelineSecureInferenceOnCondensedModel) {
  data::SyntheticConfig cfg;
  cfg.features = 36;
  cfg.classes = 3;
  cfg.samples = 240;
  cfg.subspace_rank = 4;
  cfg.seed = 64;
  const nn::Dataset all = data::make_subspace_dataset(cfg);
  const nn::Split split = nn::split_dataset(all, 0.8);

  PreprocessConfig pc;
  pc.hidden = 12;
  pc.projection.gamma = 0.2;
  pc.prune.prune_fraction = 0.5;
  pc.prune.rounds = 1;
  pc.prune.retrain_epochs = 5;
  pc.retrain.epochs = 10;
  PreprocessOutcome out =
      preprocess_pipeline(split.train, split.test, nn::Act::kReLU, pc);

  // Client: raw sample -> public projection -> GC inference on the
  // condensed model (Algorithm 2 + Figure 2 online path).
  SecureInferenceOptions opt;
  opt.seed = Block{31, 32};
  int correct_secure = 0, correct_float = 0;
  const int n = 5;
  for (int i = 0; i < n; ++i) {
    const nn::VecF projected = out.projection.project(split.test.x[i]);
    const auto res = secure_infer(out.model, projected, opt);
    correct_secure += res.label == split.test.y[i] ? 1 : 0;
    correct_float += out.model.predict(projected) == split.test.y[i] ? 1 : 0;
  }
  // Secure path classifies as well as the plaintext condensed model.
  EXPECT_GE(correct_secure, correct_float - 1);
}

TEST(EndToEnd, SequentialFoldedMacPipelineLong) {
  // Section 3.5: run a folded MAC for many cycles through the real
  // protocol and verify against plaintext fixed-point.
  const Circuit step = synth::make_mac_step_circuit(kDefaultFormat);
  const size_t cycles = 64;
  Rng rng(65);
  BitVec data, weights;
  Fixed acc = Fixed::from_raw(0);
  std::vector<Fixed> xs, ws;
  for (size_t i = 0; i < cycles; ++i) {
    const Fixed x = Fixed::from_double(rng.next_uniform(-0.3, 0.3));
    const Fixed w = Fixed::from_double(rng.next_uniform(-0.3, 0.3));
    xs.push_back(x);
    ws.push_back(w);
    acc = acc + x * w;
    const BitVec xb = x.to_bits(), wb = w.to_bits();
    data.insert(data.end(), xb.begin(), xb.end());
    weights.insert(weights.end(), wb.begin(), wb.end());
  }

  BitVec got;
  run_two_party(
      [&](Channel& ch) {
        GarblerSession session(ch, Block{71, 72});
        got = session.run_sequential(step, cycles, data);
      },
      [&](Channel& ch) {
        EvaluatorSession session(ch);
        session.run_sequential(step, cycles, weights);
      });
  EXPECT_EQ(Fixed::from_bits(got).raw(), acc.raw());
}

TEST(EndToEnd, ZooSmokeBenchmark3GateCounts) {
  // The real benchmark 3 spec compiles (it is the smallest) and its
  // analytic and compiled counts agree.
  const auto zoo = core::paper_zoo();
  const auto& b3 = zoo[2];
  const auto analytic = synth::count_model(b3.base);
  const Circuit compiled = synth::compile_model(b3.base);
  const auto exact = synth::count_circuit(compiled);
  const double ratio = static_cast<double>(analytic.num_non_xor) /
                       static_cast<double>(exact.num_non_xor);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

}  // namespace
}  // namespace deepsecure
