#include "runtime/server.h"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "runtime/frame.h"

namespace deepsecure::runtime {

InferenceServer::InferenceServer(const synth::ModelSpec& spec, BitVec weights,
                                 ServerConfig cfg)
    : chain_(synth::compile_model_layers(spec)),
      weights_(std::move(weights)),
      cfg_(cfg),
      // Fingerprint over the gate order sessions will walk — computing
      // it here also warms the per-circuit schedule cache once, before
      // the first session arrives.
      fingerprint_(chain_fingerprint(chain_, cfg.stream.schedule)),
      listener_(cfg.port, /*backlog=*/64) {
  size_t want = 0;
  for (const Circuit& c : chain_) {
    want += c.evaluator_inputs.size();
    expected_table_bytes_ += 2 * sizeof(Block) + c.stats().table_bytes();
  }
  if (weights_.size() != want)
    throw std::invalid_argument("InferenceServer: weight bit count mismatch");
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void InferenceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;  // claim the shutdown; start() is one-shot
    stopping_ = true;
  }
  listener_.close();  // unblocks a pending accept()
  slot_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<SessionHandle> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Wake handlers blocked in recv on idle sessions so join() below
    // cannot hang on a client that never says goodbye. Registration
    // happens under mu_ *before* the handler thread spawns, so every
    // live session is visible here.
    for (TcpChannel* t : active_transports_) t->shutdown();
    handlers.swap(handlers_);
  }
  for (auto& h : handlers)
    if (h.thread.joinable()) h.thread.join();
}

// Join handler threads whose sessions already finished. Caller holds
// mu_; joins are near-instant because `done` is set in the handler's
// final critical section.
void InferenceServer::reap_finished_locked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->done->load() && it->thread.joinable()) {
      it->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void InferenceServer::accept_loop() {
  for (;;) {
    {
      // Hold accepting until a session slot frees; pending clients wait
      // in the listen backlog rather than being turned away.
      std::unique_lock<std::mutex> lock(mu_);
      slot_cv_.wait(lock, [this] {
        return stopping_ || sessions_active_.load() < cfg_.max_sessions;
      });
      if (stopping_) return;
      reap_finished_locked();
    }
    std::unique_ptr<TcpChannel> transport;
    try {
      transport = std::make_unique<TcpChannel>(listener_.accept());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
      }
      // Transient accept failure (fd-limit spike): back off briefly —
      // outside mu_, so session completions and stop() are not stalled —
      // and keep serving instead of silently killing the accept loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    sessions_accepted_.fetch_add(1);
    sessions_active_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {  // raced with stop(): drop the connection
        sessions_active_.fetch_sub(1);
        return;
      }
      // Register the transport before the thread exists so stop()'s
      // forced-shutdown pass can never miss a live session.
      active_transports_.push_back(transport.get());
      auto done = std::make_shared<std::atomic<bool>>(false);
      SessionHandle h;
      h.done = done;
      h.thread = std::thread([this, t = std::move(transport), done]() mutable {
        handle_session(std::move(t), done);
      });
      handlers_.push_back(std::move(h));
    }
  }
}

void InferenceServer::handle_session(std::unique_ptr<TcpChannel> transport,
                                     std::shared_ptr<std::atomic<bool>> done) {
  // Bytes this session holds against the global prefetch budget;
  // released on every exit path (including peer errors) below.
  uint64_t reserved_bytes = 0;
  try {
    // Idle sessions may not pin a slot: every recv on this session is
    // bounded, and a timeout tears the session down like any peer error.
    if (cfg_.idle_timeout_ms > 0)
      transport->set_recv_timeout_ms(cfg_.idle_timeout_ms);
    BufferedChannel ch(*transport, cfg_.stream.channel_buffer);

    // --- handshake ---------------------------------------------------
    const Hello hello = parse_hello(recv_frame(ch));
    const char* reject = nullptr;
    if (hello.magic != kProtocolMagic || hello.version != kProtocolVersion)
      reject = "protocol magic/version mismatch";
    else if (hello.flags.schedule != cfg_.stream.schedule)
      reject = "netlist scheduling mismatch";
    else if (hello.fingerprint != fingerprint_)
      reject = "model chain fingerprint mismatch";
    else if (hello.flags.framed_tables != cfg_.stream.framed_tables)
      reject = "table framing mismatch";

    if (reject != nullptr) {
      sessions_rejected_.fetch_add(1);
      send_error(ch, reject);
      ch.flush();
    } else {
      // Ack carries the fingerprint echo plus this server's per-session
      // prefetch quota, so a pooling client can cap its pushes instead
      // of discovering the limit as a session-killing error.
      uint8_t ack[16];
      std::memcpy(ack, &fingerprint_, 8);
      const uint64_t quota = cfg_.max_prefetch;
      std::memcpy(ack + 8, &quota, 8);
      send_frame(ch, FrameType::kHelloAck, ack, sizeof(ack));
      ch.flush();

      // --- session loop: one EvaluatorSession (one OT setup), many
      // inferences — the streaming amortization the paper's Figure 6
      // assumes. kPrefetch parks offline artifacts (tables + resolved
      // evaluator labels) per session; a pooled kInfer then runs only
      // the online phase against one of them.
      std::unique_ptr<ThreadPool> eval_pool;
      if (cfg_.stream.eval_threads > 0)
        eval_pool = std::make_unique<ThreadPool>(cfg_.stream.eval_threads);
      EvaluatorSession session(ch, cfg_.stream.gc_options(eval_pool.get()));
      std::unordered_map<uint64_t, EvalMaterial> store;
      for (bool open = true; open;) {
        const Frame f = recv_frame(ch);
        switch (f.type) {
          case FrameType::kInfer:
            if (f.payload.empty()) {
              // On-demand: the client garbles on the request path.
              session.run_chain(chain_, weights_);
            } else {
              const uint64_t id = parse_id(f);
              const auto it = store.find(id);
              if (it == store.end()) {
                send_error(ch, "unknown prefetched material id");
                ch.flush();
                open = false;
                break;
              }
              // One artifact, one evaluation: consume it.
              const EvalMaterial mat = std::move(it->second);
              store.erase(it);
              prefetch_bytes_.fetch_sub(expected_table_bytes_);
              reserved_bytes -= expected_table_bytes_;
              session.run_online(chain_, mat);
              inferences_pooled_.fetch_add(1);
            }
            ch.flush();
            inferences_served_.fetch_add(1);
            break;
          case FrameType::kPrefetch: {
            const uint64_t id = parse_id(f);
            const bool duplicate = store.count(id) != 0;
            if (duplicate || store.size() >= cfg_.max_prefetch) {
              send_error(ch, duplicate ? "duplicate prefetched material id"
                                       : "prefetch quota exceeded");
              ch.flush();
              open = false;
              break;
            }
            // Global budget: reserve before reading the artifact (its
            // size is fixed by the chain). fetch_add-then-check keeps
            // the reservation race-free across sessions; an overshoot
            // is rolled back before anyone else can starve on it.
            // Always accounted (prefetch_bytes() is a metric), only
            // enforced when a budget is configured.
            const uint64_t now =
                prefetch_bytes_.fetch_add(expected_table_bytes_) +
                expected_table_bytes_;
            if (cfg_.max_prefetch_bytes > 0 &&
                now > cfg_.max_prefetch_bytes) {
              prefetch_bytes_.fetch_sub(expected_table_bytes_);
              prefetches_rejected_.fetch_add(1);
              send_error(ch, "global prefetch byte budget exhausted");
              ch.flush();
              open = false;
              break;
            }
            reserved_bytes += expected_table_bytes_;
            EvalMaterial mat = recv_material(ch, expected_table_bytes_,
                                             chain_.back().outputs.size());
            // Both sizes are exactly determined by the chain this
            // server compiled; a disagreeing artifact could never
            // evaluate, so reject it now instead of storing garbage
            // and failing the kInfer that draws it.
            if (mat.tables.size() != expected_table_bytes_ ||
                mat.decode_bits.size() != chain_.back().outputs.size()) {
              send_error(ch, "prefetched material does not match model chain");
              ch.flush();
              open = false;
              break;
            }
            // Offline OT: precompute + derandomize against the static
            // weight bits — after this the request path has no OT left.
            const OtPrecompReceiver pre =
                session.precompute_ot(weights_.size());
            mat.eval_labels =
                session.recv_labels_derandomized(pre, weights_);
            store.emplace(id, std::move(mat));
            send_id_frame(ch, FrameType::kPrefetchAck, id);
            ch.flush();
            materials_prefetched_.fetch_add(1);
            break;
          }
          case FrameType::kBye:
            open = false;
            break;
          default:
            send_error(ch, "unexpected frame in session loop");
            ch.flush();
            open = false;
            break;
        }
      }
    }
  } catch (...) {
    // Peer vanished or sent garbage: drop the session, keep serving.
  }
  // Artifacts die with their session: return their budget reservation.
  if (reserved_bytes > 0) prefetch_bytes_.fetch_sub(reserved_bytes);
  {
    // Final critical section: unregister, free the slot, flag
    // completion, and notify — all under mu_ so the accept loop's
    // condition-variable wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = active_transports_.begin(); it != active_transports_.end();
         ++it) {
      if (*it == transport.get()) {
        active_transports_.erase(it);
        break;
      }
    }
    sessions_active_.fetch_sub(1);
    done->store(true);
    slot_cv_.notify_all();
  }
}

}  // namespace deepsecure::runtime
