#include "nn/tensor.h"

#include <algorithm>
#include <cmath>

namespace deepsecure::nn {

size_t argmax(const VecF& v) {
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

VecF softmax(const VecF& logits) {
  const float m = *std::max_element(logits.begin(), logits.end());
  VecF p(logits.size());
  float sum = 0.0f;
  for (size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - m);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

LossGrad softmax_cross_entropy(const VecF& logits, size_t label) {
  LossGrad out;
  out.dlogits = softmax(logits);
  out.loss = -std::log(std::max(out.dlogits[label], 1e-12f));
  out.dlogits[label] -= 1.0f;
  return out;
}

float dot(const VecF& a, const VecF& b) {
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

float l2_norm(const VecF& a) { return std::sqrt(dot(a, a)); }

}  // namespace deepsecure::nn
