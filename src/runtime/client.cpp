#include "runtime/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "crypto/prg.h"
#include "obs/trace.h"
#include "support/bits.h"

namespace deepsecure::runtime {
namespace {

// Process-wide self-healing aggregates (Registry::global()): surfaced
// by the server's stats_json "resilience" block and every loadgen BENCH
// row. The per-client exact counters (retries()/sessions_recovered())
// remain the source of truth for assertions.
obs::Counter& retries_counter() {
  static obs::Counter& c = obs::Registry::global().counter("client.retries");
  return c;
}
obs::Counter& recovered_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("client.sessions_recovered");
  return c;
}

uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

InferenceClient::InferenceClient(const std::string& host, uint16_t port,
                                 const synth::ModelSpec& spec,
                                 ClientConfig cfg)
    : chain_(synth::compile_model_layers(spec)),
      fmt_(spec.fmt),
      cfg_(cfg),
      host_(host),
      port_(port) {
  backoff_rng_ ^= cfg_.chaos.seed;  // deterministic jitter under chaos
  connect_and_handshake();
  open_ = true;

  if (cfg_.pool_target > 0) {
    // The prefetch handoff rings (see the header): capacity covers the
    // full quota, and the credit ring starts with every slot's token in
    // circulation — the server's store is empty at handshake time.
    const size_t cap = std::max<size_t>(2, server_prefetch_quota_);
    prefetched_ = std::make_unique<SpscRing<PrefetchedMaterial>>(cap);
    credits_ = std::make_unique<SpscRing<uint64_t>>(cap);
    for (uint64_t i = 0; i < server_prefetch_quota_; ++i)
      credits_->try_push(i + 1);
    // Pool seeds derive from the session seed but never collide with
    // the on-demand garbler's label PRG (distinct derivation tweak).
    MaterialPoolConfig pcfg;
    pcfg.target = cfg_.pool_target;
    pcfg.producer_threads = cfg_.pool_producers;
    pcfg.shard_threads = cfg_.pool_shard_threads;
    pcfg.seed =
        cfg_.seed == Block{} ? Block{} : (cfg_.seed ^ Block{0, 0x9e3779b9});
    pool_ = std::make_unique<MaterialPool>(
        chain_, cfg_.stream.gc_options(nullptr), pcfg);
    if (cfg_.async_prefetch) start_lane(lane_port_, lane_token_);
  }
}

// Primary-session bring-up, shared by the constructor and recovery: a
// kBusy answer (protocol v6 load shedding) is not an error but a
// retry-after hint — back off and try again within the retry budget.
void InferenceClient::connect_and_handshake() {
  for (size_t attempt = 0;; ++attempt) {
    try {
    transport_ =
        std::make_unique<TcpChannel>(TcpChannel::connect(host_, port_));
    if (cfg_.io == IoBackend::kUring) transport_->enable_io_uring();
    fault_.reset();
    Channel* wire = transport_.get();
    if (cfg_.chaos.enabled()) {
      fault_ = std::make_unique<FaultChannel>(
          *transport_, cfg_.chaos, chaos_conn_index_++,
          [t = transport_.get()] { t->shutdown(); });
      wire = fault_.get();
    }
    // Epoch-salted label seed: a rebuilt session must never replay the
    // labels of a dead one (one-shot invariant), even under a fixed
    // cfg.seed — only epoch 0 uses it verbatim.
    const Block seed =
        cfg_.seed == Block{}
            ? Prg::from_os_entropy().next_block()
            : (session_epoch_ == 0
                   ? cfg_.seed
                   : (cfg_.seed ^ Block{session_epoch_, 0xd1f457ull}));
    garbler_ =
        std::make_unique<StreamingGarbler>(*wire, seed, cfg_.stream);

    Hello hello;
    // Fingerprint over the gate order this session will walk (the
    // scheduled netlist by default) — the server computes the same and a
    // compile or scheduling divergence fails the handshake, not an OT.
    hello.fingerprint = chain_fingerprint(chain_, cfg_.stream.schedule);
    hello.flags =
        SessionFlags{cfg_.stream.framed_tables, cfg_.stream.schedule};
    Channel& ch = garbler_->channel();
    send_hello(ch, hello);
    garbler_->channel().flush();
    // kError from the server throws inside recv_frame.
    const Frame first = recv_frame(ch);
    if (first.type == FrameType::kBusy) {
      const uint32_t hint_ms = parse_busy(first);
      garbler_.reset();
      fault_.reset();
      transport_.reset();
      if (attempt >= cfg_.max_retries)
        throw std::runtime_error(
            "client: server busy (shed), retries exhausted");
      ++retries_;
      retries_counter().add();
      backoff_sleep(attempt, hint_ms);
      continue;
    }
    const HelloAck ack = parse_hello_ack(first);
    if (ack.fingerprint != hello.fingerprint)
      throw std::runtime_error("client: server echoed a different model chain");
    server_prefetch_quota_ = ack.prefetch_quota;
    lane_port_ = ack.lane_port;
    lane_token_ = ack.lane_token;  // single-use: fresh every handshake
    ++session_epoch_;
    break;
    } catch (const std::exception& e) {
      // A transport fault mid-handshake (injected or real) is as
      // retryable as a kBusy — nothing one-shot has been consumed yet.
      // A fingerprint mismatch is a configuration error: retrying the
      // same handshake can only fail the same way.
      garbler_.reset();
      fault_.reset();
      transport_.reset();
      if (attempt >= cfg_.max_retries ||
          std::strstr(e.what(), "different model chain") != nullptr)
        throw;
      ++retries_;
      retries_counter().add();
      backoff_sleep(attempt);
    }
  }
  // Fresh session, empty server-side store: every quota slot's credit
  // goes back into circulation. (First bring-up: the rings don't exist
  // yet — the constructor seeds them once the quota is known.)
  if (credits_ != nullptr) {
    uint64_t token;
    while (credits_->try_pop(token)) {
    }
    for (uint64_t i = 0; i < server_prefetch_quota_; ++i)
      credits_->try_push(i + 1);
  }
}

void InferenceClient::backoff_sleep(size_t attempt, uint64_t floor_ms) {
  uint64_t delay = cfg_.backoff_base_ms << std::min<size_t>(attempt, 20);
  delay = std::min(std::max<uint64_t>(delay, 1), cfg_.backoff_cap_ms);
  // Deterministic jitter: uniform in [delay/2, delay], so concurrent
  // clients recovering from the same outage don't reconnect in phase.
  delay = delay / 2 + splitmix64(backoff_rng_) % (delay / 2 + 1);
  if (delay < floor_ms) delay = floor_ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

// Rebuild after a transport failure: the session that died took its
// server-side state with it, so everything pushed or in flight on it is
// unusable — and, critically, must never be REUSED (one garbled
// artifact = one inference; a replay would hand the evaluator two
// executions under the same labels). Poison first, reconnect second.
void InferenceClient::recover_session() {
  open_ = false;
  // The lane dies with the old connection; an error it parked is part
  // of the same failure being recovered from, so it is cleared, not
  // rethrown.
  if (lane_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      lane_stop_ = true;
    }
    lane_cv_.notify_all();
    lane_thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    lane_stop_ = false;
    lane_up_ = false;
    lane_error_ = nullptr;
  }
  lane_garbler_.reset();
  lane_ring_.reset();
  lane_fault_.reset();
  lane_transport_.reset();
  // One-shot invariant: drop every artifact whose transfer or OT
  // touched the dead session. The local pool survives untouched — its
  // artifacts never hit the wire.
  uint64_t dropped = in_flight_;
  in_flight_ = 0;
  if (prefetched_ != nullptr) {
    PrefetchedMaterial pm;
    while (prefetched_->try_pop(pm)) ++dropped;
  }
  if (dropped > 0) {
    poisoned_ += dropped;
    poisoned_counter().add(dropped);
  }
  garbler_.reset();
  fault_.reset();
  transport_.reset();
  connect_and_handshake();
  if (pool_ != nullptr && cfg_.async_prefetch)
    start_lane(lane_port_, lane_token_);
  open_ = true;
  ++recovered_;
  recovered_counter().add();
}

InferenceClient::~InferenceClient() {
  try {
    close();
  } catch (...) {
    // Destructor during unwind: the transport may already be dead (and
    // a parked lane failure has nowhere to go).
  }
}

size_t InferenceClient::input_bits() const {
  return chain_.empty() ? 0 : chain_.front().garbler_inputs.size();
}

size_t InferenceClient::infer(const std::vector<float>& sample) {
  BitVec bits;
  bits.reserve(sample.size() * fmt_.total_bits);
  for (float v : sample) {
    const BitVec b = Fixed::from_double(static_cast<double>(v), fmt_).to_bits();
    bits.insert(bits.end(), b.begin(), b.end());
  }
  return from_bits(infer_bits(bits));
}

void InferenceClient::push_material(GarbledMaterial&& mat) {
  if (in_flight_ > 0)
    throw std::logic_error(
        "client: cannot prefetch with inferences in flight");
  // Sync mode: this thread is both ring roles. A credit is popped
  // before anything hits the wire — mirroring the server's quota check
  // exactly, since a server-side rejection would land mid-OT (see
  // push_material_over). Callers guard on prefetched() < quota, so a
  // missing token is a bookkeeping bug, not a race.
  uint64_t credit;
  if (credits_ == nullptr || !credits_->try_pop(credit))
    throw std::logic_error("client: prefetch quota exhausted (no credit)");
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_material_id_++;
  }
  // A throw below burns the credit with the artifact: the connection is
  // unrecoverable at that point anyway.
  PrefetchedMaterial pm = push_material_over(*garbler_, std::move(mat), id);
  if (!prefetched_->try_push(std::move(pm)))
    throw std::logic_error("client: prefetched ring overflow");
}

// Offline push of one artifact over `g`'s connection (primary session
// or prefetch lane): id frame, decode bits + tables, then the
// precomputed-OT + derandomization exchange that resolves the server's
// evaluator labels. Everything here is input-independent. Returns the
// client-side remainder the online phase needs.
//
// The caller-side quota guard must mirror the server's exactly: once
// the kPrefetch frame is sent this side commits to the OT exchange, so
// a server-side rejection lands its kError bytes mid-extension where
// they cannot be parsed — the connection is unrecoverable and the
// reason is lost.
InferenceClient::PrefetchedMaterial InferenceClient::push_material_over(
    StreamingGarbler& g, GarbledMaterial&& mat, uint64_t id) {
  Channel& ch = g.channel();
  send_id_frame(ch, FrameType::kPrefetch, id);
  // Donating overload: only mat.tables moves out (borrowed by the
  // transport until the kernel send completes); delta / data_zeros /
  // eval_zeros stay valid for the OT exchange and the return below.
  // The copy fallback keeps the lvalue path so the two data planes can
  // be compared on identical traffic (bench/loadgen_inference.cpp).
  if (cfg_.stream.zero_copy_tables)
    send_material(ch, std::move(mat));
  else
    send_material(ch, mat);
  GarblerSession& session = g.session();
  {
    obs::Span ot_span("client.ot_offline");
    const OtPrecompSender pre = session.precompute_ot(mat.ot_count());
    session.send_labels_derandomized(pre, mat.eval_zeros, mat.delta);
  }
  g.channel().flush();
  const Frame ack = recv_frame(ch);
  if (ack.type != FrameType::kPrefetchAck || parse_id(ack) != id)
    throw std::runtime_error("client: bad prefetch ack");
  return PrefetchedMaterial{id, mat.delta, std::move(mat.data_zeros)};
}

// Refill ceiling for the background lane (and the clamp for prefetch):
// never park more than pool_target on the server — the pool cannot
// sustain more anyway — and never exceed the advertised quota, whose
// violation would be a session-killing kError.
size_t InferenceClient::lane_target() const {
  return std::min<uint64_t>(cfg_.pool_target, server_prefetch_quota_);
}

void InferenceClient::start_lane(uint16_t lane_port, uint64_t lane_token) {
  lane_transport_ = std::make_unique<TcpChannel>(
      TcpChannel::connect(host_, lane_port));
  if (cfg_.io == IoBackend::kUring) lane_transport_->enable_io_uring();
  lane_fault_.reset();
  Channel* lane_wire = lane_transport_.get();
  if (cfg_.chaos.enabled()) {
    lane_fault_ = std::make_unique<FaultChannel>(
        *lane_transport_, cfg_.chaos, chaos_conn_index_++,
        [t = lane_transport_.get()] { t->shutdown(); });
    lane_wire = lane_fault_.get();
  }
  // Async frame writer: artifact bytes land in the RingChannel's SPSC
  // ring and ship from its writer thread, so the lane overlaps the
  // next artifact's serialization + OT compute with the previous one's
  // kernel sends. Receives drain the ring first, so the OT rounds stay
  // correctly ordered.
  lane_ring_ = std::make_unique<RingChannel>(*lane_wire);
  // The lane garbles nothing (artifacts come from the pool); its
  // StreamingGarbler exists for the session state the precomputed-OT
  // exchange needs, seeded independently of the primary session.
  const Block lane_seed = cfg_.seed == Block{}
                              ? Prg::from_os_entropy().next_block()
                              : (cfg_.seed ^ Block{0x1a4e, 0x517d});
  lane_garbler_ = std::make_unique<StreamingGarbler>(*lane_ring_,
                                                     lane_seed, cfg_.stream);
  lane_thread_ = std::thread([this, lane_token] { lane_loop(lane_token); });
}

// Background refill: keep the server-side store at lane_target(). Runs
// until close(); every failure is parked and rethrown there (the
// primary session keeps working either way — a dead lane just means
// drains fall back to on-demand again).
void InferenceClient::lane_loop(uint64_t lane_token) {
  try {
    Channel& ch = lane_garbler_->channel();
    send_id_frame(ch, FrameType::kAttachLane, lane_token);
    lane_garbler_->channel().flush();
    const Frame ack = recv_frame(ch);
    if (ack.type != FrameType::kAttachLaneAck || parse_id(ack) != lane_token)
      throw std::runtime_error("client: bad lane attach ack");
    {
      std::lock_guard<std::mutex> lock(mu_);
      lane_up_ = true;
    }
    caught_up_.notify_all();

    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        // Refill wanted AND a slot credit available (see credits_ in
        // the header): without the credit check a push racing an
        // unprocessed kInfer on the primary connection would trip the
        // server's quota mid-OT. The lane is the only credit consumer,
        // so a token seen here cannot vanish before the pop below.
        lane_cv_.wait(lock, [this] {
          return lane_stop_ ||
                 (prefetched_->size() < lane_target() &&
                  !credits_->empty());
        });
        if (lane_stop_) break;
      }
      std::optional<GarbledMaterial> mat = pool_->try_acquire();
      if (!mat) {
        // Refill wanted but the producers are still garbling: poll
        // gently (a tight spin would steal cycles from the very
        // producers being waited on), staying responsive to stop.
        std::unique_lock<std::mutex> lock(mu_);
        if (lane_stop_) break;
        lane_cv_.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
      // Claim the slot credit only once an artifact is in hand (credits
      // flow one way per thread: pushing a token back from here would
      // make two producers).
      uint64_t credit;
      if (!credits_->try_pop(credit)) continue;  // unreachable; re-check
      uint64_t id;
      {
        std::lock_guard<std::mutex> lock(mu_);
        id = next_material_id_++;
      }
      // The push itself runs unlocked: it is pure lane-connection
      // traffic, concurrent with whatever the primary session is doing.
      // A throw burns the credit with the artifact — the lane is dead.
      {
        obs::Span push_span("client.lane_push");
        PrefetchedMaterial pm =
            push_material_over(*lane_garbler_, std::move(*mat), id);
        if (!prefetched_->try_push(std::move(pm)))
          throw std::logic_error("client: prefetched ring overflow");
      }
      // Empty critical section: order the ring push before the notify
      // so a prefetch() predicate under mu_ cannot miss it.
      { std::lock_guard<std::mutex> lock(mu_); }
      caught_up_.notify_all();
    }
    // Orderly goodbye so the server's lane handler exits cleanly.
    send_frame(ch, FrameType::kBye);
    lane_garbler_->channel().flush();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    lane_error_ = std::current_exception();
    lane_up_ = false;
  }
  caught_up_.notify_all();
}

bool InferenceClient::lane_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lane_up_ && lane_error_ == nullptr;
}

size_t InferenceClient::prefetch(size_t n) {
  if (!open_) throw std::logic_error("client: session closed");
  if (pool_ == nullptr)
    throw std::logic_error("client: pooling disabled (pool_target = 0)");
  // Both modes: no inferences may be in flight. Sync mode would drop an
  // acquired artifact; async mode would deadlock — in-flight artifacts
  // hold their slot credits until finish_infer, which only THIS thread
  // can call, so the lane could never push this wait to completion.
  if (in_flight_ > 0)
    throw std::logic_error(
        "client: cannot prefetch with inferences in flight");
  if (lane_thread_.joinable()) {
    // Async mode: the lane owns all pushes — wake it and wait until the
    // store is warm (or the lane parked a failure).
    const size_t want = std::min(n, lane_target());
    std::unique_lock<std::mutex> lock(mu_);
    lane_cv_.notify_all();
    caught_up_.wait(lock, [&] {
      return lane_error_ != nullptr || prefetched_->size() >= want;
    });
    if (lane_error_) std::rethrow_exception(lane_error_);
    return prefetched_->size();
  }
  // Clamp to the quota the hello ack advertised: exceeding it on the
  // wire would be answered with a session-killing kError, and "push up
  // to n" is the contract — the return value reports what's warm.
  for (size_t i = 0; i < n && prefetched() < server_prefetch_quota_; ++i)
    push_material(pool_->acquire());
  return prefetched();
}

void InferenceClient::top_up() {
  if (pool_ == nullptr || !open_ || closing_) return;
  if (lane_thread_.joinable()) {
    // Async mode: refilling is the lane's job — just make sure it's
    // awake. Nothing here blocks the caller.
    lane_cv_.notify_all();
    return;
  }
  if (in_flight_ > 0) return;
  while (prefetched() < lane_target()) {
    auto mat = pool_->try_acquire();
    if (!mat) break;  // producer still garbling: don't block the caller
    push_material(std::move(*mat));
  }
}

void InferenceClient::begin_infer_bits(const BitVec& data_bits) {
  if (!open_) throw std::logic_error("client: session closed");
  // This thread is the ring's only consumer, so the peek/pop pair is
  // race-free without a lock.
  PrefetchedMaterial* next = prefetched_ ? prefetched_->front() : nullptr;
  if (next == nullptr)
    throw std::logic_error("client: no prefetched material to pipeline on");
  // Validate on the borrowed slot before consuming anything: after the
  // id frame is on the wire the artifact is burned and the server is
  // committed to reading labels, so a size error must fire while the
  // call is still a no-op (a ring pop is destructive).
  if (data_bits.size() != next->data_zeros.size())
    throw std::invalid_argument("client: data bit count mismatch");
  PrefetchedMaterial mat;
  prefetched_->try_pop(mat);
  { std::lock_guard<std::mutex> lock(mu_); }  // order pop before notify
  lane_cv_.notify_all();  // room freed: the lane may refill
  Channel& ch = garbler_->channel();
  send_id_frame(ch, FrameType::kInfer, mat.id);
  garbler_->session().begin_online(mat.delta, mat.data_zeros, data_bits);
  garbler_->channel().flush();
  ++in_flight_;
}

BitVec InferenceClient::finish_infer() {
  if (in_flight_ == 0)
    throw std::logic_error("client: no inference in flight");
  BitVec out = garbler_->session().finish_online();
  --in_flight_;
  ++pooled_inferences_;
  // Credit return: the server consumed this inference's artifact before
  // evaluating, so its store slot is provably free now. Every finished
  // pooled inference corresponds to exactly one popped token, so the
  // push cannot overflow the ring.
  if (credits_) credits_->try_push(uint64_t{1});
  { std::lock_guard<std::mutex> lock(mu_); }  // order push before notify
  lane_cv_.notify_all();
  if (in_flight_ == 0 && cfg_.auto_top_up) top_up();
  return out;
}

BitVec InferenceClient::infer_bits(const BitVec& data_bits) {
  if (!open_) throw std::logic_error("client: session closed");
  if (in_flight_ > 0)
    throw std::logic_error(
        "client: finish in-flight inferences before a synchronous infer");
  for (size_t attempt = 0;; ++attempt) {
    try {
      return infer_bits_once(data_bits);
    } catch (const std::logic_error&) {
      throw;  // API misuse, not a transport failure — never retried
    } catch (const std::exception&) {
      if (attempt >= cfg_.max_retries) throw;
      ++retries_;
      retries_counter().add();
      backoff_sleep(attempt);
      // Poisons in-flight material, reconnects, re-handshakes, restarts
      // the lane; the retried attempt below draws fresh pool material
      // or (store now empty) falls back to on-demand garbling.
      recover_session();
    }
  }
}

BitVec InferenceClient::infer_bits_once(const BitVec& data_bits) {
  const bool warm = prefetched() > 0;
  if (warm) {
    // Online phase only: active data labels out, result bits back.
    // (Only this thread consumes prefetched_, so warm cannot go stale.)
    begin_infer_bits(data_bits);
    return finish_infer();
  }
  // Pool drained (or pooling off): garble on the request path.
  Channel& ch = garbler_->channel();
  send_frame(ch, FrameType::kInfer);
  const BitVec out = garbler_->run_chain(chain_, data_bits);
  ++ondemand_inferences_;
  if (cfg_.auto_top_up) top_up();
  return out;
}

std::string InferenceClient::server_stats() {
  if (!open_) throw std::logic_error("client: session closed");
  // A kStatsReply arriving between a kInfer and its result frames would
  // desynchronize finish_infer; the primary connection must be quiet.
  if (in_flight_ > 0)
    throw std::logic_error(
        "client: finish in-flight inferences before requesting stats");
  Channel& ch = garbler_->channel();
  send_frame(ch, FrameType::kStats);
  garbler_->channel().flush();
  const Frame reply = recv_frame(ch);
  if (reply.type != FrameType::kStatsReply)
    throw std::runtime_error("client: bad stats reply");
  return std::string(reply.payload.begin(), reply.payload.end());
}

void InferenceClient::close() {
  if (!open_) return;
  closing_ = true;  // don't upload fresh artifacts just to discard them
  // Stop the lane FIRST, and unconditionally: if draining the in-flight
  // inferences below throws (dead transport), a still-running lane
  // thread would reach the destructor joinable — std::terminate. This
  // ordering also precedes the primary kBye, so a lane push can never
  // race the server-side session teardown.
  std::exception_ptr lane_err;
  if (lane_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      lane_stop_ = true;
    }
    lane_cv_.notify_all();
    lane_thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    lane_err = lane_error_;
  }
  std::exception_ptr drain_err;
  try {
    while (in_flight_ > 0) (void)finish_infer();
    Channel& ch = garbler_->channel();
    send_frame(ch, FrameType::kBye);
    garbler_->channel().flush();
  } catch (...) {
    drain_err = std::current_exception();
  }
  open_ = false;  // closed either way; a retry cannot succeed
  if (drain_err) std::rethrow_exception(drain_err);
  // A lane that died mid-session must not fail silently — surface it
  // once the session itself is cleanly down.
  if (lane_err) std::rethrow_exception(lane_err);
}

}  // namespace deepsecure::runtime
