// Buffered streaming of 128-bit blocks over a Channel. Garbled tables
// dominate traffic (two blocks per AND gate); per-block channel calls
// would serialize on the channel mutex, so both sides batch through a
// fixed-size local buffer with an identical, deterministic flush policy.
#pragma once

#include <vector>

#include "crypto/block.h"
#include "net/channel.h"

namespace deepsecure {

class BlockWriter {
 public:
  explicit BlockWriter(Channel& ch, size_t capacity = 1 << 15)
      : ch_(ch) {
    buf_.reserve(capacity);
    capacity_ = capacity;
  }
  ~BlockWriter() { flush(); }

  void put(Block b) {
    buf_.push_back(b);
    if (buf_.size() == capacity_) flush();
  }

  void flush() {
    if (buf_.empty()) return;
    ch_.send_bytes(buf_.data(), buf_.size() * sizeof(Block));
    buf_.clear();
  }

 private:
  Channel& ch_;
  std::vector<Block> buf_;
  size_t capacity_;
};

class BlockReader {
 public:
  /// `total` blocks will be consumed overall; reads arrive in the
  /// writer's flush granularity, so we just pull bytes as needed.
  explicit BlockReader(Channel& ch, size_t capacity = 1 << 15)
      : ch_(ch), capacity_(capacity) {}

  Block get() {
    if (pos_ == buf_.size()) refill();
    return buf_[pos_++];
  }

  /// Number of blocks already buffered but not yet consumed.
  size_t buffered() const { return buf_.size() - pos_; }

  /// Prepare to read exactly `n` more blocks (bounds refill sizes so we
  /// never read past the logical stream).
  void expect(size_t n) { remaining_ += n; }

 private:
  void refill() {
    const size_t n = std::min(capacity_, remaining_);
    buf_.resize(n);
    pos_ = 0;
    ch_.recv_bytes(buf_.data(), n * sizeof(Block));
    remaining_ -= n;
  }

  Channel& ch_;
  std::vector<Block> buf_;
  size_t pos_ = 0;
  size_t capacity_;
  size_t remaining_ = 0;
};

}  // namespace deepsecure
