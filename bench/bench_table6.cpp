// Table 6 reproduction: DeepSecure vs CryptoNets on benchmark 1,
// per-sample communication / computation / execution and the headline
// improvement factors (paper: 58.96x without pre-processing, 527.88x
// with), plus the privacy/utility comparison (square vs true
// activations) that motivates GC over HE.
#include <cstdio>
#include <cstdlib>

#include "baseline/cryptonets.h"
#include "core/benchmark_zoo.h"
#include "core/deepsecure.h"
#include "data/synthetic.h"
#include "support/table.h"

using namespace deepsecure;

int main() {
  std::printf("Table 6: DeepSecure vs CryptoNets, benchmark 1 (per sample)\n\n");

  const auto z = core::benchmark1();
  const baseline::CryptoNetsParams cn;

  const auto base_cost = cost::cost_from_gates(synth::count_model(z.base));
  const auto pp_cost = cost::cost_from_gates(synth::count_model(z.compact));

  TablePrinter t({"Framework", "Comm", "Comp(s)", "Exec(s)", "Improvement"});
  t.add_row({"DeepSecure w/o pre-p",
             TablePrinter::num(base_cost.comm_bytes / 1e6, 0) + "MB",
             TablePrinter::num(base_cost.comp_seconds, 2),
             TablePrinter::num(base_cost.exec_seconds, 2),
             TablePrinter::num(cn.batch_latency_s / base_cost.exec_seconds, 2) +
                 "x"});
  t.add_row({"DeepSecure w/  pre-p",
             TablePrinter::num(pp_cost.comm_bytes / 1e6, 1) + "MB",
             TablePrinter::num(pp_cost.comp_seconds, 2),
             TablePrinter::num(pp_cost.exec_seconds, 2),
             TablePrinter::num(cn.batch_latency_s / pp_cost.exec_seconds, 2) +
                 "x"});
  t.add_row({"CryptoNets", "74KB", TablePrinter::num(cn.batch_latency_s, 2),
             TablePrinter::num(cn.batch_latency_s, 2), "-"});
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\nPaper row (published gate counts at the same cost model):\n");
  const auto paper_base = cost::cost_from_gates(synth::GateCount{
      static_cast<uint64_t>(z.paper_base.num_xor),
      static_cast<uint64_t>(z.paper_base.num_non_xor)});
  const auto paper_pp = cost::cost_from_gates(synth::GateCount{
      static_cast<uint64_t>(z.paper_compact.num_xor),
      static_cast<uint64_t>(z.paper_compact.num_non_xor)});
  std::printf("  w/o pre-p: comm %.0f MB, exec %.2f s -> %.2fx vs CryptoNets"
              " (paper: 58.96x)\n",
              paper_base.comm_bytes / 1e6, paper_base.exec_seconds,
              cn.batch_latency_s / paper_base.exec_seconds);
  std::printf("  w/  pre-p: comm %.1f MB, exec %.2f s -> %.2fx vs CryptoNets"
              " (paper: 527.88x)\n",
              paper_pp.comm_bytes / 1e6, paper_pp.exec_seconds,
              cn.batch_latency_s / paper_pp.exec_seconds);

  if (std::getenv("DEEPSECURE_SKIP_LIVE") != nullptr) return 0;

  // Utility comparison: CryptoNets must square-approximate activations.
  // Two regimes: an easy well-separated task (both fine) and a noisy
  // low-margin task where the saturating non-linearity matters.
  std::printf("\nPrivacy/utility trade-off (same topology, same training):\n");
  {
    const nn::Dataset all = data::make_mnist_like(600, 21);
    const nn::Split split = nn::split_dataset(all, 0.8);
    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.lr = 0.002f;
    const auto cmp = baseline::compare_utility(split.train, split.test, 32,
                                               nn::Act::kReLU, tc);
    std::printf("  easy task : true act %.1f%%  vs square act %.1f%%\n",
                100.0 * cmp.accuracy_true_act, 100.0 * cmp.accuracy_square_act);
  }
  {
    data::SyntheticConfig cfg;
    cfg.features = 24;
    cfg.classes = 4;
    cfg.samples = 320;
    cfg.subspace_rank = 5;
    cfg.noise = 0.08;
    cfg.class_sep = 0.55;
    cfg.seed = 77;
    const nn::Dataset all = data::make_subspace_dataset(cfg);
    const nn::Split split = nn::split_dataset(all, 0.75);
    nn::TrainConfig tc;
    tc.epochs = 14;
    const auto cmp = baseline::compare_utility(split.train, split.test, 12,
                                               nn::Act::kTanh, tc);
    std::printf("  noisy task: true act %.1f%%  vs square act %.1f%%\n",
                100.0 * cmp.accuracy_true_act, 100.0 * cmp.accuracy_square_act);
  }
  std::printf(
      "  On these synthetic tasks both nets separate the classes; the\n"
      "  structural point stands: the HE path is *restricted* to\n"
      "  polynomial activations (a model change imposed by the crypto),\n"
      "  while GC evaluates the exact trained non-linearity -- privacy\n"
      "  never forces an approximation (cf. Table 3 error column).\n");
  return 0;
}
