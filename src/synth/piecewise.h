// Piece-wise approximations of the DL non-linearities.
//
//  * segment_interp — 128-segment linear interpolation with tabulated
//    endpoints/deltas; our stand-in for the paper's Boolean-minimized
//    Tanh2.10.12 / Sigmoid3.10.12 blocks (same error budget, comparable
//    cost; see DESIGN.md substitution #1).
//  * tanh_pl — few-segment piece-wise-linear Tanh (paper's TanhPL).
//  * sigmoid_plan — the PLAN approximation (Amin et al. 1997), all slopes
//    powers of two so every multiply is a shift (paper's SigmoidPLAN).
#pragma once

#include "synth/int_blocks.h"

namespace deepsecure::synth {

/// Linear interpolation of f over [0, range) split into `segments`
/// (power of two) pieces. `x` must be an unsigned bus (abs applied by the
/// caller) in the given fixed format. Output in the same format.
Bus segment_interp(Builder& b, const Bus& x_unsigned, double range,
                   size_t segments, double (*f)(double), FixedFormat fmt);

/// Tanh via sign symmetry + segment_interp on |x| (clamped to [0,4)).
Bus tanh_seg(Builder& b, const Bus& x, FixedFormat fmt);
/// Sigmoid via sigmoid(-x) = 1 - sigmoid(x) + segment_interp on |x|.
Bus sigmoid_seg(Builder& b, const Bus& x, FixedFormat fmt);

/// Coarse piece-wise-linear Tanh (8 chords on [0,4), odd-extended).
Bus tanh_pl(Builder& b, const Bus& x, FixedFormat fmt);

/// PLAN sigmoid:
///   y = 1                      |x| >= 5
///   y = |x|/32 + 0.84375       2.375 <= |x| < 5
///   y = |x|/8  + 0.625         1 <= |x| < 2.375
///   y = |x|/4  + 0.5           0 <= |x| < 1
/// reflected through (0, 0.5) for negative x.
Bus sigmoid_plan(Builder& b, const Bus& x, FixedFormat fmt);

// Double-precision reference models of the approximations, used to
// separate approximation error from representation error in Table 3.
double ref_tanh_pl(double x);
double ref_sigmoid_plan(double x);
double ref_segment_interp(double x, double range, size_t segments,
                          double (*f)(double));

}  // namespace deepsecure::synth
