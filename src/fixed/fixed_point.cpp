#include "fixed/fixed_point.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace deepsecure {

int64_t Fixed::wrap(int64_t v, FixedFormat fmt) {
  const uint64_t masked = mask_bits(static_cast<uint64_t>(v), fmt.total_bits);
  return sign_extend(masked, fmt.total_bits);
}

Fixed Fixed::from_double(double x, FixedFormat fmt) {
  if (fmt.total_bits == 0 || fmt.total_bits > 62 ||
      fmt.frac_bits >= fmt.total_bits)
    throw std::invalid_argument("bad fixed-point format");
  const double scaled = x * static_cast<double>(1ll << fmt.frac_bits);
  const int64_t lo = -(1ll << (fmt.total_bits - 1));
  const int64_t hi = (1ll << (fmt.total_bits - 1)) - 1;
  double r = std::nearbyint(scaled);
  if (r < static_cast<double>(lo)) r = static_cast<double>(lo);
  if (r > static_cast<double>(hi)) r = static_cast<double>(hi);
  return Fixed(static_cast<int64_t>(r), fmt);
}

Fixed Fixed::from_raw(int64_t raw, FixedFormat fmt) {
  return Fixed(wrap(raw, fmt), fmt);
}

double Fixed::to_double() const {
  return static_cast<double>(raw_) /
         static_cast<double>(1ll << fmt_.frac_bits);
}

BitVec Fixed::to_bits() const {
  return deepsecure::to_bits(static_cast<uint64_t>(raw_), fmt_.total_bits);
}

Fixed Fixed::from_bits(const BitVec& bits, FixedFormat fmt) {
  if (bits.size() != fmt.total_bits)
    throw std::invalid_argument("bit width mismatch");
  return from_raw(sign_extend(deepsecure::from_bits(bits), fmt.total_bits),
                  fmt);
}

Fixed operator+(Fixed a, Fixed b) {
  if (!(a.fmt_ == b.fmt_)) throw std::invalid_argument("format mismatch");
  return Fixed(Fixed::wrap(a.raw_ + b.raw_, a.fmt_), a.fmt_);
}

Fixed operator-(Fixed a, Fixed b) {
  if (!(a.fmt_ == b.fmt_)) throw std::invalid_argument("format mismatch");
  return Fixed(Fixed::wrap(a.raw_ - b.raw_, a.fmt_), a.fmt_);
}

Fixed operator*(Fixed a, Fixed b) {
  if (!(a.fmt_ == b.fmt_)) throw std::invalid_argument("format mismatch");
  // Full product then arithmetic truncation toward -inf (shift right),
  // mirroring the MULT circuit.
  const int64_t prod = a.raw_ * b.raw_;
  const int64_t shifted = prod >> a.fmt_.frac_bits;
  return Fixed(Fixed::wrap(shifted, a.fmt_), a.fmt_);
}

double ref_tanh(double x) { return std::tanh(x); }
double ref_sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

CordicResult ref_cordic_sinh_cosh(double z, size_t iterations) {
  // Hyperbolic-mode rotation CORDIC. Iterations start at i = 1; iterations
  // of index 3i+1 (4, 13, 40, ...) are executed twice for convergence.
  // Gain K = prod(sqrt(1 - 2^-2i)) over executed iterations; we start from
  // (x, y) = (1/K, 0) so the result is (cosh z, sinh z).
  double x = 1.0, y = 0.0;
  double angle = z;

  // Pre-compute the executed iteration schedule.
  std::vector<size_t> schedule;
  size_t next_repeat = 4;
  for (size_t i = 1; i <= iterations; ++i) {
    schedule.push_back(i);
    if (i == next_repeat) {
      schedule.push_back(i);
      next_repeat = 3 * next_repeat + 1;
    }
  }

  double gain = 1.0;
  for (size_t i : schedule)
    gain *= std::sqrt(1.0 - std::pow(2.0, -2.0 * static_cast<double>(i)));
  x = 1.0 / gain * x;  // pre-scale so no post-multiply is needed

  for (size_t i : schedule) {
    const double e = std::pow(2.0, -static_cast<double>(i));
    const double atanh_e = 0.5 * std::log((1.0 + e) / (1.0 - e));
    const double d = angle >= 0.0 ? 1.0 : -1.0;
    const double nx = x + d * e * y;
    const double ny = y + d * e * x;
    angle -= d * atanh_e;
    x = nx;
    y = ny;
  }
  return CordicResult{y, x};
}

}  // namespace deepsecure
