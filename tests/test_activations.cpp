#include <gtest/gtest.h>

#include <cmath>

#include "synth/activation.h"
#include "synth/cordic.h"
#include "synth/lut.h"
#include "synth/piecewise.h"
#include "test_util.h"

namespace deepsecure::synth {
namespace {

constexpr FixedFormat kFmt = kDefaultFormat;

Circuit build_activation(ActKind kind) {
  Builder b(act_kind_name(kind));
  const Bus x = input_fixed(b, Party::kGarbler, kFmt);
  b.outputs(activation(b, x, kind, kFmt));
  return b.build();
}

double eval_act(const Circuit& c, double x) {
  const BitVec out = c.eval(Fixed::from_double(x, kFmt).to_bits(), {});
  return Fixed::from_bits(out, kFmt).to_double();
}

struct ActCase {
  ActKind kind;
  double max_err;  // tolerated |circuit - ideal| over the sweep
};

class ActivationSweep : public ::testing::TestWithParam<ActCase> {};

TEST_P(ActivationSweep, TracksIdealFunction) {
  const auto param = GetParam();
  const Circuit c = build_activation(param.kind);
  double worst = 0.0;
  for (double x = -7.9; x <= 7.9; x += 0.0837) {
    const double got = eval_act(c, x);
    const double want = activation_ideal(x, param.kind);
    worst = std::max(worst, std::abs(got - want));
  }
  EXPECT_LE(worst, param.max_err) << act_kind_name(param.kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ActivationSweep,
    ::testing::Values(
        ActCase{ActKind::kReLU, 1.0 / 4096},
        ActCase{ActKind::kTanhLUT, 1.5 / 4096},
        ActCase{ActKind::kTanhSeg, 0.001},
        ActCase{ActKind::kTanhPL, 0.02},
        ActCase{ActKind::kTanhCORDIC, 0.002},
        ActCase{ActKind::kSigmoidLUT, 1.5 / 4096},
        ActCase{ActKind::kSigmoidSeg, 0.001},
        ActCase{ActKind::kSigmoidPLAN, 0.02},
        ActCase{ActKind::kSigmoidCORDIC, 0.002}),
    [](const auto& info) { return act_kind_name(info.param.kind); });

TEST(Activation, OddAndReflectionSymmetry) {
  const Circuit tanh_c = build_activation(ActKind::kTanhSeg);
  const Circuit sig_c = build_activation(ActKind::kSigmoidSeg);
  for (double x : {0.25, 0.8, 1.7, 3.3, 6.1}) {
    EXPECT_NEAR(eval_act(tanh_c, -x), -eval_act(tanh_c, x), 2.0 / 4096);
    EXPECT_NEAR(eval_act(sig_c, -x), 1.0 - eval_act(sig_c, x), 2.0 / 4096);
  }
}

TEST(Activation, LutExactWithinRepresentation) {
  // The LUT variant must be exactly round(f(x_representable)).
  const Circuit c = build_activation(ActKind::kTanhLUT);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Fixed x = test::random_fixed(rng, kFmt);
    const BitVec out = c.eval(x.to_bits(), {});
    const int64_t want = Fixed::from_double(std::tanh(x.to_double()), kFmt).raw();
    EXPECT_NEAR(static_cast<double>(Fixed::from_bits(out, kFmt).raw()),
                static_cast<double>(want), 1.0)
        << "x=" << x.to_double();
  }
}

TEST(Activation, GateCostOrdering) {
  // The paper's cost hierarchy: LUT >> CORDIC/reduced >> piece-wise.
  const auto lut = build_activation(ActKind::kTanhLUT).stats().num_and;
  const auto seg = build_activation(ActKind::kTanhSeg).stats().num_and;
  const auto cor = build_activation(ActKind::kTanhCORDIC).stats().num_and;
  const auto pl = build_activation(ActKind::kTanhPL).stats().num_and;
  EXPECT_GT(lut, 2 * seg);
  EXPECT_GT(cor, pl);
  EXPECT_LT(pl, 2000u);
  const auto plan = build_activation(ActKind::kSigmoidPLAN).stats().num_and;
  EXPECT_LT(plan, 400u);  // shifts only
}

TEST(Lut, GenericTableSelect) {
  Builder b;
  const Bus idx = input_bus(b, Party::kGarbler, 3);
  const std::vector<int64_t> table{5, -3, 0, 7, 120, -128, 1, 2};
  b.outputs(lut(b, idx, table, 8));
  const Circuit c = b.build();
  for (size_t i = 0; i < table.size(); ++i) {
    const BitVec out = c.eval(to_bits(i, 3), {});
    EXPECT_EQ(deepsecure::sign_extend(from_bits(out), 8), table[i]) << i;
  }
}

TEST(Cordic, ExpReferenceConverges) {
  const CordicParams p;
  for (double a : {0.0, 0.5, 1.0, 3.0, 7.5, 9.0}) {
    const double got = ref_cordic_exp_neg(a, p);
    EXPECT_NEAR(got, std::exp(-a), 3e-4) << "a=" << a;
  }
}

TEST(Cordic, CircuitMatchesExpModel) {
  Builder b;
  const size_t afrac = 14;
  const Bus a = input_bus(b, Party::kGarbler, 20);
  b.outputs(cordic_exp_neg(b, a, afrac, 4.0));
  const Circuit c = b.build();
  const CordicParams p;
  for (double av : {0.0, 0.3, 1.1, 2.7, 3.9}) {
    const Fixed fa = Fixed::from_double(av, FixedFormat{20, afrac});
    const BitVec out = c.eval(fa.to_bits(), {});
    const double got =
        static_cast<double>(from_bits(out)) / std::pow(2.0, p.internal_frac);
    EXPECT_NEAR(got, std::exp(-av), 1e-3) << "a=" << av;
  }
}

TEST(SegmentInterp, RejectsBadConfig) {
  Builder b;
  const Bus x = input_bus(b, Party::kGarbler, 16);
  EXPECT_THROW(segment_interp(b, x, 8.0, 100, ref_tanh, kFmt),
               std::invalid_argument);  // not a power of two
}

}  // namespace
}  // namespace deepsecure::synth
