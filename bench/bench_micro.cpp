// Microbenchmarks of the substrates: AES rates, fixed-key hash, curve
// operations (base-OT cost), OT extension, netlist construction, and
// the width-scheduling pass (batch-width histograms + garble rates,
// scheduled vs construction order).
#include <benchmark/benchmark.h>

#include "circuit/bench_circuits.h"
#include "circuit/schedule.h"
#include "crypto/aes128.h"
#include "crypto/hash_backend.h"
#include "crypto/ed25519.h"
#include "crypto/prg.h"
#include "crypto/sha256.h"
#include "gc/garble.h"
#include "gc/ot.h"
#include "net/null_channel.h"
#include "net/party.h"
#include "synth/activation.h"
#include "synth/matvec.h"
#include "synth/mult.h"

using namespace deepsecure;

namespace {

void BM_Aes128Batch(benchmark::State& state) {
  const Aes128Key key = aes128_expand(Block{1, 2});
  std::vector<Block> blocks(1024);
  Prg prg(Block{3, 4});
  prg.next_blocks(blocks.data(), blocks.size());
  for (auto _ : state) {
    aes128_encrypt_batch(key, blocks.data(), blocks.size());
    benchmark::DoNotOptimize(blocks.data());
  }
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(blocks.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Aes128Batch);

void BM_GcHash(benchmark::State& state) {
  Block x{5, 6};
  uint64_t tweak = 0;
  for (auto _ : state) {
    x = gc_hash(x, tweak++);
    benchmark::DoNotOptimize(x);
  }
  state.counters["hashes/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GcHash);

void BM_GcHashBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Block> in(n), out(n);
  Prg prg(Block{5, 6});
  prg.next_blocks(in.data(), n);
  std::vector<uint64_t> tweaks(n);
  for (size_t i = 0; i < n; ++i) tweaks[i] = i;
  for (auto _ : state) {
    gc_hash_batch(in.data(), tweaks.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["hashes/s"] = benchmark::Counter(
      static_cast<double>(n) * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GcHashBatch)->Arg(1024);

// Garbling throughput in AND-gates/s, scalar vs batched pipeline, on two
// circuit shapes: "wide" (independent ANDs, full batch windows — the
// matvec/popcount regime) and "chain" (each AND feeds the next, window
// size 1 — the ripple-carry worst case where batching cannot help).
void garble_throughput(benchmark::State& state, const Circuit& c,
                       const GcOptions& opt) {
  NullChannel ch;
  Garbler warm(ch, Block{1, 1}, opt);
  const Labels gz = warm.fresh_zeros(c.garbler_inputs.size());
  const Labels ez = warm.fresh_zeros(c.evaluator_inputs.size());
  // Compiler stages precomputed, as in the online phase: scheduled view
  // (when enabled) and the walked order's flush points.
  std::shared_ptr<const Circuit> sched;
  const Circuit& walked = opt.schedule ? *(sched = c.gc_scheduled()) : c;
  (void)walked.gc_flush_points();
  for (auto _ : state) {
    Garbler g(ch, Block{1, 1}, opt);
    benchmark::DoNotOptimize(g.garble(c, gz, ez, {}));
  }
  state.counters["ANDgates/s"] = benchmark::Counter(
      static_cast<double>(c.stats().num_and) * state.iterations(),
      benchmark::Counter::kIsRate);
  state.counters["mean_width"] =
      window_stats(walked, kGcMaxBatchWindow).mean;
}

void garble_throughput(benchmark::State& state, const Circuit& c,
                       GcPipeline pipeline) {
  GcOptions opt;
  opt.pipeline = pipeline;
  garble_throughput(state, c, opt);
}

void BM_GarbleWide(benchmark::State& state) {
  static const Circuit c = bench_circuits::wide_and(1 << 14);
  garble_throughput(state, c, state.range(0) ? GcPipeline::kBatched
                                             : GcPipeline::kScalar);
}
BENCHMARK(BM_GarbleWide)->Arg(0)->Arg(1)->ArgNames({"batched"});

void BM_GarbleChain(benchmark::State& state) {
  static const Circuit c = bench_circuits::and_chain(1 << 12);
  garble_throughput(state, c, state.range(0) ? GcPipeline::kBatched
                                             : GcPipeline::kScalar);
}
BENCHMARK(BM_GarbleChain)->Arg(0)->Arg(1)->ArgNames({"batched"});

// The scheduling payoff on a carry-chain-heavy netlist: a real matvec
// garbled in construction order (windows of ~1-2 ANDs, the BM_GarbleChain
// regime) vs the width-scheduled order (capacity-bound windows).
void BM_GarbleMatvec(benchmark::State& state) {
  static const Circuit c = synth::make_matvec_circuit(16, 8, kDefaultFormat);
  GcOptions opt;
  opt.schedule = state.range(0) != 0;
  garble_throughput(state, c, opt);
}
BENCHMARK(BM_GarbleMatvec)->Arg(0)->Arg(1)->ArgNames({"scheduled"})
    ->Unit(benchmark::kMillisecond);

// Batch-width histogram per netlist: mean/p50/p95/max AND gates per
// drained window, construction order vs scheduled. The timed body is
// the window_stats scan itself; the counters are the metric.
void batch_width(benchmark::State& state, const Circuit& base) {
  std::shared_ptr<const Circuit> sched;
  const Circuit& c = state.range(0) ? *(sched = base.gc_scheduled()) : base;
  for (auto _ : state)
    benchmark::DoNotOptimize(window_stats(c, kGcMaxBatchWindow));
  const WindowStats ws = window_stats(c, kGcMaxBatchWindow);
  state.counters["mean_width"] = ws.mean;
  state.counters["p50_width"] = static_cast<double>(ws.p50);
  state.counters["p95_width"] = static_cast<double>(ws.p95);
  state.counters["max_width"] = static_cast<double>(ws.max);
  state.counters["windows"] = static_cast<double>(ws.windows);
}

void BM_BatchWidthMatvec(benchmark::State& state) {
  static const Circuit c = synth::make_matvec_circuit(16, 8, kDefaultFormat);
  batch_width(state, c);
}
BENCHMARK(BM_BatchWidthMatvec)->Arg(0)->Arg(1)->ArgNames({"scheduled"});

void BM_BatchWidthAndChain(benchmark::State& state) {
  // Worst case: a pure AND chain has depth = gates; scheduling cannot
  // (and must not pretend to) widen it.
  static const Circuit c = bench_circuits::and_chain(1 << 12);
  batch_width(state, c);
}
BENCHMARK(BM_BatchWidthAndChain)->Arg(0)->Arg(1)->ArgNames({"scheduled"});

// Cost of the compiler stage itself (amortized once per netlist by the
// Circuit cache, paid on model load/reload).
void BM_ScheduleMatvec(benchmark::State& state) {
  static const Circuit c = synth::make_matvec_circuit(16, 8, kDefaultFormat);
  for (auto _ : state) benchmark::DoNotOptimize(schedule_circuit(c));
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(c.gates.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScheduleMatvec)->Unit(benchmark::kMillisecond);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<uint8_t> data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Ed25519ScalarMult(benchmark::State& state) {
  Ed25519Scalar k{};
  k[0] = 0xA7;
  k[31] = 0x12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Point::base_mul(k));
  }
}
BENCHMARK(BM_Ed25519ScalarMult)->Unit(benchmark::kMicrosecond);

void BM_OtExtension(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    run_two_party(
        [&](Channel& ch) {
          Prg prg(Block{5, 6});
          OtExtSender s(ch);
          s.setup(prg);
          std::vector<Block> zeros(m);
          prg.next_blocks(zeros.data(), m);
          s.send_correlated(zeros, Block{1, 1});
        },
        [&](Channel& ch) {
          Prg prg(Block{7, 8});
          OtExtReceiver r(ch);
          r.setup(prg);
          BitVec choices(m, 1);
          r.recv(choices);
        });
  }
  state.counters["OT/s"] = benchmark::Counter(
      static_cast<double>(m) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OtExtension)->Arg(1 << 14)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BuildMult16(benchmark::State& state) {
  using namespace synth;
  for (auto _ : state) {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, kDefaultFormat);
    const Bus y = input_fixed(b, Party::kEvaluator, kDefaultFormat);
    b.outputs(mult_fixed(b, x, y, 12));
    benchmark::DoNotOptimize(b.build());
  }
}
BENCHMARK(BM_BuildMult16)->Unit(benchmark::kMicrosecond);

void BM_BuildTanhLut(benchmark::State& state) {
  using namespace synth;
  for (auto _ : state) {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, kDefaultFormat);
    b.outputs(activation(b, x, ActKind::kTanhLUT, kDefaultFormat));
    benchmark::DoNotOptimize(b.build());
  }
}
BENCHMARK(BM_BuildTanhLut)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Per-backend rows — the headline table of the pluggable-backend work.
// Registered at runtime (RegisterBenchmark in main) so only the
// backends this host can actually run appear, each under its registry
// name: BM_GcHashBatchBackend/<name>, BM_GarbleWideBackend/<name>.
// ---------------------------------------------------------------------

void hash_batch_backend(benchmark::State& state, const HashBackend* be) {
  constexpr size_t n = 1024;
  std::vector<Block> in(n), out(n);
  Prg prg(Block{5, 6});
  prg.next_blocks(in.data(), n);
  std::vector<uint64_t> tweaks(n);
  for (size_t i = 0; i < n; ++i) tweaks[i] = i;
  for (auto _ : state) {
    gc_hash_batch(*be, in.data(), tweaks.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["hashes/s"] = benchmark::Counter(
      static_cast<double>(n) * state.iterations(), benchmark::Counter::kIsRate);
}

// AND-gates/s through the full batched garbling pipeline with the
// window sweeps pinned to one backend: the scalar row is the old
// portable path, bitsliced8 the new portable floor, aesni8/vaes16 the
// hardware kernels.
void garble_wide_backend(benchmark::State& state, const HashBackend* be) {
  static const Circuit c = bench_circuits::wide_and(1 << 14);
  GcOptions opt;
  opt.hash_backend = be;
  garble_throughput(state, c, opt);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  for (const HashBackend* be : compiled_hash_backends()) {
    if (!be->available()) continue;
    benchmark::RegisterBenchmark(
        (std::string("BM_GcHashBatchBackend/") + be->name).c_str(),
        [be](benchmark::State& s) { hash_batch_backend(s, be); });
    benchmark::RegisterBenchmark(
        (std::string("BM_GarbleWideBackend/") + be->name).c_str(),
        [be](benchmark::State& s) { garble_wide_backend(s, be); });
  }
  benchmark::AddCustomContext("hash_backend", deepsecure::hash_backend().name);
  benchmark::AddCustomContext("cpu_features",
                              deepsecure::hash_backend_cpu_features());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
