// Backend registry + runtime dispatch for the batch AES kernels.
// Selection is lazy and cached in a single atomic pointer: the common
// path (hash_backend() inside a window sweep) is one relaxed load. A
// re-selection race is benign — every thread resolves to the same
// value for a given (env, force-software) state.
#include "crypto/hash_backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace deepsecure {
namespace {

// ---------------------------------------------------------------------
// CPUID probes. Cached per feature: the leaves never change at runtime.
// ---------------------------------------------------------------------

#if defined(__x86_64__) || defined(__i386__)
struct CpuFeatures {
  bool aesni = false;
  bool avx2 = false;
  bool avx512f = false;
  bool vaes = false;
  bool os_zmm = false;  // XCR0 grants zmm/opmask state
};

CpuFeatures probe_cpu() {
  CpuFeatures f;
  unsigned eax, ebx, ecx, edx;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.aesni = (ecx & (1u << 25)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
    f.vaes = (ecx & (1u << 9)) != 0;
  }
  if (osxsave) {
    uint32_t xcr0_lo, xcr0_hi;
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    // SSE+AVX+opmask+zmm_hi256+hi16_zmm all enabled by the OS.
    f.os_zmm = (xcr0_lo & 0xE6u) == 0xE6u;
  }
  return f;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe_cpu();
  return f;
}
#else
struct CpuFeatures {
  bool aesni = false, avx2 = false, avx512f = false, vaes = false,
       os_zmm = false;
};
const CpuFeatures& cpu_features() {
  static const CpuFeatures f{};
  return f;
}
#endif

// ---------------------------------------------------------------------
// Backend table.
// ---------------------------------------------------------------------

bool always_available() { return true; }

const HashBackend kScalar = {
    "scalar",          1, false, "none", &always_available,
    &detail::aes128_encrypt_batch_soft,
};

const HashBackend kBitsliced = {
    "bitsliced8",      8, true, "none", &always_available,
    &detail::aes128_encrypt_batch_bitsliced,
};

#if defined(DEEPSECURE_AESNI_COMPILED)
bool aesni_ok() {
  return cpu_features().aesni && !detail::aes128_software_forced();
}
const HashBackend kAesni = {
    "aesni8", 8, true, "aes-ni", &aesni_ok, &detail::aes128_encrypt_batch_ni,
};
#endif

#if defined(DEEPSECURE_VAES_COMPILED)
bool vaes_ok() {
  const CpuFeatures& f = cpu_features();
  return f.vaes && f.avx512f && f.os_zmm && !detail::aes128_software_forced();
}
const HashBackend kVaes = {
    "vaes16", 16,        true, "vaes+avx512f", &vaes_ok,
    &detail::aes128_encrypt_batch_vaes,
};
#endif

std::vector<const HashBackend*> build_registry() {
  std::vector<const HashBackend*> v;
#if defined(DEEPSECURE_VAES_COMPILED)
  v.push_back(&kVaes);
#endif
#if defined(DEEPSECURE_AESNI_COMPILED)
  v.push_back(&kAesni);
#endif
  v.push_back(&kBitsliced);
  v.push_back(&kScalar);
  return v;
}

// ---------------------------------------------------------------------
// Selection.
// ---------------------------------------------------------------------

const HashBackend* auto_select() {
  for (const HashBackend* be : compiled_hash_backends())
    if (be->available()) return be;
  return &kScalar;  // unreachable: scalar is always available
}

const HashBackend* resolve() {
  if (const char* env = std::getenv("DEEPSECURE_HASH_BACKEND")) {
    if (*env != '\0') {
      const HashBackend* be = find_hash_backend(env);
      if (be != nullptr && be->available()) return be;
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "deepsecure: DEEPSECURE_HASH_BACKEND=%s %s; using auto "
                     "dispatch\n",
                     env,
                     be == nullptr ? "is not a compiled backend"
                                   : "is unavailable on this host");
      }
    }
  }
  return auto_select();
}

// nullptr = unresolved; resolved lazily on first hash_backend() call.
std::atomic<const HashBackend*> g_active{nullptr};

}  // namespace

const std::vector<const HashBackend*>& compiled_hash_backends() {
  static const std::vector<const HashBackend*> registry = build_registry();
  return registry;
}

const HashBackend* find_hash_backend(std::string_view name) {
  for (const HashBackend* be : compiled_hash_backends())
    if (name == be->name) return be;
  return nullptr;
}

const HashBackend& hash_backend() {
  const HashBackend* be = g_active.load(std::memory_order_acquire);
  if (be == nullptr) {
    be = resolve();
    g_active.store(be, std::memory_order_release);
  }
  return *be;
}

bool set_hash_backend(std::string_view name) {
  if (name.empty()) {
    g_active.store(nullptr, std::memory_order_release);
    return true;
  }
  const HashBackend* be = find_hash_backend(name);
  if (be == nullptr || !be->available()) return false;
  g_active.store(be, std::memory_order_release);
  return true;
}

std::string hash_backend_cpu_features() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  const auto add = [&](bool have, const char* tag) {
    if (!have) return;
    if (!s.empty()) s += ',';
    s += tag;
  };
  add(f.aesni, "aesni");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  add(f.vaes, "vaes");
  add(f.os_zmm, "os_zmm");
  return s.empty() ? "none" : s;
}

namespace detail {
void hash_backend_reselect() {
  g_active.store(nullptr, std::memory_order_release);
}
}  // namespace detail

}  // namespace deepsecure
