#include "net/tcp_channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace deepsecure {
namespace {

// Process-wide TCP instruments (Registry::global()): aggregate across
// every channel. Resolved once via function-local statics so channel
// construction stays cheap.
obs::Counter& tcp_poll_resumes() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.tcp.poll_resumes");
  return c;
}
obs::Counter& tcp_bytes_in() {
  static obs::Counter& c = obs::Registry::global().counter("net.tcp.bytes_in");
  return c;
}
obs::Counter& tcp_bytes_out() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.tcp.bytes_out");
  return c;
}

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("tcp: " + what + ": " + std::strerror(errno));
}

// Peer-gone errnos, mapped to the one message every session handler
// already treats as clean teardown (never an abort): EPIPE/ECONNRESET
// on send, ECONNRESET on recv.
bool peer_gone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

[[noreturn]] void throw_peer_closed() {
  throw std::runtime_error("tcp: peer closed connection");
}

void set_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) die("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) die("fcntl(F_SETFL)");
}

}  // namespace

TcpListener::TcpListener(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) die("socket");
  fd_.store(fd);
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    die("getsockname");
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, backlog) != 0) die("listen");
}

TcpListener::TcpListener(TcpListener&& o) noexcept
    : fd_(o.fd_.exchange(-1)), port_(o.port_) {}

TcpListener::~TcpListener() {
  // No accept() may be in flight at destruction time (the owner joins
  // its accept thread first), so releasing the fd is safe here.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    (void)::shutdown(fd, SHUT_RDWR);
    (void)::close(fd);
  }
}

void TcpListener::set_nonblocking(bool on) {
  const int fd = fd_.load();
  if (fd >= 0) set_fd_nonblocking(fd, on);
}

TcpChannel TcpListener::accept() {
  for (;;) {
    const int lfd = fd_.load();
    if (lfd < 0) throw std::runtime_error("tcp: accept on closed listener");
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return TcpChannel(fd);
    }
    // ECONNABORTED: the client reset while queued in the backlog — a
    // per-connection event, not a listener failure; keep accepting.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw std::runtime_error("tcp: accept: listener closed or failed: " +
                             std::string(std::strerror(errno)));
  }
}

std::optional<TcpChannel> TcpListener::try_accept() {
  for (;;) {
    const int lfd = fd_.load();
    if (lfd < 0) throw std::runtime_error("tcp: accept on closed listener");
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return TcpChannel(fd);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw std::runtime_error("tcp: accept: listener closed or failed: " +
                             std::string(std::strerror(errno)));
  }
}

void TcpListener::close() {
  // Shutdown only — the fd stays allocated until the destructor, so a
  // concurrent accept() that already loaded the fd number cannot race
  // against the kernel recycling it for an unrelated socket. shutdown()
  // wakes a thread blocked in ::accept (EINVAL); later accepts fail the
  // same way.
  const int fd = fd_.load();
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

TcpChannel TcpChannel::listen_and_accept(uint16_t port, uint16_t* bound_port) {
  TcpListener listener(port, /*backlog=*/1);
  if (bound_port != nullptr) *bound_port = listener.port();
  return listener.accept();
}

TcpChannel TcpChannel::connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("tcp: bad address " + host);

  // Retry for up to ~6 s so both parties can start concurrently (and a
  // thundering herd of loadgen sessions can outwait a full backlog).
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) die("socket");
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR && ([&] {
               // EINTR mid-connect: the handshake continues in the
               // background — wait for writability, then read the result
               // instead of issuing a second connect (EALREADY).
               pollfd p{fd, POLLOUT, 0};
               while (::poll(&p, 1, -1) < 0 && errno == EINTR) {
               }
               int err = 0;
               socklen_t elen = sizeof(err);
               (void)getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
               errno = err;
               return false;  // leave the do-while; rc stays nonzero
             }()));
    if (rc == 0 || errno == 0) {
      set_nodelay(fd);
      return TcpChannel(fd);
    }
    ::close(fd);
    if (attempt >= 400) die("connect");
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
}

TcpChannel::TcpChannel(TcpChannel&& o) noexcept
    : fd_(o.fd_),
      nonblocking_(o.nonblocking_),
      timeout_ms_(o.timeout_ms_),
      sent_(o.sent_),
      received_(o.received_),
      uring_(std::move(o.uring_)) {
  o.fd_ = -1;
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpChannel::shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpChannel::set_recv_timeout_ms(uint64_t ms) {
  if (fd_ < 0) return;
  timeout_ms_ = ms;
  if (nonblocking_) return;  // enforced as the poll deadline instead
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    die("setsockopt(SO_RCVTIMEO)");
}

void TcpChannel::set_nonblocking(bool on) {
  if (fd_ < 0 || on == nonblocking_) return;
  set_fd_nonblocking(fd_, on);
  nonblocking_ = on;
  if (!on && timeout_ms_ > 0) {
    const uint64_t ms = timeout_ms_;
    timeout_ms_ = 0;
    set_recv_timeout_ms(ms);  // re-arm SO_RCVTIMEO for blocking mode
  }
}

// Resume point for nonblocking I/O: park in poll() until the fd is
// ready for `events`. The recv timeout bounds the wait (a mid-frame
// stall counts as idleness just like SO_RCVTIMEO would); 0 waits
// forever. POLLERR/POLLHUP fall through to the syscall, which reports
// the precise error.
void TcpChannel::wait_ready(short events) {
  tcp_poll_resumes().add();
  const int timeout =
      timeout_ms_ > 0 ? static_cast<int>(timeout_ms_) : -1;
  pollfd p{fd_, events, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout);
    if (rc > 0) return;
    if (rc == 0) throw std::runtime_error("tcp: recv timed out (idle timeout)");
    if (errno == EINTR) continue;
    die("poll");
  }
}

void TcpChannel::send_bytes(const void* data, size_t n) {
  if (uring_ != nullptr && n > 0) {
    iovec iov{const_cast<void*>(data), n};
    netstat::syscalls_send().add(uring_->send_batch(fd_, &iov, 1));
    sent_ += n;
    tcp_bytes_out().add(n);
    return;
  }
  const auto* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    netstat::syscalls_send().add();
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!nonblocking_)
          throw std::runtime_error("tcp: send timed out");
        wait_ready(POLLOUT);  // short write: resume where we left off
        continue;
      }
      if (peer_gone(errno)) throw_peer_closed();
      die("send");
    }
    done += static_cast<size_t>(w);
  }
  sent_ += n;
  tcp_bytes_out().add(n);
}

void TcpChannel::recv_bytes(void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd_, p + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!nonblocking_)
          throw std::runtime_error("tcp: recv timed out (idle timeout)");
        wait_ready(POLLIN);  // short read: resume where we left off
        continue;
      }
      if (peer_gone(errno)) throw_peer_closed();
      die("recv");
    }
    if (r == 0) throw_peer_closed();
    done += static_cast<size_t>(r);
  }
  received_ += n;
  tcp_bytes_in().add(n);
}

void TcpChannel::send_iov(IoSlice* slices, size_t n) {
  std::vector<iovec> iov;
  iov.reserve(n);
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (slices[i].len == 0) continue;
    iov.push_back(iovec{const_cast<void*>(slices[i].data), slices[i].len});
    total += slices[i].len;
  }
  if (!iov.empty()) {
    netstat::sends_vectored().add();
    if (uring_ != nullptr) {
      netstat::syscalls_send().add(
          uring_->send_batch(fd_, iov.data(), iov.size()));
    } else {
      // sendmsg per <= IOV_MAX slices, resuming short writes mid-iovec
      // (same EINTR/EAGAIN/peer-gone handling as send_bytes).
      size_t at = 0;
      while (at < iov.size()) {
        msghdr m{};
        m.msg_iov = iov.data() + at;
        m.msg_iovlen = std::min(iov.size() - at, size_t{IOV_MAX});
        const ssize_t w = ::sendmsg(fd_, &m, MSG_NOSIGNAL);
        netstat::syscalls_send().add();
        if (w < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!nonblocking_)
              throw std::runtime_error("tcp: send timed out");
            wait_ready(POLLOUT);
            continue;
          }
          if (peer_gone(errno)) throw_peer_closed();
          die("sendmsg");
        }
        size_t adv = static_cast<size_t>(w);
        while (adv > 0) {
          if (adv >= iov[at].iov_len) {
            adv -= iov[at].iov_len;
            ++at;
          } else {
            iov[at].iov_base = static_cast<uint8_t*>(iov[at].iov_base) + adv;
            iov[at].iov_len -= adv;
            adv = 0;
          }
        }
      }
    }
    sent_ += total;
    tcp_bytes_out().add(total);
  }
  // Slices fully on the wire (kernel-buffered) — borrowed slabs can
  // recycle now.
  for (size_t i = 0; i < n; ++i) slices[i].ref.reset();
}

bool TcpChannel::enable_io_uring() {
  if (uring_ != nullptr) return true;
  uring_ = net::UringQueue::create();  // nullptr = probe refused
  return uring_ != nullptr;
}

size_t TcpChannel::recv_some(void* data, size_t min_n, size_t max_n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t done = 0;
  // Each recv() asks for everything still fitting in max_n; the kernel
  // returns what has arrived, so we never block once min_n is satisfied.
  while (done < min_n) {
    const ssize_t r = ::recv(fd_, p + done, max_n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!nonblocking_)
          throw std::runtime_error("tcp: recv timed out (idle timeout)");
        wait_ready(POLLIN);
        continue;
      }
      if (peer_gone(errno)) throw_peer_closed();
      die("recv");
    }
    if (r == 0) throw_peer_closed();
    done += static_cast<size_t>(r);
  }
  received_ += done;
  tcp_bytes_in().add(done);
  return done;
}

}  // namespace deepsecure
