// A Bus is an ordered little-endian collection of wires — the circuit-
// level representation of a fixed-point word.
#pragma once

#include <vector>

#include "circuit/builder.h"
#include "fixed/fixed_point.h"

namespace deepsecure::synth {

using Bus = std::vector<Wire>;

/// Wires carrying the constant little-endian value `v` (free: they are
/// the const0/const1 wires, folded away by the builder).
Bus constant_bus(Builder& b, uint64_t v, size_t n);

/// Constant bus holding round(x * 2^frac) in two's complement.
Bus constant_fixed(Builder& b, double x, FixedFormat fmt);

/// Private input buses.
Bus input_bus(Builder& b, Party p, size_t n);
inline Bus input_fixed(Builder& b, Party p, FixedFormat fmt) {
  return input_bus(b, p, fmt.total_bits);
}

// Width adjustments are free (rewiring only).
Bus sign_extend(const Bus& a, size_t n);
Bus zero_extend(Builder& b, const Bus& a, size_t n);
Bus truncate(const Bus& a, size_t n);
/// Logical shift left by constant k (low bits filled with const0).
Bus shl_const(Builder& b, const Bus& a, size_t k);
/// Arithmetic shift right by constant k (sign-fill), width preserved.
Bus sar_const(const Bus& a, size_t k);

}  // namespace deepsecure::synth
