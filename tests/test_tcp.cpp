// The TCP transport carries the identical protocol bytes as the
// in-memory channel: run real secure inference over a loopback socket.
#include <gtest/gtest.h>

#include <thread>

#include "gc/protocol.h"
#include "net/tcp_channel.h"
#include "synth/layer_circuits.h"
#include "test_util.h"

namespace deepsecure {
namespace {

using test::pack_fixed;
using test::random_fixed;

TEST(TcpChannel, ByteRoundTrip) {
  uint16_t port = 0;
  std::unique_ptr<TcpChannel> server;
  std::thread accept_thread([&] {
    // listen_and_accept fills the port before blocking in accept, but we
    // still need the client to start after bind; use port handshake via
    // promise-free retry on the client side.
  });
  accept_thread.join();

  // Start server and client concurrently; connect() retries until the
  // listener is up.
  uint16_t chosen = 0;
  std::thread srv([&] {
    TcpChannel ch = TcpChannel::listen_and_accept(24567, &chosen);
    uint64_t v = ch.recv_u64();
    ch.send_u64(v + 1);
    const BitVec bits = ch.recv_bits();
    ch.send_bits(bits);
  });
  TcpChannel cli = TcpChannel::connect("127.0.0.1", 24567);
  cli.send_u64(41);
  EXPECT_EQ(cli.recv_u64(), 42u);
  const BitVec sent{1, 0, 1, 1, 0, 1, 0, 0, 1};
  cli.send_bits(sent);
  EXPECT_EQ(cli.recv_bits(), sent);
  srv.join();
  EXPECT_GT(cli.bytes_sent(), 8u);
  EXPECT_GT(cli.bytes_received(), 8u);
}

TEST(TcpChannel, SecureInferenceOverLoopback) {
  // Full protocol (OT + garbling + chained layers) across a real socket.
  synth::ModelSpec spec;
  spec.input = synth::Shape3{1, 1, 5};
  spec.layers.push_back(synth::FcLayer{4, {}, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{3, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  const auto chain = synth::compile_model_layers(spec);

  Rng rng(9);
  std::vector<Fixed> x, w;
  for (size_t i = 0; i < 5; ++i) x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec data = pack_fixed(x), weights = pack_fixed(w);

  const Circuit mono = synth::compile_model(spec);
  const BitVec expect = mono.eval(data, weights);

  BitVec client_out, server_out;
  std::thread server_thread([&] {
    TcpChannel ch = TcpChannel::listen_and_accept(24568);
    EvaluatorSession session(ch);
    server_out = session.run_chain(chain, weights);
  });
  {
    TcpChannel ch = TcpChannel::connect("127.0.0.1", 24568);
    GarblerSession session(ch, Block{2024, 610});
    client_out = session.run_chain(chain, data);
  }
  server_thread.join();
  EXPECT_EQ(client_out, expect);
  EXPECT_EQ(server_out, expect);
}

TEST(TcpChannel, StreamingSamplesReuseOtSetup) {
  // One session, several inferences: the base-OT cost amortizes (the
  // Figure 6 streaming premise) — only the first run pays setup.
  synth::ModelSpec spec;
  spec.input = synth::Shape3{1, 1, 4};
  spec.layers.push_back(synth::FcLayer{2, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  const auto chain = synth::compile_model_layers(spec);

  Rng rng(10);
  std::vector<Fixed> w;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec weights = pack_fixed(w);
  const Circuit mono = synth::compile_model(spec);

  constexpr int kSamples = 4;
  std::vector<BitVec> datas;
  for (int s = 0; s < kSamples; ++s) {
    std::vector<Fixed> x;
    for (int i = 0; i < 4; ++i) x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
    datas.push_back(pack_fixed(x));
  }

  std::vector<BitVec> client_outs(kSamples);
  double setup_first = 0, setup_later = 0;
  std::thread server_thread([&] {
    TcpChannel ch = TcpChannel::listen_and_accept(24569);
    EvaluatorSession session(ch);
    for (int s = 0; s < kSamples; ++s) session.run_chain(chain, weights);
  });
  {
    TcpChannel ch = TcpChannel::connect("127.0.0.1", 24569);
    GarblerSession session(ch, Block{11, 11});
    for (int s = 0; s < kSamples; ++s) {
      client_outs[s] = session.run_chain(chain, datas[s]);
      if (s == 0) setup_first = session.trace().setup_s;
    }
    setup_later = session.trace().setup_s;
  }
  server_thread.join();

  for (int s = 0; s < kSamples; ++s)
    EXPECT_EQ(client_outs[s], mono.eval(datas[s], weights)) << "sample " << s;
  EXPECT_GT(setup_first, 0.0);
  EXPECT_EQ(setup_first, setup_later);  // setup ran exactly once
}

}  // namespace
}  // namespace deepsecure
