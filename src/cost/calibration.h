// Host calibration subroutines (Section 3.1.1: "DeepSecure finds an
// estimation of the physical coefficients beta and alpha by running a
// set of subroutines"): garble + evaluate synthetic circuits over the
// in-memory channel and measure effective per-gate costs and the
// Section 4.4 throughput numbers (paper: 2.56M non-XOR/s, 5.11M XOR/s).
#pragma once

#include <cstddef>

namespace deepsecure::cost {

struct Calibration {
  double non_xor_gates_per_s = 0.0;  // garble+eval pipeline throughput
  double xor_gates_per_s = 0.0;
  double ns_per_non_xor = 0.0;       // garbler-side cost
  double ns_per_xor = 0.0;
  double ot_per_s = 0.0;             // OT-extension label transfers / s
};

/// Measure this host. `gates` controls the synthetic circuit size.
Calibration calibrate(size_t gates = 200000);

}  // namespace deepsecure::cost
