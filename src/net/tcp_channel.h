// TCP transport: the same Channel interface as the in-memory pair, over
// a real socket — what an actual client/server deployment of the
// protocol uses (the paper's LAN testbed). Blocking, stream-oriented,
// with TCP_NODELAY so the request/response OT rounds are not delayed by
// Nagle batching.
#pragma once

#include <cstdint>
#include <string>

#include "net/channel.h"

namespace deepsecure {

class TcpChannel final : public Channel {
 public:
  /// Server side: bind + listen on `port` (0 = ephemeral), accept one
  /// peer. `bound_port` receives the actual port before accept blocks.
  static TcpChannel listen_and_accept(uint16_t port,
                                      uint16_t* bound_port = nullptr);

  /// Client side: connect to host:port (retries briefly so tests can
  /// start both ends concurrently).
  static TcpChannel connect(const std::string& host, uint16_t port);

  TcpChannel(TcpChannel&& o) noexcept;
  TcpChannel& operator=(TcpChannel&&) = delete;
  ~TcpChannel() override;

  void send_bytes(const void* data, size_t n) override;
  void recv_bytes(void* data, size_t n) override;

  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }
  void reset_counters() override {
    sent_ = 0;
    received_ = 0;
  }

 private:
  explicit TcpChannel(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

}  // namespace deepsecure
