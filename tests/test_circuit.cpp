#include <gtest/gtest.h>

#include "circuit/builder.h"
#include "circuit/netlist_io.h"
#include "circuit/sequential.h"

namespace deepsecure {
namespace {

TEST(Builder, BasicGates) {
  Builder b("basic");
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kEvaluator);
  b.output(b.xor_(x, y));
  b.output(b.and_(x, y));
  b.output(b.or_(x, y));
  b.output(b.not_(x));
  b.output(b.xnor_(x, y));
  b.output(b.nand_(x, y));
  b.output(b.nor_(x, y));
  const Circuit c = b.build();

  for (int xv = 0; xv < 2; ++xv) {
    for (int yv = 0; yv < 2; ++yv) {
      const BitVec out = c.eval({static_cast<uint8_t>(xv)},
                                {static_cast<uint8_t>(yv)});
      EXPECT_EQ(out[0], xv ^ yv);
      EXPECT_EQ(out[1], xv & yv);
      EXPECT_EQ(out[2], xv | yv);
      EXPECT_EQ(out[3], 1 - xv);
      EXPECT_EQ(out[4], 1 - (xv ^ yv));
      EXPECT_EQ(out[5], 1 - (xv & yv));
      EXPECT_EQ(out[6], 1 - (xv | yv));
    }
  }
}

TEST(Builder, MuxTruthTable) {
  Builder b;
  const Wire s = b.input(Party::kGarbler);
  const Wire t = b.input(Party::kGarbler);
  const Wire f = b.input(Party::kGarbler);
  b.output(b.mux(s, t, f));
  const Circuit c = b.build();
  for (int sv = 0; sv < 2; ++sv)
    for (int tv = 0; tv < 2; ++tv)
      for (int fv = 0; fv < 2; ++fv) {
        const BitVec out = c.eval({static_cast<uint8_t>(sv),
                                   static_cast<uint8_t>(tv),
                                   static_cast<uint8_t>(fv)},
                                  {});
        EXPECT_EQ(out[0], sv ? tv : fv);
      }
}

TEST(Builder, ConstantFolding) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  EXPECT_EQ(b.and_(x, b.const_bit(false)), kConst0);
  EXPECT_EQ(b.and_(x, b.const_bit(true)), x);
  EXPECT_EQ(b.xor_(x, b.const_bit(false)), x);
  EXPECT_EQ(b.xor_(x, x), kConst0);
  EXPECT_EQ(b.and_(x, x), x);
  EXPECT_EQ(b.and_count(), 0u);
  EXPECT_EQ(b.xor_count(), 0u);
}

TEST(Builder, StructuralHashingDedupes) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kGarbler);
  const Wire g1 = b.and_(x, y);
  const Wire g2 = b.and_(y, x);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(b.and_count(), 1u);
  const Wire x1 = b.xor_(x, y);
  const Wire x2 = b.xor_(x, y);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(b.xor_count(), 1u);
}

TEST(Circuit, StatsCountGateClasses) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kEvaluator);
  b.output(b.or_(x, y));  // 1 AND + 2 XOR
  const Circuit c = b.build();
  const auto s = c.stats();
  EXPECT_EQ(s.num_and, 1u);
  EXPECT_EQ(s.num_xor, 2u);
  EXPECT_EQ(s.table_bytes(), 32u);
}

TEST(Circuit, ValidateRejectsUnordered) {
  Circuit c;
  c.num_wires = 4;
  c.garbler_inputs = {2};
  // Gate uses wire 3 before it is defined.
  c.gates.push_back(Gate{3, 2, 3, GateOp::kXor});
  EXPECT_THROW(c.validate(), std::logic_error);
}

TEST(Sequential, AccumulatorCountsOnes) {
  // 4-bit counter: state += garbler bit each cycle.
  Builder b("counter");
  const Wire in = b.input(Party::kGarbler);
  std::vector<Wire> acc = b.state_inputs(4);
  // Increment by `in`: ripple add of a 1-bit value.
  Wire carry = in;
  std::vector<Wire> next(4);
  for (int i = 0; i < 4; ++i) {
    next[i] = b.xor_(acc[i], carry);
    carry = b.and_(acc[i], carry);
  }
  b.set_state_next(next);
  b.outputs(next);
  const Circuit step = b.build();

  const BitVec bits = {1, 1, 0, 1, 1, 1};  // six cycles, sum = 5
  const BitVec out = eval_sequential(step, bits.size(), bits, {});
  EXPECT_EQ(from_bits(out), 5u);
}

TEST(NetlistIo, RoundTrip) {
  Builder b("roundtrip");
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kEvaluator);
  const Wire s = b.state_input();
  const Wire z = b.and_(b.xor_(x, y), s);
  b.set_state_next({z});
  b.output(z);
  const Circuit c = b.build();

  const std::string text = netlist_to_string(c);
  const Circuit c2 = netlist_from_string(text);
  EXPECT_EQ(c2.name, "roundtrip");
  EXPECT_EQ(c2.gates.size(), c.gates.size());
  EXPECT_EQ(c2.num_wires, c.num_wires);

  BitVec st1{1}, st2{1};
  EXPECT_EQ(c.eval({1}, {0}, &st1), c2.eval({1}, {0}, &st2));
  EXPECT_EQ(st1, st2);
}

TEST(NetlistIo, RejectsMalformed) {
  EXPECT_THROW(netlist_from_string("gate AND 1 2 3\n"), std::runtime_error);
  EXPECT_THROW(netlist_from_string("netlist x\nwires 4\ngate FOO 0 1 2\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace deepsecure
