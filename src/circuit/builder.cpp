#include "circuit/builder.h"

#include <stdexcept>

namespace deepsecure {

Builder::Builder(std::string name, bool enable_cse) : cse_(enable_cse) {
  c_.name = std::move(name);
}

Wire Builder::new_wire() { return c_.num_wires++; }

Wire Builder::input(Party p) {
  const Wire w = new_wire();
  (p == Party::kGarbler ? c_.garbler_inputs : c_.evaluator_inputs).push_back(w);
  return w;
}

std::vector<Wire> Builder::inputs(Party p, size_t n) {
  std::vector<Wire> ws(n);
  for (auto& w : ws) w = input(p);
  return ws;
}

Wire Builder::state_input() {
  const Wire w = new_wire();
  c_.state_inputs.push_back(w);
  return w;
}

std::vector<Wire> Builder::state_inputs(size_t n) {
  std::vector<Wire> ws(n);
  for (auto& w : ws) w = state_input();
  return ws;
}

void Builder::set_state_next(const std::vector<Wire>& next) {
  c_.state_next = next;
}

void Builder::set_lane(uint32_t lane) {
  if (!lanes_used_) {
    lanes_used_ = true;
    // Backfill: gates emitted before the first tag land in lane 0.
    c_.gate_lanes.assign(c_.gates.size(), 0);
  }
  lane_ = lane;
}

Wire Builder::emit(GateOp op, Wire a, Wire b) {
  // Canonicalize commutative operand order for CSE.
  if (a > b) std::swap(a, b);

  // Constant folding and algebraic identities — this is the netlist
  // optimization pass that stands in for synthesis-tool minimization.
  if (op == GateOp::kXor) {
    if (a == b) return kConst0;
    if (a == kConst0) return b;
    // XOR with const1 (NOT) is kept: free in GC, needed for inversion.
  } else {  // AND
    if (a == b) return a;
    if (a == kConst0) return kConst0;
    if (a == kConst1) return b;
  }

  if (cse_) {
    const uint64_t key = (static_cast<uint64_t>(a) << 33) |
                         (static_cast<uint64_t>(b) << 1) |
                         static_cast<uint64_t>(op);
    if (auto it = cse_map_.find(key); it != cse_map_.end()) return it->second;
    const Wire out = new_wire();
    c_.gates.push_back(Gate{a, b, out, op});
    if (lanes_used_) c_.gate_lanes.push_back(lane_);
    if (op == GateOp::kAnd)
      ++and_count_;
    else
      ++xor_count_;
    cse_map_.emplace(key, out);
    return out;
  }

  const Wire out = new_wire();
  c_.gates.push_back(Gate{a, b, out, op});
  if (lanes_used_) c_.gate_lanes.push_back(lane_);
  if (op == GateOp::kAnd)
    ++and_count_;
  else
    ++xor_count_;
  return out;
}

Wire Builder::xor_(Wire a, Wire b) { return emit(GateOp::kXor, a, b); }
Wire Builder::and_(Wire a, Wire b) { return emit(GateOp::kAnd, a, b); }

Wire Builder::or_(Wire a, Wire b) {
  // a | b = (a ^ b) ^ (a & b); one non-XOR gate.
  return xor_(xor_(a, b), and_(a, b));
}

Wire Builder::mux(Wire sel, Wire t, Wire f) {
  // f ^ sel*(t^f): one AND gate per mux.
  if (t == f) return t;
  return xor_(f, and_(sel, xor_(t, f)));
}

void Builder::output(Wire w) { c_.outputs.push_back(w); }

void Builder::outputs(const std::vector<Wire>& ws) {
  for (Wire w : ws) output(w);
}

Circuit Builder::build() {
  if (c_.state_inputs.size() != c_.state_next.size())
    throw std::logic_error(
        "builder: set_state_next must cover all state_inputs");
  c_.validate();
  return std::move(c_);
}

}  // namespace deepsecure
