#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "nn/quantize.h"
#include "nn/trainer.h"

namespace deepsecure::nn {
namespace {

TEST(TensorOps, SoftmaxAndLoss) {
  const VecF logits{1.0f, 2.0f, 3.0f};
  const VecF p = softmax(logits);
  float sum = 0;
  for (float v : p) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);

  const LossGrad lg = softmax_cross_entropy(logits, 2);
  EXPECT_NEAR(lg.loss, -std::log(p[2]), 1e-6);
  float gsum = 0;
  for (float v : lg.dlogits) gsum += v;
  EXPECT_NEAR(gsum, 0.0f, 1e-6);  // gradient sums to zero
}

// Finite-difference gradient check for each trainable layer type.
template <typename MakeNet>
void gradient_check(MakeNet&& make, size_t in_dim, size_t out_classes) {
  Rng rng(7);
  Network net = make(rng);
  VecF x(in_dim);
  for (auto& v : x) v = static_cast<float>(rng.next_uniform(-1, 1));
  const size_t label = 1 % out_classes;

  // Analytic gradient of the first layer's first few weights.
  auto loss_of = [&](Network& n) {
    const VecF logits = n.forward(x);
    return softmax_cross_entropy(logits, label).loss;
  };

  // Pick a dense or conv layer and perturb weights.
  for (auto& layer : net.layers()) {
    VecF* w = nullptr;
    if (auto* d = dynamic_cast<DenseLayer*>(layer.get())) w = &d->weights();
    if (auto* c = dynamic_cast<Conv2DLayer*>(layer.get())) w = &c->weights();
    if (w == nullptr) continue;

    // Analytic: run one backward pass, capture dw via the update with
    // lr = 1, momentum = 0 applied to a cloned weight (we recompute by
    // finite differences instead to avoid exposing internals).
    for (size_t i = 0; i < std::min<size_t>(4, w->size()); ++i) {
      const float eps = 1e-3f;
      const float orig = (*w)[i];
      (*w)[i] = orig + eps;
      const float lp = loss_of(net);
      (*w)[i] = orig - eps;
      const float lm = loss_of(net);
      (*w)[i] = orig;
      const float numeric = (lp - lm) / (2 * eps);

      // One training step with tiny lr moves the weight against the
      // gradient; verify the sign/magnitude relation.
      Network net2 = make(rng);  // unused; keep rng advancing deterministic
      (void)net2;
      const float before = loss_of(net);
      net.train_step(x, label, 1e-2f, 0.0f);
      const float after = loss_of(net);
      EXPECT_LE(after, before + 1e-4) << "training step increased loss";
      // The numeric gradient must be finite and sane.
      EXPECT_TRUE(std::isfinite(numeric));
      break;
    }
    break;
  }
}

TEST(Layers, DenseGradCheck) {
  gradient_check(
      [](Rng& rng) {
        Network n(Shape{1, 1, 6});
        n.dense(5, rng).act(Act::kTanh).dense(3, rng);
        return n;
      },
      6, 3);
}

TEST(Layers, ConvGradCheck) {
  gradient_check(
      [](Rng& rng) {
        Network n(Shape{6, 6, 1});
        n.conv(3, 1, 2, rng).act(Act::kReLU).dense(3, rng);
        return n;
      },
      36, 3);
}

TEST(Layers, PoolShapesAndSemantics) {
  Rng rng(1);
  Network n(Shape{4, 4, 1});
  n.pool(Pool::kMax, 2, 2);
  VecF x(16);
  for (size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const VecF y = n.forward(x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_EQ(y[0], 5.0f);   // max of {0,1,4,5}
  EXPECT_EQ(y[3], 15.0f);  // max of {10,11,14,15}

  Network m(Shape{4, 4, 1});
  m.pool(Pool::kMean, 2, 2);
  const VecF z = m.forward(x);
  EXPECT_NEAR(z[0], 2.5f, 1e-6);
}

TEST(Training, LearnsSeparableData) {
  data::SyntheticConfig cfg;
  cfg.features = 20;
  cfg.classes = 3;
  cfg.samples = 240;
  cfg.seed = 5;
  const Dataset ds = data::make_subspace_dataset(cfg);
  const Split split = split_dataset(ds, 0.8);

  Rng rng(3);
  Network net(Shape{1, 1, 20});
  net.dense(16, rng).act(Act::kReLU).dense(3, rng);
  TrainConfig tc;
  tc.epochs = 12;
  const TrainReport report = train(net, split.train, tc);

  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_GT(accuracy(net, split.test), 0.8f);
}

TEST(Training, TanhAndSigmoidNetsConverge) {
  data::SyntheticConfig cfg;
  cfg.features = 16;
  cfg.classes = 2;
  cfg.samples = 160;
  cfg.seed = 9;
  const Dataset ds = data::make_subspace_dataset(cfg);
  for (Act a : {Act::kTanh, Act::kSigmoid}) {
    Rng rng(4);
    Network net(Shape{1, 1, 16});
    net.dense(10, rng).act(a).dense(2, rng);
    TrainConfig tc;
    tc.epochs = 10;
    train(net, ds, tc);
    EXPECT_GT(accuracy(net, ds), 0.85f) << "act " << static_cast<int>(a);
  }
}

TEST(Quantize, WeightOrderAndCount) {
  Rng rng(6);
  Network net(Shape{1, 1, 4});
  net.dense(3, rng).act(Act::kReLU).dense(2, rng);
  const auto q = quantize_weights(net, kDefaultFormat);
  EXPECT_EQ(q.size(), 4 * 3 + 3 + 3 * 2 + 2);

  // With a mask, pruned weights disappear from the flattening.
  auto dense = net.dense_layers();
  dense[0]->mask.assign(12, 0);
  dense[0]->mask[0] = dense[0]->mask[5] = 1;
  dense[0]->apply_mask();
  const auto q2 = quantize_weights(net, kDefaultFormat);
  EXPECT_EQ(q2.size(), 2u + 3 + 3 * 2 + 2);
}

TEST(Quantize, FixedForwardTracksFloat) {
  data::SyntheticConfig cfg;
  cfg.features = 12;
  cfg.classes = 3;
  cfg.samples = 150;
  cfg.seed = 10;
  const Dataset ds = data::make_subspace_dataset(cfg);
  Rng rng(8);
  Network net(Shape{1, 1, 12});
  net.dense(8, rng).act(Act::kTanh).dense(3, rng);
  TrainConfig tc;
  tc.epochs = 8;
  train(net, ds, tc);

  const float facc = accuracy(net, ds);
  const float qacc = fixed_accuracy(net, ds.x, ds.y, kDefaultFormat);
  // 16-bit quantization must not change accuracy materially (the
  // paper's "no accuracy loss" claim for Q(16,12)).
  EXPECT_NEAR(qacc, facc, 0.05f);
}

TEST(Quantize, ScaleForFixedPreventsWraparound) {
  // Train a model whose logits overflow Q(16,12), then verify the
  // rescaling restores fixed/float agreement without changing argmax.
  data::SyntheticConfig cfg;
  cfg.features = 16;
  cfg.classes = 3;
  cfg.samples = 210;
  cfg.seed = 55;
  const Dataset ds = data::make_subspace_dataset(cfg);
  Rng rng(12);
  Network net(Shape{1, 1, 16});
  net.dense(10, rng).act(Act::kReLU).dense(3, rng);
  TrainConfig tc;
  tc.epochs = 10;
  train(net, ds, tc);

  // Force the overflow regime: blow up the last layer (argmax-invariant
  // in float, catastrophic in wrap-around fixed point).
  auto dense = net.dense_layers();
  for (auto& w : dense[1]->weights()) w *= 40.0f;
  for (auto& b : dense[1]->biases()) b *= 40.0f;
  const float facc = accuracy(net, ds);
  const float broken = fixed_accuracy(net, ds.x, ds.y, kDefaultFormat);

  const ScaleReport rep = scale_for_fixed(net, ds.x);
  EXPECT_TRUE(rep.fully_normalized);
  EXPECT_LE(rep.max_preactivation_after, kDefaultFormat.max_value());
  EXPECT_NEAR(accuracy(net, ds), facc, 1e-6);  // argmax preserved in float

  const float repaired = fixed_accuracy(net, ds.x, ds.y, kDefaultFormat);
  EXPECT_GE(repaired, facc - 0.03f);
  EXPECT_GE(repaired, broken);  // and strictly better in the broken regime
}

TEST(Quantize, ScaleForFixedFlagsSaturatingNets) {
  // With a tanh between layers only the head may be scaled; if the first
  // layer overflows, the report must say normalization was incomplete.
  Rng rng(13);
  Network net(Shape{1, 1, 8});
  net.dense(6, rng).act(Act::kTanh).dense(3, rng);
  auto dense = net.dense_layers();
  for (auto& w : dense[0]->weights()) w *= 100.0f;  // force overflow
  std::vector<VecF> calib;
  Rng drng(14);
  for (int i = 0; i < 10; ++i) {
    VecF x(8);
    for (auto& v : x) v = static_cast<float>(drng.next_uniform(0, 1));
    calib.push_back(x);
  }
  const ScaleReport rep = scale_for_fixed(net, calib);
  EXPECT_FALSE(rep.fully_normalized);
}

}  // namespace
}  // namespace deepsecure::nn
