#include "support/rng.h"

#include <cmath>
#include <cstring>
#include <numbers>

namespace deepsecure {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  have_cached_gaussian_ = false;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian(double mean, double stddev) {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = 0.0;
  do { u1 = next_double(); } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

void Rng::fill_bytes(void* dst, size_t n) {
  auto* p = static_cast<uint8_t*>(dst);
  while (n >= 8) {
    const uint64_t v = next_u64();
    std::memcpy(p, &v, 8);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    const uint64_t v = next_u64();
    std::memcpy(p, &v, n);
  }
}

std::vector<size_t> Rng::permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = next_below(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace deepsecure
