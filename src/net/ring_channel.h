// Asynchronous-sender decorator for any Channel: the garbler-shard →
// frame-writer handoff from the event-core work. send_bytes() copies the
// payload into a chunk, pushes it onto a lock-free SPSC ring
// (support/spsc_ring.h), and returns immediately; a dedicated writer
// thread pops chunks and ships them through the inner channel. The
// producing thread (the garbler emitting table frames, the prefetch
// lane pushing artifacts) therefore overlaps its next frame's work with
// the kernel send of the previous one, instead of serializing
// garble → send → garble.
//
// Ordering: the wire sees chunks in push order (one ring, one writer).
// Receives drain first — recv_bytes/recv_some wait until every queued
// byte has reached the inner channel before reading, so a
// request/response exchange (the OT rounds) can never read a reply to a
// request still sitting in the ring.
//
// Threading contract: exactly ONE user thread calls send/recv on this
// channel (it is the ring's single producer); the internal writer is
// the single consumer. Parking is futex-backed (std::atomic::wait on
// the ring cursors / a doorbell counter), so the handoff path itself
// takes no mutex.
//
// Failure: a writer-side send error is parked and rethrown on the next
// send/recv/drain from the user thread; the writer keeps draining (and
// discarding) chunks so a producer parked on a full ring can never
// deadlock on a dead transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "obs/metrics.h"
#include "support/spsc_ring.h"

namespace deepsecure {

class RingChannel final : public Channel {
 public:
  /// `depth` = chunks in flight before a sender parks. The underlying
  /// transport must outlive this object.
  explicit RingChannel(Channel& inner, size_t depth = 64)
      : inner_(inner), ring_(depth) {
    writer_ = std::thread([this] { writer_loop(); });
  }

  ~RingChannel() override {
    stop_.store(true, std::memory_order_release);
    ring_doorbell();
    if (writer_.joinable()) writer_.join();
  }

  void send_bytes(const void* data, size_t n) override {
    rethrow_if_failed();
    if (n == 0) return;
    std::vector<uint8_t> chunk(n);
    std::memcpy(chunk.data(), data, n);
    // Counted before the push so drain() can never observe the queue as
    // settled while this chunk is still on its way in.
    pending_.fetch_add(n, std::memory_order_release);
    bool stalled = false;
    while (!ring_.try_push(std::move(chunk))) {
      if (failed_.load(std::memory_order_acquire)) {
        pending_.fetch_sub(n, std::memory_order_release);
        rethrow_if_failed();
      }
      if (!stalled) {
        // A full ring means the producer outran the writer — the
        // back-pressure signal the depth parameter is tuned against.
        stalled = true;
        c_full_stalls_.add();
      }
      // Full: park until the writer frees a slot (tail advances).
      const uint64_t t = ring_.tail().load(std::memory_order_acquire);
      if (ring_.head().load(std::memory_order_relaxed) - t >=
          ring_.capacity())
        ring_.tail().wait(t, std::memory_order_acquire);
    }
    ring_doorbell();
    sent_ += n;
  }

  void recv_bytes(void* data, size_t n) override {
    drain();
    inner_.recv_bytes(data, n);
    received_ += n;
  }

  size_t recv_some(void* data, size_t min_n, size_t max_n) override {
    drain();
    const size_t got = inner_.recv_some(data, min_n, max_n);
    received_ += got;
    return got;
  }

  /// Block until every accepted byte has been written to the inner
  /// channel (or the writer failed — rethrown here).
  void drain() {
    for (;;) {
      rethrow_if_failed();
      const uint64_t p = pending_.load(std::memory_order_acquire);
      if (p == 0) return;
      pending_.wait(p, std::memory_order_acquire);
    }
  }

  /// Bytes accepted by send_bytes but not yet on the inner channel.
  uint64_t pending_bytes() const {
    return pending_.load(std::memory_order_acquire);
  }

  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }
  void reset_counters() override {
    sent_ = 0;
    received_ = 0;
  }

 private:
  void ring_doorbell() {
    doorbell_.fetch_add(1, std::memory_order_release);
    doorbell_.notify_one();
  }

  void rethrow_if_failed() {
    if (failed_.load(std::memory_order_acquire))
      std::rethrow_exception(error_);  // published before failed_
  }

  void writer_loop() {
    for (;;) {
      std::vector<uint8_t> chunk;
      if (ring_.try_pop(chunk)) {
        ring_.tail().notify_one();  // a full-ring sender may be parked
        if (!failed_.load(std::memory_order_relaxed)) {
          try {
            inner_.send_bytes(chunk.data(), chunk.size());
          } catch (...) {
            error_ = std::current_exception();
            failed_.store(true, std::memory_order_release);
          }
        }
        // Settled whether written or discarded-after-failure: drain()
        // must terminate either way (it rethrows the parked error).
        pending_.fetch_sub(chunk.size(), std::memory_order_release);
        pending_.notify_all();
        continue;
      }
      // Empty: wait for a push or stop. The doorbell counter bumps on
      // both, so the wait below cannot miss either event.
      const uint64_t seen = doorbell_.load(std::memory_order_acquire);
      if (ring_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        doorbell_.wait(seen, std::memory_order_acquire);
      }
    }
  }

  Channel& inner_;
  // Process-wide stall counter (Registry::global()): how often a sender
  // parked on a full ring across every RingChannel in the process.
  obs::Counter& c_full_stalls_ =
      obs::Registry::global().counter("net.ring.full_stalls");
  SpscRing<std::vector<uint8_t>> ring_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> doorbell_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  std::thread writer_;
};

}  // namespace deepsecure
