// Benchmark-1 scenario: privacy-preserving digit classification with a
// convolutional network (the paper's visual benchmark / CryptoNets
// topology, scaled so the full GC run finishes in seconds).
//
// Demonstrates: conv + pool + ReLU circuits, per-layer label chaining,
// and communication accounting against the Table 2 cost model.
#include <cstdio>

#include "core/deepsecure.h"
#include "data/synthetic.h"

using namespace deepsecure;

int main() {
  std::printf("DeepSecure visual benchmark (CNN)\n");
  std::printf("=================================\n\n");

  // 14x14 "digit" images (downscaled MNIST-like blobs), 10 classes.
  data::SyntheticConfig cfg;
  cfg.features = 14 * 14;
  cfg.classes = 10;
  cfg.samples = 600;
  cfg.subspace_rank = 5;
  cfg.seed = 3;
  const nn::Dataset ds = data::make_subspace_dataset(cfg);
  const nn::Split split = nn::split_dataset(ds, 0.85);

  Rng rng(7);
  nn::Network model(nn::Shape{14, 14, 1});
  model.conv(5, 2, 5, rng)   // 5 maps of 5x5, stride 2 (benchmark-1 conv)
      .act(nn::Act::kReLU)
      .dense(64, rng)
      .act(nn::Act::kReLU)
      .dense(10, rng);
  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 0.005f;  // conv nets need a smaller per-sample step
  nn::train(model, split.train, tc);
  std::printf("trained CNN: %zu parameters, test accuracy %.1f%%\n",
              model.param_count(), 100.0 * nn::accuracy(model, split.test));
  nn::scale_for_fixed(model, split.train.x);  // fit the Q(16,12) datapath

  // Predicted cost from the Table 2 model.
  SecureInferenceOptions opt;
  const synth::ModelSpec spec = model_spec_from_network(model, opt);
  const cost::NetworkCost predicted = cost::cost_of_model(spec);
  std::printf("\ncost model: %.2fM non-XOR, %.1f MB tables\n",
              static_cast<double>(predicted.num_non_xor) / 1e6,
              predicted.comm_bytes / 1e6);

  // Secure inference on three client samples.
  int correct = 0;
  for (int i = 0; i < 3; ++i) {
    const auto res = secure_infer(model, split.test.x[i], opt);
    const bool ok = res.label == split.test.y[i];
    correct += ok;
    std::printf(
        "sample %d: secure label %zu (true %zu)  comm %.1f MB  wall %.2fs\n",
        i, res.label, split.test.y[i],
        static_cast<double>(res.client_to_server_bytes) / 1e6,
        res.wall_seconds);
  }
  std::printf("\n%d/3 classified correctly under GC\n", correct);
  return 0;
}
