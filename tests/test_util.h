// Shared helpers for circuit-level tests: build a single-block circuit,
// evaluate it in plaintext, and compare against a reference function.
#pragma once

#include <functional>

#include "circuit/builder.h"
#include "fixed/fixed_point.h"
#include "support/rng.h"

namespace deepsecure::test {

/// Evaluate a circuit whose inputs/outputs are fixed-point buses.
/// garbler/evaluator values are packed in declaration order.
inline BitVec pack_fixed(const std::vector<Fixed>& vals) {
  BitVec bits;
  for (const Fixed& v : vals) {
    const BitVec b = v.to_bits();
    bits.insert(bits.end(), b.begin(), b.end());
  }
  return bits;
}

inline std::vector<Fixed> unpack_fixed(const BitVec& bits, FixedFormat fmt) {
  std::vector<Fixed> vals;
  for (size_t i = 0; i + fmt.total_bits <= bits.size(); i += fmt.total_bits) {
    const BitVec b(bits.begin() + static_cast<ptrdiff_t>(i),
                   bits.begin() + static_cast<ptrdiff_t>(i + fmt.total_bits));
    vals.push_back(Fixed::from_bits(b, fmt));
  }
  return vals;
}

/// Random fixed value roughly uniform over the representable range
/// scaled by `span` (0 < span <= 1).
inline Fixed random_fixed(Rng& rng, FixedFormat fmt, double span = 1.0) {
  const double lim = fmt.max_value() * span;
  return Fixed::from_double(rng.next_uniform(-lim, lim), fmt);
}

}  // namespace deepsecure::test
