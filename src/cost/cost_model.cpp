#include "cost/cost_model.h"

#include <algorithm>

namespace deepsecure::cost {

NetworkCost cost_from_gates(const synth::GateCount& g, const GcCostParams& p) {
  NetworkCost c;
  c.num_xor = g.num_xor;
  c.num_non_xor = g.num_non_xor;
  c.comm_bytes = static_cast<double>(g.num_non_xor) *
                 static_cast<double>(p.bits_per_non_xor) / 8.0;
  c.comp_seconds = (static_cast<double>(g.num_xor) * p.clk_per_xor +
                    static_cast<double>(g.num_non_xor) * p.clk_per_non_xor) /
                   p.f_cpu_hz;
  c.exec_seconds =
      std::max(c.comm_bytes / p.bandwidth_bytes_per_s, c.comp_seconds);
  return c;
}

NetworkCost cost_of_model(const synth::ModelSpec& spec, const GcCostParams& p) {
  return cost_from_gates(synth::count_model(spec), p);
}

}  // namespace deepsecure::cost
