#include "synth/int_blocks.h"

#include <stdexcept>

namespace deepsecure::synth {

Bus constant_bus(Builder& b, uint64_t v, size_t n) {
  Bus out(n);
  for (size_t i = 0; i < n; ++i) out[i] = b.const_bit(((v >> i) & 1u) != 0);
  return out;
}

Bus constant_fixed(Builder& b, double x, FixedFormat fmt) {
  const Fixed f = Fixed::from_double(x, fmt);
  return constant_bus(b, static_cast<uint64_t>(f.raw()), fmt.total_bits);
}

Bus input_bus(Builder& b, Party p, size_t n) { return b.inputs(p, n); }

Bus sign_extend(const Bus& a, size_t n) {
  if (n < a.size()) throw std::invalid_argument("sign_extend shrinks bus");
  Bus out = a;
  out.resize(n, a.back());
  return out;
}

Bus zero_extend(Builder& b, const Bus& a, size_t n) {
  if (n < a.size()) throw std::invalid_argument("zero_extend shrinks bus");
  Bus out = a;
  out.resize(n, b.const_bit(false));
  return out;
}

Bus truncate(const Bus& a, size_t n) {
  if (n > a.size()) throw std::invalid_argument("truncate grows bus");
  return Bus(a.begin(), a.begin() + static_cast<ptrdiff_t>(n));
}

Bus shl_const(Builder& b, const Bus& a, size_t k) {
  Bus out(a.size(), b.const_bit(false));
  for (size_t i = k; i < a.size(); ++i) out[i] = a[i - k];
  return out;
}

Bus sar_const(const Bus& a, size_t k) {
  Bus out(a.size(), a.back());
  for (size_t i = 0; i + k < a.size(); ++i) out[i] = a[i + k];
  return out;
}

Bus add_full(Builder& b, const Bus& a, const Bus& y, Wire cin, Wire* cout) {
  if (a.size() != y.size()) throw std::invalid_argument("adder width mismatch");
  const size_t n = a.size();
  Bus s(n);
  Wire c = cin;
  for (size_t i = 0; i < n; ++i) {
    const Wire axc = b.xor_(a[i], c);
    const Wire bxc = b.xor_(y[i], c);
    s[i] = b.xor_(axc, y[i]);  // a ^ b ^ c
    const bool need_carry = (i + 1 < n) || cout != nullptr;
    if (need_carry) c = b.xor_(c, b.and_(axc, bxc));
  }
  if (cout != nullptr) *cout = c;
  return s;
}

Bus add(Builder& b, const Bus& a, const Bus& y) {
  return add_full(b, a, y, b.const_bit(false));
}

Bus sub(Builder& b, const Bus& a, const Bus& y) {
  Bus ny(y.size());
  for (size_t i = 0; i < y.size(); ++i) ny[i] = b.not_(y[i]);
  return add_full(b, a, ny, b.const_bit(true));
}

Bus negate(Builder& b, const Bus& a) {
  return sub(b, constant_bus(b, 0, a.size()), a);
}

Wire lt_signed(Builder& b, const Bus& a, const Bus& y) {
  // Sign of (a - b) computed at width n+1 — cannot overflow.
  const Bus ea = sign_extend(a, a.size() + 1);
  const Bus ey = sign_extend(y, y.size() + 1);
  return sign_bit(sub(b, ea, ey));
}

Wire lt_unsigned(Builder& b, const Bus& a, const Bus& y) {
  Bus ea = a, ey = y;
  ea.push_back(b.const_bit(false));
  ey.push_back(b.const_bit(false));
  return sign_bit(sub(b, ea, ey));
}

Wire eq(Builder& b, const Bus& a, const Bus& y) {
  if (a.size() != y.size()) throw std::invalid_argument("eq width mismatch");
  // NOR of pairwise XORs as a balanced AND tree of XNORs: n-1 ANDs.
  std::vector<Wire> terms(a.size());
  for (size_t i = 0; i < a.size(); ++i) terms[i] = b.xnor_(a[i], y[i]);
  while (terms.size() > 1) {
    std::vector<Wire> next;
    for (size_t i = 0; i + 1 < terms.size(); i += 2)
      next.push_back(b.and_(terms[i], terms[i + 1]));
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

Wire is_zero(Builder& b, const Bus& a) {
  return eq(b, a, constant_bus(b, 0, a.size()));
}

Bus mux_bus(Builder& b, Wire sel, const Bus& t, const Bus& f) {
  if (t.size() != f.size()) throw std::invalid_argument("mux width mismatch");
  Bus out(t.size());
  for (size_t i = 0; i < t.size(); ++i) out[i] = b.mux(sel, t[i], f[i]);
  return out;
}

Bus abs_signed(Builder& b, const Bus& a) {
  return mux_bus(b, sign_bit(a), negate(b, a), a);
}

Bus abs_clamped(Builder& b, const Bus& a) {
  Bus r = abs_signed(b, a);
  const Wire overflow = sign_bit(r);
  const uint64_t maxv = (1ull << (a.size() - 1)) - 1;
  return mux_bus(b, overflow, constant_bus(b, maxv, a.size()), r);
}

Bus max_signed(Builder& b, const Bus& a, const Bus& y) {
  const Wire a_lt_y = lt_signed(b, a, y);
  return mux_bus(b, a_lt_y, y, a);
}

Bus relu(Builder& b, const Bus& a) {
  const Wire keep = b.not_(sign_bit(a));
  Bus out(a.size());
  for (size_t i = 0; i + 1 < a.size(); ++i) out[i] = b.and_(keep, a[i]);
  out.back() = b.const_bit(false);  // result is never negative
  return out;
}

Bus clamp_const(Builder& b, const Bus& a, int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("clamp bounds inverted");
  const size_t n = a.size();
  const Bus lo_bus = constant_bus(b, static_cast<uint64_t>(lo), n);
  const Bus hi_bus = constant_bus(b, static_cast<uint64_t>(hi), n);
  const Wire below = lt_signed(b, a, lo_bus);
  const Wire above = lt_signed(b, hi_bus, a);
  Bus out = mux_bus(b, below, lo_bus, a);
  out = mux_bus(b, above, hi_bus, out);
  return out;
}

Bus shr_variable(Builder& b, const Bus& a, const Bus& k) {
  Bus r = a;
  for (size_t j = 0; j < k.size(); ++j) {
    const size_t amount = size_t{1} << j;
    Bus shifted(r.size(), b.const_bit(false));
    for (size_t i = 0; i + amount < r.size(); ++i) shifted[i] = r[i + amount];
    r = mux_bus(b, k[j], shifted, r);
  }
  return r;
}

Bus shl_variable(Builder& b, const Bus& a, const Bus& k) {
  Bus r = a;
  for (size_t j = 0; j < k.size(); ++j) {
    const size_t amount = size_t{1} << j;
    Bus shifted(r.size(), b.const_bit(false));
    for (size_t i = amount; i < r.size(); ++i) shifted[i] = r[i - amount];
    r = mux_bus(b, k[j], shifted, r);
  }
  return r;
}

Bus leading_zero_count(Builder& b, const Bus& a) {
  const size_t n = a.size();
  const size_t kbits = clog2(n + 1);
  Bus count = constant_bus(b, n, kbits);  // all-zero word
  Wire found = b.const_bit(false);
  for (size_t i = n; i-- > 0;) {
    const Wire is_leading = b.and_(a[i], b.not_(found));
    count = mux_bus(b, is_leading, constant_bus(b, n - 1 - i, kbits), count);
    found = b.or_(found, a[i]);
  }
  return count;
}

}  // namespace deepsecure::synth
