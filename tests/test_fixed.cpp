#include <gtest/gtest.h>

#include <cmath>

#include "fixed/fixed_point.h"
#include "support/rng.h"

namespace deepsecure {
namespace {

TEST(FixedFormat, DefaultMatchesPaper) {
  // 1 sign + 3 integer + 12 fractional bits (Section 4.2).
  EXPECT_EQ(kDefaultFormat.total_bits, 16u);
  EXPECT_EQ(kDefaultFormat.frac_bits, 12u);
  EXPECT_EQ(kDefaultFormat.int_bits(), 3u);
  EXPECT_DOUBLE_EQ(kDefaultFormat.resolution(), 1.0 / 4096.0);
}

TEST(Fixed, RoundTripWithinHalfLsb) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_uniform(-7.9, 7.9);
    const Fixed f = Fixed::from_double(x);
    EXPECT_NEAR(f.to_double(), x, kDefaultFormat.resolution() / 2 + 1e-12);
  }
}

TEST(Fixed, SaturatesAtBounds) {
  const Fixed hi = Fixed::from_double(100.0);
  const Fixed lo = Fixed::from_double(-100.0);
  EXPECT_EQ(hi.raw(), 32767);
  EXPECT_EQ(lo.raw(), -32768);
}

TEST(Fixed, BitsRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Fixed f = Fixed::from_double(rng.next_uniform(-8, 8));
    EXPECT_EQ(Fixed::from_bits(f.to_bits()), f);
  }
}

TEST(Fixed, AdditionMatchesDouble) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.next_uniform(-3, 3), b = rng.next_uniform(-3, 3);
    const Fixed fa = Fixed::from_double(a), fb = Fixed::from_double(b);
    EXPECT_NEAR((fa + fb).to_double(), a + b, 2 * kDefaultFormat.resolution());
  }
}

TEST(Fixed, MultiplicationTruncates) {
  const Fixed a = Fixed::from_double(1.5);
  const Fixed b = Fixed::from_double(2.25);
  EXPECT_NEAR((a * b).to_double(), 3.375, kDefaultFormat.resolution());
  // Truncation is toward negative infinity (arithmetic shift).
  const Fixed c = Fixed::from_raw(-1) * Fixed::from_raw(1);
  EXPECT_EQ(c.raw(), -1);  // (-1 * 1) >> 12 = -1 under floor semantics
}

TEST(Fixed, WrapAroundSemantics) {
  const Fixed a = Fixed::from_double(7.9);
  const Fixed sum = a + a;  // 15.8 wraps in Q(16,12)
  EXPECT_LT(sum.to_double(), 0.0);
}

TEST(Fixed, OtherFormats) {
  const FixedFormat f20{20, 14};
  const Fixed a = Fixed::from_double(1.25, f20);
  EXPECT_NEAR(a.to_double(), 1.25, 1e-4);
  EXPECT_EQ(a.to_bits().size(), 20u);
}

TEST(RefMath, TanhSigmoid) {
  EXPECT_NEAR(ref_tanh(0.0), 0.0, 1e-12);
  EXPECT_NEAR(ref_sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(ref_tanh(100.0), 1.0, 1e-12);
  EXPECT_NEAR(ref_sigmoid(-100.0), 0.0, 1e-12);
}

TEST(RefMath, CordicSinhCoshConverges) {
  for (double z : {-1.0, -0.5, 0.0, 0.3, 1.0}) {
    const auto r = ref_cordic_sinh_cosh(z, 20);
    EXPECT_NEAR(r.sinh, std::sinh(z), 1e-5) << "z=" << z;
    EXPECT_NEAR(r.cosh, std::cosh(z), 1e-5) << "z=" << z;
  }
}

}  // namespace
}  // namespace deepsecure
