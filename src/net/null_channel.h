// Byte sink for one-sided benchmarks and tests: swallows (and counts)
// everything sent, throws on receive. Lets a Garbler run at full rate
// with no evaluator on the other end.
#pragma once

#include <stdexcept>

#include "net/channel.h"

namespace deepsecure {

class NullChannel final : public Channel {
 public:
  void send_bytes(const void*, size_t n) override { sent_ += n; }
  void recv_bytes(void*, size_t) override {
    throw std::logic_error("NullChannel cannot receive");
  }
  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override { sent_ = 0; }

 private:
  uint64_t sent_ = 0;
};

}  // namespace deepsecure
