// Hyperbolic-mode CORDIC realization of Tanh and Sigmoid (Table 1 maps
// Softmax/Sigmoid/Tanh onto CORDIC; Table 3 reports TanhCORDIC /
// SigmoidCORDIC).
//
// We use the rotation-mode exponential form: tracking u = x + y under the
// hyperbolic micro-rotations gives u <- u * (1 + d_i 2^-i), and
// prod_i (1 + d_i 2^-i) = K * e^z with the data-independent gain
// K = prod_i sqrt(1 - 2^-2i); seeding u_0 = 1/K yields e^z with one adder
// per iteration instead of the classic three. Iterations follow the
// paper's schedule: i = 1..iterations with the 3i+1 repetition rule
// (i = 4, 13, 40 executed twice — 14 executed iterations at 12-bit
// precision, matching Section 4.2).
//
// CORDIC converges only for |z| <= ~1.12, so the argument is first
// range-reduced with base-2 arithmetic:
//   e^-a = 2^-k * e^-r,  k = floor(a / ln 2),  r = a - k ln 2 in [0, ln 2)
// The 2^-k is a barrel shift — cheap in GC.
//
//   tanh(x)    = (1 - e^(-2|x|)) / (1 + e^(-2|x|)), sign-reflected
//   sigmoid(x) = 1 / (1 + e^(-|x|)),                reflected as 1 - y
#pragma once

#include "synth/int_blocks.h"

namespace deepsecure::synth {

struct CordicParams {
  size_t iterations = 12;     // positive iterations ~ output bit precision
  size_t internal_frac = 18;  // accumulator fractional bits
};

/// e^(-a) for an unsigned bus `a` (value in [0, max_a], `a_frac`
/// fractional bits). Returns an unsigned bus with params.internal_frac
/// fractional bits; the value is in (0, 1].
Bus cordic_exp_neg(Builder& b, const Bus& a, size_t a_frac, double max_a,
                   const CordicParams& params = {});

Bus tanh_cordic(Builder& b, const Bus& x, FixedFormat fmt,
                const CordicParams& params = {});
Bus sigmoid_cordic(Builder& b, const Bus& x, FixedFormat fmt,
                   const CordicParams& params = {});

/// Double-precision model of the same schedule (tests compare the
/// circuit against this to separate algorithmic from rounding error).
double ref_cordic_exp_neg(double a, const CordicParams& params);

}  // namespace deepsecure::synth
