// Pluggable fixed-key hash / AES batch backend — the runtime-dispatched
// kernel behind gc_hash_batch, gc_hash_and_quads and Prg's counter-mode
// expansion. The garbling pipeline stages whole batch windows (~1024
// ANDs) into dense staging lines (gc/batch_walk.h); a backend is the
// kernel that sweeps those lines. Every backend computes the identical
// AES-128 function, so garbled tables are byte-identical regardless of
// which one runs — the selection is purely a local throughput choice
// and is never negotiated with the peer.
//
// Compiled backends (widest first = auto-selection preference):
//   vaes16     16-wide VAES/AVX-512 (four 512-bit states in flight);
//              needs -mvaes -mavx512f at build time, VAES+AVX512F+OS
//              ZMM state at run time
//   aesni8     8-wide AES-NI pipeline (PR 1 kernel); needs -maes and
//              the CPUID AES bit
//   bitsliced8 constant-time software AES: two 4-block bitsliced lines
//              per sweep (eight 64-bit bitplanes, Boyar–Peralta S-box
//              circuit) — no tables, no data-dependent branches, and
//              ~2-3x the scalar S-box loop, so non-AES-NI hosts profit
//              from batching too
//   scalar     the retained one-block-at-a-time S-box reference
//
// Selection, in precedence order:
//   1. GcOptions::hash_backend / StreamConfig::hash_backend (per
//      endpoint; resolved by name, silently ignored if unavailable)
//   2. set_hash_backend(name) — process-wide force, for tests/bench
//   3. DEEPSECURE_HASH_BACKEND environment variable
//   4. CPUID auto-dispatch: first compiled backend whose available()
//      check passes
// An env/force naming an unavailable backend falls back to auto
// dispatch (never crashes on a host without the ISA).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "crypto/aes128.h"

namespace deepsecure {

/// One batch-AES kernel. Plain function-pointer table so a backend adds
/// no virtual dispatch inside the sweep — one indirect call per window,
/// thousands of blocks amortize it.
struct HashBackend {
  const char* name;     // "vaes16" | "aesni8" | "bitsliced8" | "scalar"
  size_t width;         // blocks in flight per pipelined sweep
  bool constant_time;   // no secret-dependent lookups/branches
  const char* isa;      // human-readable ISA requirement ("none", ...)
  bool (*available)();  // runtime CPUID / force-software check
  /// Encrypt `n` blocks in place under `key`. Must accept any n >= 0
  /// (tails included) and aliased input/output (it is in place).
  void (*encrypt_batch)(const Aes128Key& key, Block* blocks, size_t n);
};

/// Every backend compiled into this binary, preference order (widest
/// first). Availability is NOT filtered — check (*available)().
const std::vector<const HashBackend*>& compiled_hash_backends();

/// Compiled backend by name; nullptr when unknown or not compiled in.
const HashBackend* find_hash_backend(std::string_view name);

/// The active process-wide backend. Resolved once on first use (env,
/// then CPUID auto-dispatch); stable until set_hash_backend or
/// aes128_force_software changes the selection.
const HashBackend& hash_backend();

/// Force the process-wide backend by name. Returns false (selection
/// unchanged) when the name is unknown or the backend is unavailable on
/// this host. An empty name re-runs the full resolution (env + auto) —
/// how tests restore the default. Not safe concurrently with in-flight
/// garbling; call between operations.
bool set_hash_backend(std::string_view name);

/// CPUID feature summary relevant to backend dispatch, e.g.
/// "aesni,avx2,avx512f,vaes" ("none" when nothing relevant is present).
/// Recorded in bench JSON and server stats so every measured rate is
/// attributable to the kernel and ISA that produced it.
std::string hash_backend_cpu_features();

/// Backend-explicit variants of the fixed-key hash sweeps (aes128.h
/// documents the math). The plain overloads in aes128.h route through
/// hash_backend(); these let an endpoint honor GcOptions::hash_backend.
void gc_hash_batch(const HashBackend& be, const Block* inputs,
                   const uint64_t* tweaks, Block* out, size_t n);
void gc_hash_and_quads(const HashBackend& be, const Block* a0,
                       const Block* b0, Block delta, const uint64_t* tweaks,
                       Block* out, size_t n);

namespace detail {
/// Invalidate the cached selection (called when force-software flips).
void hash_backend_reselect();
}  // namespace detail

}  // namespace deepsecure
