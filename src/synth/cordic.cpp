#include "synth/cordic.h"

#include <cmath>
#include <stdexcept>

#include "synth/divider.h"
#include "synth/mult.h"

namespace deepsecure::synth {
namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kInvLn2 = 1.4426950408889634;

struct ScheduleEntry {
  size_t shift = 0;  // e = 2^-shift
  double e = 0.0;
  double atanh_e = 0.0;
};

// Standard hyperbolic schedule i = 1..iterations with the 3i+1 rule.
std::vector<ScheduleEntry> make_schedule(const CordicParams& p) {
  std::vector<ScheduleEntry> schedule;
  size_t next_repeat = 4;
  for (size_t i = 1; i <= p.iterations; ++i) {
    const double e = std::pow(2.0, -static_cast<double>(i));
    const double a = std::atanh(e);
    schedule.push_back({i, e, a});
    if (i == next_repeat) {
      schedule.push_back({i, e, a});
      next_repeat = 3 * next_repeat + 1;
    }
  }
  return schedule;
}

double schedule_gain(const std::vector<ScheduleEntry>& schedule) {
  double k = 1.0;
  for (const auto& it : schedule) k *= std::sqrt(1.0 - it.e * it.e);
  return k;
}

}  // namespace

Bus cordic_exp_neg(Builder& b, const Bus& a_in, size_t a_frac, double max_a,
                   const CordicParams& p) {
  const auto schedule = make_schedule(p);
  const size_t f = p.internal_frac;
  if (a_frac > f) throw std::invalid_argument("a_frac exceeds internal_frac");

  // Working width: fraction + enough integer bits for max_a (+ sign).
  const size_t int_bits =
      static_cast<size_t>(std::ceil(std::log2(max_a + 2.0)));
  const size_t w = f + int_bits + 2;

  Bus a = zero_extend(b, a_in, w);
  a = shl_const(b, a, f - a_frac);

  // Range reduction: k = floor(a / ln2), r = a - k*ln2 in [0, ~ln2].
  const FixedFormat wf{w, f};
  const Bus q = mult_const_fixed(b, a, kInvLn2, wf);
  const size_t k_bits =
      static_cast<size_t>(std::ceil(std::log2(max_a * kInvLn2 + 2.0)));
  Bus k(k_bits);
  for (size_t i = 0; i < k_bits; ++i) k[i] = q[f + i];
  Bus k_wide = zero_extend(b, k, w);
  k_wide = shl_const(b, k_wide, f);  // k as a fixed-point integer value
  const Bus k_ln2 = mult_const_fixed(b, k_wide, kLn2, wf);
  const Bus r = sub(b, a, k_ln2);

  // Rotation: z starts at -r and is driven to 0; u starts at 1/K.
  Bus z = negate(b, r);
  const double gain = schedule_gain(schedule);
  Bus u = constant_fixed(b, 1.0 / gain, wf);

  for (const ScheduleEntry& it : schedule) {
    // d = +1 iff z >= 0. u <- u + d*(u >> i); z <- z - d*atanh(e).
    const Wire d_neg = sign_bit(z);
    const Bus t = sar_const(u, it.shift);
    Bus t_cond(w);
    for (size_t j = 0; j < w; ++j) t_cond[j] = b.xor_(t[j], d_neg);
    u = add_full(b, u, t_cond, d_neg);

    const Wire d_pos = b.not_(d_neg);
    const int64_t c = Fixed::from_double(it.atanh_e, wf).raw();
    const Bus cb = constant_bus(b, static_cast<uint64_t>(c), w);
    Bus c_cond(w);
    for (size_t j = 0; j < w; ++j) c_cond[j] = b.xor_(cb[j], d_pos);
    z = add_full(b, z, c_cond, d_pos);
  }

  // e^-a = e^-r >> k.
  return shr_variable(b, u, k);
}

namespace {

// Reduce the internal-precision CORDIC output to a Q(2.13)-style 16-bit
// bus for the final division; values involved are in [0, 2].
Bus to_div_format(const Bus& u, size_t from_frac, size_t to_frac,
                  size_t width) {
  Bus r = sar_const(u, from_frac - to_frac);
  return truncate(r, width);
}

}  // namespace

Bus tanh_cordic(Builder& b, const Bus& x, FixedFormat fmt,
                const CordicParams& p) {
  const size_t n = fmt.total_bits;
  // |x| clamped where tanh has saturated to 1.0 within one LSB.
  const double clamp_at = 4.875;
  Bus a = abs_clamped(b, x);
  a = clamp_const(b, a, 0, Fixed::from_double(clamp_at, fmt).raw());

  // u = e^(-2|x|); the doubling is a free shift (guarded against the
  // 2*4.875 overflow by evaluating at width n+1).
  Bus a2 = zero_extend(b, a, n + 1);
  a2 = shl_const(b, a2, 1);
  const Bus u = cordic_exp_neg(b, a2, fmt.frac_bits, 2.0 * clamp_at, p);

  // tanh = (1 - u) / (1 + u) computed in Q(2.13) at 16 bits.
  const size_t div_frac = 13;
  const size_t wd = 16;
  const Bus u16 = to_div_format(u, p.internal_frac, div_frac, wd);
  const Bus one = constant_bus(b, 1ull << div_frac, wd);
  const Bus num = sub(b, one, u16);
  const Bus den = add(b, one, u16);
  Bus q = div_fixed(b, num, den, div_frac);

  // Q(2.13) -> output format with round-to-nearest.
  Bus y =
      add(b, q, constant_bus(b, 1ull << (div_frac - fmt.frac_bits - 1), wd));
  y = sar_const(y, div_frac - fmt.frac_bits);
  y = truncate(y, n);
  return mux_bus(b, sign_bit(x), negate(b, y), y);
}

Bus sigmoid_cordic(Builder& b, const Bus& x, FixedFormat fmt,
                   const CordicParams& p) {
  const size_t n = fmt.total_bits;
  const double max_abs = std::pow(2.0, static_cast<double>(fmt.int_bits()));
  const Bus a = abs_clamped(b, x);

  const Bus u = cordic_exp_neg(b, a, fmt.frac_bits, max_abs, p);

  // sigmoid(|x|) = 1 / (1 + e^(-|x|)) in Q(2.13).
  const size_t div_frac = 13;
  const size_t wd = 16;
  const Bus u16 = to_div_format(u, p.internal_frac, div_frac, wd);
  const Bus one = constant_bus(b, 1ull << div_frac, wd);
  const Bus den = add(b, one, u16);
  Bus q = div_fixed(b, one, den, div_frac);

  Bus y =
      add(b, q, constant_bus(b, 1ull << (div_frac - fmt.frac_bits - 1), wd));
  y = sar_const(y, div_frac - fmt.frac_bits);
  y = truncate(y, n);

  const Bus one_out = constant_fixed(b, 1.0, fmt);
  return mux_bus(b, sign_bit(x), sub(b, one_out, y), y);
}

double ref_cordic_exp_neg(double a, const CordicParams& p) {
  const auto schedule = make_schedule(p);
  const int k = static_cast<int>(std::floor(a * kInvLn2));
  const double r = a - static_cast<double>(k) * kLn2;

  double u = 1.0 / schedule_gain(schedule);
  double angle = -r;
  for (const ScheduleEntry& it : schedule) {
    const double d = angle >= 0.0 ? 1.0 : -1.0;
    u *= (1.0 + d * it.e);
    angle -= d * it.atanh_e;
  }
  return u * std::pow(2.0, -k);
}

}  // namespace deepsecure::synth
