// Sequential (folded) circuit support — the paper's Section 3.5.
//
// Instead of instantiating e.g. every MULT/ADD of a matrix product, a
// compact step circuit (one MAC + accumulator registers) is garbled and
// evaluated for many clock cycles. Memory footprint is that of the step
// circuit; total cost scales with cycles.
#pragma once

#include <cstddef>

#include "circuit/circuit.h"

namespace deepsecure {

struct SequentialSpec {
  Circuit step;
  size_t cycles = 1;

  /// Aggregate gate counts over the full execution.
  CircuitStats total_stats() const {
    CircuitStats s = step.stats();
    s.num_xor *= cycles;
    s.num_and *= cycles;
    return s;
  }
};

}  // namespace deepsecure
