// Asynchronous-sender decorator for any Channel: the garbler-shard →
// frame-writer handoff from the event-core work. send_bytes() copies the
// payload into a chunk, pushes it onto a lock-free SPSC ring
// (support/spsc_ring.h), and returns immediately; a dedicated writer
// thread pops chunks and ships them through the inner channel. The
// producing thread (the garbler emitting table frames, the prefetch
// lane pushing artifacts) therefore overlaps its next frame's work with
// the kernel send of the previous one, instead of serializing
// garble → send → garble.
//
// Zero-copy path: send_iov() pushes ref-carrying slices through the
// ring as BORROWED chunks — no memcpy at enqueue; the BufferRef rides
// the ring and is released only after the writer's inner send returns,
// i.e. the slab recycles when the kernel send completed, not when the
// frame was queued. Ref-less slices are copied (the IoSlice contract:
// they are only valid during the call), coalesced into one owned chunk.
//
// Copy-mode chunk recycling: spent owned chunks flow back to the sender
// on a second SPSC ring (the freelist), so steady-state copy-mode
// traffic reuses ~depth vectors instead of allocating one per send —
// reuse counted in net.ring.chunk_reuse.
//
// Writer batching: the writer drains every queued chunk (up to a batch
// cap) into ONE inner send_iov call, so a burst of table frames becomes
// one sendmsg — or one io_uring_enter submitting linked SQEs when the
// inner TcpChannel has the uring path enabled — instead of a syscall
// per frame.
//
// Ordering: the wire sees chunks in push order (one ring, one writer).
// Receives drain first — recv_bytes/recv_some wait until every queued
// byte has reached the inner channel before reading, so a
// request/response exchange (the OT rounds) can never read a reply to a
// request still sitting in the ring.
//
// Threading contract: exactly ONE user thread calls send/recv on this
// channel (it is the ring's single producer); the internal writer is
// the single consumer. Parking is futex-backed (std::atomic::wait on
// the ring cursors / a doorbell counter), so the handoff path itself
// takes no mutex.
//
// Failure: a writer-side send error is parked and rethrown on the next
// send/recv/drain from the user thread; the writer keeps draining (and
// discarding) chunks so a producer parked on a full ring can never
// deadlock on a dead transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "obs/metrics.h"
#include "support/spsc_ring.h"

namespace deepsecure {

class RingChannel final : public Channel {
 public:
  /// `depth` = chunks in flight before a sender parks. The underlying
  /// transport must outlive this object.
  explicit RingChannel(Channel& inner, size_t depth = 64)
      : inner_(inner), ring_(depth), free_ring_(depth) {
    writer_ = std::thread([this] { writer_loop(); });
  }

  ~RingChannel() override {
    stop_.store(true, std::memory_order_release);
    ring_doorbell();
    if (writer_.joinable()) writer_.join();
  }

  void send_bytes(const void* data, size_t n) override {
    rethrow_if_failed();
    if (n == 0) return;
    Chunk chunk = make_owned_chunk(data, n);
    push_chunk(std::move(chunk), n);
    sent_ += n;
  }

  /// Ref-carrying slices ride the ring borrowed (zero-copy; the ref is
  /// released after the writer-side send). Ref-less slices are copied,
  /// consecutive ones coalesced into a single owned chunk.
  void send_iov(IoSlice* slices, size_t n) override {
    rethrow_if_failed();
    size_t i = 0;
    while (i < n) {
      if (slices[i].len == 0) {
        slices[i].ref.reset();
        ++i;
        continue;
      }
      if (slices[i].ref) {
        Chunk chunk;
        chunk.ref = std::move(slices[i].ref);
        chunk.data = static_cast<const uint8_t*>(slices[i].data);
        chunk.len = slices[i].len;
        const size_t len = chunk.len;
        push_chunk(std::move(chunk), len);
        sent_ += len;
        ++i;
        continue;
      }
      // Coalesce the run of ref-less slices starting here.
      size_t j = i;
      size_t run = 0;
      while (j < n && !slices[j].ref) run += slices[j++].len;
      Chunk chunk = fresh_owned_chunk(run);
      for (size_t k = i; k < j; ++k) {
        chunk.owned.insert(
            chunk.owned.end(), static_cast<const uint8_t*>(slices[k].data),
            static_cast<const uint8_t*>(slices[k].data) + slices[k].len);
      }
      chunk.data = chunk.owned.data();
      chunk.len = chunk.owned.size();
      netstat::bytes_copied().add(run);
      push_chunk(std::move(chunk), run);
      sent_ += run;
      i = j;
    }
  }

  void recv_bytes(void* data, size_t n) override {
    drain();
    inner_.recv_bytes(data, n);
    received_ += n;
  }

  size_t recv_some(void* data, size_t min_n, size_t max_n) override {
    drain();
    const size_t got = inner_.recv_some(data, min_n, max_n);
    received_ += got;
    return got;
  }

  /// Block until every accepted byte has been written to the inner
  /// channel (or the writer failed — rethrown here).
  void drain() {
    for (;;) {
      rethrow_if_failed();
      const uint64_t p = pending_.load(std::memory_order_acquire);
      if (p == 0) return;
      pending_.wait(p, std::memory_order_acquire);
    }
  }

  /// Bytes accepted by send_bytes but not yet on the inner channel.
  uint64_t pending_bytes() const {
    return pending_.load(std::memory_order_acquire);
  }

  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }
  void reset_counters() override {
    sent_ = 0;
    received_ = 0;
  }

 private:
  // One queued send. Owned chunks carry their payload in `owned`
  // (copy mode — the vector is recycled through free_ring_); borrowed
  // chunks point into a slab kept alive by `ref` until after the inner
  // send. `data`/`len` always describe the wire bytes.
  struct Chunk {
    std::vector<uint8_t> owned;
    BufferRef ref;
    const uint8_t* data = nullptr;
    size_t len = 0;
  };

  /// Max chunks the writer folds into one inner send_iov.
  static constexpr size_t kWriterBatch = 32;

  Chunk fresh_owned_chunk(size_t reserve) {
    Chunk chunk;
    // Reuse a spent vector from the writer when one is waiting — its
    // capacity from a previous lap usually already fits.
    if (free_ring_.try_pop(chunk.owned)) c_chunk_reuse_.add();
    chunk.owned.clear();
    chunk.owned.reserve(reserve);
    return chunk;
  }

  Chunk make_owned_chunk(const void* data, size_t n) {
    Chunk chunk = fresh_owned_chunk(n);
    chunk.owned.resize(n);
    std::memcpy(chunk.owned.data(), data, n);
    chunk.data = chunk.owned.data();
    chunk.len = n;
    netstat::bytes_copied().add(n);
    return chunk;
  }

  void push_chunk(Chunk&& chunk, size_t n) {
    // Counted before the push so drain() can never observe the queue as
    // settled while this chunk is still on its way in.
    pending_.fetch_add(n, std::memory_order_release);
    bool stalled = false;
    while (!ring_.try_push(std::move(chunk))) {
      if (failed_.load(std::memory_order_acquire)) {
        pending_.fetch_sub(n, std::memory_order_release);
        rethrow_if_failed();
      }
      if (!stalled) {
        // A full ring means the producer outran the writer — the
        // back-pressure signal the depth parameter is tuned against.
        stalled = true;
        c_full_stalls_.add();
      }
      // Full: park until the writer frees a slot (tail advances).
      const uint64_t t = ring_.tail().load(std::memory_order_acquire);
      if (ring_.head().load(std::memory_order_relaxed) - t >=
          ring_.capacity())
        ring_.tail().wait(t, std::memory_order_acquire);
    }
    ring_doorbell();
  }

  void ring_doorbell() {
    doorbell_.fetch_add(1, std::memory_order_release);
    doorbell_.notify_one();
  }

  void rethrow_if_failed() {
    if (failed_.load(std::memory_order_acquire))
      std::rethrow_exception(error_);  // published before failed_
  }

  void writer_loop() {
    Chunk batch[kWriterBatch];
    IoSlice slices[kWriterBatch];
    for (;;) {
      // Drain up to a batch of queued chunks; each pop frees a slot, so
      // notify potential full-ring parkers as we go.
      size_t count = 0;
      while (count < kWriterBatch && ring_.try_pop(batch[count])) {
        ring_.tail().notify_one();
        ++count;
      }
      if (count > 0) {
        size_t total = 0;
        for (size_t i = 0; i < count; ++i) total += batch[i].len;
        if (!failed_.load(std::memory_order_relaxed)) {
          try {
            // One vectored send for the whole batch: one sendmsg — or
            // one io_uring_enter of linked SQEs — instead of one
            // syscall per frame. Refs stay on the chunks until this
            // returns (the send_iov callee may move them, which is the
            // same release point).
            for (size_t i = 0; i < count; ++i) {
              slices[i].data = batch[i].data;
              slices[i].len = batch[i].len;
              slices[i].ref = std::move(batch[i].ref);
            }
            inner_.send_iov(slices, count);
          } catch (...) {
            error_ = std::current_exception();
            failed_.store(true, std::memory_order_release);
          }
        }
        // Settled whether written or discarded-after-failure: drain()
        // must terminate either way (it rethrows the parked error).
        for (size_t i = 0; i < count; ++i) {
          slices[i].ref.reset();
          if (batch[i].owned.capacity() > 0) {
            batch[i].owned.clear();
            // Freelist full = the sender is not reusing fast enough;
            // just drop the vector.
            (void)free_ring_.try_push(std::move(batch[i].owned));
          }
          batch[i] = Chunk{};
        }
        pending_.fetch_sub(total, std::memory_order_release);
        pending_.notify_all();
        continue;
      }
      // Empty: wait for a push or stop. The doorbell counter bumps on
      // both, so the wait below cannot miss either event.
      const uint64_t seen = doorbell_.load(std::memory_order_acquire);
      if (ring_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        doorbell_.wait(seen, std::memory_order_acquire);
      }
    }
  }

  Channel& inner_;
  // Process-wide instruments (Registry::global()), aggregated across
  // every RingChannel: full-ring sender stalls, and owned-chunk vector
  // reuse through the freelist ring.
  obs::Counter& c_full_stalls_ =
      obs::Registry::global().counter("net.ring.full_stalls");
  obs::Counter& c_chunk_reuse_ =
      obs::Registry::global().counter("net.ring.chunk_reuse");
  SpscRing<Chunk> ring_;
  // Spent owned vectors, writer → sender (writer = producer here).
  SpscRing<std::vector<uint8_t>> free_ring_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> doorbell_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  std::thread writer_;
};

}  // namespace deepsecure
