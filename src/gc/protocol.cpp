#include "gc/protocol.h"

#include <stdexcept>

namespace deepsecure {
namespace {

BitVec slice(const BitVec& bits, size_t offset, size_t n) {
  if (offset + n > bits.size())
    throw std::invalid_argument("protocol: input bits exhausted");
  return BitVec(bits.begin() + static_cast<ptrdiff_t>(offset),
                bits.begin() + static_cast<ptrdiff_t>(offset + n));
}

}  // namespace

GarblerSession::GarblerSession(Channel& ch, Block seed, const GcOptions& opt)
    : ch_(ch), garbler_(ch, seed, opt), ot_(ch), prg_(seed ^ Block{1, 0}) {}

EvaluatorSession::EvaluatorSession(Channel& ch, const GcOptions& opt)
    : ch_(ch), evaluator_(ch, opt), ot_(ch),
      prg_(Prg::from_os_entropy().next_block()), opt_(opt) {}

// One base-OT + extension setup per session, shared by the on-demand
// and the precomputed OT paths (whichever runs first pays it).
void GarblerSession::ensure_ot() {
  if (ot_ready_) return;
  Stopwatch sw;
  ot_.setup(prg_);
  ot_ready_ = true;
  trace_.setup_s = sw.seconds();
}

void EvaluatorSession::ensure_ot() {
  if (ot_ready_) return;
  Stopwatch sw;
  ot_.setup(prg_);
  ot_ready_ = true;
  trace_.setup_s = sw.seconds();
}

BitVec GarblerSession::run_chain(const std::vector<Circuit>& chain,
                                 const BitVec& data_bits) {
  Stopwatch total;
  ensure_ot();

  Labels carried;  // zero-labels of previous circuit's outputs
  for (size_t k = 0; k < chain.size(); ++k) {
    const Circuit& c = chain[k];
    PhaseSample ph;
    ph.step = k;

    // Garbler inputs: fresh for layer 0, carried labels afterwards.
    Labels g_zeros;
    if (k == 0) {
      g_zeros = garbler_.fresh_zeros(c.garbler_inputs.size());
    } else {
      if (carried.size() != c.garbler_inputs.size())
        throw std::invalid_argument("chain: layer width mismatch");
      g_zeros = carried;
    }

    // Evaluator inputs: fresh zero-labels delivered via correlated OT.
    Stopwatch sw;
    const Labels e_zeros = garbler_.fresh_zeros(c.evaluator_inputs.size());
    if (!e_zeros.empty()) ot_.send_correlated(e_zeros, garbler_.delta());
    if (k == 0) garbler_.send_active(data_bits, g_zeros);
    ph.ot_s = sw.seconds();

    sw.restart();
    carried = garbler_.garble(c, g_zeros, e_zeros, {});
    ph.garble_s = sw.seconds();
    trace_.phases.push_back(ph);
  }

  const BitVec out = garbler_.decode_outputs(carried);
  // Share the plaintext result back (paper: Alice may share with Bob).
  ch_.send_bits(out);
  trace_.total_s = total.seconds();
  return out;
}

BitVec EvaluatorSession::run_chain(const std::vector<Circuit>& chain,
                                   const BitVec& weight_bits) {
  Stopwatch total;
  ensure_ot();

  size_t consumed = 0;
  Labels carried;
  for (size_t k = 0; k < chain.size(); ++k) {
    const Circuit& c = chain[k];
    PhaseSample ph;
    ph.step = k;

    Stopwatch sw;
    const size_t n_w = c.evaluator_inputs.size();
    const BitVec w_bits = slice(weight_bits, consumed, n_w);
    consumed += n_w;
    const Labels e_labels = n_w > 0 ? ot_.recv(w_bits) : Labels{};
    Labels g_labels;
    if (k == 0) {
      g_labels = evaluator_.recv_active(c.garbler_inputs.size());
    } else {
      if (carried.size() != c.garbler_inputs.size())
        throw std::invalid_argument("chain: layer width mismatch");
      g_labels = carried;
    }
    ph.ot_s = sw.seconds();

    sw.restart();
    carried = evaluator_.evaluate(c, g_labels, e_labels, {});
    ph.eval_s = sw.seconds();
    trace_.phases.push_back(ph);
  }

  evaluator_.send_outputs(carried);
  const BitVec out = ch_.recv_bits();
  trace_.total_s = total.seconds();
  return out;
}

BitVec GarblerSession::run_sequential(const Circuit& step, size_t cycles,
                                      const BitVec& data_bits) {
  Stopwatch total;
  ensure_ot();
  const size_t g_per = step.garbler_inputs.size();
  const size_t e_per = step.evaluator_inputs.size();
  if (data_bits.size() != g_per * cycles)
    throw std::invalid_argument("run_sequential: data size mismatch");

  // Cycle-0 state: public zeros, delivered like garbler inputs.
  Labels state = garbler_.fresh_zeros(step.state_inputs.size());
  garbler_.send_active(BitVec(state.size(), 0), state);

  Labels outs;
  for (size_t t = 0; t < cycles; ++t) {
    PhaseSample ph;
    ph.step = t;
    Stopwatch sw;
    const Labels g_zeros = garbler_.fresh_zeros(g_per);
    garbler_.send_active(slice(data_bits, t * g_per, g_per), g_zeros);
    const Labels e_zeros = garbler_.fresh_zeros(e_per);
    if (!e_zeros.empty()) ot_.send_correlated(e_zeros, garbler_.delta());
    ph.ot_s = sw.seconds();

    sw.restart();
    Labels next_state;
    outs = garbler_.garble(step, g_zeros, e_zeros, state, &next_state);
    state = std::move(next_state);
    ph.garble_s = sw.seconds();
    trace_.phases.push_back(ph);
  }

  const BitVec out = garbler_.decode_outputs(outs);
  ch_.send_bits(out);
  trace_.total_s = total.seconds();
  return out;
}

BitVec EvaluatorSession::run_sequential(const Circuit& step, size_t cycles,
                                        const BitVec& weight_bits) {
  Stopwatch total;
  ensure_ot();
  const size_t e_per = step.evaluator_inputs.size();
  if (weight_bits.size() != e_per * cycles)
    throw std::invalid_argument("run_sequential: weight size mismatch");

  Labels state = evaluator_.recv_active(step.state_inputs.size());

  Labels outs;
  for (size_t t = 0; t < cycles; ++t) {
    PhaseSample ph;
    ph.step = t;
    Stopwatch sw;
    const Labels g_labels = evaluator_.recv_active(step.garbler_inputs.size());
    const BitVec w_bits = slice(weight_bits, t * e_per, e_per);
    const Labels e_labels = e_per > 0 ? ot_.recv(w_bits) : Labels{};
    ph.ot_s = sw.seconds();

    sw.restart();
    Labels next_state;
    outs = evaluator_.evaluate(step, g_labels, e_labels, state, &next_state);
    state = std::move(next_state);
    ph.eval_s = sw.seconds();
    trace_.phases.push_back(ph);
  }

  evaluator_.send_outputs(outs);
  const BitVec out = ch_.recv_bits();
  trace_.total_s = total.seconds();
  return out;
}

// --- offline/online split ----------------------------------------------

OtPrecompSender GarblerSession::precompute_ot(size_t m) {
  ensure_ot();
  return ot_.precompute(m);
}

void GarblerSession::send_labels_derandomized(const OtPrecompSender& pre,
                                              const Labels& zeros,
                                              Block delta) {
  ensure_ot();
  ot_.send_correlated_derandomized(pre, zeros, delta);
}

void GarblerSession::begin_online(Block delta, const Labels& data_zeros,
                                  const BitVec& data_bits) {
  if (data_bits.size() != data_zeros.size())
    throw std::invalid_argument("begin_online: data bit count mismatch");
  PhaseSample ph;
  ph.step = trace_.phases.size();
  Stopwatch sw;
  std::vector<Block> active(data_bits.size());
  for (size_t i = 0; i < data_bits.size(); ++i)
    active[i] = data_bits[i] ? (data_zeros[i] ^ delta) : data_zeros[i];
  ch_.send_blocks(active.data(), active.size());
  ph.ot_s = sw.seconds();  // online label transfer: the whole send cost
  trace_.phases.push_back(ph);
  ++online_in_flight_;
}

BitVec GarblerSession::finish_online() {
  if (online_in_flight_ == 0)
    throw std::logic_error("finish_online: no online inference in flight");
  // Result vectors are circuit outputs — generously bounded so a
  // corrupted peer length header cannot force a huge allocation.
  // Decrement only after a successful receive: a transport failure must
  // keep reporting itself on retry/drain, not decay into a bogus
  // "nothing in flight" logic error.
  BitVec out = ch_.recv_bits_bounded(uint64_t{1} << 24);
  --online_in_flight_;
  return out;
}

BitVec GarblerSession::run_online(const GarbledMaterial& mat,
                                  const BitVec& data_bits) {
  Stopwatch total;
  begin_online(mat.delta, mat.data_zeros, data_bits);
  const BitVec out = finish_online();
  trace_.total_s += total.seconds();
  return out;
}

OtPrecompReceiver EvaluatorSession::precompute_ot(size_t m) {
  ensure_ot();
  return ot_.precompute(m, prg_);
}

Labels EvaluatorSession::recv_labels_derandomized(const OtPrecompReceiver& pre,
                                                  const BitVec& choices) {
  ensure_ot();
  return ot_.recv_derandomized(pre, choices);
}

BitVec EvaluatorSession::run_online(const std::vector<Circuit>& chain,
                                    const EvalMaterial& mat) {
  if (chain.empty())
    throw std::invalid_argument("run_online: empty circuit chain");
  Stopwatch total;
  PhaseSample ph;
  ph.step = trace_.phases.size();

  Stopwatch sw;
  const Labels g_labels =
      evaluator_.recv_active(chain.front().garbler_inputs.size());
  ph.ot_s = sw.seconds();

  sw.restart();
  const BitVec out = evaluate_material(chain, mat, g_labels, opt_);
  ph.eval_s = sw.seconds();
  trace_.phases.push_back(ph);

  ch_.send_bits(out);
  trace_.total_s += total.seconds();
  return out;
}

}  // namespace deepsecure
