// Fundamental GC-optimized arithmetic blocks (Section 3.4).
//
// Every block minimizes non-XOR gates under the free-XOR cost model:
//   * full adder: 1 AND + 4 XOR (Boyar-Peralta form)
//   * n-bit adder: n-1 AND (carry out of the top bit is never computed)
//   * comparator: one (n+1)-bit subtraction, sign bit only
//   * 2:1 bus mux: 1 AND per bit
// Constant operands fold to even fewer gates automatically (the builder
// removes ANDs/XORs with constants), which is what makes constant-
// coefficient adders (CORDIC) and constant tables (LUT) cheap.
#pragma once

#include "synth/bus.h"

namespace deepsecure::synth {

/// a + b + cin; widths must match; result has the same width (mod 2^n).
/// If `cout` is non-null it receives the carry out of the top bit (this
/// costs one extra AND).
Bus add_full(Builder& b, const Bus& a, const Bus& y, Wire cin,
             Wire* cout = nullptr);

Bus add(Builder& b, const Bus& a, const Bus& y);
Bus sub(Builder& b, const Bus& a, const Bus& y);
Bus negate(Builder& b, const Bus& a);

/// Signed/unsigned comparison predicates.
Wire lt_signed(Builder& b, const Bus& a, const Bus& y);
Wire lt_unsigned(Builder& b, const Bus& a, const Bus& y);
Wire eq(Builder& b, const Bus& a, const Bus& y);
/// Sign bit (MSB) of a signed bus — free.
inline Wire sign_bit(const Bus& a) { return a.back(); }
Wire is_zero(Builder& b, const Bus& a);

/// sel ? t : f, element-wise.
Bus mux_bus(Builder& b, Wire sel, const Bus& t, const Bus& f);

/// |a| for signed a (two's complement; INT_MIN maps to itself).
Bus abs_signed(Builder& b, const Bus& a);

/// |a| with the single non-representable corner (-2^(n-1), whose negation
/// wraps to itself) clamped to 2^(n-1)-1. Table/CORDIC indexing uses this.
Bus abs_clamped(Builder& b, const Bus& a);

/// max(a, b) signed — the pooling/Softmax primitive.
Bus max_signed(Builder& b, const Bus& a, const Bus& y);

/// ReLU: max(0, a). One AND per output bit: every bit is masked by the
/// complement of the sign bit (this is the paper's "ReLu as multiplexer"
/// realization, 15 non-XOR at 16 bits since the output MSB is always 0
/// only when... the mask keeps the MSB too, so n ANDs; the builder folds
/// nothing here).
Bus relu(Builder& b, const Bus& a);

/// Saturating clamp of signed `a` into [lo_const, hi_const].
Bus clamp_const(Builder& b, const Bus& a, int64_t lo, int64_t hi);

/// Barrel shifter: logical right shift of `a` by the unsigned amount bus
/// `k` (one mux stage per bit of k, so |k| * |a| AND gates).
Bus shr_variable(Builder& b, const Bus& a, const Bus& k);

/// Barrel shifter: logical left shift by the unsigned amount bus `k`.
Bus shl_variable(Builder& b, const Bus& a, const Bus& k);

/// Leading-zero count of `a` (viewed as an unsigned word): number of
/// zero bits above the highest set bit; |a| when a == 0. The result bus
/// is clog2(|a|+1) bits.
Bus leading_zero_count(Builder& b, const Bus& a);

}  // namespace deepsecure::synth
