// In-memory duplex channel: two endpoints connected by a pair of
// blocking byte queues. Substitutes the paper's LAN link between client
// and server; real bytes flow, so the communication measurements are the
// actual protocol transcript sizes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "net/channel.h"

namespace deepsecure {

class MemChannel;

/// Thrown by recv_bytes when the peer closed the channel with data
/// outstanding (normally indicates the peer aborted with an error).
struct ChannelClosed : std::runtime_error {
  ChannelClosed() : std::runtime_error("channel closed by peer") {}
};

/// A connected pair of channel endpoints. Thread-safe: intended usage is
/// one thread per endpoint.
struct ChannelPair {
  std::unique_ptr<MemChannel> a;  // e.g. client / garbler
  std::unique_ptr<MemChannel> b;  // e.g. server / evaluator
};

ChannelPair make_channel_pair();

class MemChannel final : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override;
  void recv_bytes(void* data, size_t n) override;
  size_t recv_some(void* data, size_t min_n, size_t max_n) override;

  /// Mark the outgoing direction closed; a peer blocked in recv_bytes
  /// with no pending data gets a ChannelClosed exception instead of
  /// hanging. Used by the two-party runner on abnormal termination.
  void close();

  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }
  void reset_counters() override {
    sent_ = 0;
    received_ = 0;
  }

 private:
  friend ChannelPair make_channel_pair();

  // Byte FIFO with bulk append/consume; `head` is the read offset into
  // `data`, compacted when fully drained to bound memory churn. Senders
  // block once `max_bytes` is queued (backpressure keeps the in-memory
  // "network" from buffering gigabytes of garbled tables).
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;        // data available / closed
    std::condition_variable cv_space;  // space available
    std::vector<uint8_t> data;
    size_t head = 0;
    size_t max_bytes = 64ull << 20;
    bool closed = false;
  };

  std::shared_ptr<Queue> out_;  // we push here
  std::shared_ptr<Queue> in_;   // we pop here
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

}  // namespace deepsecure
