// Background producer of offline garbling artifacts — the client-side
// half of the offline/online split. A MaterialPool keeps up to `target`
// GarbledMaterial instances for one compiled chain ready at all times:
// producer tasks run on a support/thread_pool, each garbling one
// instance from a fresh PRG seed, and every acquire() triggers a refill
// so the pool converges back to `target` while the session is busy with
// the online phase.
//
// One artifact = one inference (labels must never be reused), so this
// is an inventory of consumables, not a cache: sizing follows Little's
// law — target ≈ arrival_rate × garble_time — and a drained pool is not
// an error, just the signal for the caller to fall back to on-demand
// streaming garbling (try_acquire returns nullopt instead of blocking).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "crypto/prg.h"
#include "gc/material.h"
#include "support/thread_pool.h"

namespace deepsecure::runtime {

class MaterialPool {
 public:
  /// Keeps up to `target` artifacts for `chain` ready, producing on
  /// `producer_threads` background workers. `chain` is captured by
  /// reference and must outlive the pool. `seed` drives the per-artifact
  /// label seeds (zero = OS entropy); pass a constant only in tests.
  MaterialPool(const std::vector<Circuit>& chain, const GcOptions& opt,
               size_t target, size_t producer_threads = 1, Block seed = {});
  ~MaterialPool();

  MaterialPool(const MaterialPool&) = delete;
  MaterialPool& operator=(const MaterialPool&) = delete;

  /// Non-blocking: a ready artifact, or nullopt when drained (the
  /// caller's cue to garble on demand). Triggers a background refill
  /// either way. Rethrows a producer failure (bad chain/options) on
  /// the caller instead of reporting an eternal drain.
  std::optional<GarbledMaterial> try_acquire();

  /// Blocking: waits for production when drained. Used to warm the pool
  /// before a latency-sensitive phase. Rethrows producer failures.
  GarbledMaterial acquire();

  /// Artifacts currently ready.
  size_t ready() const;

  // Stats getters lock: producer threads update the counters under mu_.
  uint64_t produced() const {
    std::lock_guard<std::mutex> lock(mu_);
    return produced_;
  }
  uint64_t acquired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acquired_;
  }
  /// try_acquire calls that found the pool drained.
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  void schedule_refill_locked();
  void rethrow_error_locked();
  void produce_one();

  const std::vector<Circuit>& chain_;
  GcOptions opt_;
  size_t target_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<GarbledMaterial> ready_;
  Prg seed_prg_;
  size_t in_flight_ = 0;  // producer tasks scheduled but not yet pushed
  size_t waiting_ = 0;    // acquire() calls blocked on production
  std::exception_ptr error_;  // first producer failure, rethrown on acquire
  bool stopping_ = false;

  uint64_t produced_ = 0;
  uint64_t acquired_ = 0;
  uint64_t misses_ = 0;

  // Destroyed first (declared last): its destructor drains queued
  // producer tasks, which touch the members above.
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace deepsecure::runtime
