// Multi-session inference server: concurrent TCP sessions against one
// loaded model, end-to-end secure inference over a real loopback socket
// (the satellite requirement: not just MemChannel), and handshake
// rejection paths.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/deepsecure.h"
#include "nn/network.h"
#include "runtime/client.h"
#include "runtime/server.h"
#include "support/rng.h"
#include "test_util.h"

namespace deepsecure {
namespace {

using test::pack_fixed;
using test::random_fixed;

synth::ModelSpec small_spec() {
  synth::ModelSpec spec;
  spec.name = "server_test_mlp";
  spec.input = synth::Shape3{1, 1, 5};
  spec.layers.push_back(synth::FcLayer{4, {}, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{3, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  return spec;
}

BitVec random_weights(const synth::ModelSpec& spec, Rng& rng) {
  std::vector<Fixed> w;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  return pack_fixed(w);
}

// Plaintext reference label for a sample against the spec + weights.
size_t plaintext_label(const synth::ModelSpec& spec, const BitVec& weights,
                       const BitVec& data) {
  const Circuit mono = synth::compile_model(spec);
  return from_bits(mono.eval(data, weights));
}

TEST(InferenceServer, EndToEndSecureInferOverTcpLoopback) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(17);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg;
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec data = pack_fixed(x);

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{2024, 610};
  ccfg.stream.garble_threads = 2;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  const BitVec out = client.infer_bits(data);
  EXPECT_EQ(from_bits(out), plaintext_label(spec, weights, data));
  client.close();
  server.stop();
  EXPECT_EQ(server.inferences_served(), 1u);
  EXPECT_EQ(server.sessions_rejected(), 0u);
}

TEST(InferenceServer, SustainsFourConcurrentTcpSessions) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(23);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg;
  cfg.max_sessions = 4;
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  constexpr size_t kSessions = 4;
  constexpr size_t kRequests = 2;
  std::vector<std::vector<size_t>> got(kSessions), want(kSessions);
  std::vector<std::vector<BitVec>> datas(kSessions);
  {
    Rng drng(404);
    for (size_t s = 0; s < kSessions; ++s) {
      for (size_t r = 0; r < kRequests; ++r) {
        std::vector<Fixed> x;
        for (size_t i = 0; i < 5; ++i)
          x.push_back(random_fixed(drng, kDefaultFormat, 0.2));
        datas[s].push_back(pack_fixed(x));
        want[s].push_back(plaintext_label(spec, weights, datas[s].back()));
      }
    }
  }

  std::vector<std::thread> clients;
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      runtime::ClientConfig ccfg;
      ccfg.seed = Block{100 + s, 200 + s};  // per-session label seeds
      runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
      for (size_t r = 0; r < kRequests; ++r)
        got[s].push_back(from_bits(client.infer_bits(datas[s][r])));
      client.close();
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  for (size_t s = 0; s < kSessions; ++s)
    EXPECT_EQ(got[s], want[s]) << "session " << s;
  EXPECT_EQ(server.sessions_accepted(), kSessions);
  EXPECT_EQ(server.inferences_served(), kSessions * kRequests);
}

TEST(InferenceServer, RejectsFingerprintMismatch) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(31);
  runtime::InferenceServer server(spec, random_weights(spec, rng), {});
  server.start();

  synth::ModelSpec other = spec;  // different architecture, same inputs
  other.layers.insert(other.layers.begin() + 1,
                      synth::ActLayer{synth::ActKind::kReLU});
  EXPECT_THROW(
      {
        runtime::InferenceClient client("127.0.0.1", server.port(), other);
      },
      std::runtime_error);
  server.stop();
  EXPECT_EQ(server.sessions_rejected(), 1u);
}

TEST(InferenceServer, RejectsFramingMismatch) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(37);
  runtime::ServerConfig scfg;
  scfg.stream.framed_tables = true;
  runtime::InferenceServer server(spec, random_weights(spec, rng), scfg);
  server.start();

  runtime::ClientConfig ccfg;
  ccfg.stream.framed_tables = false;  // wire-format disagreement
  EXPECT_THROW(
      {
        runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
      },
      std::runtime_error);
  server.stop();
}

// The full core-API path — a trained-network-shaped model, sample
// encoding via sample_bits / weight_bits — over a real TCP loopback.
TEST(InferenceServer, NetworkModelSecureInferOverTcp) {
  Rng rng(53);
  nn::Network net(nn::Shape{1, 1, 6});
  net.dense(4, rng).act(nn::Act::kReLU).dense(2, rng);

  SecureInferenceOptions opt;
  const synth::ModelSpec spec = model_spec_from_network(net, opt, "tcp_mlp");
  const BitVec weights = weight_bits(net, opt.fmt);

  runtime::InferenceServer server(spec, weights, {});
  server.start();

  const nn::VecF sample{0.1f, -0.2f, 0.05f, 0.3f, -0.15f, 0.2f};
  const BitVec data = sample_bits(sample, opt.fmt);

  runtime::InferenceClient client("127.0.0.1", server.port(), spec);
  const size_t label = from_bits(client.infer_bits(data));
  client.close();
  server.stop();

  EXPECT_EQ(label, plaintext_label(spec, weights, data));
}

}  // namespace
}  // namespace deepsecure
