// Two-party communication channel abstraction. The GC protocol, OT, and
// the outsourcing mode all talk through this interface, and the byte
// counters are the source of the paper's "Comm. (MB)" columns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/block.h"

namespace deepsecure {

class Channel {
 public:
  virtual ~Channel() = default;

  virtual void send_bytes(const void* data, size_t n) = 0;
  virtual void recv_bytes(void* data, size_t n) = 0;

  // --- typed helpers -------------------------------------------------
  void send_block(Block b) {
    uint8_t buf[16];
    b.to_bytes(buf);
    send_bytes(buf, sizeof(buf));
  }
  Block recv_block() {
    uint8_t buf[16];
    recv_bytes(buf, sizeof(buf));
    return Block::from_bytes(buf);
  }
  void send_blocks(const Block* b, size_t n) {
    for (size_t i = 0; i < n; ++i) send_block(b[i]);
  }
  void recv_blocks(Block* b, size_t n) {
    for (size_t i = 0; i < n; ++i) b[i] = recv_block();
  }
  void send_u64(uint64_t v) { send_bytes(&v, sizeof(v)); }
  uint64_t recv_u64() {
    uint64_t v = 0;
    recv_bytes(&v, sizeof(v));
    return v;
  }
  void send_bit(uint8_t b) { send_bytes(&b, 1); }
  uint8_t recv_bit() {
    uint8_t b = 0;
    recv_bytes(&b, 1);
    return b;
  }
  void send_bits(const std::vector<uint8_t>& bits) {
    send_u64(bits.size());
    // Packed transfer, 8 bits per byte.
    std::vector<uint8_t> packed((bits.size() + 7) / 8, 0);
    for (size_t i = 0; i < bits.size(); ++i)
      packed[i / 8] |= static_cast<uint8_t>((bits[i] & 1u) << (i % 8));
    if (!packed.empty()) send_bytes(packed.data(), packed.size());
  }
  std::vector<uint8_t> recv_bits() {
    const uint64_t n = recv_u64();
    std::vector<uint8_t> packed((n + 7) / 8);
    if (!packed.empty()) recv_bytes(packed.data(), packed.size());
    std::vector<uint8_t> bits(n);
    for (size_t i = 0; i < n; ++i)
      bits[i] = (packed[i / 8] >> (i % 8)) & 1u;
    return bits;
  }

  /// Total bytes pushed through send_bytes on this endpoint.
  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t bytes_received() const = 0;
  virtual void reset_counters() = 0;
};

}  // namespace deepsecure
