// Analytic gate accounting (Table 2 methodology): per-operation XOR /
// non-XOR costs are measured once from synthesized blocks, then rolled up
// over the network dimensions. This is how the paper (and this repo)
// obtains gate totals for networks far too large to materialize
// (benchmark 4 is ~5x10^9 gates).
#pragma once

#include <cstdint>

#include "synth/layer_circuits.h"

namespace deepsecure::synth {

struct GateCount {
  uint64_t num_xor = 0;
  uint64_t num_non_xor = 0;

  GateCount& operator+=(const GateCount& o) {
    num_xor += o.num_xor;
    num_non_xor += o.num_non_xor;
    return *this;
  }
  friend GateCount operator*(GateCount c, uint64_t k) {
    return GateCount{c.num_xor * k, c.num_non_xor * k};
  }
  friend GateCount operator+(GateCount a, const GateCount& b) {
    a += b;
    return a;
  }
  /// Garbled-table bytes (half-gates: 2 x 16 B per non-XOR gate).
  uint64_t comm_bytes() const { return num_non_xor * 32; }
};

GateCount count_circuit(const Circuit& c);

/// Measured costs of the fundamental blocks at format `fmt` (built once
/// and memoized per format).
struct BlockCosts {
  GateCount add;
  GateCount mult;
  GateCount div;
  GateCount relu;
  GateCount max;          // CMP + MUX (pooling / argmax step)
  GateCount mean4;        // 2x2 mean pooling tail (const multiply)
  GateCount act[10];      // indexed by ActKind
};
const BlockCosts& block_costs(FixedFormat fmt);

/// Table-2-style roll-up of a whole model (exact for FC/conv/pool/act
/// chains built by compile_model, up to constant-folding variations that
/// are negligible at network scale).
GateCount count_model(const ModelSpec& spec);

/// Per-layer breakdown, same totals as count_model.
std::vector<GateCount> count_model_layers(const ModelSpec& spec);

}  // namespace deepsecure::synth
