// Buffering decorator for any Channel. The GC protocol sends many tiny
// messages — per-column OT bit vectors, u64 length headers, single
// decode bits — and over TcpChannel each of those is a syscall. This
// wrapper coalesces small sends into one buffer (flushed when full,
// before any receive, and on flush()/destruction) and reads ahead on the
// receive side via Channel::recv_some, which never blocks for bytes the
// peer has not already sent — so read-ahead cannot deadlock a
// request/response protocol.
//
// Flushing before every receive keeps the conversation correct for
// arbitrary send/recv interleavings: by the time this endpoint waits for
// the peer, everything it promised to send is on the wire.
#pragma once

#include <cstring>
#include <vector>

#include "net/channel.h"
#include "obs/metrics.h"

namespace deepsecure {

class BufferedChannel final : public Channel {
 public:
  explicit BufferedChannel(Channel& inner, size_t buf_bytes = 1 << 16)
      : inner_(inner), cap_(buf_bytes) {
    wbuf_.reserve(cap_);
    rbuf_.resize(cap_);
  }
  ~BufferedChannel() override {
    try {
      flush();
    } catch (...) {
      // Destruction during stack unwind (peer already gone): drop bytes.
    }
  }

  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    sent_ += n;
    if (wbuf_.size() + n > cap_) flush_writes();
    if (n > cap_) {  // large payload: ship directly, no extra copy
      inner_.send_bytes(p, n);
      return;
    }
    wbuf_.insert(wbuf_.end(), p, p + n);
  }

  /// Vectored pass-through: the pending small-write buffer ships as the
  /// LEADING slice of the same inner send_iov call, so coalesced
  /// control bytes and borrowed table slabs still hit the wire in
  /// program order with one vectored syscall. The wbuf slice carries no
  /// ref — per the IoSlice contract the inner channel consumes it
  /// before returning, so clearing wbuf_ afterwards is safe even over
  /// an asynchronous transport.
  void send_iov(IoSlice* slices, size_t n) override {
    for (size_t i = 0; i < n; ++i) sent_ += slices[i].len;
    if (wbuf_.empty()) {
      inner_.send_iov(slices, n);
      return;
    }
    static obs::Counter& flushes =
        obs::Registry::global().counter("net.buffered.flushes");
    static obs::Counter& flush_bytes =
        obs::Registry::global().counter("net.buffered.flush_bytes");
    flushes.add();
    flush_bytes.add(wbuf_.size());
    std::vector<IoSlice> all(n + 1);
    all[0].data = wbuf_.data();
    all[0].len = wbuf_.size();
    for (size_t i = 0; i < n; ++i) all[i + 1] = std::move(slices[i]);
    inner_.send_iov(all.data(), all.size());
    wbuf_.clear();
  }

  void recv_bytes(void* data, size_t n) override {
    flush_writes();  // everything we owe the peer goes out first
    auto* p = static_cast<uint8_t*>(data);
    received_ += n;
    size_t got = take_buffered(p, n);
    if (got == n) return;
    if (n - got >= cap_) {  // large read: straight into the caller
      inner_.recv_bytes(p + got, n - got);
      return;
    }
    // Read at least what the caller needs, opportunistically more.
    rlen_ = inner_.recv_some(rbuf_.data(), n - got, cap_);
    rpos_ = 0;
    take_buffered(p + got, n - got);
  }

  size_t recv_some(void* data, size_t min_n, size_t max_n) override {
    flush_writes();
    auto* p = static_cast<uint8_t*>(data);
    size_t got = take_buffered(p, max_n);
    if (got < min_n)
      got += inner_.recv_some(p + got, min_n - got, max_n - got);
    received_ += got;
    return got;
  }

  /// Push buffered sends to the underlying channel.
  void flush() { flush_writes(); }

  /// Bytes already read ahead from the transport but not yet consumed.
  /// The reactor must drain frames while this is nonzero before parking
  /// the fd in epoll again — readiness APIs cannot see user-space bytes.
  size_t recv_buffered() const { return rlen_ - rpos_; }

  /// Counters reflect the logical payload through this wrapper (the
  /// inner channel counts the same bytes at the transport).
  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }
  void reset_counters() override {
    sent_ = 0;
    received_ = 0;
  }

 private:
  void flush_writes() {
    if (wbuf_.empty()) return;
    // Coalescing effectiveness, process-wide: bytes per flush is what
    // the buffer size is tuned against (resolved once, all channels).
    static obs::Counter& flushes =
        obs::Registry::global().counter("net.buffered.flushes");
    static obs::Counter& flush_bytes =
        obs::Registry::global().counter("net.buffered.flush_bytes");
    flushes.add();
    flush_bytes.add(wbuf_.size());
    inner_.send_bytes(wbuf_.data(), wbuf_.size());
    wbuf_.clear();
  }

  size_t take_buffered(uint8_t* p, size_t n) {
    const size_t take = std::min(n, rlen_ - rpos_);
    if (take > 0) {
      std::memcpy(p, rbuf_.data() + rpos_, take);
      rpos_ += take;
    }
    return take;
  }

  Channel& inner_;
  size_t cap_;
  std::vector<uint8_t> wbuf_;
  std::vector<uint8_t> rbuf_;
  size_t rpos_ = 0;
  size_t rlen_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

}  // namespace deepsecure
