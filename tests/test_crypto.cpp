#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "crypto/aes128.h"
#include "crypto/block.h"
#include "crypto/prg.h"
#include "crypto/sha256.h"

namespace deepsecure {
namespace {

Block block_from_hex_bytes(const uint8_t bytes[16]) {
  return Block::from_bytes(bytes);
}

TEST(Block, XorAndLsb) {
  const Block a{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  const Block b{0x1111111111111111ull, 0x2222222222222222ull};
  const Block c = a ^ b;
  EXPECT_EQ(c.lo, 0x0123456789ABCDEFull ^ 0x1111111111111111ull);
  EXPECT_EQ((c ^ b), a);
  EXPECT_TRUE(a.lsb());
  EXPECT_FALSE(Block(2, 0).lsb());
}

TEST(Block, GfDoubleReduces) {
  // 2 * (x^127) = x^128 = x^7 + x^2 + x + 1 = 0x87.
  Block top{0, 0x8000000000000000ull};
  const Block r = top.gf_double();
  EXPECT_EQ(r.lo, 0x87ull);
  EXPECT_EQ(r.hi, 0ull);
  // Doubling without carry is a plain shift.
  EXPECT_EQ(Block(1, 0).gf_double(), Block(2, 0));
}

// FIPS-197 Appendix B/C known-answer test.
TEST(Aes128, Fips197KnownAnswer) {
  const uint8_t key_bytes[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                 0x0e, 0x0f};
  const uint8_t pt_bytes[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                                0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                                0xee, 0xff};
  const uint8_t expect_bytes[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04,
                                    0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                                    0xc5, 0x5a};
  const Aes128Key key = aes128_expand(block_from_hex_bytes(key_bytes));
  const Block ct = detail::aes128_encrypt_soft(key, block_from_hex_bytes(pt_bytes));
  EXPECT_EQ(ct, block_from_hex_bytes(expect_bytes));
}

// FIPS-197 Appendix A vector (different key schedule path).
TEST(Aes128, Fips197AppendixA) {
  const uint8_t key_bytes[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                 0x4f, 0x3c};
  const uint8_t pt_bytes[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                                0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                                0x07, 0x34};
  const uint8_t expect_bytes[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09,
                                    0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                                    0x0b, 0x32};
  const Aes128Key key = aes128_expand(block_from_hex_bytes(key_bytes));
  const Block ct = detail::aes128_encrypt_soft(key, block_from_hex_bytes(pt_bytes));
  EXPECT_EQ(ct, block_from_hex_bytes(expect_bytes));
}

TEST(Aes128, NiMatchesSoftware) {
  if (!aes128_ni_available()) GTEST_SKIP() << "AES-NI not available";
  Prg prg(Block{123, 456});
  for (int i = 0; i < 64; ++i) {
    const Block key = prg.next_block();
    const Block pt = prg.next_block();
    const Aes128Key k = aes128_expand(key);
    EXPECT_EQ(aes128_encrypt(k, pt), detail::aes128_encrypt_soft(k, pt));
  }
}

TEST(Aes128, BatchMatchesSingle) {
  Prg prg(Block{9, 9});
  const Aes128Key k = aes128_expand(prg.next_block());
  std::vector<Block> batch(37);
  prg.next_blocks(batch.data(), batch.size());
  std::vector<Block> expect = batch;
  for (auto& b : expect) b = aes128_encrypt(k, b);
  aes128_encrypt_batch(k, batch.data(), batch.size());
  EXPECT_EQ(batch, expect);
}

class ForceSoftwareGuard {
 public:
  ForceSoftwareGuard() { aes128_force_software(true); }
  ~ForceSoftwareGuard() { aes128_force_software(false); }
};

TEST(GcHash, BatchMatchesScalar) {
  for (const bool soft : {false, true}) {
    SCOPED_TRACE(soft ? "software" : "runtime-default");
    std::optional<ForceSoftwareGuard> guard;
    if (soft) guard.emplace();
    Prg prg(Block{21, 12});
    std::vector<Block> in(133);
    prg.next_blocks(in.data(), in.size());
    std::vector<uint64_t> tweaks(in.size());
    for (size_t i = 0; i < tweaks.size(); ++i) tweaks[i] = 1000 + 3 * i;
    std::vector<Block> out(in.size());
    gc_hash_batch(in.data(), tweaks.data(), out.data(), in.size());
    for (size_t i = 0; i < in.size(); ++i)
      ASSERT_EQ(out[i], gc_hash(in[i], tweaks[i])) << "i=" << i;
  }
}

TEST(GcHash, BatchSupportsInPlaceAliasing) {
  Prg prg(Block{8, 15});
  std::vector<Block> buf(50);
  prg.next_blocks(buf.data(), buf.size());
  const std::vector<Block> in = buf;
  std::vector<uint64_t> tweaks(buf.size());
  for (size_t i = 0; i < tweaks.size(); ++i) tweaks[i] = i;
  gc_hash_batch(buf.data(), tweaks.data(), buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); ++i)
    ASSERT_EQ(buf[i], gc_hash(in[i], tweaks[i])) << "i=" << i;
}

TEST(GcHash, AndQuadsMatchScalarHashes) {
  for (const bool soft : {false, true}) {
    SCOPED_TRACE(soft ? "software" : "runtime-default");
    std::optional<ForceSoftwareGuard> guard;
    if (soft) guard.emplace();
    Prg prg(Block{77, 99});
    const size_t n = 41;  // exercises chunk boundary + tail
    Block delta = prg.next_block();
    delta.lo |= 1;
    std::vector<Block> a0(n), b0(n);
    prg.next_blocks(a0.data(), n);
    prg.next_blocks(b0.data(), n);
    std::vector<uint64_t> tweaks(2 * n);
    for (size_t i = 0; i < 2 * n; ++i) tweaks[i] = 5000 + i;
    std::vector<Block> out(4 * n);
    gc_hash_and_quads(a0.data(), b0.data(), delta, tweaks.data(), out.data(),
                      n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[4 * i + 0], gc_hash(a0[i], tweaks[2 * i])) << i;
      ASSERT_EQ(out[4 * i + 1], gc_hash(a0[i] ^ delta, tweaks[2 * i])) << i;
      ASSERT_EQ(out[4 * i + 2], gc_hash(b0[i], tweaks[2 * i + 1])) << i;
      ASSERT_EQ(out[4 * i + 3], gc_hash(b0[i] ^ delta, tweaks[2 * i + 1]))
          << i;
    }
  }
}

TEST(GcHash, TweakSeparation) {
  const Block x{42, 17};
  EXPECT_NE(gc_hash(x, 0), gc_hash(x, 1));
  EXPECT_EQ(gc_hash(x, 5), gc_hash(x, 5));
  EXPECT_NE(gc_hash(x, 0), gc_hash(x ^ Block{1, 0}, 0));
}

// NIST FIPS 180-2 test vectors.
TEST(Sha256, KnownAnswers) {
  auto hex = [](const Sha256Digest& d) {
    std::string s;
    static const char* k = "0123456789abcdef";
    for (uint8_t b : d) {
      s.push_back(k[b >> 4]);
      s.push_back(k[b & 0xF]);
    }
    return s;
  };
  EXPECT_EQ(hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Long-message vector: one million 'a's.
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk.data(), chunk.size());
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Prg, DeterministicAndSeedSeparated) {
  Prg a(Block{1, 2}), b(Block{1, 2}), c(Block{3, 4});
  const Block x = a.next_block();
  EXPECT_EQ(x, b.next_block());
  EXPECT_NE(x, c.next_block());
}

TEST(Prg, ExpandBitsBalanced) {
  Prg prg(Block{77, 0});
  const auto bits = prg.expand_bits(10000);
  size_t ones = 0;
  for (uint8_t b : bits) ones += b;
  EXPECT_NEAR(static_cast<double>(ones), 5000.0, 300.0);
}

// fill_bytes batches through next_blocks now; the keystream must remain
// exactly the per-block counter stream (protocol transcripts depend on it).
TEST(Prg, FillBytesMatchesBlockStream) {
  for (const size_t n : {size_t{5}, size_t{16}, size_t{2048 + 7}}) {
    Prg a(Block{4, 2}), b(Block{4, 2});
    std::vector<uint8_t> got(n);
    a.fill_bytes(got.data(), n);
    std::vector<uint8_t> expect(n);
    size_t off = 0;
    while (off < n) {
      uint8_t tmp[16];
      b.next_block().to_bytes(tmp);
      const size_t m = std::min<size_t>(16, n - off);
      std::copy(tmp, tmp + m, expect.begin() + static_cast<ptrdiff_t>(off));
      off += m;
    }
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(Prg, ExpandBitsMatchesBlockStream) {
  for (const size_t n : {size_t{1}, size_t{128}, size_t{16384 + 13}}) {
    Prg a(Block{6, 6}), b(Block{6, 6});
    const auto got = a.expand_bits(n);
    std::vector<uint8_t> expect(n);
    size_t i = 0;
    while (i < n) {
      const Block blk = b.next_block();
      for (int half = 0; half < 2 && i < n; ++half) {
        const uint64_t word = half == 0 ? blk.lo : blk.hi;
        for (int j = 0; j < 64 && i < n; ++j, ++i)
          expect[i] = static_cast<uint8_t>((word >> j) & 1u);
      }
    }
    EXPECT_EQ(got, expect) << "n=" << n;
    // Both consumed the same number of counter blocks.
    EXPECT_EQ(a.next_block(), b.next_block());
  }
}

TEST(Prg, OsEntropyDistinct) {
  Prg a = Prg::from_os_entropy();
  Prg b = Prg::from_os_entropy();
  EXPECT_NE(a.next_block(), b.next_block());
}

}  // namespace
}  // namespace deepsecure
