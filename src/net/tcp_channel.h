// TCP transport: the same Channel interface as the in-memory pair, over
// a real socket — what an actual client/server deployment of the
// protocol uses (the paper's LAN testbed). Blocking, stream-oriented,
// with TCP_NODELAY so the request/response OT rounds are not delayed by
// Nagle batching.
//
// TcpListener separates bind/listen from accept so a server can keep one
// listening socket and accept many client sessions (runtime/server.h);
// TcpChannel::listen_and_accept remains the one-shot convenience used by
// the two-party tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/channel.h"

namespace deepsecure {

class TcpChannel final : public Channel {
 public:
  /// Server side: bind + listen on `port` (0 = ephemeral), accept one
  /// peer. `bound_port` receives the actual port before accept blocks.
  static TcpChannel listen_and_accept(uint16_t port,
                                      uint16_t* bound_port = nullptr);

  /// Client side: connect to host:port (retries briefly so tests can
  /// start both ends concurrently).
  static TcpChannel connect(const std::string& host, uint16_t port);

  TcpChannel(TcpChannel&& o) noexcept;
  TcpChannel& operator=(TcpChannel&&) = delete;
  ~TcpChannel() override;

  void send_bytes(const void* data, size_t n) override;
  void recv_bytes(void* data, size_t n) override;
  size_t recv_some(void* data, size_t min_n, size_t max_n) override;

  /// Shut both directions down without closing the fd. A thread blocked
  /// in recv on this channel wakes with a "peer closed" error — the
  /// server's forced-shutdown path for idle sessions.
  void shutdown();

  /// Bound every receive: a recv that sees no bytes for `ms`
  /// milliseconds throws instead of blocking forever (SO_RCVTIMEO).
  /// 0 restores the blocking default. Backs the server's per-session
  /// idle timeout so a stalled client cannot pin a session slot.
  void set_recv_timeout_ms(uint64_t ms);

  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }
  void reset_counters() override {
    sent_ = 0;
    received_ = 0;
  }

 private:
  friend class TcpListener;
  explicit TcpChannel(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

/// Reusable listening socket bound to loopback. accept() yields one
/// connected TcpChannel per client; close() (from any thread) unblocks a
/// pending accept, which then throws — the server shutdown path.
class TcpListener {
 public:
  /// Bind + listen on `port` (0 = ephemeral) with the given backlog.
  explicit TcpListener(uint16_t port, int backlog = 16);
  TcpListener(TcpListener&& o) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  ~TcpListener();

  uint16_t port() const { return port_; }

  /// Block until a client connects. Throws std::runtime_error once the
  /// listener has been closed.
  TcpChannel accept();

  /// Stop accepting: shuts the listening socket down (waking a blocked
  /// accept(), which then throws) but defers releasing the fd to the
  /// destructor so a racing accept() can never touch a recycled fd.
  /// Safe to call concurrently with accept() and idempotent.
  void close();

 private:
  // Atomic: close() runs from the server's stop path while the accept
  // thread is reading the fd.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace deepsecure
