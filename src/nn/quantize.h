// Fixed-point quantization of trained networks: flattening weights in
// the evaluator-input traversal order used by the circuit compiler, and
// a fixed-point reference forward pass for accuracy evaluation of the
// quantized model without building circuits.
#pragma once

#include "fixed/fixed_point.h"
#include "nn/network.h"

namespace deepsecure::nn {

/// Flatten all parameters in circuit order. Dense layers with a sparsity
/// mask contribute only unmasked weights (then biases); layer order is
/// network order.
std::vector<Fixed> quantize_weights(const Network& net, FixedFormat fmt);

/// Fixed-point forward pass (Q-format arithmetic with truncating
/// multiplies — bit-exact with the circuit datapath for supported
/// layers: dense, conv, max/mean pool, ReLU/Tanh/Sigmoid via exact LUT
/// rounding on representable inputs).
std::vector<Fixed> fixed_forward(const Network& net, const VecF& x,
                                 FixedFormat fmt);

size_t fixed_predict(const Network& net, const VecF& x, FixedFormat fmt);

/// Accuracy of the fixed-point model over a dataset — quantifies the
/// paper's "no accuracy loss at 16 bits" claim.
float fixed_accuracy(const Network& net, const std::vector<VecF>& xs,
                     const std::vector<size_t>& ys, FixedFormat fmt);

/// Prepare a trained float network for fixed-point/GC deployment by
/// rescaling weights so every pre-activation fits the format's range
/// (otherwise the circuit's wrap-around arithmetic corrupts results).
///
/// For positively-homogeneous chains (ReLU/pool/identity) the rescaling
/// is exact: scaling (W_l, b_l) by per-layer factors preserves argmax.
/// For saturating activations (tanh/sigmoid) only the final dense layer
/// is scaled (always argmax-safe); intermediate layers are left alone
/// and the returned report flags any residual overflow risk.
struct ScaleReport {
  std::vector<double> layer_scale;
  double max_preactivation_before = 0.0;
  double max_preactivation_after = 0.0;
  bool fully_normalized = true;  // false if saturating layers blocked it
};
ScaleReport scale_for_fixed(Network& net, const std::vector<VecF>& calib,
                            FixedFormat fmt = kDefaultFormat,
                            double headroom = 0.45);

}  // namespace deepsecure::nn
