#include "synth/gate_count.h"

#include <map>
#include <mutex>

#include "synth/divider.h"
#include "synth/mult.h"

namespace deepsecure::synth {
namespace {

GateCount from_stats(const CircuitStats& s) {
  return GateCount{s.num_xor, s.num_and};
}

GateCount count_built(Builder&& b) {
  Circuit c = std::move(b).build();
  return from_stats(c.stats());
}

BlockCosts measure_blocks(FixedFormat fmt) {
  BlockCosts costs;
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    const Bus y = input_fixed(b, Party::kEvaluator, fmt);
    b.outputs(add(b, x, y));
    costs.add = count_built(std::move(b));
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    const Bus y = input_fixed(b, Party::kEvaluator, fmt);
    b.outputs(mult_fixed(b, x, y, fmt.frac_bits));
    costs.mult = count_built(std::move(b));
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    const Bus y = input_fixed(b, Party::kEvaluator, fmt);
    b.outputs(div_fixed(b, x, y, fmt.frac_bits));
    costs.div = count_built(std::move(b));
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    b.outputs(relu(b, x));
    costs.relu = count_built(std::move(b));
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    const Bus y = input_fixed(b, Party::kEvaluator, fmt);
    b.outputs(max_signed(b, x, y));
    costs.max = count_built(std::move(b));
  }
  {
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    b.outputs(mult_const_fixed(b, x, 0.25, fmt));
    costs.mean4 = count_built(std::move(b));
  }
  for (int k = 0; k < 10; ++k) {
    const auto kind = static_cast<ActKind>(k);
    if (kind == ActKind::kIdentity) {
      costs.act[k] = GateCount{};
      continue;
    }
    Builder b;
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    b.outputs(activation(b, x, kind, fmt));
    costs.act[k] = count_built(std::move(b));
  }
  return costs;
}

}  // namespace

GateCount count_circuit(const Circuit& c) { return from_stats(c.stats()); }

const BlockCosts& block_costs(FixedFormat fmt) {
  static std::mutex mu;
  static std::map<std::pair<size_t, size_t>, BlockCosts> cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(fmt.total_bits, fmt.frac_bits);
  auto it = cache.find(key);
  if (it == cache.end()) it = cache.emplace(key, measure_blocks(fmt)).first;
  return it->second;
}

std::vector<GateCount> count_model_layers(const ModelSpec& spec) {
  const BlockCosts& c = block_costs(spec.fmt);
  std::vector<GateCount> out;
  Shape3 shape = spec.input;
  for (const auto& layer : spec.layers) {
    GateCount g;
    if (const auto* fc = std::get_if<FcLayer>(&layer)) {
      const size_t in = shape.flat();
      uint64_t macs = 0, adds = 0;
      for (size_t o = 0; o < fc->out; ++o) {
        uint64_t nnz = 0;
        if (fc->mask.empty()) {
          nnz = in;
        } else {
          for (size_t i = 0; i < in; ++i) nnz += fc->mask[o * in + i] ? 1 : 0;
        }
        macs += nnz;
        adds += nnz > 0 ? nnz - 1 : 0;
        if (fc->has_bias) adds += 1;
      }
      g += c.mult * macs;
      g += c.add * adds;
    } else if (const auto* conv = std::get_if<ConvLayer>(&layer)) {
      const Shape3 os = layer_output_shape(shape, layer);
      const uint64_t per_out = shape.c * conv->k * conv->k;
      const uint64_t outs = os.flat();
      g += c.mult * (outs * per_out);
      g += c.add * (outs * (per_out - 1 + (conv->has_bias ? 1 : 0)));
    } else if (const auto* pool = std::get_if<PoolLayer>(&layer)) {
      const Shape3 os = layer_output_shape(shape, layer);
      const uint64_t window = pool->k * pool->k;
      if (pool->kind == PoolKind::kMax) {
        g += c.max * (os.flat() * (window - 1));
      } else {
        g += c.add * (os.flat() * (window - 1));
        g += c.mean4 * os.flat();
      }
    } else if (const auto* act = std::get_if<ActLayer>(&layer)) {
      g += c.act[static_cast<int>(act->kind)] * shape.flat();
    } else if (std::holds_alternative<ArgmaxLayer>(layer)) {
      // (n-1) CMP+MUX steps plus the index muxes (clog2(n) bits each).
      const uint64_t n = shape.flat();
      if (n > 1) {
        g += c.max * (n - 1);
        const uint64_t idx_bits = std::max<size_t>(1, clog2(n));
        g += GateCount{2 * idx_bits, idx_bits} * (n - 1);
      }
    }
    out.push_back(g);
    shape = layer_output_shape(shape, layer);
  }
  return out;
}

GateCount count_model(const ModelSpec& spec) {
  GateCount total;
  for (const GateCount& g : count_model_layers(spec)) total += g;
  return total;
}

}  // namespace deepsecure::synth
