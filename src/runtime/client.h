// Client driver for the streaming inference server: the data owner
// (Alice, garbler). Connects over TCP, performs the session handshake
// (chain fingerprint + wire-format negotiation), and then runs any
// number of secure inferences over one session — the base-OT setup and
// the OT-extension state amortize across requests, and the garbled-table
// stream is framed so the server evaluates while the client is still
// garbling later windows.
#pragma once

#include <memory>
#include <string>

#include "fixed/fixed_point.h"
#include "net/tcp_channel.h"
#include "runtime/streaming.h"
#include "synth/layer_circuits.h"

namespace deepsecure::runtime {

struct ClientConfig {
  StreamConfig stream;
  /// Label-PRG seed; zero draws from OS entropy (per-session seeds).
  Block seed{};
};

class InferenceClient {
 public:
  /// `spec` is the public model architecture — the client compiles the
  /// same chain the server compiled and the handshake cross-checks the
  /// fingerprints.
  InferenceClient(const std::string& host, uint16_t port,
                  const synth::ModelSpec& spec, ClientConfig cfg = {});
  ~InferenceClient();

  InferenceClient(const InferenceClient&) = delete;
  InferenceClient& operator=(const InferenceClient&) = delete;

  /// One secure inference: encodes `sample` in the chain's fixed-point
  /// format and returns the predicted label index.
  size_t infer(const std::vector<float>& sample);

  /// Raw-bit variant (caller did the encoding).
  BitVec infer_bits(const BitVec& data_bits);

  /// Phase timings accumulated across all inferences on this session.
  const SessionTrace& trace() const { return garbler_->trace(); }

  /// Orderly goodbye; further infer calls are invalid. Also run by the
  /// destructor if still open.
  void close();

  size_t input_bits() const;

 private:
  std::vector<Circuit> chain_;
  FixedFormat fmt_;
  TcpChannel transport_;
  std::unique_ptr<StreamingGarbler> garbler_;
  bool open_ = false;
};

}  // namespace deepsecure::runtime
