// Quickstart: train a tiny model on synthetic data, then classify one
// private sample with the full DeepSecure GC protocol (client = garbler
// owning the sample, server = evaluator owning the weights).
//
//   $ ./quickstart
#include <cstdio>

#include "core/deepsecure.h"
#include "data/synthetic.h"

using namespace deepsecure;

int main() {
  std::printf("DeepSecure quickstart\n=====================\n\n");

  // --- Server side: train a model on (synthetic) private data. --------
  data::SyntheticConfig cfg;
  cfg.features = 32;
  cfg.classes = 4;
  cfg.samples = 400;
  const nn::Dataset ds = data::make_subspace_dataset(cfg);
  const nn::Split split = nn::split_dataset(ds, 0.8);

  Rng rng(1);
  nn::Network model(nn::Shape{1, 1, 32});
  model.dense(24, rng).act(nn::Act::kTanh).dense(4, rng);
  nn::TrainConfig tc;
  tc.epochs = 12;
  nn::train(model, split.train, tc);
  std::printf("server: trained model, test accuracy %.1f%%\n",
              100.0 * nn::accuracy(model, split.test));
  nn::scale_for_fixed(model, split.train.x);  // fit the Q(16,12) datapath

  // --- Client side: classify a private sample via Yao's GC. -----------
  const nn::VecF& sample = split.test.x[0];
  SecureInferenceOptions opt;  // CORDIC Tanh, Q(16,12), per-layer netlists
  const SecureInferenceResult res = secure_infer(model, sample, opt);

  std::printf("\nsecure inference:\n");
  std::printf("  predicted label     : %zu (true: %zu)\n", res.label,
              split.test.y[0]);
  std::printf("  non-XOR gates       : %llu\n",
              static_cast<unsigned long long>(res.gates.num_non_xor));
  std::printf("  XOR gates (free)    : %llu\n",
              static_cast<unsigned long long>(res.gates.num_xor));
  std::printf("  client->server bytes: %.2f MB\n",
              static_cast<double>(res.client_to_server_bytes) / 1e6);
  std::printf("  server->client bytes: %.2f KB\n",
              static_cast<double>(res.server_to_client_bytes) / 1e3);
  std::printf("  wall time           : %.3f s\n", res.wall_seconds);

  // Cross-check against the plaintext fixed-point model.
  const size_t expect = nn::fixed_predict(model, sample, opt.fmt);
  std::printf("  plaintext fixed-point model agrees: %s\n",
              res.label == expect ? "yes" : "NO (bug!)");
  return res.label == expect ? 0 : 1;
}
