// Signed fixed-point divider (restoring shift-subtract). Used by the
// CORDIC Tanh realization (sinh/cosh) and exposed as the DIV entry of
// Table 3.
#pragma once

#include "synth/int_blocks.h"

namespace deepsecure::synth {

/// Unsigned integer division a / y, both n bits; returns the n-bit
/// quotient (y == 0 yields all-ones, the natural output of the array).
Bus div_unsigned(Builder& b, const Bus& a, const Bus& y);

/// Signed division with quotient truncated toward zero.
Bus div_signed(Builder& b, const Bus& a, const Bus& y);

/// Fixed-point division: (a << frac) / y with signs handled; widths are
/// managed internally so the pre-shift does not overflow.
Bus div_fixed(Builder& b, const Bus& a, const Bus& y, size_t frac);

}  // namespace deepsecure::synth
