// BufferedChannel: small-message coalescing must be transparent — same
// bytes, same protocol semantics — for arbitrary send/recv interleavings
// over both the in-memory pair and a real TCP socket.
#include <gtest/gtest.h>

#include <thread>

#include "net/buffered_channel.h"
#include "net/mem_channel.h"
#include "net/tcp_channel.h"
#include "support/bits.h"
#include "support/rng.h"

namespace deepsecure {
namespace {

TEST(BufferedChannel, PingPongWithoutExplicitFlush) {
  // Request/response with tiny messages: the flush-before-recv rule must
  // keep the conversation alive with no manual flush calls.
  ChannelPair pair = make_channel_pair();
  BufferedChannel a(*pair.a, 64);
  std::thread peer([&] {
    BufferedChannel b(*pair.b, 64);
    for (int i = 0; i < 50; ++i) {
      const uint64_t v = b.recv_u64();
      b.send_u64(v * 2);
    }
  });
  for (uint64_t i = 0; i < 50; ++i) {
    a.send_u64(i);
    EXPECT_EQ(a.recv_u64(), i * 2);
  }
  peer.join();
}

TEST(BufferedChannel, MixedSizesAndLargePassthrough) {
  ChannelPair pair = make_channel_pair();
  Rng rng(606);
  std::vector<uint8_t> big(300000);
  for (auto& b : big) b = static_cast<uint8_t>(rng.next_u64());

  std::thread sender([&] {
    BufferedChannel ch(*pair.a, 1 << 10);
    ch.send_bit(1);
    ch.send_u64(42);
    ch.send_bytes(big.data(), big.size());  // > capacity: direct path
    BitVec bits{1, 0, 1, 1, 0};
    ch.send_bits(bits);
    ch.flush();
  });
  BufferedChannel ch(*pair.b, 1 << 10);
  EXPECT_EQ(ch.recv_bit(), 1u);
  EXPECT_EQ(ch.recv_u64(), 42u);
  std::vector<uint8_t> got(big.size());
  ch.recv_bytes(got.data(), got.size());
  EXPECT_EQ(got, big);
  EXPECT_EQ(ch.recv_bits(), (BitVec{1, 0, 1, 1, 0}));
  sender.join();
}

TEST(BufferedChannel, CountsLogicalPayloadBytes) {
  ChannelPair pair = make_channel_pair();
  BufferedChannel a(*pair.a, 1 << 10);
  a.send_u64(7);
  a.send_bit(1);
  EXPECT_EQ(a.bytes_sent(), 9u);  // counted at send time, not flush time
  a.flush();
  EXPECT_EQ(a.bytes_sent(), 9u);
  EXPECT_EQ(pair.a->bytes_sent(), 9u);  // one coalesced transport write

  std::thread peer([&] {
    uint8_t sink[9];
    pair.b->recv_bytes(sink, sizeof(sink));
  });
  peer.join();
}

TEST(BufferedChannel, BulkBlockHelpersOverTcp) {
  // send_blocks/recv_blocks bulk path + buffering over a real socket.
  TcpListener listener(0);
  Rng rng(909);
  std::vector<Block> blocks(1000);
  for (auto& b : blocks) b = Block{rng.next_u64(), rng.next_u64()};

  std::thread server([&] {
    TcpChannel raw = listener.accept();
    BufferedChannel ch(raw, 1 << 12);
    std::vector<Block> got(blocks.size());
    ch.recv_blocks(got.data(), got.size());
    ASSERT_EQ(got.size(), blocks.size());
    for (size_t i = 0; i < got.size(); ++i) ASSERT_TRUE(got[i] == blocks[i]);
    ch.send_u64(1234);
  });
  TcpChannel raw = TcpChannel::connect("127.0.0.1", listener.port());
  BufferedChannel ch(raw, 1 << 12);
  ch.send_blocks(blocks.data(), blocks.size());
  EXPECT_EQ(ch.recv_u64(), 1234u);
  server.join();
}

TEST(BufferedChannel, RecvSomeNeverBlocksPastMin) {
  ChannelPair pair = make_channel_pair();
  pair.a->send_bytes("abcdefgh", 8);
  BufferedChannel b(*pair.b, 1 << 10);
  uint8_t buf[64];
  // min 4, max 64: must return with >= 4 without waiting for 64.
  const size_t got = b.recv_some(buf, 4, sizeof(buf));
  EXPECT_GE(got, 4u);
  EXPECT_LE(got, 8u);
}

}  // namespace
}  // namespace deepsecure
