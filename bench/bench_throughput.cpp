// Section 4.4 reproduction (google-benchmark): effective garbling /
// evaluation throughput in gates per second. The paper reports 2.56M
// non-XOR gates/s and 5.11M XOR gates/s end-to-end on an i7-2600.
#include <benchmark/benchmark.h>

#include "circuit/builder.h"
#include "gc/garble.h"
#include "net/null_channel.h"
#include "net/party.h"

using namespace deepsecure;

namespace {

Circuit make_chain(size_t gates, bool use_and) {
  Builder b("chain", /*enable_cse=*/false);
  std::vector<Wire> ring;
  for (int i = 0; i < 64; ++i) ring.push_back(b.input(Party::kGarbler));
  for (size_t g = 0; g < gates; ++g) {
    const Wire a = ring[g % ring.size()];
    const Wire y = ring[(g + 7) % ring.size()];
    ring[g % ring.size()] = use_and ? b.and_(a, y) : b.xor_(a, y);
  }
  b.output(ring[0]);
  return b.build();
}

void run_once(const Circuit& c) {
  run_two_party(
      [&](Channel& ch) {
        Garbler g(ch, Block{1, 2});
        const Labels zeros = g.fresh_zeros(c.garbler_inputs.size());
        g.send_active(BitVec(c.garbler_inputs.size(), 0), zeros);
        const Labels out = g.garble(c, zeros, {}, {});
        g.decode_outputs(out);
      },
      [&](Channel& ch) {
        Evaluator e(ch);
        const Labels in = e.recv_active(c.garbler_inputs.size());
        const Labels out = e.evaluate(c, in, {}, {});
        e.send_outputs(out);
      });
}

void BM_GarbleEvalNonXor(benchmark::State& state) {
  const size_t gates = static_cast<size_t>(state.range(0));
  const Circuit c = make_chain(gates, true);
  for (auto _ : state) run_once(c);
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(gates) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GarbleEvalNonXor)->Arg(1 << 18)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_GarbleEvalXor(benchmark::State& state) {
  const size_t gates = static_cast<size_t>(state.range(0));
  const Circuit c = make_chain(gates, false);
  for (auto _ : state) run_once(c);
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(gates) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GarbleEvalXor)->Arg(1 << 20)->Unit(benchmark::kMillisecond)->UseRealTime();

// Garbler-side only (no channel/eval): the raw half-gates rate.
void BM_GarbleOnlyNonXor(benchmark::State& state) {
  const size_t gates = static_cast<size_t>(state.range(0));
  const Circuit c = make_chain(gates, true);

  NullChannel sink;  // swallows tables without a peer

  Garbler g(sink, Block{3, 4});
  const Labels zeros = g.fresh_zeros(c.garbler_inputs.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.garble(c, zeros, {}, {}));
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(gates) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GarbleOnlyNonXor)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
