#include "synth/mult.h"

#include <stdexcept>

namespace deepsecure::synth {

Bus mult_fixed(Builder& b, const Bus& a, const Bus& y, size_t frac) {
  if (a.size() != y.size())
    throw std::invalid_argument("mult width mismatch");
  const size_t n = a.size();
  const size_t w = n + frac;  // accumulate mod 2^(n+frac)

  // Two's-complement trick: with a, y sign-extended to width w,
  //   a*y mod 2^w = sum_{i<n} y_i*(a << i)  +  y_{n-1}*((-a) << n) mod 2^w
  // because the sign-extension rows i >= n collapse to -a*2^n.
  const Bus a_ext = sign_extend(a, w);
  const Bus neg_a = negate(b, a_ext);

  Bus acc = constant_bus(b, 0, w);
  bool acc_zero = true;
  auto accumulate = [&](const Bus& row) {
    // Skip rows the builder folded to all-zero (constant multiplier bits);
    // adding them would still emit carry logic.
    bool all_zero = true;
    for (Wire wr : row) all_zero = all_zero && (wr == kConst0);
    if (all_zero) return;
    if (acc_zero) {
      acc = row;
      acc_zero = false;
    } else {
      acc = add(b, acc, row);
    }
  };

  for (size_t i = 0; i < n && i < w; ++i) {
    // Partial product y_i * (a_ext << i): bits below i are zero.
    Bus row(w, b.const_bit(false));
    for (size_t j = i; j < w; ++j) row[j] = b.and_(y[i], a_ext[j - i]);
    accumulate(row);
  }
  if (n < w) {
    Bus row(w, b.const_bit(false));
    for (size_t j = n; j < w; ++j) row[j] = b.and_(y[n - 1], neg_a[j - n]);
    accumulate(row);
  }

  // Result window [frac, frac + n).
  Bus out(n);
  for (size_t i = 0; i < n; ++i) out[i] = acc[frac + i];
  return out;
}

Bus mult_const_fixed(Builder& b, const Bus& a, double c, FixedFormat fmt) {
  const Bus cb = constant_fixed(b, c, fmt);
  return mult_fixed(b, a, cb, fmt.frac_bits);
}

}  // namespace deepsecure::synth
