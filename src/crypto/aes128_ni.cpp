// AES-NI backend. Compiled only when the toolchain accepts -maes; callers
// must gate on aes128_ni_available().
#include "crypto/aes128.h"

#include <wmmintrin.h>

namespace deepsecure::detail {
namespace {

inline __m128i load(Block b) {
  return _mm_set_epi64x(static_cast<long long>(b.hi),
                        static_cast<long long>(b.lo));
}

inline Block store(__m128i v) {
  alignas(16) uint64_t out[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(out), v);
  return Block{out[0], out[1]};
}

}  // namespace

Block aes128_encrypt_ni(const Aes128Key& key, Block pt) {
  __m128i s = _mm_xor_si128(load(pt), load(key.rounds[0]));
  for (int r = 1; r < 10; ++r) s = _mm_aesenc_si128(s, load(key.rounds[r]));
  s = _mm_aesenclast_si128(s, load(key.rounds[10]));
  return store(s);
}

void aes128_encrypt_batch_ni(const Aes128Key& key, Block* blocks, size_t n) {
  __m128i rk[11];
  for (int r = 0; r <= 10; ++r) rk[r] = load(key.rounds[r]);

  size_t i = 0;
  // 8-wide pipelining: AESENC has multi-cycle latency but single-cycle
  // throughput on every AES-NI core, so eight independent states hide the
  // latency completely.
  for (; i + 8 <= n; i += 8) {
    __m128i s[8];
    for (int j = 0; j < 8; ++j) s[j] = _mm_xor_si128(load(blocks[i + j]), rk[0]);
    for (int r = 1; r < 10; ++r)
      for (int j = 0; j < 8; ++j) s[j] = _mm_aesenc_si128(s[j], rk[r]);
    for (int j = 0; j < 8; ++j)
      blocks[i + j] = store(_mm_aesenclast_si128(s[j], rk[10]));
  }
  for (; i + 4 <= n; i += 4) {
    __m128i s0 = _mm_xor_si128(load(blocks[i + 0]), rk[0]);
    __m128i s1 = _mm_xor_si128(load(blocks[i + 1]), rk[0]);
    __m128i s2 = _mm_xor_si128(load(blocks[i + 2]), rk[0]);
    __m128i s3 = _mm_xor_si128(load(blocks[i + 3]), rk[0]);
    for (int r = 1; r < 10; ++r) {
      s0 = _mm_aesenc_si128(s0, rk[r]);
      s1 = _mm_aesenc_si128(s1, rk[r]);
      s2 = _mm_aesenc_si128(s2, rk[r]);
      s3 = _mm_aesenc_si128(s3, rk[r]);
    }
    blocks[i + 0] = store(_mm_aesenclast_si128(s0, rk[10]));
    blocks[i + 1] = store(_mm_aesenclast_si128(s1, rk[10]));
    blocks[i + 2] = store(_mm_aesenclast_si128(s2, rk[10]));
    blocks[i + 3] = store(_mm_aesenclast_si128(s3, rk[10]));
  }
  for (; i < n; ++i) blocks[i] = aes128_encrypt_ni(key, blocks[i]);
}

}  // namespace deepsecure::detail
