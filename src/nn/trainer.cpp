#include "nn/trainer.h"

namespace deepsecure::nn {

TrainReport train(Network& net, const Dataset& data, const TrainConfig& cfg) {
  TrainReport report;
  Rng rng(cfg.shuffle_seed);
  float lr = cfg.lr;
  for (size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = rng.permutation(data.size());
    float loss_sum = 0.0f;
    for (size_t i : order)
      loss_sum += net.train_step(data.x[i], data.y[i], lr, cfg.momentum);
    report.epoch_loss.push_back(loss_sum / static_cast<float>(data.size()));
    lr *= cfg.lr_decay;
  }
  report.final_train_accuracy = accuracy(net, data);
  return report;
}

float accuracy(const Network& net, const Dataset& data) {
  if (data.size() == 0) return 0.0f;
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i)
    correct += net.predict(data.x[i]) == data.y[i] ? 1 : 0;
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

Split split_dataset(const Dataset& data, double train_fraction,
                    uint64_t seed) {
  Rng rng(seed);
  const auto order = rng.permutation(data.size());
  const size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(data.size()));
  Split s;
  s.train.num_classes = s.test.num_classes = data.num_classes;
  for (size_t i = 0; i < data.size(); ++i) {
    Dataset& dst = i < n_train ? s.train : s.test;
    dst.x.push_back(data.x[order[i]]);
    dst.y.push_back(data.y[order[i]]);
  }
  return s;
}

}  // namespace deepsecure::nn
