// Lock-free single-producer/single-consumer ring buffer for the
// server's hot intra-host handoffs (MaterialPool -> lane writer,
// garbler output -> frame writer, lane credits-as-slots). The design
// follows firedancer's fd_mcache fragment rings: power-of-two slot
// count, every slot stamped with the sequence number of the value it
// holds, and the producer/consumer cursors on their own cache lines so
// the two sides never false-share.
//
// Per-slot sequence protocol (Vyukov bounded queue, specialized to one
// producer and one consumer):
//   slot.seq == index          slot is EMPTY, awaiting value #index
//   slot.seq == index + 1      slot is FULL, holding value #index
// The producer claims slot (head & mask) only when its seq equals
// head (release-stores seq = head + 1 after moving the value in); the
// consumer takes slot (tail & mask) only when its seq equals tail + 1
// (release-stores seq = tail + capacity when done, marking the slot
// empty for the producer's next lap). Because each side owns exactly
// one cursor, try_push/try_pop are wait-free; a reader that ever
// observes a slot seq ahead of what its own cursor implies has been
// overrun (only possible through misuse: two producers, or a consumer
// cursor manipulated externally) — sequence_of() exposes the raw slot
// seq so tests can assert exactly that invariant.
//
// Memory ordering: the seq store is the publication point (release),
// matched by the acquire load on the opposite side; head_/tail_ are
// only advanced by their owning thread and read relaxed by the other
// side for size estimates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace deepsecure {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr size_t kCacheLine = std::hardware_destructive_interference_size;
#else
inline constexpr size_t kCacheLine = 64;
#endif

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::vector<Slot>(cap);
    for (size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full (the consumer
  /// has not yet freed the slot this value would land in).
  bool try_push(T&& v) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[head & mask_];
    if (s.seq.load(std::memory_order_acquire) != head) return false;  // full
    s.value = std::move(v);
    s.seq.store(head + 1, std::memory_order_release);  // publish
    head_.store(head + 1, std::memory_order_release);
    return true;
  }
  bool try_push(const T& v) {
    T copy = v;
    return try_push(std::move(copy));
  }

  /// Consumer side: borrow the oldest value without consuming it, or
  /// nullptr when empty. Only the consumer thread may call this; the
  /// slot stays FULL, so the producer cannot touch it until try_pop.
  T* front() {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    Slot& s = slots_[tail & mask_];
    if (s.seq.load(std::memory_order_acquire) != tail + 1) return nullptr;
    return &s.value;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    Slot& s = slots_[tail & mask_];
    if (s.seq.load(std::memory_order_acquire) != tail + 1) return false;  // empty
    out = std::move(s.value);
    s.value = T{};  // drop payload now, not a full lap later
    s.seq.store(tail + capacity(), std::memory_order_release);  // free slot
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Values pushed minus values popped. Exact on either owning thread;
  /// a racing reader sees a value at most one handoff stale.
  size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<size_t>(head - tail) : 0;
  }
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity(); }

  /// Total values ever pushed / popped (monotonic cursors). The atomics
  /// are exposed so callers can park on them with std::atomic::wait /
  /// notify instead of spinning — see net/ring_channel.h.
  std::atomic<uint64_t>& head() { return head_; }
  std::atomic<uint64_t>& tail() { return tail_; }
  const std::atomic<uint64_t>& head() const { return head_; }
  const std::atomic<uint64_t>& tail() const { return tail_; }

  /// Raw sequence stamp of the slot that value #`cursor` occupies —
  /// the overrun-detection hook: a consumer at cursor c observing
  /// sequence_of(c) > c + 1 has been lapped. Test/diagnostic use.
  uint64_t sequence_of(uint64_t cursor) const {
    return slots_[cursor & mask_].seq.load(std::memory_order_acquire);
  }

 private:
  // Slot: the per-slot sequence stamp doubles as the full/empty flag
  // and the overrun detector (see file header).
  struct Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  size_t mask_ = 0;
  std::vector<Slot> slots_;
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};  // producer cursor
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};  // consumer cursor
};

}  // namespace deepsecure
