// Width-aware netlist scheduling pass (circuit/schedule.h): the
// scheduled order must stay a valid topological order with unchanged
// plaintext semantics on randomized DAGs, must widen AND-batch windows
// on the arithmetic netlists it was built for (>= 2x mean width on
// matvec/layer circuits — the PR's acceptance bar), and the GC protocol
// over scheduled circuits must agree with plaintext and with the
// unscheduled oracle path, with both parties fingerprinting the same
// scheduled netlist.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "circuit/bench_circuits.h"
#include "circuit/builder.h"
#include "circuit/schedule.h"
#include "gc/batch_walk.h"
#include "gc/garble.h"
#include "gc/material.h"
#include "net/party.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "synth/layer_circuits.h"
#include "synth/matvec.h"

namespace deepsecure {
namespace {

// Random DAG over the full gate basis, optionally lane-tagged, with
// deliberately hazard-heavy structure (fresh gates feed later gates).
Circuit random_dag(Rng& rng, int n_gates, bool with_lanes) {
  Builder b;
  std::vector<Wire> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kGarbler));
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kEvaluator));
  for (int g = 0; g < n_gates; ++g) {
    if (with_lanes && g % 7 == 0)
      b.set_lane(static_cast<uint32_t>(rng.next_below(5)));
    const Wire a = pool[rng.next_below(pool.size())];
    const Wire y = pool[rng.next_below(pool.size())];
    switch (rng.next_below(5)) {
      case 0: pool.push_back(b.xor_(a, y)); break;
      case 1: pool.push_back(b.and_(a, y)); break;
      case 2: pool.push_back(b.or_(a, y)); break;
      case 3: pool.push_back(b.mux(a, y, pool[rng.next_below(pool.size())]));
        break;
      default: pool.push_back(b.not_(a)); break;
    }
  }
  for (int o = 0; o < 12; ++o)
    b.output(pool[pool.size() - 1 - static_cast<size_t>(o)]);
  return b.build();
}

TEST(Schedule, FuzzPreservesTopologyAndSemantics) {
  Rng rng(20260727);
  for (int trial = 0; trial < 25; ++trial) {
    const Circuit c = random_dag(rng, 300 + int(rng.next_below(300)),
                                 /*with_lanes=*/trial % 2 == 0);
    const ScheduleResult r = schedule_circuit(c);

    // Still a valid netlist: topological, no redefinitions, in-range.
    ASSERT_NO_THROW(r.circuit.validate());

    // gate_map is a permutation of [0, gates).
    ASSERT_EQ(r.gate_map.size(), c.gates.size());
    std::vector<uint32_t> sorted = r.gate_map;
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t i = 0; i < sorted.size(); ++i) ASSERT_EQ(sorted[i], i);

    // Same gates, same interface, same tallies.
    EXPECT_EQ(r.circuit.stats().num_and, c.stats().num_and);
    EXPECT_EQ(r.circuit.stats().num_xor, c.stats().num_xor);
    EXPECT_EQ(r.circuit.outputs, c.outputs);
    EXPECT_EQ(r.circuit.garbler_inputs, c.garbler_inputs);

    // Plaintext oracle unchanged on random inputs.
    for (int round = 0; round < 4; ++round) {
      BitVec g_bits(8), e_bits(8);
      for (auto& v : g_bits) v = rng.next_bool();
      for (auto& v : e_bits) v = rng.next_bool();
      ASSERT_EQ(r.circuit.eval(g_bits, e_bits), c.eval(g_bits, e_bits));
    }
  }
}

TEST(Schedule, NeverNarrowsWindowsOnRandomDags) {
  Rng rng(515);
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = random_dag(rng, 500, /*with_lanes=*/false);
    const WindowStats before = window_stats(c, kGcMaxBatchWindow);
    const WindowStats after =
        window_stats(*c.gc_scheduled(), kGcMaxBatchWindow);
    EXPECT_EQ(after.and_gates, before.and_gates);
    // Levelization bounds dependency flushes by the AND depth, which
    // construction order can only match or exceed.
    EXPECT_LE(after.flush_points, before.flush_points);
    EXPECT_GE(after.mean, before.mean);
  }
}

// The acceptance bar: >= 2x mean AND-window width on matvec and on the
// compiled per-layer model netlists (the carry-chain-heavy regime the
// pass exists for).
TEST(Schedule, DoublesMeanWindowWidthOnMatvec) {
  const Circuit c = synth::make_matvec_circuit(16, 8, kDefaultFormat);
  const WindowStats before = window_stats(c, kGcMaxBatchWindow);
  const WindowStats after = window_stats(*c.gc_scheduled(), kGcMaxBatchWindow);
  EXPECT_EQ(after.and_gates, before.and_gates);
  EXPECT_GE(after.mean, 2.0 * before.mean)
      << "unscheduled mean " << before.mean << ", scheduled " << after.mean;
}

TEST(Schedule, DoublesMeanWindowWidthOnModelLayers) {
  synth::ModelSpec spec;
  spec.name = "sched_cnn";
  spec.input = synth::Shape3{6, 6, 1};
  spec.layers.push_back(synth::ConvLayer{3, 1, 2, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{4, {}, true});
  const auto chain = synth::compile_model_layers(spec);
  ASSERT_FALSE(chain.empty());
  for (const Circuit& c : chain) {
    const WindowStats before = window_stats(c, kGcMaxBatchWindow);
    const WindowStats after =
        window_stats(*c.gc_scheduled(), kGcMaxBatchWindow);
    if (before.and_gates == 0) continue;  // nothing to widen
    if (before.flush_points == 0) {
      // Already a single full-width window (e.g. the elementwise ReLU
      // layer): scheduling must not regress it.
      EXPECT_GE(after.mean, before.mean) << c.name;
      continue;
    }
    EXPECT_GE(after.mean, 2.0 * before.mean)
        << c.name << ": unscheduled mean " << before.mean << ", scheduled "
        << after.mean;
  }
}

// Deferred free-XOR falls out of the reorder: on a netlist whose XOR
// consumers force a flush per AND under construction order, the
// scheduled order needs exactly one dependency flush per AND level.
TEST(Schedule, XorConsumersNoLongerForceFlushes) {
  const Circuit c = synth::make_matvec_circuit(8, 4, kDefaultFormat);
  const auto sched = c.gc_scheduled();
  // One flush point per AND level (minus the implicit first window).
  std::vector<uint32_t> wire_level(c.num_wires, 0);
  uint32_t depth = 0;
  for (const Gate& g : c.gates) {
    const uint32_t lvl = std::max(wire_level[g.a], wire_level[g.b]);
    wire_level[g.out] = lvl + (g.op == GateOp::kAnd ? 1 : 0);
    depth = std::max(depth, wire_level[g.out]);
  }
  EXPECT_LE(sched->gc_flush_points()->size(), depth);
}

// Record the constant-labels + table stream of one garbling.
class RecordChannel : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void recv_bytes(void*, size_t) override {
    throw std::logic_error("RecordChannel: recv not supported");
  }
  uint64_t bytes_sent() const override { return bytes.size(); }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override { bytes.clear(); }

  std::vector<uint8_t> bytes;
};

std::vector<uint8_t> garble_stream(const Circuit& c, Block seed,
                                   const GcOptions& opt) {
  RecordChannel ch;
  Garbler g(ch, seed, opt);
  const Labels gz = g.fresh_zeros(c.garbler_inputs.size());
  const Labels ez = g.fresh_zeros(c.evaluator_inputs.size());
  g.garble(c, gz, ez, {});
  return ch.bytes;
}

// Scalar and batched pipelines must stay byte-identical under the
// scheduled order too (tweaks and tables both follow the walked order).
TEST(Schedule, ScalarAndBatchedByteIdenticalOnScheduledOrder) {
  Rng rng(99);
  const Circuit c = random_dag(rng, 400, /*with_lanes=*/true);
  for (const bool sched : {false, true}) {
    GcOptions scalar, batched;
    scalar.pipeline = GcPipeline::kScalar;
    scalar.schedule = sched;
    batched.pipeline = GcPipeline::kBatched;
    batched.schedule = sched;
    EXPECT_EQ(garble_stream(c, Block{5, 7}, scalar),
              garble_stream(c, Block{5, 7}, batched))
        << "schedule=" << sched;
  }
  // Scheduling changes the stream order on this netlist (it is not the
  // identity permutation here) — the two modes are distinct wire formats.
  GcOptions on, off;
  on.schedule = true;
  off.schedule = false;
  EXPECT_NE(garble_stream(c, Block{5, 7}, on),
            garble_stream(c, Block{5, 7}, off));
}

// Full GC protocol equality over MemChannel: scheduled and unscheduled
// executions decode to the same plaintext result on random DAGs and on
// a real matvec netlist.
TEST(Schedule, TwoPartyScheduledMatchesPlaintextAndOracle) {
  Rng rng(777);
  std::vector<Circuit> circuits;
  for (int t = 0; t < 3; ++t)
    circuits.push_back(random_dag(rng, 350, /*with_lanes=*/t == 0));
  circuits.push_back(synth::make_matvec_circuit(4, 3, kDefaultFormat));

  for (const Circuit& c : circuits) {
    BitVec g_bits(c.garbler_inputs.size()), e_bits(c.evaluator_inputs.size());
    for (auto& v : g_bits) v = rng.next_bool();
    for (auto& v : e_bits) v = rng.next_bool();
    const BitVec expect = c.eval(g_bits, e_bits);

    for (const bool sched : {true, false}) {
      GcOptions opt;
      opt.schedule = sched;
      BitVec decoded;
      run_two_party(
          [&](Channel& ch) {
            Garbler g(ch, Block{42, 42}, opt);
            const Labels gz = g.fresh_zeros(g_bits.size());
            const Labels ez = g.fresh_zeros(e_bits.size());
            g.send_active(g_bits, gz);
            std::vector<Block> active(e_bits.size());
            for (size_t i = 0; i < e_bits.size(); ++i)
              active[i] = e_bits[i] ? (ez[i] ^ g.delta()) : ez[i];
            if (!active.empty())
              ch.send_bytes(active.data(), active.size() * sizeof(Block));
            decoded = g.decode_outputs(g.garble(c, gz, ez, {}));
          },
          [&](Channel& ch) {
            Evaluator e(ch, opt);
            const Labels gl = e.recv_active(g_bits.size());
            const Labels el = e.recv_active(e_bits.size());
            e.send_outputs(e.evaluate(c, gl, el, {}));
          });
      EXPECT_EQ(decoded, expect) << c.name << " schedule=" << sched;
    }
  }
}

// Evaluator-side window sharding: a pooled evaluator must produce the
// same decoded outputs as a single-threaded one (the shards reuse the
// garbler's per-shard tweak/table-order invariant).
TEST(Schedule, EvaluatorShardPoolMatchesSingleThreaded) {
  const Circuit c = synth::make_matvec_circuit(12, 6, kDefaultFormat);
  Rng rng(4242);
  BitVec g_bits(c.garbler_inputs.size()), e_bits(c.evaluator_inputs.size());
  for (auto& v : g_bits) v = rng.next_bool();
  for (auto& v : e_bits) v = rng.next_bool();
  const BitVec expect = c.eval(g_bits, e_bits);

  ThreadPool pool(3);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    GcOptions eopt;
    eopt.pool = p;
    eopt.min_shard_gates = 8;  // tiny windows still shard in this test
    BitVec decoded;
    run_two_party(
        [&](Channel& ch) {
          Garbler g(ch, Block{7, 9});
          const Labels gz = g.fresh_zeros(g_bits.size());
          const Labels ez = g.fresh_zeros(e_bits.size());
          g.send_active(g_bits, gz);
          std::vector<Block> active(e_bits.size());
          for (size_t i = 0; i < e_bits.size(); ++i)
            active[i] = e_bits[i] ? (ez[i] ^ g.delta()) : ez[i];
          ch.send_bytes(active.data(), active.size() * sizeof(Block));
          decoded = g.decode_outputs(g.garble(c, gz, ez, {}));
        },
        [&](Channel& ch) {
          Evaluator e(ch, eopt);
          const Labels gl = e.recv_active(g_bits.size());
          const Labels el = e.recv_active(e_bits.size());
          e.send_outputs(e.evaluate(c, gl, el, {}));
        });
    EXPECT_EQ(decoded, expect) << "eval pool=" << (p != nullptr);
  }
}

// Fingerprint regression: two independently compiled copies of the same
// model agree on the scheduled fingerprint (what the runtime handshake
// compares), and the offline artifact stamps that same value.
TEST(Schedule, FingerprintAgreesAcrossCompilesAndMaterial) {
  synth::ModelSpec spec;
  spec.name = "fp_model";
  spec.input = synth::Shape3{4, 4, 1};
  spec.layers.push_back(synth::ConvLayer{3, 1, 2, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{3, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});

  const auto garbler_side = synth::compile_model_layers(spec);
  const auto evaluator_side = synth::compile_model_layers(spec);
  EXPECT_EQ(chain_fingerprint(garbler_side, true),
            chain_fingerprint(evaluator_side, true));
  EXPECT_EQ(chain_fingerprint(garbler_side, false),
            chain_fingerprint(evaluator_side, false));
  // Scheduling actually reorders these netlists, so the two fingerprint
  // spaces differ — a scheduled endpoint cannot shake hands with an
  // unscheduled one.
  EXPECT_NE(chain_fingerprint(garbler_side, true),
            chain_fingerprint(garbler_side, false));

  GcOptions opt;
  opt.schedule = true;
  const GarbledMaterial mat = garble_offline(garbler_side, Block{1, 2}, opt);
  EXPECT_EQ(mat.fingerprint, chain_fingerprint(evaluator_side, true));
}

// window_stats (circuit/, can't see gc/) mirrors gc_batched_walk's
// drain policy rather than calling it. This guard keeps the two in
// lock-step: the widths window_stats reports must be exactly the
// window sizes an instrumented real walk drains.
TEST(Schedule, WindowStatsMatchesRealBatchedWalk) {
  Rng rng(606);
  std::vector<Circuit> circuits;
  circuits.push_back(synth::make_matvec_circuit(8, 4, kDefaultFormat));
  circuits.push_back(bench_circuits::and_chain(64));
  circuits.push_back(bench_circuits::wide_and(3 * kGcMaxBatchWindow + 17));
  circuits.push_back(random_dag(rng, 600, /*with_lanes=*/true));

  for (const Circuit& base : circuits) {
    for (const bool sched : {false, true}) {
      std::shared_ptr<const Circuit> keep;
      const Circuit& c = sched ? *(keep = base.gc_scheduled()) : base;

      std::vector<size_t> walked_widths;
      size_t pending = 0;
      gc_batched_walk(
          c, [](const Gate&) {},
          [&](const Gate&) { ++pending; },
          [&](bool /*level_boundary*/) {
            if (pending > 0) walked_widths.push_back(pending);
            pending = 0;
          });

      const WindowStats ws = window_stats(c, kGcMaxBatchWindow);
      ASSERT_EQ(ws.windows, walked_widths.size())
          << base.name << " sched=" << sched;
      size_t ands = 0, widest = 0;
      for (size_t w : walked_widths) {
        ands += w;
        widest = std::max(widest, w);
      }
      EXPECT_EQ(ws.and_gates, ands);
      EXPECT_EQ(ws.max, widest);
    }
  }
}

TEST(Schedule, ScheduledViewIsCachedAndInvalidated) {
  Circuit c = synth::make_matvec_circuit(4, 2, kDefaultFormat);
  const auto first = c.gc_scheduled();
  const auto second = c.gc_scheduled();
  EXPECT_EQ(first.get(), second.get());  // shared cached instance

  // Copies recompute (cache not inherited), same result.
  const Circuit copy = c;
  const auto copied = copy.gc_scheduled();
  EXPECT_NE(copied.get(), first.get());
  EXPECT_EQ(copied->gates.size(), first->gates.size());
  for (size_t i = 0; i < first->gates.size(); ++i) {
    EXPECT_EQ(copied->gates[i].out, first->gates[i].out);
  }
}

TEST(Schedule, LaneTagsSurviveSchedulingAndValidate) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kEvaluator);
  b.set_lane(3);
  const Wire u = b.and_(x, y);
  b.set_lane(9);
  const Wire v = b.and_(b.xor_(x, y), y);
  b.output(b.xor_(u, v));
  const Circuit c = b.build();
  ASSERT_EQ(c.gate_lanes.size(), c.gates.size());

  const ScheduleResult r = schedule_circuit(c);
  ASSERT_EQ(r.circuit.gate_lanes.size(), r.circuit.gates.size());
  for (size_t i = 0; i < r.gate_map.size(); ++i)
    EXPECT_EQ(r.circuit.gate_lanes[i], c.gate_lanes[r.gate_map[i]]);
}

}  // namespace
}  // namespace deepsecure
