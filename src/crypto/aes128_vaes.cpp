// VAES/AVX-512 backend: 16 blocks in flight as four 512-bit states.
// Compiled only when the toolchain accepts -mvaes -mavx512f; callers
// must gate on the vaes16 backend's available() check (VAES + AVX512F
// CPUID bits plus OS ZMM state via XGETBV).
#include "crypto/aes128.h"

#if defined(DEEPSECURE_VAES_COMPILED)

#include <immintrin.h>

namespace deepsecure::detail {
namespace {

// Block{lo,hi} is little-endian 128-bit memory, so four consecutive
// Blocks load directly as one 512-bit lane group.
inline __m512i load4(const Block* b) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(b));
}

inline void store4(Block* b, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(b), v);
}

}  // namespace

void aes128_encrypt_batch_vaes(const Aes128Key& key, Block* blocks, size_t n) {
  __m512i rk[11];
  for (int r = 0; r <= 10; ++r)
    rk[r] = _mm512_broadcast_i32x4(
        _mm_set_epi64x(static_cast<long long>(key.rounds[r].hi),
                       static_cast<long long>(key.rounds[r].lo)));

  size_t i = 0;
  // 16-wide: four 512-bit states keep the AES units saturated even at
  // 2-port throughput; _mm512_aesenc_epi128 applies the round per lane.
  for (; i + 16 <= n; i += 16) {
    __m512i s0 = _mm512_xor_si512(load4(blocks + i + 0), rk[0]);
    __m512i s1 = _mm512_xor_si512(load4(blocks + i + 4), rk[0]);
    __m512i s2 = _mm512_xor_si512(load4(blocks + i + 8), rk[0]);
    __m512i s3 = _mm512_xor_si512(load4(blocks + i + 12), rk[0]);
    for (int r = 1; r < 10; ++r) {
      s0 = _mm512_aesenc_epi128(s0, rk[r]);
      s1 = _mm512_aesenc_epi128(s1, rk[r]);
      s2 = _mm512_aesenc_epi128(s2, rk[r]);
      s3 = _mm512_aesenc_epi128(s3, rk[r]);
    }
    store4(blocks + i + 0, _mm512_aesenclast_epi128(s0, rk[10]));
    store4(blocks + i + 4, _mm512_aesenclast_epi128(s1, rk[10]));
    store4(blocks + i + 8, _mm512_aesenclast_epi128(s2, rk[10]));
    store4(blocks + i + 12, _mm512_aesenclast_epi128(s3, rk[10]));
  }
  for (; i + 4 <= n; i += 4) {
    __m512i s = _mm512_xor_si512(load4(blocks + i), rk[0]);
    for (int r = 1; r < 10; ++r) s = _mm512_aesenc_epi128(s, rk[r]);
    store4(blocks + i, _mm512_aesenclast_epi128(s, rk[10]));
  }
  if (i < n) {
    // Masked remainder: load the 1-3 leftover blocks into the low lanes
    // (2 qword lanes per block); AESENC on the zeroed garbage lanes is
    // harmless since the mask also gates the store.
    const __mmask8 m = static_cast<__mmask8>((1u << (2 * (n - i))) - 1u);
    __m512i s = _mm512_maskz_loadu_epi64(m, reinterpret_cast<const void*>(blocks + i));
    s = _mm512_xor_si512(s, rk[0]);
    for (int r = 1; r < 10; ++r) s = _mm512_aesenc_epi128(s, rk[r]);
    s = _mm512_aesenclast_epi128(s, rk[10]);
    _mm512_mask_storeu_epi64(reinterpret_cast<void*>(blocks + i), m, s);
  }
}

}  // namespace deepsecure::detail

#endif  // DEEPSECURE_VAES_COMPILED
