#include "synth/lut.h"

#include <stdexcept>

namespace deepsecure::synth {
namespace {

// Recursive mux tree on index bits [0, level). Selecting on the highest
// bit first keeps subtree sharing maximal for smooth tables.
Wire select_bit(Builder& b, const Bus& index, size_t level,
                const std::vector<int64_t>& table, size_t base, size_t bit) {
  if (level == 0) {
    const size_t i = std::min(base, table.size() - 1);
    const uint64_t v = static_cast<uint64_t>(table[i]);
    return b.const_bit(((v >> bit) & 1u) != 0);
  }
  const Wire lo = select_bit(b, index, level - 1, table, base, bit);
  const Wire hi = select_bit(b, index, level - 1, table,
                             base + (size_t{1} << (level - 1)), bit);
  return b.mux(index[level - 1], hi, lo);
}

}  // namespace

Bus lut(Builder& b, const Bus& index, const std::vector<int64_t>& table,
        size_t out_bits) {
  if (table.empty()) throw std::invalid_argument("lut: empty table");
  Bus out(out_bits);
  for (size_t bit = 0; bit < out_bits; ++bit)
    out[bit] = select_bit(b, index, index.size(), table, 0, bit);
  return out;
}

std::vector<int64_t> tabulate(double (*f)(double), size_t index_bits,
                              size_t frac, FixedFormat fmt) {
  const size_t entries = size_t{1} << index_bits;
  std::vector<int64_t> table(entries);
  const double scale = static_cast<double>(1ull << frac);
  for (size_t i = 0; i < entries; ++i) {
    const double x = static_cast<double>(i) / scale;
    table[i] = Fixed::from_double(f(x), fmt).raw();
  }
  return table;
}

}  // namespace deepsecure::synth
