// 128-bit block — the unit of garbled-circuit wire labels, AES state and
// OT messages. Kept as two uint64 halves so it works on any platform; the
// AES-NI path reinterprets it as __m128i internally.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace deepsecure {

struct Block {
  uint64_t lo = 0;
  uint64_t hi = 0;

  constexpr Block() = default;
  constexpr Block(uint64_t lo_, uint64_t hi_) : lo(lo_), hi(hi_) {}

  friend constexpr Block operator^(Block a, Block b) {
    return Block{a.lo ^ b.lo, a.hi ^ b.hi};
  }
  Block& operator^=(Block b) {
    lo ^= b.lo;
    hi ^= b.hi;
    return *this;
  }
  friend constexpr bool operator==(Block a, Block b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  /// Least-significant bit: the point-and-permute color bit.
  constexpr bool lsb() const { return (lo & 1u) != 0; }

  /// Multiply by x in GF(2^128) with the AES/GCM reduction polynomial.
  /// Used by the fixed-key garbling hash (pi(2X ^ T) ^ 2X ^ T).
  constexpr Block gf_double() const {
    const uint64_t carry = hi >> 63;
    Block r{lo << 1, (hi << 1) | (lo >> 63)};
    r.lo ^= carry * 0x87u;  // x^128 = x^7 + x^2 + x + 1
    return r;
  }

  void to_bytes(uint8_t out[16]) const {
    std::memcpy(out, &lo, 8);
    std::memcpy(out + 8, &hi, 8);
  }
  static Block from_bytes(const uint8_t in[16]) {
    Block b;
    std::memcpy(&b.lo, in, 8);
    std::memcpy(&b.hi, in + 8, 8);
    return b;
  }

  std::string hex() const;
};

inline constexpr Block kZeroBlock{};

inline std::string Block::hex() const {
  static const char* digits = "0123456789abcdef";
  uint8_t bytes[16];
  to_bytes(bytes);
  std::string s;
  s.reserve(32);
  for (int i = 15; i >= 0; --i) {
    s.push_back(digits[bytes[i] >> 4]);
    s.push_back(digits[bytes[i] & 0xF]);
  }
  return s;
}

}  // namespace deepsecure
