#include "cost/calibration.h"

#include "circuit/builder.h"
#include "gc/garble.h"
#include "gc/ot.h"
#include "net/party.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace deepsecure::cost {
namespace {

// Wide chains so gate evaluation, not channel latency, dominates.
Circuit make_and_chain(size_t gates) {
  Builder b("cal_and");
  std::vector<Wire> ring;
  for (int i = 0; i < 64; ++i) ring.push_back(b.input(Party::kGarbler));
  for (size_t g = 0; g < gates; ++g) {
    const Wire a = ring[g % ring.size()];
    const Wire y = ring[(g + 7) % ring.size()];
    ring[g % ring.size()] = b.and_(a, y);
  }
  b.output(ring[0]);
  return b.build();
}

Circuit make_xor_chain(size_t gates) {
  Builder b("cal_xor", /*enable_cse=*/false);
  std::vector<Wire> ring;
  for (int i = 0; i < 64; ++i) ring.push_back(b.input(Party::kGarbler));
  for (size_t g = 0; g < gates; ++g) {
    const Wire a = ring[g % ring.size()];
    const Wire y = ring[(g + 7) % ring.size()];
    ring[g % ring.size()] = b.xor_(a, y);
  }
  b.output(ring[0]);
  return b.build();
}

double run_circuit_rate(const Circuit& c, uint64_t gate_count,
                        double* garbler_ns_per_gate) {
  Stopwatch wall;
  double garble_s = 0.0;
  run_two_party(
      [&](Channel& ch) {
        Garbler g(ch, Block{123, 321});
        const Labels zeros = g.fresh_zeros(c.garbler_inputs.size());
        g.send_active(BitVec(c.garbler_inputs.size(), 0), zeros);
        Stopwatch sw;
        const Labels out = g.garble(c, zeros, {}, {});
        garble_s = sw.seconds();
        g.decode_outputs(out);
      },
      [&](Channel& ch) {
        Evaluator e(ch);
        const Labels labels = e.recv_active(c.garbler_inputs.size());
        const Labels out = e.evaluate(c, labels, {}, {});
        e.send_outputs(out);
      });
  const double total = wall.seconds();
  if (garbler_ns_per_gate != nullptr)
    *garbler_ns_per_gate = garble_s * 1e9 / static_cast<double>(gate_count);
  return static_cast<double>(gate_count) / total;
}

}  // namespace

Calibration calibrate(size_t gates) {
  Calibration cal;
  {
    const Circuit c = make_and_chain(gates);
    cal.non_xor_gates_per_s =
        run_circuit_rate(c, c.stats().num_and, &cal.ns_per_non_xor);
  }
  {
    const Circuit c = make_xor_chain(gates);
    cal.xor_gates_per_s =
        run_circuit_rate(c, c.stats().num_xor, &cal.ns_per_xor);
  }
  {
    const size_t m = 20000;
    Stopwatch sw;
    run_two_party(
        [&](Channel& ch) {
          Prg prg(Block{5, 6});
          OtExtSender s(ch);
          s.setup(prg);
          std::vector<Block> zeros(m);
          prg.next_blocks(zeros.data(), m);
          s.send_correlated(zeros, Block{1, 1});
        },
        [&](Channel& ch) {
          Prg prg(Block{7, 8});
          OtExtReceiver r(ch);
          r.setup(prg);
          BitVec choices(m);
          Rng rng(3);
          for (auto& b : choices) b = rng.next_bool();
          r.recv(choices);
        });
    cal.ot_per_s = static_cast<double>(m) / sw.seconds();
  }
  return cal;
}

}  // namespace deepsecure::cost
