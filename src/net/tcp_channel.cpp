#include "net/tcp_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace deepsecure {
namespace {

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("tcp: " + what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpChannel TcpChannel::listen_and_accept(uint16_t port, uint16_t* bound_port) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) die("socket");
  int one = 1;
  (void)setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind");
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
      die("getsockname");
    *bound_port = ntohs(addr.sin_port);
  }
  if (::listen(lfd, 1) != 0) die("listen");
  const int fd = ::accept(lfd, nullptr, nullptr);
  ::close(lfd);
  if (fd < 0) die("accept");
  set_nodelay(fd);
  return TcpChannel(fd);
}

TcpChannel TcpChannel::connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("tcp: bad address " + host);

  // Retry for up to ~2 s so both parties can start concurrently.
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) die("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_nodelay(fd);
      return TcpChannel(fd);
    }
    ::close(fd);
    if (attempt >= 200) die("connect");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TcpChannel::TcpChannel(TcpChannel&& o) noexcept
    : fd_(o.fd_), sent_(o.sent_), received_(o.received_) {
  o.fd_ = -1;
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpChannel::send_bytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      die("send");
    }
    done += static_cast<size_t>(w);
  }
  sent_ += n;
}

void TcpChannel::recv_bytes(void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd_, p + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      die("recv");
    }
    if (r == 0) throw std::runtime_error("tcp: peer closed connection");
    done += static_cast<size_t>(r);
  }
  received_ += n;
}

}  // namespace deepsecure
