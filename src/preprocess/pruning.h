// DL network pre-processing (Section 3.2.2): magnitude pruning of
// fully-connected layers with retraining to recover accuracy (Han et
// al. style). The resulting sparsity map is public; pruned connections
// are removed from the GC netlist entirely.
#pragma once

#include "nn/trainer.h"

namespace deepsecure::preprocess {

struct PruneConfig {
  /// Fraction of weights to REMOVE per dense layer (e.g. 0.9 keeps 10%).
  double prune_fraction = 0.9;
  /// Retraining schedule after each pruning step.
  size_t retrain_epochs = 3;
  float lr = 0.01f;
  float momentum = 0.9f;
  /// Number of prune -> retrain rounds (fraction reached geometrically).
  size_t rounds = 2;
};

struct PruneReport {
  double overall_sparsity = 0.0;  // fraction of dense weights removed
  float accuracy_before = 0.0f;
  float accuracy_after = 0.0f;
  std::vector<double> layer_sparsity;
};

/// Prunes `net`'s dense layers in place (masks installed + weights
/// zeroed), retraining on `data` between rounds.
PruneReport prune_and_retrain(nn::Network& net, const nn::Dataset& data,
                              const PruneConfig& cfg);

/// Sparsity mask synthesis for cost studies at paper scale (benchmarks
/// whose full training is out of scope): a uniform-random mask with the
/// given keep-fraction per layer. Gate counts depend only on the mask's
/// population, not the trained values.
std::vector<uint8_t> random_mask(size_t rows, size_t cols, double keep,
                                 uint64_t seed);

}  // namespace deepsecure::preprocess
