// Multi-session inference server: concurrent TCP sessions against one
// loaded model, end-to-end secure inference over a real loopback socket
// (the satellite requirement: not just MemChannel), and handshake
// rejection paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deepsecure.h"
#include "net/tcp_channel.h"
#include "nn/network.h"
#include "runtime/client.h"
#include "runtime/frame.h"
#include "runtime/server.h"
#include "support/rng.h"
#include "test_util.h"

namespace deepsecure {
namespace {

using test::pack_fixed;
using test::random_fixed;

// Sanitizer instrumentation slows every step 5-20x; absolute timeouts
// that race real work (like the idle reaper vs a live handshake) need
// headroom or they evict sessions that are merely slow, not stalled.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr uint64_t kIdleTimeoutMs = 1500;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr uint64_t kIdleTimeoutMs = 1500;
#else
constexpr uint64_t kIdleTimeoutMs = 150;
#endif
#else
constexpr uint64_t kIdleTimeoutMs = 150;
#endif

synth::ModelSpec small_spec() {
  synth::ModelSpec spec;
  spec.name = "server_test_mlp";
  spec.input = synth::Shape3{1, 1, 5};
  spec.layers.push_back(synth::FcLayer{4, {}, true});
  spec.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
  spec.layers.push_back(synth::FcLayer{3, {}, true});
  spec.layers.push_back(synth::ArgmaxLayer{});
  return spec;
}

BitVec random_weights(const synth::ModelSpec& spec, Rng& rng) {
  std::vector<Fixed> w;
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  return pack_fixed(w);
}

// Plaintext reference label for a sample against the spec + weights.
size_t plaintext_label(const synth::ModelSpec& spec, const BitVec& weights,
                       const BitVec& data) {
  const Circuit mono = synth::compile_model(spec);
  return from_bits(mono.eval(data, weights));
}

// The whole suite runs once per server core: the thread-per-session
// original and the epoll reactor must serve byte-identical v4 wire
// exchanges, so every behavior asserted below is core-independent.
class ServerCoreTest : public ::testing::TestWithParam<runtime::ServerCore> {
 protected:
  runtime::ServerConfig base_cfg() const {
    runtime::ServerConfig cfg;
    cfg.core = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Cores, ServerCoreTest,
    ::testing::Values(runtime::ServerCore::kThreadPerSession,
                      runtime::ServerCore::kEventLoop),
    [](const ::testing::TestParamInfo<runtime::ServerCore>& info) {
      return info.param == runtime::ServerCore::kThreadPerSession
                 ? "ThreadPerSession"
                 : "EventLoop";
    });

TEST_P(ServerCoreTest, EndToEndSecureInferOverTcpLoopback) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(17);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg = base_cfg();
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec data = pack_fixed(x);

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{2024, 610};
  ccfg.stream.garble_threads = 2;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  const BitVec out = client.infer_bits(data);
  EXPECT_EQ(from_bits(out), plaintext_label(spec, weights, data));
  client.close();
  server.stop();
  EXPECT_EQ(server.inferences_served(), 1u);
  EXPECT_EQ(server.sessions_rejected(), 0u);
}

TEST_P(ServerCoreTest, StatsJsonExplainsServedSession) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(19);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg = base_cfg();
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec data = pack_fixed(x);

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{2025, 808};
  ccfg.stream.garble_threads = 2;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  (void)client.infer_bits(data);
  client.close();
  server.stop();

  // Counter accessors and the registry must agree: the accessors are
  // thin reads of the same instruments stats_json() serializes.
  EXPECT_EQ(server.inferences_served(), 1u);
  EXPECT_EQ(server.metrics().snapshot().counter_value(
                "server.inferences_served"),
            1u);

  const std::string js = server.stats_json();
  for (const char* key :
       {"\"core\"", "\"accounting\"", "\"accounted_fraction\"",
        "\"phase_total_s\"", "\"session_wall_s\"", "\"metrics\"",
        "\"server.sessions_accepted\"", "\"phase.handshake\"",
        "\"phase.session_wall\"", "\"subphase.eval\""})
    EXPECT_NE(js.find(key), std::string::npos) << key << " missing:\n" << js;

  // After stop() every teardown has observed session_wall, so the
  // accounted phases must explain a sane share of the wall time.
  const obs::Snapshot snap = server.metrics().snapshot();
  const obs::Snapshot::Hist* wall = snap.find_hist("phase.session_wall");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 1u);
  EXPECT_GT(wall->sum, 0u);
}

TEST_P(ServerCoreTest, SustainsFourConcurrentTcpSessions) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(23);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig cfg = base_cfg();
  cfg.max_sessions = 4;
  runtime::InferenceServer server(spec, weights, cfg);
  server.start();

  constexpr size_t kSessions = 4;
  constexpr size_t kRequests = 2;
  std::vector<std::vector<size_t>> got(kSessions), want(kSessions);
  std::vector<std::vector<BitVec>> datas(kSessions);
  {
    Rng drng(404);
    for (size_t s = 0; s < kSessions; ++s) {
      for (size_t r = 0; r < kRequests; ++r) {
        std::vector<Fixed> x;
        for (size_t i = 0; i < 5; ++i)
          x.push_back(random_fixed(drng, kDefaultFormat, 0.2));
        datas[s].push_back(pack_fixed(x));
        want[s].push_back(plaintext_label(spec, weights, datas[s].back()));
      }
    }
  }

  std::vector<std::thread> clients;
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      runtime::ClientConfig ccfg;
      ccfg.seed = Block{100 + s, 200 + s};  // per-session label seeds
      runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
      for (size_t r = 0; r < kRequests; ++r)
        got[s].push_back(from_bits(client.infer_bits(datas[s][r])));
      client.close();
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  for (size_t s = 0; s < kSessions; ++s)
    EXPECT_EQ(got[s], want[s]) << "session " << s;
  EXPECT_EQ(server.sessions_accepted(), kSessions);
  EXPECT_EQ(server.inferences_served(), kSessions * kRequests);
}

TEST_P(ServerCoreTest, RejectsFingerprintMismatch) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(31);
  runtime::InferenceServer server(spec, random_weights(spec, rng), base_cfg());
  server.start();

  synth::ModelSpec other = spec;  // different architecture, same inputs
  other.layers.insert(other.layers.begin() + 1,
                      synth::ActLayer{synth::ActKind::kReLU});
  EXPECT_THROW(
      {
        runtime::InferenceClient client("127.0.0.1", server.port(), other);
      },
      std::runtime_error);
  server.stop();
  EXPECT_EQ(server.sessions_rejected(), 1u);
}

TEST_P(ServerCoreTest, RejectsSchedulingMismatch) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(61);
  runtime::ServerConfig scfg = base_cfg();
  scfg.stream.schedule = true;
  runtime::InferenceServer server(spec, random_weights(spec, rng), scfg);
  server.start();

  runtime::ClientConfig ccfg;
  ccfg.stream.schedule = false;  // walks construction order: incompatible
  EXPECT_THROW(
      {
        runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
      },
      std::runtime_error);
  server.stop();
  EXPECT_EQ(server.sessions_rejected(), 1u);
}

// Global prefetch byte budget (shared across sessions): with room for
// exactly one artifact, a second session's push is rejected even though
// its per-session quota is untouched; consuming/closing releases the
// reservation and new pushes succeed.
TEST_P(ServerCoreTest, GlobalPrefetchByteBudgetSharedAcrossSessions) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(67);
  const BitVec weights = random_weights(spec, rng);

  // One artifact's table stream: constants + half-gate tables per layer
  // (same arithmetic as the server's push-time size check).
  const auto chain = synth::compile_model_layers(spec);
  uint64_t artifact_bytes = 0;
  for (const Circuit& c : chain)
    artifact_bytes += 2 * sizeof(Block) + c.stats().table_bytes();

  runtime::ServerConfig scfg = base_cfg();
  scfg.max_prefetch = 4;  // per-session quota is NOT the limiter here
  scfg.max_prefetch_bytes = artifact_bytes;
  runtime::InferenceServer server(spec, weights, scfg);
  server.start();

  runtime::ClientConfig ccfg;
  ccfg.pool_target = 1;
  ccfg.auto_top_up = false;
  runtime::InferenceClient first("127.0.0.1", server.port(), spec, ccfg);
  EXPECT_EQ(first.prefetch(1), 1u);
  EXPECT_EQ(server.prefetch_bytes(), artifact_bytes);

  {
    // Second session: budget exhausted, push rejected (session killed
    // like a quota violation), metric increments.
    runtime::InferenceClient second("127.0.0.1", server.port(), spec, ccfg);
    EXPECT_THROW(second.prefetch(1), std::runtime_error);
  }
  EXPECT_EQ(server.prefetches_rejected(), 1u);
  EXPECT_EQ(server.materials_prefetched(), 1u);

  // Consuming the stored artifact releases its reservation...
  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec out = first.infer_bits(pack_fixed(x));
  EXPECT_EQ(from_bits(out), plaintext_label(spec, weights, pack_fixed(x)));
  EXPECT_EQ(server.prefetch_bytes(), 0u);

  // ...so a fresh session can prefetch again.
  runtime::InferenceClient third("127.0.0.1", server.port(), spec, ccfg);
  EXPECT_EQ(third.prefetch(1), 1u);
  EXPECT_EQ(server.prefetch_bytes(), artifact_bytes);
  third.close();
  first.close();

  // Session teardown releases the unconsumed artifact's bytes too.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.prefetch_bytes() > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.prefetch_bytes(), 0u);
  server.stop();
}

// Evaluator-side window sharding in the server: sessions evaluate with
// a shard pool and still agree with plaintext.
TEST_P(ServerCoreTest, EvaluatorThreadsServeCorrectInferences) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(71);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig scfg = base_cfg();
  scfg.stream.eval_threads = 2;
  runtime::InferenceServer server(spec, weights, scfg);
  server.start();

  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec data = pack_fixed(x);

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{2026, 0xE7A1};
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  const BitVec out = client.infer_bits(data);
  EXPECT_EQ(from_bits(out), plaintext_label(spec, weights, data));
  client.close();
  server.stop();
}

TEST_P(ServerCoreTest, RejectsFramingMismatch) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(37);
  runtime::ServerConfig scfg = base_cfg();
  scfg.stream.framed_tables = true;
  runtime::InferenceServer server(spec, random_weights(spec, rng), scfg);
  server.start();

  runtime::ClientConfig ccfg;
  ccfg.stream.framed_tables = false;  // wire-format disagreement
  EXPECT_THROW(
      {
        runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
      },
      std::runtime_error);
  server.stop();
}

// Offline/online split over a real TCP loopback: the same session runs
// one inference from prefetched material (online phase only) and one
// on-demand, on the same sample — identical outputs, both correct.
TEST_P(ServerCoreTest, PooledAndOnDemandProduceIdenticalOutputs) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(41);
  const BitVec weights = random_weights(spec, rng);

  runtime::InferenceServer server(spec, weights, base_cfg());
  server.start();

  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  const BitVec data = pack_fixed(x);

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{2026, 727};
  ccfg.pool_target = 1;
  ccfg.auto_top_up = false;  // deterministic drain after one pooled infer
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  client.prefetch(1);
  EXPECT_EQ(client.prefetched(), 1u);

  const BitVec pooled = client.infer_bits(data);     // online phase
  const BitVec ondemand = client.infer_bits(data);   // drained: fallback
  EXPECT_EQ(pooled, ondemand);
  EXPECT_EQ(from_bits(pooled), plaintext_label(spec, weights, data));
  EXPECT_EQ(client.pooled_inferences(), 1u);
  EXPECT_EQ(client.ondemand_inferences(), 1u);
  client.close();
  server.stop();
  EXPECT_EQ(server.inferences_served(), 2u);
  EXPECT_EQ(server.inferences_pooled(), 1u);
  EXPECT_EQ(server.materials_prefetched(), 1u);
}

// Cross-request pipelining: several kInfer frames queued back-to-back
// against prefetched material, results collected afterwards in order.
TEST_P(ServerCoreTest, PipelinesBackToBackPooledInfers) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(43);
  const BitVec weights = random_weights(spec, rng);

  runtime::InferenceServer server(spec, weights, base_cfg());
  server.start();

  constexpr size_t kDepth = 3;
  std::vector<BitVec> datas;
  std::vector<size_t> want;
  for (size_t r = 0; r < kDepth; ++r) {
    std::vector<Fixed> x;
    for (size_t i = 0; i < 5; ++i)
      x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
    datas.push_back(pack_fixed(x));
    want.push_back(plaintext_label(spec, weights, datas.back()));
  }

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{31337, 4};
  ccfg.pool_target = kDepth;
  ccfg.auto_top_up = false;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  client.prefetch(kDepth);

  for (size_t r = 0; r < kDepth; ++r) client.begin_infer_bits(datas[r]);
  EXPECT_EQ(client.in_flight(), kDepth);
  // Pipelining on drained material is a caller error, not a silent
  // fallback (on-demand garbling cannot be queued).
  EXPECT_THROW(client.begin_infer_bits(datas[0]), std::logic_error);

  std::vector<size_t> got;
  for (size_t r = 0; r < kDepth; ++r)
    got.push_back(from_bits(client.finish_infer()));
  EXPECT_EQ(got, want);
  client.close();
  server.stop();
  EXPECT_EQ(server.inferences_pooled(), kDepth);
}

TEST_P(ServerCoreTest, EnforcesPrefetchQuota) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(47);
  runtime::ServerConfig scfg = base_cfg();
  scfg.max_prefetch = 1;
  runtime::InferenceServer server(spec, random_weights(spec, rng), scfg);
  server.start();

  runtime::ClientConfig ccfg;
  ccfg.pool_target = 2;
  ccfg.auto_top_up = false;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  EXPECT_EQ(client.prefetch(1), 1u);
  // Clamped client-side to the quota the ack advertised — no wire
  // traffic, no kError, and the session stays usable.
  EXPECT_EQ(client.prefetch(5), 1u);
  std::vector<Fixed> x;
  for (size_t i = 0; i < 5; ++i)
    x.push_back(random_fixed(rng, kDefaultFormat, 0.2));
  EXPECT_NO_THROW(client.infer_bits(pack_fixed(x)));
  client.close();
  server.stop();
  EXPECT_EQ(server.materials_prefetched(), 1u);
}

// Drive the server's own kPrefetch rejection branches with a raw
// frame-level client (the real InferenceClient mirrors the quota and
// always sends well-formed material, so these paths need a misbehaving
// peer).
TEST_P(ServerCoreTest, RejectsBadPrefetchFrames) {
  const synth::ModelSpec spec = small_spec();
  const auto chain = synth::compile_model_layers(spec);
  Rng rng(53);

  auto handshake = [&](TcpChannel& raw) {
    runtime::Hello hello;
    // Match the server: fingerprint over the walked (default) order.
    hello.fingerprint =
        runtime::chain_fingerprint(chain, gc_schedule_default());
    runtime::send_hello(raw, hello);
    const runtime::Frame ack = runtime::recv_frame(raw);
    ASSERT_EQ(ack.type, runtime::FrameType::kHelloAck);
  };

  {
    // Quota exceeded: a server with max_prefetch = 0 rejects the first
    // push outright.
    runtime::ServerConfig scfg = base_cfg();
    scfg.max_prefetch = 0;
    runtime::InferenceServer server(spec, random_weights(spec, rng), scfg);
    server.start();
    TcpChannel raw = TcpChannel::connect("127.0.0.1", server.port());
    handshake(raw);
    runtime::send_id_frame(raw, runtime::FrameType::kPrefetch, 1);
    EXPECT_THROW(
        try { runtime::recv_frame(raw); } catch (const std::exception& e) {
          EXPECT_NE(std::string(e.what()).find("quota"), std::string::npos);
          throw;
        },
        std::runtime_error);
    server.stop();
  }
  {
    // Material that cannot belong to the chain (empty decode bits +
    // empty tables): rejected at push time, not at kInfer time.
    runtime::InferenceServer server(spec, random_weights(spec, rng), base_cfg());
    server.start();
    TcpChannel raw = TcpChannel::connect("127.0.0.1", server.port());
    handshake(raw);
    runtime::send_id_frame(raw, runtime::FrameType::kPrefetch, 1);
    raw.send_bits({});  // decode bits
    raw.send_u64(0);    // table byte count
    EXPECT_THROW(
        try { runtime::recv_frame(raw); } catch (const std::exception& e) {
          EXPECT_NE(std::string(e.what()).find("match"), std::string::npos);
          throw;
        },
        std::runtime_error);
    server.stop();
    EXPECT_EQ(server.materials_prefetched(), 0u);
  }
}

// Idle-timeout satellite: a connected-but-silent client is dropped so
// it cannot pin one of the max_sessions slots forever.
TEST_P(ServerCoreTest, IdleTimeoutFreesSessionSlot) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(59);
  runtime::ServerConfig scfg = base_cfg();
  scfg.idle_timeout_ms = kIdleTimeoutMs;
  runtime::InferenceServer server(spec, random_weights(spec, rng), scfg);
  server.start();

  auto client = std::make_unique<runtime::InferenceClient>(
      "127.0.0.1", server.port(), spec);
  // accepted (monotonic) rather than active: on a stalled runner the
  // reaper may fire before this thread gets to assert.
  EXPECT_EQ(server.sessions_accepted(), 1u);
  // Say nothing: the server must reap the session on its own.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (server.sessions_active() > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server.sessions_active(), 0u);
  client.reset();  // close() on the dead socket is absorbed by the dtor
  server.stop();
}

// Async prefetch lane (protocol v4): a client that drains its pool
// mid-burst refills through the second connection concurrently with
// inference traffic — once a refilled artifact is visible, no request
// ever falls back to on-demand garbling.
TEST_P(ServerCoreTest, AsyncPrefetchLaneRefillsUnderBurst) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(73);
  const BitVec weights = random_weights(spec, rng);

  runtime::ServerConfig scfg = base_cfg();
  scfg.max_prefetch = 4;
  runtime::InferenceServer server(spec, weights, scfg);
  server.start();

  runtime::ClientConfig ccfg;
  ccfg.seed = Block{2026, 0xA51};
  ccfg.pool_target = 2;
  ccfg.pool_producers = 2;
  ccfg.async_prefetch = true;
  runtime::InferenceClient client("127.0.0.1", server.port(), spec, ccfg);
  EXPECT_EQ(client.prefetch(2), 2u);
  EXPECT_TRUE(client.lane_active());

  constexpr size_t kBurst = 6;  // 3x the pool: drains to empty twice
  Rng drng(505);
  for (size_t r = 0; r < kBurst; ++r) {
    std::vector<Fixed> x;
    for (size_t i = 0; i < 5; ++i)
      x.push_back(random_fixed(drng, kDefaultFormat, 0.2));
    const BitVec data = pack_fixed(x);
    // Drain-heavy burst, but only race ahead against warm material:
    // wait for the lane's refill when the store is empty. The assertion
    // below is exactly "no on-demand fallback once credits allow".
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (client.prefetched() == 0 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(client.prefetched(), 0u) << "lane refill stalled";
    const BitVec out = client.infer_bits(data);
    EXPECT_EQ(from_bits(out), plaintext_label(spec, weights, data));
  }
  EXPECT_EQ(client.pooled_inferences(), kBurst);
  EXPECT_EQ(client.ondemand_inferences(), 0u);
  client.close();
  server.stop();
  EXPECT_EQ(server.inferences_pooled(), kBurst);
  EXPECT_EQ(server.inferences_served(), kBurst);
  EXPECT_EQ(server.lanes_attached(), 1u);
  // Everything the burst left behind was settled on teardown.
  EXPECT_EQ(server.prefetch_bytes(), 0u);
}

TEST_P(ServerCoreTest, AttachLaneRejectsUnknownToken) {
  const synth::ModelSpec spec = small_spec();
  Rng rng(79);
  runtime::InferenceServer server(spec, random_weights(spec, rng), base_cfg());
  server.start();

  TcpChannel lane = TcpChannel::connect("127.0.0.1", server.lane_port());
  runtime::send_id_frame(lane, runtime::FrameType::kAttachLane, 0xBADull);
  EXPECT_THROW(
      try { runtime::recv_frame(lane); } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find("token"), std::string::npos);
        throw;
      },
      std::runtime_error);
  server.stop();
  EXPECT_EQ(server.lanes_rejected(), 1u);
  EXPECT_EQ(server.lanes_attached(), 0u);
}

// Budget-leak regression (the satellite fix): a push the server rejects
// must release its global-budget reservation IMMEDIATELY — not at
// session teardown — or one malformed push would starve every other
// session's prefetching for this session's remaining lifetime. The
// push rides the lane, whose failure leaves the session alive, so the
// assertion below cannot be satisfied by teardown accounting.
TEST_P(ServerCoreTest, FailedLanePushReleasesBudgetWhileSessionLives) {
  const synth::ModelSpec spec = small_spec();
  const auto chain = synth::compile_model_layers(spec);
  Rng rng(83);
  runtime::InferenceServer server(spec, random_weights(spec, rng), base_cfg());
  server.start();

  // Real handshake to obtain the lane token + port.
  TcpChannel raw = TcpChannel::connect("127.0.0.1", server.port());
  runtime::Hello hello;
  hello.fingerprint = runtime::chain_fingerprint(chain, gc_schedule_default());
  runtime::send_hello(raw, hello);
  const runtime::HelloAck ack =
      runtime::parse_hello_ack(runtime::recv_frame(raw));

  TcpChannel lane = TcpChannel::connect("127.0.0.1", ack.lane_port);
  runtime::send_id_frame(lane, runtime::FrameType::kAttachLane,
                         ack.lane_token);
  ASSERT_EQ(runtime::recv_frame(lane).type,
            runtime::FrameType::kAttachLaneAck);

  // Malformed push: empty decode bits + zero-length tables — rejected
  // at push time. The reservation was made before the material was
  // read; the rejection must give it back.
  runtime::send_id_frame(lane, runtime::FrameType::kPrefetch, 1);
  lane.send_bits({});
  lane.send_u64(0);
  EXPECT_THROW(
      try { runtime::recv_frame(lane); } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find("match"), std::string::npos);
        throw;
      },
      std::runtime_error);

  // The primary session is still alive (only the lane died), so a
  // non-zero reading here would be a real leak, not pending teardown.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.prefetch_bytes() > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.prefetch_bytes(), 0u);
  EXPECT_EQ(server.sessions_active(), 1u);
  EXPECT_EQ(server.materials_prefetched(), 0u);

  runtime::send_frame(raw, runtime::FrameType::kBye);
  server.stop();
}

// Teardown path: a client that vanishes mid-push (reservation made,
// material half-sent) must not strand its bytes in the global budget.
TEST_P(ServerCoreTest, SessionDeathMidPushReleasesBudget) {
  const synth::ModelSpec spec = small_spec();
  const auto chain = synth::compile_model_layers(spec);
  Rng rng(89);
  runtime::InferenceServer server(spec, random_weights(spec, rng), base_cfg());
  server.start();
  {
    TcpChannel raw = TcpChannel::connect("127.0.0.1", server.port());
    runtime::Hello hello;
    hello.fingerprint =
        runtime::chain_fingerprint(chain, gc_schedule_default());
    runtime::send_hello(raw, hello);
    (void)runtime::recv_frame(raw);  // ack
    runtime::send_id_frame(raw, runtime::FrameType::kPrefetch, 1);
    raw.send_bits(BitVec(chain.back().outputs.size(), 0));
    // Declare the right table size but hang up before sending it: the
    // server is now mid recv_material with the reservation held.
  }  // socket closes here
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((server.prefetch_bytes() > 0 || server.sessions_active() > 0) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.prefetch_bytes(), 0u);
  EXPECT_EQ(server.sessions_active(), 0u);
  server.stop();
}

// The full core-API path — a trained-network-shaped model, sample
// encoding via sample_bits / weight_bits — over a real TCP loopback.
TEST_P(ServerCoreTest, NetworkModelSecureInferOverTcp) {
  Rng rng(53);
  nn::Network net(nn::Shape{1, 1, 6});
  net.dense(4, rng).act(nn::Act::kReLU).dense(2, rng);

  SecureInferenceOptions opt;
  const synth::ModelSpec spec = model_spec_from_network(net, opt, "tcp_mlp");
  const BitVec weights = weight_bits(net, opt.fmt);

  runtime::InferenceServer server(spec, weights, base_cfg());
  server.start();

  const nn::VecF sample{0.1f, -0.2f, 0.05f, 0.3f, -0.15f, 0.2f};
  const BitVec data = sample_bits(sample, opt.fmt);

  runtime::InferenceClient client("127.0.0.1", server.port(), spec);
  const size_t label = from_bits(client.infer_bits(data));
  client.close();
  server.stop();

  EXPECT_EQ(label, plaintext_label(spec, weights, data));
}

// 256-session loopback soak: raw frame-level sessions (handshake + one
// cheap exchange — no garbling) so the load is on the CORE (accept,
// readiness dispatch, session-slot gating, teardown accounting), not on
// crypto. Concurrency intentionally exceeds max_sessions, so the
// listener-gating / slot-wait path is exercised the whole run. Half the
// sessions end with a malformed kPrefetch (reservation made, push
// rejected, session killed by kError) and half with a clean kBye —
// both teardown paths must settle: zero dropped handshakes, zero
// sessions left active, and a fully returned prefetch byte budget.
TEST_P(ServerCoreTest, Soaks256LoopbackSessions) {
  const synth::ModelSpec spec = small_spec();
  const auto chain = synth::compile_model_layers(spec);
  Rng rng(97);

  runtime::ServerConfig scfg = base_cfg();
  scfg.max_sessions = 16;  // < concurrency: the gate stays hot
  runtime::InferenceServer server(spec, random_weights(spec, rng), scfg);
  server.start();

  constexpr size_t kThreads = 32;
  constexpr size_t kSessionsPerThread = 8;  // 256 total
  std::atomic<size_t> handshakes_ok{0};
  std::vector<std::thread> soak;
  for (size_t t = 0; t < kThreads; ++t) {
    soak.emplace_back([&, t] {
      for (size_t s = 0; s < kSessionsPerThread; ++s) {
        TcpChannel raw = TcpChannel::connect("127.0.0.1", server.port());
        runtime::Hello hello;
        hello.fingerprint =
            runtime::chain_fingerprint(chain, gc_schedule_default());
        runtime::send_hello(raw, hello);
        const runtime::Frame ack = runtime::recv_frame(raw);
        if (ack.type != runtime::FrameType::kHelloAck) return;  // dropped
        handshakes_ok.fetch_add(1);
        if ((t + s) % 2 == 0) {
          // Malformed push: reserves budget, gets rejected, session
          // dies by kError — the reservation must come back.
          runtime::send_id_frame(raw, runtime::FrameType::kPrefetch, 1);
          raw.send_bits({});
          raw.send_u64(0);
          EXPECT_THROW((void)runtime::recv_frame(raw), std::runtime_error);
        } else {
          runtime::send_frame(raw, runtime::FrameType::kBye);
        }
      }
    });
  }
  for (auto& th : soak) th.join();

  EXPECT_EQ(handshakes_ok.load(), kThreads * kSessionsPerThread)
      << "dropped sessions under soak";
  EXPECT_EQ(server.sessions_accepted(), kThreads * kSessionsPerThread);

  // Teardown is asynchronous on both cores: poll until settled.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((server.sessions_active() > 0 || server.prefetch_bytes() > 0) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.sessions_active(), 0u);
  EXPECT_EQ(server.prefetch_bytes(), 0u);
  server.stop();
}

}  // namespace
}  // namespace deepsecure
