// Tests for the lock-free SPSC ring (support/spsc_ring.h): boundary
// behavior (full/empty, wraparound across many laps), the per-slot
// sequence protocol (overrun detection via sequence_of), threaded
// producer/consumer stress (run under TSan in CI — the handoff must be
// data-race-free), and equivalence of the MaterialPool's ring handoff
// against the mutex+CV deque path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuit/bench_circuits.h"
#include "gc/material.h"
#include "runtime/material_pool.h"
#include "support/spsc_ring.h"

namespace deepsecure {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));  // empty pop fails
  EXPECT_EQ(ring.front(), nullptr);

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.try_push(99));  // full push fails...
  EXPECT_EQ(ring.size(), 4u);       // ...and changes nothing

  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), 0);  // peek does not consume
  EXPECT_EQ(ring.size(), 4u);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, WraparoundManyLaps) {
  SpscRing<uint64_t> ring(4);
  uint64_t out = 0;
  // Interleave pushes and pops so the cursors lap the slot array many
  // times; each slot's sequence stamp must keep the FIFO order intact.
  uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    const size_t burst = 1 + (round % 4);
    for (size_t i = 0; i < burst; ++i)
      ASSERT_TRUE(ring.try_push(uint64_t{next_in++}));
    for (size_t i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_out++);
    }
  }
  EXPECT_TRUE(ring.empty());
  // Monotonic cursors: both sides have walked the full value count,
  // far past the 4-slot array (many laps).
  EXPECT_EQ(ring.head().load(), next_in);
  EXPECT_EQ(ring.tail().load(), next_out);
  EXPECT_GT(next_in, ring.capacity() * 100);
}

TEST(SpscRing, MoveOnlyPayloadAndSlotScrub) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
  // The slot was scrubbed on pop (payload dropped immediately, not one
  // full lap later): push/pop again and the old value must be gone.
  ASSERT_TRUE(ring.try_push(std::unique_ptr<int>{}));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, nullptr);
}

TEST(SpscRing, SequenceStampsDetectOverrun) {
  SpscRing<int> ring(4);
  // Empty ring: slot for cursor c holds seq == c (awaiting value #c).
  EXPECT_EQ(ring.sequence_of(0), 0u);
  ASSERT_TRUE(ring.try_push(1));
  // Full slot: seq == cursor + 1 — the consumer-at-0 "value ready" mark.
  EXPECT_EQ(ring.sequence_of(0), 1u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  // Freed slot: seq == cursor + capacity, ready for the producer's next
  // lap. A consumer still holding cursor 0 that observed this value
  // (> 0 + 1) would know it had been lapped — the overrun invariant.
  EXPECT_EQ(ring.sequence_of(0), 4u);
  EXPECT_GT(ring.sequence_of(0), 0u + 1u);
}

// Threaded handoff stress: one producer, one consumer, a ring far
// smaller than the item count (constant wraparound + full/empty
// boundary hits). TSan (DEEPSECURE_SANITIZE=thread) must see no race;
// the consumer checks exact FIFO order and the checksum catches lost or
// duplicated values.
TEST(SpscRing, ThreadedProducerConsumerStress) {
  constexpr uint64_t kItems = 50000;
  SpscRing<uint64_t> ring(8);
  std::atomic<bool> done{false};
  uint64_t sum = 0, expect_next = 0;
  bool fifo_ok = true;

  // Yield on the contended edges: on a single-core runner a pure spin
  // would burn the whole scheduling quantum waiting for the other side.
  std::thread consumer([&] {
    uint64_t v;
    for (;;) {
      if (ring.try_pop(v)) {
        fifo_ok = fifo_ok && (v == expect_next);
        ++expect_next;
        sum += v;
      } else if (done.load(std::memory_order_acquire) && ring.empty()) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t i = 0; i < kItems; ++i)
    while (!ring.try_push(uint64_t{i})) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_TRUE(fifo_ok);
  EXPECT_EQ(expect_next, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_EQ(ring.head().load(), kItems);
  EXPECT_EQ(ring.tail().load(), kItems);
}

// The MaterialPool's ring handoff must be behaviorally equivalent to
// the mutex+CV deque path: same artifact stream (deterministic seed →
// byte-identical material in either mode), same drain/refill dynamics.
TEST(SpscRing, MaterialPoolRingHandoffMatchesDequePath) {
  using namespace deepsecure::runtime;
  const std::vector<Circuit> chain{bench_circuits::wide_chain_layer(128)};

  auto collect = [&](bool ring_handoff) {
    MaterialPoolConfig cfg;
    cfg.target = 3;
    cfg.producer_threads = 1;
    cfg.seed = Block{7, 42};
    cfg.ring_handoff = ring_handoff;
    MaterialPool pool(chain, GcOptions{}, cfg);
    std::vector<GarbledMaterial> out;
    for (int i = 0; i < 6; ++i) out.push_back(pool.acquire());
    EXPECT_EQ(pool.acquired(), 6u);
    return out;
  };

  const std::vector<GarbledMaterial> via_ring = collect(true);
  const std::vector<GarbledMaterial> via_deque = collect(false);
  ASSERT_EQ(via_ring.size(), via_deque.size());
  for (size_t i = 0; i < via_ring.size(); ++i) {
    // Same seed + single producer → the i-th artifact is byte-identical
    // regardless of which structure carried it.
    EXPECT_EQ(via_ring[i].delta, via_deque[i].delta) << "artifact " << i;
    ASSERT_EQ(via_ring[i].tables.size(), via_deque[i].tables.size());
    EXPECT_EQ(via_ring[i].tables, via_deque[i].tables) << "artifact " << i;
  }
}

// try_acquire must see ring-held artifacts (a drain reported while the
// ring holds inventory would push callers to on-demand garbling for no
// reason), and the ready() accessor must count both structures.
TEST(SpscRing, MaterialPoolReadyCountsRingInventory) {
  using namespace deepsecure::runtime;
  const std::vector<Circuit> chain{bench_circuits::wide_chain_layer(128)};

  MaterialPoolConfig cfg;
  cfg.target = 2;
  cfg.producer_threads = 1;
  cfg.seed = Block{1, 2};
  MaterialPool pool(chain, GcOptions{}, cfg);
  // Warm to target (acquire forces production; push one back is not
  // possible, so just wait until the standing inventory converges).
  (void)pool.acquire();
  while (pool.ready() < 2) std::this_thread::yield();
  EXPECT_GE(pool.ready(), 2u);
  std::optional<GarbledMaterial> got = pool.try_acquire();
  EXPECT_TRUE(got.has_value());
}

}  // namespace
}  // namespace deepsecure
