#include "crypto/ed25519.h"

#include <cassert>
#include <cstring>

namespace deepsecure {
namespace {

// Branch-free select: out = bit ? b : a.
Fe25519 fe_select(const Fe25519& a, const Fe25519& b, uint64_t bit) {
  const uint64_t mask = 0 - (bit & 1);
  Fe25519 r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] ^ (mask & (a.v[i] ^ b.v[i]));
  return r;
}

Ed25519Point point_select(const Ed25519Point& a, const Ed25519Point& b,
                          uint64_t bit) {
  Ed25519Point r;
  r.x = fe_select(a.x, b.x, bit);
  r.y = fe_select(a.y, b.y, bit);
  r.z = fe_select(a.z, b.z, bit);
  r.t = fe_select(a.t, b.t, bit);
  return r;
}

const Fe25519& two_d() {
  static const Fe25519 k2d = Fe25519::add(ed25519_d(), ed25519_d());
  return k2d;
}

}  // namespace

const Fe25519& ed25519_d() {
  // d = -121665/121666 mod p.
  static const Fe25519 d = Fe25519::mul(
      Fe25519::neg(Fe25519::from_u64(121665)),
      Fe25519::invert(Fe25519::from_u64(121666)));
  return d;
}

Ed25519Scalar ed25519_order() {
  // l = 2^252 + 27742317777372353535851937790883648493, little-endian.
  return Ed25519Scalar{0xED, 0xD3, 0xF5, 0x5C, 0x1A, 0x63, 0x12, 0x58,
                       0xD6, 0x9C, 0xF7, 0xA2, 0xDE, 0xF9, 0xDE, 0x14,
                       0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
}

const Ed25519Point& Ed25519Point::base() {
  static const Ed25519Point b = [] {
    // Standard generator: y = 4/5, x the even root (RFC 8032 constant).
    static constexpr uint8_t kBx[32] = {
        0x1A, 0xD5, 0x25, 0x8F, 0x60, 0x2D, 0x56, 0xC9, 0xB2, 0xA7, 0x25,
        0x95, 0x60, 0xC7, 0x2C, 0x69, 0x5C, 0xDC, 0xD6, 0xFD, 0x31, 0xE2,
        0xA4, 0xC0, 0xFE, 0x53, 0x6E, 0xCD, 0xD3, 0x36, 0x69, 0x21};
    Ed25519Point p;
    p.x = Fe25519::from_bytes(kBx);
    p.y = Fe25519::mul(Fe25519::from_u64(4),
                       Fe25519::invert(Fe25519::from_u64(5)));
    p.z = Fe25519::one();
    p.t = Fe25519::mul(p.x, p.y);
    assert(p.on_curve());
    return p;
  }();
  return b;
}

Ed25519Point Ed25519Point::identity() {
  Ed25519Point p;
  p.x = Fe25519::zero();
  p.y = Fe25519::one();
  p.z = Fe25519::one();
  p.t = Fe25519::zero();
  return p;
}

Ed25519Point Ed25519Point::add(const Ed25519Point& p, const Ed25519Point& q) {
  // EFD add-2008-hwcd-3 for a = -1.
  using F = Fe25519;
  const F a = F::mul(F::sub(p.y, p.x), F::sub(q.y, q.x));
  const F b = F::mul(F::add(p.y, p.x), F::add(q.y, q.x));
  const F c = F::mul(F::mul(p.t, two_d()), q.t);
  const F d = F::mul(F::add(p.z, p.z), q.z);
  const F e = F::sub(b, a);
  const F f = F::sub(d, c);
  const F g = F::add(d, c);
  const F h = F::add(b, a);
  Ed25519Point r;
  r.x = F::mul(e, f);
  r.y = F::mul(g, h);
  r.t = F::mul(e, h);
  r.z = F::mul(f, g);
  return r;
}

Ed25519Point Ed25519Point::dbl(const Ed25519Point& p) {
  // EFD dbl-2008-hwcd for a = -1.
  using F = Fe25519;
  const F a = F::square(p.x);
  const F b = F::square(p.y);
  const F zz = F::square(p.z);
  const F c = F::add(zz, zz);
  const F d = F::neg(a);
  const F xy = F::square(F::add(p.x, p.y));
  const F e = F::sub(F::sub(xy, a), b);
  const F g = F::add(d, b);
  const F f = F::sub(g, c);
  const F h = F::sub(d, b);
  Ed25519Point r;
  r.x = F::mul(e, f);
  r.y = F::mul(g, h);
  r.t = F::mul(e, h);
  r.z = F::mul(f, g);
  return r;
}

Ed25519Point Ed25519Point::neg(const Ed25519Point& p) {
  Ed25519Point r = p;
  r.x = Fe25519::neg(p.x);
  r.t = Fe25519::neg(p.t);
  return r;
}

Ed25519Point Ed25519Point::mul(const Ed25519Point& p, const Ed25519Scalar& k) {
  Ed25519Point acc = identity();
  for (int i = 255; i >= 0; --i) {
    acc = dbl(acc);
    const uint64_t bit = (k[i / 8] >> (i % 8)) & 1u;
    const Ed25519Point with = add(acc, p);
    acc = point_select(acc, with, bit);
  }
  return acc;
}

std::array<uint8_t, 64> Ed25519Point::encode() const {
  const Fe25519 zinv = Fe25519::invert(z);
  const Fe25519 ax = Fe25519::mul(x, zinv);
  const Fe25519 ay = Fe25519::mul(y, zinv);
  std::array<uint8_t, 64> out{};
  ax.to_bytes(out.data());
  ay.to_bytes(out.data() + 32);
  return out;
}

std::optional<Ed25519Point> Ed25519Point::decode(const uint8_t in[64]) {
  Ed25519Point p;
  p.x = Fe25519::from_bytes(in);
  p.y = Fe25519::from_bytes(in + 32);
  p.z = Fe25519::one();
  p.t = Fe25519::mul(p.x, p.y);
  if (!p.on_curve()) return std::nullopt;
  return p;
}

bool Ed25519Point::eq(const Ed25519Point& p, const Ed25519Point& q) {
  using F = Fe25519;
  return F::eq(F::mul(p.x, q.z), F::mul(q.x, p.z)) &&
         F::eq(F::mul(p.y, q.z), F::mul(q.y, p.z));
}

bool Ed25519Point::on_curve() const {
  // Projective curve equation: (-X^2 + Y^2) Z^2 == Z^4 + d X^2 Y^2,
  // plus the extended-coordinate invariant T Z == X Y.
  using F = Fe25519;
  const F xx = F::square(x);
  const F yy = F::square(y);
  const F zz = F::square(z);
  const F lhs = F::mul(F::sub(yy, xx), zz);
  const F rhs = F::add(F::square(zz), F::mul(ed25519_d(), F::mul(xx, yy)));
  if (!F::eq(lhs, rhs)) return false;
  return F::eq(F::mul(t, z), F::mul(x, y));
}

}  // namespace deepsecure
