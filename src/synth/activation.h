// Activation-function circuit factory: every Table 3 non-linearity
// variant behind one enum, so benchmarks and model compilers can swap
// realizations (speed/accuracy trade-off, Section 4.2).
#pragma once

#include <string>

#include "synth/int_blocks.h"

namespace deepsecure::synth {

enum class ActKind {
  kIdentity,
  kReLU,
  kTanhLUT,      // exact table, error 0 (up to representation)
  kTanhSeg,      // 256-segment interpolation (~0.01%), Tanh2.10.12 analog
  kTanhPL,       // 7-chord piece-wise linear (~0.2% mean)
  kTanhCORDIC,   // hyperbolic CORDIC + DIV
  kSigmoidLUT,
  kSigmoidSeg,   // 128-segment interpolation, Sigmoid3.10.12 analog
  kSigmoidPLAN,  // Amin et al. piece-wise linear (shifts only)
  kSigmoidCORDIC,
};

/// Emit the chosen activation over bus `x` in format `fmt`.
Bus activation(Builder& b, const Bus& x, ActKind kind, FixedFormat fmt);

/// Ideal double-precision function the variant approximates (tanh,
/// sigmoid, relu, id) — the Table 3 error baseline.
double activation_ideal(double x, ActKind kind);

/// Double-precision model including the approximation (PL chords, PLAN,
/// interpolation, CORDIC schedule) but not fixed-point rounding.
double activation_ref(double x, ActKind kind, FixedFormat fmt);

std::string act_kind_name(ActKind kind);

/// True for tanh-family (odd) activations; used by layer compilers.
bool is_tanh(ActKind kind);
bool is_sigmoid(ActKind kind);

}  // namespace deepsecure::synth
