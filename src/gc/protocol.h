// Two-party GC session driver — the paper's core structure (Figure 3):
//
//   client (Alice) = garbler, owns the data sample
//   server (Bob)   = evaluator, owns the DL model parameters
//
//   (1) Alice garbles the netlist          (4) Bob returns output labels
//   (2) label transfer + OT                (5) Alice decodes ("merges")
//   (3) Bob evaluates
//
// Supports three execution shapes:
//   * single circuit (combinational)
//   * chained circuits (per-layer netlists; activations carried as
//     labels between layers — never revealed)
//   * sequential circuits (folded step circuit run for many cycles,
//     Section 3.5; state carried as labels between cycles)
//
// Two execution modes per shape-compatible chain:
//   * on-demand (run_chain / run_sequential): garbling, label transfer
//     and evaluation all happen on the request path — the PR 2
//     streaming pipeline.
//   * offline/online split: garble_offline (gc/material.h) produces a
//     GarbledMaterial ahead of time; precompute_ot + the derandomized
//     label transfer move the OTs offline as well; the *_online methods
//     then run the request-path remainder, which is just active-label
//     transfer plus evaluation. begin_online/finish_online expose the
//     send and receive halves separately so a client can queue several
//     online inferences back-to-back (cross-request pipelining).
//
// Phase timings are recorded per step for the Figure 5 reproduction.
#pragma once

#include <vector>

#include "gc/garble.h"
#include "gc/material.h"
#include "gc/ot.h"
#include "support/stopwatch.h"

namespace deepsecure {

struct PhaseSample {
  size_t step = 0;        // layer or clock-cycle index
  double garble_s = 0.0;  // garbler-side garbling time
  double ot_s = 0.0;      // label transfer / OT time (either side)
  double eval_s = 0.0;    // evaluator-side evaluation time
};

struct SessionTrace {
  std::vector<PhaseSample> phases;
  double total_s = 0.0;
  double setup_s = 0.0;  // base-OT + extension setup (once per session)

  double sum_garble() const {
    double t = 0;
    for (const auto& p : phases) t += p.garble_s;
    return t;
  }
  double sum_eval() const {
    double t = 0;
    for (const auto& p : phases) t += p.eval_s;
    return t;
  }
};

/// Client-side session (garbler).
class GarblerSession {
 public:
  /// `seed` feeds the label PRG (use Prg::from_os_entropy().next_block()
  /// outside tests). `opt` selects pipeline, table framing, and the
  /// garbling shard pool (see GcOptions); framing must match the peer.
  GarblerSession(Channel& ch, Block seed, const GcOptions& opt = {});

  /// Run a chain of circuits. `data_bits` feed circuit 0's garbler
  /// inputs; circuit k>0 garbler inputs are bound to circuit k-1 outputs.
  /// Every circuit's evaluator inputs are transferred via OT extension.
  /// Returns the decoded output bits of the final circuit.
  BitVec run_chain(const std::vector<Circuit>& chain, const BitVec& data_bits);

  /// Run a folded circuit for `cycles` cycles. Garbler inputs are fed
  /// per cycle from consecutive slices of `data_bits`; state is carried.
  BitVec run_sequential(const Circuit& step, size_t cycles,
                        const BitVec& data_bits);

  // --- offline/online split -------------------------------------------
  /// Offline: precompute `m` random OTs (interactive but
  /// input-independent; runs the base-OT setup first if needed).
  OtPrecompSender precompute_ot(size_t m);

  /// Offline: derandomized label transfer for the peer's static choice
  /// bits — receives one correction message, answers with the masked
  /// label pairs. `zeros`/`delta` come from the GarbledMaterial whose
  /// evaluator inputs are being resolved.
  void send_labels_derandomized(const OtPrecompSender& pre,
                                const Labels& zeros, Block delta);

  /// Online, send half: ship the active labels for `data_bits` against
  /// a material's circuit-0 garbler-input zero labels. Returns
  /// immediately after the send — pair with finish_online. Several
  /// begin_online calls may be in flight before the first
  /// finish_online (cross-request pipelining), as long as the calls
  /// are matched FIFO.
  void begin_online(Block delta, const Labels& data_zeros,
                    const BitVec& data_bits);

  /// Online, receive half: the decoded output bits of the oldest
  /// in-flight online inference (the evaluator decodes locally with the
  /// material's decode bits and shares the plaintext back).
  BitVec finish_online();

  /// One full online inference against `mat`: begin + finish.
  BitVec run_online(const GarbledMaterial& mat, const BitVec& data_bits);

  const SessionTrace& trace() const { return trace_; }

 private:
  void ensure_ot();

  Channel& ch_;
  Garbler garbler_;
  OtExtSender ot_;
  Prg prg_;
  bool ot_ready_ = false;
  size_t online_in_flight_ = 0;  // begin_online calls awaiting finish
  SessionTrace trace_;
};

/// Server-side session (evaluator).
class EvaluatorSession {
 public:
  explicit EvaluatorSession(Channel& ch, const GcOptions& opt = {});

  /// Counterpart of run_chain: `weight_bits` are consumed circuit by
  /// circuit in declaration order of each circuit's evaluator inputs.
  /// Returns the output bits as decoded by the garbler (sent back so
  /// both parties can report the inference result, as in the paper's
  /// optional final share step).
  BitVec run_chain(const std::vector<Circuit>& chain,
                   const BitVec& weight_bits);

  BitVec run_sequential(const Circuit& step, size_t cycles,
                        const BitVec& weight_bits);

  // --- offline/online split -------------------------------------------
  /// Offline: precompute `m` random OTs with random choice bits.
  OtPrecompReceiver precompute_ot(size_t m);

  /// Offline: resolve the active labels for `choices` (the evaluator's
  /// static input bits) from a precomputed batch — sends one correction
  /// message, receives the masked pairs.
  Labels recv_labels_derandomized(const OtPrecompReceiver& pre,
                                  const BitVec& choices);

  /// Online: one inference against locally-stored material — receive
  /// the active circuit-0 garbler labels, evaluate the chain from the
  /// artifact's tables, decode with its decode bits, and share the
  /// plaintext result back. Returns the decoded output bits.
  BitVec run_online(const std::vector<Circuit>& chain,
                    const EvalMaterial& mat);

  const SessionTrace& trace() const { return trace_; }

 private:
  void ensure_ot();

  Channel& ch_;
  Evaluator evaluator_;
  OtExtReceiver ot_;
  Prg prg_;
  GcOptions opt_;
  bool ot_ready_ = false;
  SessionTrace trace_;
};

}  // namespace deepsecure
