#include "gc/garble.h"

#include <stdexcept>

#include "crypto/aes128.h"
#include "gc/block_io.h"

namespace deepsecure {

Labels Evaluator::evaluate(const Circuit& c, const Labels& garbler_labels,
                           const Labels& evaluator_labels,
                           const Labels& state_labels, Labels* state_next) {
  if (garbler_labels.size() != c.garbler_inputs.size() ||
      evaluator_labels.size() != c.evaluator_inputs.size() ||
      state_labels.size() != c.state_inputs.size())
    throw std::invalid_argument("evaluate: input label count mismatch");

  Labels w(c.num_wires);
  w[kConst0] = ch_.recv_block();
  w[kConst1] = ch_.recv_block();

  for (size_t i = 0; i < garbler_labels.size(); ++i)
    w[c.garbler_inputs[i]] = garbler_labels[i];
  for (size_t i = 0; i < evaluator_labels.size(); ++i)
    w[c.evaluator_inputs[i]] = evaluator_labels[i];
  for (size_t i = 0; i < state_labels.size(); ++i)
    w[c.state_inputs[i]] = state_labels[i];

  BlockReader tables(ch_);
  tables.expect(2 * c.stats().num_and);
  for (const Gate& g : c.gates) {
    if (g.op == GateOp::kXor) {
      w[g.out] = w[g.a] ^ w[g.b];
      continue;
    }
    const Block wa = w[g.a];
    const Block wb = w[g.b];
    const uint64_t j0 = tweak_++;
    const uint64_t j1 = tweak_++;
    const Block tg = tables.get();
    const Block te = tables.get();

    Block wgc = gc_hash(wa, j0);
    if (wa.lsb()) wgc ^= tg;
    Block wec = gc_hash(wb, j1);
    if (wb.lsb()) wec ^= te ^ wa;
    w[g.out] = wgc ^ wec;
  }

  if (state_next != nullptr) {
    state_next->resize(c.state_next.size());
    for (size_t i = 0; i < c.state_next.size(); ++i)
      (*state_next)[i] = w[c.state_next[i]];
  }
  Labels out(c.outputs.size());
  for (size_t i = 0; i < c.outputs.size(); ++i) out[i] = w[c.outputs[i]];
  return out;
}

Labels Evaluator::recv_active(size_t n) {
  Labels labels(n);
  if (n > 0) ch_.recv_bytes(labels.data(), n * sizeof(Block));
  return labels;
}

void Evaluator::send_outputs(const Labels& labels) {
  if (!labels.empty())
    ch_.send_bytes(labels.data(), labels.size() * sizeof(Block));
}

BitVec Evaluator::decode_with_info(const Labels& labels) {
  const BitVec perm = ch_.recv_bits();
  if (perm.size() != labels.size())
    throw std::runtime_error("decode_with_info: size mismatch");
  BitVec bits(labels.size());
  for (size_t i = 0; i < labels.size(); ++i)
    bits[i] = (labels[i].lsb() ? 1u : 0u) ^ perm[i];
  return bits;
}

}  // namespace deepsecure
