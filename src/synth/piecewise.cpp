#include "synth/piecewise.h"

#include <cmath>
#include <stdexcept>

#include "synth/lut.h"
#include "synth/mult.h"

namespace deepsecure::synth {
namespace {

struct PlSegment {
  double upper;  // segment covers [prev.upper, upper)
  double slope;
  double intercept;
};

// Seven chords of tanh on [0, 4), saturation to 1 beyond (the paper's
// "seven different lines for x >= 0" construction).
const std::vector<PlSegment>& tanh_pl_segments() {
  static const std::vector<PlSegment> segs = [] {
    const double bp[] = {0.0, 0.4, 0.8, 1.2, 1.7, 2.3, 3.0, 4.0};
    std::vector<PlSegment> s;
    for (int i = 0; i + 1 < 8; ++i) {
      const double x0 = bp[i], x1 = bp[i + 1];
      const double slope = (std::tanh(x1) - std::tanh(x0)) / (x1 - x0);
      const double intercept = std::tanh(x0) - slope * x0;
      s.push_back({x1, slope, intercept});
    }
    return s;
  }();
  return segs;
}

}  // namespace

Bus segment_interp(Builder& b, const Bus& x_unsigned, double range,
                   size_t segments, double (*f)(double), FixedFormat fmt) {
  if ((segments & (segments - 1)) != 0)
    throw std::invalid_argument("segments must be a power of two");
  const size_t frac = fmt.frac_bits;
  const double seg_width = range / static_cast<double>(segments);
  const double raw_per_seg = seg_width * static_cast<double>(1ull << frac);
  const size_t shift = static_cast<size_t>(std::llround(std::log2(raw_per_seg)));
  if (std::abs(raw_per_seg - std::pow(2.0, static_cast<double>(shift))) > 1e-9)
    throw std::invalid_argument("range/segments must be 2^k raw units");
  const size_t index_bits = clog2(segments);
  if (shift + index_bits > x_unsigned.size())
    throw std::invalid_argument("input bus too narrow for interp domain");

  // Endpoint and rise tables; f must be monotone non-decreasing so the
  // rise fits in an unsigned narrow bus.
  std::vector<int64_t> y0(segments), dy(segments);
  int64_t max_dy = 0;
  for (size_t i = 0; i < segments; ++i) {
    const double x0 = static_cast<double>(i) * seg_width;
    const double x1 = x0 + seg_width;
    const int64_t a = Fixed::from_double(f(x0), fmt).raw();
    const int64_t c = Fixed::from_double(f(x1), fmt).raw();
    if (c < a) throw std::invalid_argument("segment_interp needs monotone f");
    y0[i] = a;
    dy[i] = c - a;
    max_dy = std::max(max_dy, dy[i]);
  }
  const size_t dy_bits = std::max<size_t>(1, clog2(static_cast<size_t>(max_dy) + 1));

  Bus index(index_bits), delta(shift);
  for (size_t i = 0; i < index_bits; ++i) index[i] = x_unsigned[shift + i];
  for (size_t i = 0; i < shift; ++i) delta[i] = x_unsigned[i];

  const Bus base = lut(b, index, y0, fmt.total_bits);
  const Bus rise = lut(b, index, dy, dy_bits);

  // (rise * delta) >> shift at width dy_bits + shift; both operands are
  // zero-extended so the signed multiplier sees non-negative values.
  const size_t w = dy_bits + shift + 1;
  const Bus rise_w = zero_extend(b, rise, w);
  const Bus delta_w = zero_extend(b, delta, w);
  Bus prod = mult_fixed(b, rise_w, delta_w, shift);
  // prod <= max_dy; widen/narrow to format width.
  if (prod.size() < fmt.total_bits)
    prod = zero_extend(b, prod, fmt.total_bits);
  else
    prod = truncate(prod, fmt.total_bits);

  return add(b, base, prod);
}

Bus tanh_seg(Builder& b, const Bus& x, FixedFormat fmt) {
  // Full |x| domain [0, 2^int_bits) with 1/32-wide segments: for the
  // default Q(16,12) this is 256 segments over [0, 8), giving a maximum
  // interpolation error of h^2 max|f''|/8 ~ 9.4e-5 (~0.01%).
  const double range = std::pow(2.0, static_cast<double>(fmt.int_bits()));
  const size_t segments = size_t{1} << (fmt.int_bits() + 5);
  const Bus a = abs_clamped(b, x);
  const Bus y = segment_interp(b, a, range, segments, ref_tanh, fmt);
  return mux_bus(b, sign_bit(x), negate(b, y), y);
}

Bus sigmoid_seg(Builder& b, const Bus& x, FixedFormat fmt) {
  const double range = std::pow(2.0, static_cast<double>(fmt.int_bits()));
  const size_t segments = size_t{1} << (fmt.int_bits() + 4);
  const Bus a = abs_clamped(b, x);
  const Bus y = segment_interp(b, a, range, segments, ref_sigmoid, fmt);
  const Bus one = constant_fixed(b, 1.0, fmt);
  return mux_bus(b, sign_bit(x), sub(b, one, y), y);
}

Bus tanh_pl(Builder& b, const Bus& x, FixedFormat fmt) {
  const auto& segs = tanh_pl_segments();
  const Bus a = abs_clamped(b, x);

  // Select slope/intercept by comparing |x| against segment bounds from
  // the innermost segment outward, then one shared multiply-add.
  Bus slope = constant_fixed(b, 0.0, fmt);      // saturation region
  Bus intercept = constant_fixed(b, 1.0, fmt);  // y = 1 beyond the last bound
  for (size_t i = segs.size(); i-- > 0;) {
    const Bus bound = constant_fixed(b, segs[i].upper, fmt);
    const Wire in_seg = lt_signed(b, a, bound);
    slope = mux_bus(b, in_seg, constant_fixed(b, segs[i].slope, fmt), slope);
    intercept =
        mux_bus(b, in_seg, constant_fixed(b, segs[i].intercept, fmt), intercept);
  }
  const Bus prod = mult_fixed(b, a, slope, fmt.frac_bits);
  const Bus y = add(b, prod, intercept);
  return mux_bus(b, sign_bit(x), negate(b, y), y);
}

Bus sigmoid_plan(Builder& b, const Bus& x, FixedFormat fmt) {
  const Bus a = abs_clamped(b, x);

  const Bus t1 = add(b, sar_const(a, 2), constant_fixed(b, 0.5, fmt));
  const Bus t2 = add(b, sar_const(a, 3), constant_fixed(b, 0.625, fmt));
  const Bus t3 = add(b, sar_const(a, 5), constant_fixed(b, 0.84375, fmt));
  const Bus one = constant_fixed(b, 1.0, fmt);

  const Wire c1 = lt_signed(b, a, constant_fixed(b, 1.0, fmt));
  const Wire c2 = lt_signed(b, a, constant_fixed(b, 2.375, fmt));
  const Wire c3 = lt_signed(b, a, constant_fixed(b, 5.0, fmt));

  Bus y = mux_bus(b, c3, t3, one);
  y = mux_bus(b, c2, t2, y);
  y = mux_bus(b, c1, t1, y);
  return mux_bus(b, sign_bit(x), sub(b, one, y), y);
}

double ref_tanh_pl(double x) {
  const double a = std::abs(x);
  double y = 1.0;
  for (const PlSegment& s : tanh_pl_segments()) {
    if (a < s.upper) {
      y = s.slope * a + s.intercept;
      break;
    }
  }
  return x < 0 ? -y : y;
}

double ref_sigmoid_plan(double x) {
  const double a = std::abs(x);
  double y;
  if (a < 1.0)
    y = a / 4.0 + 0.5;
  else if (a < 2.375)
    y = a / 8.0 + 0.625;
  else if (a < 5.0)
    y = a / 32.0 + 0.84375;
  else
    y = 1.0;
  return x < 0 ? 1.0 - y : y;
}

double ref_segment_interp(double x, double range, size_t segments,
                          double (*f)(double)) {
  const double a = std::abs(x);
  const double w = range / static_cast<double>(segments);
  const size_t i = std::min(static_cast<size_t>(a / w), segments - 1);
  const double x0 = static_cast<double>(i) * w;
  const double t = (a - x0) / w;
  return f(x0) + t * (f(x0 + w) - f(x0));
}

}  // namespace deepsecure::synth
