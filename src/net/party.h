// Two-party execution harness: runs the client (Alice, garbler) and the
// server (Bob, evaluator) roles concurrently on one machine, each on its
// own thread, connected by a MemChannel pair.
#pragma once

#include <functional>

#include "net/mem_channel.h"

namespace deepsecure {

struct TwoPartyStats {
  uint64_t a_to_b_bytes = 0;  // garbled tables + garbler labels dominate
  uint64_t b_to_a_bytes = 0;
  double a_seconds = 0.0;
  double b_seconds = 0.0;
  double wall_seconds = 0.0;

  uint64_t total_bytes() const { return a_to_b_bytes + b_to_a_bytes; }
};

/// Run `alice` and `bob` concurrently over a fresh channel pair.
/// Exceptions thrown by either role are rethrown on the caller's thread.
TwoPartyStats run_two_party(const std::function<void(Channel&)>& alice,
                            const std::function<void(Channel&)>& bob);

}  // namespace deepsecure
