#include "gc/garble.h"

#include <stdexcept>

#include "crypto/aes128.h"
#include "crypto/hash_backend.h"
#include "gc/batch_walk.h"
#include "gc/block_io.h"
#include "support/thread_pool.h"

namespace deepsecure {

Labels Evaluator::evaluate(const Circuit& c, const Labels& garbler_labels,
                           const Labels& evaluator_labels,
                           const Labels& state_labels, Labels* state_next) {
  if (garbler_labels.size() != c.garbler_inputs.size() ||
      evaluator_labels.size() != c.evaluator_inputs.size() ||
      state_labels.size() != c.state_inputs.size())
    throw std::invalid_argument("evaluate: input label count mismatch");

  Labels w(c.num_wires);
  w[kConst0] = ch_.recv_block();
  w[kConst1] = ch_.recv_block();

  for (size_t i = 0; i < garbler_labels.size(); ++i)
    w[c.garbler_inputs[i]] = garbler_labels[i];
  for (size_t i = 0; i < evaluator_labels.size(); ++i)
    w[c.evaluator_inputs[i]] = evaluator_labels[i];
  for (size_t i = 0; i < state_labels.size(); ++i)
    w[c.state_inputs[i]] = state_labels[i];

  // Walk the same scheduled order the garbler walked (see garbler.cpp);
  // tables and tweaks are consumed in that shared order.
  std::shared_ptr<const Circuit> sched;
  const Circuit& walk = opt_.schedule ? *(sched = c.gc_scheduled()) : c;

  // Framed mode self-describes (length-prefixed window frames), so the
  // reader needs no total; monolithic mode must know the stream length.
  BlockReader tables(ch_, 1 << 15, opt_.framed_tables);
  if (!opt_.framed_tables) tables.expect(2 * c.stats().num_and);
  if (opt_.pipeline == GcPipeline::kScalar)
    evaluate_gates_scalar(walk, w, tables);
  else
    evaluate_gates_batched(walk, w, tables);

  if (state_next != nullptr) {
    state_next->resize(c.state_next.size());
    for (size_t i = 0; i < c.state_next.size(); ++i)
      (*state_next)[i] = w[c.state_next[i]];
  }
  Labels out(c.outputs.size());
  for (size_t i = 0; i < c.outputs.size(); ++i) out[i] = w[c.outputs[i]];
  return out;
}

// Retained scalar reference path (see garbler.cpp for rationale).
void Evaluator::evaluate_gates_scalar(const Circuit& c, Labels& w,
                                      BlockReader& tables) {
  for (const Gate& g : c.gates) {
    if (g.op == GateOp::kXor) {
      w[g.out] = w[g.a] ^ w[g.b];
      continue;
    }
    const Block wa = w[g.a];
    const Block wb = w[g.b];
    const uint64_t j0 = tweak_++;
    const uint64_t j1 = tweak_++;
    const Block tg = tables.get();
    const Block te = tables.get();

    Block wgc = gc_hash(wa, j0);
    if (wa.lsb()) wgc ^= tg;
    Block wec = gc_hash(wb, j1);
    if (wb.lsb()) wec ^= te ^ wa;
    w[g.out] = wgc ^ wec;
  }
}

// Batched pipeline, mirroring Garbler::garble_gates_batched: the same
// flush schedule applies because both sides defer exactly the AND gates.
// Two hashes per gate; table rows are consumed at enqueue time, which
// keeps the read stream in gate order regardless of flush timing.
//
// With a ThreadPool, a draining window splits into contiguous per-shard
// slices exactly like the garbler's: tweaks were assigned and table
// rows consumed at enqueue time on this thread, so shards only hash
// their slice and combine into disjoint output wires — no channel
// access, and the evaluation result is identical to single-threaded.
void Evaluator::evaluate_gates_batched(const Circuit& c, Labels& w,
                                       BlockReader& tables) {
  const HashBackend& be =
      opt_.hash_backend != nullptr ? *opt_.hash_backend : hash_backend();
  EvalWindowLine line(kGcMaxBatchWindow);

  auto flush = [&](bool /*level_boundary*/) {
    // The reader side is frame-agnostic (frames self-describe), so the
    // flush reason is irrelevant here — only the drain schedule matters.
    const size_t n = line.size;
    if (n == 0) return;
    auto shard = [&](size_t lo, size_t hi) {
      gc_hash_batch(be, line.ins + 2 * lo, line.tweaks + 2 * lo,
                    line.hashes + 2 * lo, 2 * (hi - lo));
      for (size_t i = lo; i < hi; ++i) {
        const Block wa = line.ins[2 * i];
        Block wgc = line.hashes[2 * i];
        if (wa.lsb()) wgc ^= line.tabs[2 * i];
        Block wec = line.hashes[2 * i + 1];
        if (line.ins[2 * i + 1].lsb()) wec ^= line.tabs[2 * i + 1] ^ wa;
        w[line.outs[i]] = wgc ^ wec;  // disjoint wires across shards
      }
    };
    if (opt_.pool != nullptr)
      opt_.pool->parallel_shards(n, opt_.min_shard_gates, shard);
    else
      shard(0, n);
    line.size = 0;
  };

  gc_batched_walk(
      c,
      [&](const Gate& g) { w[g.out] = w[g.a] ^ w[g.b]; },  // free-XOR
      [&](const Gate& g) {
        const size_t i = line.size++;
        line.ins[2 * i] = w[g.a];
        line.ins[2 * i + 1] = w[g.b];
        line.tweaks[2 * i] = tweak_++;
        line.tweaks[2 * i + 1] = tweak_++;
        line.tabs[2 * i] = tables.get();
        line.tabs[2 * i + 1] = tables.get();
        line.outs[i] = g.out;
      },
      flush);
}

Labels Evaluator::recv_active(size_t n) {
  Labels labels(n);
  if (n > 0) ch_.recv_bytes(labels.data(), n * sizeof(Block));
  return labels;
}

void Evaluator::send_outputs(const Labels& labels) {
  if (!labels.empty())
    ch_.send_bytes(labels.data(), labels.size() * sizeof(Block));
}

BitVec Evaluator::decode_with_info(const Labels& labels) {
  const BitVec perm = ch_.recv_bits();
  if (perm.size() != labels.size())
    throw std::runtime_error("decode_with_info: size mismatch");
  BitVec bits(labels.size());
  for (size_t i = 0; i < labels.size(); ++i)
    bits[i] = (labels[i].lsb() ? 1u : 0u) ^ perm[i];
  return bits;
}

}  // namespace deepsecure
