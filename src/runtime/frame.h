// Session-level frame protocol for the streaming inference runtime.
//
// Two framing layers exist in the wire format:
//   1. Garbled-table frames (gc/block_io.h): length-prefixed batch-window
//      payloads inside one garbling pass — the data plane.
//   2. Session frames (this header): typed control messages that bracket
//      protocol runs — hello/ack handshake, per-inference request
//      markers, orderly shutdown, and error reporting — the control
//      plane of runtime/server.h and runtime/client.h.
//
// Session frame encoding (all integers little-endian/host, like every
// other scalar this protocol ships):
//   [u8 type][u32 payload_bytes][payload]
//
// The handshake pins down everything both endpoints must agree on
// before protocol bytes flow: a protocol magic/version, a fingerprint
// of the compiled circuit chain (architecture is public knowledge in
// the paper's model — both sides compile it independently), and the
// wire-format flags (framed tables). A mismatch yields a kError frame
// and connection close instead of a byte-level desync mid-OT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "gc/material.h"
#include "net/channel.h"

namespace deepsecure::runtime {

inline constexpr uint64_t kProtocolMagic = 0x44535255'4e313031ull;  // "DSRUN101"
// v2: offline/online split — kPrefetch/kPrefetchAck frames, pooled
// kInfer (8-byte material id payload), bulk base-OT and packed
// u-column wire encodings.
// v3: width-scheduled gate order (circuit/schedule.h) — the garbled
// tables and tweaks of every inference follow the scheduled netlist by
// default, negotiated via SessionFlags::schedule; the hello fingerprint
// is computed over the scheduled netlist.
// v4: async prefetch lane — the hello ack grows a per-session lane
// token and the server's dedicated lane-listener port; a client opens a
// SECOND connection to that port, claims its session with kAttachLane,
// and streams kPrefetch pushes there while kInfer traffic continues
// uninterrupted on the primary connection (the precomputed-OT exchange
// is bidirectional, so it cannot be multiplexed with in-flight infer
// results on one socket). Also schedule-aware table frame sizing: the
// garbler cuts table frames at AND-level boundaries instead of every
// batch window (frames self-describe, so this needs no negotiation).
// v5: stats introspection — kStats asks the server for its runtime
// counters; the kStatsReply payload is the self-describing stats_json()
// document (schema may grow freely: the frame is length-prefixed JSON,
// so no renegotiation). Optional: a client that never sends kStats is
// wire-compatible with v4 behavior.
// v6: graceful degradation — kBusy (u32 retry-after-ms payload) sheds
// load at admission instead of silently queueing connections behind
// the backlog, and kError payloads carry a leading machine-readable
// reason code byte (ErrorCode) ahead of the utf-8 reason, so a
// self-healing client can tell "overloaded, retry" from "you are
// speaking the wrong protocol, give up". Malformed input now earns a
// coded kError before teardown rather than a raw disconnect.
inline constexpr uint32_t kProtocolVersion = 6;

enum class FrameType : uint8_t {
  kHello = 1,     // client -> server: magic, version, fingerprint, flags
  kHelloAck = 2,  // server -> client: fingerprint echo, prefetch quota,
                  // lane token, lane port (see HelloAck)
  kInfer = 3,     // client -> server: one inference. Empty payload: the
                  // on-demand GC byte stream follows (garble on the
                  // request path). 8-byte payload: a material id — the
                  // online phase against prefetched material follows.
  kBye = 4,       // client -> server: orderly session/lane end
  kError = 5,     // either way: utf-8 reason, then close
  kPrefetch = 6,  // client -> server: 8-byte material id, then the
                  // offline artifact (decode bits + tables) and the
                  // precomputed-OT + derandomization exchange. Valid on
                  // the primary connection and on an attached lane.
  kPrefetchAck = 7,  // server -> client: material id echo, stored
  kAttachLane = 8,   // client -> server, first frame on a lane
                     // connection: 8-byte session token from the hello
                     // ack. At most one lane per session.
  kAttachLaneAck = 9,  // server -> client: token echo, lane ready
  kStats = 10,      // client -> server, empty payload: report runtime
                    // counters (v5). Valid between inferences on the
                    // primary connection.
  kStatsReply = 11,  // server -> client: stats_json() bytes (utf-8 JSON,
                     // self-describing — fields may grow without a
                     // version bump)
  kBusy = 12,  // server -> client, instead of kHelloAck: admission shed
               // under overload (v6). Payload: u32 retry-after-ms hint.
               // The server closes after sending; the client backs off
               // and reconnects.
};

/// Machine-readable kError reason codes (v6): the first payload byte,
/// followed by the human-readable utf-8 reason. Values are wire-stable.
enum class ErrorCode : uint8_t {
  kUnspecified = 0,  // legacy/unclassified (the pre-v6 payload shape
                     // maps here via send_error(ch, reason))
  kHandshake = 1,    // magic/version/fingerprint/flags mismatch
  kMalformed = 2,    // unparseable or unexpected frame for this state
  kQuota = 3,        // prefetch quota or global byte budget exhausted
  kMaterial = 4,     // unknown/duplicate/mismatched material id
  kLane = 5,         // bad lane token / duplicate lane attach
  kInternal = 6,     // server-side failure while serving the request
};

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// Wire-format flags carried in the hello (must match on both ends).
struct SessionFlags {
  bool framed_tables = true;
  /// Both parties walk the width-scheduled gate order. Strictly the
  /// fingerprint already covers the walked order; the explicit flag
  /// turns a mismatch into a named rejection instead of a bare
  /// fingerprint error.
  bool schedule = gc_schedule_default();
  uint8_t encode() const {
    return (framed_tables ? 1u : 0u) | (schedule ? 2u : 0u);
  }
  static SessionFlags decode(uint8_t v) {
    return SessionFlags{(v & 1u) != 0, (v & 2u) != 0};
  }
};

struct Hello {
  uint64_t magic = kProtocolMagic;
  uint32_t version = kProtocolVersion;
  uint64_t fingerprint = 0;
  SessionFlags flags;
};

/// Server half of the handshake (kHelloAck payload, 26 bytes): the
/// fingerprint echo, the per-session prefetch quota (so a pooling
/// client can cap pushes instead of discovering the limit as a
/// session-killing error), and the async-prefetch-lane coordinates —
/// an unguessable-by-third-parties token naming this session plus the
/// dedicated lane listener's port (v4).
struct HelloAck {
  uint64_t fingerprint = 0;
  uint64_t prefetch_quota = 0;
  uint64_t lane_token = 0;
  uint16_t lane_port = 0;
};

void send_frame(Channel& ch, FrameType type, const void* payload = nullptr,
                size_t n = 0);
Frame recv_frame(Channel& ch);

/// Frames whose payload is a single u64 (pooled kInfer, kPrefetch,
/// kPrefetchAck carry a material id; kAttachLane/-Ack a session token).
void send_id_frame(Channel& ch, FrameType type, uint64_t id);
uint64_t parse_id(const Frame& f);

void send_hello(Channel& ch, const Hello& h);
Hello parse_hello(const Frame& f);

void send_hello_ack(Channel& ch, const HelloAck& a);
HelloAck parse_hello_ack(const Frame& f);

/// Raise a std::runtime_error carrying `reason` on the peer and locally.
/// The coded overload prefixes the v6 ErrorCode byte; the legacy
/// overload sends ErrorCode::kUnspecified. recv_frame strips the code
/// and throws "runtime: peer error: <reason>" either way.
void send_error(Channel& ch, ErrorCode code, const std::string& reason);
void send_error(Channel& ch, const std::string& reason);

/// Admission shed (v6): kBusy carrying a retry-after hint. The server
/// closes the connection after sending; parse_busy reads the hint back.
void send_busy(Channel& ch, uint32_t retry_after_ms);
uint32_t parse_busy(const Frame& f);

/// FNV-1a over the full gate list and interface of every circuit in the
/// chain: two endpoints that compiled different netlists (or different
/// layer orders) disagree with overwhelming probability. The canonical
/// implementation lives with the offline artifacts (gc/material.h),
/// which stamp the same fingerprint the handshake checks.
using deepsecure::chain_fingerprint;

}  // namespace deepsecure::runtime
