#include "synth/activation.h"

#include <cmath>
#include <stdexcept>

#include "synth/cordic.h"
#include "synth/lut.h"
#include "synth/piecewise.h"

namespace deepsecure::synth {
namespace {

// Exact LUT over the full |x| domain; sign handled by symmetry
// (tanh is odd; sigmoid reflects through (0, 1/2)).
Bus exact_lut_activation(Builder& b, const Bus& x, FixedFormat fmt,
                         bool sigmoid) {
  const size_t index_bits = fmt.total_bits - 1;  // |x| occupies n-1 bits
  const size_t entries = size_t{1} << index_bits;
  std::vector<int64_t> table(entries);
  const double scale = static_cast<double>(1ull << fmt.frac_bits);
  for (size_t i = 0; i < entries; ++i) {
    const double v = static_cast<double>(i) / scale;
    const double y = sigmoid ? ref_sigmoid(v) : ref_tanh(v);
    table[i] = Fixed::from_double(y, fmt).raw();
  }

  const Bus a = abs_clamped(b, x);
  const Bus index = truncate(a, index_bits);
  const Bus y = lut(b, index, table, fmt.total_bits);
  if (sigmoid) {
    const Bus one = constant_fixed(b, 1.0, fmt);
    return mux_bus(b, sign_bit(x), sub(b, one, y), y);
  }
  return mux_bus(b, sign_bit(x), negate(b, y), y);
}

}  // namespace

Bus activation(Builder& b, const Bus& x, ActKind kind, FixedFormat fmt) {
  switch (kind) {
    case ActKind::kIdentity:
      return x;
    case ActKind::kReLU:
      return relu(b, x);
    case ActKind::kTanhLUT:
      return exact_lut_activation(b, x, fmt, /*sigmoid=*/false);
    case ActKind::kTanhSeg:
      return tanh_seg(b, x, fmt);
    case ActKind::kTanhPL:
      return tanh_pl(b, x, fmt);
    case ActKind::kTanhCORDIC:
      return tanh_cordic(b, x, fmt);
    case ActKind::kSigmoidLUT:
      return exact_lut_activation(b, x, fmt, /*sigmoid=*/true);
    case ActKind::kSigmoidSeg:
      return sigmoid_seg(b, x, fmt);
    case ActKind::kSigmoidPLAN:
      return sigmoid_plan(b, x, fmt);
    case ActKind::kSigmoidCORDIC:
      return sigmoid_cordic(b, x, fmt);
  }
  throw std::invalid_argument("unknown activation kind");
}

double activation_ideal(double x, ActKind kind) {
  switch (kind) {
    case ActKind::kIdentity:
      return x;
    case ActKind::kReLU:
      return x > 0 ? x : 0.0;
    case ActKind::kTanhLUT:
    case ActKind::kTanhSeg:
    case ActKind::kTanhPL:
    case ActKind::kTanhCORDIC:
      return ref_tanh(x);
    default:
      return ref_sigmoid(x);
  }
}

double activation_ref(double x, ActKind kind, FixedFormat fmt) {
  const double range = std::pow(2.0, static_cast<double>(fmt.int_bits()));
  switch (kind) {
    case ActKind::kTanhSeg: {
      const size_t segs = size_t{1} << (fmt.int_bits() + 5);
      const double y = ref_segment_interp(x, range, segs, ref_tanh);
      return x < 0 ? -y : y;
    }
    case ActKind::kSigmoidSeg: {
      const size_t segs = size_t{1} << (fmt.int_bits() + 4);
      const double y = ref_segment_interp(x, range, segs, ref_sigmoid);
      return x < 0 ? 1.0 - y : y;
    }
    case ActKind::kTanhPL:
      return ref_tanh_pl(x);
    case ActKind::kSigmoidPLAN:
      return ref_sigmoid_plan(x);
    default:
      return activation_ideal(x, kind);
  }
}

std::string act_kind_name(ActKind kind) {
  switch (kind) {
    case ActKind::kIdentity: return "Identity";
    case ActKind::kReLU: return "ReLu";
    case ActKind::kTanhLUT: return "TanhLUT";
    case ActKind::kTanhSeg: return "TanhSeg256";
    case ActKind::kTanhPL: return "TanhPL";
    case ActKind::kTanhCORDIC: return "TanhCORDIC";
    case ActKind::kSigmoidLUT: return "SigmoidLUT";
    case ActKind::kSigmoidSeg: return "SigmoidSeg128";
    case ActKind::kSigmoidPLAN: return "SigmoidPLAN";
    case ActKind::kSigmoidCORDIC: return "SigmoidCORDIC";
  }
  return "?";
}

bool is_tanh(ActKind kind) {
  return kind == ActKind::kTanhLUT || kind == ActKind::kTanhSeg ||
         kind == ActKind::kTanhPL || kind == ActKind::kTanhCORDIC;
}

bool is_sigmoid(ActKind kind) {
  return kind == ActKind::kSigmoidLUT || kind == ActKind::kSigmoidSeg ||
         kind == ActKind::kSigmoidPLAN || kind == ActKind::kSigmoidCORDIC;
}

}  // namespace deepsecure::synth
