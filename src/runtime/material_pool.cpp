#include "runtime/material_pool.h"

#include <algorithm>

#include "obs/trace.h"

namespace deepsecure::runtime {

MaterialPool::MaterialPool(const std::vector<Circuit>& chain,
                           const GcOptions& opt, MaterialPoolConfig cfg)
    : chain_(chain),
      opt_(opt),
      target_(cfg.target),
      seed_prg_(cfg.seed == Block{} ? Prg::from_os_entropy().next_block()
                                    : cfg.seed),
      shard_workers_(cfg.shard_threads > 0
                         ? std::make_unique<ThreadPool>(cfg.shard_threads)
                         : nullptr),
      workers_(std::make_unique<ThreadPool>(
          cfg.producer_threads > 0 ? cfg.producer_threads : 1)) {
  // One producer task per artifact. With shard_threads the task fans
  // its batch windows out across the shared shard pool (byte-identical
  // artifact — gc/material.h), cutting the time-to-first-warm-artifact;
  // without it, each artifact garbles single-threaded so producers
  // alone carry the cross-artifact parallelism.
  opt_.pool = shard_workers_.get();
  // The lock-free handoff needs a unique producer (see config docs);
  // capacity covers the standing inventory plus a waiting acquirer's
  // ad-hoc production so the overflow deque is cold in steady state.
  if (cfg.ring_handoff && cfg.producer_threads <= 1)
    ring_ = std::make_unique<SpscRing<GarbledMaterial>>(target_ + 2);
  std::lock_guard<std::mutex> lock(mu_);
  schedule_refill_locked();
}

MaterialPool::MaterialPool(const std::vector<Circuit>& chain,
                           const GcOptions& opt, size_t target,
                           size_t producer_threads, Block seed)
    : MaterialPool(chain, opt,
                   MaterialPoolConfig{target, producer_threads,
                                      /*shard_threads=*/0, seed}) {}

MaterialPool::~MaterialPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;  // queued producer tasks become no-ops
  }
  workers_.reset();  // drains the task queue, joins the workers
  // Unconsumed inventory dies with the pool: settle the process-wide
  // occupancy gauge so short-lived pools don't leave it elevated.
  g_ready_.sub(
      static_cast<int64_t>(ready_.size() + (ring_ ? ring_->size() : 0)));
}

// Caller holds mu_. Keeps enough production scheduled for the standing
// inventory (`target_`) AND every currently blocked acquire() — the
// latter matters at target 0, and whenever an artifact is taken out
// from under a waiter whose ad-hoc production it consumed.
void MaterialPool::schedule_refill_locked() {
  const size_t want = std::max(target_, waiting_);
  const size_t have = ready_.size() + (ring_ ? ring_->size() : 0);
  while (!stopping_ && have + in_flight_ < want) {
    ++in_flight_;
    workers_->submit([this] { produce_one(); });
  }
}

void MaterialPool::produce_one() {
  Block seed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      --in_flight_;
      return;
    }
    seed = seed_prg_.next_block();
  }
  // Garble outside the lock — this is the expensive part the pool
  // exists to keep off the request path. Exceptions must not escape
  // (they would terminate the worker thread); they are parked for the
  // next acquire to rethrow instead.
  GarbledMaterial mat;
  std::exception_ptr err;
  const uint64_t t0 = obs::now_ns();
  {
    // Named for the merged two-party timeline: this is the client
    // (garbler) side's offline work, regardless of which pool thread
    // runs it.
    obs::Span span("client.garble_offline");
    try {
      mat = garble_offline(chain_, seed, opt_);
    } catch (...) {
      err = std::current_exception();
    }
  }
  if (!err) h_refill_ns_.observe(obs::now_ns() - t0);
  // Publish through the ring OUTSIDE the lock (single producer): the
  // consumer can pick the artifact up while this thread is still doing
  // its bookkeeping below. Full ring (transient, around a waiting
  // acquirer's ad-hoc production) falls back to the deque.
  const bool pushed = !err && ring_ != nullptr && ring_->try_push(std::move(mat));
  if (pushed) g_ready_.add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (stopping_) return;  // a ring-published artifact dies with the pool
    if (err) {
      if (!error_) error_ = err;
    } else {
      if (!pushed) {
        ready_.push_back(std::move(mat));
        g_ready_.add(1);
      }
      ++produced_;
      c_produced_.add();
    }
  }
  // notify_all: concurrent acquirers each submitted their own
  // production, so every waiter may have an artifact (or the parked
  // error) to pick up.
  ready_cv_.notify_all();
}

// Caller holds mu_. A parked producer error is rethrown (sticky: the
// chain/options are wrong for every future artifact too).
void MaterialPool::rethrow_error_locked() {
  if (error_) std::rethrow_exception(error_);
}

// Caller holds mu_ (serializing concurrent acquirers against each
// other; the producer's ring push needs no lock). Ring first — it is
// the hot path; the deque only holds multi-producer or overflow spill.
bool MaterialPool::take_ready_locked(GarbledMaterial& out) {
  if (ring_ != nullptr && ring_->try_pop(out)) {
    g_ready_.sub(1);
    return true;
  }
  if (!ready_.empty()) {
    out = std::move(ready_.front());
    ready_.pop_front();
    g_ready_.sub(1);
    return true;
  }
  return false;
}

std::optional<GarbledMaterial> MaterialPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  GarbledMaterial mat;
  if (!take_ready_locked(mat)) {
    rethrow_error_locked();
    ++misses_;
    c_misses_.add();
    schedule_refill_locked();
    // Honor "triggers a refill either way" at target 0 too: a caller
    // polling try_acquire must eventually get an artifact even though
    // the standing refill plan is empty.
    if (!stopping_ && in_flight_ == 0) {
      ++in_flight_;
      workers_->submit([this] { produce_one(); });
    }
    return std::nullopt;
  }
  ++acquired_;
  c_hits_.add();
  schedule_refill_locked();
  return mat;
}

GarbledMaterial MaterialPool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  rethrow_error_locked();
  ++waiting_;
  schedule_refill_locked();
  GarbledMaterial mat;
  bool got = false;
  ready_cv_.wait(lock,
                 [&] { return (got = take_ready_locked(mat)) || error_; });
  --waiting_;
  if (!got) rethrow_error_locked();  // woke on a parked producer error
  ++acquired_;
  c_hits_.add();
  schedule_refill_locked();
  return mat;
}

size_t MaterialPool::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.size() + (ring_ ? ring_->size() : 0);
}

}  // namespace deepsecure::runtime
