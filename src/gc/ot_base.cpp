// Chou-Orlandi base OT (semi-honest):
//   Sender: a <- random, A = aG. Publish A.
//   Receiver (choice c): b <- random, B = cA + bG. Publish B.
//   Sender keys:   k_j = H(a * (B - jA), i)    for j in {0,1}
//   Receiver key:  k_c = H(b * A, i)
// since a(B - cA) = abG.
#include "gc/ot.h"

#include <stdexcept>

#include "crypto/ed25519.h"
#include "crypto/sha256.h"

namespace deepsecure {
namespace {

Ed25519Scalar random_scalar(Prg& prg) {
  Ed25519Scalar k{};
  prg.fill_bytes(k.data(), k.size());
  // Clear the top bit to stay below 2^255 (any scalar works for DH-style
  // use; clamping is unnecessary in the semi-honest setting).
  k[31] &= 0x7F;
  return k;
}

Block point_kdf(const Ed25519Point& p, uint64_t index) {
  const auto enc = p.encode();
  return kdf_block("deepsecure-base-ot", index, enc.data(), enc.size());
}

void send_point(Channel& ch, const Ed25519Point& p) {
  const auto enc = p.encode();
  ch.send_bytes(enc.data(), enc.size());
}

Ed25519Point recv_point(Channel& ch) {
  std::array<uint8_t, 64> enc{};
  ch.recv_bytes(enc.data(), enc.size());
  auto p = Ed25519Point::decode(enc.data());
  if (!p) throw std::runtime_error("base OT: off-curve point received");
  return *p;
}

}  // namespace

void base_ot_send(Channel& ch, const std::vector<std::pair<Block, Block>>& msgs,
                  Prg& prg) {
  const Ed25519Scalar a = random_scalar(prg);
  const Ed25519Point big_a = Ed25519Point::base_mul(a);
  send_point(ch, big_a);

  for (size_t i = 0; i < msgs.size(); ++i) {
    const Ed25519Point big_b = recv_point(ch);
    const Ed25519Point k0_point = Ed25519Point::mul(big_b, a);
    const Ed25519Point k1_point =
        Ed25519Point::mul(Ed25519Point::sub(big_b, big_a), a);
    const Block e0 = msgs[i].first ^ point_kdf(k0_point, i);
    const Block e1 = msgs[i].second ^ point_kdf(k1_point, i);
    ch.send_block(e0);
    ch.send_block(e1);
  }
}

std::vector<Block> base_ot_recv(Channel& ch, const BitVec& choices, Prg& prg) {
  const Ed25519Point big_a = recv_point(ch);

  std::vector<Block> out(choices.size());
  for (size_t i = 0; i < choices.size(); ++i) {
    const Ed25519Scalar b = random_scalar(prg);
    Ed25519Point big_b = Ed25519Point::base_mul(b);
    if (choices[i]) big_b = Ed25519Point::add(big_b, big_a);
    send_point(ch, big_b);

    const Block key = point_kdf(Ed25519Point::mul(big_a, b), i);
    const Block e0 = ch.recv_block();
    const Block e1 = ch.recv_block();
    out[i] = (choices[i] ? e1 : e0) ^ key;
  }
  return out;
}

}  // namespace deepsecure
