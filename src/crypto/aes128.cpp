#include "crypto/aes128.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "crypto/hash_backend.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace deepsecure {
namespace {

// ---------------------------------------------------------------------
// Portable software AES-128. Straightforward S-box implementation; the
// hot path in release builds is the AES-NI backend, so clarity wins here.
// ---------------------------------------------------------------------

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

uint8_t xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1B));
}

void sub_bytes(uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

void shift_rows(uint8_t s[16]) {
  // State is column-major: s[4*col + row].
  uint8_t t[16];
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) & 3) + r];
  std::memcpy(s, t, 16);
}

void mix_columns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* p = s + 4 * c;
    const uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
    p[0] = static_cast<uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    p[1] = static_cast<uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    p[2] = static_cast<uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    p[3] = static_cast<uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void add_round_key(uint8_t s[16], Block rk) {
  uint8_t k[16];
  rk.to_bytes(k);
  for (int i = 0; i < 16; ++i) s[i] ^= k[i];
}

std::atomic<bool> g_force_software{false};

bool detect_aesni() {
#if defined(DEEPSECURE_AESNI_COMPILED) && (defined(__x86_64__) || defined(__i386__))
  unsigned eax, ebx, ecx, edx;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 25)) != 0;  // AESNI feature bit
#else
  return false;
#endif
}

}  // namespace

Aes128Key aes128_expand(Block key) {
  static constexpr uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                        0x20, 0x40, 0x80, 0x1B, 0x36};
  uint8_t w[11][16];
  key.to_bytes(w[0]);
  for (int r = 1; r <= 10; ++r) {
    uint8_t t[4] = {w[r - 1][12], w[r - 1][13], w[r - 1][14], w[r - 1][15]};
    // RotWord + SubWord + Rcon
    const uint8_t tmp = t[0];
    t[0] = static_cast<uint8_t>(kSbox[t[1]] ^ kRcon[r - 1]);
    t[1] = kSbox[t[2]];
    t[2] = kSbox[t[3]];
    t[3] = kSbox[tmp];
    for (int i = 0; i < 4; ++i) w[r][i] = static_cast<uint8_t>(w[r - 1][i] ^ t[i]);
    for (int i = 4; i < 16; ++i)
      w[r][i] = static_cast<uint8_t>(w[r - 1][i] ^ w[r][i - 4]);
  }
  Aes128Key out;
  for (int r = 0; r <= 10; ++r) out.rounds[r] = Block::from_bytes(w[r]);
  return out;
}

namespace detail {

Block aes128_encrypt_soft(const Aes128Key& key, Block pt) {
  uint8_t s[16];
  pt.to_bytes(s);
  add_round_key(s, key.rounds[0]);
  for (int r = 1; r < 10; ++r) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, key.rounds[r]);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, key.rounds[10]);
  return Block::from_bytes(s);
}

void aes128_encrypt_batch_soft(const Aes128Key& key, Block* blocks, size_t n) {
  for (size_t i = 0; i < n; ++i) blocks[i] = aes128_encrypt_soft(key, blocks[i]);
}

bool aes128_software_forced() {
  return g_force_software.load(std::memory_order_relaxed);
}

}  // namespace detail

bool aes128_ni_available() {
  static const bool avail = detect_aesni();
  return avail && !g_force_software.load(std::memory_order_relaxed);
}

void aes128_force_software(bool force) {
  g_force_software.store(force, std::memory_order_relaxed);
  // Hardware backends gate on this flag; drop the cached selection so
  // the next sweep re-resolves against the new availability set.
  detail::hash_backend_reselect();
}

Block aes128_encrypt(const Aes128Key& key, Block pt) {
#if defined(DEEPSECURE_AESNI_COMPILED)
  if (aes128_ni_available()) return detail::aes128_encrypt_ni(key, pt);
#endif
  return detail::aes128_encrypt_soft(key, pt);
}

void aes128_encrypt_batch(const Aes128Key& key, Block* blocks, size_t n) {
  const HashBackend& be = hash_backend();
  be.encrypt_batch(key, blocks, n);
}

const Aes128Key& fixed_garbling_key() {
  // Fixed public constant (digits of pi). See Bellare et al. S&P'13.
  static const Aes128Key key =
      aes128_expand(Block{0x243F6A8885A308D3ull, 0x13198A2E03707344ull});
  return key;
}

Block gc_hash(Block x, uint64_t tweak) {
  const Block k = x.gf_double() ^ Block{tweak, 0};
  return aes128_encrypt(fixed_garbling_key(), k) ^ k;
}

Block gc_hash2(Block x, Block y, uint64_t tweak) {
  const Block k = x.gf_double() ^ y.gf_double().gf_double() ^ Block{tweak, 0};
  return aes128_encrypt(fixed_garbling_key(), k) ^ k;
}

namespace {
// Chunk size for the batched hashes: large enough to keep the widest
// (16-block VAES) pipeline saturated, small enough to stay in L1 (and
// on the stack). Counted in blocks.
constexpr size_t kHashChunk = 128;
}  // namespace

void gc_hash_batch(const HashBackend& be, const Block* inputs,
                   const uint64_t* tweaks, Block* out, size_t n) {
  const Aes128Key& key = fixed_garbling_key();
  Block k[kHashChunk];
  for (size_t base = 0; base < n; base += kHashChunk) {
    const size_t m = std::min(kHashChunk, n - base);
    for (size_t i = 0; i < m; ++i)
      k[i] = inputs[base + i].gf_double() ^ Block{tweaks[base + i], 0};
    std::memcpy(out + base, k, m * sizeof(Block));
    be.encrypt_batch(key, out + base, m);
    for (size_t i = 0; i < m; ++i) out[base + i] ^= k[i];
  }
}

void gc_hash_and_quads(const HashBackend& be, const Block* a0, const Block* b0,
                       Block delta, const uint64_t* tweaks, Block* out,
                       size_t n) {
  const Aes128Key& key = fixed_garbling_key();
  const Block d2 = delta.gf_double();
  constexpr size_t kGateChunk = kHashChunk / 4;
  Block k[kHashChunk];
  for (size_t base = 0; base < n; base += kGateChunk) {
    const size_t m = std::min(kGateChunk, n - base);
    for (size_t i = 0; i < m; ++i) {
      const size_t g = base + i;
      const Block ka = a0[g].gf_double() ^ Block{tweaks[2 * g], 0};
      const Block kb = b0[g].gf_double() ^ Block{tweaks[2 * g + 1], 0};
      k[4 * i + 0] = ka;
      k[4 * i + 1] = ka ^ d2;
      k[4 * i + 2] = kb;
      k[4 * i + 3] = kb ^ d2;
    }
    std::memcpy(out + 4 * base, k, 4 * m * sizeof(Block));
    be.encrypt_batch(key, out + 4 * base, 4 * m);
    for (size_t i = 0; i < 4 * m; ++i) out[4 * base + i] ^= k[i];
  }
}

void gc_hash_batch(const Block* inputs, const uint64_t* tweaks, Block* out,
                   size_t n) {
  gc_hash_batch(hash_backend(), inputs, tweaks, out, n);
}

void gc_hash_and_quads(const Block* a0, const Block* b0, Block delta,
                       const uint64_t* tweaks, Block* out, size_t n) {
  gc_hash_and_quads(hash_backend(), a0, b0, delta, tweaks, out, n);
}

}  // namespace deepsecure
