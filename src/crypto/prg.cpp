#include "crypto/prg.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

namespace deepsecure {

Prg::Prg(Block seed) : key_(aes128_expand(seed)) {}

Prg Prg::from_os_entropy() {
  Block seed;
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  if (urandom) {
    uint8_t buf[16];
    urandom.read(reinterpret_cast<char*>(buf), sizeof(buf));
    if (urandom.gcount() == sizeof(buf)) seed = Block::from_bytes(buf);
  }
  // Mix in the clock as a fallback if /dev/urandom was unavailable.
  seed.lo ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return Prg(seed);
}

Block Prg::next_block() {
  Block ctr{counter_++, 0};
  return aes128_encrypt(key_, ctr);
}

void Prg::next_blocks(Block* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = Block{counter_++, 0};
  aes128_encrypt_batch(key_, out, n);
}

void Prg::fill_bytes(void* dst, size_t n) {
  // Counter-block chunks through the batched AES kernel; same keystream
  // (and therefore identical bytes) as the old one-block-at-a-time loop.
  constexpr size_t kChunk = 128;
  Block buf[kChunk];
  auto* p = static_cast<uint8_t*>(dst);
  while (n >= 16) {
    const size_t m = std::min(n / 16, kChunk);
    next_blocks(buf, m);
    for (size_t i = 0; i < m; ++i) buf[i].to_bytes(p + 16 * i);
    p += 16 * m;
    n -= 16 * m;
  }
  if (n > 0) {
    uint8_t tmp[16];
    next_block().to_bytes(tmp);
    std::memcpy(p, tmp, n);
  }
}

std::vector<uint8_t> Prg::expand_bits(size_t n) {
  std::vector<uint8_t> bits(n);
  constexpr size_t kChunk = 128;  // blocks per batch = 16 Kibit
  Block buf[kChunk];
  size_t i = 0;
  while (i < n) {
    const size_t m = std::min((n - i + 127) / 128, kChunk);
    next_blocks(buf, m);
    for (size_t blk = 0; blk < m; ++blk) {
      for (int half = 0; half < 2 && i < n; ++half) {
        const uint64_t word = half == 0 ? buf[blk].lo : buf[blk].hi;
        for (int j = 0; j < 64 && i < n; ++j, ++i)
          bits[i] = static_cast<uint8_t>((word >> j) & 1u);
      }
    }
  }
  return bits;
}

Prg& thread_prg() {
  thread_local Prg prg = Prg::from_os_entropy();
  return prg;
}

}  // namespace deepsecure
