// IKNP oblivious-transfer extension, semi-honest.
//
// Roles are reversed in setup: the extension *sender* is a base-OT
// *receiver* with kappa secret choice bits s, obtaining one of each
// column-seed pair. For every batch of m OTs:
//   receiver: t_i = PRG(k_i^0, m), u_i = t_i ^ PRG(k_i^1, m) ^ r -> send
//   sender:   q_i = PRG(k_i^{s_i}, m) ^ s_i * u_i
//   rows:     q_j = t_j ^ r_j * s
//   sender:   y_j^b = x_j^b ^ H(q_j ^ b*s, j);   receiver: H(t_j, j)
// Column PRGs are stateful so repeated batches (per-layer label
// transfers) reuse the single setup. The kappa u columns travel as one
// packed bulk message, not kappa per-column sends.
//
// Random-OT precomputation reuses the same machinery but stops after
// the hashes: r_j^b = H(q_j ^ b*s, j) *are* the sender's random pairs
// and H(t_j, j) the receiver's chosen one. Derandomization (Beaver) is
// the only online step: the receiver reveals d = b ^ c in one
// correction message and the sender masks its real messages with
// (r_d, r_{1^d}) — so x_b = e_b ^ r_c on the receiving end.
#include "gc/ot.h"

#include <stdexcept>

#include "crypto/aes128.h"

namespace deepsecure {
namespace {

// Domain-separated hash for OT messages (distinct from garbling tweaks).
constexpr Block kOtDomain{0x6f742d657874656eull, 0x646565707365632dull};

Block ot_hash(Block q, uint64_t index) {
  return gc_hash(q ^ kOtDomain, index);
}

// Pack a column-major bit matrix (kappa columns of m bits) into row
// blocks: row j's bit i = cols[i][j].
std::vector<Block> transpose_to_rows(
    const std::vector<std::vector<uint8_t>>& cols, size_t m) {
  std::vector<Block> rows(m, kZeroBlock);
  for (size_t i = 0; i < cols.size(); ++i) {
    const auto& col = cols[i];
    for (size_t j = 0; j < m; ++j) {
      if (!col[j]) continue;
      if (i < 64)
        rows[j].lo |= 1ull << i;
      else
        rows[j].hi |= 1ull << (i - 64);
    }
  }
  return rows;
}

size_t column_stride(size_t m) { return (m + 7) / 8; }

}  // namespace

void OtExtSender::setup(Prg& prg) {
  s_ = BitVec(kOtExtKappa);
  for (auto& bit : s_) bit = prg.next_u64() & 1u;
  s_block_ = kZeroBlock;
  for (size_t i = 0; i < kOtExtKappa; ++i) {
    if (!s_[i]) continue;
    if (i < 64)
      s_block_.lo |= 1ull << i;
    else
      s_block_.hi |= 1ull << (i - 64);
  }
  const std::vector<Block> seeds = base_ot_recv(ch_, s_, prg);
  col_prg_.clear();
  for (const Block& seed : seeds)
    col_prg_.push_back(std::make_unique<Prg>(seed));
  ready_ = true;
}

void OtExtReceiver::setup(Prg& prg) {
  std::vector<std::pair<Block, Block>> seed_pairs(kOtExtKappa);
  for (auto& p : seed_pairs) {
    p.first = prg.next_block();
    p.second = prg.next_block();
  }
  base_ot_send(ch_, seed_pairs, prg);
  col_prg0_.clear();
  col_prg1_.clear();
  for (const auto& p : seed_pairs) {
    col_prg0_.push_back(std::make_unique<Prg>(p.first));
    col_prg1_.push_back(std::make_unique<Prg>(p.second));
  }
  ready_ = true;
}

std::vector<Block> OtExtSender::recv_q_rows(size_t m) {
  if (!ready_) throw std::logic_error("OtExtSender: setup() not run");
  // All kappa u columns arrive as one packed bulk message. The leading
  // batch size guards against a sender/receiver m disagreement — the
  // raw packed read would otherwise desynchronize the stream silently.
  if (ch_.recv_u64() != m)
    throw std::runtime_error("OT ext: batch size mismatch");
  const size_t stride = column_stride(m);
  std::vector<uint8_t> packed(kOtExtKappa * stride);
  ch_.recv_bytes(packed.data(), packed.size());
  std::vector<std::vector<uint8_t>> q_cols(kOtExtKappa);
  for (size_t i = 0; i < kOtExtKappa; ++i) {
    q_cols[i] = col_prg_[i]->expand_bits(m);
    if (!s_[i]) continue;
    const uint8_t* u = packed.data() + i * stride;
    for (size_t j = 0; j < m; ++j)
      q_cols[i][j] ^= (u[j / 8] >> (j % 8)) & 1u;
  }
  return transpose_to_rows(q_cols, m);
}

std::vector<Block> OtExtReceiver::send_t_rows(const BitVec& choices) {
  if (!ready_) throw std::logic_error("OtExtReceiver: setup() not run");
  const size_t m = choices.size();
  ch_.send_u64(m);
  const size_t stride = column_stride(m);
  std::vector<uint8_t> packed(kOtExtKappa * stride, 0);
  std::vector<std::vector<uint8_t>> t_cols(kOtExtKappa);
  for (size_t i = 0; i < kOtExtKappa; ++i) {
    t_cols[i] = col_prg0_[i]->expand_bits(m);
    const std::vector<uint8_t> other = col_prg1_[i]->expand_bits(m);
    uint8_t* u = packed.data() + i * stride;
    for (size_t j = 0; j < m; ++j) {
      const uint8_t bit = t_cols[i][j] ^ other[j] ^ (choices[j] & 1u);
      u[j / 8] |= static_cast<uint8_t>(bit << (j % 8));
    }
  }
  ch_.send_bytes(packed.data(), packed.size());
  return transpose_to_rows(t_cols, m);
}

void OtExtSender::send(const std::vector<std::pair<Block, Block>>& msgs) {
  const size_t m = msgs.size();
  if (m == 0) return;
  const std::vector<Block> q = recv_q_rows(m);
  std::vector<Block> payload(2 * m);
  for (size_t j = 0; j < m; ++j) {
    const uint64_t idx = hash_index_++;
    payload[2 * j] = msgs[j].first ^ ot_hash(q[j], idx);
    payload[2 * j + 1] = msgs[j].second ^ ot_hash(q[j] ^ s_block_, idx);
  }
  ch_.send_bytes(payload.data(), payload.size() * sizeof(Block));
}

void OtExtSender::send_correlated(const std::vector<Block>& zeros,
                                  Block delta) {
  const size_t m = zeros.size();
  if (m == 0) return;
  const std::vector<Block> q = recv_q_rows(m);
  std::vector<Block> payload(2 * m);
  for (size_t j = 0; j < m; ++j) {
    const uint64_t idx = hash_index_++;
    payload[2 * j] = zeros[j] ^ ot_hash(q[j], idx);
    payload[2 * j + 1] = zeros[j] ^ delta ^ ot_hash(q[j] ^ s_block_, idx);
  }
  ch_.send_bytes(payload.data(), payload.size() * sizeof(Block));
}

std::vector<Block> OtExtReceiver::recv(const BitVec& choices) {
  const size_t m = choices.size();
  if (m == 0) {
    if (!ready_) throw std::logic_error("OtExtReceiver: setup() not run");
    return {};
  }
  const std::vector<Block> t = send_t_rows(choices);

  std::vector<Block> payload(2 * m);
  ch_.recv_bytes(payload.data(), payload.size() * sizeof(Block));
  std::vector<Block> out(m);
  for (size_t j = 0; j < m; ++j) {
    const uint64_t idx = hash_index_++;
    out[j] = payload[2 * j + (choices[j] ? 1 : 0)] ^ ot_hash(t[j], idx);
  }
  return out;
}

// --- precomputation (offline) + derandomization (online) --------------

OtPrecompSender OtExtSender::precompute(size_t m) {
  OtPrecompSender pre;
  if (m == 0) {
    if (!ready_) throw std::logic_error("OtExtSender: setup() not run");
    return pre;
  }
  const std::vector<Block> q = recv_q_rows(m);
  pre.r0.resize(m);
  pre.r1.resize(m);
  for (size_t j = 0; j < m; ++j) {
    const uint64_t idx = hash_index_++;
    pre.r0[j] = ot_hash(q[j], idx);
    pre.r1[j] = ot_hash(q[j] ^ s_block_, idx);
  }
  return pre;
}

OtPrecompReceiver OtExtReceiver::precompute(size_t m, Prg& prg) {
  OtPrecompReceiver pre;
  if (m == 0) {
    if (!ready_) throw std::logic_error("OtExtReceiver: setup() not run");
    return pre;
  }
  pre.choices = prg.expand_bits(m);  // batched: ~m/128 AES calls
  const std::vector<Block> t = send_t_rows(pre.choices);
  pre.blocks.resize(m);
  for (size_t j = 0; j < m; ++j) pre.blocks[j] = ot_hash(t[j], hash_index_++);
  return pre;
}

void OtExtSender::send_derandomized(
    const OtPrecompSender& pre,
    const std::vector<std::pair<Block, Block>>& msgs) {
  const size_t m = msgs.size();
  if (pre.size() != m)
    throw std::invalid_argument("OT derandomize: batch size mismatch");
  if (m == 0) return;
  const BitVec d = ch_.recv_bits_bounded(m);
  if (d.size() != m)
    throw std::runtime_error("OT derandomize: correction size mismatch");
  std::vector<Block> payload(2 * m);
  for (size_t j = 0; j < m; ++j) {
    payload[2 * j] = msgs[j].first ^ (d[j] ? pre.r1[j] : pre.r0[j]);
    payload[2 * j + 1] = msgs[j].second ^ (d[j] ? pre.r0[j] : pre.r1[j]);
  }
  ch_.send_blocks(payload.data(), payload.size());
}

void OtExtSender::send_correlated_derandomized(const OtPrecompSender& pre,
                                               const std::vector<Block>& zeros,
                                               Block delta) {
  const size_t m = zeros.size();
  if (pre.size() != m)
    throw std::invalid_argument("OT derandomize: batch size mismatch");
  if (m == 0) return;
  const BitVec d = ch_.recv_bits_bounded(m);
  if (d.size() != m)
    throw std::runtime_error("OT derandomize: correction size mismatch");
  std::vector<Block> payload(2 * m);
  for (size_t j = 0; j < m; ++j) {
    payload[2 * j] = zeros[j] ^ (d[j] ? pre.r1[j] : pre.r0[j]);
    payload[2 * j + 1] = zeros[j] ^ delta ^ (d[j] ? pre.r0[j] : pre.r1[j]);
  }
  ch_.send_blocks(payload.data(), payload.size());
}

std::vector<Block> OtExtReceiver::recv_derandomized(
    const OtPrecompReceiver& pre, const BitVec& choices) {
  const size_t m = choices.size();
  if (pre.size() != m)
    throw std::invalid_argument("OT derandomize: choice count mismatch");
  if (m == 0) return {};
  // One correction message: d = b ^ c.
  BitVec d(m);
  for (size_t j = 0; j < m; ++j) d[j] = (choices[j] ^ pre.choices[j]) & 1u;
  ch_.send_bits(d);
  std::vector<Block> payload(2 * m);
  ch_.recv_blocks(payload.data(), payload.size());
  std::vector<Block> out(m);
  for (size_t j = 0; j < m; ++j)
    out[j] = payload[2 * j + (choices[j] ? 1 : 0)] ^ pre.blocks[j];
  return out;
}

}  // namespace deepsecure
