// Deterministic fault-injection decorator — the chaos plane behind the
// self-healing session layer. A FaultChannel wraps any Channel and,
// from a seeded per-connection plan (crypto/prg.h — identical seed ⇒
// identical fault sequence), injects the network's failure modes into
// an otherwise healthy transport:
//
//   short write / short read — one call split into two inner calls (or
//     a clamped recv_some window), exercising every resume path;
//   delay — tens-to-hundreds of microseconds of added latency;
//   stall — a multi-millisecond pause, the shape phase deadlines exist
//     to bound;
//   reset — the connection dies: an optional hook (typically
//     TcpChannel::shutdown on the underlying socket, so the PEER
//     observes the drop too) runs, then the operation throws;
//   corrupt (opt-in, FaultConfig::corrupt) — one flipped bit in the
//     payload. Off by default because garbled-circuit evaluation over
//     corrupted tables is silently wrong, not loudly wrong: the chaos
//     soak must keep end-to-end byte-correctness checkable.
//
// Faults are drawn per channel operation with probability
// FaultConfig::rate, so the plan composes with any decorator stack
// (Buffered/Ring layers above, TcpChannel below) without knowing about
// it. Every injection is counted process-wide (faultstat:: below,
// `fault.*` in stats_json and BENCH rows) so a chaos run can assert
// "≥ 1 fault actually happened" rather than trusting the dice.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "crypto/prg.h"
#include "net/channel.h"
#include "obs/metrics.h"

namespace deepsecure {

namespace faultstat {
// Process-wide chaos instruments (Registry::global()), one per fault
// kind plus the total. Same resolve-once pattern as netstat::.
inline obs::Counter& injected() {
  static obs::Counter& c = obs::Registry::global().counter("fault.injected");
  return c;
}
inline obs::Counter& short_writes() {
  static obs::Counter& c =
      obs::Registry::global().counter("fault.short_write");
  return c;
}
inline obs::Counter& short_reads() {
  static obs::Counter& c = obs::Registry::global().counter("fault.short_read");
  return c;
}
inline obs::Counter& delays() {
  static obs::Counter& c = obs::Registry::global().counter("fault.delay");
  return c;
}
inline obs::Counter& stalls() {
  static obs::Counter& c = obs::Registry::global().counter("fault.stall");
  return c;
}
inline obs::Counter& resets() {
  static obs::Counter& c = obs::Registry::global().counter("fault.reset");
  return c;
}
inline obs::Counter& corruptions() {
  static obs::Counter& c = obs::Registry::global().counter("fault.corrupt");
  return c;
}
}  // namespace faultstat

/// Chaos parameters, carried by ClientConfig/ServerConfig and loadgen
/// `--chaos SEED:RATE`. rate == 0 (the default) means the decorator is
/// never even constructed — the healthy path stays untouched.
struct FaultConfig {
  /// Root seed of the fault plan. Every connection derives its own PRG
  /// stream from (seed, plan_index), so one seed reproduces the whole
  /// run's fault schedule connection-by-connection.
  uint64_t seed = 0;
  /// Per-operation fault probability in [0, 1].
  double rate = 0.0;
  /// Also flip payload bits (see file header for why this is opt-in).
  bool corrupt = false;

  bool enabled() const { return rate > 0.0; }
};

class FaultChannel final : public Channel {
 public:
  /// Runs when a reset fault fires, BEFORE the injected throw — wire it
  /// to TcpChannel::shutdown so both ends observe the failure.
  using ResetHook = std::function<void()>;

  /// `plan_index` distinguishes connections sharing one FaultConfig
  /// (session vs lane, connection attempt number): each index is an
  /// independent deterministic stream.
  FaultChannel(Channel& inner, const FaultConfig& cfg, uint64_t plan_index,
               ResetHook on_reset = {})
      : inner_(inner),
        corrupt_(cfg.corrupt),
        on_reset_(std::move(on_reset)),
        plan_(Block{cfg.seed ^ 0x8f4a'11c5'27d3'6b91ull,
                    plan_index ^ 0x5c6e'f0d9'3a21'74b7ull}) {
    const double r = std::clamp(cfg.rate, 0.0, 1.0);
    // Probability as a u64 threshold: fault iff next_u64() < threshold.
    threshold_ = static_cast<uint64_t>(
        r * 18446744073709551615.0 /* 2^64 - 1 */);
  }

  void send_bytes(const void* data, size_t n) override {
    const auto kind = draw();
    if (!kind) {
      inner_.send_bytes(data, n);
      return;
    }
    const auto* p = static_cast<const uint8_t*>(data);
    switch (*kind) {
      case Kind::kShort: {
        faultstat::short_writes().add();
        if (n < 2) {
          inner_.send_bytes(p, n);
          break;
        }
        const size_t cut = 1 + static_cast<size_t>(plan_.next_u64() % (n - 1));
        inner_.send_bytes(p, cut);
        std::this_thread::yield();  // let the peer see the partial frame
        inner_.send_bytes(p + cut, n - cut);
        break;
      }
      case Kind::kCorrupt: {
        faultstat::corruptions().add();
        std::vector<uint8_t> tainted(p, p + n);
        if (n > 0)
          tainted[plan_.next_u64() % n] ^=
              static_cast<uint8_t>(1u << (plan_.next_u64() % 8));
        inner_.send_bytes(tainted.data(), n);
        break;
      }
      case Kind::kDelay:
      case Kind::kStall:
        sleep_for(*kind);
        inner_.send_bytes(p, n);
        break;
      case Kind::kReset:
        inject_reset();
    }
  }

  void recv_bytes(void* data, size_t n) override {
    const auto kind = draw();
    if (!kind) {
      inner_.recv_bytes(data, n);
      return;
    }
    auto* p = static_cast<uint8_t*>(data);
    switch (*kind) {
      case Kind::kShort: {
        faultstat::short_reads().add();
        if (n < 2) {
          inner_.recv_bytes(p, n);
          break;
        }
        const size_t cut = 1 + static_cast<size_t>(plan_.next_u64() % (n - 1));
        inner_.recv_bytes(p, cut);
        std::this_thread::yield();
        inner_.recv_bytes(p + cut, n - cut);
        break;
      }
      case Kind::kCorrupt: {
        faultstat::corruptions().add();
        inner_.recv_bytes(p, n);
        if (n > 0)
          p[plan_.next_u64() % n] ^=
              static_cast<uint8_t>(1u << (plan_.next_u64() % 8));
        break;
      }
      case Kind::kDelay:
      case Kind::kStall:
        sleep_for(*kind);
        inner_.recv_bytes(p, n);
        break;
      case Kind::kReset:
        inject_reset();
    }
  }

  size_t recv_some(void* data, size_t min_n, size_t max_n) override {
    const auto kind = draw();
    if (!kind) return inner_.recv_some(data, min_n, max_n);
    switch (*kind) {
      case Kind::kShort:
        // A short read here is a clamped window: the inner transport
        // may return as little as min_n, so the read-ahead path above
        // (BufferedChannel) sees the sparsest arrival it ever could.
        faultstat::short_reads().add();
        return inner_.recv_some(data, min_n, min_n);
      case Kind::kCorrupt: {
        faultstat::corruptions().add();
        const size_t got = inner_.recv_some(data, min_n, max_n);
        if (got > 0)
          static_cast<uint8_t*>(data)[plan_.next_u64() % got] ^=
              static_cast<uint8_t>(1u << (plan_.next_u64() % 8));
        return got;
      }
      case Kind::kDelay:
      case Kind::kStall:
        sleep_for(*kind);
        return inner_.recv_some(data, min_n, max_n);
      case Kind::kReset:
        inject_reset();
    }
    return 0;  // unreachable
  }

  void send_iov(IoSlice* slices, size_t n) override {
    const auto kind = draw();
    if (!kind) {
      inner_.send_iov(slices, n);
      return;
    }
    switch (*kind) {
      case Kind::kShort: {
        // Split the vectored send at a byte offset: two inner send_iov
        // calls, so a transport's partial-completion handling (the
        // io_uring SENDMSG resubmit path) runs against genuinely
        // fragmented submissions. The straddled slice's ref is COPIED
        // into the head half — the pin holds until both halves ship.
        faultstat::short_writes().add();
        size_t total = 0;
        for (size_t i = 0; i < n; ++i) total += slices[i].len;
        if (total < 2) {
          inner_.send_iov(slices, n);
          break;
        }
        const size_t cut =
            1 + static_cast<size_t>(plan_.next_u64() % (total - 1));
        std::vector<IoSlice> head, tail;
        size_t off = 0;
        for (size_t i = 0; i < n; ++i) {
          IoSlice& s = slices[i];
          if (off + s.len <= cut) {
            head.push_back(std::move(s));
          } else if (off >= cut) {
            tail.push_back(std::move(s));
          } else {
            const size_t k = cut - off;
            head.push_back(IoSlice{s.data, k, s.ref});  // ref copy: pin
            tail.push_back(IoSlice{static_cast<const uint8_t*>(s.data) + k,
                                   s.len - k, std::move(s.ref)});
          }
          off += s.len;
        }
        inner_.send_iov(head.data(), head.size());
        std::this_thread::yield();
        inner_.send_iov(tail.data(), tail.size());
        break;
      }
      case Kind::kCorrupt:  // vectored payloads are borrowed/immutable;
      case Kind::kDelay:    // degrade corrupt to a delay here
      case Kind::kStall:
        sleep_for(*kind == Kind::kStall ? Kind::kStall : Kind::kDelay);
        inner_.send_iov(slices, n);
        break;
      case Kind::kReset:
        inject_reset();
    }
  }

  /// Faults injected by THIS channel instance (the global `fault.*`
  /// counters aggregate across every instance in the process).
  uint64_t injected() const { return injected_; }

  uint64_t bytes_sent() const override { return inner_.bytes_sent(); }
  uint64_t bytes_received() const override { return inner_.bytes_received(); }
  void reset_counters() override { inner_.reset_counters(); }

 private:
  enum class Kind { kShort, kDelay, kStall, kReset, kCorrupt };

  std::optional<Kind> draw() {
    if (threshold_ == 0) return std::nullopt;
    if (plan_.next_u64() >= threshold_) return std::nullopt;
    ++injected_;
    faultstat::injected().add();
    // Weighted kinds: plenty of benign reordering pressure, a steady
    // trickle of hard failures. Corruption's slot degrades to a delay
    // unless explicitly opted in.
    const uint64_t r = plan_.next_u64() % 100;
    if (r < 35) return Kind::kShort;
    if (r < 65) {
      faultstat::delays().add();
      return Kind::kDelay;
    }
    if (r < 85) {
      faultstat::stalls().add();
      return Kind::kStall;
    }
    if (r < 95) return Kind::kReset;
    if (corrupt_) return Kind::kCorrupt;
    faultstat::delays().add();
    return Kind::kDelay;
  }

  void sleep_for(Kind k) {
    if (k == Kind::kStall)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(2 + plan_.next_u64() % 8));
    else
      std::this_thread::sleep_for(
          std::chrono::microseconds(50 + plan_.next_u64() % 250));
  }

  [[noreturn]] void inject_reset() {
    faultstat::resets().add();
    if (on_reset_) on_reset_();
    throw std::runtime_error("fault: injected connection reset");
  }

  Channel& inner_;
  bool corrupt_;
  ResetHook on_reset_;
  Prg plan_;
  uint64_t threshold_ = 0;
  uint64_t injected_ = 0;
};

}  // namespace deepsecure
