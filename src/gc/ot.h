// Oblivious transfer (Section 2.2.1): the evaluator's input-wire labels
// are transferred with 1-out-of-2 OT.
//
//  * Base OT: Chou-Orlandi "simplest OT" over Edwards25519 (semi-honest
//    variant). Real elliptic-curve crypto, 128 instances per session.
//  * Extension: IKNP'03 semi-honest OT extension with stateful AES-CTR
//    column PRGs, so one base-OT setup serves any number of label
//    transfers across all layers of a model.
//  * Precomputation: the extension also exposes *random* OTs — the
//    sender gets uniform pairs (r0, r1), the receiver a random choice c
//    and r_c — which are input-independent and therefore run in the
//    offline phase. The online phase derandomizes them (Beaver '95):
//    the receiver sends one correction vector d = b ^ c, the sender
//    answers with masked messages, and no fresh extension rounds happen
//    on the request path.
#pragma once

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "crypto/block.h"
#include "crypto/prg.h"
#include "net/channel.h"
#include "support/bits.h"

namespace deepsecure {

/// Base OT, sender side: transfers msgs[i].first for choice 0,
/// msgs[i].second for choice 1.
void base_ot_send(Channel& ch, const std::vector<std::pair<Block, Block>>& msgs,
                  Prg& prg);

/// Base OT, receiver side.
std::vector<Block> base_ot_recv(Channel& ch, const BitVec& choices, Prg& prg);

inline constexpr size_t kOtExtKappa = 128;  // base-OT security parameter

/// A batch of precomputed random OTs, sender side: uniform pairs
/// (r0[i], r1[i]) of which the receiver knows exactly one.
struct OtPrecompSender {
  std::vector<Block> r0, r1;
  size_t size() const { return r0.size(); }
};

/// Receiver side of the same batch: a random choice vector c and the
/// corresponding r_c blocks.
struct OtPrecompReceiver {
  BitVec choices;
  std::vector<Block> blocks;
  size_t size() const { return blocks.size(); }
};

class OtExtSender {
 public:
  explicit OtExtSender(Channel& ch) : ch_(ch) {}

  /// Runs kappa base OTs (as base-OT receiver with random choices s).
  void setup(Prg& prg);

  /// Send `msgs.size()` message pairs; receiver learns one of each.
  void send(const std::vector<std::pair<Block, Block>>& msgs);

  /// Correlated variant used for wire labels: pair i is
  /// (zeros[i], zeros[i] ^ delta). Saves building the pair vector.
  void send_correlated(const std::vector<Block>& zeros, Block delta);

  /// Offline phase: run `m` *random* OTs (one extension round, no
  /// payload message — the hashes themselves are the messages).
  OtPrecompSender precompute(size_t m);

  /// Online phase, general form: receive the peer's correction vector
  /// (must cover exactly `msgs.size()` OTs, else the batch is rejected)
  /// and send the masked pairs. Consumes `pre` logically; the caller
  /// must not reuse it.
  void send_derandomized(const OtPrecompSender& pre,
                         const std::vector<std::pair<Block, Block>>& msgs);

  /// Online phase, correlated form for wire labels.
  void send_correlated_derandomized(const OtPrecompSender& pre,
                                    const std::vector<Block>& zeros,
                                    Block delta);

 private:
  std::vector<Block> recv_q_rows(size_t m);

  Channel& ch_;
  BitVec s_;                       // kappa secret choice bits
  Block s_block_;                  // s packed into a block
  std::vector<std::unique_ptr<Prg>> col_prg_;  // PRG(k_i^{s_i})
  uint64_t hash_index_ = 0;
  bool ready_ = false;
};

class OtExtReceiver {
 public:
  explicit OtExtReceiver(Channel& ch) : ch_(ch) {}

  /// Runs kappa base OTs (as base-OT sender with random seed pairs).
  void setup(Prg& prg);

  /// Receive msgs[i] for choices[i].
  std::vector<Block> recv(const BitVec& choices);

  /// Offline phase: run `m` random OTs with choices drawn from `prg`.
  OtPrecompReceiver precompute(size_t m, Prg& prg);

  /// Online phase: derandomize `pre` to the real `choices` with a single
  /// correction message, then unmask the sender's payload. Rejects a
  /// choice vector whose size differs from the precomputed batch.
  /// Consumes `pre` logically; the caller must not reuse it.
  std::vector<Block> recv_derandomized(const OtPrecompReceiver& pre,
                                       const BitVec& choices);

 private:
  /// Extension round for `choices`: expand the column PRGs, ship the u
  /// columns as one packed bulk message, return the t rows.
  std::vector<Block> send_t_rows(const BitVec& choices);

  Channel& ch_;
  std::vector<std::unique_ptr<Prg>> col_prg0_;  // PRG(k_i^0)
  std::vector<std::unique_ptr<Prg>> col_prg1_;  // PRG(k_i^1)
  uint64_t hash_index_ = 0;
  bool ready_ = false;
};

}  // namespace deepsecure
