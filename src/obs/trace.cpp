#include "obs/trace.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "support/spsc_ring.h"

namespace deepsecure::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

// One per producing thread. Kept alive by the tracer's thread list
// (shared_ptr) after the owning thread exits, so its tail is drainable.
struct ThreadRing {
  explicit ThreadRing(size_t cap, uint32_t tid_) : ring(cap), tid(tid_) {}
  SpscRing<TraceEvent> ring;
  uint32_t tid;
};

// Exporter buffer cap: ~1M events (~32 MB) before further events count
// as drops — a runaway trace degrades, it never OOMs the server.
constexpr size_t kMaxCollected = 1u << 20;

struct Tracer {
  std::mutex mu;  // guards threads/collected and serializes draining
  std::vector<std::shared_ptr<ThreadRing>> threads;
  std::vector<TraceEvent> collected;
  std::atomic<uint64_t> dropped{0};
  std::atomic<size_t> ring_capacity{4096};
  std::atomic<uint32_t> next_tid{1};
};

Tracer& tracer() {
  static Tracer* t = new Tracer();  // leaked: outlives every thread ring
  return *t;
}

ThreadRing& thread_ring() {
  thread_local std::shared_ptr<ThreadRing> mine = [] {
    Tracer& t = tracer();
    auto r = std::make_shared<ThreadRing>(
        t.ring_capacity.load(std::memory_order_relaxed),
        t.next_tid.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(t.mu);
    t.threads.push_back(r);
    return r;
  }();
  return *mine;
}

void drain_locked(Tracer& t) {
  for (const auto& tr : t.threads) {
    TraceEvent ev;
    while (tr->ring.try_pop(ev)) {
      if (t.collected.size() >= kMaxCollected) {
        t.dropped.fetch_add(1, std::memory_order_relaxed);
        continue;  // keep popping: free the ring either way
      }
      t.collected.push_back(ev);
    }
  }
}

}  // namespace

namespace detail {

void trace_emit(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  Tracer& t = tracer();
  ThreadRing& tr = thread_ring();
  TraceEvent ev{name, start_ns, dur_ns, tr.tid};
  if (!tr.ring.try_push(std::move(ev)))
    t.dropped.fetch_add(1, std::memory_order_relaxed);  // never block
}

}  // namespace detail

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_ring_capacity(size_t events) {
  tracer().ring_capacity.store(events == 0 ? 2 : events,
                               std::memory_order_relaxed);
}

void trace_drain() {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  drain_locked(t);
}

uint64_t trace_dropped() {
  return tracer().dropped.load(std::memory_order_relaxed);
}

size_t trace_collected() {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.collected.size();
}

void trace_reset() {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  drain_locked(t);  // clear ring backlogs too, not just the buffer
  t.collected.clear();
}

std::string chrome_trace_json() {
  Tracer& t = tracer();
  std::lock_guard<std::mutex> lock(t.mu);
  drain_locked(t);
  std::string out;
  out.reserve(64 + t.collected.size() * 96);
  out += "{\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < t.collected.size(); ++i) {
    const TraceEvent& e = t.collected[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  i == 0 ? "" : ",", e.name, e.tid,
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"otherData\":{\"dropped\":%llu},"
                "\"displayTimeUnit\":\"ms\"}",
                static_cast<unsigned long long>(
                    t.dropped.load(std::memory_order_relaxed)));
  out += buf;
  return out;
}

void write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("obs: cannot open trace file " + path);
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size())
    throw std::runtime_error("obs: short write to trace file " + path);
}

}  // namespace deepsecure::obs
