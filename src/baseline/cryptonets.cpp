#include "baseline/cryptonets.h"

#include <cmath>

namespace deepsecure::baseline {

double cryptonets_delay_s(size_t n, const CryptoNetsParams& p) {
  if (n == 0) return 0.0;
  const size_t batches = (n + p.max_batch - 1) / p.max_batch;
  return static_cast<double>(batches) * p.batch_latency_s;
}

size_t crossover_samples(double per_sample_s, const CryptoNetsParams& p) {
  // Within the first batch the CryptoNets delay is flat; DeepSecure wins
  // while n * per_sample < batch_latency.
  return static_cast<size_t>(std::floor(p.batch_latency_s / per_sample_s));
}

UtilityComparison compare_utility(const nn::Dataset& train,
                                  const nn::Dataset& test, size_t hidden,
                                  nn::Act true_act,
                                  const nn::TrainConfig& cfg) {
  UtilityComparison out;
  const size_t classes = train.num_classes;
  const nn::Shape in{1, 1, train.x.empty() ? 1 : train.x[0].size()};

  for (const bool square : {false, true}) {
    Rng rng(2718);
    nn::Network net(in);
    net.dense(hidden, rng)
        .act(square ? nn::Act::kSquare : true_act)
        .dense(classes, rng);
    nn::train(net, train, cfg);
    const float acc = nn::accuracy(net, test);
    if (square)
      out.accuracy_square_act = acc;
    else
      out.accuracy_true_act = acc;
  }
  return out;
}

}  // namespace deepsecure::baseline
