#include "net/tcp_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace deepsecure {
namespace {

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("tcp: " + what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpListener::TcpListener(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) die("socket");
  fd_.store(fd);
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    die("getsockname");
  port_ = ntohs(addr.sin_port);
  if (::listen(fd, backlog) != 0) die("listen");
}

TcpListener::TcpListener(TcpListener&& o) noexcept
    : fd_(o.fd_.exchange(-1)), port_(o.port_) {}

TcpListener::~TcpListener() {
  // No accept() may be in flight at destruction time (the owner joins
  // its accept thread first), so releasing the fd is safe here.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    (void)::shutdown(fd, SHUT_RDWR);
    (void)::close(fd);
  }
}

TcpChannel TcpListener::accept() {
  for (;;) {
    const int lfd = fd_.load();
    if (lfd < 0) throw std::runtime_error("tcp: accept on closed listener");
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return TcpChannel(fd);
    }
    // ECONNABORTED: the client reset while queued in the backlog — a
    // per-connection event, not a listener failure; keep accepting.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw std::runtime_error("tcp: accept: listener closed or failed: " +
                             std::string(std::strerror(errno)));
  }
}

void TcpListener::close() {
  // Shutdown only — the fd stays allocated until the destructor, so a
  // concurrent accept() that already loaded the fd number cannot race
  // against the kernel recycling it for an unrelated socket. shutdown()
  // wakes a thread blocked in ::accept (EINVAL); later accepts fail the
  // same way.
  const int fd = fd_.load();
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

TcpChannel TcpChannel::listen_and_accept(uint16_t port, uint16_t* bound_port) {
  TcpListener listener(port, /*backlog=*/1);
  if (bound_port != nullptr) *bound_port = listener.port();
  return listener.accept();
}

TcpChannel TcpChannel::connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("tcp: bad address " + host);

  // Retry for up to ~2 s so both parties can start concurrently.
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) die("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_nodelay(fd);
      return TcpChannel(fd);
    }
    ::close(fd);
    if (attempt >= 200) die("connect");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TcpChannel::TcpChannel(TcpChannel&& o) noexcept
    : fd_(o.fd_), sent_(o.sent_), received_(o.received_) {
  o.fd_ = -1;
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpChannel::shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpChannel::set_recv_timeout_ms(uint64_t ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    die("setsockopt(SO_RCVTIMEO)");
}

void TcpChannel::send_bytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      die("send");
    }
    done += static_cast<size_t>(w);
  }
  sent_ += n;
}

void TcpChannel::recv_bytes(void* data, size_t n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd_, p + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("tcp: recv timed out (idle timeout)");
      die("recv");
    }
    if (r == 0) throw std::runtime_error("tcp: peer closed connection");
    done += static_cast<size_t>(r);
  }
  received_ += n;
}

size_t TcpChannel::recv_some(void* data, size_t min_n, size_t max_n) {
  auto* p = static_cast<uint8_t*>(data);
  size_t done = 0;
  // Each recv() asks for everything still fitting in max_n; the kernel
  // returns what has arrived, so we never block once min_n is satisfied.
  while (done < min_n) {
    const ssize_t r = ::recv(fd_, p + done, max_n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("tcp: recv timed out (idle timeout)");
      die("recv");
    }
    if (r == 0) throw std::runtime_error("tcp: peer closed connection");
    done += static_cast<size_t>(r);
  }
  received_ += done;
  return done;
}

}  // namespace deepsecure
