// Synthetic netlists with known batching behavior, shared by the GC
// benchmarks and the batched-pipeline regression tests so both exercise
// the exact same circuit shapes.
#pragma once

#include <vector>

#include "circuit/builder.h"

namespace deepsecure::bench_circuits {

/// Independent AND gates (none reads another AND's output): no
/// dependency flush, so batch windows only drain at capacity / end of
/// circuit. The builder CSEs structurally identical gates, so distinct
/// operands come from a free XOR chain over the inputs (consecutive
/// chain pairs are distinct).
inline Circuit wide_and(size_t n_gates) {
  Builder b;
  std::vector<Wire> in;
  for (int i = 0; i < 16; ++i) in.push_back(b.input(Party::kGarbler));
  for (int i = 0; i < 16; ++i) in.push_back(b.input(Party::kEvaluator));
  std::vector<Wire> chain;
  chain.push_back(in[0]);
  for (size_t i = 1; i <= n_gates; ++i)
    chain.push_back(b.xor_(chain.back(), in[i % in.size()]));
  std::vector<Wire> outs;
  for (size_t g = 0; g < n_gates; ++g)
    outs.push_back(b.and_(chain[g], chain[g + 1]));
  for (size_t i = 0; i < 8 && i < outs.size(); ++i)
    b.output(outs[outs.size() - 1 - i]);
  return b.build();
}

/// Chainable wide layer: `width` garbler inputs, `width` evaluator
/// inputs, `n_gates` independent AND gates (wide batch windows, no
/// dependency flushes until the outputs), and exactly `width` outputs so
/// layer k's outputs feed layer k+1's garbler inputs in run_chain — the
/// shape the streaming-overlap benchmarks chain.
inline Circuit wide_chain_layer(size_t n_gates, size_t width = 64) {
  Builder b;
  std::vector<Wire> in;
  for (size_t i = 0; i < width; ++i) in.push_back(b.input(Party::kGarbler));
  for (size_t i = 0; i < width; ++i) in.push_back(b.input(Party::kEvaluator));
  std::vector<Wire> chain;
  chain.push_back(in[0]);
  for (size_t i = 1; i <= n_gates; ++i)
    chain.push_back(b.xor_(chain.back(), in[i % in.size()]));
  std::vector<Wire> ands;
  for (size_t g = 0; g < n_gates; ++g)
    ands.push_back(b.and_(chain[g], chain[g + 1]));
  // Outputs: the last `width` AND results (wrap if the layer is narrow).
  std::vector<Wire> outs(width);
  for (size_t i = 0; i < width; ++i)
    outs[i] = ands[(ands.size() - 1 - i) % ands.size()];
  b.outputs(outs);
  return b.build();
}

/// A chain where every AND reads the previous AND's output (via a free
/// XOR): the batch window must flush before every chained gate — the
/// ripple-carry worst case, window size 1.
inline Circuit and_chain(size_t depth) {
  Builder b;
  Wire acc = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kEvaluator);
  for (size_t i = 0; i < depth; ++i) acc = b.and_(acc, b.xor_(acc, y));
  b.output(acc);
  return b.build();
}

}  // namespace deepsecure::bench_circuits
