// The paper's headline optimization (Section 3.2): data projection +
// network pruning before GC execution. Runs the full offline pipeline
// (Figure 2, step 1) on subspace-structured data and reports the
// accuracy-vs-cost ledger, then performs secure inference on the
// condensed model (online path: Algorithm 2 projection + GC).
#include <cstdio>

#include "core/deepsecure.h"
#include "data/synthetic.h"

using namespace deepsecure;

int main() {
  std::printf("DeepSecure pre-processing pipeline\n");
  std::printf("==================================\n\n");

  data::SyntheticConfig cfg;
  cfg.features = 128;
  cfg.classes = 6;
  cfg.samples = 600;
  cfg.subspace_rank = 5;
  cfg.noise = 0.01;
  cfg.seed = 19;
  const nn::Dataset ds = data::make_subspace_dataset(cfg);
  const nn::Split split = nn::split_dataset(ds, 0.8);

  PreprocessConfig pc;
  pc.hidden = 24;
  pc.projection.gamma = 0.2;
  pc.prune.prune_fraction = 0.75;
  pc.prune.rounds = 3;
  pc.prune.retrain_epochs = 5;
  pc.retrain.epochs = 14;
  pc.retrain.lr = 0.005f;  // 128-dim inputs

  const PreprocessOutcome out =
      preprocess_pipeline(split.train, split.test, nn::Act::kReLU, pc);

  std::printf("offline pipeline (server side):\n");
  std::printf("  projection: %zu -> %zu features (mean residual %.3f)\n",
              out.projection.input_dim, out.projection.embed_dim,
              out.projection.mean_residual);
  std::printf("  pruning:    %.0f%% of weights removed\n",
              100.0 * out.prune.overall_sparsity);
  std::printf("  accuracy:   %.1f%% -> %.1f%% (baseline -> condensed)\n",
              100.0 * out.baseline_accuracy, 100.0 * out.condensed_accuracy);
  std::printf("  GC comm:    %.2f MB -> %.2f MB  (%.1fx reduction)\n",
              out.cost_before.comm_bytes / 1e6, out.cost_after.comm_bytes / 1e6,
              out.cost_before.comm_bytes / out.cost_after.comm_bytes);
  std::printf("  GC exec:    %.3f s -> %.3f s (paper cost model)\n",
              out.cost_before.exec_seconds, out.cost_after.exec_seconds);

  // Online path: the client projects with the PUBLIC map, then garbles.
  std::printf("\nonline path (client side):\n");
  SecureInferenceOptions opt;
  opt.seed = Block{41, 42};
  int correct = 0;
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    const nn::VecF projected = out.projection.project(split.test.x[i]);
    const auto res = secure_infer(out.model, projected, opt);
    correct += res.label == split.test.y[i] ? 1 : 0;
    std::printf("  sample %d: label %zu (true %zu), comm %.2f MB\n", i,
                res.label, split.test.y[i],
                static_cast<double>(res.client_to_server_bytes) / 1e6);
  }
  std::printf("\n%d/%d correct through the condensed secure pipeline\n",
              correct, n);
  return 0;
}
