// TCP transport: the same Channel interface as the in-memory pair, over
// a real socket — what an actual client/server deployment of the
// protocol uses (the paper's LAN testbed). Stream-oriented, with
// TCP_NODELAY so the request/response OT rounds are not delayed by
// Nagle batching.
//
// Two I/O modes:
//   * blocking (default): send/recv block in the kernel; a recv timeout
//     is enforced via SO_RCVTIMEO.
//   * nonblocking (set_nonblocking(true) — the event-driven server
//     core): the fd is O_NONBLOCK so it can park in an epoll set, and
//     send/recv keep their BLOCKING semantics at this API by resuming
//     short reads/writes after a poll() wait — EAGAIN never escapes.
//     The recv timeout is enforced as the poll deadline instead of
//     SO_RCVTIMEO (which nonblocking sockets ignore).
// Every syscall retries EINTR; a peer reset (EPIPE/ECONNRESET, or a
// clean FIN) surfaces as the same "peer closed connection" error the
// session handlers already treat as orderly teardown, never as an
// abort.
//
// TcpListener separates bind/listen from accept so a server can keep one
// listening socket and accept many client sessions (runtime/server.h);
// TcpChannel::listen_and_accept remains the one-shot convenience used by
// the two-party tests. For the reactor core the listener also exposes
// its fd, a nonblocking mode, and try_accept() (drain-until-EAGAIN).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/channel.h"
#include "net/uring.h"

namespace deepsecure {

class TcpChannel final : public Channel {
 public:
  /// Server side: bind + listen on `port` (0 = ephemeral), accept one
  /// peer. `bound_port` receives the actual port before accept blocks.
  static TcpChannel listen_and_accept(uint16_t port,
                                      uint16_t* bound_port = nullptr);

  /// Client side: connect to host:port (retries briefly so tests can
  /// start both ends concurrently).
  static TcpChannel connect(const std::string& host, uint16_t port);

  TcpChannel(TcpChannel&& o) noexcept;
  TcpChannel& operator=(TcpChannel&&) = delete;
  ~TcpChannel() override;

  void send_bytes(const void* data, size_t n) override;
  void recv_bytes(void* data, size_t n) override;
  size_t recv_some(void* data, size_t min_n, size_t max_n) override;

  /// True scatter-gather send: one sendmsg (or one linked-SQE io_uring
  /// submission — see enable_io_uring) per <= IOV_MAX slices instead of
  /// one syscall per slice, resuming short writes mid-iovec. Slices are
  /// fully shipped before return, so borrowed refs release here.
  void send_iov(IoSlice* slices, size_t n) override;

  /// Route sends through a per-channel io_uring submission queue
  /// (net/uring.h): a vectored send becomes a chain of linked SQEs and
  /// ONE io_uring_enter. Runtime-probed — returns the effective state
  /// (false = kernel refused io_uring; sends stay on the sendmsg path,
  /// which is the documented clean fallback).
  bool enable_io_uring();
  bool io_uring_enabled() const { return uring_ != nullptr; }

  /// Shut both directions down without closing the fd. A thread blocked
  /// in recv on this channel wakes with a "peer closed" error — the
  /// server's forced-shutdown path for idle sessions.
  void shutdown();

  /// Bound every receive: a recv that sees no bytes for `ms`
  /// milliseconds throws instead of blocking forever (SO_RCVTIMEO in
  /// blocking mode, the poll deadline in nonblocking mode). 0 restores
  /// the unbounded default. Backs the thread-per-session server's idle
  /// timeout and the reactor's mid-exchange stall bound.
  void set_recv_timeout_ms(uint64_t ms);

  /// Switch the fd between blocking and O_NONBLOCK. In nonblocking
  /// mode this channel's send/recv calls keep blocking semantics by
  /// poll()-waiting on EAGAIN (see file header); the mode exists so the
  /// fd can be parked in an epoll set between frames.
  void set_nonblocking(bool on);

  /// Raw fd for readiness registration (epoll). Owned by this channel.
  int fd() const { return fd_; }

  uint64_t bytes_sent() const override { return sent_; }
  uint64_t bytes_received() const override { return received_; }
  void reset_counters() override {
    sent_ = 0;
    received_ = 0;
  }

 private:
  friend class TcpListener;
  explicit TcpChannel(int fd) : fd_(fd) {}

  /// poll() for `events` (POLLIN/POLLOUT); throws on timeout (recv
  /// deadline) or poll failure. Used to resume nonblocking I/O.
  void wait_ready(short events);

  int fd_ = -1;
  bool nonblocking_ = false;
  uint64_t timeout_ms_ = 0;  // 0 = unbounded
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  std::unique_ptr<net::UringQueue> uring_;  // non-null = uring send path
};

/// Reusable listening socket bound to loopback. accept() yields one
/// connected TcpChannel per client; close() (from any thread) unblocks a
/// pending accept, which then throws — the server shutdown path.
class TcpListener {
 public:
  /// Bind + listen on `port` (0 = ephemeral) with the given backlog.
  explicit TcpListener(uint16_t port, int backlog = 16);
  TcpListener(TcpListener&& o) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  ~TcpListener();

  uint16_t port() const { return port_; }
  /// Raw fd for readiness registration (epoll). -1 once closed.
  int fd() const { return fd_.load(); }

  /// O_NONBLOCK on the listening socket: accept() then fails with
  /// EAGAIN instead of blocking — use try_accept() to drain.
  void set_nonblocking(bool on);

  /// Block until a client connects. Throws std::runtime_error once the
  /// listener has been closed.
  TcpChannel accept();

  /// Nonblocking accept: one connected channel, or nullopt when the
  /// backlog is drained (EAGAIN). Retries EINTR/ECONNABORTED; throws
  /// once the listener is closed. The reactor's accept path.
  std::optional<TcpChannel> try_accept();

  /// Stop accepting: shuts the listening socket down (waking a blocked
  /// accept(), which then throws) but defers releasing the fd to the
  /// destructor so a racing accept() can never touch a recycled fd.
  /// Safe to call concurrently with accept() and idempotent.
  void close();

 private:
  // Atomic: close() runs from the server's stop path while the accept
  // thread is reading the fd.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace deepsecure
