#include <gtest/gtest.h>

#include "synth/matvec.h"
#include "synth/softmax.h"
#include "test_util.h"

namespace deepsecure::synth {
namespace {

using test::pack_fixed;
using test::random_fixed;

constexpr FixedFormat kFmt = kDefaultFormat;

TEST(MatVec, MatchesFixedReference) {
  const size_t m = 5, n = 3;
  const Circuit c = make_matvec_circuit(m, n, kFmt);
  Rng rng(1);
  std::vector<Fixed> x, w;
  for (size_t i = 0; i < m; ++i) x.push_back(random_fixed(rng, kFmt, 0.1));
  for (size_t i = 0; i < m * n; ++i) w.push_back(random_fixed(rng, kFmt, 0.1));

  const BitVec out = c.eval(pack_fixed(x), pack_fixed(w));
  for (size_t col = 0; col < n; ++col) {
    Fixed acc = Fixed::from_raw(0, kFmt);
    for (size_t i = 0; i < m; ++i) acc = acc + x[i] * w[col * m + i];
    const BitVec bits(out.begin() + static_cast<ptrdiff_t>(col * 16),
                      out.begin() + static_cast<ptrdiff_t>((col + 1) * 16));
    EXPECT_EQ(Fixed::from_bits(bits, kFmt).raw(), acc.raw()) << "col " << col;
  }
}

TEST(MatVec, MaskedSkipsPrunedTerms) {
  Builder b;
  std::vector<Bus> x(4), w(4);
  for (auto& bus : x) bus = input_fixed(b, Party::kGarbler, kFmt);
  for (auto& bus : w) bus = input_fixed(b, Party::kEvaluator, kFmt);
  const std::vector<uint8_t> mask{1, 0, 1, 0};
  b.outputs(dot_masked(b, x, w, mask, kFmt.frac_bits));
  const uint64_t masked_ands = b.and_count();
  const Circuit c = b.build();

  Builder b2;
  std::vector<Bus> x2(4), w2(4);
  for (auto& bus : x2) bus = input_fixed(b2, Party::kGarbler, kFmt);
  for (auto& bus : w2) bus = input_fixed(b2, Party::kEvaluator, kFmt);
  b2.outputs(dot(b2, x2, w2, kFmt.frac_bits));
  EXPECT_LT(masked_ands, b2.and_count() * 6 / 10);  // ~half the gates

  Rng rng(2);
  std::vector<Fixed> xs, ws;
  for (int i = 0; i < 4; ++i) xs.push_back(random_fixed(rng, kFmt, 0.2));
  for (int i = 0; i < 4; ++i) ws.push_back(random_fixed(rng, kFmt, 0.2));
  const BitVec out = c.eval(pack_fixed(xs), pack_fixed(ws));
  const Fixed expect = xs[0] * ws[0] + xs[2] * ws[2];
  EXPECT_EQ(Fixed::from_bits(out, kFmt).raw(), expect.raw());
}

TEST(MatVec, AllPrunedIsZero) {
  Builder b;
  std::vector<Bus> x(2), w(2);
  for (auto& bus : x) bus = input_fixed(b, Party::kGarbler, kFmt);
  for (auto& bus : w) bus = input_fixed(b, Party::kEvaluator, kFmt);
  b.outputs(dot_masked(b, x, w, {0, 0}, kFmt.frac_bits));
  const Circuit c = b.build();
  EXPECT_EQ(c.stats().num_and, 0u);
  Rng rng(3);
  const BitVec out = c.eval(
      pack_fixed({random_fixed(rng, kFmt), random_fixed(rng, kFmt)}),
      pack_fixed({random_fixed(rng, kFmt), random_fixed(rng, kFmt)}));
  EXPECT_EQ(Fixed::from_bits(out, kFmt).raw(), 0);
}

TEST(MatVec, SequentialMacStep) {
  const Circuit step = make_mac_step_circuit(kFmt);
  EXPECT_EQ(step.state_inputs.size(), 16u);
  Rng rng(4);
  const size_t cycles = 9;
  std::vector<Fixed> x, w;
  for (size_t i = 0; i < cycles; ++i) {
    x.push_back(random_fixed(rng, kFmt, 0.15));
    w.push_back(random_fixed(rng, kFmt, 0.15));
  }
  const BitVec out =
      eval_sequential(step, cycles, pack_fixed(x), pack_fixed(w));
  Fixed acc = Fixed::from_raw(0, kFmt);
  for (size_t i = 0; i < cycles; ++i) acc = acc + x[i] * w[i];
  EXPECT_EQ(Fixed::from_bits(out, kFmt).raw(), acc.raw());
}

TEST(Argmax, FindsMaximumIndex) {
  Rng rng(5);
  for (size_t n : {2u, 5u, 10u, 26u}) {
    Builder b;
    std::vector<Bus> vals(n);
    for (auto& bus : vals) bus = input_fixed(b, Party::kGarbler, kFmt);
    b.outputs(argmax(b, vals));
    const Circuit c = b.build();

    for (int trial = 0; trial < 20; ++trial) {
      std::vector<Fixed> xs;
      for (size_t i = 0; i < n; ++i) xs.push_back(random_fixed(rng, kFmt));
      size_t want = 0;
      for (size_t i = 1; i < n; ++i)
        if (xs[i].raw() > xs[want].raw()) want = i;
      const BitVec out = c.eval(pack_fixed(xs), {});
      EXPECT_EQ(from_bits(out), want) << "n=" << n;
    }
  }
}

TEST(Argmax, TieBreaksToLowerIndex) {
  Builder b;
  std::vector<Bus> vals(3);
  for (auto& bus : vals) bus = input_fixed(b, Party::kGarbler, kFmt);
  b.outputs(argmax(b, vals));
  const Circuit c = b.build();
  const Fixed v = Fixed::from_double(1.0, kFmt);
  const BitVec out = c.eval(pack_fixed({v, v, v}), {});
  EXPECT_EQ(from_bits(out), 0u);
}

TEST(Argmax, OneHotAgrees) {
  Builder b;
  std::vector<Bus> vals(4);
  for (auto& bus : vals) bus = input_fixed(b, Party::kGarbler, kFmt);
  b.outputs(argmax_onehot(b, vals));
  const Circuit c = b.build();
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Fixed> xs;
    for (int i = 0; i < 4; ++i) xs.push_back(random_fixed(rng, kFmt));
    size_t want = 0;
    for (size_t i = 1; i < 4; ++i)
      if (xs[i].raw() > xs[want].raw()) want = i;
    const BitVec out = c.eval(pack_fixed(xs), {});
    for (size_t i = 0; i < 4; ++i)
      EXPECT_EQ(out[i], i == want ? 1 : 0);
  }
}

TEST(Argmax, PaperGateBudget) {
  // Table 3: Softmax_n = (n-1)*32 non-XOR for the CMP+MUX chain; our
  // realization adds the index muxes, so allow modest overhead.
  Builder b;
  std::vector<Bus> vals(10);
  for (auto& bus : vals) bus = input_fixed(b, Party::kGarbler, kFmt);
  b.outputs(argmax(b, vals));
  const uint64_t per_step = b.and_count() / 9;
  EXPECT_GE(per_step, 32u);
  EXPECT_LE(per_step, 48u);
}

}  // namespace
}  // namespace deepsecure::synth
