#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace deepsecure {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string(const std::string& title) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!title.empty()) os << title << "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*E", precision, v);
  return buf;
}

std::string TablePrinter::count(uint64_t v) {
  return std::to_string(v);
}

}  // namespace deepsecure
