// Boolean circuit intermediate representation ("netlist").
//
// The GC protocol requires the function to be a topologically-sorted list
// of 2-input gates. With the free-XOR optimization the only gate classes
// that matter are XOR (free) and AND (2 ciphertexts via half-gates); the
// builder lowers NOT/OR/XNOR/... onto this basis. Wires 0 and 1 are the
// public constants 0 and 1.
//
// Inputs are partitioned by owner, matching the paper's roles:
//   * garbler inputs   — the client's private data sample (Alice)
//   * evaluator inputs — the server's private model parameters (Bob)
// plus `state` inputs for sequential (folded) circuits, which carry values
// across clock cycles (TinyGarble-style, Section 3.5 of the paper).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/bits.h"

namespace deepsecure {

using Wire = uint32_t;

inline constexpr Wire kConst0 = 0;
inline constexpr Wire kConst1 = 1;

enum class GateOp : uint8_t { kXor = 0, kAnd = 1 };

struct Gate {
  Wire a = 0;
  Wire b = 0;
  Wire out = 0;
  GateOp op = GateOp::kXor;
};

struct CircuitStats {
  uint64_t num_xor = 0;      // free under free-XOR
  uint64_t num_and = 0;      // non-XOR: 2 x 128-bit ciphertexts each
  uint64_t num_wires = 0;
  uint64_t num_inputs = 0;
  uint64_t num_outputs = 0;

  uint64_t non_xor() const { return num_and; }
  /// Bytes of garbled tables transferred (half-gates: 2 rows x 16 B).
  uint64_t table_bytes() const { return num_and * 2 * 16; }
};

class Circuit {
 public:
  Circuit() = default;
  // Copies do NOT inherit the flush-schedule cache: reading another
  // circuit's mutable cache members outside gc_flush_points()'s lock
  // would race with a concurrent garbler warming that cache. The copy
  // recomputes lazily on first batched garbling. Moves transfer it
  // (moving an object in concurrent use is already a caller bug).
  Circuit(const Circuit& o) { *this = o; }
  Circuit& operator=(const Circuit& o);
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;

  std::string name;

  std::vector<Gate> gates;               // topological order
  /// Optional lane tags, parallel to `gates` (empty = untagged). A lane
  /// groups gates belonging to one independent unit of work — a matvec
  /// column, an FC output neuron, a conv output pixel — and the
  /// scheduling pass (circuit/schedule.h) interleaves same-level AND
  /// gates round-robin across lanes. Set via Builder::set_lane.
  std::vector<uint32_t> gate_lanes;
  std::vector<Wire> garbler_inputs;      // client data wires
  std::vector<Wire> evaluator_inputs;    // server parameter wires
  std::vector<Wire> state_inputs;        // sequential state (cycle t-1)
  std::vector<Wire> state_next;          // wires feeding state at cycle t+1
  std::vector<Wire> outputs;

  Wire num_wires = 2;  // wires 0/1 reserved for constants

  CircuitStats stats() const;

  /// Plaintext evaluation: reference semantics for every consumer
  /// (tests, gate-level debugging, the GC engine correctness oracle).
  /// `state` is both input (cycle t-1 values) and output (state_next).
  BitVec eval(const BitVec& garbler_bits, const BitVec& evaluator_bits,
              BitVec* state = nullptr) const;

  /// Throws std::logic_error when gates are not topologically ordered,
  /// reference out-of-range wires, or inputs alias each other.
  void validate() const;

  /// Flush schedule for the batched garbling pipeline: the sorted gate
  /// indices before which a pending AND-hash window must be drained
  /// because that gate reads a wire produced by a still-pending AND.
  /// Computed lazily from `gates` and cached (thread-safe), so repeated
  /// garblings of the same netlist — the online phase — skip the
  /// dependency scan. A gate-count change (e.g. appending gates after a
  /// garbling) invalidates the cache, but in-place edits that keep the
  /// count are undetected — treat `gates` as frozen once garbling starts.
  std::shared_ptr<const std::vector<uint32_t>> gc_flush_points() const;

  /// Width-scheduled view of this circuit (circuit/schedule.h): same
  /// wires/inputs/outputs, gates permuted into the levelized
  /// batch-window-maximizing order. Computed lazily and cached with the
  /// same thread-safety and invalidation rules as gc_flush_points();
  /// the returned circuit carries its own (lazily cached) flush
  /// schedule, so repeated garblings reuse both.
  std::shared_ptr<const Circuit> gc_scheduled() const;

 private:
  mutable std::shared_ptr<const std::vector<uint32_t>> gc_flush_cache_;
  mutable size_t gc_flush_cache_gates_ = 0;
  mutable std::shared_ptr<const Circuit> gc_sched_cache_;
  mutable size_t gc_sched_cache_gates_ = 0;
};

/// Multi-cycle (sequential) execution of a folded circuit. The state is
/// initialized to all zeros at cycle 0. Per-cycle inputs are concatenated
/// slices: garbler_bits/evaluator_bits hold `cycles` consecutive blocks.
BitVec eval_sequential(const Circuit& step, size_t cycles,
                       const BitVec& garbler_bits,
                       const BitVec& evaluator_bits);

}  // namespace deepsecure
