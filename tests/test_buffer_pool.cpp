// BufferPool / BufferRef lifecycle regressions: refcount semantics,
// slab recycling (including recycle-after-async-send through a
// RingChannel), adopted-vector ownership, and the teardown-with-
// inflight-refs contract — the pool object may die while the transport
// still holds slab references, and the last release must neither crash
// nor leak. The concurrency cases are the TSan targets (.github CI runs
// this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/ring_channel.h"
#include "support/buffer_pool.h"

namespace deepsecure {
namespace {

// Sink transport recording every byte (the pool tests only send).
class SinkChannel : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void recv_bytes(void*, size_t) override {
    throw std::logic_error("SinkChannel: recv not supported");
  }
  uint64_t bytes_sent() const override { return bytes.size(); }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override { bytes.clear(); }

  std::vector<uint8_t> bytes;
};

TEST(BufferPool, AcquireReleaseRecyclesSlab) {
  BufferPool pool(100);  // rounds up to cache-line granularity
  EXPECT_EQ(pool.slab_bytes(), 128u);
  EXPECT_EQ(pool.free_slabs(), 0u);
  uint8_t* first = nullptr;
  {
    BufferRef ref = pool.acquire();
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref.size(), 128u);
    EXPECT_EQ(ref.use_count(), 1u);
    first = ref.data();
    std::memset(ref.data(), 0xAB, ref.size());
  }
  EXPECT_EQ(pool.free_slabs(), 1u);
  // The freelist really recycles: the next acquire hands back the same
  // slab instead of allocating.
  BufferRef again = pool.acquire();
  EXPECT_EQ(again.data(), first);
  EXPECT_EQ(pool.free_slabs(), 0u);
}

TEST(BufferPool, CopySharesAndLastReleaseRecycles) {
  BufferPool pool(64);
  BufferRef a = pool.acquire();
  BufferRef b = a;  // copy bumps
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.data(), a.data());
  BufferRef c = std::move(a);  // move transfers, no bump
  EXPECT_FALSE(a);
  EXPECT_EQ(c.use_count(), 2u);
  b.reset();
  EXPECT_EQ(pool.free_slabs(), 0u);  // c still pins the slab
  EXPECT_EQ(c.use_count(), 1u);
  c.reset();
  EXPECT_EQ(pool.free_slabs(), 1u);
}

TEST(BufferPool, AdoptedVectorKeepsBytesUntilLastRelease) {
  std::vector<uint8_t> v(1000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<uint8_t>(i);
  BufferRef a = BufferRef::adopt(std::move(v));
  ASSERT_TRUE(a);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.data()[123], 123u);
  BufferRef b = a;
  a.reset();
  EXPECT_EQ(b.data()[999], static_cast<uint8_t>(999));
  b.reset();  // frees the holder (leak-checked under the sanitizers)
}

// Recycle-after-send: a slab borrowed into a RingChannel send must stay
// pinned until the writer thread has truly shipped the bytes, and only
// then return to the freelist — NOT at enqueue time.
TEST(BufferPool, SlabRecyclesAfterAsyncSendCompletes) {
  SinkChannel sink;
  BufferPool pool(256);
  {
    RingChannel ring(sink);
    BufferRef ref = pool.acquire();
    for (size_t i = 0; i < ref.size(); ++i)
      ref.data()[i] = static_cast<uint8_t>(i * 7);
    IoSlice slice;
    slice.data = ref.data();
    slice.len = ref.size();
    slice.ref = std::move(ref);
    ring.send_iov(&slice, 1);
    ring.drain();  // waits until the writer shipped the enqueued bytes
    EXPECT_EQ(sink.bytes.size(), 256u);
    for (size_t i = 0; i < sink.bytes.size(); ++i)
      ASSERT_EQ(sink.bytes[i], static_cast<uint8_t>(i * 7));
  }
  // Writer done + our ref moved out: the slab must be back on the
  // freelist by now (flush() returning means the writer dropped its
  // reference).
  EXPECT_EQ(pool.free_slabs(), 1u);
}

// Teardown-with-inflight-refs: destroying the pool while a reference is
// still alive must keep the slab memory valid; the late release
// recycles into the orphaned core, whose destructor frees everything.
// ASan/LSan verify the no-leak half, TSan the unsynchronized-teardown
// half.
TEST(BufferPool, PoolMayDieBeforeInflightRefs) {
  auto pool = std::make_unique<BufferPool>(512);
  BufferRef held = pool->acquire();
  BufferRef copy = held;
  std::memset(held.data(), 0x5C, held.size());
  pool.reset();  // pool object gone, refs still out
  EXPECT_EQ(held.data()[511], 0x5C);
  copy.reset();
  EXPECT_EQ(held.use_count(), 1u);
  held.reset();  // last release frees via the orphaned core
}

// Teardown racing an asynchronous sender: the RingChannel writer still
// holds slab refs when the pool dies.
TEST(BufferPool, PoolMayDieWithRefsInsideRingChannel) {
  SinkChannel sink;
  RingChannel ring(sink);
  auto pool = std::make_unique<BufferPool>(4096);
  for (int i = 0; i < 8; ++i) {
    BufferRef ref = pool->acquire();
    std::memset(ref.data(), i, ref.size());
    IoSlice slice;
    slice.data = ref.data();
    slice.len = ref.size();
    slice.ref = std::move(ref);
    ring.send_iov(&slice, 1);
  }
  pool.reset();  // sends may still be in flight on the writer thread
  ring.drain();
  EXPECT_EQ(sink.bytes.size(), 8u * 4096u);
}

// Concurrency smoke (the TSan target): many threads churning acquire /
// copy / release against one pool must neither race nor lose slabs.
TEST(BufferPool, ConcurrentAcquireReleaseSmoke) {
  BufferPool pool(128);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<uint64_t> touched{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        BufferRef ref = pool.acquire();
        ref.data()[0] = static_cast<uint8_t>(t);
        BufferRef copy = ref;
        touched.fetch_add(copy.data()[0] == static_cast<uint8_t>(t) ? 1 : 0);
        // Drop in shuffled order so both paths release last sometimes.
        if (i % 2 == 0) ref.reset();
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(touched.load(), uint64_t{kThreads * kIters});
  // Every slab came home: nothing is checked out anymore.
  BufferRef probe = pool.acquire();
  EXPECT_EQ(probe.use_count(), 1u);
}

}  // namespace
}  // namespace deepsecure
