#include "circuit/netlist_io.h"

#include <sstream>
#include <stdexcept>

namespace deepsecure {
namespace {

void write_wire_list(std::ostream& os, const char* tag,
                     const std::vector<Wire>& ws) {
  if (ws.empty()) return;
  os << tag;
  for (Wire w : ws) os << ' ' << w;
  os << '\n';
}

}  // namespace

void write_netlist(std::ostream& os, const Circuit& c) {
  os << "netlist " << (c.name.empty() ? "anonymous" : c.name) << '\n';
  os << "wires " << c.num_wires << '\n';
  write_wire_list(os, "in G", c.garbler_inputs);
  write_wire_list(os, "in E", c.evaluator_inputs);
  write_wire_list(os, "in S", c.state_inputs);
  for (const Gate& g : c.gates) {
    os << "gate " << (g.op == GateOp::kXor ? "XOR" : "AND") << ' ' << g.a
       << ' ' << g.b << ' ' << g.out << '\n';
  }
  write_wire_list(os, "next", c.state_next);
  write_wire_list(os, "out", c.outputs);
}

std::string netlist_to_string(const Circuit& c) {
  std::ostringstream os;
  write_netlist(os, c);
  return os.str();
}

Circuit read_netlist(std::istream& is) {
  Circuit c;
  std::string line;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "netlist") {
      ls >> c.name;
      have_header = true;
    } else if (kw == "wires") {
      ls >> c.num_wires;
    } else if (kw == "in") {
      std::string who;
      ls >> who;
      std::vector<Wire>* dst = nullptr;
      if (who == "G")
        dst = &c.garbler_inputs;
      else if (who == "E")
        dst = &c.evaluator_inputs;
      else if (who == "S")
        dst = &c.state_inputs;
      else
        throw std::runtime_error("netlist: unknown input class " + who);
      Wire w;
      while (ls >> w) dst->push_back(w);
    } else if (kw == "gate") {
      std::string op;
      Gate g;
      ls >> op >> g.a >> g.b >> g.out;
      if (!ls) throw std::runtime_error("netlist: malformed gate line");
      if (op == "XOR")
        g.op = GateOp::kXor;
      else if (op == "AND")
        g.op = GateOp::kAnd;
      else
        throw std::runtime_error("netlist: unknown gate op " + op);
      c.gates.push_back(g);
    } else if (kw == "next") {
      Wire w;
      while (ls >> w) c.state_next.push_back(w);
    } else if (kw == "out") {
      Wire w;
      while (ls >> w) c.outputs.push_back(w);
    } else {
      throw std::runtime_error("netlist: unknown keyword " + kw);
    }
  }
  if (!have_header) throw std::runtime_error("netlist: missing header");
  c.validate();
  return c;
}

Circuit netlist_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_netlist(is);
}

}  // namespace deepsecure
