// Secure inference server: loads the demo model once and serves
// concurrent private-inference sessions over TCP until interrupted.
//
//   ./example_secure_server [port] [max_sessions] [idle_timeout_ms] [core]
//
// core is "event" (epoll reactor + worker pool, the default) or
// "thread" (one handler thread per session).
//
// Pair with example_secure_client, which owns the data samples.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "demo_model.h"
#include "runtime/server.h"

namespace {
std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  using namespace deepsecure;

  runtime::ServerConfig cfg;
  cfg.port = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 31337;
  cfg.max_sessions = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 8;
  if (argc > 3) cfg.idle_timeout_ms = static_cast<uint64_t>(std::atoll(argv[3]));
  if (argc > 4) {
    const std::string core = argv[4];
    if (core == "thread") {
      cfg.core = runtime::ServerCore::kThreadPerSession;
    } else if (core == "event") {
      cfg.core = runtime::ServerCore::kEventLoop;
    } else {
      std::fprintf(stderr, "secure_server: unknown core '%s' (want event|thread)\n",
                   core.c_str());
      return 1;
    }
  }

  runtime::InferenceServer server(demo::demo_spec(), demo::demo_weight_bits(),
                                  cfg);
  server.start();
  std::printf("secure_server: model '%s' loaded, listening on 127.0.0.1:%u "
              "(max %zu concurrent sessions, %s core)\n",
              demo::demo_spec().name.c_str(), server.port(), cfg.max_sessions,
              cfg.core == runtime::ServerCore::kEventLoop ? "event"
                                                          : "thread");
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("secure_server: shutting down (%llu sessions, %llu inferences "
              "served, %llu from prefetched material)\n",
              static_cast<unsigned long long>(server.sessions_accepted()),
              static_cast<unsigned long long>(server.inferences_served()),
              static_cast<unsigned long long>(server.inferences_pooled()));
  server.stop();
  // Full stats after stop(): every teardown has settled, so the phase
  // histograms cover each session end to end.
  std::printf("secure_server: stats %s\n", server.stats_json().c_str());
  return 0;
}
