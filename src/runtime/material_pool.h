// Background producer of offline garbling artifacts — the client-side
// half of the offline/online split. A MaterialPool keeps up to `target`
// GarbledMaterial instances for one compiled chain ready at all times:
// producer tasks run on a support/thread_pool, each garbling one
// instance from a fresh PRG seed, and every acquire() triggers a refill
// so the pool converges back to `target` while the session is busy with
// the online phase.
//
// One artifact = one inference (labels must never be reused), so this
// is an inventory of consumables, not a cache: sizing follows Little's
// law — target ≈ arrival_rate × garble_time — and a drained pool is not
// an error, just the signal for the caller to fall back to on-demand
// streaming garbling (try_acquire returns nullopt instead of blocking).
//
// Two orthogonal parallelism axes:
//   * producer_threads — artifacts in flight concurrently (throughput:
//     keeps a busy pool full; each artifact still takes one full
//     garble).
//   * shard_threads — window sharding INSIDE each garbling
//     (latency: the first artifact after a cold start / model reload
//     lands in ~1/shards of a single-threaded garble; the sharded
//     artifact is byte-identical — see garble_offline in gc/material.h).
// For a latency-sensitive cold start prefer shard_threads ≈ cores with
// one producer; for steady-state inventory prefer producers. The shard
// pool is shared across producers, so the two compose without
// oversubscribing: total workers = producer_threads + shard_threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "crypto/prg.h"
#include "gc/material.h"
#include "obs/metrics.h"
#include "support/spsc_ring.h"
#include "support/thread_pool.h"

namespace deepsecure::runtime {

/// Process-wide count of garbled artifacts DISCARDED because a session
/// failure interrupted their transfer or OT (Registry::global(),
/// `pool.poisoned` in stats_json/BENCH rows). One artifact = one
/// inference and labels must never be reused, so recovery poisons
/// anything partially consumed instead of replaying it — this counter
/// is the audit trail that the one-shot invariant held under chaos.
inline obs::Counter& poisoned_counter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.poisoned");
  return c;
}

struct MaterialPoolConfig {
  /// Artifacts to keep ready at all times.
  size_t target = 1;
  /// Background producer workers (artifacts garbled concurrently).
  size_t producer_threads = 1;
  /// Window-shard workers per garbling (0 = each artifact garbles
  /// single-threaded). See the two-axes note in the file header.
  size_t shard_threads = 0;
  /// Drives the per-artifact label seeds (zero = OS entropy); pass a
  /// constant only in tests.
  Block seed{};
  /// Publish finished artifacts through a lock-free SPSC ring
  /// (support/spsc_ring.h) instead of the mutex-guarded deque: the
  /// producer hands a ~MB artifact to the consumer without holding the
  /// pool mutex during delivery, so a consumer draining the pool (the
  /// async prefetch lane) never contends the garbling bookkeeping.
  /// Requires a single producer thread — auto-disabled when
  /// producer_threads > 1 (consumer pops stay serialized under the pool
  /// mutex either way, so any number of acquirers is fine).
  bool ring_handoff = true;
};

class MaterialPool {
 public:
  /// Keeps up to `cfg.target` artifacts for `chain` ready. `chain` is
  /// captured by reference and must outlive the pool.
  MaterialPool(const std::vector<Circuit>& chain, const GcOptions& opt,
               MaterialPoolConfig cfg);
  /// Legacy positional form (no window sharding).
  MaterialPool(const std::vector<Circuit>& chain, const GcOptions& opt,
               size_t target, size_t producer_threads = 1, Block seed = {});
  ~MaterialPool();

  MaterialPool(const MaterialPool&) = delete;
  MaterialPool& operator=(const MaterialPool&) = delete;

  /// Non-blocking: a ready artifact, or nullopt when drained (the
  /// caller's cue to garble on demand). Triggers a background refill
  /// either way. Rethrows a producer failure (bad chain/options) on
  /// the caller instead of reporting an eternal drain.
  std::optional<GarbledMaterial> try_acquire();

  /// Blocking: waits for production when drained. Used to warm the pool
  /// before a latency-sensitive phase. Rethrows producer failures.
  GarbledMaterial acquire();

  /// Artifacts currently ready.
  size_t ready() const;

  // Stats getters lock: producer threads update the counters under mu_.
  uint64_t produced() const {
    std::lock_guard<std::mutex> lock(mu_);
    return produced_;
  }
  uint64_t acquired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acquired_;
  }
  /// try_acquire calls that found the pool drained.
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  void schedule_refill_locked();
  void rethrow_error_locked();
  bool take_ready_locked(GarbledMaterial& out);
  void produce_one();

  const std::vector<Circuit>& chain_;
  GcOptions opt_;
  size_t target_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  // Ready artifacts: the SPSC ring is the hot handoff (single producer
  // pushes lock-free; pops serialize under mu_), the deque is the
  // multi-producer / ring-overflow path. Either may hold artifacts.
  std::unique_ptr<SpscRing<GarbledMaterial>> ring_;
  std::deque<GarbledMaterial> ready_;
  Prg seed_prg_;
  size_t in_flight_ = 0;  // producer tasks scheduled but not yet pushed
  size_t waiting_ = 0;    // acquire() calls blocked on production
  std::exception_ptr error_;  // first producer failure, rethrown on acquire
  bool stopping_ = false;

  uint64_t produced_ = 0;
  uint64_t acquired_ = 0;
  uint64_t misses_ = 0;

  // Process-wide instruments (Registry::global()): pools are client-side
  // infrastructure and tests create many short-lived ones, so these
  // aggregate across every pool in the process. The per-pool exact
  // counters above remain the source of truth for assertions.
  obs::Counter& c_hits_ = obs::Registry::global().counter("pool.hits");
  obs::Counter& c_misses_ = obs::Registry::global().counter("pool.misses");
  obs::Counter& c_produced_ = obs::Registry::global().counter("pool.produced");
  obs::Histogram& h_refill_ns_ =
      obs::Registry::global().histogram("pool.refill_ns");
  obs::Gauge& g_ready_ = obs::Registry::global().gauge("pool.ready");

  // Window-shard pool shared by all producers (see file header); must
  // outlive workers_, whose draining tasks garble through it.
  std::unique_ptr<ThreadPool> shard_workers_;
  // Destroyed first (declared last): its destructor drains queued
  // producer tasks, which touch the members above.
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace deepsecure::runtime
