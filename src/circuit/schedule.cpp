#include "circuit/schedule.h"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace deepsecure {
namespace {

// Round-robin interleave of one level's AND gates across lane tags,
// in place over a gate_map slice: lane-major runs (all of column 0,
// then all of column 1, ...) become alternating picks, so
// capacity-split windows and their thread-pool shards mix lanes
// evenly — the layout NUMA shard affinity will want. Single-lane
// slices keep original order.
void interleave_by_lane(uint32_t* begin, uint32_t* end,
                        const std::vector<uint32_t>& lanes) {
  const size_t n = static_cast<size_t>(end - begin);
  if (n < 2) return;
  std::unordered_map<uint32_t, size_t> group_of;  // lane -> groups slot
  std::vector<std::vector<uint32_t>> groups;      // first-appearance order
  for (uint32_t* p = begin; p != end; ++p) {
    const auto [it, fresh] = group_of.try_emplace(lanes[*p], groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(*p);
  }
  if (groups.size() < 2) return;
  uint32_t* out = begin;
  for (size_t round = 0; out != end; ++round)
    for (const auto& g : groups)
      if (round < g.size()) *out++ = g[round];
}

}  // namespace

ScheduleResult schedule_circuit(const Circuit& c) {
  const size_t n = c.gates.size();

  // Pass 1: AND-depth levels. Inputs and constants sit at level 0; an
  // AND's output is one level past its deepest input, a free XOR's
  // output stays at its deepest input's level. Each gate's sort key
  // puts the level's XORs before its ANDs.
  std::vector<uint32_t> wire_level(c.num_wires, 0);
  std::vector<uint32_t> key(n);
  uint32_t max_level = 0;
  for (size_t i = 0; i < n; ++i) {
    const Gate& g = c.gates[i];
    const uint32_t lvl = std::max(wire_level[g.a], wire_level[g.b]);
    const bool is_and = g.op == GateOp::kAnd;
    key[i] = 2 * lvl + (is_and ? 1 : 0);
    wire_level[g.out] = lvl + (is_and ? 1 : 0);
    max_level = std::max(max_level, lvl);
  }

  // Pass 2: stable counting sort by key — the levelized order.
  // Correctness: a level-L gate's inputs come from levels <= L;
  // same-level producers can only be XORs (a same-level AND's output
  // would be level L+1), which sort earlier in the level, and stability
  // keeps same-level XOR chains in their original (topological) order.
  // Width: all ANDs of a level are independent, so the only same-level
  // drain is the capacity cap.
  std::vector<uint32_t> offset(2 * (max_level + 1) + 1, 0);
  for (size_t i = 0; i < n; ++i) ++offset[key[i] + 1];
  for (size_t k = 1; k < offset.size(); ++k) offset[k] += offset[k - 1];

  ScheduleResult r;
  r.gate_map.resize(n);
  {
    std::vector<uint32_t> pos(offset.begin(), offset.end() - 1);
    for (size_t i = 0; i < n; ++i)
      r.gate_map[pos[key[i]]++] = static_cast<uint32_t>(i);
  }

  // Pass 3: lane interleave within each level's AND run.
  if (!c.gate_lanes.empty())
    for (uint32_t lvl = 0; lvl <= max_level; ++lvl)
      interleave_by_lane(r.gate_map.data() + offset[2 * lvl + 1],
                         r.gate_map.data() + offset[2 * lvl + 2],
                         c.gate_lanes);

  // Wires, inputs, outputs, and state bindings are unchanged; only the
  // gate list (and its lane tags) is gathered through the permutation.
  Circuit& s = r.circuit;
  s.name = c.name;
  s.garbler_inputs = c.garbler_inputs;
  s.evaluator_inputs = c.evaluator_inputs;
  s.state_inputs = c.state_inputs;
  s.state_next = c.state_next;
  s.outputs = c.outputs;
  s.num_wires = c.num_wires;
  s.gates.resize(n);
  if (!c.gate_lanes.empty()) s.gate_lanes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    s.gates[i] = c.gates[r.gate_map[i]];
    if (!c.gate_lanes.empty()) s.gate_lanes[i] = c.gate_lanes[r.gate_map[i]];
  }
  return r;
}

std::shared_ptr<const Circuit> Circuit::gc_scheduled() const {
  // Unlike gc_flush_points() (cheap scan, lock never held across it),
  // the scheduling pass is expensive enough that two concurrent first
  // callers on the SAME circuit — garbler and evaluator threads of an
  // in-process two-party run — should not both pay it. The mutex is
  // held across the compute but sharded by object identity, so
  // unrelated circuits scheduling concurrently almost never contend.
  static std::mutex mu[16];
  std::mutex& m =
      mu[(reinterpret_cast<std::uintptr_t>(this) >> 6) & 15];
  std::lock_guard<std::mutex> lock(m);
  if (!gc_sched_cache_ || gc_sched_cache_gates_ != gates.size()) {
    gc_sched_cache_ =
        std::make_shared<const Circuit>(schedule_circuit(*this).circuit);
    gc_sched_cache_gates_ = gates.size();
  }
  return gc_sched_cache_;
}

WindowStats window_stats(const Circuit& c, size_t capacity) {
  const auto flush_points = c.gc_flush_points();
  const uint32_t* fp = flush_points->data();
  const uint32_t* fp_end = fp + flush_points->size();

  WindowStats s;
  s.flush_points = flush_points->size();
  std::vector<size_t> widths;
  size_t window = 0;
  auto drain = [&]() {
    if (window == 0) return;
    widths.push_back(window);
    window = 0;
  };
  for (uint32_t i = 0; i < static_cast<uint32_t>(c.gates.size()); ++i) {
    if (fp != fp_end && *fp == i) {
      drain();
      ++fp;
    }
    if (c.gates[i].op != GateOp::kAnd) continue;
    ++s.and_gates;
    if (++window == capacity) drain();
  }
  drain();

  s.windows = widths.size();
  if (widths.empty()) return s;
  s.mean = static_cast<double>(s.and_gates) / static_cast<double>(s.windows);
  std::sort(widths.begin(), widths.end());
  s.p50 = widths[widths.size() / 2];
  s.p95 = widths[std::min(widths.size() - 1, (widths.size() * 95) / 100)];
  s.max = widths.back();
  return s;
}

}  // namespace deepsecure
