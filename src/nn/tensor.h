// Small numeric helpers for the neural-network substrate. Samples are
// flat float vectors laid out channel-major ((c * H + y) * W + x), the
// same convention as the circuit compiler.
#pragma once

#include <cstddef>
#include <vector>

namespace deepsecure::nn {

using VecF = std::vector<float>;

size_t argmax(const VecF& v);

/// Numerically-stable softmax.
VecF softmax(const VecF& logits);

/// Cross-entropy loss of softmax(logits) against `label`, plus the
/// gradient w.r.t. the logits (softmax - onehot).
struct LossGrad {
  float loss = 0.0f;
  VecF dlogits;
};
LossGrad softmax_cross_entropy(const VecF& logits, size_t label);

float dot(const VecF& a, const VecF& b);
float l2_norm(const VecF& a);

}  // namespace deepsecure::nn
