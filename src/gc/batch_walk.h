// Shared driver for the batched hashing pipeline's gate walk. Garbler
// and Evaluator defer exactly the same AND gates, so the flush schedule
// and capacity policy must stay in lock-step between them — this template
// is the single place that logic lives.
//
// Under GcOptions::schedule both endpoints pass the circuit's
// width-scheduled view (Circuit::gc_scheduled) here instead of the
// construction order; the walked circuit defines the table/tweak
// order, so the caller must hand both parties the identical view — the
// runtime handshake's fingerprint over the scheduled netlist enforces
// that across machines.
#pragma once

#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>

#include "circuit/circuit.h"
#include "gc/garble.h"
#include "support/buffer_pool.h"

namespace deepsecure {

// ---------------------------------------------------------------------
// Dense window staging lines. One window's operands live in a single
// 64-byte-aligned allocation with power-of-two gate capacity; each
// operand class (labels, tweaks, hashes, table rows, output wires) is a
// contiguous segment starting on a cache-line boundary. The hash
// backends sweep the segments as flat arrays — no per-gate structs to
// gather from — and the same layout is what a launch-per-window GPU
// kernel would DMA: one linear copy in, one out.
// ---------------------------------------------------------------------

namespace detail {
struct WindowLineFree {
  void operator()(void* p) const { std::free(p); }
};
using WindowLineMem = std::unique_ptr<void, WindowLineFree>;

inline WindowLineMem window_line_alloc(size_t bytes) {
  // aligned_alloc requires the size be a multiple of the alignment.
  bytes = (bytes + 63) & ~size_t{63};
  void* p = std::aligned_alloc(64, bytes);
  if (p == nullptr) throw std::bad_alloc();
  return WindowLineMem(p);
}
}  // namespace detail

/// Garbler-side staging line: per gate, the two input zero-labels, two
/// tweaks, four hashes (gc_hash_and_quads output), two table rows, and
/// the output wire. Segment order puts the 16-byte Block segments
/// first, so every segment is cache-line aligned for any power-of-two
/// capacity >= 4.
struct GarbleWindowLine {
  /// Bytes one line of `cap` gates occupies — the slab size a zero-copy
  /// BufferPool must be built with.
  static constexpr size_t bytes_for(size_t cap) {
    return cap * (9 * sizeof(Block) + 2 * sizeof(uint64_t) + sizeof(Wire));
  }

  explicit GarbleWindowLine(size_t cap) : capacity(cap) {
    static_assert(sizeof(Block) == 16);
    mem_ = detail::window_line_alloc(bytes_for(cap));
    segment(static_cast<uint8_t*>(mem_.get()), cap);
  }

  /// Pool-backed line: the staging memory is a refcounted slab
  /// (support/buffer_pool.h), so the table-row segment can ship as a
  /// borrowed iovec slice with slab() pinning it — the zero-copy data
  /// plane. The slab recycles when the transport drops the last ref.
  GarbleWindowLine(size_t cap, BufferPool& pool) : capacity(cap) {
    static_assert(sizeof(Block) == 16);
    slab_ = pool.acquire();
    if (slab_.size() < bytes_for(cap))
      throw std::invalid_argument("window line: pool slab too small");
    segment(slab_.data(), cap);
  }

  /// Refcounted handle to the backing slab (empty for malloc-backed
  /// lines). Copy it into an IoSlice to pin the line across an
  /// asynchronous send.
  const BufferRef& slab() const { return slab_; }

  Block* a0;
  Block* b0;
  Block* hashes;
  Block* tabs;
  uint64_t* tweaks;
  Wire* outs;
  size_t size = 0;
  size_t capacity;  // non-const so drained lines can be move-replaced

 private:
  void segment(uint8_t* base, size_t cap) {
    a0 = reinterpret_cast<Block*>(base);
    b0 = a0 + cap;
    hashes = b0 + cap;        // 4 per gate
    tabs = hashes + 4 * cap;  // 2 per gate
    tweaks = reinterpret_cast<uint64_t*>(tabs + 2 * cap);  // 2 per gate
    outs = reinterpret_cast<Wire*>(tweaks + 2 * cap);
  }

  detail::WindowLineMem mem_;
  BufferRef slab_;
};

/// Evaluator-side staging line: two active input labels, two tweaks,
/// two table rows, two hashes, one output wire per gate.
struct EvalWindowLine {
  explicit EvalWindowLine(size_t cap) : capacity(cap) {
    static_assert(sizeof(Block) == 16);
    const size_t bytes = cap * (6 * sizeof(Block) + 2 * sizeof(uint64_t) +
                                sizeof(Wire));
    mem_ = detail::window_line_alloc(bytes);
    auto* base = static_cast<uint8_t*>(mem_.get());
    ins = reinterpret_cast<Block*>(base);  // 2 per gate
    tabs = ins + 2 * cap;                  // 2 per gate
    hashes = tabs + 2 * cap;               // 2 per gate
    tweaks = reinterpret_cast<uint64_t*>(hashes + 2 * cap);  // 2 per gate
    outs = reinterpret_cast<Wire*>(tweaks + 2 * cap);
  }

  Block* ins;
  Block* tabs;
  Block* hashes;
  uint64_t* tweaks;
  Wire* outs;
  size_t size = 0;
  const size_t capacity;

 private:
  detail::WindowLineMem mem_;
};

/// Walk `c.gates` in order. XOR gates invoke `on_xor(g)` immediately
/// (free-XOR). AND gates invoke `on_and(g)` to enqueue into the pending
/// window; `flush(bool level_boundary)` drains it — called at the
/// circuit's precomputed dependency flush points and after the last
/// gate (level_boundary = true: a real barrier in the gate order, under
/// the width scheduler an AND-level boundary), and at
/// `kGcMaxBatchWindow` pending gates (level_boundary = false: a
/// capacity drain mid-level). The distinction only matters to consumers
/// that align a downstream unit to levels — table frame sizing — and
/// never changes which gates drain when, so both endpoints stay in
/// lock-step regardless of how they use it. `flush(...)` must be a
/// no-op on an empty window.
template <typename XorFn, typename AndFn, typename FlushFn>
void gc_batched_walk(const Circuit& c, XorFn&& on_xor, AndFn&& on_and,
                     FlushFn&& flush) {
  const auto flush_points = c.gc_flush_points();
  const uint32_t* fp = flush_points->data();
  const uint32_t* fp_end = fp + flush_points->size();

  size_t window = 0;
  for (uint32_t i = 0; i < static_cast<uint32_t>(c.gates.size()); ++i) {
    if (fp != fp_end && *fp == i) {
      flush(/*level_boundary=*/true);
      window = 0;
      ++fp;
    }
    const Gate& g = c.gates[i];
    if (g.op == GateOp::kXor) {
      on_xor(g);
      continue;
    }
    on_and(g);
    if (++window == kGcMaxBatchWindow) {
      flush(/*level_boundary=*/false);
      window = 0;
    }
  }
  flush(/*level_boundary=*/true);
}

}  // namespace deepsecure
