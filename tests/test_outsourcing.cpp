#include <gtest/gtest.h>

#include "gc/outsourcing.h"
#include "gc/protocol.h"
#include "net/party.h"
#include "synth/layer_circuits.h"
#include "test_util.h"

namespace deepsecure {
namespace {

using test::pack_fixed;
using test::random_fixed;

constexpr FixedFormat kFmt = kDefaultFormat;

TEST(XorShare, ReconstructsAndLooksRandom) {
  Prg prg(Block{1, 2});
  const BitVec x{1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0};
  const XorShares sh = xor_share(x, prg);
  ASSERT_EQ(sh.share_a.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(sh.share_a[i] ^ sh.share_b[i], x[i]);

  // Shares of the all-zero string are still non-degenerate pads.
  const XorShares z = xor_share(BitVec(128, 0), prg);
  size_t ones = 0;
  for (uint8_t b : z.share_a) ones += b;
  EXPECT_GT(ones, 32u);
  EXPECT_LT(ones, 96u);
}

TEST(Outsourcing, TransformAddsOnlyFreeXor) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kGarbler);
  const Wire w = b.input(Party::kEvaluator);
  b.output(b.and_(b.xor_(x, y), w));
  const Circuit c = b.build();
  const Circuit oc = add_xor_sharing_layer(c);

  EXPECT_EQ(oc.stats().num_and, c.stats().num_and);  // no extra non-XOR
  EXPECT_EQ(oc.stats().num_xor, c.stats().num_xor + 2);
  EXPECT_EQ(oc.garbler_inputs.size(), 2u);
  EXPECT_EQ(oc.evaluator_inputs.size(), 3u);  // 2 shares + 1 weight
}

TEST(Outsourcing, SharedEvalEqualsDirectEval) {
  const synth::ModelSpec spec = [] {
    synth::ModelSpec s;
    s.input = synth::Shape3{1, 1, 4};
    s.layers.push_back(synth::FcLayer{3, {}, true});
    s.layers.push_back(synth::ActLayer{synth::ActKind::kReLU});
    s.layers.push_back(synth::ArgmaxLayer{});
    return s;
  }();
  const Circuit c = synth::compile_model(spec);
  const Circuit oc = add_xor_sharing_layer(c);

  Rng rng(5);
  Prg pad(Block{9, 9});
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Fixed> xs, ws;
    for (size_t i = 0; i < 4; ++i) xs.push_back(random_fixed(rng, kFmt, 0.2));
    for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
      ws.push_back(random_fixed(rng, kFmt, 0.2));
    const BitVec x_bits = pack_fixed(xs);
    const BitVec w_bits = pack_fixed(ws);

    const XorShares sh = xor_share(x_bits, pad);
    BitVec eval_in = sh.share_b;
    eval_in.insert(eval_in.end(), w_bits.begin(), w_bits.end());

    EXPECT_EQ(oc.eval(sh.share_a, eval_in), c.eval(x_bits, w_bits));
  }
}

TEST(Outsourcing, FullProtocolBetweenTwoServers) {
  // Proxy = garbler holding share s; main server = evaluator holding
  // share x^s plus the model weights. The client only XORs.
  const synth::ModelSpec spec = [] {
    synth::ModelSpec s;
    s.input = synth::Shape3{1, 1, 3};
    s.layers.push_back(synth::FcLayer{2, {}, true});
    s.layers.push_back(synth::ArgmaxLayer{});
    return s;
  }();
  const Circuit c = synth::compile_model(spec);
  const Circuit oc = add_xor_sharing_layer(c);

  Rng rng(6);
  std::vector<Fixed> xs, ws;
  for (size_t i = 0; i < 3; ++i) xs.push_back(random_fixed(rng, kFmt, 0.3));
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    ws.push_back(random_fixed(rng, kFmt, 0.3));
  const BitVec x_bits = pack_fixed(xs);
  const BitVec w_bits = pack_fixed(ws);

  Prg pad(Block{13, 13});
  const XorShares sh = xor_share(x_bits, pad);
  BitVec eval_in = sh.share_b;
  eval_in.insert(eval_in.end(), w_bits.begin(), w_bits.end());

  BitVec proxy_out, server_out;
  run_two_party(
      [&](Channel& ch) {
        GarblerSession session(ch, Block{17, 17});
        proxy_out = session.run_chain({oc}, sh.share_a);
      },
      [&](Channel& ch) {
        EvaluatorSession session(ch);
        server_out = session.run_chain({oc}, eval_in);
      });
  EXPECT_EQ(proxy_out, c.eval(x_bits, w_bits));
  EXPECT_EQ(server_out, proxy_out);
}

}  // namespace
}  // namespace deepsecure
