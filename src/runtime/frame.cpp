#include "runtime/frame.h"

#include <cstring>
#include <stdexcept>

namespace deepsecure::runtime {
namespace {

constexpr size_t kMaxFrameBytes = 1 << 20;  // control frames are tiny

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  const size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  const size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

uint32_t get_u32(const std::vector<uint8_t>& in, size_t at) {
  uint32_t v = 0;
  std::memcpy(&v, in.data() + at, 4);
  return v;
}

uint64_t get_u64(const std::vector<uint8_t>& in, size_t at) {
  uint64_t v = 0;
  std::memcpy(&v, in.data() + at, 8);
  return v;
}

}  // namespace

void send_frame(Channel& ch, FrameType type, const void* payload, size_t n) {
  const uint8_t t = static_cast<uint8_t>(type);
  const uint32_t len = static_cast<uint32_t>(n);
  ch.send_bytes(&t, 1);
  ch.send_bytes(&len, 4);
  if (n > 0) ch.send_bytes(payload, n);
}

Frame recv_frame(Channel& ch) {
  uint8_t t = 0;
  uint32_t len = 0;
  ch.recv_bytes(&t, 1);
  ch.recv_bytes(&len, 4);
  if (t < 1 || t > 12 || len > kMaxFrameBytes)
    throw std::runtime_error("runtime: malformed session frame");
  Frame f;
  f.type = static_cast<FrameType>(t);
  f.payload.resize(len);
  if (len > 0) ch.recv_bytes(f.payload.data(), len);
  if (f.type == FrameType::kError) {
    // v6 payload is [u8 ErrorCode][utf-8 reason]; strip the code byte
    // so the thrown message stays "runtime: peer error: <reason>".
    const size_t skip = f.payload.empty() ? 0 : 1;
    throw std::runtime_error(
        "runtime: peer error: " +
        std::string(f.payload.begin() + skip, f.payload.end()));
  }
  return f;
}

void send_id_frame(Channel& ch, FrameType type, uint64_t id) {
  uint8_t payload[8];
  std::memcpy(payload, &id, 8);
  send_frame(ch, type, payload, sizeof(payload));
}

uint64_t parse_id(const Frame& f) {
  if (f.payload.size() != 8)
    throw std::runtime_error("runtime: bad material id payload");
  return get_u64(f.payload, 0);
}

void send_hello(Channel& ch, const Hello& h) {
  std::vector<uint8_t> p;
  put_u64(p, h.magic);
  put_u32(p, h.version);
  put_u64(p, h.fingerprint);
  p.push_back(h.flags.encode());
  send_frame(ch, FrameType::kHello, p.data(), p.size());
}

Hello parse_hello(const Frame& f) {
  if (f.type != FrameType::kHello || f.payload.size() != 8 + 4 + 8 + 1)
    throw std::runtime_error("runtime: bad hello frame");
  Hello h;
  h.magic = get_u64(f.payload, 0);
  h.version = get_u32(f.payload, 8);
  h.fingerprint = get_u64(f.payload, 12);
  h.flags = SessionFlags::decode(f.payload[20]);
  return h;
}

void send_hello_ack(Channel& ch, const HelloAck& a) {
  std::vector<uint8_t> p;
  put_u64(p, a.fingerprint);
  put_u64(p, a.prefetch_quota);
  put_u64(p, a.lane_token);
  p.push_back(static_cast<uint8_t>(a.lane_port & 0xFF));
  p.push_back(static_cast<uint8_t>(a.lane_port >> 8));
  send_frame(ch, FrameType::kHelloAck, p.data(), p.size());
}

HelloAck parse_hello_ack(const Frame& f) {
  if (f.type != FrameType::kHelloAck || f.payload.size() != 8 + 8 + 8 + 2)
    throw std::runtime_error("runtime: bad hello ack frame");
  HelloAck a;
  a.fingerprint = get_u64(f.payload, 0);
  a.prefetch_quota = get_u64(f.payload, 8);
  a.lane_token = get_u64(f.payload, 16);
  a.lane_port = static_cast<uint16_t>(f.payload[24]) |
                (static_cast<uint16_t>(f.payload[25]) << 8);
  return a;
}

void send_error(Channel& ch, ErrorCode code, const std::string& reason) {
  std::vector<uint8_t> p;
  p.reserve(1 + reason.size());
  p.push_back(static_cast<uint8_t>(code));
  p.insert(p.end(), reason.begin(), reason.end());
  send_frame(ch, FrameType::kError, p.data(), p.size());
}

void send_error(Channel& ch, const std::string& reason) {
  send_error(ch, ErrorCode::kUnspecified, reason);
}

void send_busy(Channel& ch, uint32_t retry_after_ms) {
  send_frame(ch, FrameType::kBusy, &retry_after_ms, sizeof(retry_after_ms));
}

uint32_t parse_busy(const Frame& f) {
  if (f.type != FrameType::kBusy || f.payload.size() != 4)
    throw std::runtime_error("runtime: bad busy frame");
  return get_u32(f.payload, 0);
}

}  // namespace deepsecure::runtime
