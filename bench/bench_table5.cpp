// Table 5 reproduction: the four benchmarks AFTER data and DL-network
// pre-processing, with the per-benchmark improvement factor, plus a live
// demonstration that the pipeline preserves accuracy on benchmark-3
// (ISOLET-like) data.
#include <cstdio>
#include <cstdlib>

#include "core/benchmark_zoo.h"
#include "core/deepsecure.h"
#include "data/synthetic.h"
#include "support/table.h"

using namespace deepsecure;

int main() {
  std::printf("Table 5: benchmarks with data + network pre-processing\n\n");

  TablePrinter t({"Name", "Compaction", "#XOR", "#non-XOR", "Comm(MB)",
                  "Comp(s)", "Exec(s)", "Improve", "paper Impr"});
  for (const auto& z : core::paper_zoo()) {
    const auto base = synth::count_model(z.base);
    const auto compact = synth::count_model(z.compact);
    const auto cb = cost::cost_from_gates(base);
    const auto cc = cost::cost_from_gates(compact);
    const double improvement = cb.exec_seconds / cc.exec_seconds;
    t.add_row({z.name, z.compaction,
               TablePrinter::sci(static_cast<double>(compact.num_xor)),
               TablePrinter::sci(static_cast<double>(compact.num_non_xor)),
               TablePrinter::num(cc.comm_bytes / 1e6, 1),
               TablePrinter::num(cc.comp_seconds, 2),
               TablePrinter::num(cc.exec_seconds, 2),
               TablePrinter::num(improvement, 2) + "x",
               TablePrinter::num(z.paper_improvement, 2) + "x"});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\nCompaction knobs (projection dim + keep fraction) follow the\n"
      "paper's reported folds; per-benchmark rates are in\n"
      "src/core/benchmark_zoo.cpp.\n");

  if (std::getenv("DEEPSECURE_SKIP_LIVE") != nullptr) {
    std::printf("\n[live pipeline run skipped]\n");
    return 0;
  }

  // Live pipeline on ISOLET-like data: accuracy must survive projection
  // + pruning ("without any drop in the underlying DL accuracy").
  std::printf("\nLive pre-processing pipeline on benchmark-3 data:\n");
  const nn::Dataset all = data::make_isolet_like(728, 9);
  const nn::Split split = nn::split_dataset(all, 0.8);

  PreprocessConfig pc;
  pc.hidden = 50;
  pc.projection.gamma = 0.04;  // grow the dictionary to the noise floor
  pc.projection.max_dict = 308;
  pc.prune.prune_fraction = 0.67;
  pc.prune.rounds = 2;
  pc.prune.retrain_epochs = 6;
  pc.retrain.epochs = 12;
  pc.retrain.lr = 0.005f;  // 617-dim inputs

  const PreprocessOutcome out =
      preprocess_pipeline(split.train, split.test, nn::Act::kTanh, pc);

  std::printf("  projection      : 617 -> %zu features\n",
              out.projection.embed_dim);
  std::printf("  pruning         : %.0f%% weights removed\n",
              100.0 * out.prune.overall_sparsity);
  std::printf("  accuracy        : %.1f%% -> %.1f%%\n",
              100.0 * out.baseline_accuracy, 100.0 * out.condensed_accuracy);
  std::printf("  GC exec (model) : %.3f s -> %.3f s  (%.2fx)\n",
              out.cost_before.exec_seconds, out.cost_after.exec_seconds,
              out.cost_before.exec_seconds / out.cost_after.exec_seconds);
  std::printf("  GC comm         : %.1f MB -> %.1f MB\n",
              out.cost_before.comm_bytes / 1e6,
              out.cost_after.comm_bytes / 1e6);
  return 0;
}
