#include "synth/softmax.h"

#include <stdexcept>

namespace deepsecure::synth {

Bus argmax(Builder& b, const std::vector<Bus>& values) {
  if (values.empty()) throw std::invalid_argument("argmax of nothing");
  const size_t idx_bits = std::max<size_t>(1, clog2(values.size()));

  Bus best = values[0];
  Bus best_idx = constant_bus(b, 0, idx_bits);
  for (size_t i = 1; i < values.size(); ++i) {
    const Wire gt = lt_signed(b, best, values[i]);  // strictly greater
    best = mux_bus(b, gt, values[i], best);
    best_idx = mux_bus(b, gt, constant_bus(b, i, idx_bits), best_idx);
  }
  return best_idx;
}

Bus argmax_onehot(Builder& b, const std::vector<Bus>& values) {
  const Bus idx = argmax(b, values);
  Bus onehot(values.size());
  for (size_t i = 0; i < values.size(); ++i)
    onehot[i] = eq(b, idx, constant_bus(b, i, idx.size()));
  return onehot;
}

}  // namespace deepsecure::synth
