// GC cost model — Table 2 of the paper.
//
//   Tcomp = (N_XOR * C_XOR + N_nonXOR * C_nonXOR) / f_CPU
//   Tcomm = N_nonXOR * 2 * 128 bit / BW     (only garbled tables travel)
//   Texec = max(Tcomm, Tcomp)               (phases pipeline, Figure 5)
//
// Defaults pin the paper's measured constants (Section 4.3: 62 clks/XOR,
// 164 clks/non-XOR on an i7-2600 @ 3.4 GHz; effective bandwidth implied
// by Table 4 is ~81.8 MB/s) so the tables regenerate on any host;
// calibration.h measures this host's actual per-gate costs.
#pragma once

#include "synth/gate_count.h"

namespace deepsecure::cost {

struct GcCostParams {
  double clk_per_xor = 62.0;
  double clk_per_non_xor = 164.0;
  double f_cpu_hz = 3.4e9;
  double bandwidth_bytes_per_s = 81.8e6;
  size_t bits_per_non_xor = 256;  // half-gates: 2 rows x 128 bits
};

struct NetworkCost {
  uint64_t num_xor = 0;
  uint64_t num_non_xor = 0;
  double comm_bytes = 0.0;
  double comp_seconds = 0.0;
  double exec_seconds = 0.0;
};

NetworkCost cost_from_gates(const synth::GateCount& g,
                            const GcCostParams& p = {});

NetworkCost cost_of_model(const synth::ModelSpec& spec,
                          const GcCostParams& p = {});

}  // namespace deepsecure::cost
