// DeepSecure public API — the end-to-end framework of Figure 2/3.
//
// Typical flow for a downstream user:
//
//   nn::Network model = ...train on private data...;            // server
//   auto outcome = preprocess_pipeline(...);                    // optional
//   SecureInferenceResult r = secure_infer(model, sample);      // client+server
//   r.label  -> the private inference result
//
// secure_infer runs both roles in-process over the in-memory channel
// (one thread per party) with the real protocol stack: label transfer,
// base OT + IKNP extension for the server's weights, free-XOR/half-gates
// garbling, label-carried layer chaining, output decoding at the client.
#pragma once

#include "baseline/cryptonets.h"
#include "cost/cost_model.h"
#include "gc/outsourcing.h"
#include "gc/protocol.h"
#include "nn/quantize.h"
#include "preprocess/projection.h"
#include "preprocess/pruning.h"
#include "synth/layer_circuits.h"

namespace deepsecure {

struct SecureInferenceOptions {
  FixedFormat fmt = kDefaultFormat;
  /// Circuit realization of Tanh/Sigmoid layers (paper uses CORDIC in
  /// Section 4.5; swap for LUT/Seg/PL to trade speed vs accuracy).
  synth::ActKind tanh_variant = synth::ActKind::kTanhCORDIC;
  synth::ActKind sigmoid_variant = synth::ActKind::kSigmoidCORDIC;
  /// Chain per-layer netlists (memory ~ largest layer) instead of one
  /// monolithic netlist.
  bool per_layer = true;
  /// Label-PRG seed; zero draws from OS entropy.
  Block seed{};
};

struct SecureInferenceResult {
  size_t label = 0;
  uint64_t client_to_server_bytes = 0;
  uint64_t server_to_client_bytes = 0;
  double wall_seconds = 0.0;
  SessionTrace garbler_trace;
  SessionTrace evaluator_trace;
  synth::GateCount gates;
};

/// Translate a trained float network into a circuit model spec
/// (activations mapped per options; Softmax realized as argmax).
synth::ModelSpec model_spec_from_network(const nn::Network& net,
                                         const SecureInferenceOptions& opt,
                                         const std::string& name = "model");

/// Client-side sample encoding: fixed-point bits in garbler-input order.
BitVec sample_bits(const nn::VecF& sample, FixedFormat fmt);

/// Server-side parameter encoding: fixed-point bits in evaluator-input
/// order (must match model_spec_from_network's traversal).
BitVec weight_bits(const nn::Network& net, FixedFormat fmt);

/// Run the full two-party protocol in-process; client = garbler (owns
/// `sample`), server = evaluator (owns `model`).
SecureInferenceResult secure_infer(const nn::Network& model,
                                   const nn::VecF& sample,
                                   const SecureInferenceOptions& opt = {});

/// Secure outsourcing mode (Section 3.3): the client only XOR-shares its
/// input; the proxy (garbler) and main server (evaluator) run the GC
/// protocol on the share-reconstructing circuit.
SecureInferenceResult secure_infer_outsourced(
    const nn::Network& model, const nn::VecF& sample,
    const SecureInferenceOptions& opt = {});

// ----------------------------------------------------------------------
// Off-line pre-processing pipeline (Figure 2, step 1).

struct PreprocessConfig {
  bool enable_projection = true;
  bool enable_pruning = true;
  preprocess::ProjectionConfig projection;
  preprocess::PruneConfig prune;
  nn::TrainConfig retrain;  // used for the post-projection retraining
  size_t hidden = 32;       // condensed model hidden width
};

struct PreprocessOutcome {
  preprocess::ProjectionResult projection;
  preprocess::PruneReport prune;
  nn::Network model;        // condensed, retrained network
  float baseline_accuracy = 0.0f;   // original model on test split
  float condensed_accuracy = 0.0f;  // condensed model on test split
  cost::NetworkCost cost_before;
  cost::NetworkCost cost_after;

  PreprocessOutcome() : model(nn::Shape{1, 1, 1}) {}
};

/// Builds a base FC model (hidden width cfg.hidden, given activation),
/// trains it, then applies projection (input-dimension reduction with
/// retraining on the embedding) and pruning (+ retraining), returning
/// the condensed model plus accuracy/cost bookkeeping.
PreprocessOutcome preprocess_pipeline(const nn::Dataset& train,
                                      const nn::Dataset& test,
                                      nn::Act activation,
                                      const PreprocessConfig& cfg,
                                      const SecureInferenceOptions& opt = {});

}  // namespace deepsecure
