// Lock-free metrics registry — the runtime observability substrate.
//
// Three instrument kinds, all safe to hammer from any number of threads
// with no locks on the hot path:
//
//   * Counter   — monotonic u64. add() is one relaxed fetch_add on a
//     per-thread-sharded, cache-line-aligned cell; value() sums the
//     shards. Contended increments from different threads land on
//     different cache lines, so a 1024-session burst never serializes
//     on a counter.
//   * Gauge     — signed level (queue depth, ring occupancy). Same
//     sharded cells with add()/sub(); value() is the summed level.
//     There is deliberately no set(): sharded cells cannot express
//     last-writer-wins, and every gauge in this codebase is a balance
//     of enter/leave events anyway.
//   * Histogram — log-bucketed latency/size distribution with fixed
//     power-of-two bins: value v lands in bucket bit_width(v) (bucket
//     0 holds exactly v == 0, bucket k holds [2^(k-1), 2^k)). 65 bins
//     cover the full u64 range, so there is nothing to configure and
//     any two histograms merge by adding bins. observe() is three
//     relaxed fetch_adds on the caller's shard.
//
// Snapshots are merges of the shards taken with relaxed loads while
// writers keep writing: each cell is monotonic, so repeated snapshots
// of a counter never go backwards, but a histogram's count/sum/bucket
// triple is not a consistent cut (count may be a hair ahead of the
// bucket sums). That is the documented trade for a zero-cost write
// path; consumers that need exactness snapshot quiescent registries
// (e.g. loadgen after joining its clients).
//
// Registries are instantiable: the InferenceServer owns one per
// instance (tests assert exact per-server counts; serial bench runs
// must not bleed into each other), while process-wide infrastructure
// (TCP channels, material pools) shares Registry::global(). Instrument
// handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime — resolve once, cache the reference, then the
// name lookup never appears on the hot path.
//
// Percentiles come from the merged bins by linear interpolation inside
// the winning bin — good to within the bin's 2x resolution, which is
// plenty for "where did the p99 go" questions. Snapshot::delta()
// subtracts a baseline snapshot bin-by-bin so one registry can serve
// many measurement windows.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/spsc_ring.h"  // kCacheLine

namespace deepsecure::obs {

/// Shards per instrument. Enough that a few dozen hot threads rarely
/// collide (collisions are still correct — just a shared cache line).
inline constexpr size_t kShards = 16;

/// Histogram bins: bucket 0 = {0}, bucket k (1..64) = [2^(k-1), 2^k).
inline constexpr size_t kBuckets = 65;

namespace detail {
/// Small per-thread shard index, assigned round-robin on first use.
size_t shard_index();

struct alignas(kCacheLine) Cell {
  std::atomic<uint64_t> v{0};
};
}  // namespace detail

class Counter {
 public:
  void add(uint64_t n = 1) {
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t t = 0;
    for (const auto& c : cells_) t += c.v.load(std::memory_order_relaxed);
    return t;
  }

 private:
  std::array<detail::Cell, kShards> cells_;
};

class Gauge {
 public:
  void add(int64_t n = 1) {
    cells_[detail::shard_index()].v.fetch_add(static_cast<uint64_t>(n),
                                              std::memory_order_relaxed);
  }
  void sub(int64_t n = 1) { add(-n); }
  /// Summed level. Can transiently undershoot/overshoot by in-flight
  /// add/sub pairs observed out of order; exact once writers quiesce.
  int64_t value() const {
    uint64_t t = 0;
    for (const auto& c : cells_) t += c.v.load(std::memory_order_relaxed);
    return static_cast<int64_t>(t);
  }

 private:
  std::array<detail::Cell, kShards> cells_;
};

/// Bucket index for a value: 0 for 0, else 64 - countl_zero(v).
size_t histogram_bucket(uint64_t v);
/// Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...).
uint64_t histogram_bucket_lo(size_t b);

class Histogram {
 public:
  void observe(uint64_t v) {
    Shard& s = shards_[detail::shard_index()];
    s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t t = 0;
    for (const auto& s : shards_) t += s.count.load(std::memory_order_relaxed);
    return t;
  }
  uint64_t sum() const {
    uint64_t t = 0;
    for (const auto& s : shards_) t += s.sum.load(std::memory_order_relaxed);
    return t;
  }
  /// Merged bins (relaxed reads; see file header on consistency).
  std::array<uint64_t, kBuckets> merged_buckets() const;

 private:
  struct alignas(kCacheLine) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> count{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Point-in-time merge of a registry — plain data, safe to copy, diff,
/// and serialize off the hot path.
struct Snapshot {
  struct Hist {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kBuckets> buckets{};
    /// Quantile q in [0,1] by linear interpolation inside the winning
    /// log bucket. 0 when empty.
    double quantile(double q) const;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<Hist> hists;

  /// this − baseline, matched by name: counters/hist bins subtract
  /// (names missing from the baseline pass through); gauges keep their
  /// current level (a level has no meaningful delta). The way one
  /// long-lived registry serves many measurement windows.
  Snapshot delta(const Snapshot& baseline) const;

  /// Compact JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "hists":{"name":{"count":n,"sum":n,"p50":x,"p95":x,"p99":x,
  ///                     "buckets":[[lo,count],...]}}}
  /// Histogram quantiles are in the observed unit (this codebase
  /// observes nanoseconds for latencies, bytes for sizes). "buckets"
  /// lists the non-empty log-bucket bins as [lower_bound, count] pairs
  /// so scrapers can compute any quantile, not just the pre-baked ones.
  std::string to_json() const;

  const Hist* find_hist(std::string_view name) const;
  uint64_t counter_value(std::string_view name) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry for infrastructure metrics (net channels,
  /// material pools). Server instances own private registries instead.
  static Registry& global();

  /// Find-or-create by name. The returned reference is stable for the
  /// registry's lifetime. Registration takes a mutex — resolve once and
  /// cache the handle; never call these per event.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Merge every instrument's shards (relaxed; see file header).
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  // node-based maps: stable addresses across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists_;
};

/// Monotonic nanoseconds since process start — the time base shared by
/// histograms and the span tracer.
uint64_t now_ns();

}  // namespace deepsecure::obs
