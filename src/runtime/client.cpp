#include "runtime/client.h"

#include <cstring>
#include <stdexcept>

#include "crypto/prg.h"
#include "runtime/frame.h"
#include "support/bits.h"

namespace deepsecure::runtime {

InferenceClient::InferenceClient(const std::string& host, uint16_t port,
                                 const synth::ModelSpec& spec,
                                 ClientConfig cfg)
    : chain_(synth::compile_model_layers(spec)),
      fmt_(spec.fmt),
      transport_(TcpChannel::connect(host, port)) {
  const Block seed = cfg.seed == Block{}
                         ? Prg::from_os_entropy().next_block()
                         : cfg.seed;
  garbler_ = std::make_unique<StreamingGarbler>(transport_, seed, cfg.stream);

  Hello hello;
  hello.fingerprint = chain_fingerprint(chain_);
  hello.flags = SessionFlags{cfg.stream.framed_tables};
  Channel& ch = garbler_->channel();
  send_hello(ch, hello);
  garbler_->channel().flush();
  const Frame ack = recv_frame(ch);  // kError from the server throws here
  if (ack.type != FrameType::kHelloAck || ack.payload.size() != 8)
    throw std::runtime_error("client: bad handshake ack");
  uint64_t echoed = 0;
  std::memcpy(&echoed, ack.payload.data(), 8);
  if (echoed != hello.fingerprint)
    throw std::runtime_error("client: server echoed a different model chain");
  open_ = true;
}

InferenceClient::~InferenceClient() {
  try {
    close();
  } catch (...) {
    // Destructor during unwind: the transport may already be dead.
  }
}

size_t InferenceClient::input_bits() const {
  return chain_.empty() ? 0 : chain_.front().garbler_inputs.size();
}

size_t InferenceClient::infer(const std::vector<float>& sample) {
  BitVec bits;
  bits.reserve(sample.size() * fmt_.total_bits);
  for (float v : sample) {
    const BitVec b = Fixed::from_double(static_cast<double>(v), fmt_).to_bits();
    bits.insert(bits.end(), b.begin(), b.end());
  }
  return from_bits(infer_bits(bits));
}

BitVec InferenceClient::infer_bits(const BitVec& data_bits) {
  if (!open_) throw std::logic_error("client: session closed");
  Channel& ch = garbler_->channel();
  send_frame(ch, FrameType::kInfer);
  return garbler_->run_chain(chain_, data_bits);
}

void InferenceClient::close() {
  if (!open_) return;
  open_ = false;
  Channel& ch = garbler_->channel();
  send_frame(ch, FrameType::kBye);
  garbler_->channel().flush();
}

}  // namespace deepsecure::runtime
