#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/rng.h"
#include "support/table.h"

namespace deepsecure {
namespace {

TEST(Bits, RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 0xDEADull, 0xFFFFull, 0x8000ull}) {
    EXPECT_EQ(from_bits(to_bits(v, 16)), v & 0xFFFF);
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x0, 16), 0);
  EXPECT_EQ(sign_extend(0b100, 3), -4);
}

TEST(Bits, MaskAndClog2) {
  EXPECT_EQ(mask_bits(0xFFFFFFFFFFFFFFFFull, 8), 0xFFull);
  EXPECT_EQ(clog2(1), 0u);
  EXPECT_EQ(clog2(2), 1u);
  EXPECT_EQ(clog2(3), 2u);
  EXPECT_EQ(clog2(1024), 10u);
  EXPECT_EQ(clog2(1025), 11u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

TEST(Rng, BoundedUniform) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian(1.0, 2.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(3);
  auto p = rng.permutation(100);
  std::vector<int> seen(100, 0);
  for (size_t v : p) seen[v]++;
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Table, FormatsAligned) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const std::string s = t.to_string("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_EQ(TablePrinter::num(1.005, 2), "1.00");
  EXPECT_EQ(TablePrinter::count(42), "42");
}

}  // namespace
}  // namespace deepsecure
