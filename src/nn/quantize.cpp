#include "nn/quantize.h"

#include <cmath>
#include <stdexcept>

namespace deepsecure::nn {
namespace {

Fixed q(float v, FixedFormat fmt) {
  return Fixed::from_double(static_cast<double>(v), fmt);
}

std::vector<Fixed> quantize_vec(const VecF& x, FixedFormat fmt) {
  std::vector<Fixed> out;
  out.reserve(x.size());
  for (float v : x) out.push_back(q(v, fmt));
  return out;
}

}  // namespace

std::vector<Fixed> quantize_weights(const Network& net, FixedFormat fmt) {
  std::vector<Fixed> out;
  for (const auto& layer : net.layers()) {
    if (const auto* d = dynamic_cast<const DenseLayer*>(layer.get())) {
      const size_t in = d->in_dim();
      for (size_t o = 0; o < d->out_dim(); ++o)
        for (size_t i = 0; i < in; ++i) {
          if (!d->mask.empty() && !d->mask[o * in + i]) continue;
          out.push_back(q(d->weights()[o * in + i], fmt));
        }
      for (float b : d->biases()) out.push_back(q(b, fmt));
    } else if (const auto* c = dynamic_cast<const Conv2DLayer*>(layer.get())) {
      for (float w : c->weights()) out.push_back(q(w, fmt));
      for (float b : c->biases()) out.push_back(q(b, fmt));
    }
  }
  return out;
}

std::vector<Fixed> fixed_forward(const Network& net, const VecF& x,
                                 FixedFormat fmt) {
  std::vector<Fixed> v = quantize_vec(x, fmt);
  Shape shape = net.input_shape();
  const Fixed zero = Fixed::from_raw(0, fmt);

  for (const auto& layer : net.layers()) {
    if (const auto* d = dynamic_cast<const DenseLayer*>(layer.get())) {
      const size_t in = d->in_dim();
      std::vector<Fixed> y(d->out_dim(), zero);
      for (size_t o = 0; o < d->out_dim(); ++o) {
        Fixed acc = zero;
        for (size_t i = 0; i < in; ++i) {
          if (!d->mask.empty() && !d->mask[o * in + i]) continue;
          acc = acc + v[i] * q(d->weights()[o * in + i], fmt);
        }
        y[o] = acc + q(d->biases()[o], fmt);
      }
      v = std::move(y);
      shape = Shape{1, 1, d->out_dim()};
    } else if (const auto* c = dynamic_cast<const Conv2DLayer*>(layer.get())) {
      const Shape os = c->out_shape(shape);
      const Shape is = c->in_shape();
      const size_t k = c->kernel(), stride = c->stride();
      std::vector<Fixed> y(os.flat(), zero);
      for (size_t oc = 0; oc < os.c; ++oc)
        for (size_t oy = 0; oy < os.h; ++oy)
          for (size_t ox = 0; ox < os.w; ++ox) {
            Fixed acc = zero;
            for (size_t ic = 0; ic < is.c; ++ic)
              for (size_t ky = 0; ky < k; ++ky)
                for (size_t kx = 0; kx < k; ++kx)
                  acc = acc +
                        v[(ic * is.h + oy * stride + ky) * is.w +
                          ox * stride + kx] *
                            q(c->weights()[((oc * is.c + ic) * k + ky) * k + kx],
                              fmt);
            y[(oc * os.h + oy) * os.w + ox] = acc + q(c->biases()[oc], fmt);
          }
      v = std::move(y);
      shape = os;
    } else if (const auto* p = dynamic_cast<const PoolLayer*>(layer.get())) {
      const Shape os = p->out_shape(shape);
      const size_t k = p->window(), stride = p->stride();
      std::vector<Fixed> y(os.flat(), zero);
      for (size_t ch = 0; ch < shape.c; ++ch)
        for (size_t oy = 0; oy < os.h; ++oy)
          for (size_t ox = 0; ox < os.w; ++ox) {
            if (p->kind() == Pool::kMax) {
              int64_t best = INT64_MIN;
              for (size_t ky = 0; ky < k; ++ky)
                for (size_t kx = 0; kx < k; ++kx)
                  best = std::max(best,
                                  v[(ch * shape.h + oy * stride + ky) * shape.w +
                                    ox * stride + kx]
                                      .raw());
              y[(ch * os.h + oy) * os.w + ox] = Fixed::from_raw(best, fmt);
            } else {
              Fixed acc = zero;
              for (size_t ky = 0; ky < k; ++ky)
                for (size_t kx = 0; kx < k; ++kx)
                  acc = acc + v[(ch * shape.h + oy * stride + ky) * shape.w +
                                ox * stride + kx];
              y[(ch * os.h + oy) * os.w + ox] =
                  acc * q(1.0f / static_cast<float>(k * k), fmt);
            }
          }
      v = std::move(y);
      shape = os;
    } else if (const auto* a =
                   dynamic_cast<const ActivationLayer*>(layer.get())) {
      for (auto& val : v) {
        switch (a->kind()) {
          case Act::kReLU:
            val = val.raw() > 0 ? val : zero;
            break;
          case Act::kTanh:
            val = Fixed::from_double(std::tanh(val.to_double()), fmt);
            break;
          case Act::kSigmoid:
            val = Fixed::from_double(1.0 / (1.0 + std::exp(-val.to_double())),
                                     fmt);
            break;
          case Act::kSquare:
            val = val * val;
            break;
          case Act::kIdentity:
            break;
        }
      }
    } else {
      throw std::logic_error("fixed_forward: unsupported layer");
    }
  }
  return v;
}

size_t fixed_predict(const Network& net, const VecF& x, FixedFormat fmt) {
  const auto logits = fixed_forward(net, x, fmt);
  size_t best = 0;
  for (size_t i = 1; i < logits.size(); ++i)
    if (logits[i].raw() > logits[best].raw()) best = i;
  return best;
}

namespace {

// Max |pre-activation| of each parameterized layer over the calibration
// set, evaluated on the current float weights.
std::vector<double> measure_preacts(Network& net,
                                    const std::vector<VecF>& calib) {
  std::vector<double> maxima;
  for (const VecF& x : calib) {
    VecF v = x;
    size_t li = 0;
    for (const auto& layer : net.layers()) {
      v = layer->forward(v);
      const bool parameterized =
          dynamic_cast<DenseLayer*>(layer.get()) != nullptr ||
          dynamic_cast<Conv2DLayer*>(layer.get()) != nullptr;
      if (parameterized) {
        if (maxima.size() <= li) maxima.push_back(0.0);
        for (float y : v)
          maxima[li] = std::max(maxima[li], std::abs(static_cast<double>(y)));
        ++li;
      }
    }
  }
  return maxima;
}

void scale_params(Layer* layer, float w_scale, float b_scale) {
  if (auto* d = dynamic_cast<DenseLayer*>(layer)) {
    for (auto& w : d->weights()) w *= w_scale;
    for (auto& b : d->biases()) b *= b_scale;
  } else if (auto* c = dynamic_cast<Conv2DLayer*>(layer)) {
    for (auto& w : c->weights()) w *= w_scale;
    for (auto& b : c->biases()) b *= b_scale;
  }
}

}  // namespace

ScaleReport scale_for_fixed(Network& net, const std::vector<VecF>& calib,
                            FixedFormat fmt, double headroom) {
  ScaleReport report;
  const double target = fmt.max_value() * headroom;

  const std::vector<double> before = measure_preacts(net, calib);
  for (double m : before)
    report.max_preactivation_before =
        std::max(report.max_preactivation_before, m);

  // Homogeneity scan: a parameterized layer may be freely rescaled only
  // if every activation AFTER it (except the last layer, which feeds
  // argmax) is positively homogeneous.
  std::vector<Layer*> params;
  std::vector<bool> homogeneous_after;
  {
    std::vector<Layer*> raw;
    for (const auto& l : net.layers()) raw.push_back(l.get());
    for (size_t i = 0; i < raw.size(); ++i) {
      const bool parameterized =
          dynamic_cast<DenseLayer*>(raw[i]) != nullptr ||
          dynamic_cast<Conv2DLayer*>(raw[i]) != nullptr;
      if (!parameterized) continue;
      bool ok = true;
      for (size_t j = i + 1; j < raw.size(); ++j) {
        if (const auto* a = dynamic_cast<ActivationLayer*>(raw[j])) {
          if (a->kind() != Act::kReLU && a->kind() != Act::kIdentity)
            ok = false;
        }
      }
      params.push_back(raw[i]);
      homogeneous_after.push_back(ok);
    }
  }

  // Forward pass over layers, tracking the cumulative input scale c.
  double c = 1.0;
  for (size_t l = 0; l < params.size(); ++l) {
    const double scaled_preact = before[l] * c;
    double alpha = 1.0;
    if (scaled_preact > target) {
      if (homogeneous_after[l]) {
        alpha = target / scaled_preact;
      } else {
        report.fully_normalized = false;  // cannot touch this layer
      }
    }
    if (alpha != 1.0) {
      // W *= alpha; b *= alpha * c (bias must track the input scale).
      scale_params(params[l], static_cast<float>(alpha),
                   static_cast<float>(alpha * c));
      c *= alpha;
    } else if (c != 1.0) {
      // Keep biases consistent with rescaled inputs even when W is kept.
      scale_params(params[l], 1.0f, static_cast<float>(c));
      // c unchanged: outputs now carry scale c.
    }
    report.layer_scale.push_back(alpha);
  }

  const std::vector<double> after = measure_preacts(net, calib);
  for (double m : after)
    report.max_preactivation_after =
        std::max(report.max_preactivation_after, m);
  if (report.max_preactivation_after > fmt.max_value())
    report.fully_normalized = false;
  return report;
}

float fixed_accuracy(const Network& net, const std::vector<VecF>& xs,
                     const std::vector<size_t>& ys, FixedFormat fmt) {
  if (xs.empty()) return 0.0f;
  size_t correct = 0;
  for (size_t i = 0; i < xs.size(); ++i)
    correct += fixed_predict(net, xs[i], fmt) == ys[i] ? 1 : 0;
  return static_cast<float>(correct) / static_cast<float>(xs.size());
}

}  // namespace deepsecure::nn
