#include "net/party.h"

#include <exception>
#include <thread>

#include "support/stopwatch.h"

namespace deepsecure {

TwoPartyStats run_two_party(const std::function<void(Channel&)>& alice,
                            const std::function<void(Channel&)>& bob) {
  ChannelPair pair = make_channel_pair();
  TwoPartyStats stats;
  std::exception_ptr a_error, b_error;

  Stopwatch wall;
  std::thread a_thread([&] {
    Stopwatch sw;
    try {
      alice(*pair.a);
    } catch (...) {
      a_error = std::current_exception();
      pair.a->close();  // unblock the peer instead of deadlocking
    }
    stats.a_seconds = sw.seconds();
  });
  std::thread b_thread([&] {
    Stopwatch sw;
    try {
      bob(*pair.b);
    } catch (...) {
      b_error = std::current_exception();
      pair.b->close();
    }
    stats.b_seconds = sw.seconds();
  });
  a_thread.join();
  b_thread.join();
  stats.wall_seconds = wall.seconds();
  stats.a_to_b_bytes = pair.a->bytes_sent();
  stats.b_to_a_bytes = pair.b->bytes_sent();

  if (a_error) std::rethrow_exception(a_error);
  if (b_error) std::rethrow_exception(b_error);
  return stats;
}

}  // namespace deepsecure
