// Edwards25519 group operations (extended coordinates) — the algebraic
// substrate for the Chou-Orlandi base oblivious transfer.
//
// Curve: -x^2 + y^2 = 1 + d x^2 y^2 over GF(2^255-19),
//        d = -121665/121666.
//
// Points are exchanged uncompressed (affine x||y, 64 bytes): this avoids
// the square-root decompression path entirely, which keeps the substrate
// small. Bandwidth for base OTs is negligible (128 points per session).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/fe25519.h"

namespace deepsecure {

/// 256-bit scalar, little-endian bytes. Random 32-byte strings are fine
/// as exponents in the semi-honest setting.
using Ed25519Scalar = std::array<uint8_t, 32>;

struct Ed25519Point {
  // Extended homogeneous coordinates (X:Y:Z:T), x = X/Z, y = Y/Z, T = XY/Z.
  Fe25519 x, y, z, t;

  static const Ed25519Point& base();      // standard generator B
  static Ed25519Point identity();

  static Ed25519Point add(const Ed25519Point& p, const Ed25519Point& q);
  static Ed25519Point dbl(const Ed25519Point& p);
  static Ed25519Point neg(const Ed25519Point& p);
  static Ed25519Point sub(const Ed25519Point& p, const Ed25519Point& q) {
    return add(p, neg(q));
  }

  /// Scalar multiplication, double-and-add with branch-free selection.
  static Ed25519Point mul(const Ed25519Point& p, const Ed25519Scalar& k);
  static Ed25519Point base_mul(const Ed25519Scalar& k) {
    return mul(base(), k);
  }

  /// Affine serialization: x (32B) || y (32B).
  std::array<uint8_t, 64> encode() const;
  /// Parse and validate the curve equation; nullopt when off-curve.
  static std::optional<Ed25519Point> decode(const uint8_t in[64]);

  static bool eq(const Ed25519Point& p, const Ed25519Point& q);
  bool is_identity() const { return eq(*this, identity()); }

  /// On-curve check in projective form.
  bool on_curve() const;
};

/// The curve constant d = -121665/121666 (computed once).
const Fe25519& ed25519_d();

/// Group order l = 2^252 + 27742317777372353535851937790883648493 as a
/// scalar, used by tests to verify l*B = identity.
Ed25519Scalar ed25519_order();

}  // namespace deepsecure
