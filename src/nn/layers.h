// Neural-network layers with forward/backward passes — the training
// substrate needed by the pre-processing stages (pruning retraining,
// Algorithm 1's UpdateDL) and by the CryptoNets utility baseline.
//
// Layout convention matches the circuit compiler: feature maps are
// channel-major, index = (ch * H + y) * W + x. Weight storage matches
// the evaluator-input traversal order (Dense: row-major [out][in] then
// bias; Conv: [oc][ic][ky][kx] then bias).
#pragma once

#include <memory>
#include <vector>

#include "nn/tensor.h"
#include "support/rng.h"

namespace deepsecure::nn {

enum class Act { kReLU, kTanh, kSigmoid, kSquare, kIdentity };

struct Shape {
  size_t h = 1, w = 1, c = 1;
  size_t flat() const { return h * w * c; }
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual VecF forward(const VecF& x) = 0;
  /// Backprop: returns dL/dx, accumulates parameter gradients.
  virtual VecF backward(const VecF& dy) = 0;
  /// SGD-with-momentum update; clears accumulated gradients.
  virtual void step(float lr, float momentum) {}

  virtual Shape out_shape(const Shape& in) const = 0;
  virtual size_t param_count() const { return 0; }
};

class DenseLayer final : public Layer {
 public:
  DenseLayer(size_t in, size_t out, Rng& rng);

  VecF forward(const VecF& x) override;
  VecF backward(const VecF& dy) override;
  void step(float lr, float momentum) override;
  Shape out_shape(const Shape&) const override { return Shape{1, 1, out_}; }
  size_t param_count() const override { return w_.size() + b_.size(); }

  size_t in_dim() const { return in_; }
  size_t out_dim() const { return out_; }
  /// Row-major [out][in].
  VecF& weights() { return w_; }
  const VecF& weights() const { return w_; }
  VecF& biases() { return b_; }
  const VecF& biases() const { return b_; }

  /// Public sparsity mask (same layout as weights); empty = dense.
  /// When set, masked weights are forced to zero on every step.
  std::vector<uint8_t> mask;
  void apply_mask();

 private:
  size_t in_, out_;
  VecF w_, b_;
  VecF dw_, db_, vw_, vb_;  // gradients and momentum buffers
  VecF x_;                  // cached input
};

class Conv2DLayer final : public Layer {
 public:
  Conv2DLayer(Shape in, size_t k, size_t stride, size_t out_ch, Rng& rng);

  VecF forward(const VecF& x) override;
  VecF backward(const VecF& dy) override;
  void step(float lr, float momentum) override;
  Shape out_shape(const Shape&) const override { return out_shape_; }
  size_t param_count() const override { return w_.size() + b_.size(); }

  Shape in_shape() const { return in_; }
  size_t kernel() const { return k_; }
  size_t stride() const { return stride_; }
  size_t out_channels() const { return out_shape_.c; }
  VecF& weights() { return w_; }
  const VecF& weights() const { return w_; }
  VecF& biases() { return b_; }
  const VecF& biases() const { return b_; }

 private:
  Shape in_, out_shape_;
  size_t k_, stride_;
  VecF w_, b_, dw_, db_, vw_, vb_, x_;
};

enum class Pool { kMax, kMean };

class PoolLayer final : public Layer {
 public:
  PoolLayer(Shape in, Pool kind, size_t k, size_t stride);

  VecF forward(const VecF& x) override;
  VecF backward(const VecF& dy) override;
  Shape out_shape(const Shape&) const override { return out_shape_; }

  Pool kind() const { return kind_; }
  size_t window() const { return k_; }
  size_t stride() const { return stride_; }

 private:
  Shape in_, out_shape_;
  Pool kind_;
  size_t k_, stride_;
  std::vector<size_t> argmax_;  // winner index per output (max pooling)
  size_t in_size_ = 0;
};

class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(Act kind) : kind_(kind) {}

  VecF forward(const VecF& x) override;
  VecF backward(const VecF& dy) override;
  Shape out_shape(const Shape& in) const override { return in; }

  Act kind() const { return kind_; }

 private:
  Act kind_;
  VecF x_, y_;
};

}  // namespace deepsecure::nn
