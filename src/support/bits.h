// Small bit-manipulation helpers shared across the code base.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace deepsecure {

/// Dynamic vector of bits. Used for plaintext circuit values, OT choice
/// vectors and wire assignments. Intentionally a thin alias: the circuit
/// layer treats bits as `uint8_t` 0/1 for simplicity and debuggability.
using BitVec = std::vector<uint8_t>;

/// Decompose `v` into `n` little-endian bits.
inline BitVec to_bits(uint64_t v, size_t n) {
  BitVec out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>((v >> i) & 1u);
  return out;
}

/// Recompose little-endian bits into an unsigned integer.
inline uint64_t from_bits(const BitVec& bits) {
  uint64_t v = 0;
  for (size_t i = 0; i < bits.size() && i < 64; ++i)
    v |= static_cast<uint64_t>(bits[i] & 1u) << i;
  return v;
}

/// Sign-extend an `n`-bit two's-complement value held in a uint64_t.
inline int64_t sign_extend(uint64_t v, size_t n) {
  if (n == 0 || n >= 64) return static_cast<int64_t>(v);
  const uint64_t sign = 1ull << (n - 1);
  const uint64_t mask = (1ull << n) - 1;
  v &= mask;
  return static_cast<int64_t>((v ^ sign) - sign);
}

/// Mask `v` down to its low `n` bits.
inline uint64_t mask_bits(uint64_t v, size_t n) {
  if (n >= 64) return v;
  return v & ((1ull << n) - 1);
}

inline size_t ceil_div(size_t a, size_t b) { return (a + b - 1) / b; }

/// ceil(log2(n)) for n >= 1.
inline size_t clog2(size_t n) {
  size_t bits = 0;
  size_t v = 1;
  while (v < n) { v <<= 1; ++bits; }
  return bits;
}

}  // namespace deepsecure
